package warehouse

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/recovery"
)

// FaultInjector delivers seeded faults at named injection points — the
// library's fault-injection harness, re-exported for experiments and tests
// that exercise the crash-recovery machinery. See NewFaultInjector.
type FaultInjector = faults.Injector

// NewFaultInjector creates a fault injector whose probabilistic rules draw
// from the given seed.
var NewFaultInjector = faults.New

// ModeRecompute labels windows completed by the recompute fallback
// (graceful degradation); it is not a schedulable execution mode.
const ModeRecompute = exec.ModeRecompute

// ErrRecoveryNeeded is returned by RunWindowOpts when the attached journal
// ends in an in-flight window: a previous process died mid-window, and
// Recover must complete it before new windows may run.
var ErrRecoveryNeeded = errors.New("warehouse: journal has an in-flight update window; recover it first")

// ErrWindowAborted is returned (wrapped) by RunWindowOpts when the window's
// deadline or context fired mid-execution. The window aborted cleanly: the
// serving epoch is unchanged, the journal (if any) carries an abort record,
// and no recovery is needed — the staged changes remain pending and the
// window can simply be re-run. Test with errors.Is.
var ErrWindowAborted = errors.New("warehouse: update window aborted by deadline or cancellation")

// Journal is an append-only, checksummed log of update windows: what each
// window was about to do (strategy, change batch, pre-state digest), each
// completed step, and the final commit or abort. A window that begins but
// never closes is the on-disk signature of a crash, and carries everything
// needed to finish it (see Warehouse.Recover).
type Journal struct {
	w    *journal.Writer
	f    *os.File
	path string
	log  journal.Log
	seq  int
	// crashed marks that a window run through this handle died with a
	// crash-class fault, leaving the file in-flight. The parsed log in this
	// handle predates that window, so recovery must go through a fresh
	// OpenJournal, which reads the in-flight record back.
	crashed bool
	// spillSwept counts the stale per-window spill directories OpenJournal
	// removed — the leftovers of crashed windows, whose processes never
	// reached the commit-time cleanup.
	spillSwept int
}

// OpenJournal opens (creating if absent) a file-backed journal in append
// mode. Existing content is parsed first: Committed reports how many
// windows it already holds, NeedsRecovery whether it ends mid-window. A
// torn final record — a crash during a journal write — is tolerated and
// treated as not written.
func OpenJournal(path string) (*Journal, error) {
	var lg journal.Log
	if in, err := os.Open(path); err == nil {
		lg, err = journal.ReadLog(in)
		in.Close()
		if err != nil {
			return nil, fmt.Errorf("warehouse: reading journal %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{w: journal.NewWriter(f), f: f, path: path, log: lg, seq: lg.CommittedCount() + 1}
	j.spillSwept = sweepSpillDirs(path)
	return j, nil
}

// sweepSpillDirs removes every per-window spill directory under the
// journal's spill root and reports how many it removed. Committed and
// aborted windows clean up after themselves; anything found here was left
// by a crashed process. Recovery never reuses a crashed run's spill files —
// it re-executes from the journal — so sweeping on open is always safe.
func sweepSpillDirs(path string) int {
	root := path + ".spill"
	ents, err := os.ReadDir(root)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if os.RemoveAll(filepath.Join(root, e.Name())) == nil {
			n++
		}
	}
	return n
}

// spillDir returns the per-window spill directory for the window with the
// given journal sequence number, named so a post-crash sweep can attribute
// leftovers; empty for journals not backed by a file path.
func (j *Journal) spillDir(seq int) string {
	if j.path == "" {
		return ""
	}
	return filepath.Join(j.path+".spill", fmt.Sprintf("w%d", seq))
}

// SpillDirsSwept reports how many stale spill directories OpenJournal
// removed when this handle was opened.
func (j *Journal) SpillDirsSwept() int { return j.spillSwept }

// NewJournal wraps any writer as a window journal (no recovery state is
// read; the journal starts empty). Useful for buffers in tests.
func NewJournal(out io.Writer) *Journal {
	return &Journal{w: journal.NewWriter(out), seq: 1}
}

// NeedsRecovery reports whether the journal ends in an in-flight window.
func (j *Journal) NeedsRecovery() bool { return j.crashed || recovery.NeedsRecovery(&j.log) }

// Committed returns the number of committed windows the journal held when
// opened, plus those committed through it since.
func (j *Journal) Committed() int { return j.log.CommittedCount() }

// Close closes the underlying file, if any.
func (j *Journal) Close() error {
	if j.f != nil {
		return j.f.Close()
	}
	return nil
}

// WindowOptions configure a robust update window (RunWindowOpts). The zero
// value plans with MinWork and executes sequentially, unjournaled — the
// same window RunWindow runs.
type WindowOptions struct {
	// Planner selects the planning algorithm (MinWorkPlanner when empty).
	Planner PlannerName
	// Mode schedules the strategy (sequential when empty).
	Mode Mode
	// Workers bounds the ModeDAG pool (0 = GOMAXPROCS).
	Workers int
	// Journal, when set, makes the window crash-safe: begin/step/commit
	// records frame the execution, and a process death leaves an in-flight
	// window for Recover.
	Journal *Journal
	// Timeout bounds the window's wall-clock time; cancellation propagates
	// through the DAG scheduler and the morsel pool. 0 means no limit.
	Timeout time.Duration
	// Context, when set, carries external cancellation (composes with
	// Timeout).
	Context context.Context
	// Retries is how many times a transient failure is retried (with
	// exponential backoff starting at Backoff) before degrading.
	Retries int
	// Backoff is the first retry's sleep; <= 0 means 1ms.
	Backoff time.Duration
	// FallbackSequential retries a failed parallel window sequentially once.
	FallbackSequential bool
	// FallbackRecompute degrades a persistently failing incremental window
	// to install-and-recompute — always correct, never fast.
	FallbackRecompute bool
	// Faults injects failures for testing (point "step" at step boundaries,
	// "recompute" in the recompute fallback).
	Faults *FaultInjector
	// BatchAccepted, when set, is the time the window's change batch was
	// accepted from a continuous stream. It is stamped into the journal's
	// commit record so freshness (commit minus accept) is measurable from the
	// journal alone — by the ingest SLO tracker locally and by followers
	// replicating the journal.
	BatchAccepted time.Time
}

// plan runs the named planner (shared by RunWindowMode and RunWindowOpts).
// Non-shared planners clear any jointly-optimized hints a prior PlanShared
// recorded, so the window's registry analyzes the strategy it actually runs.
func (w *Warehouse) plan(name PlannerName) (PlannerName, Plan, error) {
	switch name {
	case MinWorkPlanner, "":
		w.core.SetPlannedSharing(nil)
		p, err := w.PlanMinWork()
		return MinWorkPlanner, p, err
	case PrunePlanner:
		w.core.SetPlannedSharing(nil)
		p, err := w.PlanPrune()
		return name, p, err
	case DualStagePlanner:
		w.core.SetPlannedSharing(nil)
		p, err := w.PlanDualStage()
		return name, p, err
	case SharedPlanner:
		p, err := w.PlanShared()
		return name, p, err
	default:
		return name, Plan{}, fmt.Errorf("warehouse: unknown planner %q", name)
	}
}

// RunWindowOpts executes one update window with the full robustness
// machinery: journaled execution, retry with backoff, sequential and
// recompute fallbacks, timeout. The window runs on a clone and the
// warehouse adopts the result only on success, so a failed window —
// including a crash-class fault — leaves the in-memory state untouched. On
// a crash-class failure the journal is left in-flight for Recover.
func (w *Warehouse) RunWindowOpts(o WindowOptions) (WindowReport, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if o.Journal != nil && o.Journal.NeedsRecovery() {
		return WindowReport{}, ErrRecoveryNeeded
	}
	planner, plan, err := w.plan(o.Planner)
	if err != nil {
		return WindowReport{}, err
	}
	ctx := o.Context
	if o.Timeout > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	ropts := recovery.Options{
		Planner:            string(planner),
		Mode:               o.Mode,
		Workers:            o.Workers,
		Context:            ctx,
		Validate:           true,
		Faults:             o.Faults,
		Retries:            o.Retries,
		Backoff:            o.Backoff,
		FallbackSequential: o.FallbackSequential,
		FallbackRecompute:  o.FallbackRecompute,
	}
	if !o.BatchAccepted.IsZero() {
		ropts.AcceptUnixNano = o.BatchAccepted.UnixNano()
	}
	if o.Journal != nil {
		ropts.Journal = o.Journal.w
		ropts.Seq = o.Journal.seq
		ropts.SpillDir = o.Journal.spillDir(o.Journal.seq)
	}
	started := time.Now()
	res, err := recovery.Run(w.core, plan.Strategy, ropts)
	if err != nil {
		if o.Journal != nil && (faults.IsCrash(err) || o.Faults.Crashed()) {
			o.Journal.crashed = true
		}
		if ctx != nil && ctx.Err() != nil {
			return WindowReport{}, fmt.Errorf("%w: %w", ErrWindowAborted, err)
		}
		return WindowReport{}, err
	}
	w.adopt(res.Core)
	if o.Journal != nil {
		o.Journal.noteCommitted(res.Report.TotalWork, ropts.AcceptUnixNano)
	}
	window := WindowReport{
		Seq:                len(w.history) + 1,
		Planner:            planner,
		Plan:               plan,
		Mode:               res.Mode,
		Parallel:           &res.Report,
		Report:             sequentialView(plan.Strategy, res.Report),
		Started:            started,
		StaleAfter:         w.StaleViews(),
		Attempts:           res.Attempts,
		FellBackSequential: res.FellBackSequential,
		Recomputed:         res.Recomputed,
	}
	w.history = append(w.history, window)
	return window, nil
}

// Recover completes the journal's in-flight window. The warehouse must be
// in the pre-window state the journal's begin record describes — rebuilt
// from the same sources or restored from a snapshot taken before the window
// (the journaled state digest verifies this). The journaled change batch is
// re-staged, the journaled strategy re-executed; steps the crashed run
// completed are verified against their journaled work and delta digests,
// and the missing steps plus the commit are appended to the journal.
func (w *Warehouse) Recover(j *Journal) (WindowReport, error) {
	if j == nil {
		return WindowReport{}, errors.New("warehouse: Recover requires a journal")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if j.crashed {
		return WindowReport{}, fmt.Errorf("warehouse: this journal handle saw a crash mid-window; reopen it with OpenJournal(%q) to load the in-flight window", j.path)
	}
	started := time.Now()
	inflight := j.log.InFlight()
	ropts := recovery.Options{Journal: j.w, Validate: true}
	if inflight != nil {
		ropts.SpillDir = j.spillDir(inflight.Begin.Seq)
	}
	res, err := recovery.Recover(w.core, &j.log, ropts)
	if err != nil {
		return WindowReport{}, err
	}
	w.adopt(res.Core)
	begin := inflight.Begin
	// The in-flight window is now committed: mirror the appended commit in
	// the parsed log so NeedsRecovery flips without re-reading the file.
	inflight.Commit = &journal.CommitRecord{TotalWork: res.Report.TotalWork, UnixNano: time.Now().UnixNano()}
	j.seq = j.log.CommittedCount() + 1
	window := WindowReport{
		Seq:            len(w.history) + 1,
		Planner:        PlannerName(begin.Planner),
		Plan:           Plan{Strategy: begin.Strategy, EstimatedWork: -1},
		Mode:           res.Mode,
		Parallel:       &res.Report,
		Report:         sequentialView(begin.Strategy, res.Report),
		Started:        started,
		StaleAfter:     w.StaleViews(),
		Attempts:       res.Attempts,
		Recovered:      true,
		Recomputed:     res.Recomputed,
		SpillDirsSwept: j.spillSwept,
	}
	w.history = append(w.history, window)
	return window, nil
}

// noteCommitted records a window committed through this journal handle, so
// Committed, LastCommitMeta and the next window's sequence number stay
// accurate without re-reading the file.
func (j *Journal) noteCommitted(totalWork int64, acceptNS int64) {
	j.log.Windows = append(j.log.Windows, journal.WindowLog{
		Begin: journal.BeginRecord{Seq: j.seq},
		Commit: &journal.CommitRecord{
			TotalWork:      totalWork,
			UnixNano:       time.Now().UnixNano(),
			AcceptUnixNano: acceptNS,
		},
	})
	j.seq++
}

// NextSeq returns the sequence number the next window run through this
// journal will carry. The exactly-once handoff from the ingest journal keys
// on it: an ingest batch cut for window s is durably installed iff the
// window journal's committed count ever reaches s (aborted windows re-use
// their sequence number, so a staged batch rides into the next commit).
func (j *Journal) NextSeq() int { return j.seq }

// LastCommitMeta returns the wall-clock commit time and batch-accept time
// (both UnixNano, 0 when unrecorded) of the journal's most recent committed
// window — what a replication leader advertises so followers can report
// wall-clock staleness, not just epoch lag.
func (j *Journal) LastCommitMeta() (commitNS, acceptNS int64) {
	for i := len(j.log.Windows) - 1; i >= 0; i-- {
		if c := j.log.Windows[i].Commit; c != nil {
			return c.UnixNano, c.AcceptUnixNano
		}
	}
	return 0, 0
}

// Restore rebuilds warehouse state from this journal after a restart: every
// committed window is replayed in order (aborted windows are skipped, as
// their effects never reached the serving epoch), and a trailing in-flight
// window — the signature of a crash mid-window — is completed via Recover.
// The warehouse must be at the journal's initial state: the deterministic
// fixture whose digest the first window's begin record pins. One report per
// replayed window is returned.
func (w *Warehouse) Restore(j *Journal) ([]WindowReport, error) {
	if j == nil {
		return nil, errors.New("warehouse: Restore requires a journal")
	}
	var out []WindowReport
	for i := range j.log.Windows {
		wl := &j.log.Windows[i]
		if !wl.Committed() {
			continue // aborted, or the in-flight tail Recover handles below
		}
		rep, err := w.ApplyWindow(wl)
		if err != nil {
			return out, fmt.Errorf("warehouse: restoring window %d: %w", wl.Begin.Seq, err)
		}
		out = append(out, rep)
	}
	if j.NeedsRecovery() {
		rep, err := w.Recover(j)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}
