package warehouse

import (
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/strategy"
)

func benchParallelRun(w *core.Warehouse, s strategy.Strategy, mode exec.Mode, workers int) (parallel.Report, error) {
	return parallel.Run(w, s, w.Children, mode, parallel.Options{Workers: workers})
}
