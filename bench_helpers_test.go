package warehouse

import (
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/strategy"
)

func benchParallelize(w *core.Warehouse, s strategy.Strategy) parallel.Plan {
	return parallel.Parallelize(s, w.Children)
}

func benchParallelExecute(w *core.Warehouse, p parallel.Plan) (parallel.Report, error) {
	return parallel.Execute(w, p)
}
