package warehouse_test

import (
	"fmt"
	"log"

	warehouse "repro"
)

// Example shows the full lifecycle: define, load, stage changes, plan with
// MinWork, execute, and query.
func Example() {
	w := warehouse.New()
	w.MustDefineBase("SALES", warehouse.Schema{
		{Name: "id", Kind: warehouse.KindInt},
		{Name: "region", Kind: warehouse.KindString},
		{Name: "amount", Kind: warehouse.KindInt},
	})
	w.MustDefineViewSQL("TOTALS", `
		SELECT region, SUM(amount) AS total FROM SALES GROUP BY region`)

	if err := w.Load("SALES", []warehouse.Tuple{
		{warehouse.Int(1), warehouse.String("west"), warehouse.Int(10)},
		{warehouse.Int(2), warehouse.String("east"), warehouse.Int(5)},
	}); err != nil {
		log.Fatal(err)
	}
	if err := w.Refresh(); err != nil {
		log.Fatal(err)
	}

	d, _ := w.NewDelta("SALES")
	d.Add(warehouse.Tuple{warehouse.Int(3), warehouse.String("west"), warehouse.Int(7)}, 1)
	if err := w.StageDelta("SALES", d); err != nil {
		log.Fatal(err)
	}

	plan, err := w.PlanMinWork()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Strategy)
	if _, err := w.Execute(plan.Strategy); err != nil {
		log.Fatal(err)
	}

	rows, err := w.Query("SELECT region, total FROM TOTALS ORDER BY region")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	// Output:
	// ⟨Comp(TOTALS, {SALES}); Inst(SALES); Inst(TOTALS)⟩
	// (east, 5)
	// (west, 17)
}

// ExampleWarehouse_Script renders the Section 5.5 update script of a plan.
func ExampleWarehouse_Script() {
	w := warehouse.New()
	w.MustDefineBase("B", warehouse.Schema{{Name: "x", Kind: warehouse.KindInt}})
	w.MustDefineViewSQL("V", "SELECT x FROM B")
	s := warehouse.Strategy{
		warehouse.Comp{View: "V", Over: []string{"B"}},
		warehouse.Inst{View: "B"},
		warehouse.Inst{View: "V"},
	}
	fmt.Print(w.Script(s))
	// Output:
	// -- update script (generated; see Section 5.5 of the paper)
	// EXEC comp_V_from_B;                           -- step  1: Comp(V, {B})
	// EXEC inst_B;                                  -- step  2: Inst(B)
	// EXEC inst_V;                                  -- step  3: Inst(V)
}

// ExampleWarehouse_Validate shows the correctness conditions rejecting an
// out-of-order strategy (C3: a view may not be installed before the
// compute expressions that read its delta).
func ExampleWarehouse_Validate() {
	w := warehouse.New()
	w.MustDefineBase("B", warehouse.Schema{{Name: "x", Kind: warehouse.KindInt}})
	w.MustDefineViewSQL("V", "SELECT x FROM B")
	d, _ := w.NewDelta("B")
	d.Add(warehouse.Tuple{warehouse.Int(1)}, 1)
	if err := w.StageDelta("B", d); err != nil {
		log.Fatal(err)
	}
	bad := warehouse.Strategy{
		warehouse.Inst{View: "B"},
		warehouse.Comp{View: "V", Over: []string{"B"}},
		warehouse.Inst{View: "V"},
	}
	fmt.Println(w.Validate(bad))
	// Output:
	// strategy: view V (C7): strategy: Inst(B) precedes Comp(V, {B}) which uses δB (C3)
}
