package warehouse

import (
	"strings"
	"testing"
)

// newChain builds SALES → DETAILS (SPJ) → DAILY (agg) → MONTHLY (agg over
// agg) for deferred-maintenance tests.
func newChain(t *testing.T) *Warehouse {
	t.Helper()
	w := New()
	w.MustDefineBase("SALES", Schema{
		{Name: "id", Kind: KindInt},
		{Name: "day", Kind: KindInt},
		{Name: "amount", Kind: KindInt},
	})
	w.MustDefineViewSQL("DETAILS", `SELECT id, day, amount FROM SALES WHERE amount > 0`)
	w.MustDefineViewSQL("DAILY", `SELECT day, SUM(amount) AS total FROM DETAILS GROUP BY day`)
	w.MustDefineViewSQL("MONTHLY", `SELECT SUM(total) AS grand FROM DAILY`)
	if err := w.Load("SALES", []Tuple{
		{Int(1), Int(1), Int(10)},
		{Int(2), Int(1), Int(20)},
		{Int(3), Int(2), Int(5)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	return w
}

func stageChainChange(t *testing.T, w *Warehouse) {
	t.Helper()
	d, err := w.NewDelta("SALES")
	if err != nil {
		t.Fatal(err)
	}
	d.Add(Tuple{Int(4), Int(2), Int(100)}, 1)
	d.Add(Tuple{Int(1), Int(1), Int(10)}, -1)
	if err := w.StageDelta("SALES", d); err != nil {
		t.Fatal(err)
	}
}

func TestDeferredViewSkippedAndStale(t *testing.T) {
	w := newChain(t)
	// Defer DAILY: MONTHLY is defined over it, so it is effectively
	// deferred too.
	if err := w.SetDeferred("DAILY", true); err != nil {
		t.Fatal(err)
	}
	stageChainChange(t, w)
	plan, err := w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	// The strategy must not touch DAILY or MONTHLY.
	if strings.Contains(plan.Strategy.String(), "DAILY") || strings.Contains(plan.Strategy.String(), "MONTHLY") {
		t.Fatalf("deferred views in strategy: %s", plan.Strategy)
	}
	if _, err := w.Execute(plan.Strategy); err != nil {
		t.Fatal(err)
	}
	// DETAILS is current; DAILY and MONTHLY stale.
	stale := w.StaleViews()
	if len(stale) != 2 || stale[0] != "DAILY" || stale[1] != "MONTHLY" {
		t.Fatalf("stale = %v", stale)
	}
	// Verify passes (stale views skipped) and DAILY still shows old totals.
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	rows, err := w.Query("SELECT day, total FROM DAILY ORDER BY day")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].String() != "(1, 30)" || rows[1].String() != "(2, 5)" {
		t.Fatalf("stale DAILY = %v", rows)
	}
	// Refresh on demand brings both current.
	if err := w.RefreshStale(); err != nil {
		t.Fatal(err)
	}
	if len(w.StaleViews()) != 0 {
		t.Errorf("still stale: %v", w.StaleViews())
	}
	rows, err = w.Query("SELECT day, total FROM DAILY ORDER BY day")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].String() != "(1, 20)" || rows[1].String() != "(2, 105)" {
		t.Fatalf("refreshed DAILY = %v", rows)
	}
	rows, err = w.Query("SELECT grand FROM MONTHLY")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].String() != "(125)" {
		t.Fatalf("refreshed MONTHLY = %v", rows)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDeferredBackToImmediate(t *testing.T) {
	w := newChain(t)
	if err := w.SetDeferred("MONTHLY", true); err != nil {
		t.Fatal(err)
	}
	if err := w.SetDeferred("MONTHLY", false); err != nil {
		t.Fatal(err)
	}
	stageChainChange(t, w)
	plan, err := w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Strategy.String(), "MONTHLY") {
		t.Fatalf("restored view missing from strategy: %s", plan.Strategy)
	}
	if _, err := w.Execute(plan.Strategy); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDeferredLeafOnly(t *testing.T) {
	// Deferring only the top view leaves the rest immediate.
	w := newChain(t)
	if err := w.SetDeferred("MONTHLY", true); err != nil {
		t.Fatal(err)
	}
	stageChainChange(t, w)
	plan, err := w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Strategy.String(), "DAILY") {
		t.Fatalf("DAILY should stay immediate: %s", plan.Strategy)
	}
	if _, err := w.Execute(plan.Strategy); err != nil {
		t.Fatal(err)
	}
	if got := w.StaleViews(); len(got) != 1 || got[0] != "MONTHLY" {
		t.Fatalf("stale = %v", got)
	}
	// DAILY is verifiable and current.
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshStale(); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestUndeferWhileStaleStaysExcluded: removing deferral does not make a
// stale view incrementally maintainable — it missed deltas, so planners
// keep excluding it until RefreshStale.
func TestUndeferWhileStaleStaysExcluded(t *testing.T) {
	w := newChain(t)
	if err := w.SetDeferred("DAILY", true); err != nil {
		t.Fatal(err)
	}
	stageChainChange(t, w)
	plan, err := w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Execute(plan.Strategy); err != nil {
		t.Fatal(err)
	}
	if err := w.SetDeferred("DAILY", false); err != nil {
		t.Fatal(err)
	}
	// Second window: DAILY is immediate again but still stale.
	stageChainChange2(t, w)
	plan, err = w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Strategy.String(), "DAILY") {
		t.Fatalf("stale view re-entered strategy: %s", plan.Strategy)
	}
	if _, err := w.Execute(plan.Strategy); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshStale(); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	// Third window: DAILY is current and immediate → back in strategies.
	stageChainChange3(t, w)
	plan, err = w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Strategy.String(), "DAILY") {
		t.Fatalf("refreshed view missing from strategy: %s", plan.Strategy)
	}
	if _, err := w.Execute(plan.Strategy); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func stageChainChange2(t *testing.T, w *Warehouse) {
	t.Helper()
	d, err := w.NewDelta("SALES")
	if err != nil {
		t.Fatal(err)
	}
	d.Add(Tuple{Int(5), Int(3), Int(7)}, 1)
	if err := w.StageDelta("SALES", d); err != nil {
		t.Fatal(err)
	}
}

func stageChainChange3(t *testing.T, w *Warehouse) {
	t.Helper()
	d, err := w.NewDelta("SALES")
	if err != nil {
		t.Fatal(err)
	}
	d.Add(Tuple{Int(6), Int(3), Int(9)}, 1)
	if err := w.StageDelta("SALES", d); err != nil {
		t.Fatal(err)
	}
}

func TestSetDeferredErrors(t *testing.T) {
	w := newChain(t)
	if err := w.SetDeferred("SALES", true); err == nil {
		t.Errorf("base view deferral accepted")
	}
	if err := w.SetDeferred("NOPE", true); err == nil {
		t.Errorf("unknown view accepted")
	}
}

func TestRefreshViewGuards(t *testing.T) {
	w := newChain(t)
	if err := w.SetDeferred("DAILY", true); err != nil {
		t.Fatal(err)
	}
	stageChainChange(t, w)
	plan, err := w.PlanMinWork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Execute(plan.Strategy); err != nil {
		t.Fatal(err)
	}
	// Refreshing MONTHLY before DAILY must fail (stale child).
	if err := w.Internal().RefreshView("MONTHLY"); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Errorf("refresh over stale child accepted: %v", err)
	}
	if err := w.Internal().RefreshView("SALES"); err == nil {
		t.Errorf("refresh of base view accepted")
	}
	if err := w.Internal().RefreshView("NOPE"); err == nil {
		t.Errorf("refresh of unknown view accepted")
	}
	// Bottom-up order works.
	if err := w.Internal().RefreshView("DAILY"); err != nil {
		t.Fatal(err)
	}
	if err := w.Internal().RefreshView("MONTHLY"); err != nil {
		t.Fatal(err)
	}
	if len(w.StaleViews()) != 0 {
		t.Errorf("stale remain: %v", w.StaleViews())
	}
}
