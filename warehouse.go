// Package warehouse is the public API of the warehouse-update library, a
// reproduction of Labio, Yerneni & Garcia-Molina, "Shrinking the Warehouse
// Update Window" (SIGMOD 1999).
//
// A Warehouse holds materialized views: base views loaded from (simulated)
// sources and derived views defined over them with SQL. When source changes
// arrive they are staged as deltas; an update strategy — a sequence of
// Comp (change propagation) and Inst (change installation) expressions —
// then brings every view up to date. The library implements the paper's
// strategy framework and its three planners:
//
//   - PlanMinWorkSingle: the optimal strategy for a single view (O(n log n)).
//   - PlanMinWork: expression-graph planning for the whole VDAG, optimal
//     for tree- and uniform-shaped warehouses.
//   - PlanPrune: exhaustive-but-pruned search returning the cheapest 1-way
//     VDAG strategy.
//
// Basic use:
//
//	w := warehouse.New()
//	w.MustDefineBase("SALES", warehouse.Schema{...})
//	w.MustDefineViewSQL("BYREGION", `SELECT region, SUM(amount) AS total
//	                                 FROM SALES GROUP BY region`)
//	w.Load("SALES", rows)
//	w.Refresh()
//	// … changes arrive …
//	w.StageDelta("SALES", d)
//	plan, _ := w.PlanMinWork()
//	report, _ := w.Execute(plan.Strategy)
package warehouse

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/csvio"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/plancache"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/snapshot"
	"repro/internal/sqlparse"
	"repro/internal/strategy"
	"repro/internal/vdag"
)

// Re-exported data types. The aliases make the full vocabulary of the
// library available through this single package.
type (
	// Value is a typed scalar (integer, float, string, date, bool, NULL).
	Value = relation.Value
	// Tuple is a row of values.
	Tuple = relation.Tuple
	// Column is a named, typed schema column.
	Column = relation.Column
	// Schema is an ordered list of columns.
	Schema = relation.Schema
	// Kind is a scalar type tag.
	Kind = relation.Kind
	// Delta is a set of inserted (plus) and deleted (minus) tuples.
	Delta = delta.Delta

	// Expr is a strategy expression: Comp or Inst.
	Expr = strategy.Expr
	// Comp is Comp(View, Over): propagate the changes of Over into View.
	Comp = strategy.Comp
	// Inst is Inst(View): install View's pending changes.
	Inst = strategy.Inst
	// Strategy is a sequence of Comp and Inst expressions.
	Strategy = strategy.Strategy

	// Graph is the warehouse's view DAG.
	Graph = vdag.Graph
	// Stats carries per-view sizes and delta compositions for planning.
	Stats = cost.Stats
	// ViewStat is one view's statistics.
	ViewStat = cost.ViewStat
	// CostModel carries the linear work metric's proportionality constants.
	CostModel = cost.Model

	// Report is the measured outcome of executing a strategy.
	Report = exec.Report
	// StepReport is the measured outcome of one expression.
	StepReport = exec.StepReport

	// ParallelPlan is a staged strategy (Section 9): expression sets that
	// execute concurrently.
	ParallelPlan = parallel.Plan
	// ParallelReport is the measured outcome of a parallel execution.
	ParallelReport = parallel.Report
	// Mode selects how a strategy's expressions are scheduled: one at a
	// time (ModeSequential), as barrier-separated stages (ModeStaged), or
	// barrier-free over the precedence DAG with a bounded worker pool
	// (ModeDAG).
	Mode = exec.Mode

	// ViewDef is a bound view definition (use DefineViewSQL or the algebra
	// builder to construct one).
	ViewDef = algebra.CQ
)

// Scalar type tags.
const (
	KindInt    = relation.KindInt
	KindFloat  = relation.KindFloat
	KindString = relation.KindString
	KindDate   = relation.KindDate
	KindBool   = relation.KindBool
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = relation.NewInt
	// Float builds a float value.
	Float = relation.NewFloat
	// String builds a string value.
	String = relation.NewString
	// Date parses a YYYY-MM-DD date, panicking on malformed input.
	Date = relation.MustDate
	// Null is the SQL NULL value.
	Null = relation.Null
)

// Execution modes for ExecuteMode and RunWindowMode.
const (
	ModeSequential = exec.ModeSequential
	ModeStaged     = exec.ModeStaged
	ModeDAG        = exec.ModeDAG
)

// ParseMode maps a user-facing mode name ("sequential"/"seq", "staged",
// "dag") to a Mode.
var ParseMode = exec.ParseMode

// DefaultCostModel weights compute-scanned and installed tuples equally.
var DefaultCostModel = cost.DefaultModel

// Options configure a Warehouse.
type Options struct {
	// SkipEmptyDeltas elides compute expressions whose delta operands are
	// all empty (the paper's footnote-5 extension).
	SkipEmptyDeltas bool
	// UseIndexes makes term evaluation probe maintained hash indexes on
	// state operands instead of scanning them (a storage-representation
	// optimization; measured work then counts probes, not scans).
	UseIndexes bool
	// ParallelTerms enables the intra-Compute parallel engine: the 2^r − 1
	// maintenance terms of each Comp evaluate concurrently, join-step
	// probes run as morsels on a bounded pool, and build-side hash tables
	// are shared across terms. Produced deltas and reported work are
	// identical to sequential evaluation; only wall-clock changes.
	ParallelTerms bool
	// Workers bounds the worker budget the intra-Compute engine shares
	// across all concurrent Computes (0 = GOMAXPROCS). Pass the same value
	// to ExecuteMode/RunWindowMode so DAG-level and term-level parallelism
	// compose under one budget.
	Workers int
	// ShareComputation enables window-wide shared computation: operands
	// (a view's state or pending delta) that several views' Comp
	// expressions read are hashed once, transiently materialized, and
	// reused by every consumer in the window — across sequential, staged,
	// DAG and term-parallel execution. Reported work (the linear metric)
	// is unchanged; SharedHits/SharedTuplesSaved report the physical scans
	// elided.
	ShareComputation bool
	// SharedBudgetBytes bounds the transient footprint of shared
	// materialization; results whose retention would exceed it are served
	// to their first consumer and recomputed by later ones. 0 means the
	// 64 MiB default.
	SharedBudgetBytes int64
	// MemoryBudgetBytes bounds the window-wide transient memory of update
	// execution: every build-side hash table — term-local, per-Compute
	// cached, or shared across views — draws on one budget, and builds that
	// do not fit are spilled to disk Grace-style and probed partition-wise.
	// Results, digests and reported work are identical at any budget; only
	// bytes moved change. 0 disables budgeting; ignored under UseIndexes.
	MemoryBudgetBytes int64
	// Model overrides the cost model used by the planners; zero value means
	// DefaultCostModel.
	Model CostModel
}

// Warehouse is a catalog of materialized views plus their state.
//
// # Thread safety
//
// A Warehouse serves consistent reads while update windows run. The
// contract, enforced by the concurrency tests, is:
//
//   - Query, QueryEpoch, PinEpoch, Rows, Size, Epoch, LiveEpochs and
//     ViewSchema are safe to call from any number of goroutines at any
//     time, including while a window executes or commits. Reads are served
//     from the pinned epoch — an immutable published version of the state —
//     so a reader observes exactly the pre-window or post-window warehouse,
//     never a mix (see PinEpoch for multi-view consistency).
//   - StageDelta, StageDeltaCSV, RunWindow, RunWindowMode, RunWindowOpts,
//     Recover, Clone, History, TotalWindowWork and Pending are safe to call
//     concurrently with each other and with readers; they serialize on an
//     internal mutex (a StageDelta issued while a window runs blocks until
//     the window commits or aborts, and lands in the next window).
//   - Setup methods — DefineBase, DefineViewSQL, DefineView, Load, LoadCSV,
//     Refresh, SetDeferred, RefreshStale, SetParallelism — mutate the
//     current epoch in place and require exclusive access: complete the
//     loading phase before serving queries concurrently.
//   - Execute, ExecuteMode and ExecuteParallel also mutate in place (they
//     are the measurement primitives); a served warehouse runs windows
//     through RunWindow* only, whose commit is an atomic epoch flip.
type Warehouse struct {
	// mu serializes every state transition: staging, update windows
	// (including the commit swap), recovery and history. Readers do not
	// take it — they pin the current epoch instead.
	mu      sync.Mutex
	core    *core.Warehouse
	epochs  *core.Epochs
	model   CostModel
	history []WindowReport
	// plans is the prepared-plan cache consulted by every query path
	// (Query, QueryEpoch, PinnedEpoch.Query, QuerySchema — and through
	// them the query server and follower reads). Held through an atomic
	// pointer so SetPlanCache can swap or disable it while queries are in
	// flight; nil means caching is off.
	plans atomic.Pointer[plancache.Cache[*sqlparse.Query]]
}

// New creates an empty warehouse.
func New(opts ...Options) *Warehouse {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	model := o.Model
	if model.CompCoeff == 0 && model.InstCoeff == 0 {
		model = DefaultCostModel
	}
	model.MemoryBudgetBytes = o.MemoryBudgetBytes
	c := core.New(core.Options{
		SkipEmptyDeltas:   o.SkipEmptyDeltas,
		UseIndexes:        o.UseIndexes,
		ParallelTerms:     o.ParallelTerms,
		Workers:           o.Workers,
		ShareComputation:  o.ShareComputation,
		SharedBudgetBytes: o.SharedBudgetBytes,
		MemoryBudgetBytes: o.MemoryBudgetBytes,
	})
	// The share tuner folds each window's observed sharing outcomes (hit
	// ratios, size drift) back into the share-vs-recompute gate and the
	// sharing-aware planner's election. The zero value is valid and
	// uncalibrated — decisions fall back to the static gate until windows
	// with sharing enabled have run.
	c.SetShareTuner(&cost.ShareTuner{})
	w := &Warehouse{core: c, epochs: core.NewEpochs(c), model: model}
	w.plans.Store(plancache.New[*sqlparse.Query](DefaultPlanCacheSize))
	return w
}

// DefaultPlanCacheSize is the prepared-plan cache capacity a new Warehouse
// starts with; SetPlanCache adjusts or disables it.
const DefaultPlanCacheSize = 256

// SetPlanCache replaces the prepared-plan cache with a fresh one holding
// at most size plans; size <= 0 disables caching. Existing cached plans
// (and counters) are discarded. Safe to call concurrently with queries:
// in-flight queries finish against the cache they started with.
func (w *Warehouse) SetPlanCache(size int) {
	if size <= 0 {
		w.plans.Store(nil)
		return
	}
	w.plans.Store(plancache.New[*sqlparse.Query](size))
}

// PlanCacheStats snapshots the prepared-plan cache counters; the zero
// Stats when caching is disabled.
func (w *Warehouse) PlanCacheStats() PlanCacheStats {
	if c := w.plans.Load(); c != nil {
		return c.Stats()
	}
	return PlanCacheStats{}
}

// PlanCacheStats is the prepared-plan cache's counter snapshot.
type PlanCacheStats = plancache.Stats

// adopt publishes next as the new serving epoch: the head pointer moves and
// the epoch registry flips atomically, so readers pinned to the predecessor
// keep their frozen state while new pins see the successor. Callers hold
// w.mu.
func (w *Warehouse) adopt(next *core.Warehouse) {
	w.core = next
	w.epochs.Flip(next)
}

// Epoch returns the current serving epoch number. It starts at 1 and
// increments on every committed update window (and LoadSnapshot); an
// aborted or crashed window leaves it unchanged.
func (w *Warehouse) Epoch() uint64 { return w.epochs.Current() }

// LiveEpochs returns how many epoch versions are currently alive: the
// serving epoch plus retired epochs still pinned by readers. Quiescent
// warehouses report 1; a growing number under load means long-running
// readers are holding history alive.
func (w *Warehouse) LiveEpochs() int { return w.epochs.Live() }

// SetParallelism reconfigures the intra-Compute parallel engine at runtime:
// on toggles term/morsel parallelism, workers bounds the shared pool
// (0 = GOMAXPROCS). Not safe to call while a window executes.
func (w *Warehouse) SetParallelism(workers int, on bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	opts := w.core.Options()
	opts.ParallelTerms, opts.Workers = on, workers
	w.core.SetOptions(opts)
}

// SetSharing reconfigures window-wide shared computation at runtime: on
// enables cross-view reuse of transiently materialized operands,
// budgetBytes bounds their footprint (0 = the 64 MiB default). Not safe to
// call while a window executes.
func (w *Warehouse) SetSharing(on bool, budgetBytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	opts := w.core.Options()
	opts.ShareComputation, opts.SharedBudgetBytes = on, budgetBytes
	w.core.SetOptions(opts)
}

// SetMemoryBudget reconfigures the window-wide memory budget at runtime:
// bytes bounds the transient build-state footprint of update execution, with
// over-budget builds spilling to disk (see Options.MemoryBudgetBytes); 0
// disables budgeting. The planners' cost model is updated too, so estimates
// charge the spill I/O a bounded window would pay. Not safe to call while a
// window executes.
func (w *Warehouse) SetMemoryBudget(bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	opts := w.core.Options()
	opts.MemoryBudgetBytes = bytes
	w.core.SetOptions(opts)
	w.model.MemoryBudgetBytes = bytes
}

// MemoryBudget returns the configured window memory budget in bytes (0 when
// budgeting is off).
func (w *Warehouse) MemoryBudget() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.core.Options().MemoryBudgetBytes
}

// SharingAnalysis summarizes a strategy's cross-view sharing potential (see
// AnalyzeSharing).
type SharingAnalysis struct {
	// SharedOperands counts operands (a view's state or delta, at one
	// point of the install sequence) read by at least two Comps.
	SharedOperands int
	// SharedIntermediates counts the join intermediates the election
	// admitted under the byte budget.
	SharedIntermediates int
	// EstimatedSavedTuples is the planning-statistics estimate of operand
	// tuples sharing avoids rescanning, clamped to what the configured
	// shared byte budget admits.
	EstimatedSavedTuples int64
	// Elected lists every candidate the election considered — admitted or
	// refused — in admission-priority order (EXPLAIN SHARING).
	Elected []ElectedShare
}

// ElectedShare is one sharing candidate the election considered.
type ElectedShare = planner.ElectedShare

// AnalyzeSharing runs the planner's joint sharing analysis on a strategy
// with the current planning statistics — the preview of what
// ShareComputation would reuse. The savings estimate is clamped to the
// configured shared byte budget (Options.SharedBudgetBytes, defaulting to
// the registry's 64 MiB), and join intermediates are elected alongside
// operands, so the preview matches what the registry can actually retain.
func (w *Warehouse) AnalyzeSharing(s Strategy) (SharingAnalysis, error) {
	stats, err := w.PlanningStats()
	if err != nil {
		return SharingAnalysis{}, err
	}
	p := planner.AnalyzeSharingOpts(s, exec.RefsOf(w.core), planner.SharingOptions{
		Stats:       stats,
		BudgetBytes: w.sharedBudget(),
		Width:       exec.WidthOf(w.core),
		Pairs:       exec.PairsOf(w.core),
		Tuner:       w.core.ShareTuner(),
	})
	return SharingAnalysis{
		SharedOperands:       p.SharedOperands,
		SharedIntermediates:  p.SharedIntermediates,
		EstimatedSavedTuples: p.EstimatedSavedTuples,
		Elected:              p.Elected,
	}, nil
}

// sharedBudget is the byte budget sharing elections price against: the
// configured Options.SharedBudgetBytes, or the registry's default.
func (w *Warehouse) sharedBudget() int64 {
	if b := w.core.Options().SharedBudgetBytes; b > 0 {
		return b
	}
	return core.DefaultSharedBudgetBytes
}

// SharingCalibration snapshots the share tuner's state: how many windows'
// observations it has folded in and the EWMA hit/size ratios gating the
// share-vs-recompute decision.
func (w *Warehouse) SharingCalibration() cost.ShareTuningStats {
	return w.core.ShareTuner().Stats()
}

// DefineBase registers a base view (data loaded from sources).
func (w *Warehouse) DefineBase(name string, schema Schema) error {
	return w.core.DefineBase(name, schema)
}

// MustDefineBase is DefineBase panicking on error, for static schemas.
func (w *Warehouse) MustDefineBase(name string, schema Schema) {
	if err := w.DefineBase(name, schema); err != nil {
		panic(err)
	}
}

// DefineViewSQL registers a derived view from a SQL SELECT statement over
// previously defined views.
func (w *Warehouse) DefineViewSQL(name, sql string) error {
	cq, err := sqlparse.Parse(sql, w.resolveSchema)
	if err != nil {
		return err
	}
	return w.core.DefineDerived(name, cq)
}

// MustDefineViewSQL is DefineViewSQL panicking on error.
func (w *Warehouse) MustDefineViewSQL(name, sql string) {
	if err := w.DefineViewSQL(name, sql); err != nil {
		panic(err)
	}
}

// DefineViewSQLStatement registers a view from a full
// "CREATE VIEW name AS SELECT …" statement.
func (w *Warehouse) DefineViewSQLStatement(sql string) (string, error) {
	name, cq, err := sqlparse.ParseCreateView(sql, w.resolveSchema)
	if err != nil {
		return "", err
	}
	return name, w.core.DefineDerived(name, cq)
}

// DefineView registers a derived view from a pre-built definition (see the
// algebra builder re-exported by this package's tpcd helpers, or
// DefineViewSQL for the SQL path).
func (w *Warehouse) DefineView(name string, def *ViewDef) error {
	return w.core.DefineDerived(name, def)
}

func (w *Warehouse) resolveSchema(view string) (Schema, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	v := w.core.View(view)
	if v == nil {
		return nil, fmt.Errorf("warehouse: unknown view %q", view)
	}
	return v.Schema(), nil
}

// Load bulk-inserts rows into a base view.
func (w *Warehouse) Load(name string, rows []Tuple) error {
	return w.core.LoadBase(name, rows)
}

// Refresh materializes every derived view from the current base data. Call
// once after the initial Load; afterwards, update strategies keep views
// current incrementally.
func (w *Warehouse) Refresh() error { return w.core.RefreshAll() }

// LoadCSV bulk-inserts rows from CSV (header required; columns may appear
// in any order; empty fields are NULL; dates are YYYY-MM-DD).
func (w *Warehouse) LoadCSV(name string, r io.Reader) (int, error) {
	schema, err := w.resolveSchema(name)
	if err != nil {
		return 0, err
	}
	rows, err := csvio.ReadRows(r, schema)
	if err != nil {
		return 0, err
	}
	return len(rows), w.core.LoadBase(name, rows)
}

// StageDeltaCSV stages a change batch from CSV. A trailing signed __count
// column gives each row's multiplicity (+insert, −delete); without it every
// row is one insertion.
func (w *Warehouse) StageDeltaCSV(name string, r io.Reader) (*Delta, error) {
	schema, err := w.resolveSchema(name)
	if err != nil {
		return nil, err
	}
	d, err := csvio.ReadDelta(r, schema)
	if err != nil {
		return nil, err
	}
	return d, w.StageDelta(name, d)
}

// DumpCSV writes a view's current rows (duplicates expanded) as CSV.
func (w *Warehouse) DumpCSV(name string, out io.Writer) error {
	v := w.core.View(name)
	if v == nil {
		return fmt.Errorf("warehouse: unknown view %q", name)
	}
	return csvio.WriteRows(out, v.Schema(), v)
}

// NewDelta creates an empty change batch for the named view's schema. Safe
// to call while a window commits — continuous producers build deltas
// concurrently with the window loop.
func (w *Warehouse) NewDelta(name string) (*Delta, error) {
	schema, err := w.resolveSchema(name)
	if err != nil {
		return nil, err
	}
	return delta.New(schema), nil
}

// StageDelta records an arriving change batch for a base view. Safe to call
// concurrently with readers and windows: a batch staged while a window runs
// blocks until the window finishes and applies to the next one.
func (w *Warehouse) StageDelta(name string, d *Delta) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.core.StageDelta(name, d)
}

// Views returns all view names in definition order.
func (w *Warehouse) Views() []string { return w.core.ViewNames() }

// ViewSchema returns a view's output schema.
func (w *Warehouse) ViewSchema(name string) (Schema, error) { return w.resolveSchema(name) }

// Size returns |V|: the view's row count in the current serving epoch.
func (w *Warehouse) Size(name string) (int64, error) {
	p := w.PinEpoch()
	defer p.Close()
	return p.Size(name)
}

// Rows returns a view's rows (with multiplicities) in sorted order, as of
// the current serving epoch.
func (w *Warehouse) Rows(name string) ([]CountedRow, error) {
	p := w.PinEpoch()
	defer p.Close()
	return p.Rows(name)
}

// CountedRow pairs a tuple with its multiplicity.
type CountedRow struct {
	Tuple Tuple
	Count int64
}

// Graph returns the warehouse's view DAG.
func (w *Warehouse) Graph() (*Graph, error) { return exec.Graph(w.core) }

// PlanningStats gathers the statistics the planners need: exact base-view
// deltas, estimated derived deltas (Section 5.5).
func (w *Warehouse) PlanningStats() (Stats, error) { return exec.PlanningStats(w.core) }

// Plan is a planned strategy with its provenance.
type Plan struct {
	Strategy Strategy
	// Ordering is the view ordering behind the strategy (MinWork/Prune).
	Ordering []string
	// Modified reports MinWork fell back to the level-respecting ordering.
	Modified bool
	// EstimatedWork is the linear-metric prediction (Prune only; -1 when
	// not computed).
	EstimatedWork float64
}

// PlanMinWork plans an update for the whole warehouse with the MinWork
// algorithm (optimal for tree and uniform VDAGs).
func (w *Warehouse) PlanMinWork() (Plan, error) {
	g, stats, err := w.planningInputs()
	if err != nil {
		return Plan{}, err
	}
	res, err := planner.MinWork(g, stats)
	if err != nil {
		return Plan{}, err
	}
	return Plan{Strategy: res.Strategy, Ordering: res.UsedOrdering, Modified: res.Modified, EstimatedWork: -1}, nil
}

// PlanPrune plans an update with the Prune search (cheapest 1-way VDAG
// strategy; factorial in the number of views that other views are defined
// over).
func (w *Warehouse) PlanPrune() (Plan, error) {
	g, stats, err := w.planningInputs()
	if err != nil {
		return Plan{}, err
	}
	res, err := planner.Prune(g, w.model, stats, exec.RefCounts(w.core))
	if err != nil {
		return Plan{}, err
	}
	return Plan{Strategy: res.Strategy, Ordering: res.Ordering, EstimatedWork: res.Work}, nil
}

// PlanShared plans an update with the sharing-aware Prune search: the same
// candidate space as PlanPrune (plus the dual-stage strategy), costed by
// sharing-adjusted work — multi-consumer operands and jointly-elected join
// intermediates are charged once, subject to the shared byte budget. The
// winner's sharing plan is recorded on the warehouse core
// (SetPlannedSharing), so the next executed window's registry runs with the
// jointly-optimized hints instead of re-analyzing the strategy after the
// fact.
func (w *Warehouse) PlanShared() (Plan, error) {
	g, stats, err := w.planningInputs()
	if err != nil {
		return Plan{}, err
	}
	res, err := planner.PruneShared(g, w.model, stats, exec.RefCounts(w.core), planner.SharedSearchOptions{
		Refs: exec.RefsOf(w.core),
		Sharing: planner.SharingOptions{
			BudgetBytes: w.sharedBudget(),
			Width:       exec.WidthOf(w.core),
			Pairs:       exec.PairsOf(w.core),
			Tuner:       w.core.ShareTuner(),
		},
	})
	if err != nil {
		return Plan{}, err
	}
	w.core.SetPlannedSharing(exec.HintsFromPlan(res.Plan))
	return Plan{Strategy: res.Strategy, Ordering: res.Ordering, EstimatedWork: res.AdjustedWork}, nil
}

// PlanDualStage plans the conventional propagate-then-install strategy the
// paper compares against ([CGL+96]).
func (w *Warehouse) PlanDualStage() (Plan, error) {
	g, err := w.planningGraph()
	if err != nil {
		return Plan{}, err
	}
	return Plan{Strategy: strategy.DualStageVDAG(g), EstimatedWork: -1}, nil
}

// PlanMinWorkSingle plans an optimal update strategy for one derived view
// (Algorithm 4.1). The warehouse must consist of that view and its base
// views for the strategy to cover every pending change.
func (w *Warehouse) PlanMinWorkSingle(view string) (Plan, error) {
	stats, err := w.PlanningStats()
	if err != nil {
		return Plan{}, err
	}
	children := w.core.Children(view)
	if len(children) == 0 {
		return Plan{}, fmt.Errorf("warehouse: %q is not a derived view", view)
	}
	s, err := planner.MinWorkSingle(view, children, stats)
	if err != nil {
		return Plan{}, err
	}
	ord, err := planner.DesiredOrdering(children, stats)
	if err != nil {
		return Plan{}, err
	}
	return Plan{Strategy: s, Ordering: ord, EstimatedWork: -1}, nil
}

func (w *Warehouse) planningInputs() (*vdag.Graph, cost.Stats, error) {
	g, err := w.planningGraph()
	if err != nil {
		return nil, nil, err
	}
	stats, err := w.PlanningStats()
	if err != nil {
		return nil, nil, err
	}
	return g, stats, nil
}

// planningGraph is the VDAG with deferred-maintenance views (and their
// dependents) removed: update strategies never touch them; they go stale
// instead and are brought current by RefreshStale.
func (w *Warehouse) planningGraph() (*vdag.Graph, error) {
	g, err := w.Graph()
	if err != nil {
		return nil, err
	}
	deferred := w.core.EffectivelyDeferred()
	if len(deferred) == 0 {
		return g, nil
	}
	return g.WithoutViews(deferred)
}

// SetDeferred switches a derived view between immediate maintenance (the
// default: every update window brings it current) and deferred maintenance
// (update windows skip it — and necessarily everything defined over it —
// marking it stale; RefreshStale recomputes it on demand). Deferring large,
// rarely queried summaries is one of the update-window-shrinking levers the
// paper's related work ([CKL+97]) describes as complementary.
func (w *Warehouse) SetDeferred(name string, deferred bool) error {
	return w.core.SetDeferred(name, deferred)
}

// StaleViews lists views skipped by past update windows and not yet
// refreshed, in dependency order.
func (w *Warehouse) StaleViews() []string { return w.core.StaleViews() }

// RefreshStale recomputes every stale view bottom-up from current data.
func (w *Warehouse) RefreshStale() error { return w.core.RefreshStale() }

// EstimateWork predicts a strategy's cost under the linear work metric with
// the current planning statistics.
func (w *Warehouse) EstimateWork(s Strategy) (float64, error) {
	stats, err := w.PlanningStats()
	if err != nil {
		return 0, err
	}
	return cost.Work(w.model, stats, exec.RefCounts(w.core), s)
}

// Validate checks a strategy against the correctness conditions (C1–C8).
func (w *Warehouse) Validate(s Strategy) error {
	g, err := w.Graph()
	if err != nil {
		return err
	}
	return strategy.ValidateVDAGStrategy(g, s)
}

// Execute runs a strategy, mutating the warehouse, and returns the measured
// update-window report. The strategy is validated first.
func (w *Warehouse) Execute(s Strategy) (Report, error) {
	return exec.Execute(w.core, s, exec.Options{Validate: true})
}

// Parallelize stages a correct sequential strategy into sets of
// expressions that can run concurrently (Section 9).
func (w *Warehouse) Parallelize(s Strategy) ParallelPlan {
	return parallel.Parallelize(s, w.core.Children)
}

// ExecuteParallel runs a staged plan with one goroutine per expression per
// stage.
func (w *Warehouse) ExecuteParallel(p ParallelPlan) (ParallelReport, error) {
	return parallel.Execute(w.core, p)
}

// ExecuteMode runs a strategy under the given scheduling mode after
// validating it. workers bounds the ModeDAG worker pool (0 means
// runtime.GOMAXPROCS(0)); the other modes ignore it. The report's
// TotalWork, SpanWork and CriticalPathWork are all measured on the same
// run, so modes compare directly.
func (w *Warehouse) ExecuteMode(s Strategy, mode Mode, workers int) (ParallelReport, error) {
	return parallel.Run(w.core, s, w.core.Children, mode, parallel.Options{
		Workers:  workers,
		Validate: true,
	})
}

// Verify checks every derived view against a from-scratch recomputation.
func (w *Warehouse) Verify() error { return w.core.VerifyAll() }

// Clone returns an independent copy; executing a strategy on the clone
// leaves the original untouched. Window history is copied too. Cloning is
// cheap — storage is shared copy-on-write at relation granularity — and
// safe to call while the original serves queries or runs a window.
func (w *Warehouse) Clone() *Warehouse {
	w.mu.Lock()
	defer w.mu.Unlock()
	c := w.core.Clone()
	out := &Warehouse{
		core:    c,
		epochs:  core.NewEpochs(c),
		model:   w.model,
		history: append([]WindowReport(nil), w.history...),
	}
	// The clone gets its own (empty) plan cache with the same capacity:
	// plans are immutable and could be shared, but per-clone counters keep
	// the stats meaningful.
	if pc := w.plans.Load(); pc != nil {
		out.plans.Store(plancache.New[*sqlparse.Query](pc.Cap()))
	}
	return out
}

// Pending returns the views with staged or computed-but-uninstalled changes.
func (w *Warehouse) Pending() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.core.PendingViews()
}

// Internal returns the underlying core warehouse for advanced (in-module)
// use such as the experiment harness.
func (w *Warehouse) Internal() *core.Warehouse { return w.core }

// SaveSnapshot writes the materialized state of every view to out in the
// library's versioned binary format. The warehouse must be quiescent (no
// staged or uninstalled changes). The state written is one consistent
// epoch: a window committing mid-write cannot tear the snapshot.
func (w *Warehouse) SaveSnapshot(out io.Writer) error {
	p := w.PinEpoch()
	defer p.Close()
	return snapshot.Write(p.pin.Warehouse(), out)
}

// LoadSnapshot restores state saved by SaveSnapshot into this warehouse,
// whose catalog must match the snapshot's. Existing state is replaced. The
// restore lands as a new serving epoch, so concurrent readers see either
// the old state or the restored one, never a partial restore.
func (w *Warehouse) LoadSnapshot(in io.Reader) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	next := w.core.Clone()
	if err := snapshot.Read(next, in); err != nil {
		return err
	}
	w.adopt(next)
	return nil
}

// Script renders a strategy as the Section 5.5 "update script": one stored
// procedure call per expression, against procedures compiled once from the
// VDAG (see exec.Prepare).
func (w *Warehouse) Script(s Strategy) string { return exec.Script(s) }
