package warehouse

import (
	"fmt"
	"sync"
	"testing"
)

// TestPlanCacheHitOnRepeat: the second run of the same query shape is a
// cache hit, including when the SQL is reformatted, and survives a window
// commit (window commits don't change the catalog).
func TestPlanCacheHitOnRepeat(t *testing.T) {
	w := newRetail(t)
	const q = "SELECT region, total FROM REGION_TOTALS ORDER BY total DESC"
	if _, err := w.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Query("SELECT region,  total\nFROM REGION_TOTALS  ORDER BY total DESC"); err != nil {
		t.Fatal(err)
	}
	st := w.PlanCacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after repeat: %+v", st)
	}

	stageSale(t, w)
	if _, err := w.RunWindow(MinWorkPlanner); err != nil {
		t.Fatal(err)
	}
	rows, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("post-window rows = %v", rows)
	}
	st = w.PlanCacheStats()
	if st.Hits != 2 || st.Invalidations != 0 {
		t.Fatalf("plan did not survive the window commit: %+v", st)
	}
}

// TestPlanCacheInvalidatedByViewDefinition: defining a view bumps the
// catalog version, so a cached plan is discarded and rebound on its next
// probe rather than served against the stale binding.
func TestPlanCacheInvalidatedByViewDefinition(t *testing.T) {
	w := newRetail(t)
	const q = "SELECT region FROM REGION_TOTALS"
	for i := 0; i < 2; i++ {
		if _, err := w.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.PlanCacheStats(); st.Hits != 1 {
		t.Fatalf("warmup: %+v", st)
	}
	w.MustDefineViewSQL("WEST_ONLY", "SELECT sale_id FROM SALES_BY_STORE WHERE region = 'west'")
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Query(q); err != nil {
		t.Fatal(err)
	}
	st := w.PlanCacheStats()
	if st.Invalidations != 1 {
		t.Fatalf("view definition did not invalidate: %+v", st)
	}
	// The rebound plan is cached again.
	if _, err := w.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := w.PlanCacheStats(); got.Hits != 2 {
		t.Fatalf("rebind not cached: %+v", got)
	}
}

// TestPlanCacheDisabled: SetPlanCache(0) turns the cache off; queries
// still work and the stats read as an empty cache.
func TestPlanCacheDisabled(t *testing.T) {
	w := newRetail(t)
	w.SetPlanCache(0)
	for i := 0; i < 3; i++ {
		if _, err := w.Query("SELECT region FROM REGION_TOTALS"); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.PlanCacheStats(); st != (PlanCacheStats{}) {
		t.Fatalf("disabled cache has stats: %+v", st)
	}
	// Re-enabling mid-flight is safe and takes effect.
	w.SetPlanCache(8)
	for i := 0; i < 2; i++ {
		if _, err := w.Query("SELECT region FROM REGION_TOTALS"); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.PlanCacheStats(); st.Hits != 1 || st.Cap != 8 {
		t.Fatalf("re-enabled cache: %+v", st)
	}
}

// TestPlanCacheConcurrentStorm: many goroutines hammer a small set of
// query shapes while windows commit underneath them. Run under -race this
// checks that cached plans are safely shared across concurrent readers
// and that the cache itself is race-free against invalidation-free
// version checks.
func TestPlanCacheConcurrentStorm(t *testing.T) {
	w := newRetail(t)
	shapes := []string{
		"SELECT region, total FROM REGION_TOTALS ORDER BY total DESC",
		"SELECT sale_id, amount FROM SALES_BY_STORE WHERE amount >= 10.0 ORDER BY 1 LIMIT 2",
		"SELECT region, COUNT(*) AS n FROM SALES_BY_STORE GROUP BY region ORDER BY n DESC LIMIT 1 OFFSET 0",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := w.Query(shapes[(g+i)%len(shapes)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Windows commit concurrently with the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			d, err := w.NewDelta("SALES")
			if err != nil {
				t.Error(err)
				return
			}
			d.Add(Tuple{Int(int64(200 + i)), Int(2), Float(float64(i))}, 1)
			if err := w.StageDelta("SALES", d); err != nil {
				t.Error(err)
				return
			}
			if _, err := w.RunWindow(MinWorkPlanner); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	st := w.PlanCacheStats()
	if st.Hits == 0 {
		t.Fatalf("storm produced no cache hits: %+v", st)
	}
	if st.Hits+st.Misses < 8*50 {
		t.Fatalf("probe accounting off: %+v", st)
	}
}

// TestPlanCacheLRUAtFacade: a capacity-1 cache evicts as shapes alternate.
func TestPlanCacheLRUAtFacade(t *testing.T) {
	w := newRetail(t)
	w.SetPlanCache(1)
	for i := 0; i < 3; i++ {
		for _, q := range []string{
			"SELECT region FROM REGION_TOTALS",
			"SELECT total FROM REGION_TOTALS",
		} {
			if _, err := w.Query(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := w.PlanCacheStats()
	if st.Evictions == 0 || st.Entries != 1 {
		t.Fatalf("alternating shapes on cap-1 cache: %+v", st)
	}
}

// TestPlanCacheCloneIsolation: a clone starts with its own empty cache;
// queries against the clone don't touch the parent's counters.
func TestPlanCacheCloneIsolation(t *testing.T) {
	w := newRetail(t)
	if _, err := w.Query("SELECT region FROM REGION_TOTALS"); err != nil {
		t.Fatal(err)
	}
	before := w.PlanCacheStats()
	c := w.Clone()
	if st := c.PlanCacheStats(); st.Entries != 0 || st.Cap != before.Cap {
		t.Fatalf("clone cache = %+v", st)
	}
	if _, err := c.Query("SELECT region FROM REGION_TOTALS"); err != nil {
		t.Fatal(err)
	}
	if st := w.PlanCacheStats(); st != before {
		t.Fatalf("clone query mutated parent stats: %+v vs %+v", st, before)
	}
}

// TestPlanCacheManyShapes exercises eviction bookkeeping under capacity
// pressure from distinct shapes.
func TestPlanCacheManyShapes(t *testing.T) {
	w := newRetail(t)
	w.SetPlanCache(4)
	for i := 0; i < 16; i++ {
		q := fmt.Sprintf("SELECT region FROM REGION_TOTALS LIMIT %d", i+1)
		if _, err := w.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	st := w.PlanCacheStats()
	if st.Entries != 4 || st.Evictions != 12 {
		t.Fatalf("capacity pressure: %+v", st)
	}
}
