package warehouse

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
)

// These tests pin down the facade's thread-safety contract (see the
// Warehouse doc comment): readers are safe concurrently with windows, a
// window commit is an atomic epoch flip, and an aborted window leaves the
// serving epoch untouched. Run them under -race.

// stageEastSale stages one insert into SALES for store 2 (east).
func stageEastSale(t *testing.T, w *Warehouse, id int64) {
	t.Helper()
	d, err := w.NewDelta("SALES")
	if err != nil {
		t.Fatal(err)
	}
	d.Add(Tuple{Int(id), Int(2), Float(50)}, 1)
	if err := w.StageDelta("SALES", d); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentQueriesDuringWindows: readers race window commits across
// every window path (RunWindow, RunWindowMode, RunWindowOpts). Every query
// sees exactly a published state — the east total is always one of the
// per-epoch values, never a blend — and epochs are monotonic per reader.
func TestConcurrentQueriesDuringWindows(t *testing.T) {
	w := newRetail(t)
	const windows = 9

	valid := map[string]bool{"(east, 5, 1)": true}
	for i := 1; i <= windows; i++ {
		valid[fmt.Sprintf("(east, %d, %d)", 5+50*i, 1+i)] = true
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, epoch, err := w.QueryEpoch(
					"SELECT region, SUM(amount) AS total, COUNT(*) AS n FROM SALES_BY_STORE GROUP BY region ORDER BY region LIMIT 1")
				if err != nil {
					t.Error(err)
					return
				}
				if epoch < last {
					t.Errorf("epoch went backwards: %d after %d", epoch, last)
					return
				}
				last = epoch
				if got := rows[0].String(); !valid[got] {
					t.Errorf("blended east total %s at epoch %d", got, epoch)
					return
				}
			}
		}()
	}

	for i := 0; i < windows; i++ {
		stageEastSale(t, w, int64(200+i))
		var err error
		switch i % 3 {
		case 0:
			_, err = w.RunWindow(MinWorkPlanner)
		case 1:
			_, err = w.RunWindowMode(MinWorkPlanner, ModeDAG, 0)
		default:
			_, err = w.RunWindowOpts(WindowOptions{Mode: ModeDAG})
		}
		if err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if got := w.Epoch(); got != windows+1 {
		t.Errorf("epoch after %d windows = %d", windows, got)
	}
	if err := w.Verify(); err != nil {
		t.Error(err)
	}
}

// TestPinnedEpochMultiViewConsistency: a pin taken before a window keeps a
// mutually consistent pair of views (the join and the aggregate over it)
// while windows commit underneath; retired epochs are collected once
// unpinned.
func TestPinnedEpochMultiViewConsistency(t *testing.T) {
	w := newRetail(t)
	p := w.PinEpoch()
	defer p.Close()

	for i := 0; i < 3; i++ {
		stageEastSale(t, w, int64(300+i))
		if _, err := w.RunWindowOpts(WindowOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	detail, err := p.Size("SALES_BY_STORE")
	if err != nil {
		t.Fatal(err)
	}
	summary, err := p.Rows("REGION_TOTALS")
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, r := range summary {
		n += r.Tuple[2].Int()
	}
	if detail != 3 || n != 3 {
		t.Fatalf("pinned pair diverged: detail=%d, summary count=%d", detail, n)
	}
	if w.LiveEpochs() != 2 {
		t.Fatalf("live epochs with one old pin = %d", w.LiveEpochs())
	}
	p.Close()
	if w.LiveEpochs() != 1 {
		t.Fatalf("live epochs after unpin = %d", w.LiveEpochs())
	}
	if rows, _ := w.Rows("SALES_BY_STORE"); int64(len(rows)) != 6 {
		t.Fatalf("current epoch rows = %d", len(rows))
	}
}

// TestCloneRacesWindows: Clone (a reader that snapshots the whole
// warehouse) races windows and staging; every clone is internally
// consistent and verifies against recomputation.
func TestCloneRacesWindows(t *testing.T) {
	w := newRetail(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	clones := make(chan *Warehouse, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				close(clones)
				return
			default:
			}
			select {
			case clones <- w.Clone():
			default:
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := range clones {
			if err := c.Verify(); err != nil {
				t.Errorf("clone failed verification: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 6; i++ {
		stageEastSale(t, w, int64(400+i))
		if _, err := w.RunWindowOpts(WindowOptions{Mode: ModeDAG}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestFollowerQueriesDuringReplay: the replication leg. A leader runs
// windows journaled into a buffer; a follower replays the shipped windows
// through ApplyWindow (the same path internal/replicate's follower drives)
// while readers hammer its /query surface. Every read on the follower sees
// exactly a state the leader committed — never a blend — and epochs are
// monotonic per reader (read-your-epoch holds across replicated flips).
func TestFollowerQueriesDuringReplay(t *testing.T) {
	const windows = 9
	leader := newRetail(t)
	var buf bytes.Buffer
	j := NewJournal(&buf)
	for i := 0; i < windows; i++ {
		stageEastSale(t, leader, int64(600+i))
		if _, err := leader.RunWindowOpts(WindowOptions{Mode: ModeDAG, Journal: j}); err != nil {
			t.Fatal(err)
		}
	}
	lg, err := journal.ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := lg.CommittedCount(); got != windows {
		t.Fatalf("leader journal holds %d committed windows", got)
	}

	valid := map[string]bool{"(east, 5, 1)": true}
	for i := 1; i <= windows; i++ {
		valid[fmt.Sprintf("(east, %d, %d)", 5+50*i, 1+i)] = true
	}

	follower := newRetail(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, epoch, err := follower.QueryEpoch(
					"SELECT region, SUM(amount) AS total, COUNT(*) AS n FROM SALES_BY_STORE GROUP BY region ORDER BY region LIMIT 1")
				if err != nil {
					t.Error(err)
					return
				}
				if epoch < last {
					t.Errorf("follower epoch went backwards: %d after %d", epoch, last)
					return
				}
				last = epoch
				if got := rows[0].String(); !valid[got] {
					t.Errorf("blended east total %s at follower epoch %d", got, epoch)
					return
				}
			}
		}()
	}

	for i := range lg.Windows {
		rep, err := follower.ApplyWindow(&lg.Windows[i])
		if err != nil {
			t.Errorf("replaying window %d: %v", i, err)
			break
		}
		if !rep.Replicated {
			t.Errorf("window %d: replayed report not marked Replicated", i)
		}
	}
	close(stop)
	wg.Wait()

	if got, want := follower.Epoch(), leader.Epoch(); got != want {
		t.Errorf("follower epoch %d, leader %d", got, want)
	}
	if got, want := follower.StateDigest(), leader.StateDigest(); got != want {
		t.Errorf("follower state digest %016x, leader %016x", got, want)
	}
	if err := follower.Verify(); err != nil {
		t.Error(err)
	}
}

// TestWindowAbortLeavesEpochUnchanged: a deadline abort keeps the serving
// epoch, the staged batch, and the journal all in their pre-window states
// — and the same window then commits cleanly on a rerun.
func TestWindowAbortLeavesEpochUnchanged(t *testing.T) {
	w := newRetail(t)
	var buf bytes.Buffer
	j := NewJournal(&buf)
	stageEastSale(t, w, 500)

	before := w.Epoch()
	_, err := w.RunWindowOpts(WindowOptions{Mode: ModeDAG, Journal: j, Timeout: time.Nanosecond})
	if !errors.Is(err, ErrWindowAborted) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrWindowAborted wrapping DeadlineExceeded, got %v", err)
	}
	if got := w.Epoch(); got != before {
		t.Fatalf("abort flipped the epoch: %d -> %d", before, got)
	}
	if j.NeedsRecovery() {
		t.Fatal("aborted window left the journal in-flight")
	}
	if p := w.Pending(); len(p) != 1 {
		t.Fatalf("abort consumed the staged batch: %v", p)
	}
	rows, err := w.Query("SELECT region, SUM(amount) AS total FROM SALES_BY_STORE GROUP BY region ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].String() != "(east, 5)" {
		t.Fatalf("abort leaked state: %s", rows[0])
	}

	if _, err := w.RunWindowOpts(WindowOptions{Mode: ModeDAG, Journal: j}); err != nil {
		t.Fatal(err)
	}
	if w.Epoch() != before+1 || j.Committed() != 1 {
		t.Fatalf("rerun: epoch=%d committed=%d", w.Epoch(), j.Committed())
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestExternalCancelAbortsWindow: cancellation through WindowOptions.Context
// (what a SIGINT delivers) behaves exactly like a deadline abort.
func TestExternalCancelAbortsWindow(t *testing.T) {
	w := newRetail(t)
	stageEastSale(t, w, 501)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := w.RunWindowOpts(WindowOptions{Mode: ModeDAG, Context: ctx})
	if !errors.Is(err, ErrWindowAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrWindowAborted wrapping Canceled, got %v", err)
	}
	if w.Epoch() != 1 || len(w.Pending()) != 1 {
		t.Fatalf("cancelled window mutated state: epoch=%d pending=%v", w.Epoch(), w.Pending())
	}
}
