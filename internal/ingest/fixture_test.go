package ingest

import (
	"math/rand"
	"testing"

	warehouse "repro"
)

// The test fixture mirrors the repo's online-serving demo: STORES and SALES
// bases, a join, and two aggregates. Quarter-unit amounts keep float sums
// order-independent, so state digests compare exactly across warehouses
// built from the same accepted stream — the property every differential
// check here rests on.
func buildFixture(t testing.TB, seed int64, stores, sales int) *warehouse.Warehouse {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := warehouse.New()
	w.MustDefineBase("STORES", warehouse.Schema{
		{Name: "store_id", Kind: warehouse.KindInt},
		{Name: "region", Kind: warehouse.KindString},
	})
	w.MustDefineBase("SALES", warehouse.Schema{
		{Name: "sale_id", Kind: warehouse.KindInt},
		{Name: "store_id", Kind: warehouse.KindInt},
		{Name: "amount", Kind: warehouse.KindFloat},
	})
	w.MustDefineViewSQL("SALES_BY_STORE", `
		SELECT s.sale_id, s.store_id, s.amount, st.region
		FROM SALES s, STORES st
		WHERE s.store_id = st.store_id`)
	w.MustDefineViewSQL("REGION_TOTALS", `
		SELECT region, SUM(amount) AS total, COUNT(*) AS n
		FROM SALES_BY_STORE GROUP BY region`)
	regions := []string{"north", "south", "east", "west"}
	srows := make([]warehouse.Tuple, stores)
	for i := range srows {
		srows[i] = warehouse.Tuple{warehouse.Int(int64(i)), warehouse.String(regions[i%len(regions)])}
	}
	if err := w.Load("STORES", srows); err != nil {
		t.Fatal(err)
	}
	rows := make([]warehouse.Tuple, sales)
	for i := range rows {
		rows[i] = warehouse.Tuple{
			warehouse.Int(int64(i)),
			warehouse.Int(rng.Int63n(int64(stores))),
			warehouse.Float(float64(rng.Intn(200)) / 4),
		}
	}
	if err := w.Load("SALES", rows); err != nil {
		t.Fatal(err)
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	return w
}

// saleSet is one producer change set, kept so the oracle can replay exactly
// the accepted stream.
type saleSet struct {
	ids     []int64
	stores  []int64
	amounts []float64
}

// genSets produces deterministic change sets of n sales each.
func genSets(seed int64, stores, startID, sets, n int) []saleSet {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	next := int64(startID)
	out := make([]saleSet, sets)
	for i := range out {
		s := saleSet{}
		for j := 0; j < n; j++ {
			s.ids = append(s.ids, next)
			s.stores = append(s.stores, rng.Int63n(int64(stores)))
			s.amounts = append(s.amounts, float64(rng.Intn(200))/4)
			next++
		}
		out[i] = s
	}
	return out
}

func (s saleSet) delta(t testing.TB, w *warehouse.Warehouse) *warehouse.Delta {
	t.Helper()
	d, err := w.NewDelta("SALES")
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.ids {
		d.Add(warehouse.Tuple{
			warehouse.Int(s.ids[i]),
			warehouse.Int(s.stores[i]),
			warehouse.Float(s.amounts[i]),
		}, 1)
	}
	return d
}

// oracleDigest replays the accepted sets sequentially — stage everything,
// one window — and returns the resulting state digest. Incremental
// maintenance is batching-invariant, so however the ingester micro-batched
// the same accepted stream, the digests must agree.
func oracleDigest(t testing.TB, seed int64, stores, sales int, accepted []saleSet) uint64 {
	t.Helper()
	w := buildFixture(t, seed, stores, sales)
	for _, s := range accepted {
		if err := w.StageDelta("SALES", s.delta(t, w)); err != nil {
			t.Fatal(err)
		}
	}
	if len(accepted) > 0 {
		if _, err := w.RunWindow(warehouse.MinWorkPlanner); err != nil {
			t.Fatal(err)
		}
	}
	return w.StateDigest()
}
