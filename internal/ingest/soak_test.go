package ingest

import (
	"context"
	"flag"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	warehouse "repro"
	"repro/internal/faults"
)

// -soak stretches TestSoakIngest's wall-clock budget; `make soak-smoke` runs
// it at ~25s under -race. The default keeps plain `go test` fast.
var soakDur = flag.Duration("soak", 1500*time.Millisecond, "ingest soak duration")

// TestSoakIngest runs continuous ingestion under probabilistic faults for a
// wall-clock budget: transient faults fire randomly at window steps and
// journal appends, and incarnations are killed with injected crashes and
// restarted mid-stream. At the end the warehouse must equal the sequential
// oracle over the accepted stream (digest-clean recovery), no goroutines may
// leak, and staleness must not have run away.
func TestSoakIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	const (
		seed   = int64(77)
		stores = 8
		sales  = 150
	)
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	wjPath := filepath.Join(dir, "window.journal")
	ijPath := filepath.Join(dir, "ingest.journal")
	sets := genSets(seed, stores, sales, 512, 6)
	soakLimit := len(sets) - 64 // tail reserved for the paced freshness phase
	baseline := runtime.NumGoroutine()
	deadline := time.Now().Add(*soakDur)

	next := 0
	incarnations, crashes := 0, 0
	var lastStats Stats
	for {
		incarnations++
		if incarnations > 2000 {
			t.Fatal("soak thrashing: 2000 incarnations without converging")
		}
		w := buildFixture(t, seed, stores, sales)
		wj, err := warehouse.OpenJournal(wjPath)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Restore(wj); err != nil {
			t.Fatalf("incarnation %d: Restore: %v", incarnations, err)
		}
		inj := faults.New(rng.Int63())
		soaking := time.Now().Before(deadline)
		if soaking {
			// Probabilistic transient faults; most incarnations also get a
			// scheduled kill. The post-deadline incarnation runs clean so the
			// soak always converges.
			inj.SetProbability("step", 0.01)
			inj.SetProbability(pointJournal, 0.002)
			points := []string{pointAccept, pointCut, pointStage, "step"}
			inj.CrashAt(points[rng.Intn(len(points))], 1+rng.Intn(12))
		}
		ing, err := New(Config{
			Warehouse:    w,
			Journal:      wj,
			JournalPath:  ijPath,
			SLO:          50 * time.Millisecond,
			Tick:         time.Millisecond,
			MinBatch:     8,
			QueueLimit:   512,
			BlockTimeout: 20 * time.Millisecond,
			Retries:      3,
			Faults:       inj,
		})
		if err != nil {
			t.Fatalf("incarnation %d: New: %v", incarnations, err)
		}
		wait := startRun(ing)
		for next < soakLimit && time.Now().Before(deadline) {
			err := ing.Submit("SALES", sets[next].delta(t, w))
			if err == nil {
				next++
				continue
			}
			if faults.IsCrash(err) || ing.Stats().Err != "" {
				break // incarnation is dead
			}
			// Overloaded or transient: back off and retry the same set.
			time.Sleep(500 * time.Microsecond)
		}
		closeErr := ing.Close(context.Background())
		runErr := wait()
		lastStats = ing.Stats()
		wj.Close()
		if closeErr == nil && runErr == nil {
			if next >= soakLimit || !time.Now().Before(deadline) {
				break // converged (or drained clean at the deadline)
			}
			continue
		}
		crashes++
	}
	t.Logf("soak: %d incarnations, %d crashes, %d/%d sets accepted, %d windows, p99 staleness %.1fms",
		incarnations, crashes, next, len(sets), lastStats.Windows, lastStats.StalenessP99MS)

	// No staleness runaway: after the fault storm, a clean incarnation under
	// paced load must return to SLO-regime freshness — crash backlogs drain
	// instead of compounding.
	{
		w := buildFixture(t, seed, stores, sales)
		wj, err := warehouse.OpenJournal(wjPath)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Restore(wj); err != nil {
			t.Fatalf("paced-phase restore: %v", err)
		}
		ing, err := New(Config{
			Warehouse:   w,
			Journal:     wj,
			JournalPath: ijPath,
			SLO:         50 * time.Millisecond,
			Tick:        time.Millisecond,
			MinBatch:    8,
		})
		if err != nil {
			t.Fatal(err)
		}
		wait := startRun(ing)
		phaseStart := time.Now()
		for i := 0; i < 40 && next < len(sets); i++ {
			if err := ing.Submit("SALES", sets[next].delta(t, w)); err != nil {
				t.Fatalf("paced submit: %v", err)
			}
			next++
			time.Sleep(2 * time.Millisecond)
		}
		if err := ing.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := wait(); err != nil {
			t.Fatal(err)
		}
		phase := time.Since(phaseStart)
		st := ing.Stats()
		wj.Close()
		t.Logf("paced: requeued=%d windows=%d p50=%.1fms p99=%.1fms phase=%s",
			st.Requeued, st.Windows, st.StalenessP50MS, st.StalenessP99MS, phase.Round(time.Millisecond))
		// Runaway means the crash backlog compounded instead of draining: a
		// change's staleness approaching the whole paced phase's wall clock.
		// The bound is relative to the phase so a loaded host (slow windows,
		// high absolute staleness) doesn't read as a backlog that never drained.
		limit := float64(phase.Milliseconds())
		if limit < 1000 {
			limit = 1000
		}
		if st.Windows > 0 && st.StalenessP99MS > limit {
			t.Fatalf("staleness did not recover after the fault storm: p99 %.1fms over a %s phase", st.StalenessP99MS, phase)
		}
	}

	// Digest-clean recovery: final state equals the oracle over the accepted
	// prefix, and the ingest journal reconciles with nothing uninstalled.
	w := buildFixture(t, seed, stores, sales)
	wj, err := warehouse.OpenJournal(wjPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Restore(wj); err != nil {
		t.Fatalf("final restore: %v", err)
	}
	want := oracleDigest(t, seed, stores, sales, sets[:next])
	if got := w.StateDigest(); got != want {
		t.Fatalf("digest mismatch after soak: got %x want %x", got, want)
	}
	sum, err := InspectJournal(ijPath, wj.Committed())
	if err != nil {
		t.Fatal(err)
	}
	wj.Close()
	if sum.Accepts != next {
		t.Fatalf("journal holds %d accepts, producer had %d accepted", sum.Accepts, next)
	}
	if sum.Requeued != 0 {
		t.Fatalf("soak left %d accepted entr(ies) uninstalled: %+v", sum.Requeued, sum)
	}

	// No goroutine leaks once the timers settle.
	var now int
	for i := 0; i < 50; i++ {
		if now = runtime.NumGoroutine(); now <= baseline+2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if now > baseline+2 {
		t.Fatalf("goroutine leak: %d at start, %d after soak", baseline, now)
	}
}
