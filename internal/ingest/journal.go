package ingest

// The ingest journal is the crash-safe half of the exactly-once handoff
// between the continuous change stream and the window journal. It reuses
// internal/journal's frame format ([type][uvarint len][payload][CRC64],
// torn-tail tolerant) with its own record vocabulary:
//
//   - accept (0x10): one Submit's changes — sequence number, accept time,
//     view, and the encoded row changes. Written before the change enters
//     the queue, so an accepted change survives a crash.
//   - cut (0x11): a batch boundary — which accept sequences the batch
//     covers and, crucially, the window-journal sequence number the batch
//     will run as. No separate "installed" record is needed: the window
//     journal assigns sequence numbers only to committed windows (an
//     aborted window re-uses its number), so a batch cut for window s is
//     durably installed if and only if the window journal's committed
//     count ever reaches s.
//   - reset (0x12): written when a restarted ingester resumes over an
//     existing journal. It voids all earlier cut records and pins the
//     installed floor, because the new incarnation re-cuts the surviving
//     entries with fresh window sequence numbers — without the reset, a
//     stale cut whose window number a *different* batch later commits
//     could claim changes that were never installed.
//
// Reconciliation on restart: take the installed floor (the max of every
// reset's floor and every live cut's high sequence whose window number the
// window journal has committed); every accepted entry above the floor is
// requeued. Combined with Warehouse.Restore — replay committed windows,
// recover the in-flight one — a crash at any point neither drops nor
// double-applies a change.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	warehouse "repro"
	"repro/internal/journal"
)

// Ingest-journal record types, disjoint from the window journal's 1..4.
const (
	typeAccept byte = 0x10
	typeCut    byte = 0x11
	typeReset  byte = 0x12
)

// rowChange is one encoded row delta, mirroring the window journal's
// per-row shape.
type rowChange struct {
	key   string
	count int64
}

// entry is one accepted Submit: the unit of queueing and journaling.
type entry struct {
	seq  uint64
	at   int64 // accept time, UnixNano
	view string
	rows []rowChange
	n    int // row-changes (delta size: insertions plus deletions)
}

// cutRecord marks a batch boundary as read back from the journal.
type cutRecord struct {
	batch     int
	lo, hi    uint64
	windowSeq int
	changes   int
}

// resetRecord voids earlier cuts and pins the installed floor.
type resetRecord struct {
	installedHi uint64
	committed   int
}

func encodeRows(d *warehouse.Delta) ([]rowChange, int) {
	var rows []rowChange
	var n int64
	d.ScanEncoded(func(key string, count int64) bool {
		rows = append(rows, rowChange{key: key, count: count})
		if count < 0 {
			n -= count
		} else {
			n += count
		}
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	return rows, int(n)
}

func encodeAccept(e entry) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, e.seq)
	putVarint(&buf, e.at)
	putString(&buf, e.view)
	putUvarint(&buf, uint64(len(e.rows)))
	for _, rc := range e.rows {
		putString(&buf, rc.key)
		putVarint(&buf, rc.count)
	}
	return buf.Bytes()
}

func decodeAccept(p []byte) (entry, error) {
	r := bytes.NewReader(p)
	var e entry
	var err error
	if e.seq, err = binary.ReadUvarint(r); err != nil {
		return e, fmt.Errorf("ingest: accept seq: %w", err)
	}
	if e.at, err = binary.ReadVarint(r); err != nil {
		return e, fmt.Errorf("ingest: accept time: %w", err)
	}
	if e.view, err = getString(r); err != nil {
		return e, fmt.Errorf("ingest: accept view: %w", err)
	}
	nrows, err := binary.ReadUvarint(r)
	if err != nil {
		return e, fmt.Errorf("ingest: accept row count: %w", err)
	}
	for i := uint64(0); i < nrows; i++ {
		var rc rowChange
		if rc.key, err = getString(r); err != nil {
			return e, fmt.Errorf("ingest: accept row: %w", err)
		}
		if rc.count, err = binary.ReadVarint(r); err != nil {
			return e, fmt.Errorf("ingest: accept row count: %w", err)
		}
		if rc.count < 0 {
			e.n -= int(rc.count)
		} else {
			e.n += int(rc.count)
		}
		e.rows = append(e.rows, rc)
	}
	if r.Len() != 0 {
		return e, fmt.Errorf("ingest: accept record has %d trailing bytes", r.Len())
	}
	return e, nil
}

func encodeCut(c cutRecord) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, uint64(c.batch))
	putUvarint(&buf, c.lo)
	putUvarint(&buf, c.hi)
	putUvarint(&buf, uint64(c.windowSeq))
	putUvarint(&buf, uint64(c.changes))
	return buf.Bytes()
}

func decodeCut(p []byte) (cutRecord, error) {
	r := bytes.NewReader(p)
	var c cutRecord
	fields := []*uint64{}
	var batch, ws, changes uint64
	fields = append(fields, &batch, &c.lo, &c.hi, &ws, &changes)
	for i, f := range fields {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return c, fmt.Errorf("ingest: cut field %d: %w", i, err)
		}
		*f = v
	}
	c.batch, c.windowSeq, c.changes = int(batch), int(ws), int(changes)
	if r.Len() != 0 {
		return c, fmt.Errorf("ingest: cut record has %d trailing bytes", r.Len())
	}
	return c, nil
}

func encodeReset(rr resetRecord) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, rr.installedHi)
	putUvarint(&buf, uint64(rr.committed))
	return buf.Bytes()
}

func decodeReset(p []byte) (resetRecord, error) {
	r := bytes.NewReader(p)
	var rr resetRecord
	var err error
	if rr.installedHi, err = binary.ReadUvarint(r); err != nil {
		return rr, fmt.Errorf("ingest: reset floor: %w", err)
	}
	committed, err := binary.ReadUvarint(r)
	if err != nil {
		return rr, fmt.Errorf("ingest: reset committed: %w", err)
	}
	rr.committed = int(committed)
	if r.Len() != 0 {
		return rr, fmt.Errorf("ingest: reset record has %d trailing bytes", r.Len())
	}
	return rr, nil
}

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func putVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutVarint(tmp[:], v)])
}

func putString(buf *bytes.Buffer, s string) {
	putUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func getString(r *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > uint64(r.Len()) {
		return "", fmt.Errorf("string length %d exceeds remaining %d bytes", n, r.Len())
	}
	b := make([]byte, n)
	if _, err := r.Read(b); err != nil {
		return "", err
	}
	return string(b), nil
}

// journalView is an ingest journal parsed back from disk.
type journalView struct {
	entries []entry     // every accepted entry, in sequence order
	cuts    []cutRecord // cut records after the last reset ("live" cuts)
	floor   uint64      // installed floor pinned by resets
	resets  int
	torn    bool // the file ended in a torn or corrupt frame (crash artifact)
}

// readJournal parses an ingest journal file. A missing file is an empty
// journal. Like the window journal's file reader, a torn or corrupt tail is
// tolerated and treated as not written — the expected artifact of a crash
// mid-append.
func readJournal(path string) (journalView, error) {
	var v journalView
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return v, nil
	}
	if err != nil {
		return v, err
	}
	for len(buf) > 0 {
		typ, payload, n, derr := journal.DecodeFrame(buf)
		if derr != nil || n == 0 {
			v.torn = true
			break
		}
		switch typ {
		case typeAccept:
			e, err := decodeAccept(payload)
			if err != nil {
				return v, err
			}
			v.entries = append(v.entries, e)
		case typeCut:
			c, err := decodeCut(payload)
			if err != nil {
				return v, err
			}
			v.cuts = append(v.cuts, c)
		case typeReset:
			rr, err := decodeReset(payload)
			if err != nil {
				return v, err
			}
			if rr.installedHi > v.floor {
				v.floor = rr.installedHi
			}
			v.cuts = nil // a reset voids every earlier cut
			v.resets++
		default:
			return v, fmt.Errorf("ingest: unknown journal record type %#x", typ)
		}
		buf = buf[n:]
	}
	return v, nil
}

// reconcile computes the exactly-once resume state against the window
// journal's committed count: the installed floor (everything at or below it
// reached a committed window) and the accepted entries above it, which the
// restarted ingester requeues.
func (v journalView) reconcile(committed int) (requeue []entry, floor uint64) {
	floor = v.floor
	for _, c := range v.cuts {
		if c.windowSeq <= committed && c.hi > floor {
			floor = c.hi
		}
	}
	for _, e := range v.entries {
		if e.seq > floor {
			requeue = append(requeue, e)
		}
	}
	return requeue, floor
}

// JournalSummary is InspectJournal's report: enough to assert a journal is
// parseable and to sanity-check drain and recovery tests.
type JournalSummary struct {
	// Accepts counts accept records; AcceptedChanges their total row-changes.
	Accepts         int
	AcceptedChanges int
	// Cuts counts live cut records (after the last reset); Resets the resets.
	Cuts   int
	Resets int
	// InstalledFloor is the accept sequence at or below which every change
	// reached a committed window, given the window journal's committed count.
	InstalledFloor uint64
	// Requeued counts entries above the floor — what a restart would replay.
	Requeued int
	// Torn reports the file ended in a torn or corrupt frame.
	Torn bool
}

// InspectJournal parses an ingest journal and reconciles it against a window
// journal's committed count, without constructing an ingester.
func InspectJournal(path string, committed int) (JournalSummary, error) {
	v, err := readJournal(path)
	if err != nil {
		return JournalSummary{}, err
	}
	requeue, floor := v.reconcile(committed)
	s := JournalSummary{
		Accepts:        len(v.entries),
		Cuts:           len(v.cuts),
		Resets:         v.resets,
		InstalledFloor: floor,
		Requeued:       len(requeue),
		Torn:           v.torn,
	}
	for _, e := range v.entries {
		s.AcceptedChanges += e.n
	}
	return s, nil
}
