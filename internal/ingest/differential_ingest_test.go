package ingest

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	warehouse "repro"
	"repro/internal/faults"
)

// TestDifferentialIngest is the exactly-once acceptance harness: ~50 seeded
// trials run a journaled ingester over a deterministic change stream with a
// crash or transient fault injected at a random ingest point
// (accept/journal/cut/stage) or window point (step/recompute). A crash kills
// the incarnation — journals left exactly as a dead process would leave
// them — and the trial "restarts the process": rebuild the fixture, restore
// from the window journal, resume the ingest journal, submit whatever the
// producer never got accepted. Every trial must converge to bags identical
// to the sequential oracle over the same accepted stream, with the ingest
// journal reconciling to nothing left over. Run with -race in CI.
func TestDifferentialIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness skipped in -short")
	}
	const (
		trials = 50
		stores = 8
		sales  = 120
	)
	points := []string{pointAccept, pointJournal, pointCut, pointStage, "step", "recompute"}
	modes := []warehouse.Mode{warehouse.ModeSequential, warehouse.ModeDAG}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run("", func(t *testing.T) {
			t.Parallel()
			seed := int64(1000 + trial)
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			wjPath := filepath.Join(dir, "window.journal")
			ijPath := filepath.Join(dir, "ingest.journal")
			mode := modes[rng.Intn(len(modes))]
			sets := genSets(seed, stores, sales, 8+rng.Intn(5), 4+rng.Intn(8))

			// Most trials inject one fault into the first incarnation; a few
			// run fault-free as a pure concurrency leg.
			inj := faults.New(seed)
			if trial%7 != 0 {
				point := points[rng.Intn(len(points))]
				nth := 1 + rng.Intn(6)
				if rng.Float64() < 0.6 {
					inj.CrashAt(point, nth)
				} else {
					inj.FailAt(point, nth)
				}
			}

			next := 0 // first set the producer has not had accepted
			for incarnation := 0; ; incarnation++ {
				if incarnation >= 6 {
					t.Fatalf("trial %d did not converge within 6 incarnations", trial)
				}
				w := buildFixture(t, seed, stores, sales)
				wj, err := warehouse.OpenJournal(wjPath)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := w.Restore(wj); err != nil {
					t.Fatalf("incarnation %d: Restore: %v", incarnation, err)
				}
				cfg := Config{
					Warehouse:   w,
					Journal:     wj,
					JournalPath: ijPath,
					Mode:        mode,
					Workers:     2,
					Tick:        500 * time.Microsecond,
					MinBatch:    4,
					Retries:     2,
					Backoff:     100 * time.Microsecond,
				}
				if incarnation == 0 {
					cfg.Faults = inj
				}
				ing, err := New(cfg)
				if err != nil {
					t.Fatalf("incarnation %d: New: %v", incarnation, err)
				}
				wait := startRun(ing)
				for next < len(sets) {
					err := ing.Submit("SALES", sets[next].delta(t, w))
					switch {
					case err == nil:
						next++
					case errors.Is(err, ErrIngestOverloaded):
						time.Sleep(time.Millisecond)
					case faults.IsTransient(err) && !errors.Is(err, ErrIngestClosed):
						// Not accepted; retry the same set.
					default:
						// Crash-class or closed: this incarnation is dead.
						goto dead
					}
				}
			dead:
				closeErr := ing.Close(context.Background())
				runErr := wait()
				wj.Close()
				if closeErr == nil && runErr == nil && next == len(sets) {
					// Converged: every set accepted and drained cleanly.
					want := oracleDigest(t, seed, stores, sales, sets)
					if got := w.StateDigest(); got != want {
						t.Fatalf("trial %d: digest mismatch after %d incarnation(s): got %x want %x",
							trial, incarnation+1, got, want)
					}
					wj2, err := warehouse.OpenJournal(wjPath)
					if err != nil {
						t.Fatal(err)
					}
					committed := wj2.Committed()
					if wj2.NeedsRecovery() {
						t.Fatalf("trial %d: window journal left in-flight after clean close", trial)
					}
					wj2.Close()
					sum, err := InspectJournal(ijPath, committed)
					if err != nil {
						t.Fatal(err)
					}
					if sum.Accepts != len(sets) {
						t.Fatalf("trial %d: journal holds %d accepts, want %d (drop or double-accept)",
							trial, sum.Accepts, len(sets))
					}
					if sum.Requeued != 0 {
						t.Fatalf("trial %d: %d accepted entr(ies) never installed: %+v", trial, sum.Requeued, sum)
					}
					return
				}
				if closeErr != nil && !faults.IsCrash(closeErr) && !inj.Crashed() {
					t.Fatalf("trial %d incarnation %d: non-crash close failure: %v", trial, incarnation, closeErr)
				}
			}
		})
	}
}
