package ingest

import (
	"context"
	"testing"

	warehouse "repro"
)

// BenchmarkIngestSteadyState measures the amortized per-tuple cost of the
// continuous path — Submit (encode + queue) plus the micro-batch windows
// that drain it — with journaling off, isolating ingest overhead from fsync.
// Reported as ns/change and maintenance work/change.
func BenchmarkIngestSteadyState(b *testing.B) {
	w := buildFixture(b, fixSeed, fixStores, fixSales)
	ing, err := New(Config{
		Warehouse:    w,
		MinBatch:     64,
		InitialBatch: 256,
		QueueLimit:   4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	sets := genSets(fixSeed, fixStores, fixSales, 64, 16)
	deltas := make([]*warehouse.Delta, len(sets))
	for i, s := range sets {
		deltas[i] = s.delta(b, w)
	}
	changes := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sets[i%len(sets)]
		if err := ing.Submit("SALES", deltas[i%len(deltas)]); err != nil {
			b.Fatal(err)
		}
		changes += len(s.ids)
		// Stand in for the window loop: drain once the batch target fills.
		ing.mu.Lock()
		ready := ing.depth >= ing.target
		ing.mu.Unlock()
		if ready {
			if err := ing.drain(ctx, false); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := ing.Close(ctx); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	st := ing.Stats()
	if changes > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(changes), "ns/change")
	}
	b.ReportMetric(st.WorkPerChange, "work/change")
	b.ReportMetric(float64(st.Windows), "windows")
}
