package ingest

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	warehouse "repro"
	"repro/internal/faults"
)

const (
	fixSeed   = int64(42)
	fixStores = 16
	fixSales  = 400
)

func journalPaths(t *testing.T) (wjPath, ijPath string) {
	t.Helper()
	dir := t.TempDir()
	return filepath.Join(dir, "window.journal"), filepath.Join(dir, "ingest.journal")
}

// startRun launches Run and returns a func that waits for its result.
func startRun(ing *Ingester) (wait func() error) {
	done := make(chan error, 1)
	go func() { done <- ing.Run(context.Background()) }()
	return func() error { return <-done }
}

// TestIngestSteadyState drives a journaled ingester through a steady stream,
// closes it, and checks every accepted change was installed exactly once:
// the warehouse digest matches the sequential oracle over the same stream,
// and the ingest journal reconciles with nothing left to requeue.
func TestIngestSteadyState(t *testing.T) {
	wjPath, ijPath := journalPaths(t)
	w := buildFixture(t, fixSeed, fixStores, fixSales)
	wj, err := warehouse.OpenJournal(wjPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wj.Close()
	ing, err := New(Config{
		Warehouse:   w,
		Journal:     wj,
		JournalPath: ijPath,
		SLO:         100 * time.Millisecond,
		Tick:        time.Millisecond,
		MinBatch:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	wait := startRun(ing)

	sets := genSets(fixSeed, fixStores, fixSales, 30, 12)
	for _, s := range sets {
		if err := ing.Submit("SALES", s.delta(t, w)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := wait(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	want := oracleDigest(t, fixSeed, fixStores, fixSales, sets)
	if got := w.StateDigest(); got != want {
		t.Fatalf("digest mismatch after steady ingestion: got %x want %x", got, want)
	}
	st := ing.Stats()
	if st.Windows == 0 || st.Batches == 0 {
		t.Fatalf("no windows ran: %+v", st)
	}
	if st.Shed != 0 {
		t.Fatalf("unexpected shedding on an unloaded queue: %+v", st)
	}
	if st.StalenessP99MS <= 0 {
		t.Fatalf("staleness percentiles not tracked: %+v", st)
	}
	if !ing.calib.Calibrated() {
		t.Fatal("calibrator observed no windows")
	}
	sum, err := InspectJournal(ijPath, wj.Committed())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Accepts != len(sets) || sum.Requeued != 0 || sum.Torn {
		t.Fatalf("journal did not reconcile clean: %+v", sum)
	}
	if wj.NeedsRecovery() {
		t.Fatal("window journal left in-flight after clean drain")
	}
}

// TestIngestBackpressureSheds fills the bounded queue with no window loop
// running: Submit must shed with ErrIngestOverloaded instead of growing the
// queue, and a change set larger than the whole queue is refused outright.
func TestIngestBackpressureSheds(t *testing.T) {
	w := buildFixture(t, fixSeed, fixStores, 64)
	ing, err := New(Config{Warehouse: w, QueueLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	sets := genSets(fixSeed, fixStores, 64, 6, 16)
	accepted := 0
	shedErrs := 0
	for _, s := range sets {
		err := ing.Submit("SALES", s.delta(t, w))
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrIngestOverloaded):
			shedErrs++
		default:
			t.Fatalf("unexpected Submit error: %v", err)
		}
	}
	if accepted != 4 || shedErrs != 2 {
		t.Fatalf("accepted %d shed %d, want 4 accepted and 2 shed at limit 64", accepted, shedErrs)
	}
	st := ing.Stats()
	if st.QueueDepth > st.QueueLimit {
		t.Fatalf("queue exceeded its bound: %+v", st)
	}
	if st.Shed != 32 {
		t.Fatalf("shed counter = %d, want 32 row-changes", st.Shed)
	}
	// A single set bigger than the queue can never be accepted.
	big := genSets(fixSeed+1, fixStores, 1000, 1, 80)[0]
	if err := ing.Submit("SALES", big.delta(t, w)); !errors.Is(err, ErrIngestOverloaded) {
		t.Fatalf("oversized set: got %v, want ErrIngestOverloaded", err)
	}
}

// TestIngestBackpressureBlocksThenDrains checks the middle rung of the
// pressure ladder: with the window loop running and a generous BlockTimeout,
// a producer hammering a tiny queue blocks rather than sheds, and every
// change lands.
func TestIngestBackpressureBlocksThenDrains(t *testing.T) {
	w := buildFixture(t, fixSeed, fixStores, fixSales)
	ing, err := New(Config{
		Warehouse:    w,
		QueueLimit:   32,
		BlockTimeout: 5 * time.Second,
		Tick:         time.Millisecond,
		MinBatch:     8,
		InitialBatch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	wait := startRun(ing)
	sets := genSets(fixSeed, fixStores, fixSales, 20, 16)
	for _, s := range sets {
		if err := ing.Submit("SALES", s.delta(t, w)); err != nil {
			t.Fatalf("Submit under backpressure: %v", err)
		}
	}
	if err := ing.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if st := ing.Stats(); st.Shed != 0 {
		t.Fatalf("blocked producer was shed: %+v", st)
	}
	want := oracleDigest(t, fixSeed, fixStores, fixSales, sets)
	if got := w.StateDigest(); got != want {
		t.Fatalf("digest mismatch: got %x want %x", got, want)
	}
}

// TestIngestCloseFlushes submits without a running window loop and relies on
// Close alone to drain the queue through final windows.
func TestIngestCloseFlushes(t *testing.T) {
	wjPath, ijPath := journalPaths(t)
	w := buildFixture(t, fixSeed, fixStores, fixSales)
	wj, err := warehouse.OpenJournal(wjPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wj.Close()
	ing, err := New(Config{Warehouse: w, Journal: wj, JournalPath: ijPath})
	if err != nil {
		t.Fatal(err)
	}
	sets := genSets(fixSeed, fixStores, fixSales, 5, 20)
	for _, s := range sets {
		if err := ing.Submit("SALES", s.delta(t, w)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ing.Submit("SALES", sets[0].delta(t, w)); !errors.Is(err, ErrIngestClosed) {
		t.Fatalf("Submit after Close: got %v, want ErrIngestClosed", err)
	}
	want := oracleDigest(t, fixSeed, fixStores, fixSales, sets)
	if got := w.StateDigest(); got != want {
		t.Fatalf("digest mismatch after Close flush: got %x want %x", got, want)
	}
	sum, err := InspectJournal(ijPath, wj.Committed())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requeued != 0 {
		t.Fatalf("Close left uninstalled entries: %+v", sum)
	}
}

// TestIngestResumeAfterCrash kills the ingester with a crash-class fault
// before any batch is installed, then simulates a process restart — rebuild
// the fixture, restore from the window journal, resume the ingest journal —
// and checks the new incarnation requeues and installs every accepted
// change exactly once.
func TestIngestResumeAfterCrash(t *testing.T) {
	wjPath, ijPath := journalPaths(t)
	w := buildFixture(t, fixSeed, fixStores, fixSales)
	wj, err := warehouse.OpenJournal(wjPath)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(7)
	inj.CrashAt(pointStage, 1)
	ing, err := New(Config{Warehouse: w, Journal: wj, JournalPath: ijPath, Faults: inj, Tick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sets := genSets(fixSeed, fixStores, fixSales, 6, 15)
	for _, s := range sets {
		if err := ing.Submit("SALES", s.delta(t, w)); err != nil {
			t.Fatal(err)
		}
	}
	runErr := ing.Run(context.Background())
	if runErr == nil || !faults.IsCrash(runErr) {
		t.Fatalf("Run survived an injected crash: %v", runErr)
	}
	ing.Close(context.Background()) // release the journal file, like process death would
	wj.Close()

	// "Restart": deterministic fixture, window-journal restore, ingest resume.
	w2 := buildFixture(t, fixSeed, fixStores, fixSales)
	wj2, err := warehouse.OpenJournal(wjPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wj2.Close()
	if _, err := w2.Restore(wj2); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	ing2, err := New(Config{Warehouse: w2, Journal: wj2, JournalPath: ijPath, Tick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	st := ing2.Stats()
	if st.Requeued != len(sets) {
		t.Fatalf("resume requeued %d entries, want all %d accepted", st.Requeued, len(sets))
	}
	if err := ing2.Close(context.Background()); err != nil {
		t.Fatalf("drain after resume: %v", err)
	}
	want := oracleDigest(t, fixSeed, fixStores, fixSales, sets)
	if got := w2.StateDigest(); got != want {
		t.Fatalf("digest mismatch after crash+resume: got %x want %x", got, want)
	}
	sum, err := InspectJournal(ijPath, wj2.Committed())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resets != 1 || sum.Requeued != 0 {
		t.Fatalf("resumed journal did not reconcile clean: %+v", sum)
	}
}

// TestIngestTransientFaultsRetried checks the two transient-fault paths that
// must not lose changes: a failed accept is reported to the producer (who
// retries), and a failed cut restores the queue for the next tick.
func TestIngestTransientFaultsRetried(t *testing.T) {
	w := buildFixture(t, fixSeed, fixStores, fixSales)
	inj := faults.New(3)
	inj.FailAt(pointAccept, 1)
	inj.FailAt(pointCut, 1)
	ing, err := New(Config{Warehouse: w, Faults: inj, Tick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	wait := startRun(ing)
	sets := genSets(fixSeed, fixStores, fixSales, 4, 10)
	for _, s := range sets {
		err := ing.Submit("SALES", s.delta(t, w))
		if err != nil {
			if !faults.IsTransient(err) {
				t.Fatalf("Submit: %v", err)
			}
			if err := ing.Submit("SALES", s.delta(t, w)); err != nil {
				t.Fatalf("Submit retry: %v", err)
			}
		}
	}
	if err := ing.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	want := oracleDigest(t, fixSeed, fixStores, fixSales, sets)
	if got := w.StateDigest(); got != want {
		t.Fatalf("digest mismatch after transient faults: got %x want %x", got, want)
	}
}

// TestIngestTightSLODegradesTarget runs with an unachievably tight SLO: the
// first window blows its deadline (halving the target), the deadline doubles
// until a window commits, and the calibrated batch sizer then pins the
// target at MinBatch. This is the graceful-degradation ladder's first rung.
func TestIngestTightSLODegradesTarget(t *testing.T) {
	w := buildFixture(t, fixSeed, fixStores, fixSales)
	// A 500ns window budget has always expired by the time the DAG scheduler
	// reaches its first node check, so the first attempts abort
	// deterministically; the doubled deadline eventually lets one commit.
	ing, err := New(Config{
		Warehouse:    w,
		SLO:          time.Microsecond,
		Mode:         warehouse.ModeDAG, // deadlines cancel between DAG node dispatches
		Workers:      2,
		MinBatch:     8,
		InitialBatch: 256,
		Tick:         time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wait := startRun(ing)
	sets := genSets(fixSeed, fixStores, fixSales, 4, 64)
	for _, s := range sets {
		if err := ing.Submit("SALES", s.delta(t, w)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	st := ing.Stats()
	if st.DeadlineAborts == 0 {
		t.Fatalf("a 10µs window deadline never aborted: %+v", st)
	}
	if st.BatchTarget != 8 {
		t.Fatalf("tight SLO did not degrade the batch target to MinBatch: target=%d %+v", st.BatchTarget, st)
	}
	if len(st.BatchTrajectory) == 0 {
		t.Fatalf("batch trajectory not recorded: %+v", st)
	}
	want := oracleDigest(t, fixSeed, fixStores, fixSales, sets)
	if got := w.StateDigest(); got != want {
		t.Fatalf("digest mismatch under deadline pressure: got %x want %x", got, want)
	}
}

// TestInspectJournalMissing checks a nonexistent journal reads as empty —
// the first boot of a fresh deployment.
func TestInspectJournalMissing(t *testing.T) {
	sum, err := InspectJournal(filepath.Join(t.TempDir(), "nope.journal"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum != (JournalSummary{}) {
		t.Fatalf("missing journal not empty: %+v", sum)
	}
}
