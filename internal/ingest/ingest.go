// Package ingest runs a warehouse under a continuous change stream: it
// accumulates source changes in a bounded, crash-safe staging buffer and
// triggers micro-batch update windows adaptively, sizing each batch so the
// predicted window length — the planner's work estimate, calibrated online
// against measured windows (internal/cost.Calibrator) — keeps staleness
// under a configurable SLO while the query server keeps serving.
//
// The paper optimizes one operator-invoked window; this package is the
// production regime around it (cf. Olteanu's IVM survey: amortized per-tuple
// maintenance under bounded staleness). The robustness contract:
//
//   - Backpressure, never unbounded memory: the change queue is bounded in
//     row-changes. As it fills, the ingester first cuts batches early (the
//     high watermark wakes the window loop), then blocks producers up to
//     BlockTimeout, then sheds with ErrIngestOverloaded.
//   - Crash-safe exactly-once handoff: accepted changes and batch cuts are
//     journaled (see journal.go) so a crash anywhere — mid-accept, mid-cut,
//     mid-window — resumes without dropping or double-applying a change.
//   - Graceful degradation: a window that blows its deadline halves the
//     batch target and retries with a doubled deadline; engine failures ride
//     RunWindowOpts's DAG→sequential→recompute ladder; transient faults
//     retry on the shared jittered backoff (internal/retry).
//   - Observability: Stats surfaces p50/p99 staleness, per-tuple work, queue
//     depth, shed count, and the batch-size trajectory; each committed
//     window's report carries warehouse.IngestInfo for Counters().
package ingest

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	warehouse "repro"
	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/retry"
)

// ErrIngestOverloaded is returned by Submit when the change queue stayed
// full past BlockTimeout: the change was shed, not accepted. Typed so
// producers can distinguish load shedding from hard failures and back off.
var ErrIngestOverloaded = errors.New("ingest: change queue full, change shed")

// ErrIngestClosed is returned by Submit after Close has begun: the ingester
// no longer accepts stream changes (it may still be flushing).
var ErrIngestClosed = errors.New("ingest: ingester closed")

// Fault-injection points consulted by the ingester (see internal/faults):
// "ingest.accept" fires once per Submit before the change is journaled,
// "ingest.journal" once per ingest-journal append, "ingest.cut" once per
// batch cut, and "ingest.stage" once per batch staging.
const (
	pointAccept  = "ingest.accept"
	pointJournal = "ingest.journal"
	pointCut     = "ingest.cut"
	pointStage   = "ingest.stage"
)

// Config configures an Ingester. Warehouse is required; everything else has
// serviceable defaults.
type Config struct {
	// Warehouse receives the staged batches and runs the windows.
	Warehouse *warehouse.Warehouse
	// Journal is the window journal batches are committed through. It is
	// what makes the handoff exactly-once: a batch cut for window sequence s
	// is installed iff the journal's committed count reaches s. Nil runs
	// unjournaled windows (no crash safety; benches only).
	Journal *warehouse.Journal
	// JournalPath is the ingest journal file (accept/cut records). Empty
	// disables the ingest journal: accepted changes live only in memory.
	JournalPath string
	// SLO is the p99 staleness target the batch sizer aims for; 0 disables
	// adaptive sizing (the target stays at InitialBatch).
	SLO time.Duration
	// SLOFraction is the fraction of SLO budgeted for a window's execution
	// (the rest absorbs queueing delay); default 0.5.
	SLOFraction float64
	// Planner, Mode, Workers select planning and scheduling for the windows.
	Planner warehouse.PlannerName
	Mode    warehouse.Mode
	Workers int
	// QueueLimit bounds the queue in row-changes; default 4096.
	QueueLimit int
	// HighWater is the queue fraction that triggers an early cut; default 0.5.
	HighWater float64
	// BlockTimeout is how long Submit blocks on a full queue before shedding;
	// 0 sheds immediately.
	BlockTimeout time.Duration
	// MinBatch, MaxBatch, InitialBatch bound and seed the adaptive batch
	// target (row-changes); defaults 16, QueueLimit, 256.
	MinBatch, MaxBatch, InitialBatch int
	// Tick is the maximum batch interval: queued changes never wait longer
	// than this for a window, whatever the target; default 5ms.
	Tick time.Duration
	// Retries and Backoff shape transient-fault retries, both inside
	// RunWindowOpts and around whole batches; defaults 2 and 1ms.
	Retries int
	Backoff time.Duration
	// Faults injects failures at the ingest points and is passed through to
	// the windows.
	Faults *faults.Injector
	// OnWindow, when set, observes each committed window's report (with
	// Ingest populated). Called from the window loop; keep it fast.
	OnWindow func(warehouse.WindowReport)
	// Now replaces time.Now (tests).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.SLOFraction <= 0 || c.SLOFraction > 1 {
		c.SLOFraction = 0.5
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 4096
	}
	if c.HighWater <= 0 || c.HighWater > 1 {
		c.HighWater = 0.5
	}
	if c.MinBatch <= 0 {
		c.MinBatch = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = c.QueueLimit
	}
	if c.InitialBatch <= 0 {
		c.InitialBatch = 256
	}
	if c.InitialBatch > c.MaxBatch {
		c.InitialBatch = c.MaxBatch
	}
	if c.MinBatch > c.MaxBatch {
		c.MinBatch = c.MaxBatch
	}
	if c.Tick <= 0 {
		c.Tick = 5 * time.Millisecond
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// batch is one cut micro-batch riding toward a window.
type batch struct {
	id        int
	entries   []entry
	n         int // row-changes
	lo, hi    uint64
	accepted  time.Time // oldest entry's accept time: the staleness clock
	windowSeq int
	target    int // batch target when cut, for the report
	staged    bool
	predicted int64
}

const stalenessRingSize = 2048

// Ingester is the continuous ingestion stage. Create with New, feed with
// Submit from any number of producers, drive with Run, stop with Close.
type Ingester struct {
	cfg Config

	// runMu serializes batch cut+execute (the window loop and Close's drain).
	runMu sync.Mutex

	mu        sync.Mutex
	notFull   *sync.Cond
	queue     []entry
	depth     int // queued row-changes
	acceptSeq uint64
	batchID   int
	target    int
	pending   *batch // cut but not yet committed (survives ctx-cancelled windows)
	closed    bool
	running   bool
	err       error // terminal (crash-class) error; sticky

	jf *os.File

	accepted        int64
	acceptedBatches int64
	shed            int64
	batches         int64
	windows         int64
	deadlineAborts  int64
	degraded        int64
	requeued        int
	totalWork       int64
	totalChanges    int64
	stale           [stalenessRingSize]int64
	staleN          int
	staleIdx        int
	traj            []int

	calib cost.Calibrator
	wake  chan struct{}
}

// New creates an ingester. When JournalPath names an existing ingest
// journal, the ingester resumes it: entries not yet installed (per the
// window journal's committed count — restore the warehouse through
// Warehouse.Restore first) are requeued, and a reset record voids the dead
// incarnation's cuts.
func New(cfg Config) (*Ingester, error) {
	if cfg.Warehouse == nil {
		return nil, errors.New("ingest: Config.Warehouse is required")
	}
	cfg = cfg.withDefaults()
	in := &Ingester{cfg: cfg, target: cfg.InitialBatch, wake: make(chan struct{}, 1)}
	in.notFull = sync.NewCond(&in.mu)
	if cfg.JournalPath != "" {
		v, err := readJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(cfg.JournalPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		in.jf = f
		if len(v.entries) > 0 || len(v.cuts) > 0 || v.resets > 0 {
			committed := 0
			if cfg.Journal != nil {
				committed = cfg.Journal.Committed()
			}
			requeue, floor := v.reconcile(committed)
			frame := journal.EncodeFrame(typeReset, encodeReset(resetRecord{installedHi: floor, committed: committed}))
			if _, err := f.Write(frame); err != nil {
				f.Close()
				return nil, fmt.Errorf("ingest: writing reset record: %w", err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("ingest: syncing reset record: %w", err)
			}
			for _, e := range requeue {
				in.queue = append(in.queue, e)
				in.depth += e.n
				in.accepted += int64(e.n)
				in.acceptedBatches++
			}
			in.requeued = len(requeue)
			if n := len(v.entries); n > 0 {
				in.acceptSeq = v.entries[n-1].seq
			}
			for _, c := range v.cuts {
				if c.batch > in.batchID {
					in.batchID = c.batch
				}
			}
		}
	}
	return in, nil
}

func (in *Ingester) now() time.Time { return in.cfg.Now() }

// kick wakes the window loop without blocking.
func (in *Ingester) kick() {
	select {
	case in.wake <- struct{}{}:
	default:
	}
}

// failLocked records the terminal error (first one wins) and stops intake.
// Crash-class faults land here: the ingester behaves like a killed process —
// nothing further is written, Run returns, producers are refused.
func (in *Ingester) failLocked(err error) {
	if in.err == nil {
		in.err = err
	}
	in.closed = true
	in.notFull.Broadcast()
}

func (in *Ingester) fail(err error) {
	in.mu.Lock()
	in.failLocked(err)
	in.mu.Unlock()
	in.kick()
}

// writeRecordLocked appends one framed record to the ingest journal
// (mu held). The pointJournal fault point fires before the write.
func (in *Ingester) writeRecordLocked(typ byte, payload []byte) error {
	if err := in.cfg.Faults.Hit(pointJournal); err != nil {
		return err
	}
	if in.jf == nil {
		return nil
	}
	if _, err := in.jf.Write(journal.EncodeFrame(typ, payload)); err != nil {
		return fmt.Errorf("ingest: journal append: %w", err)
	}
	if err := in.jf.Sync(); err != nil {
		return fmt.Errorf("ingest: journal sync: %w", err)
	}
	return nil
}

func (in *Ingester) highWaterMark() int {
	hw := int(in.cfg.HighWater * float64(in.cfg.QueueLimit))
	if hw < 1 {
		hw = 1
	}
	return hw
}

// Submit accepts one change set for a base view. It blocks while the queue
// is full (up to BlockTimeout), then sheds with ErrIngestOverloaded. On nil
// error the changes are accepted: journaled (when configured) and queued for
// the next micro-batch — they will reach a committed window exactly once,
// crash or no crash. Safe for concurrent producers.
func (in *Ingester) Submit(view string, d *warehouse.Delta) error {
	if d == nil || d.IsEmpty() {
		return nil
	}
	rows, n := encodeRows(d)
	in.mu.Lock()
	if in.err != nil {
		err := in.err
		in.mu.Unlock()
		return err
	}
	if in.closed {
		in.mu.Unlock()
		return ErrIngestClosed
	}
	if err := in.cfg.Faults.Hit(pointAccept); err != nil {
		if faults.IsCrash(err) {
			in.failLocked(err)
		}
		in.mu.Unlock()
		return err
	}
	if n > in.cfg.QueueLimit {
		in.shed += int64(n)
		in.mu.Unlock()
		return fmt.Errorf("%w: change set of %d exceeds queue limit %d", ErrIngestOverloaded, n, in.cfg.QueueLimit)
	}
	var deadline time.Time
	for in.depth+n > in.cfg.QueueLimit {
		if in.closed {
			in.mu.Unlock()
			if in.err != nil {
				return in.err
			}
			return ErrIngestClosed
		}
		now := in.now()
		if deadline.IsZero() {
			deadline = now.Add(in.cfg.BlockTimeout)
		}
		if !now.Before(deadline) {
			in.shed += int64(n)
			in.mu.Unlock()
			in.kick() // drain pressure even as we shed
			return ErrIngestOverloaded
		}
		in.kick() // space appears only when the window loop drains
		t := time.AfterFunc(deadline.Sub(now), func() {
			in.mu.Lock()
			in.notFull.Broadcast()
			in.mu.Unlock()
		})
		in.notFull.Wait()
		t.Stop()
	}
	e := entry{seq: in.acceptSeq + 1, at: in.now().UnixNano(), view: view, rows: rows, n: n}
	if err := in.writeRecordLocked(typeAccept, encodeAccept(e)); err != nil {
		if faults.IsCrash(err) {
			in.failLocked(err)
		}
		in.mu.Unlock()
		return err
	}
	in.acceptSeq = e.seq
	in.queue = append(in.queue, e)
	in.depth += n
	in.accepted += int64(n)
	in.acceptedBatches++
	urgent := in.depth >= in.target || in.depth >= in.highWaterMark()
	in.mu.Unlock()
	if urgent {
		in.kick()
	}
	return nil
}

// Run drives the window loop until ctx is cancelled, Close drains the
// queue, or a crash-class fault fires (the injected-crash analogue of
// process death: Run returns the fault with the journals left exactly as a
// killed process would leave them).
func (in *Ingester) Run(ctx context.Context) error {
	in.mu.Lock()
	if in.running {
		in.mu.Unlock()
		return errors.New("ingest: Run called twice")
	}
	in.running = true
	in.mu.Unlock()
	defer func() {
		in.mu.Lock()
		in.running = false
		in.mu.Unlock()
	}()
	timer := time.NewTimer(in.cfg.Tick)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-in.wake:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		case <-timer.C:
		}
		timer.Reset(in.cfg.Tick)
		if err := in.drain(ctx, false); err != nil {
			return err
		}
		in.mu.Lock()
		terr := in.err
		done := in.closed && in.pending == nil && len(in.queue) == 0
		in.mu.Unlock()
		if terr != nil {
			return terr
		}
		if done {
			return nil
		}
	}
}

// drain cuts and runs batches. Without flush it stops once the queue drops
// below the batch target (let changes accumulate); with flush it keeps
// going until the queue is empty. Returns only terminal errors.
func (in *Ingester) drain(ctx context.Context, flush bool) error {
	in.runMu.Lock()
	defer in.runMu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil // shutdown: Run's select or Close reports it
		}
		in.mu.Lock()
		b := in.pending
		in.pending = nil
		terr := in.err
		in.mu.Unlock()
		if terr != nil {
			return terr
		}
		if b == nil {
			var err error
			if b, err = in.cut(); err != nil {
				return err
			}
		}
		if b == nil {
			return nil
		}
		if err := in.runBatch(ctx, b); err != nil {
			return err
		}
		in.mu.Lock()
		more := in.depth >= in.target || (flush && len(in.queue) > 0)
		in.mu.Unlock()
		if !more {
			return nil
		}
	}
}

// cut detaches up to one batch target of queued entries and journals the
// batch boundary with the window sequence it will run as. A failed cut
// record puts the entries back: un-journaled batches never run. Returns
// (nil, nil) when the queue is empty or the failure is retryable.
func (in *Ingester) cut() (*batch, error) {
	in.mu.Lock()
	if len(in.queue) == 0 {
		in.mu.Unlock()
		return nil, nil
	}
	take, n := 0, 0
	for _, e := range in.queue {
		if take > 0 && n+e.n > in.target {
			break
		}
		take++
		n += e.n
		if n >= in.target {
			break
		}
	}
	ents := in.queue[:take:take]
	in.queue = in.queue[take:]
	in.depth -= n
	in.batchID++
	windowSeq := 0
	if in.cfg.Journal != nil {
		windowSeq = in.cfg.Journal.NextSeq()
	}
	b := &batch{
		id:        in.batchID,
		entries:   ents,
		n:         n,
		lo:        ents[0].seq,
		hi:        ents[take-1].seq,
		accepted:  time.Unix(0, ents[0].at),
		windowSeq: windowSeq,
		target:    in.target,
	}
	cutErr := in.cfg.Faults.Hit(pointCut)
	if cutErr == nil {
		cutErr = in.writeRecordLocked(typeCut, encodeCut(cutRecord{
			batch: b.id, lo: b.lo, hi: b.hi, windowSeq: b.windowSeq, changes: b.n,
		}))
	}
	if cutErr != nil {
		// The boundary never became durable: restore the queue as if the cut
		// had not happened. Crash-class kills the ingester; transient faults
		// just retry on the next tick.
		in.queue = append(append([]entry(nil), ents...), in.queue...)
		in.depth += n
		in.batchID--
		if faults.IsCrash(cutErr) {
			in.failLocked(cutErr)
			in.mu.Unlock()
			return nil, cutErr
		}
		in.mu.Unlock()
		return nil, nil
	}
	in.batches++
	in.notFull.Broadcast()
	in.mu.Unlock()
	return b, nil
}

// runBatch stages the batch and runs windows until one commits. Deadline
// aborts halve the batch target and double the deadline (progress is
// guaranteed: the staged batch re-runs until it fits); transient failures
// retry on the shared jittered backoff; crash-class faults return
// immediately with the journals left in-flight.
func (in *Ingester) runBatch(ctx context.Context, b *batch) error {
	in.mu.Lock()
	in.pending = b
	in.mu.Unlock()
	bo := retry.Backoff{Policy: retry.Policy{Base: in.cfg.Backoff, Max: 250 * time.Millisecond, Jitter: 0.2}}
	transientLeft := in.cfg.Retries
	timeout := in.windowBudget()
	for {
		if ctx.Err() != nil {
			return nil // b stays pending; Close or restart finishes it
		}
		err := in.tryBatch(ctx, b, timeout)
		if err == nil {
			in.mu.Lock()
			in.pending = nil
			in.mu.Unlock()
			return nil
		}
		if faults.IsCrash(err) || in.cfg.Faults.Crashed() {
			in.fail(err)
			return err
		}
		if errors.Is(err, warehouse.ErrWindowAborted) {
			if ctx.Err() != nil {
				return nil // cancellation, not a blown deadline
			}
			in.mu.Lock()
			in.deadlineAborts++
			if in.target > in.cfg.MinBatch {
				in.target /= 2
				if in.target < in.cfg.MinBatch {
					in.target = in.cfg.MinBatch
				}
			}
			in.mu.Unlock()
			timeout *= 2
			continue
		}
		if faults.IsTransient(err) && transientLeft > 0 {
			transientLeft--
			in.sleep(ctx, bo.Next())
			continue
		}
		err = fmt.Errorf("ingest: batch %d failed: %w", b.id, err)
		in.fail(err)
		return err
	}
}

// tryBatch is one attempt: stage (once — the staged batch survives aborted
// windows), predict, run.
func (in *Ingester) tryBatch(ctx context.Context, b *batch, timeout time.Duration) error {
	w := in.cfg.Warehouse
	if !b.staged {
		if err := in.cfg.Faults.Hit(pointStage); err != nil {
			return err
		}
		for _, e := range b.entries {
			d, err := w.NewDelta(e.view)
			if err != nil {
				return err
			}
			for _, rc := range e.rows {
				d.AddEncoded(rc.key, rc.count)
			}
			if err := w.StageDelta(e.view, d); err != nil {
				return err
			}
		}
		b.staged = true
		b.predicted = in.predictWork()
	}
	rep, err := w.RunWindowOpts(warehouse.WindowOptions{
		Planner:            in.cfg.Planner,
		Mode:               in.cfg.Mode,
		Workers:            in.cfg.Workers,
		Journal:            in.cfg.Journal,
		Timeout:            timeout,
		Context:            ctx,
		Retries:            in.cfg.Retries,
		Backoff:            in.cfg.Backoff,
		FallbackSequential: true,
		FallbackRecompute:  true,
		Faults:             in.cfg.Faults,
		BatchAccepted:      b.accepted,
	})
	if err != nil {
		return err
	}
	in.observe(b, &rep)
	if in.cfg.OnWindow != nil {
		in.cfg.OnWindow(rep)
	}
	return nil
}

// predictWork plans the staged batch and estimates its work under the
// linear metric — the calibrator's input. -1 when unavailable.
func (in *Ingester) predictWork() int64 {
	w := in.cfg.Warehouse
	var p warehouse.Plan
	var err error
	switch in.cfg.Planner {
	case warehouse.PrunePlanner:
		p, err = w.PlanPrune()
	case warehouse.DualStagePlanner:
		p, err = w.PlanDualStage()
	default:
		p, err = w.PlanMinWork()
	}
	if err != nil {
		return -1
	}
	est := p.EstimatedWork
	if est < 0 {
		if est, err = w.EstimateWork(p.Strategy); err != nil {
			return -1
		}
	}
	if est < 1 {
		est = 1
	}
	return int64(est)
}

// windowBudget is the wall-clock slice of the SLO a window may spend.
func (in *Ingester) windowBudget() time.Duration {
	if in.cfg.SLO <= 0 {
		return 0
	}
	return time.Duration(float64(in.cfg.SLO) * in.cfg.SLOFraction)
}

// observe folds a committed window into the stats and the calibration, and
// retargets the batch size from the calibrated time budget.
func (in *Ingester) observe(b *batch, rep *warehouse.WindowReport) {
	now := in.now()
	staleness := now.Sub(b.accepted)
	work := rep.Report.TotalWork()
	in.calib.Observe(b.predicted, work, rep.Report.Elapsed, b.n)
	in.mu.Lock()
	defer in.mu.Unlock()
	in.windows++
	in.totalWork += work
	in.totalChanges += int64(b.n)
	if rep.FellBackSequential || rep.Recomputed {
		in.degraded++
	}
	in.stale[in.staleIdx] = int64(staleness)
	in.staleIdx = (in.staleIdx + 1) % stalenessRingSize
	if in.staleN < stalenessRingSize {
		in.staleN++
	}
	if budget := in.windowBudget(); budget > 0 {
		if nt := in.calib.BatchFor(budget); nt > 0 {
			if nt > 2*in.target {
				nt = 2 * in.target // grow smoothly; shrink freely
			}
			if nt < in.cfg.MinBatch {
				nt = in.cfg.MinBatch
			}
			if nt > in.cfg.MaxBatch {
				nt = in.cfg.MaxBatch
			}
			in.target = nt
		}
	}
	in.traj = append(in.traj, in.target)
	if len(in.traj) > 64 {
		in.traj = in.traj[len(in.traj)-64:]
	}
	rep.Ingest = &warehouse.IngestInfo{
		Batch:         b.id,
		Changes:       b.n,
		Accepted:      b.accepted,
		BatchTarget:   b.target,
		QueueDepth:    in.depth,
		Shed:          in.shed,
		PredictedWork: b.predicted,
		StalenessNS:   int64(staleness),
	}
}

func (in *Ingester) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Close quiesces the ingester: stop accepting, then flush the staged
// remainder through final windows while ctx allows. If ctx expires first
// the rest stays journaled — a restart requeues it — and the error says so.
// Producers blocked in Submit are released with ErrIngestClosed.
func (in *Ingester) Close(ctx context.Context) error {
	in.mu.Lock()
	in.closed = true
	in.notFull.Broadcast()
	in.mu.Unlock()
	in.kick()
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	for {
		in.mu.Lock()
		terr := in.err
		remaining := in.depth
		empty := in.pending == nil && len(in.queue) == 0
		in.mu.Unlock()
		if terr != nil {
			err = terr
			break
		}
		if empty {
			break
		}
		if cerr := ctx.Err(); cerr != nil {
			err = fmt.Errorf("ingest: drain interrupted with %d change(s) still queued (journaled; a restart requeues them): %w", remaining, cerr)
			break
		}
		if derr := in.drain(ctx, true); derr != nil {
			err = derr
			break
		}
	}
	in.runMu.Lock()
	in.mu.Lock()
	if in.jf != nil {
		if cerr := in.jf.Close(); cerr != nil && err == nil {
			err = cerr
		}
		in.jf = nil
	}
	in.mu.Unlock()
	in.runMu.Unlock()
	return err
}

// Stats is a snapshot of the ingester's counters and freshness picture,
// shaped for the /ingest endpoint.
type Stats struct {
	Running bool `json:"running"`
	// Accepted counts accepted row-changes; AcceptedBatches the Submits.
	Accepted        int64 `json:"accepted_changes"`
	AcceptedBatches int64 `json:"accepted_batches"`
	// Shed counts row-changes refused with ErrIngestOverloaded.
	Shed int64 `json:"shed_changes"`
	// QueueDepth/QueueLimit describe the bounded queue (row-changes).
	QueueDepth int `json:"queue_depth"`
	QueueLimit int `json:"queue_limit"`
	// BatchTarget is the current adaptive batch size target.
	BatchTarget int `json:"batch_target"`
	// Batches counts cut batches; Windows committed windows.
	Batches int64 `json:"batches"`
	Windows int64 `json:"windows"`
	// DeadlineAborts counts windows that blew their deadline (each halves
	// the target); Degraded windows that fell back (sequential/recompute).
	DeadlineAborts int64 `json:"deadline_aborts"`
	Degraded       int64 `json:"degraded_windows"`
	// Requeued is how many journaled entries this incarnation resumed.
	Requeued int `json:"requeued"`
	// StalenessP50MS/P99MS are percentiles over recent windows' staleness
	// (commit time minus oldest accepted change); SLOMS the configured SLO.
	StalenessP50MS float64 `json:"staleness_p50_ms"`
	StalenessP99MS float64 `json:"staleness_p99_ms"`
	SLOMS          float64 `json:"slo_ms"`
	// WorkPerChange is cumulative window work per accepted row-change — the
	// amortized per-tuple maintenance cost.
	WorkPerChange float64 `json:"work_per_change"`
	// Calibration is the cost model's online calibration state.
	Calibration cost.CalibrationStats `json:"calibration"`
	// BatchTrajectory is the batch target after each recent window (up to 64).
	BatchTrajectory []int `json:"batch_trajectory"`
	// Err carries the terminal error, if the ingester died.
	Err string `json:"error,omitempty"`
}

// Stats snapshots the ingester.
func (in *Ingester) Stats() Stats {
	in.mu.Lock()
	s := Stats{
		Running:         in.running,
		Accepted:        in.accepted,
		AcceptedBatches: in.acceptedBatches,
		Shed:            in.shed,
		QueueDepth:      in.depth,
		QueueLimit:      in.cfg.QueueLimit,
		BatchTarget:     in.target,
		Batches:         in.batches,
		Windows:         in.windows,
		DeadlineAborts:  in.deadlineAborts,
		Degraded:        in.degraded,
		Requeued:        in.requeued,
		SLOMS:           float64(in.cfg.SLO) / float64(time.Millisecond),
		BatchTrajectory: append([]int(nil), in.traj...),
	}
	if in.totalChanges > 0 {
		s.WorkPerChange = float64(in.totalWork) / float64(in.totalChanges)
	}
	samples := make([]int64, in.staleN)
	copy(samples, in.stale[:in.staleN])
	if in.err != nil {
		s.Err = in.err.Error()
	}
	in.mu.Unlock()
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		s.StalenessP50MS = float64(percentile(samples, 0.50)) / float64(time.Millisecond)
		s.StalenessP99MS = float64(percentile(samples, 0.99)) / float64(time.Millisecond)
	}
	s.Calibration = in.calib.Stats()
	return s
}

// percentile reads the p-quantile from sorted samples (nearest-rank).
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
