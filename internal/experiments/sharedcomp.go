package experiments

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

// sharedCompWorkers is the bounded pool the staged/DAG legs run with.
const sharedCompWorkers = 4

// SharedComp measures window-wide cross-view shared computation on the
// warehouse that stresses it: Q3, Q5 and Q10 all read CUSTOMER, ORDER and
// LINEITEM, so under the dual-stage strategy their Comps hash the same
// operand states and deltas. With sharing on, the first Comp to need an
// operand's build-side hash table materializes it transiently; every sibling
// Comp reuses it instead of re-scanning the operand. The experiment runs the
// dual-stage strategy sharing-off and sharing-on under both staged and
// barrier-free DAG scheduling, for two scale factors (cfg.SF and 5×cfg.SF)
// under the paper's mixed change workload. Wall-clock is the best of 3 runs.
// The Work column is the linear metric and is identical down each scale
// factor: sharing elides physical scans, never modeled ones. Each sharing-on
// row reports the cross-view reuse rate and the operand tuples whose
// physical scan the shared tables elided — the fraction of compute-side work
// the window no longer performs.
func SharedComp(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "sharedcomp",
		Title: "Window-wide shared computation (cross-view CSE)",
		PaperClaim: "summary views defined over the same base views repeat work " +
			"during the update window; computing each shared subexpression once " +
			"and transiently materializing it for all consumers shortens the window",
	}
	for _, sf := range []float64{cfg.SF, 5 * cfg.SF} {
		mkWarehouse := func(share bool) (*tpcd.Warehouse, error) {
			tw, err := tpcd.NewWarehouse(tpcd.Config{
				SF: sf, Seed: cfg.Seed, ShareComputation: share,
			})
			if err != nil {
				return nil, err
			}
			if _, err := tw.StageChanges(tpcd.Mixed(cfg.ChangeFrac, cfg.ChangeFrac/2)); err != nil {
				return nil, err
			}
			return tw, nil
		}
		tw, err := mkWarehouse(false)
		if err != nil {
			return res, err
		}
		dual := strategy.DualStageVDAG(tw.Graph)

		for _, mode := range []exec.Mode{exec.ModeStaged, exec.ModeDAG} {
			var offElapsed time.Duration
			for _, share := range []bool{false, true} {
				var best parallel.Report
				for trial := 0; trial < 3; trial++ {
					run, err := mkWarehouse(share)
					if err != nil {
						return res, err
					}
					rep, err := parallel.Run(run.W, dual, run.W.Children, mode, parallel.Options{
						Workers: sharedCompWorkers,
					})
					if err != nil {
						return res, err
					}
					if trial == 0 {
						if err := run.W.VerifyAll(); err != nil {
							return res, err
						}
					}
					if trial == 0 || rep.Elapsed < best.Elapsed {
						best = rep
					}
				}
				var hits, misses int
				var saved, compWork int64
				for _, stage := range best.Steps {
					for _, step := range stage {
						hits += step.SharedHits
						misses += step.SharedMisses
						saved += step.SharedTuplesSaved
						if _, ok := step.Expr.(strategy.Comp); ok {
							compWork += step.Work
						}
					}
				}
				label, marker := "share=off", ""
				if share {
					label = "share=on"
					savedFrac := 0.0
					if compWork > 0 {
						savedFrac = float64(saved) / float64(compWork)
					}
					marker = fmt.Sprintf("shared %d/%d saved=%d (%.0f%% of comp work) peakB=%d speedup=%.2f",
						hits, hits+misses, saved, 100*savedFrac, best.SharedBytesPeak,
						float64(offElapsed)/float64(best.Elapsed))
				} else {
					offElapsed = best.Elapsed
				}
				res.Rows = append(res.Rows, Row{
					Label:     fmt.Sprintf("SF=%g %s %s", sf, mode, label),
					Work:      best.TotalWork,
					Elapsed:   best.Elapsed,
					Predicted: -1,
					Marker:    marker,
				})
			}
		}
	}
	res.Notes = append(res.Notes,
		"strategy: dual-stage VDAG — Q3, Q5 and Q10 each Comp over their shared base views in one stage, so the same operand hash tables are needed across views",
		"Work is identical down each (SF, mode) pair: sharing elides physical operand scans, not modeled ones (the linear metric counts the operand once per term regardless)",
		"shared a/b = build-table lookups served from the window-wide registry; saved = operand tuples not re-scanned; peakB = high-water transient footprint (bounded by the shared budget, default 64 MiB)",
		fmt.Sprintf("staged and DAG legs use a bounded pool of %d workers; 'speedup' is wall-clock vs the same mode's share=off row; best of 3 runs", sharedCompWorkers))
	return res, nil
}
