package experiments

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/tpcd"
)

// Estimation measures the quality of the Section 5.5 statistics pipeline:
// derived-view delta sizes are estimated bottom-up before planning, so the
// question is (a) how far the estimates land from the actual deltas, and
// (b) whether the planning decision they drive — the desired view ordering
// — matches the one exact statistics would give. The paper argues the
// estimates only need to be good enough to order the views.
func Estimation(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "estimation",
		Title: "Derived-delta estimation vs. actual (Section 5.5)",
		PaperClaim: "standard result-size estimation suffices: the planner only " +
			"needs the estimates to produce a good view ordering",
	}
	specs := []struct {
		label string
		spec  tpcd.ChangeSpec
	}{
		{"uniform -10%", tpcd.UniformDecrease(0.10)},
		{"C/O/L -5%", tpcd.COLDecrease(0.05)},
		{"mixed -5%/+8%", tpcd.Mixed(0.05, 0.08)},
	}
	for _, s := range specs {
		tw, err := tpcd.NewWarehouse(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed})
		if err != nil {
			return res, err
		}
		if _, err := tw.StageChanges(s.spec); err != nil {
			return res, err
		}
		estStats, err := exec.PlanningStats(tw.W)
		if err != nil {
			return res, err
		}
		// Ground truth: run any correct strategy on a clone and diff.
		pre := tw.W
		run := pre.Clone()
		mw, err := planner.MinWork(tw.Graph, estStats)
		if err != nil {
			return res, err
		}
		if _, err := exec.Execute(run, mw.Strategy, exec.Options{Validate: true}); err != nil {
			return res, err
		}
		exactStats, err := exec.ExactStats(pre, run)
		if err != nil {
			return res, err
		}
		for _, q := range tpcd.DerivedViews {
			est, act := estStats[q].DeltaSize(), exactStats[q].DeltaSize()
			errPct := 0.0
			if act > 0 {
				errPct = 100 * float64(est-act) / float64(act)
			}
			res.Rows = append(res.Rows, Row{
				Label:     fmt.Sprintf("%s δ%s", s.label, q),
				Work:      act,
				Predicted: float64(est),
				Marker:    fmt.Sprintf("%+.0f%%", errPct),
			})
		}
		// The decision check: orderings from estimates vs. exact stats.
		estOrd, err := planner.DesiredOrdering(tw.Graph.ViewsWithParents(), estStats)
		if err != nil {
			return res, err
		}
		exactOrd, err := planner.DesiredOrdering(tw.Graph.ViewsWithParents(), exactStats)
		if err != nil {
			return res, err
		}
		same := "orderings MATCH"
		if fmt.Sprint(estOrd) != fmt.Sprint(exactOrd) {
			same = fmt.Sprintf("orderings differ: est %v vs exact %v", estOrd, exactOrd)
		}
		res.Notes = append(res.Notes, fmt.Sprintf("%s: %s", s.label, same))
	}
	res.Notes = append(res.Notes,
		"'work' column holds the actual |δV|, 'predicted' the Section 5.5 estimate")
	return res, nil
}
