package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// tiny keeps experiment tests fast.
var tiny = Config{SF: 0.0008, Seed: 7, ChangeFrac: 0.10}

func TestTable1(t *testing.T) {
	res := Table1()
	want := []int64{1, 3, 13, 75, 541, 4683}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, w := range want {
		if res.Rows[i].Work != w {
			t.Errorf("n=%d: %d, want %d", i+1, res.Rows[i].Work, w)
		}
	}
	for _, n := range res.Notes {
		if strings.Contains(n, "mismatch") {
			t.Errorf("enumeration cross-check failed: %s", n)
		}
	}
	if !strings.Contains(res.Format(), "table1") {
		t.Errorf("Format missing id")
	}
}

// TestFig12Shape asserts the paper's Experiment 1 claims on measured work:
// every 1-way strategy beats every 2-way and the dual-stage strategy, and
// MinWorkSingle is optimal in measured work (the engine matches the linear
// metric exactly, so unlike the paper's SQL Server run there is no gap).
func TestFig12Shape(t *testing.T) {
	res, err := Fig12(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(res.Rows))
	}
	var oneWayMax, twoWayMin, dualWork int64
	var sawMWS bool
	for _, row := range res.Rows {
		oneWay := !strings.Contains(row.Label, "{")
		switch {
		case strings.Contains(row.Label, "{C,O,L}") || strings.Contains(row.Label, "{O,C,L}"), strings.Count(row.Label, ",") == 2 && strings.Contains(row.Label, "{"):
			dualWork = row.Work
		case oneWay:
			if row.Work > oneWayMax {
				oneWayMax = row.Work
			}
		default: // 2-way
			if twoWayMin == 0 || row.Work < twoWayMin {
				twoWayMin = row.Work
			}
		}
		if row.Marker == "MinWorkSingle" {
			sawMWS = true
			// MinWorkSingle must match the best measured work.
			for _, other := range res.Rows {
				if other.Work < row.Work {
					t.Errorf("MinWorkSingle (%d) beaten by %s (%d)", row.Work, other.Label, other.Work)
				}
			}
		}
	}
	if !sawMWS {
		t.Errorf("MinWorkSingle row missing")
	}
	if oneWayMax == 0 || twoWayMin == 0 || dualWork == 0 {
		t.Fatalf("row classification failed: %v", res.Rows)
	}
	if oneWayMax >= twoWayMin {
		t.Errorf("worst 1-way (%d) should beat best 2-way (%d)", oneWayMax, twoWayMin)
	}
	if twoWayMin >= dualWork {
		t.Errorf("best 2-way (%d) should beat dual-stage (%d)", twoWayMin, dualWork)
	}
	// Predicted work (from *estimated* derived-delta statistics) tracks
	// measured work closely — the engine itself matches the metric exactly,
	// so the only gap is the Section 5.5 size estimation.
	for _, row := range res.Rows {
		if row.Predicted < 0 {
			continue
		}
		diff := row.Predicted - float64(row.Work)
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05*float64(row.Work) {
			t.Errorf("%s: predicted %v deviates >5%% from measured %d", row.Label, row.Predicted, row.Work)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	res, err := Fig13(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	mws, dual := res.Rows[0], res.Rows[1]
	ratio := float64(dual.Work) / float64(mws.Work)
	// The paper reports >6×; the work ratio is driven by the 63-vs-6 term
	// counts and must be large.
	if ratio < 3 {
		t.Errorf("dual/MWS ratio = %.2f, expected ≫1", ratio)
	}
}

func TestFig14Shape(t *testing.T) {
	res, err := Fig14(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 { // 5 fractions × 3 strategies
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 0; i < 15; i += 3 {
		mws, two, dual := res.Rows[i], res.Rows[i+1], res.Rows[i+2]
		if mws.Work > two.Work {
			t.Errorf("%s (%d) worse than %s (%d)", mws.Label, mws.Work, two.Label, two.Work)
		}
		if two.Work > dual.Work {
			t.Errorf("%s (%d) worse than %s (%d)", two.Label, two.Work, dual.Label, dual.Work)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	res, err := Fig15(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	mw, prune, rev, dual := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]
	// MinWork is optimal on the uniform TPC-D VDAG: Prune cannot beat it.
	if prune.Work < mw.Work {
		t.Errorf("Prune (%d) beat MinWork (%d) on a uniform VDAG", prune.Work, mw.Work)
	}
	if mw.Work > rev.Work {
		t.Errorf("MinWork (%d) worse than reverse ordering (%d)", mw.Work, rev.Work)
	}
	if rev.Work >= dual.Work {
		t.Errorf("reverse (%d) should still beat dual-stage (%d)", rev.Work, dual.Work)
	}
	if float64(dual.Work)/float64(mw.Work) < 2 {
		t.Errorf("dual/MinWork = %.2f, expected a large factor", float64(dual.Work)/float64(mw.Work))
	}
}

func TestParallelShape(t *testing.T) {
	res, err := Parallel(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	oneWay, dual := res.Rows[0], res.Rows[1]
	// Section 9's tradeoff: dual-stage reaches maximal parallelism (two
	// stages) but incurs more total work.
	if dual.Work <= oneWay.Work {
		t.Errorf("dual-stage total work (%d) should exceed 1-way (%d)", dual.Work, oneWay.Work)
	}
	if !strings.Contains(dual.Label, "stages=2") {
		t.Errorf("dual-stage should parallelize to two stages: %s", dual.Label)
	}
	if !strings.Contains(oneWay.Label, "stages=") || strings.Contains(oneWay.Label, "stages=2") {
		t.Errorf("1-way plan should need more than two stages: %s", oneWay.Label)
	}
	if dual.Predicted <= 0 || oneWay.Predicted <= 0 {
		t.Errorf("span work missing: %v / %v", oneWay.Predicted, dual.Predicted)
	}
}

// TestStagedVsDAGShape asserts the barrier-free scheduler's accounting on
// the staged-vs-DAG experiment: per (SF, strategy) pair the two modes
// measure the same total work, and each row's window bound is consistent —
// critical path ≤ span ≤ total, with the DAG row bounded by the staged
// row's span. Wall-clock is reported but not asserted (best-of-3 still
// jitters at test scale).
func TestStagedVsDAGShape(t *testing.T) {
	res, err := StagedVsDAG(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 2 SFs × 2 strategies × 2 modes
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 0; i < len(res.Rows); i += 2 {
		staged, dag := res.Rows[i], res.Rows[i+1]
		if !strings.Contains(staged.Label, "staged") || !strings.Contains(dag.Label, "dag") {
			t.Fatalf("row order wrong: %q, %q", staged.Label, dag.Label)
		}
		if staged.Work != dag.Work {
			t.Errorf("%s: staged work %d != dag work %d", staged.Label, staged.Work, dag.Work)
		}
		if staged.Predicted <= 0 || dag.Predicted <= 0 {
			t.Errorf("%s: window bounds missing: %v / %v", staged.Label, staged.Predicted, dag.Predicted)
		}
		// Critical path (dag bound) never exceeds span (staged bound), and
		// neither exceeds total work.
		if dag.Predicted > staged.Predicted {
			t.Errorf("%s: critical path %v exceeds span %v", dag.Label, dag.Predicted, staged.Predicted)
		}
		if staged.Predicted > float64(staged.Work) {
			t.Errorf("%s: span %v exceeds total work %d", staged.Label, staged.Predicted, staged.Work)
		}
	}
}

// TestSharedCompShape asserts the cross-view sharing experiment's accounting:
// per (SF, mode) pair the share=off and share=on legs measure identical work
// (sharing elides physical scans, never modeled ones), and the share=on legs
// reuse enough cross-view builds to elide at least 25% of compute-side
// operand tuples with a nonzero transient footprint. Wall-clock is reported
// but not asserted (best-of-3 still jitters at test scale).
func TestSharedCompShape(t *testing.T) {
	res, err := SharedComp(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 2 SFs × 2 modes × share off/on
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 0; i < len(res.Rows); i += 2 {
		off, on := res.Rows[i], res.Rows[i+1]
		if !strings.Contains(off.Label, "share=off") || !strings.Contains(on.Label, "share=on") {
			t.Fatalf("row order wrong: %q, %q", off.Label, on.Label)
		}
		if off.Work != on.Work {
			t.Errorf("%s: work %d with sharing, %d without — the metric must not move",
				on.Label, on.Work, off.Work)
		}
		var hits, total int
		var saved, peak int64
		var frac, speedup float64
		if _, err := fmt.Sscanf(on.Marker, "shared %d/%d saved=%d (%f%% of comp work) peakB=%d speedup=%f",
			&hits, &total, &saved, &frac, &peak, &speedup); err != nil {
			t.Fatalf("%s: bad marker %q: %v", on.Label, on.Marker, err)
		}
		if hits == 0 || saved == 0 || peak == 0 {
			t.Errorf("%s: sharing never engaged: %s", on.Label, on.Marker)
		}
		if frac < 25 {
			t.Errorf("%s: only %.0f%% of comp-side operand tuples elided, want ≥25%%", on.Label, frac)
		}
	}
}

// TestSharedPlanShape asserts the joint-planning experiment's acceptance
// criterion: at every byte budget, the jointly-optimized legs strictly beat
// the hint-based dual-stage legs on modeled total window work, and their
// realized sharing (physical compute scans after registry and build-cache
// savings) never falls behind. Every leg verifies against recomputation
// inside the experiment itself.
func TestSharedPlanShape(t *testing.T) {
	res, err := SharedPlan(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 2 budgets × {hint-based, joint} × {sequential, dag}
		t.Fatalf("rows = %d", len(res.Rows))
	}
	parse := func(r Row) (physical, saved int64) {
		var hits, total int
		if _, err := fmt.Sscanf(r.Marker, "physical=%d saved=%d shared=%d/%d",
			&physical, &saved, &hits, &total); err != nil {
			t.Fatalf("%s: bad marker %q: %v", r.Label, r.Marker, err)
		}
		return physical, saved
	}
	for i := 0; i < len(res.Rows); i += 4 {
		hintSeq, hintDAG, jointSeq, jointDAG := res.Rows[i], res.Rows[i+1], res.Rows[i+2], res.Rows[i+3]
		for _, pair := range [][2]Row{{hintSeq, jointSeq}, {hintDAG, jointDAG}} {
			hint, joint := pair[0], pair[1]
			if !strings.Contains(hint.Label, "hint-based") || !strings.Contains(joint.Label, "joint") {
				t.Fatalf("row order wrong: %q, %q", hint.Label, joint.Label)
			}
			if joint.Work >= hint.Work {
				t.Errorf("%s: joint modeled work %d ≥ hint-based %d — joint search must win strictly",
					joint.Label, joint.Work, hint.Work)
			}
			hintPhys, _ := parse(hint)
			jointPhys, jointSaved := parse(joint)
			if jointPhys > hintPhys {
				t.Errorf("%s: joint physical scans %d > hint-based %d",
					joint.Label, jointPhys, hintPhys)
			}
			if jointSaved <= 0 {
				t.Errorf("%s: joint sharing never engaged: %s", joint.Label, joint.Marker)
			}
		}
	}
}

// TestMetricAblation certifies the Discussion-section argument: the variant
// metric inverts the MinWork-vs-dual-stage comparison that measurement (and
// the real metric) gives.
func TestMetricAblation(t *testing.T) {
	res, err := MetricAblation(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	mw, dual := res.Rows[0], res.Rows[1]
	// Measurement: MinWork wins.
	if mw.Work >= dual.Work {
		t.Errorf("measured: MinWork %d should beat dual-stage %d", mw.Work, dual.Work)
	}
	// Real metric predictions agree with measurement direction.
	if mw.Predicted >= dual.Predicted {
		t.Errorf("linear metric: %v should be below %v", mw.Predicted, dual.Predicted)
	}
	// The variant metric inverts the ranking (paper's point).
	variant := func(marker string) float64 {
		var v float64
		if _, err := fmt.Sscanf(marker, "variant metric predicts %f", &v); err != nil {
			t.Fatalf("bad marker %q", marker)
		}
		return v
	}
	if variant(mw.Marker) <= variant(dual.Marker) {
		t.Errorf("variant metric should (wrongly) favor dual-stage: %v vs %v",
			variant(mw.Marker), variant(dual.Marker))
	}
}

// TestEstimation certifies the Section 5.5 claim at this scale: estimated
// derived deltas may be rough, but the desired view ordering they produce
// matches the one exact statistics give.
func TestEstimation(t *testing.T) {
	res, err := Estimation(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 { // 3 specs × 3 summary views
		t.Fatalf("rows = %d", len(res.Rows))
	}
	matches := 0
	for _, n := range res.Notes {
		if strings.Contains(n, "orderings MATCH") {
			matches++
		}
	}
	if matches != 3 {
		t.Errorf("orderings matched in %d/3 workloads: %v", matches, res.Notes)
	}
}

// TestDeep exercises the deep non-uniform VDAG: Prune (the 1-way optimum)
// must never lose to MinWork, and both must beat dual-stage.
func TestDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("Prune over 8! orderings in -short mode")
	}
	res, err := Deep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	mw, prune, dual := res.Rows[0], res.Rows[1], res.Rows[2]
	if prune.Work > mw.Work {
		t.Errorf("Prune (%d) worse than MinWork (%d): Prune must be 1-way optimal", prune.Work, mw.Work)
	}
	if mw.Work >= dual.Work || prune.Work >= dual.Work {
		t.Errorf("dual-stage (%d) should lose to both (%d, %d)", dual.Work, mw.Work, prune.Work)
	}
}

func TestAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	results, err := All(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 15 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Format() == "" {
			t.Errorf("%s: empty format", r.ID)
		}
	}
}

func TestFaultTolerance(t *testing.T) {
	res, err := FaultTolerance(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base, journaled, recovered, retried := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]
	// Journaling, crash-recovery and retry must not change the window's
	// measured work — the metric is schedule- and machinery-invariant.
	for _, r := range []Row{journaled, recovered, retried} {
		if r.Work != base.Work {
			t.Errorf("%s: work %d differs from the unjournaled window's %d", r.Label, r.Work, base.Work)
		}
	}
	if !strings.Contains(recovered.Marker, "survived") {
		t.Errorf("recovered row marker = %q", recovered.Marker)
	}
	if !strings.Contains(res.Rows[4].Marker, "degraded") {
		t.Errorf("recompute row marker = %q", res.Rows[4].Marker)
	}
}

// TestOnlineWindowShape asserts the online-serving experiment's accounting:
// an idle row plus one row per window mode, each mode committing the same
// windows over the same staged batches (identical total work), with a live
// query stream recorded in every marker.
func TestOnlineWindowShape(t *testing.T) {
	res, err := OnlineWindow(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Label != "idle (no window)" || res.Rows[0].Work != 0 {
		t.Errorf("baseline row = %+v", res.Rows[0])
	}
	work := res.Rows[1].Work
	for _, row := range res.Rows[1:] {
		if row.Work != work {
			t.Errorf("%s: work %d, other modes %d — same batches must cost the same", row.Label, row.Work, work)
		}
		if row.Elapsed <= 0 {
			t.Errorf("%s: no window time recorded", row.Label)
		}
	}
	for _, row := range res.Rows {
		if !strings.Contains(row.Marker, "p99=") || !strings.Contains(row.Marker, "shed=") {
			t.Errorf("%s: marker lacks latency/shed stats: %s", row.Label, row.Marker)
		}
	}
}

// TestReplicationShape runs the replication trial sweep: one row per
// follower count, identical leader window load in every row, a falling
// leader read share, and converged digests (the experiment itself errors on
// divergence).
func TestReplicationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica sweep in -short mode")
	}
	res, err := Replication(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	work := res.Rows[0].Work
	for i, row := range res.Rows {
		if row.Work != work {
			t.Errorf("%s: leader work %d, row 0 had %d — identical load expected", row.Label, row.Work, work)
		}
		if !strings.Contains(row.Marker, "steady=") || !strings.Contains(row.Marker, "leader-share=") {
			t.Errorf("%s: marker lacks throughput stats: %s", row.Label, row.Marker)
		}
		if i > 0 && !strings.Contains(row.Marker, "p99 lag=") {
			t.Errorf("%s: marker lacks lag stats: %s", row.Label, row.Marker)
		}
	}
}

// TestStreamingShape asserts the continuous-ingestion experiment's claims:
// five rows (four window modes plus the adversarial tight-SLO leg), at
// least one mode holding the p99 staleness SLO, bounded shedding under the
// paced stream, and graceful degradation on the tight leg — deadline aborts
// observed and the batch target walked down to its floor, with windows still
// committing.
func TestStreamingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming trial sweep in -short mode")
	}
	res, err := Streaming(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	type ingestStats struct {
		p50, p99                      float64
		windows, target, shed, aborts int64
	}
	parse := func(row Row) ingestStats {
		t.Helper()
		var st ingestStats
		if _, err := fmt.Sscanf(row.Marker, "stale p50=%fms p99=%fms windows=%d target=%d shed=%d aborts=%d",
			&st.p50, &st.p99, &st.windows, &st.target, &st.shed, &st.aborts); err != nil {
			t.Fatalf("%s: bad marker %q: %v", row.Label, row.Marker, err)
		}
		return st
	}
	const sloMS = 200.0
	held := 0
	for _, row := range res.Rows[:4] {
		st := parse(row)
		if st.windows == 0 {
			t.Errorf("%s: no windows committed", row.Label)
		}
		if st.p99 > 0 && st.p99 <= sloMS {
			held++
		}
		// The paced stream fits the queue with room to spare; shedding, if
		// any, must stay a sliver of the 100×16-change stream.
		if st.shed > 160 {
			t.Errorf("%s: shed %d changes of a paced stream", row.Label, st.shed)
		}
		if row.Work <= 0 || row.Elapsed <= 0 {
			t.Errorf("%s: no work/time recorded: %+v", row.Label, row)
		}
	}
	if held == 0 {
		t.Error("no window mode held the 50ms p99 staleness SLO")
	}
	tight := parse(res.Rows[4])
	if tight.aborts == 0 {
		t.Errorf("tight-slo leg saw no deadline aborts: %+v", tight)
	}
	if tight.target != 8 {
		t.Errorf("tight-slo batch target = %d, want degraded to the floor 8", tight.target)
	}
	if tight.windows == 0 {
		t.Error("tight-slo leg committed no windows — degradation collapsed instead of degrading")
	}
}

// TestSpillShape certifies the bounded-memory claims at this scale: the
// budget lands below the unbounded leg's true footprint, the bounded leg
// spills yet keeps its peak within budget, and the linear work metric is
// identical across legs.
func TestSpillShape(t *testing.T) {
	res, err := Spill(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	unbounded, bounded := res.Rows[0], res.Rows[1]
	if unbounded.Work != bounded.Work {
		t.Errorf("work moved under spilling: %d vs %d", bounded.Work, unbounded.Work)
	}
	var truePeak int64
	if _, err := fmt.Sscanf(unbounded.Marker, "peakB=%d", &truePeak); err != nil {
		t.Fatalf("bad unbounded marker %q", unbounded.Marker)
	}
	var budgetKiB, peak, spilled, reread int64
	var spills int
	if _, err := fmt.Sscanf(bounded.Label, "budget=%dKiB", &budgetKiB); err != nil {
		t.Fatalf("bad bounded label %q", bounded.Label)
	}
	if _, err := fmt.Sscanf(bounded.Marker, "peakB=%d spills=%d spilledB=%d rereadB=%d",
		&peak, &spills, &spilled, &reread); err != nil {
		t.Fatalf("bad bounded marker %q", bounded.Marker)
	}
	budget := budgetKiB << 10
	if budget >= truePeak {
		t.Fatalf("budget %d not below the true footprint %d — the experiment proved nothing", budget, truePeak)
	}
	if spills == 0 || spilled == 0 || reread == 0 {
		t.Errorf("bounded leg never spilled: %s", bounded.Marker)
	}
	if peak > budget {
		t.Errorf("bounded peak %d exceeds budget %d", peak, budget)
	}
	for _, n := range res.Notes {
		if strings.Contains(n, "UNEXPECTED") {
			t.Errorf("experiment self-check failed: %s", n)
		}
	}
}
