package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	warehouse "repro"
	"repro/internal/replicate"
	"repro/internal/serve"
)

// Replication measures what journal shipping buys the read path: a leader
// runs back-to-back update windows while 0..3 followers replay the shipped
// journal and serve reads at their own (possibly stale) epochs. A fixed
// client pool spreads queries round-robin across every replica, so read
// throughput should scale with follower count while the leader's window —
// the thing the paper shrinks — stays the same size. Follower staleness is
// sampled throughout and reported as p99 epoch lag.
func Replication(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "replication",
		Title: "Read throughput and staleness vs follower count",
		PaperClaim: "replication extension — the shrunk update window is also the unit of " +
			"replication: shipping its journal scales read capacity out without growing the window",
	}

	for nf := 0; nf <= 3; nf++ {
		row, err := replicationTrial(cfg, nf)
		if err != nil {
			return res, fmt.Errorf("replication (%d followers): %w", nf, err)
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"Work and Elapsed are the leader's update windows — identical load in every row",
		"markers report the spread read stream (total served, steady-state rate, the leader's share of reads) and the followers' sampled p99 epoch lag",
		"total read rate is bound by the host's cores; the structural win is the leader's read share falling toward 1/(followers+1) while its windows stay the same size",
		"every trial ends with all follower state digests equal to the leader's",
	)
	return res, nil
}

// replicationTrial runs one leader plus nf followers and hammers reads
// across all of them while the leader commits windows.
func replicationTrial(cfg Config, nf int) (Row, error) {
	const (
		stores     = 32
		sales      = 6000
		windows    = 5
		clients    = 8
		numWorkers = 2
		queueDepth = 16
	)
	queries := []string{
		"SELECT region, SUM(amount) AS t, COUNT(*) AS n FROM SALES_BY_STORE GROUP BY region",
		"SELECT region, total, n FROM REGION_TOTALS ORDER BY region",
	}

	w, rng, err := onlineWarehouse(cfg.Seed, stores, sales)
	if err != nil {
		return Row{}, err
	}
	leader := replicate.NewLeader(w)
	srv := httptest.NewServer(leader.Handler())
	defer srv.Close()
	servers := []*serve.Server{serve.New(w, serve.Config{
		QueueDepth: queueDepth, Workers: numWorkers, WindowJournal: leader.Journal(),
	})}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var followers []*replicate.Follower
	var runWG sync.WaitGroup
	for i := 0; i < nf; i++ {
		fw, _, err := onlineWarehouse(cfg.Seed, stores, sales)
		if err != nil {
			return Row{}, err
		}
		f := replicate.NewFollower(fw, replicate.FollowerConfig{
			Leader: srv.URL, Interval: time.Millisecond,
		})
		followers = append(followers, f)
		servers = append(servers, serve.New(fw, serve.Config{QueueDepth: queueDepth, Workers: numWorkers}))
		runWG.Add(1)
		go func() {
			defer runWG.Done()
			_ = f.Run(ctx)
		}()
	}

	// Sample follower epoch lag while the windows run.
	var lagMu sync.Mutex
	var lagSamples []time.Duration // epochs, stored as Durations for percentile()
	sampleDone := make(chan struct{})
	go func() {
		defer close(sampleDone)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				lagMu.Lock()
				for _, f := range followers {
					lagSamples = append(lagSamples, time.Duration(f.Lag().Epochs))
				}
				lagMu.Unlock()
			}
		}
	}()

	servedNow := func() uint64 {
		var n uint64
		for _, s := range servers {
			n += s.Stats().Completed
		}
		return n
	}
	var totalWork int64
	var windowTime time.Duration
	var steadyServed uint64
	const steady = 400 * time.Millisecond
	nextID := int64(sales)
	lats, werr := hammerMulti(servers, queries, clients, func() error {
		for i := 0; i < windows; i++ {
			if err := stageOnlineBatch(w, rng, &nextID, int(float64(sales)*cfg.ChangeFrac)); err != nil {
				return err
			}
			rep, err := servers[0].RunWindow(context.Background(), warehouse.WindowOptions{Mode: warehouse.ModeDAG})
			if err != nil {
				return err
			}
			totalWork += rep.Report.TotalWork()
			windowTime += rep.Report.Elapsed
			time.Sleep(5 * time.Millisecond) // let the read stream see this epoch
		}
		// Let every follower drain before the stream stops. A follower's own
		// Lag() is relative to its last contact, so compare its high-water
		// mark against the leader's authoritative stable watermark.
		deadline := time.Now().Add(10 * time.Second)
		for _, f := range followers {
			for f.HWM() != leader.Log().StableLen() {
				if time.Now().After(deadline) {
					return fmt.Errorf("follower never caught up: hwm %d, leader stable %d", f.HWM(), leader.Log().StableLen())
				}
				time.Sleep(time.Millisecond)
			}
		}
		// Steady state: every replica serves the final epoch; the read rate
		// over this fixed interval is the throughput comparison across rows.
		before := servedNow()
		time.Sleep(steady)
		steadyServed = servedNow() - before
		return nil
	})
	cancel()
	runWG.Wait()
	<-sampleDone
	if werr != nil {
		return Row{}, werr
	}

	served := servedNow()
	leaderServed := servers[0].Stats().Completed
	for _, s := range servers {
		if err := s.Close(context.Background()); err != nil {
			return Row{}, err
		}
	}
	for i, f := range followers {
		if got, want := f.Warehouse().StateDigest(), w.StateDigest(); got != want {
			return Row{}, fmt.Errorf("follower %d digest %016x != leader %016x", i, got, want)
		}
	}

	marker := fmt.Sprintf("reads=%d steady=%.0f/s leader-share=%.0f%% p50=%s",
		served, float64(steadyServed)/steady.Seconds(), 100*float64(leaderServed)/float64(served),
		percentile(lats, 0.50).Round(time.Microsecond))
	if nf > 0 {
		marker += fmt.Sprintf(" p99 lag=%d epochs shipped=%dB", int64(lagPercentile(lagSamples, 0.99)), leader.Stats().ShippedBytes)
	}
	return Row{
		Label: fmt.Sprintf("%d followers", nf), Work: totalWork,
		Elapsed: windowTime, Predicted: -1, Marker: marker,
	}, nil
}

// hammerMulti is hammer spread across several servers: client c sends its
// i-th query to server (c+i) mod len(servers) — reads scale out across
// replicas while body drives the leader's windows.
func hammerMulti(servers []*serve.Server, queries []string, clients int, body func() error) ([]time.Duration, error) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var lats []time.Duration
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var local []time.Duration
			for i := 0; ; i++ {
				select {
				case <-stop:
					mu.Lock()
					lats = append(lats, local...)
					mu.Unlock()
					return
				default:
				}
				s := servers[(c+i)%len(servers)]
				t0 := time.Now()
				if _, err := s.Query(context.Background(), queries[(c+i)%len(queries)]); err == nil {
					local = append(local, time.Since(t0))
				} else {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(c)
	}
	err := body()
	close(stop)
	wg.Wait()
	return lats, err
}

// lagPercentile is percentile() for the lag samples (stored as Durations).
func lagPercentile(samples []time.Duration, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return float64(sorted[int(p*float64(len(sorted)-1))])
}
