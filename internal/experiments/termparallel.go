package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

// TermParallel measures the intra-Compute parallel engine on the strategy
// that stresses it: the dual-stage VDAG strategy, whose multi-reference
// Comps evaluate 2^r−1 maintenance terms each (7 for Q3, 63 for Q5, 15 for
// Q10). It runs sequentially and then with ParallelTerms at worker budgets
// 1, 2, 4 and 8, for two scale factors (cfg.SF and 5×cfg.SF — 0.002 and
// 0.01 at the defaults) under the paper's mixed change workload. Wall-clock
// is the best of 3 runs. Each parallel row reports its build-cache hit rate
// (hits / lookups) and the physical operand tuples the shared build tables
// saved: the 63 terms of Comp(Q5, ·) probe the same handful of build-side
// operands, so nearly every build after the first is a cache hit. The Work
// column is the linear metric and is identical across all rows of one scale
// factor: the cache changes what the engine *does*, never what the metric
// *counts* — a Comp over r deltas still pays for the operand scan in each
// of its 2^r−1 terms. (1-way strategies like MinWork's have single-term
// Comps: nothing to share, nothing to overlap — this engine attacks the
// multi-term strategies the paper's Section 9 wants to parallelize.)
func TermParallel(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "termparallel",
		Title: "Morsel-parallel term evaluation with shared build caching",
		PaperClaim: "the 2^r−1 terms of one compute expression scan the same " +
			"operands against different delta combinations; evaluating terms " +
			"concurrently and sharing build-side hash tables shortens the window " +
			"without changing the work metric",
	}
	for _, sf := range []float64{cfg.SF, 5 * cfg.SF} {
		mkWarehouse := func(parTerms bool, workers int) (*tpcd.Warehouse, error) {
			tw, err := tpcd.NewWarehouse(tpcd.Config{
				SF: sf, Seed: cfg.Seed,
				ParallelTerms: parTerms, Workers: workers,
			})
			if err != nil {
				return nil, err
			}
			if _, err := tw.StageChanges(tpcd.Mixed(cfg.ChangeFrac, cfg.ChangeFrac/2)); err != nil {
				return nil, err
			}
			return tw, nil
		}
		tw, err := mkWarehouse(false, 0)
		if err != nil {
			return res, err
		}
		dual := strategy.DualStageVDAG(tw.Graph)

		var oneWorker time.Duration
		for _, c := range []struct {
			label    string
			parTerms bool
			workers  int
		}{
			{"sequential", false, 0},
			{"par-terms w=1", true, 1},
			{"par-terms w=2", true, 2},
			{"par-terms w=4", true, 4},
			{"par-terms w=8", true, 8},
		} {
			var best exec.Report
			for trial := 0; trial < 3; trial++ {
				run, err := mkWarehouse(c.parTerms, c.workers)
				if err != nil {
					return res, err
				}
				rep, err := exec.Execute(run.W, dual, exec.Options{Validate: true})
				if err != nil {
					return res, err
				}
				if trial == 0 {
					if err := run.W.VerifyAll(); err != nil {
						return res, err
					}
				}
				if trial == 0 || rep.Elapsed < best.Elapsed {
					best = rep
				}
			}
			var hits, misses int
			var saved int64
			for _, step := range best.Steps {
				hits += step.CacheHits
				misses += step.CacheMisses
				saved += step.CacheTuplesSaved
			}
			marker := ""
			if c.parTerms {
				if c.workers == 1 {
					oneWorker = best.Elapsed
				}
				hitRate := 0.0
				if hits+misses > 0 {
					hitRate = float64(hits) / float64(hits+misses)
				}
				marker = fmt.Sprintf("cache %d/%d (%.0f%%) saved=%d speedup=%.2f",
					hits, hits+misses, 100*hitRate, saved,
					float64(oneWorker)/float64(best.Elapsed))
			}
			res.Rows = append(res.Rows, Row{
				Label:     fmt.Sprintf("SF=%g %s", sf, c.label),
				Work:      best.TotalWork(),
				Elapsed:   best.Elapsed,
				Predicted: -1,
				Marker:    marker,
			})
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("host: %d CPU(s), GOMAXPROCS=%d — worker counts beyond the core count measure scheduling overhead, not speedup",
			runtime.NumCPU(), runtime.GOMAXPROCS(0)),
		"strategy: dual-stage VDAG (multi-term Comps: 7 for Q3, 63 for Q5, 15 for Q10); 1-way strategies have single-term Comps with nothing to share or overlap",
		"Work is identical down each scale factor: shared builds save physical scans, not modeled ones (OperandTuples counts the operand once per term regardless)",
		"'speedup' is wall-clock relative to the par-terms w=1 row (strictly serial engine, same code path); best of 3 runs",
		"cache a/b (r%) = build-table lookups served from the shared cache; saved = operand tuples not re-scanned thanks to sharing")
	return res, nil
}
