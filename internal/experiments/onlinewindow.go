package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	warehouse "repro"
	"repro/internal/serve"
)

// OnlineWindow measures query service *during* update windows — the
// operational question the online-window layer answers: what does a reader
// pay, in latency and shed probability, while the warehouse is mid-update?
// A query server with a small admission queue is hammered by more clients
// than it has workers while windows of increasing size (1x to 4x the
// change fraction) run back-to-back, once per window execution mode
// (sequential, DAG-parallel, term-parallel), plus an idle baseline with no
// window running. Queries are served from pinned epoch
// snapshots, so no reader ever blocks on the window itself — the reported
// latencies are pure queueing plus evaluation.
func OnlineWindow(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "onlinewindow",
		Title: "Query latency and shed rate during update windows",
		PaperClaim: "online extension — the paper shrinks the offline window; versioned " +
			"snapshots remove it from the reader's critical path entirely",
	}

	const (
		stores     = 64
		sales      = 12000
		windows    = 4
		clients    = 10
		numWorkers = 2
		queueDepth = 4
	)

	type trial struct {
		label    string
		mode     warehouse.Mode
		parTerms bool
	}
	trials := []trial{
		{"sequential", warehouse.ModeSequential, false},
		{"dag", warehouse.ModeDAG, false},
		{"term-parallel", warehouse.ModeSequential, true},
	}

	queries := []string{
		"SELECT region, SUM(amount) AS t, COUNT(*) AS n FROM SALES_BY_STORE GROUP BY region",
		"SELECT region, total, n FROM REGION_TOTALS ORDER BY region",
	}

	// Idle baseline: same server, same clients, no window in flight.
	{
		w, _, err := onlineWarehouse(cfg.Seed, stores, sales)
		if err != nil {
			return res, err
		}
		s := serve.New(w, serve.Config{QueueDepth: queueDepth, Workers: numWorkers})
		lats, _ := hammer(s, queries, clients, func() error {
			time.Sleep(60 * time.Millisecond)
			return nil
		})
		st := s.Stats()
		if err := s.Close(context.Background()); err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Row{
			Label: "idle (no window)", Work: 0, Elapsed: 0, Predicted: -1,
			Marker: latencyMarker(lats, st),
		})
	}

	for _, tr := range trials {
		w, rng, err := onlineWarehouse(cfg.Seed, stores, sales)
		if err != nil {
			return res, err
		}
		if tr.parTerms {
			w.SetParallelism(0, true)
		}
		s := serve.New(w, serve.Config{QueueDepth: queueDepth, Workers: numWorkers})

		var totalWork int64
		var windowTime time.Duration
		nextID := int64(sales)
		lats, werr := hammer(s, queries, clients, func() error {
			for i := 0; i < windows; i++ {
				// Windows grow: 1x..4x the change fraction, so the stream
				// sees both quick and long-running windows.
				if err := stageOnlineBatch(w, rng, &nextID, (i+1)*int(float64(sales)*cfg.ChangeFrac)); err != nil {
					return err
				}
				rep, err := s.RunWindow(context.Background(), warehouse.WindowOptions{Mode: tr.mode})
				if err != nil {
					return err
				}
				totalWork += rep.Report.TotalWork()
				windowTime += rep.Report.Elapsed
			}
			return nil
		})
		if werr != nil {
			return res, werr
		}
		st := s.Stats()
		if err := s.Close(context.Background()); err != nil {
			return res, err
		}
		if st.WindowsCommitted != windows {
			return res, fmt.Errorf("onlinewindow: %s committed %d windows, want %d", tr.label, st.WindowsCommitted, windows)
		}
		res.Rows = append(res.Rows, Row{
			Label: tr.label + " windows", Work: totalWork,
			Elapsed: windowTime, Predicted: -1,
			Marker: latencyMarker(lats, st),
		})
	}

	res.Notes = append(res.Notes,
		"markers report the concurrent query stream: p50/p99 latency, served count, and shed rate",
		fmt.Sprintf("%d clients vs %d workers over a depth-%d admission queue; overflow is shed with ErrOverloaded, never queued unboundedly", clients, numWorkers, queueDepth),
		"window rows: Work and Elapsed are the update windows themselves; queries ran against pinned epochs throughout",
	)
	return res, nil
}

// hammer runs `clients` goroutines querying s while body executes, and
// returns the successful queries' latencies.
func hammer(s *serve.Server, queries []string, clients int, body func() error) ([]time.Duration, error) {
	return hammerThink(s, queries, clients, 0, body)
}

// hammerThink is hammer with a per-query think time. A zero think is an
// unpaced closed loop (clients re-issue the instant a query returns); a
// positive think models clients that leave the CPU to the server between
// queries — essential on small hosts where an unpaced loop would starve
// the very window workers whose latency is being measured.
func hammerThink(s *serve.Server, queries []string, clients int, think time.Duration, body func() error) ([]time.Duration, error) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var lats []time.Duration
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var local []time.Duration
			for i := 0; ; i++ {
				select {
				case <-stop:
					mu.Lock()
					lats = append(lats, local...)
					mu.Unlock()
					return
				default:
				}
				t0 := time.Now()
				_, err := s.Query(context.Background(), queries[(c+i)%len(queries)])
				if err == nil {
					local = append(local, time.Since(t0))
					if think > 0 {
						time.Sleep(think)
					}
				} else if errors.Is(err, serve.ErrOverloaded) {
					// A real client backs off before retrying a shed query.
					time.Sleep(2 * time.Millisecond)
				} else {
					// Shed queries are counted by the server; anything else
					// would be a bug, surfaced by the stats' Failed counter.
					return
				}
			}
		}(c)
	}
	err := body()
	close(stop)
	wg.Wait()
	return lats, err
}

func latencyMarker(lats []time.Duration, st serve.Stats) string {
	offered := st.Admitted + st.Shed
	shedPct := 0.0
	if offered > 0 {
		shedPct = 100 * float64(st.Shed) / float64(offered)
	}
	return fmt.Sprintf("q p50=%s p99=%s served=%d shed=%.1f%%",
		percentile(lats, 0.50).Round(time.Microsecond),
		percentile(lats, 0.99).Round(time.Microsecond),
		st.Completed, shedPct)
}

func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// onlineWarehouse builds the serving fixture: STORES and SALES bases, the
// sales-by-store join, and two aggregate summaries over it.
func onlineWarehouse(seed int64, stores, sales int) (*warehouse.Warehouse, *rand.Rand, error) {
	rng := rand.New(rand.NewSource(seed))
	w := warehouse.New()
	if err := w.DefineBase("STORES", warehouse.Schema{
		{Name: "store_id", Kind: warehouse.KindInt},
		{Name: "region", Kind: warehouse.KindString},
	}); err != nil {
		return nil, nil, err
	}
	if err := w.DefineBase("SALES", warehouse.Schema{
		{Name: "sale_id", Kind: warehouse.KindInt},
		{Name: "store_id", Kind: warehouse.KindInt},
		{Name: "amount", Kind: warehouse.KindFloat},
	}); err != nil {
		return nil, nil, err
	}
	if err := w.DefineViewSQL("SALES_BY_STORE", `
		SELECT s.sale_id, s.store_id, s.amount, st.region
		FROM SALES s, STORES st
		WHERE s.store_id = st.store_id`); err != nil {
		return nil, nil, err
	}
	if err := w.DefineViewSQL("REGION_TOTALS", `
		SELECT region, SUM(amount) AS total, COUNT(*) AS n
		FROM SALES_BY_STORE GROUP BY region`); err != nil {
		return nil, nil, err
	}
	if err := w.DefineViewSQL("STORE_TOTALS", `
		SELECT store_id, SUM(amount) AS total, COUNT(*) AS n
		FROM SALES_BY_STORE GROUP BY store_id`); err != nil {
		return nil, nil, err
	}

	regions := []string{"north", "south", "east", "west"}
	srows := make([]warehouse.Tuple, stores)
	for i := range srows {
		srows[i] = warehouse.Tuple{warehouse.Int(int64(i)), warehouse.String(regions[i%len(regions)])}
	}
	if err := w.Load("STORES", srows); err != nil {
		return nil, nil, err
	}
	// Quarter-unit amounts are exact in binary floating point, so aggregate
	// sums are independent of accumulation order — two warehouses built from
	// the same seed digest identically (the replication experiment compares
	// leader and follower state digests).
	rows := make([]warehouse.Tuple, sales)
	for i := range rows {
		rows[i] = warehouse.Tuple{
			warehouse.Int(int64(i)),
			warehouse.Int(rng.Int63n(int64(stores))),
			warehouse.Float(float64(rng.Intn(200)) / 4),
		}
	}
	if err := w.Load("SALES", rows); err != nil {
		return nil, nil, err
	}
	if err := w.Refresh(); err != nil {
		return nil, nil, err
	}
	return w, rng, nil
}

// stageOnlineBatch stages n fresh sales.
func stageOnlineBatch(w *warehouse.Warehouse, rng *rand.Rand, nextID *int64, n int) error {
	d, err := w.NewDelta("SALES")
	if err != nil {
		return err
	}
	stores, err := w.Size("STORES")
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		d.Add(warehouse.Tuple{
			warehouse.Int(*nextID),
			warehouse.Int(rng.Int63n(stores)),
			warehouse.Float(float64(rng.Intn(200)) / 4),
		}, 1)
		*nextID++
	}
	return w.StageDelta("SALES", d)
}
