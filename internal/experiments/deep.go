package experiments

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

// Deep runs the planners on the deep, non-uniform TPC-D VDAG (second-level
// summaries Q3_BY_PRIORITY and NATION_REVENUE added): the regime Section 6
// targets, where MinWork's acyclicity guarantee no longer holds for every
// ordering and Prune's exhaustive 1-way search is the reference. The paper
// has no figure for this — it is the natural extension experiment its
// Sections 5.3/6 set up.
func Deep(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "deep",
		Title: "Deep non-uniform VDAG: MinWork vs Prune (Sections 5.3/6 extension)",
		PaperClaim: "outside tree/uniform VDAGs MinWork may fall back to " +
			"ModifyOrdering and lose optimality; Prune remains optimal over " +
			"1-way strategies",
	}
	tw, err := tpcd.NewWarehouse(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed, DeepVDAG: true})
	if err != nil {
		return res, err
	}
	if _, err := tw.StageChanges(tpcd.Mixed(cfg.ChangeFrac/2, cfg.ChangeFrac/2)); err != nil {
		return res, err
	}
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		return res, err
	}
	mw, err := planner.MinWork(tw.Graph, stats)
	if err != nil {
		return res, err
	}
	rowMW, err := measure(tw, "MinWork", mw.Strategy, stats, true)
	if err != nil {
		return res, err
	}
	if mw.Modified {
		rowMW.Marker = "desired ordering was cyclic; ModifyOrdering applied"
	} else {
		rowMW.Marker = "desired ordering acyclic"
	}
	res.Rows = append(res.Rows, rowMW)

	pr, err := planner.Prune(tw.Graph, cost.DefaultModel, stats, exec.RefCounts(tw.W))
	if err != nil {
		return res, err
	}
	rowPr, err := measure(tw, "Prune best 1-way", pr.Strategy, stats, true)
	if err != nil {
		return res, err
	}
	rowPr.Marker = fmt.Sprintf("searched %d orderings (%d feasible)", pr.Examined, pr.Feasible)
	res.Rows = append(res.Rows, rowPr)

	rowDual, err := measure(tw, "dual-stage", strategy.DualStageVDAG(tw.Graph), stats, true)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, rowDual)

	res.Notes = append(res.Notes,
		fmt.Sprintf("VDAG: %d views over %d levels, uniform=%v, tree=%v",
			len(tw.Graph.Views()), tw.Graph.MaxLevel()+1, tw.Graph.IsUniform(), tw.Graph.IsTree()),
		fmt.Sprintf("MinWork / Prune work ratio: %.3f (1.000 = MinWork matched the 1-way optimum)",
			float64(rowMW.Work)/float64(rowPr.Work)),
	)
	return res, nil
}
