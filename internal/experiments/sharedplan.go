package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/planner"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

// sharedPlanBudgets are the shared byte budgets each planning leg runs
// under: effectively unbounded, and the registry's 64 MiB default.
var sharedPlanBudgets = []struct {
	label string
	bytes int64
}{
	{"unbounded", 1 << 40},
	{"64MiB", 64 << 20},
}

// SharedPlan measures sharing-aware strategy search against hint-based
// sharing on dual-stage windows. The "hint" legs run the dual-stage V-DAG
// strategy and let the executor's registry share whatever the after-the-fact
// analysis of that fixed strategy finds — the prior behavior. The "joint"
// legs plan with PruneShared: candidate orderings are costed by
// sharing-adjusted work (shared builds charged once across consumers, under
// the byte budget), join intermediates are elected alongside operands on net
// gain, and the winning plan's hints seed the registry. The headline is
// physical compute scans — modeled compute work minus the scans the registry
// and the per-Compute build cache elided — which joint planning drives below
// the hint-based dual-stage legs at every budget, while the states stay
// bit-identical (verified against recomputation). Sequential and DAG legs
// demonstrate the invariants hold under both scheduling modes.
func SharedPlan(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "sharedplan",
		Title: "Sharing-aware strategy search (joint plan + transient materializations)",
		PaperClaim: "choosing the maintenance plan and the shared transient " +
			"materializations jointly — instead of sharing whatever a " +
			"fixed dual-stage plan happens to expose — further shortens the " +
			"update window under the same transient byte budget",
	}
	for _, budget := range sharedPlanBudgets {
		for _, joint := range []bool{false, true} {
			label := "hint-based"
			if joint {
				label = "joint"
			}
			for _, mode := range []exec.Mode{exec.ModeSequential, exec.ModeDAG} {
				tw, err := tpcd.NewWarehouse(tpcd.Config{
					SF: cfg.SF, Seed: cfg.Seed,
					ShareComputation:  true,
					SharedBudgetBytes: budget.bytes,
				})
				if err != nil {
					return res, err
				}
				if _, err := tw.StageChanges(tpcd.Mixed(cfg.ChangeFrac, cfg.ChangeFrac/2)); err != nil {
					return res, err
				}
				var s strategy.Strategy
				if joint {
					stats, err := exec.PlanningStats(tw.W)
					if err != nil {
						return res, err
					}
					pres, err := planner.PruneShared(tw.Graph, cost.DefaultModel, stats, exec.RefCounts(tw.W),
						planner.SharedSearchOptions{
							Refs: exec.RefsOf(tw.W),
							Sharing: planner.SharingOptions{
								BudgetBytes: budget.bytes,
								Width:       exec.WidthOf(tw.W),
								Pairs:       exec.PairsOf(tw.W),
								Tuner:       tw.W.ShareTuner(),
							},
						})
					if err != nil {
						return res, err
					}
					tw.W.SetPlannedSharing(exec.HintsFromPlan(pres.Plan))
					s = pres.Strategy
				} else {
					s = strategy.DualStageVDAG(tw.Graph)
				}
				work, physical, row, err := runSharedPlanLeg(tw.W, s, mode)
				if err != nil {
					return res, err
				}
				row.Label = fmt.Sprintf("budget=%s %s %s", budget.label, label, mode)
				row.Work = work
				res.Rows = append(res.Rows, row)
				_ = physical
			}
		}
	}
	res.Notes = append(res.Notes,
		"hint-based = fixed dual-stage V-DAG strategy with after-the-fact sharing hints (PR 5 behavior); joint = PruneShared's sharing-adjusted search with elected join intermediates seeding the registry",
		"physical = compute-side operand scans actually performed: modeled comp work minus registry and build-cache savings; the modeled Work column never moves with sharing",
		"states are verified against recomputation on every leg; sequential and DAG rows share one modeled-work column per (budget, planner) pair",
	)
	return res, nil
}

// runSharedPlanLeg executes s on w under mode and returns the modeled total
// work, the physical compute scans, and the row's measured fields.
func runSharedPlanLeg(w *core.Warehouse, s strategy.Strategy, mode exec.Mode) (work, physical int64, row Row, err error) {
	var steps []exec.StepReport
	if mode == exec.ModeSequential {
		rep, rerr := exec.Execute(w, s, exec.Options{})
		if rerr != nil {
			return 0, 0, row, rerr
		}
		steps = rep.Steps
		work = rep.TotalWork()
		row.Elapsed = rep.Elapsed
	} else {
		rep, rerr := parallel.Run(w, s, w.Children, mode, parallel.Options{Workers: sharedCompWorkers})
		if rerr != nil {
			return 0, 0, row, rerr
		}
		for _, stage := range rep.Steps {
			steps = append(steps, stage...)
		}
		work = rep.TotalWork
		row.Elapsed = rep.Elapsed
	}
	var compWork, saved int64
	var hits, misses int
	for _, step := range steps {
		if _, ok := step.Expr.(strategy.Comp); ok {
			compWork += step.Work
		}
		saved += step.SharedTuplesSaved + step.CacheTuplesSaved
		hits += step.SharedHits
		misses += step.SharedMisses
	}
	physical = compWork - saved
	if err := w.VerifyAll(); err != nil {
		return 0, 0, row, fmt.Errorf("%s: %w", mode, err)
	}
	row.Predicted = -1
	row.Marker = fmt.Sprintf("physical=%d saved=%d shared=%d/%d", physical, saved, hits, hits+misses)
	return work, physical, row, nil
}
