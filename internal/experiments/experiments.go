// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) on the from-scratch engine:
//
//	Table 1  — the number of correct view strategies for n = 1..6
//	Figure 12 — Experiment 1: all 13 view strategies for Q3
//	Figure 13 — Experiment 2: Q5 MinWorkSingle vs. dual-stage
//	Figure 14 — Experiment 3: Q3 strategies across change fractions
//	Figure 15 — Experiment 4: VDAG strategies (MinWork/Prune, RNSCOL,
//	            dual-stage)
//	Section 9 — parallel strategies (extension)
//
// The paper reports seconds on SQL Server 6.5; this harness reports both
// measured work (tuples scanned/installed — the linear metric's unit) and
// wall-clock time on the bundled engine. Absolute numbers differ from the
// paper's; the comparisons (who wins, by roughly what factor) are the
// reproduced result.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

// Config sizes the experiments.
type Config struct {
	// SF is the TPC-D scale factor (default 0.002).
	SF float64
	// Seed drives data generation (default 7).
	Seed int64
	// ChangeFrac is the default change fraction (default 0.10, the paper's
	// "decreased in size by 10%").
	ChangeFrac float64
}

func (c Config) withDefaults() Config {
	if c.SF == 0 {
		c.SF = 0.002
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.ChangeFrac == 0 {
		c.ChangeFrac = 0.10
	}
	return c
}

// Row is one measured strategy (one bar of a figure).
type Row struct {
	Label string
	// Work is measured work: tuples scanned by Comps + rows installed.
	Work int64
	// Elapsed is the measured update window on this engine.
	Elapsed time.Duration
	// Predicted is the linear-metric estimate from planning statistics
	// (−1 when not computed).
	Predicted float64
	// Marker tags special rows ("MinWorkSingle", "optimal", …).
	Marker string
}

// Result is one reproduced table or figure.
type Result struct {
	ID    string // "table1", "fig12", …
	Title string
	// Columns names the Row fields being reported (documentation only).
	PaperClaim string
	Rows       []Row
	Notes      []string
}

// Format renders the result as an ASCII table.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	labelW := 10
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s  %12s  %12s  %12s  %s\n", labelW, "strategy", "work", "elapsed", "predicted", "")
	for _, row := range r.Rows {
		pred := ""
		if row.Predicted >= 0 {
			pred = fmt.Sprintf("%.0f", row.Predicted)
		}
		fmt.Fprintf(&b, "%-*s  %12d  %12s  %12s  %s\n",
			labelW, row.Label, row.Work, row.Elapsed.Round(time.Microsecond), pred, row.Marker)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Chart renders the result as an ASCII bar chart (the paper's figures are
// bar charts of update-window lengths), bars scaled to the largest work.
func (r Result) Chart() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	labelW, maxWork := 8, int64(1)
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
		if row.Work > maxWork {
			maxWork = row.Work
		}
	}
	const width = 50
	for _, row := range r.Rows {
		n := int(row.Work * width / maxWork)
		if n == 0 && row.Work > 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s |%-*s %d", labelW, row.Label, width, strings.Repeat("█", n), row.Work)
		if row.Marker != "" {
			fmt.Fprintf(&b, "  ← %s", row.Marker)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table1 reproduces Table 1: the number of correct view strategies for a
// view defined over n views, n = 1..6.
func Table1() Result {
	res := Result{
		ID:         "table1",
		Title:      "Number of view strategies for a view defined over n views",
		PaperClaim: "1, 3, 13, 75, 541, 4683 for n = 1..6 (ordered Bell numbers)",
	}
	for n := 1; n <= 6; n++ {
		count, err := strategy.CountViewStrategies(n)
		if err != nil {
			res.Notes = append(res.Notes, err.Error())
			continue
		}
		res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("n=%d", n), Work: count, Predicted: -1})
	}
	// Cross-check by enumeration for n ≤ 4.
	items := []string{"a", "b", "c", "d"}
	for n := 1; n <= 4; n++ {
		if got := len(strategy.OrderedPartitions(items[:n])); int64(got) != res.Rows[n-1].Work {
			res.Notes = append(res.Notes, fmt.Sprintf("enumeration mismatch at n=%d: %d", n, got))
		}
	}
	res.Notes = append(res.Notes,
		"Q3, Q5, Q10 are defined over 3, 6 and 4 views: 13, 4683 and 75 strategies respectively")
	return res
}

// measure executes s on a clone of the staged warehouse, returning the row.
func measure(tw *tpcd.Warehouse, label string, s strategy.Strategy, stats cost.Stats, verify bool) (Row, error) {
	run := tw.W.Clone()
	rep, err := exec.Execute(run, s, exec.Options{Validate: true})
	if err != nil {
		return Row{}, fmt.Errorf("%s: %w", label, err)
	}
	if verify {
		if err := run.VerifyAll(); err != nil {
			return Row{}, fmt.Errorf("%s: %w", label, err)
		}
	}
	row := Row{Label: label, Work: rep.TotalWork(), Elapsed: rep.Elapsed, Predicted: -1}
	if stats != nil {
		if pred, err := cost.Work(cost.DefaultModel, stats, exec.RefCounts(tw.W), s); err == nil {
			row.Predicted = pred
		}
	}
	return row, nil
}

// viewStrategyLabel renders an ordered partition compactly, e.g.
// "L | O | C" (1-way) or "{C,O} | L" (2-way first block).
func viewStrategyLabel(blocks [][]string) string {
	short := func(v string) string {
		if len(v) > 1 && (v[0] == 'Q') {
			return v
		}
		return v[:1]
	}
	parts := make([]string, len(blocks))
	for i, b := range blocks {
		if len(b) == 1 {
			parts[i] = short(b[0])
		} else {
			ss := make([]string, len(b))
			for j, v := range b {
				ss[j] = short(v)
			}
			parts[i] = "{" + strings.Join(ss, ",") + "}"
		}
	}
	return strings.Join(parts, " ")
}

// maxBlock returns the size of the largest Comp block of a partition.
func maxBlock(blocks [][]string) int {
	m := 0
	for _, b := range blocks {
		if len(b) > m {
			m = len(b)
		}
	}
	return m
}

// Fig12 reproduces Experiment 1: every one of the 13 view strategies for
// Q3 under a 10% decrease of the base views, sorted with the 1-way
// strategies first (as in the paper's bar chart).
func Fig12(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "fig12",
		Title: "Q3 view strategies (Experiment 1)",
		PaperClaim: "every 1-way beats every 2-way and the dual-stage strategy; " +
			"dual-stage ≈2.2–2.3× the optimum; MinWorkSingle near-optimal",
	}
	tw, err := tpcd.NewWarehouse(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed, Queries: []string{tpcd.Q3}})
	if err != nil {
		return res, err
	}
	// The measured strategies update Q3 only, so only the views Q3 reads
	// change (the paper also decreased S and N, which Q3 strategies never
	// touch and which do not affect the measurement).
	if _, err := tw.StageChanges(tpcd.COLDecrease(cfg.ChangeFrac)); err != nil {
		return res, err
	}
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		return res, err
	}
	children := tw.W.Children(tpcd.Q3)
	mws, err := planner.MinWorkSingle(tpcd.Q3, children, stats)
	if err != nil {
		return res, err
	}
	parts := strategy.OrderedPartitions(children)
	type entry struct {
		row  Row
		kind int // max block size: 1 = 1-way, 2 = 2-way, 3 = dual-stage
	}
	var entries []entry
	for _, p := range parts {
		s := strategy.PartitionedView(tpcd.Q3, p)
		label := viewStrategyLabel(p)
		row, err := measure(tw, label, s, stats, true)
		if err != nil {
			return res, err
		}
		if s.String() == mws.String() {
			row.Marker = "MinWorkSingle"
		}
		entries = append(entries, entry{row: row, kind: maxBlock(p)})
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].kind != entries[j].kind {
			return entries[i].kind < entries[j].kind
		}
		return entries[i].row.Work < entries[j].row.Work
	})
	best := entries[0].row.Work
	for _, e := range entries {
		if e.row.Work < best {
			best = e.row.Work
		}
	}
	var dual, bestRow Row
	for i, e := range entries {
		if e.row.Work == best && e.row.Marker == "" {
			e.row.Marker = "optimal"
			entries[i] = e
		}
		if e.kind == 3 {
			dual = e.row
		}
		if e.row.Work == best {
			bestRow = e.row
		}
	}
	for _, e := range entries {
		res.Rows = append(res.Rows, e.row)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("dual-stage / optimal work ratio: %.2f (paper: ≈2.2–2.3 in time)",
			float64(dual.Work)/float64(bestRow.Work)))
	return res, nil
}

// Fig13 reproduces Experiment 2: Q5 (defined over all six base views),
// MinWorkSingle vs. the dual-stage view strategy.
func Fig13(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:         "fig13",
		Title:      "Q5 view strategies (Experiment 2)",
		PaperClaim: "dual-stage is over 6× MinWorkSingle for the 6-view Q5",
	}
	tw, err := tpcd.NewWarehouse(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed, Queries: []string{tpcd.Q5}})
	if err != nil {
		return res, err
	}
	if _, err := tw.StageChanges(tpcd.UniformDecrease(cfg.ChangeFrac)); err != nil {
		return res, err
	}
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		return res, err
	}
	children := tw.W.Children(tpcd.Q5)
	mws, err := planner.MinWorkSingle(tpcd.Q5, children, stats)
	if err != nil {
		return res, err
	}
	rowM, err := measure(tw, "MinWorkSingle", mws, stats, true)
	if err != nil {
		return res, err
	}
	rowM.Marker = "MinWorkSingle"
	rowD, err := measure(tw, "dual-stage", strategy.DualStageView(tpcd.Q5, children), stats, true)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, rowM, rowD)
	res.Notes = append(res.Notes, fmt.Sprintf("dual-stage / MinWorkSingle work ratio: %.2f (paper: >6 in time; dual-stage evaluates 63 terms vs 6)",
		float64(rowD.Work)/float64(rowM.Work)))
	return res, nil
}

// Fig14 reproduces Experiment 3: Q3 under p = 2..10% decreases of C, O and
// L, comparing MinWorkSingle, the best 2-way strategy, and dual-stage.
func Fig14(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:         "fig14",
		Title:      "Q3 view strategies across change fractions (Experiment 3)",
		PaperClaim: "MinWorkSingle ≤ best 2-way ≤ dual-stage over the whole 2–10% range",
	}
	for _, pct := range []int{2, 4, 6, 8, 10} {
		p := float64(pct) / 100
		tw, err := tpcd.NewWarehouse(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed, Queries: []string{tpcd.Q3}})
		if err != nil {
			return res, err
		}
		if _, err := tw.StageChanges(tpcd.COLDecrease(p)); err != nil {
			return res, err
		}
		stats, err := exec.PlanningStats(tw.W)
		if err != nil {
			return res, err
		}
		children := tw.W.Children(tpcd.Q3)
		mws, err := planner.MinWorkSingle(tpcd.Q3, children, stats)
		if err != nil {
			return res, err
		}
		// The best 2-way strategy by predicted cost (the paper reuses the
		// best 2-way bar of Figure 12).
		var best2 strategy.Strategy
		best2W := -1.0
		for _, part := range strategy.OrderedPartitions(children) {
			if maxBlock(part) != 2 {
				continue
			}
			s := strategy.PartitionedView(tpcd.Q3, part)
			w, err := cost.Work(cost.DefaultModel, stats, exec.RefCounts(tw.W), s)
			if err != nil {
				return res, err
			}
			if best2W < 0 || w < best2W {
				best2W, best2 = w, s
			}
		}
		for _, c := range []struct {
			label string
			s     strategy.Strategy
		}{
			{fmt.Sprintf("p=%d%% MinWorkSingle", pct), mws},
			{fmt.Sprintf("p=%d%% best-2-way", pct), best2},
			{fmt.Sprintf("p=%d%% dual-stage", pct), strategy.DualStageView(tpcd.Q3, children)},
		} {
			row, err := measure(tw, c.label, c.s, stats, false)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Fig15 reproduces Experiment 4: strategies for the full TPC-D VDAG —
// MinWork (provably optimal here: the VDAG is uniform), Prune's best 1-way,
// the reverse-ordering strategy (RNSCOL), and the dual-stage VDAG strategy.
func Fig15(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "fig15",
		Title: "VDAG strategies for the TPC-D warehouse (Experiment 4)",
		PaperClaim: "MinWork 5–6× better than dual-stage and ≈11% better than " +
			"the reverse ordering RNSCOL; MinWork is optimal (uniform VDAG)",
	}
	tw, err := tpcd.NewWarehouse(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed})
	if err != nil {
		return res, err
	}
	if _, err := tw.StageChanges(tpcd.UniformDecrease(cfg.ChangeFrac)); err != nil {
		return res, err
	}
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		return res, err
	}
	mw, err := planner.MinWork(tw.Graph, stats)
	if err != nil {
		return res, err
	}
	rowMW, err := measure(tw, "MinWork "+strings.Join(initials(mw.UsedOrdering), ""), mw.Strategy, stats, true)
	if err != nil {
		return res, err
	}
	rowMW.Marker = "MinWork"
	res.Rows = append(res.Rows, rowMW)

	pr, err := planner.Prune(tw.Graph, cost.DefaultModel, stats, exec.RefCounts(tw.W))
	if err != nil {
		return res, err
	}
	rowPr, err := measure(tw, "Prune best 1-way", pr.Strategy, stats, true)
	if err != nil {
		return res, err
	}
	rowPr.Marker = fmt.Sprintf("searched %d orderings", pr.Examined)
	res.Rows = append(res.Rows, rowPr)

	// RNSCOL: the 1-way VDAG strategy consistent with the reverse of the
	// desired ordering.
	rev := append([]string(nil), mw.UsedOrdering...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	eg := planner.ConstructEG(tw.Graph, rev)
	revStrat, err := eg.TopoSort()
	if err != nil {
		return res, err
	}
	rowRev, err := measure(tw, "reverse "+strings.Join(initials(rev), ""), revStrat, stats, true)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, rowRev)

	rowDual, err := measure(tw, "dual-stage", strategy.DualStageVDAG(tw.Graph), stats, true)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, rowDual)

	res.Notes = append(res.Notes,
		fmt.Sprintf("dual-stage / MinWork work ratio: %.2f (paper: 5–6×)",
			float64(rowDual.Work)/float64(rowMW.Work)),
		fmt.Sprintf("reverse / MinWork work ratio: %.3f (paper: ≈1.11)",
			float64(rowRev.Work)/float64(rowMW.Work)))
	return res, nil
}

func initials(views []string) []string {
	out := make([]string, len(views))
	for i, v := range views {
		out[i] = v[:1]
	}
	return out
}

// Parallel reproduces the Section 9 analysis: the MinWork sequential
// strategy vs. the parallelized dual-stage strategy — less span, more total
// work.
func Parallel(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "parallel",
		Title: "Parallel strategies (Section 9)",
		PaperClaim: "dual-stage view strategies remove dependencies (two stages) " +
			"but increase total work, so the benefit of running expressions in " +
			"parallel may be offset by the extra work",
	}
	mkWarehouse := func() (*tpcd.Warehouse, error) {
		tw, err := tpcd.NewWarehouse(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		if _, err := tw.StageChanges(tpcd.UniformDecrease(cfg.ChangeFrac)); err != nil {
			return nil, err
		}
		return tw, nil
	}
	tw, err := mkWarehouse()
	if err != nil {
		return res, err
	}
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		return res, err
	}
	mw, err := planner.MinWork(tw.Graph, stats)
	if err != nil {
		return res, err
	}

	type variant struct {
		label string
		s     strategy.Strategy
	}
	for _, v := range []variant{
		{"MinWork (1-way)", mw.Strategy},
		{"dual-stage", strategy.DualStageVDAG(tw.Graph)},
	} {
		run, err := mkWarehouse()
		if err != nil {
			return res, err
		}
		plan := parallelize(run, v.s)
		t0 := time.Now()
		rep, err := parallelExecute(run, plan)
		if err != nil {
			return res, err
		}
		elapsed := time.Since(t0)
		if err := run.W.VerifyAll(); err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Row{
			Label:     fmt.Sprintf("%s stages=%d", v.label, plan.Stages()),
			Work:      rep.TotalWork,
			Elapsed:   elapsed,
			Predicted: float64(rep.SpanWork),
			Marker:    fmt.Sprintf("speedup=%.2f", rep.Speedup()),
		})
	}
	res.Notes = append(res.Notes,
		"'predicted' column holds span work (critical path per expression)",
		"dual-stage reaches two stages but its single 63-term Comp(Q5,·) dominates the span — "+
			"the extra parallelism does not pay, exactly the offset the paper warns about")
	return res, nil
}

// MetricAblation reproduces the paper's Discussion-section argument for
// the linear work metric: under the rejected "sum of operand sizes once"
// variant, the dual-stage VDAG strategy would be predicted cheapest, while
// actual execution (and the real metric) shows it is several times worse.
func MetricAblation(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "metric",
		Title: "Linear work metric vs. the rejected variant (Discussion, Section 7)",
		PaperClaim: "a variant metric that sums operand sizes once (ignoring term " +
			"counts) would rank the dual-stage strategy best, contrary to Experiment 4",
	}
	tw, err := tpcd.NewWarehouse(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed})
	if err != nil {
		return res, err
	}
	if _, err := tw.StageChanges(tpcd.UniformDecrease(cfg.ChangeFrac)); err != nil {
		return res, err
	}
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		return res, err
	}
	mw, err := planner.MinWork(tw.Graph, stats)
	if err != nil {
		return res, err
	}
	refs := exec.RefCounts(tw.W)
	for _, c := range []struct {
		label string
		s     strategy.Strategy
	}{
		{"MinWork (1-way)", mw.Strategy},
		{"dual-stage", strategy.DualStageVDAG(tw.Graph)},
	} {
		row, err := measure(tw, c.label, c.s, stats, false)
		if err != nil {
			return res, err
		}
		variant, err := cost.VariantWork(cost.DefaultModel, stats, refs, c.s)
		if err != nil {
			return res, err
		}
		row.Marker = fmt.Sprintf("variant metric predicts %.0f", variant)
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"the linear metric ('predicted') tracks measured work; the variant inverts the comparison",
	)
	return res, nil
}

// All runs every experiment.
func All(cfg Config) ([]Result, error) {
	out := []Result{Table1()}
	for _, f := range []func(Config) (Result, error){Fig12, Fig13, Fig14, Fig15, Parallel, StagedVsDAG, TermParallel, SharedComp, SharedPlan, MetricAblation, Estimation, Deep, FaultTolerance, Spill} {
		r, err := f(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
