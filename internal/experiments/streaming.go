package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	warehouse "repro"
	"repro/internal/ingest"
	"repro/internal/serve"
)

// Streaming measures the continuous-ingestion regime: a paced change stream
// feeds the bounded staging buffer while adaptive micro-batch windows chase
// a p99 staleness SLO and a client pool hammers the query server — the
// steady-state production posture around the paper's single operator-invoked
// window. One row per window execution mode (sequential, DAG-parallel,
// term-parallel, DAG with cross-view sharing), plus an adversarial tight-SLO
// row whose sub-microsecond budget is unmeetable by construction: every
// first attempt deadline-aborts, so the sizer must walk the batch target
// down to its floor and the retry ladder (doubled deadline) must still land
// every change — graceful degradation, not collapse.
func Streaming(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "streaming",
		Title: "Continuous ingestion: staleness SLOs and adaptive micro-batch windows",
		PaperClaim: "streaming extension — the paper shrinks one update window; under a " +
			"continuous stream the same machinery bounds staleness by re-sizing windows online",
	}

	const (
		stores     = 32
		sales      = 3000
		clients    = 2
		numWorkers = 2
		queueDepth = 8
		slo        = 200 * time.Millisecond
		perSet     = 16
		pace       = time.Millisecond
		// Clients think between queries: an unpaced closed loop would starve
		// the window workers on a small host, and every starved attempt costs
		// a full doubled deadline before the retry lands.
		think = 2 * time.Millisecond
	)

	type trial struct {
		label        string
		mode         warehouse.Mode
		parTerms     bool
		share        bool
		slo          time.Duration
		minBatch     int
		initialBatch int
		sets         int
	}
	trials := []trial{
		{"sequential", warehouse.ModeSequential, false, false, slo, 16, 64, 100},
		{"dag", warehouse.ModeDAG, false, false, slo, 16, 64, 100},
		{"term-parallel", warehouse.ModeSequential, true, false, slo, 16, 64, 100},
		{"shared", warehouse.ModeDAG, false, true, slo, 16, 64, 100},
		// The tight-SLO leg: a 1µs target means the window budget (half the
		// SLO) has always expired by the first scheduling check, so every
		// batch aborts once, halves the target, and lands on the retry's
		// doubled deadline.
		{"tight-slo (1µs)", warehouse.ModeDAG, false, false, time.Microsecond, 8, 256, 20},
	}

	queries := []string{
		"SELECT region, SUM(amount) AS t, COUNT(*) AS n FROM SALES_BY_STORE GROUP BY region",
		"SELECT region, total, n FROM REGION_TOTALS ORDER BY region",
	}

	for _, tr := range trials {
		w, rng, err := onlineWarehouse(cfg.Seed, stores, sales)
		if err != nil {
			return res, err
		}
		if tr.parTerms {
			w.SetParallelism(0, true)
		}
		if tr.share {
			w.SetSharing(true, 0)
		}
		s := serve.New(w, serve.Config{QueueDepth: queueDepth, Workers: numWorkers})

		var mu sync.Mutex
		var work int64
		ing, err := ingest.New(ingest.Config{
			Warehouse:    w,
			SLO:          tr.slo,
			Tick:         time.Millisecond,
			Mode:         tr.mode,
			Workers:      2,
			MinBatch:     tr.minBatch,
			InitialBatch: tr.initialBatch,
			QueueLimit:   4096,
			OnWindow: func(rep warehouse.WindowReport) {
				mu.Lock()
				work += rep.Report.TotalWork()
				mu.Unlock()
			},
		})
		if err != nil {
			return res, err
		}
		s.AttachIngest(ing)
		runDone := make(chan error, 1)
		go func() { runDone <- ing.Run(context.Background()) }()

		nextID := int64(sales)
		start := time.Now()
		lats, werr := hammerThink(s, queries, clients, think, func() error {
			for i := 0; i < tr.sets; i++ {
				d, err := streamDelta(w, rng, &nextID, stores, perSet)
				if err != nil {
					return err
				}
				if err := ing.Submit("SALES", d); err != nil {
					if errors.Is(err, ingest.ErrIngestOverloaded) {
						continue // shed under backpressure; the stats count it
					}
					return err
				}
				time.Sleep(pace)
			}
			return ing.Close(context.Background())
		})
		if werr != nil {
			return res, werr
		}
		if err := <-runDone; err != nil {
			return res, err
		}
		elapsed := time.Since(start)
		st := ing.Stats()
		sst := s.Stats()
		if err := s.Close(context.Background()); err != nil {
			return res, err
		}
		mu.Lock()
		trialWork := work
		mu.Unlock()
		res.Rows = append(res.Rows, Row{
			Label: tr.label, Work: trialWork, Elapsed: elapsed, Predicted: -1,
			Marker: fmt.Sprintf("stale p50=%.2fms p99=%.2fms windows=%d target=%d shed=%d aborts=%d | %s",
				st.StalenessP50MS, st.StalenessP99MS, st.Windows, st.BatchTarget,
				st.Shed, st.DeadlineAborts, latencyMarker(lats, sst)),
		})
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("stream: sets of %d row-changes every %s; staleness SLO %s (p99, adaptive batch sizing via the calibrated cost model)", perSet, pace, slo),
		"markers: ingest staleness percentiles, committed windows, final batch target, shed changes, deadline aborts | concurrent query stream",
		"the tight-slo row degrades gracefully: deadline aborts halve the batch target to its floor and retries with doubled deadlines still land every change",
	)
	return res, nil
}

// streamDelta builds (without staging) a delta of n fresh sales — the
// continuous producer's unit of submission.
func streamDelta(w *warehouse.Warehouse, rng *rand.Rand, nextID *int64, stores, n int) (*warehouse.Delta, error) {
	d, err := w.NewDelta("SALES")
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		d.Add(warehouse.Tuple{
			warehouse.Int(*nextID),
			warehouse.Int(rng.Int63n(int64(stores))),
			warehouse.Float(float64(rng.Intn(200)) / 4),
		}, 1)
		*nextID++
	}
	return d, nil
}
