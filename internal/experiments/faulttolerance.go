package experiments

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/planner"
	"repro/internal/recovery"
	"repro/internal/tpcd"
)

// FaultTolerance measures the cost of the crash-safety machinery on the
// Experiment 4 workload (the full TPC-D VDAG under a 10% decrease): what
// journaling adds to an update window, what a crash-and-recover cycle
// replays, what transient-failure retries cost, and what the
// install-and-recompute fallback — the strategy the whole paper is an
// argument against — costs relative to the incremental window it replaces.
func FaultTolerance(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "faulttolerance",
		Title: "Crash-safe update windows (journal, recovery, degradation)",
		PaperClaim: "robustness extension — the recompute fallback re-derives every " +
			"view from scratch, the very cost Section 7 shows incremental strategies avoid",
	}
	tw, err := tpcd.NewWarehouse(tpcd.Config{SF: cfg.SF, Seed: cfg.Seed})
	if err != nil {
		return res, err
	}
	// Recovery replays on the pre-window (unstaged) state — it re-stages the
	// journaled batch itself — so keep a pristine clone before staging.
	pristine := tw.W.Clone()
	if _, err := tw.StageChanges(tpcd.UniformDecrease(cfg.ChangeFrac)); err != nil {
		return res, err
	}
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		return res, err
	}
	mw, err := planner.MinWork(tw.Graph, stats)
	if err != nil {
		return res, err
	}
	s := mw.Strategy
	noSleep := func(time.Duration) {}

	// Baseline: the robust runner without a journal (clone-execute-swap
	// only).
	base, err := recovery.Run(tw.W, s, recovery.Options{Validate: true})
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, Row{
		Label: "unjournaled", Work: base.Report.TotalWork,
		Elapsed: base.Report.Elapsed, Predicted: -1,
	})

	// Journaled: identical window, plus begin/step/commit records.
	var jbuf bytes.Buffer
	jr, err := recovery.Run(tw.W, s, recovery.Options{
		Journal: journal.NewWriter(&jbuf), Seq: 1, Planner: "minwork", Validate: true,
	})
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, Row{
		Label: "journaled", Work: jr.Report.TotalWork, Elapsed: jr.Report.Elapsed,
		Predicted: -1, Marker: fmt.Sprintf("journal: %d bytes", jbuf.Len()),
	})

	// Crash mid-window, then recover on the pristine state: the journaled
	// batch is re-staged, completed steps are verified against their
	// journaled digests, and the recovered window's work must equal the
	// uninterrupted one's.
	crashAt := len(s)/2 + 1
	var cbuf bytes.Buffer
	inj := faults.New(cfg.Seed)
	inj.CrashAt("step", crashAt)
	if _, err := recovery.Run(tw.W, s, recovery.Options{
		Journal: journal.NewWriter(&cbuf), Seq: 1, Planner: "minwork",
		Validate: true, Faults: inj,
	}); err == nil {
		return res, fmt.Errorf("faulttolerance: injected crash did not surface")
	}
	lg, err := journal.ReadLog(bytes.NewReader(cbuf.Bytes()))
	if err != nil {
		return res, err
	}
	rec, err := recovery.Recover(pristine, &lg, recovery.Options{Validate: true})
	if err != nil {
		return res, err
	}
	marker := fmt.Sprintf("%d/%d steps survived the crash", crashAt-1, len(s))
	if rec.Report.TotalWork != base.Report.TotalWork {
		marker = fmt.Sprintf("WORK MISMATCH: %d vs %d", rec.Report.TotalWork, base.Report.TotalWork)
	}
	res.Rows = append(res.Rows, Row{
		Label: fmt.Sprintf("crash@%d + recover", crashAt), Work: rec.Report.TotalWork,
		Elapsed: rec.Report.Elapsed, Predicted: -1, Marker: marker,
	})

	// Transient faults with retry: two injected failures, absorbed by the
	// backoff loop.
	tinj := faults.New(cfg.Seed)
	tinj.FailTimes("step", 2)
	tr, err := recovery.Run(tw.W, s, recovery.Options{
		Validate: true, Faults: tinj, Retries: 3, Sleep: noSleep,
	})
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, Row{
		Label: "2 transient faults + retry", Work: tr.Report.TotalWork,
		Elapsed: tr.Report.Elapsed, Predicted: -1,
		Marker: fmt.Sprintf("%d attempts", tr.Attempts),
	})

	// Persistent failure: every incremental attempt dies, and the window
	// degrades to install-and-recompute.
	pinj := faults.New(cfg.Seed)
	pinj.SetProbability("step", 1)
	rc, err := recovery.Run(tw.W, s, recovery.Options{
		Validate: true, Faults: pinj, Retries: 1, Sleep: noSleep,
		FallbackSequential: true, FallbackRecompute: true,
	})
	if err != nil {
		return res, err
	}
	if !rc.Recomputed {
		return res, fmt.Errorf("faulttolerance: persistent faults did not reach the recompute fallback")
	}
	// The step-level linear metric only sees the installs: RefreshAll's
	// re-derivation is unmetered. Count the re-derived rows so the bar is
	// comparable.
	recompWork := rc.Report.TotalWork
	for _, name := range rc.Core.ViewNames() {
		if !rc.Core.View(name).IsBase() {
			recompWork += int64(rc.Core.View(name).Cardinality())
		}
	}
	res.Rows = append(res.Rows, Row{
		Label: "recompute fallback", Work: recompWork,
		Elapsed: rc.Report.Elapsed, Predicted: -1,
		Marker: fmt.Sprintf("%d attempts, degraded; installs + re-derived rows", rc.Attempts),
	})

	res.Notes = append(res.Notes,
		fmt.Sprintf("recovered window replays to the same total work as the uninterrupted one (%d)",
			base.Report.TotalWork),
		fmt.Sprintf("recompute / incremental work ratio: %.2f at SF=%g — recomputation scales with state size, incremental maintenance with change size; the gap widens as the warehouse grows",
			float64(recompWork)/float64(base.Report.TotalWork), cfg.SF),
	)
	return res, nil
}
