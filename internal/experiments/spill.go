package experiments

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

// spillLeg runs the Experiment 4 workload (full TPC-D VDAG, MinWork
// strategy, uniform decrease) under one memory budget and returns the
// measured report plus aggregate spill counters.
type spillLeg struct {
	rep     exec.Report
	spills  int
	spilled int64
	reread  int64
	work    int64
	s       strategy.Strategy
}

func runSpillLeg(cfg Config, budget int64) (spillLeg, error) {
	var leg spillLeg
	tw, err := tpcd.NewWarehouse(tpcd.Config{
		SF: cfg.SF, Seed: cfg.Seed, MemoryBudgetBytes: budget,
	})
	if err != nil {
		return leg, err
	}
	if _, err := tw.StageChanges(tpcd.UniformDecrease(cfg.ChangeFrac)); err != nil {
		return leg, err
	}
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		return leg, err
	}
	mw, err := planner.MinWork(tw.Graph, stats)
	if err != nil {
		return leg, err
	}
	rep, err := exec.Execute(tw.W, mw.Strategy, exec.Options{Validate: true})
	if err != nil {
		return leg, err
	}
	if err := tw.W.VerifyAll(); err != nil {
		return leg, err
	}
	leg.rep = rep
	leg.s = mw.Strategy
	leg.work = rep.TotalWork()
	for _, step := range rep.Steps {
		leg.spills += step.SpillCount
		leg.spilled += step.SpilledBytes
		leg.reread += step.SpillReReadBytes
	}
	return leg, nil
}

// Spill measures bounded-memory execution: the same update window run with
// an effectively unlimited budget (accounting only — its peak is the
// window's true transient footprint) and with a budget deliberately set
// below that peak, so over-budget hash builds partition to disk Grace-style
// and are probed partition-wise. The Work column is the linear metric and
// must be identical across legs: spilling changes bytes moved, never the
// modeled work — the paper's plan stays optimal whatever the memory regime.
// The bounded leg's peak must stay within its budget; the extra cost shows
// up only as spill I/O (bytes written + re-read) and wall-clock.
func Spill(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "spill",
		Title: "Bounded-memory update windows (Grace-style spill)",
		PaperClaim: "robustness extension — the update window completes within a " +
			"fixed memory budget, trading spill I/O for footprint while the " +
			"strategy, its work, and its results are unchanged",
	}

	unbounded, err := runSpillLeg(cfg, 1<<40)
	if err != nil {
		return res, err
	}
	truePeak := unbounded.rep.PeakReservedBytes
	// Budget: half the true footprint, floored so partitions stay realistic.
	budget := truePeak / 2
	if min := int64(512 << 10); budget < min {
		budget = min
	}
	bounded, err := runSpillLeg(cfg, budget)
	if err != nil {
		return res, err
	}

	res.Rows = append(res.Rows,
		Row{
			Label: "unbounded", Work: unbounded.work, Elapsed: unbounded.rep.Elapsed, Predicted: -1,
			Marker: fmt.Sprintf("peakB=%d", truePeak),
		},
		Row{
			Label: fmt.Sprintf("budget=%dKiB", budget>>10), Work: bounded.work,
			Elapsed: bounded.rep.Elapsed, Predicted: -1,
			Marker: fmt.Sprintf("peakB=%d spills=%d spilledB=%d rereadB=%d",
				bounded.rep.PeakReservedBytes, bounded.spills, bounded.spilled, bounded.reread),
		},
	)

	if unbounded.spills != 0 {
		res.Notes = append(res.Notes, "UNEXPECTED: the unbounded leg spilled")
	}
	if bounded.work != unbounded.work {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"UNEXPECTED: work diverged under spilling (%d vs %d)", bounded.work, unbounded.work))
	}
	if budget < truePeak {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"budget (%d) below the true footprint (%d): spilled %d builds, peak %d ≤ budget: %v",
			budget, truePeak, bounded.spills, bounded.rep.PeakReservedBytes,
			bounded.rep.PeakReservedBytes <= budget))
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"workload fits the %d-byte floor budget at SF=%g; raise SF to force spilling", budget, cfg.SF))
	}
	res.Notes = append(res.Notes,
		"Work is identical across legs: spilling changes bytes moved, never the linear metric",
		"spilledB/rereadB: bytes written to spill partitions and re-read during partition-wise probing")
	return res, nil
}
