package experiments

import (
	"repro/internal/parallel"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

// parallelize stages a strategy for the TPC-D warehouse.
func parallelize(tw *tpcd.Warehouse, s strategy.Strategy) parallel.Plan {
	return parallel.Parallelize(s, tw.W.Children)
}

// parallelExecute runs a staged plan on the TPC-D warehouse.
func parallelExecute(tw *tpcd.Warehouse, p parallel.Plan) (parallel.Report, error) {
	return parallel.Execute(tw.W, p)
}
