package experiments

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/planner"
	"repro/internal/strategy"
	"repro/internal/tpcd"
)

// parallelize stages a strategy for the TPC-D warehouse.
func parallelize(tw *tpcd.Warehouse, s strategy.Strategy) parallel.Plan {
	return parallel.Parallelize(s, tw.W.Children)
}

// parallelExecute runs a staged plan on the TPC-D warehouse.
func parallelExecute(tw *tpcd.Warehouse, p parallel.Plan) (parallel.Report, error) {
	return parallel.Execute(tw.W, p)
}

// stagedVsDAGWorkers is the bounded pool the DAG rows run with (the
// acceptance configuration of the barrier-free scheduler).
const stagedVsDAGWorkers = 4

// StagedVsDAG compares barrier-staged execution (Section 9) against
// barrier-free precedence-DAG scheduling on the same strategies: for two
// scale factors (cfg.SF and 5×cfg.SF — 0.002 and 0.01 at the defaults;
// raise -sf to reach 0.1) under the paper's mixed p% change workload, the
// MinWork and dual-stage strategies each run staged and DAG-scheduled with
// 4 workers. Wall-clock is the best of 3 runs; work metrics are measured
// per run and identical across modes. The DAG window should never exceed
// the staged window: dropping barriers only removes waiting.
func StagedVsDAG(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "stagedvsdag",
		Title: "Staged vs. barrier-free DAG scheduling",
		PaperClaim: "a staged plan makes every expression of stage k wait for the " +
			"slowest expression of stage k−1; scheduling the precedence DAG " +
			"directly shortens the window toward the critical path",
	}
	for _, sf := range []float64{cfg.SF, 5 * cfg.SF} {
		mkWarehouse := func() (*tpcd.Warehouse, error) {
			tw, err := tpcd.NewWarehouse(tpcd.Config{SF: sf, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			if _, err := tw.StageChanges(tpcd.Mixed(cfg.ChangeFrac, cfg.ChangeFrac/2)); err != nil {
				return nil, err
			}
			return tw, nil
		}
		tw, err := mkWarehouse()
		if err != nil {
			return res, err
		}
		stats, err := exec.PlanningStats(tw.W)
		if err != nil {
			return res, err
		}
		mw, err := planner.MinWork(tw.Graph, stats)
		if err != nil {
			return res, err
		}
		for _, v := range []struct {
			label string
			s     strategy.Strategy
		}{
			{"MinWork", mw.Strategy},
			{"dual-stage", strategy.DualStageVDAG(tw.Graph)},
		} {
			for _, mode := range []exec.Mode{exec.ModeStaged, exec.ModeDAG} {
				var best parallel.Report
				for trial := 0; trial < 3; trial++ {
					run, err := mkWarehouse()
					if err != nil {
						return res, err
					}
					rep, err := parallel.Run(run.W, v.s, run.W.Children, mode, parallel.Options{
						Workers: stagedVsDAGWorkers,
					})
					if err != nil {
						return res, err
					}
					if trial == 0 {
						if err := run.W.VerifyAll(); err != nil {
							return res, err
						}
					}
					if trial == 0 || rep.Elapsed < best.Elapsed {
						best = rep
					}
				}
				// The window bound the mode targets: the chain of stage
				// maxima for staged runs, the critical path for DAG runs.
				bound := best.SpanWork
				if mode == exec.ModeDAG {
					bound = best.CriticalPathWork
				}
				res.Rows = append(res.Rows, Row{
					Label:     fmt.Sprintf("SF=%g %s %s", sf, v.label, mode),
					Work:      best.TotalWork,
					Elapsed:   best.Elapsed,
					Predicted: float64(bound),
					Marker:    fmt.Sprintf("span=%d critpath=%d ×%d", best.SpanWork, best.CriticalPathWork, best.Workers),
				})
			}
		}
	}
	// Summarize the headline comparison: per (SF, strategy), DAG vs staged
	// wall clock.
	for i := 0; i+1 < len(res.Rows); i += 2 {
		staged, dag := res.Rows[i], res.Rows[i+1]
		verdict := "DAG ≤ staged"
		if dag.Elapsed > staged.Elapsed {
			verdict = "DAG slower (scheduling noise at this scale)"
		}
		res.Notes = append(res.Notes, fmt.Sprintf("%s: %s vs %s — %s",
			staged.Label, dag.Elapsed.Round(time.Microsecond),
			staged.Elapsed.Round(time.Microsecond), verdict))
	}
	res.Notes = append(res.Notes,
		"'predicted' is the mode's window bound from the same measured run: span work (staged) or critical-path work (DAG)",
		fmt.Sprintf("DAG rows use a bounded pool of %d workers; wall-clock is best of 3", stagedVsDAGWorkers))
	return res, nil
}
