package memory

import (
	"sync"
	"testing"
)

// TestBudgetReserveRelease: basic accounting — grants admit under the limit,
// deny over it, and released bytes return to the pool.
func TestBudgetReserveRelease(t *testing.T) {
	b := NewBudget(100)
	if b.Limit() != 100 {
		t.Fatalf("Limit() = %d, want 100", b.Limit())
	}
	g1, ok := b.TryReserve(60)
	if !ok || g1.Bytes() != 60 {
		t.Fatalf("first reservation denied (ok=%v bytes=%d)", ok, g1.Bytes())
	}
	if _, ok := b.TryReserve(50); ok {
		t.Fatal("60+50 admitted against a 100-byte limit")
	}
	if b.Denied() != 1 {
		t.Fatalf("Denied() = %d, want 1", b.Denied())
	}
	g2, ok := b.TryReserve(40)
	if !ok {
		t.Fatal("60+40 denied against a 100-byte limit")
	}
	if got := b.Used(); got != 100 {
		t.Fatalf("Used() = %d, want 100", got)
	}
	g1.Release()
	if got := b.Used(); got != 40 {
		t.Fatalf("Used() after release = %d, want 40", got)
	}
	// Idempotent release: a second Release must not go negative.
	g1.Release()
	g2.Release()
	if got := b.Used(); got != 0 {
		t.Fatalf("Used() after all releases = %d, want 0", got)
	}
	if got := b.Peak(); got != 100 {
		t.Fatalf("Peak() = %d, want 100", got)
	}
}

// TestBudgetTryReserveUnder: a caller cap below the limit gates admission,
// while Reserve ignores both and still feeds the peak.
func TestBudgetTryReserveUnder(t *testing.T) {
	b := NewBudget(100)
	if _, ok := b.TryReserveUnder(80, 75); ok {
		t.Fatal("80 admitted under a 75-byte cap")
	}
	g, ok := b.TryReserveUnder(70, 75)
	if !ok {
		t.Fatal("70 denied under a 75-byte cap")
	}
	// Forced reservation: over limit, still granted, still tracked.
	f := b.Reserve(200)
	if got := b.Used(); got != 270 {
		t.Fatalf("Used() = %d, want 270", got)
	}
	if got := b.Peak(); got != 270 {
		t.Fatalf("Peak() = %d, want 270", got)
	}
	f.Release()
	g.Release()
}

// TestBudgetUnlimited: a non-positive limit admits everything but still
// accounts usage and peak — the accounting-only mode the spill experiment's
// unbounded leg relies on.
func TestBudgetUnlimited(t *testing.T) {
	b := NewBudget(0)
	g, ok := b.TryReserve(1 << 40)
	if !ok {
		t.Fatal("unlimited budget denied a reservation")
	}
	if b.Peak() != 1<<40 || b.Denied() != 0 {
		t.Fatalf("peak=%d denied=%d", b.Peak(), b.Denied())
	}
	g.Release()
}

// TestBudgetNilSafe: every method on a nil *Budget (and a nil *Grant) is
// inert — the zero-configuration hook production paths rely on.
func TestBudgetNilSafe(t *testing.T) {
	var b *Budget
	g, ok := b.TryReserve(10)
	if !ok || g != nil {
		t.Fatalf("nil budget: TryReserve = (%v, %v)", g, ok)
	}
	if b.Reserve(10) != nil {
		t.Fatal("nil budget: Reserve returned a grant")
	}
	if b.Used() != 0 || b.Peak() != 0 || b.Denied() != 0 || b.Limit() != 0 {
		t.Fatal("nil budget accounted something")
	}
	b.OnPressure(func(int64) {})
	g.Release() // nil grant
}

// TestBudgetPressureCallback: a denied reservation fires the pressure
// callbacks with the byte shortfall.
func TestBudgetPressureCallback(t *testing.T) {
	b := NewBudget(100)
	var needs []int64
	b.OnPressure(func(n int64) { needs = append(needs, n) })
	g, _ := b.TryReserve(90)
	defer g.Release()
	if _, ok := b.TryReserve(30); ok {
		t.Fatal("over-limit reservation admitted")
	}
	if len(needs) != 1 || needs[0] != 20 {
		t.Fatalf("pressure callbacks fired with %v, want [20]", needs)
	}
}

// TestBudgetConcurrentBalance hammers the budget from many goroutines mixing
// admitted, denied and forced reservations; when everything releases, the
// balance must be exactly zero and the peak within the forced-over-limit
// bound. Run under -race this also proves the locking discipline.
func TestBudgetConcurrentBalance(t *testing.T) {
	const (
		workers = 16
		rounds  = 500
		limit   = 1 << 20
	)
	b := NewBudget(limit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var held []*Grant
			for i := 0; i < rounds; i++ {
				n := int64(1 + (w*rounds+i)%4096)
				switch i % 3 {
				case 0:
					if g, ok := b.TryReserve(n); ok {
						held = append(held, g)
					}
				case 1:
					held = append(held, b.Reserve(n))
				default:
					if len(held) > 0 {
						held[len(held)-1].Release()
						held[len(held)-1].Release() // double release is a no-op
						held = held[:len(held)-1]
					}
				}
			}
			for _, g := range held {
				g.Release()
			}
		}(w)
	}
	wg.Wait()
	if got := b.Used(); got != 0 {
		t.Fatalf("Used() = %d after all releases, want 0", got)
	}
	// Forced reservations can push past the limit, but the peak can never
	// exceed the sum of every reservation ever granted.
	if p := b.Peak(); p <= 0 || p > int64(workers)*rounds*4096 {
		t.Fatalf("Peak() = %d, outside (0, %d]", p, int64(workers)*rounds*4096)
	}
}
