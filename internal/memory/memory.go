// Package memory implements the window-wide memory budget for bounded
// execution: one Budget per update window, drawn on by every allocator of
// bulk state — term-local build tables, the per-Compute build cache and the
// window-wide shared registry. Consumers reserve before materializing and
// release when the state dies; a denied reservation is the signal to spill
// (Grace-style partitioned builds, see internal/core/spill.go) rather than
// an error.
//
// A nil *Budget is inert: every method is safe to call, TryReserve always
// grants, and nothing is accounted — production paths carry the hook at zero
// configuration cost, exactly like a nil faults.Injector.
package memory

import "sync"

// Budget is a byte budget with reserve/release accounting. Safe for
// concurrent use: windows evaluate many Comp expressions at once and each
// fans out over terms and morsels.
type Budget struct {
	mu       sync.Mutex
	limit    int64 // <= 0: unlimited (accounting only)
	used     int64
	peak     int64
	denied   int64
	pressure []func(need int64)
}

// NewBudget creates a budget of limit bytes. A non-positive limit means
// unlimited: every reservation is granted, but usage and peak are still
// accounted (how the spill experiment measures an unbounded run's
// footprint).
func NewBudget(limit int64) *Budget {
	return &Budget{limit: limit}
}

// Limit returns the configured byte limit (<= 0: unlimited).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Grant is one outstanding reservation. Release returns the bytes to the
// budget; releasing twice — or releasing a nil grant — is a no-op, so every
// exit path can release unconditionally.
type Grant struct {
	b        *Budget
	n        int64
	released bool
}

// Bytes returns the granted size.
func (g *Grant) Bytes() int64 {
	if g == nil {
		return 0
	}
	return g.n
}

// Release returns the grant's bytes to the budget. Idempotent and nil-safe.
func (g *Grant) Release() {
	if g == nil || g.b == nil {
		return
	}
	g.b.mu.Lock()
	if !g.released {
		g.released = true
		g.b.used -= g.n
	}
	g.b.mu.Unlock()
}

// TryReserve reserves n bytes iff the reservation fits the limit, returning
// the grant and whether it was admitted. On a nil budget the reservation is
// always admitted (and never accounted). A denied reservation counts toward
// Denied and fires the pressure callbacks with the shortfall.
func (b *Budget) TryReserve(n int64) (*Grant, bool) {
	return b.TryReserveUnder(n, 0)
}

// TryReserveUnder is TryReserve against a caller-supplied cap: the
// reservation is admitted iff used+n <= cap (a non-positive cap falls back
// to the budget's limit). Callers reserve under a cap below the limit to
// keep headroom for the forced reservations of spill-partition loads.
func (b *Budget) TryReserveUnder(n, cap int64) (*Grant, bool) {
	if b == nil {
		return nil, true
	}
	if cap <= 0 {
		cap = b.limit
	}
	b.mu.Lock()
	if b.limit > 0 && b.used+n > cap {
		b.denied++
		need := b.used + n - cap
		fns := b.pressure
		b.mu.Unlock()
		for _, fn := range fns {
			fn(need)
		}
		return nil, false
	}
	g := b.grantLocked(n)
	b.mu.Unlock()
	return g, true
}

// Reserve force-reserves n bytes regardless of the limit. Used for state
// that must be resident to make progress — the one spill partition per
// spilled step a probing pass loads — and still tracked, so PeakReservedBytes
// reports what was genuinely held.
func (b *Budget) Reserve(n int64) *Grant {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	g := b.grantLocked(n)
	b.mu.Unlock()
	return g
}

// grantLocked records a successful reservation. Callers hold b.mu.
func (b *Budget) grantLocked(n int64) *Grant {
	b.used += n
	if b.used > b.peak {
		b.peak = b.used
	}
	return &Grant{b: b, n: n}
}

// OnPressure registers a callback fired (outside the budget lock) whenever a
// reservation is denied, with the byte shortfall. Consumers that can shed
// state — e.g. a registry evicting retained entries — register here.
func (b *Budget) OnPressure(fn func(need int64)) {
	if b == nil || fn == nil {
		return
	}
	b.mu.Lock()
	b.pressure = append(b.pressure, fn)
	b.mu.Unlock()
}

// Used returns the bytes currently reserved.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Peak returns the high-water mark of reserved bytes.
func (b *Budget) Peak() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Denied returns how many reservations the limit refused.
func (b *Budget) Denied() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}
