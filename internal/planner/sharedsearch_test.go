package planner

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/strategy"
	"repro/internal/vdag"
)

// dualStageV12 is the two-consumer dual-stage strategy the estimate tests
// use: V1 and V2 both join A and B, computed before any install.
func dualStageV12() strategy.Strategy {
	return strategy.Strategy{
		strategy.Comp{View: "V1", Over: []string{"A", "B"}},
		strategy.Comp{View: "V2", Over: []string{"A", "B"}},
		strategy.Inst{View: "A"}, strategy.Inst{View: "B"},
		strategy.Inst{View: "V1"}, strategy.Inst{View: "V2"},
	}
}

// TestAnalyzeSharingBudgetClamp (regression): savings estimates must not
// count entries the byte budget cannot admit — those are evicted or never
// retained at run time, so reporting their savings overstates the plan.
func TestAnalyzeSharingBudgetClamp(t *testing.T) {
	s := dualStageV12()
	stats := cost.Stats{
		"A": {Size: 100, DeltaPlus: 5, DeltaMinus: 5},
		"B": {Size: 200, DeltaPlus: 10, DeltaMinus: 0},
	}
	unbounded := AnalyzeSharingOpts(s, sharingRefs, SharingOptions{Stats: stats})
	if unbounded.EstimatedSavedTuples != 320 {
		t.Fatalf("unbounded EstimatedSavedTuples = %d, want 320", unbounded.EstimatedSavedTuples)
	}
	// Candidates (nominal width 4, 48 B/cell): state A = 19200 B saving 100,
	// state B = 38400 B saving 200, δA = δB = 1920 B saving 10 each. A
	// 24000-byte budget admits state A and both deltas but not state B.
	clamped := AnalyzeSharingOpts(s, sharingRefs, SharingOptions{Stats: stats, BudgetBytes: 24000})
	if clamped.EstimatedSavedTuples != 120 {
		t.Errorf("clamped EstimatedSavedTuples = %d, want 120 (state B must not fit)", clamped.EstimatedSavedTuples)
	}
	// The refcount schedule is budget-independent: the executor still needs
	// every consumer count to release entries at the right time.
	if len(clamped.Consumers) != len(unbounded.Consumers) {
		t.Errorf("budget changed the consumer schedule: %d vs %d operands", len(clamped.Consumers), len(unbounded.Consumers))
	}
	var admitted, refused int
	var admittedBytes int64
	for _, e := range clamped.Elected {
		if e.Admitted {
			admitted++
			admittedBytes += e.EstBytes
		} else {
			refused++
		}
	}
	if admitted != 3 || refused != 1 {
		t.Errorf("elected admitted/refused = %d/%d, want 3/1: %+v", admitted, refused, clamped.Elected)
	}
	if admittedBytes > 24000 {
		t.Errorf("admitted bytes %d exceed the 24000-byte budget", admittedBytes)
	}
	// A starved budget admits nothing and reports zero savings.
	starved := AnalyzeSharingOpts(s, sharingRefs, SharingOptions{Stats: stats, BudgetBytes: 1})
	if starved.EstimatedSavedTuples != 0 {
		t.Errorf("starved EstimatedSavedTuples = %d, want 0", starved.EstimatedSavedTuples)
	}
}

// threeRefs is the reference function of a VDAG where V1 and V2 each join
// A, B and C.
func threeRefs(view string) []string {
	switch view {
	case "V1", "V2":
		return []string{"A", "B", "C"}
	}
	return nil
}

// TestAnalyzeSharingIntermediates: a B⋈C pair hint over quiescent views is
// elected as a shared intermediate; its admission displaces the per-comp
// reads of B's and C's individual states.
func TestAnalyzeSharingIntermediates(t *testing.T) {
	s := strategy.Strategy{
		strategy.Comp{View: "V1", Over: []string{"A"}},
		strategy.Comp{View: "V2", Over: []string{"A"}},
		strategy.Inst{View: "A"},
		strategy.Inst{View: "V1"}, strategy.Inst{View: "V2"},
	}
	stats := cost.Stats{
		"A": {Size: 50, DeltaPlus: 10, DeltaMinus: 0},
		"B": {Size: 100},
		"C": {Size: 100},
	}
	pairs := func(view string) []PairHint {
		switch view {
		case "V1", "V2":
			return []PairHint{{A: "B", B: "C", Sig: "1=0"}}
		}
		return nil
	}
	plan := AnalyzeSharingOpts(s, threeRefs, SharingOptions{Stats: stats, Pairs: pairs})
	if plan.SharedIntermediates != 1 {
		t.Fatalf("SharedIntermediates = %d, want 1: %+v", plan.SharedIntermediates, plan.Elected)
	}
	ik := InterKey{ViewA: "B", ViewB: "C", Sig: "1=0"}
	if n := plan.InterConsumers[ik]; n != 2 {
		t.Errorf("InterConsumers[%+v] = %d, want 2", ik, n)
	}
	// Both comps read the intermediate; their individual B/C state reads
	// are displaced.
	for _, v := range []string{"V1", "V2"} {
		key := strategy.Comp{View: v, Over: []string{"A"}}.Key()
		if got := plan.InterByComp[key]; len(got) != 1 || got[0] != ik {
			t.Errorf("InterByComp[%s] = %+v, want [%+v]", key, got, ik)
		}
		if ops := plan.ByComp[key]; len(ops) != 1 || !ops[0].Delta {
			t.Errorf("ByComp[%s] = %+v, want only δA", key, ops)
		}
	}
	if _, ok := plan.Consumers[OperandKey{View: "B"}]; ok {
		t.Error("state B still counted as consumed after intermediate admission")
	}
	// Savings: the intermediate saves |B|+|C| = 200 once, δA saves 10.
	if plan.EstimatedSavedTuples != 210 {
		t.Errorf("EstimatedSavedTuples = %d, want 210", plan.EstimatedSavedTuples)
	}

	// A pair with a view in Over is version-bound and must not be elected.
	overlapping := strategy.Strategy{
		strategy.Comp{View: "V1", Over: []string{"A", "B"}},
		strategy.Comp{View: "V2", Over: []string{"A", "B"}},
		strategy.Inst{View: "A"}, strategy.Inst{View: "B"},
		strategy.Inst{View: "V1"}, strategy.Inst{View: "V2"},
	}
	plan = AnalyzeSharingOpts(overlapping, threeRefs, SharingOptions{Stats: stats, Pairs: pairs})
	if plan.SharedIntermediates != 0 {
		t.Errorf("pair with an over view elected: %+v", plan.Elected)
	}
}

// TestPruneSharedNoWorseThanHintBased: Prune's winner is inside
// PruneShared's candidate space, so the joint search can never end up with
// higher sharing-adjusted work than annotating Prune's plan after the fact.
func TestPruneSharedNoWorseThanHintBased(t *testing.T) {
	graphs := map[string]*vdag.Graph{
		"fig3":  fig3(),
		"fig10": fig10(),
		"tpcd":  tpcdGraph(),
	}
	for name, g := range graphs {
		stats := make(cost.Stats)
		for i, v := range g.Views() {
			stats[v] = cost.ViewStat{Size: int64(200 + 37*i), DeltaPlus: int64(5 + i), DeltaMinus: int64(3 + i)}
		}
		refs := uniformRefs(g)
		model := cost.DefaultModel
		pr, err := Prune(g, model, stats, refs)
		if err != nil {
			t.Fatalf("%s: Prune: %v", name, err)
		}
		shared, err := PruneShared(g, model, stats, refs, SharedSearchOptions{})
		if err != nil {
			t.Fatalf("%s: PruneShared: %v", name, err)
		}
		hint := AnalyzeSharing(pr.Strategy, refsFromCounts(refs), stats)
		hintAdjusted := pr.Work - model.CompCoeff*float64(hint.EstimatedSavedTuples)
		if shared.AdjustedWork > hintAdjusted+1e-9 {
			t.Errorf("%s: joint adjusted work %.1f worse than hint-based %.1f", name, shared.AdjustedWork, hintAdjusted)
		}
		if shared.Examined != pr.Examined {
			t.Errorf("%s: examined %d orderings, Prune examined %d", name, shared.Examined, pr.Examined)
		}
		if shared.Strategy == nil {
			t.Fatalf("%s: no strategy", name)
		}
	}
}

// TestPruneSharedElectsSharingFriendlyPlan: on the Figure 10 problem VDAG
// with shrinking views, several orderings tie on raw work but differ in how
// installs version-split V2's state between V4's and V5's computes. Prune
// keeps the first work-minimal ordering it finds; the joint search detects
// that another work-equal ordering shares strictly more and picks it.
func TestPruneSharedElectsSharingFriendlyPlan(t *testing.T) {
	g := fig10()
	stats := make(cost.Stats)
	for _, v := range g.Views() {
		stats[v] = cost.ViewStat{Size: 1000, DeltaPlus: 10, DeltaMinus: 300}
	}
	refs := uniformRefs(g)
	model := cost.DefaultModel
	pr, err := Prune(g, model, stats, refs)
	if err != nil {
		t.Fatal(err)
	}
	hint := AnalyzeSharing(pr.Strategy, refsFromCounts(refs), stats)
	shared, err := PruneShared(g, model, stats, refs, SharedSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Plan.EstimatedSavedTuples <= hint.EstimatedSavedTuples {
		t.Errorf("joint savings %d not above hint-based %d (prune ordering %v, joint dual-stage=%v ordering %v)",
			shared.Plan.EstimatedSavedTuples, hint.EstimatedSavedTuples, pr.Ordering, shared.DualStage, shared.Ordering)
	}
	hintAdjusted := pr.Work - model.CompCoeff*float64(hint.EstimatedSavedTuples)
	if shared.AdjustedWork >= hintAdjusted {
		t.Errorf("joint adjusted work %.1f not strictly below hint-based %.1f", shared.AdjustedWork, hintAdjusted)
	}
	// A starved budget admits nothing, so its adjusted work cannot beat the
	// unbounded search.
	starved, err := PruneShared(g, model, stats, refs, SharedSearchOptions{Sharing: SharingOptions{BudgetBytes: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if starved.Plan.EstimatedSavedTuples != 0 {
		t.Errorf("starved budget still reports %d saved tuples", starved.Plan.EstimatedSavedTuples)
	}
	if starved.AdjustedWork < shared.AdjustedWork {
		t.Errorf("starved adjusted work %.1f below unbounded %.1f", starved.AdjustedWork, shared.AdjustedWork)
	}
}
