package planner

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/strategy"
)

// sharingRefs is the reference function of a toy VDAG: V1..V3 each join the
// base views A and B.
func sharingRefs(view string) []string {
	switch view {
	case "V1", "V2", "V3":
		return []string{"A", "B"}
	}
	return nil
}

// TestAnalyzeSharingDualStage: the dual-stage strategy computes every view
// before any install, so the three Comps read identical version-0 operands —
// the maximal sharing case.
func TestAnalyzeSharingDualStage(t *testing.T) {
	s := strategy.Strategy{
		strategy.Comp{View: "V1", Over: []string{"A", "B"}},
		strategy.Comp{View: "V2", Over: []string{"A", "B"}},
		strategy.Comp{View: "V3", Over: []string{"A", "B"}},
		strategy.Inst{View: "A"}, strategy.Inst{View: "B"},
		strategy.Inst{View: "V1"}, strategy.Inst{View: "V2"}, strategy.Inst{View: "V3"},
	}
	plan := AnalyzeSharing(s, sharingRefs, nil)
	// Each Comp has r=2, so it reads δA, δB and (r>1) the states of A, B:
	// 4 operands, each with 3 consumers.
	if plan.SharedOperands != 4 {
		t.Fatalf("SharedOperands = %d, want 4", plan.SharedOperands)
	}
	for _, op := range []OperandKey{
		{View: "A", Delta: true}, {View: "B", Delta: true},
		{View: "A"}, {View: "B"},
	} {
		if plan.Consumers[op] != 3 {
			t.Errorf("Consumers[%+v] = %d, want 3", op, plan.Consumers[op])
		}
	}
	ops := plan.ByComp[strategy.Comp{View: "V2", Over: []string{"A", "B"}}.Key()]
	if len(ops) != 4 {
		t.Errorf("ByComp[V2] has %d operands, want 4: %+v", len(ops), ops)
	}
}

// TestAnalyzeSharingVersions: installs between reads separate operand
// versions, so Comps straddling an Inst do not share that view's operands.
func TestAnalyzeSharingVersions(t *testing.T) {
	s := strategy.Strategy{
		strategy.Comp{View: "V1", Over: []string{"A"}}, // reads δA v0 (r=1: no state read of A), state B v0
		strategy.Inst{View: "A"},
		strategy.Comp{View: "V2", Over: []string{"A"}}, // reads δA v1, state B v0
		strategy.Inst{View: "A"},
		strategy.Inst{View: "B"},
		strategy.Inst{View: "V1"}, strategy.Inst{View: "V2"},
	}
	plan := AnalyzeSharing(s, sharingRefs, nil)
	if n := plan.Consumers[OperandKey{View: "A", Delta: true, Version: 0}]; n != 1 {
		t.Errorf("δA v0 consumers = %d, want 1", n)
	}
	if n := plan.Consumers[OperandKey{View: "A", Delta: true, Version: 1}]; n != 1 {
		t.Errorf("δA v1 consumers = %d, want 1", n)
	}
	// Both Comps read B's state before Inst(B): the one shared operand.
	if n := plan.Consumers[OperandKey{View: "B", Version: 0}]; n != 2 {
		t.Errorf("state B v0 consumers = %d, want 2", n)
	}
	if plan.SharedOperands != 1 {
		t.Errorf("SharedOperands = %d, want 1", plan.SharedOperands)
	}
}

// TestAnalyzeSharingSingleRef: with r=1 the Comp reads the delta but not
// the state of the over view (the single term has no state-side copy).
func TestAnalyzeSharingSingleRef(t *testing.T) {
	s := strategy.Strategy{
		strategy.Comp{View: "V1", Over: []string{"A"}},
		strategy.Inst{View: "A"}, strategy.Inst{View: "V1"},
	}
	plan := AnalyzeSharing(s, sharingRefs, nil)
	if _, ok := plan.Consumers[OperandKey{View: "A"}]; ok {
		t.Error("r=1 Comp must not read the over view's state")
	}
	if n := plan.Consumers[OperandKey{View: "B"}]; n != 1 {
		t.Errorf("state B consumers = %d, want 1", n)
	}
}

// TestAnalyzeSharingEstimate: the estimated savings price each shared
// operand at its statistics size times (consumers − 1).
func TestAnalyzeSharingEstimate(t *testing.T) {
	s := strategy.Strategy{
		strategy.Comp{View: "V1", Over: []string{"A", "B"}},
		strategy.Comp{View: "V2", Over: []string{"A", "B"}},
		strategy.Inst{View: "A"}, strategy.Inst{View: "B"},
		strategy.Inst{View: "V1"}, strategy.Inst{View: "V2"},
	}
	stats := cost.Stats{
		"A": {Size: 100, DeltaPlus: 5, DeltaMinus: 5},
		"B": {Size: 200, DeltaPlus: 10, DeltaMinus: 0},
	}
	plan := AnalyzeSharing(s, sharingRefs, stats)
	// Shared: δA (10), δB (10), state A (100), state B (200); one extra
	// consumer each → 320 tuples saved.
	if plan.EstimatedSavedTuples != 320 {
		t.Errorf("EstimatedSavedTuples = %d, want 320", plan.EstimatedSavedTuples)
	}
}
