package planner

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/strategy"
	"repro/internal/vdag"
)

// This file is the sharing-aware strategy search (ROADMAP: "Plan sharing
// globally"). Prune picks the strategy with the least *linear* work and
// only afterwards annotates it with sharing hints — so it never prefers a
// plan because it shares well. PruneShared instead costs every candidate
// with sharing-adjusted work: the linear work minus the operand scans a
// budget-admitted sharing plan (operands and join intermediates alike)
// would elide, priced by the model's per-tuple compute coefficient. On
// graphs where the work-optimal ordering interleaves installs between
// computes — version-splitting every operand so nothing is reusable — the
// joint search can elect a slightly costlier ordering (typically the
// dual-stage compute-then-install shape) whose sharing more than pays for
// the difference.

// SharedSearchOptions parameterize PruneShared.
type SharedSearchOptions struct {
	// Refs supplies each derived view's FROM-clause reference list
	// (exec.RefsOf). When nil it is expanded from the RefCounts.
	Refs func(view string) []string
	// Sharing parameterizes each candidate's sharing analysis (budget,
	// widths, pair hints, tuner). Sharing.Stats is overwritten with the
	// search's stats.
	Sharing SharingOptions
}

// SharedResult reports the outcome of a PruneShared search.
type SharedResult struct {
	Strategy strategy.Strategy
	// Ordering is the view ordering whose partition the winner belongs to;
	// nil when the winner is the extra dual-stage candidate.
	Ordering []string
	// Work is the winner's unadjusted linear work; AdjustedWork subtracts
	// the estimated scans its sharing plan saves. Candidates are compared
	// by AdjustedWork.
	Work, AdjustedWork float64
	// Plan is the winner's sharing plan, ready to convert into executor
	// hints.
	Plan SharingPlan
	// Examined and Feasible count the ordering candidates as in Prune;
	// DualStage reports that the extra dual-stage candidate won.
	Examined, Feasible int
	DualStage          bool
}

// refsFromCounts expands RefCounts into a reference-list function:
// each child repeated by its reference count, in sorted child order.
func refsFromCounts(refs cost.RefCounts) func(view string) []string {
	return func(view string) []string {
		m := refs[view]
		names := make([]string, 0, len(m))
		for c := range m {
			names = append(names, c)
		}
		sort.Strings(names)
		var out []string
		for _, c := range names {
			for i := 0; i < m[c]; i++ {
				out = append(out, c)
			}
		}
		return out
	}
}

// PruneShared (sharing-aware Algorithm 6.1) searches the same candidate
// space as Prune — one representative strongly consistent strategy per
// feasible view ordering — plus the dual-stage strategy (all computes, then
// all installs; maximally sharing-friendly but not always work-minimal),
// and returns the candidate with the least sharing-adjusted work together
// with its sharing plan.
func PruneShared(g *vdag.Graph, model cost.Model, stats cost.Stats, refs cost.RefCounts, opts SharedSearchOptions) (SharedResult, error) {
	res := SharedResult{Work: -1, AdjustedWork: -1}
	refsFn := opts.Refs
	if refsFn == nil {
		refsFn = refsFromCounts(refs)
	}
	shOpts := opts.Sharing
	shOpts.Stats = stats

	compCoeff := model.CompCoeff
	if model == (cost.Model{}) {
		compCoeff = cost.DefaultModel.CompCoeff
	}

	consider := func(s strategy.Strategy, ord []string, dual bool) error {
		w, err := cost.Work(model, stats, refs, s)
		if err != nil {
			return err
		}
		plan := AnalyzeSharingOpts(s, refsFn, shOpts)
		adj := w - compCoeff*float64(plan.EstimatedSavedTuples)
		if res.AdjustedWork < 0 || adj < res.AdjustedWork {
			res.Work = w
			res.AdjustedWork = adj
			res.Strategy = s
			res.Plan = plan
			res.DualStage = dual
			if ord != nil {
				res.Ordering = append([]string(nil), ord...)
			} else {
				res.Ordering = nil
			}
		}
		return nil
	}

	views := orderableViews(g)
	for _, ord := range strategy.Permutations(views) {
		res.Examined++
		seg := ConstructSEG(g, ord)
		s, err := seg.TopoSort()
		if err != nil {
			continue // cyclic SEG: no strongly consistent strategy exists
		}
		res.Feasible++
		if err := consider(s, ord, false); err != nil {
			return res, err
		}
	}
	// The dual-stage strategy computes every derived view against fully
	// quiescent children before any install: no operand is version-split,
	// so it is the sharing upper bound. It is weakly (not strongly)
	// consistent and therefore outside Prune's candidate space; evaluate it
	// last so an ordering candidate wins work-ties.
	if err := consider(strategy.DualStageVDAG(g), nil, true); err != nil {
		return res, err
	}
	if res.Strategy == nil {
		return res, fmt.Errorf("planner: no feasible ordering found (impossible for a well-formed VDAG)")
	}
	return res, nil
}
