package planner

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/strategy"
	"repro/internal/vdag"
)

func fig3() *vdag.Graph {
	return vdag.MustBuild(
		[2]interface{}{"V1", nil},
		[2]interface{}{"V2", nil},
		[2]interface{}{"V3", nil},
		[2]interface{}{"V4", []string{"V2", "V3"}},
		[2]interface{}{"V5", []string{"V4", "V1"}},
	)
}

// fig10 is the "Problem VDAG" of Figure 10: V4 over {V2,V3}, V5 over
// {V1,V2,V4} (V2 feeds both V4 and V5).
func fig10() *vdag.Graph {
	return vdag.MustBuild(
		[2]interface{}{"V1", nil},
		[2]interface{}{"V2", nil},
		[2]interface{}{"V3", nil},
		[2]interface{}{"V4", []string{"V2", "V3"}},
		[2]interface{}{"V5", []string{"V1", "V2", "V4"}},
	)
}

func tpcdGraph() *vdag.Graph {
	return vdag.MustBuild(
		[2]interface{}{"O", nil},
		[2]interface{}{"L", nil},
		[2]interface{}{"C", nil},
		[2]interface{}{"S", nil},
		[2]interface{}{"N", nil},
		[2]interface{}{"R", nil},
		[2]interface{}{"Q3", []string{"C", "O", "L"}},
		[2]interface{}{"Q5", []string{"C", "O", "L", "S", "N", "R"}},
		[2]interface{}{"Q10", []string{"C", "O", "L", "N"}},
	)
}

func uniformRefs(g *vdag.Graph) cost.RefCounts {
	return cost.UniformRefs(g.Views(), g.Children)
}

// randStats builds random statistics for every view of g.
func randStats(g *vdag.Graph, rng *rand.Rand) cost.Stats {
	stats := make(cost.Stats)
	for _, v := range g.Views() {
		size := rng.Int63n(500) + 50
		minus := rng.Int63n(size / 2)
		plus := rng.Int63n(size / 2)
		stats[v] = cost.ViewStat{Size: size, DeltaPlus: plus, DeltaMinus: minus}
	}
	return stats
}

func TestDesiredOrdering(t *testing.T) {
	stats := cost.Stats{
		"A": {Size: 10, DeltaPlus: 5},                // +5
		"B": {Size: 10, DeltaMinus: 3},               // −3
		"C": {Size: 10, DeltaPlus: 1, DeltaMinus: 1}, // 0
		"D": {Size: 10, DeltaPlus: 2, DeltaMinus: 2}, // 0 (tie with C)
	}
	ord, err := DesiredOrdering([]string{"A", "D", "C", "B"}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ord, []string{"B", "C", "D", "A"}) {
		t.Errorf("ordering = %v", ord)
	}
	if _, err := DesiredOrdering([]string{"Z"}, stats); err == nil {
		t.Errorf("missing stats accepted")
	}
}

func TestMinWorkSingleShape(t *testing.T) {
	stats := cost.Stats{
		"L": {Size: 600, DeltaMinus: 60},
		"O": {Size: 150, DeltaMinus: 15},
		"C": {Size: 15, DeltaMinus: 2},
	}
	s, err := MinWorkSingle("Q3", []string{"C", "O", "L"}, stats)
	if err != nil {
		t.Fatal(err)
	}
	// Largest deletion first: L, O, C.
	want := strategy.OneWayView("Q3", []string{"L", "O", "C"})
	if s.String() != want.String() {
		t.Errorf("MinWorkSingle = %s, want %s", s, want)
	}
	if _, err := MinWorkSingle("Q3", []string{"missing"}, stats); err == nil {
		t.Errorf("missing stats accepted")
	}
}

// TestMinWorkSingleOptimal is the Theorem 4.1/4.2 check: the MinWorkSingle
// strategy is the cheapest of all (2^n-partition) view strategies under the
// linear metric, for random statistics.
func TestMinWorkSingleOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	children := []string{"A", "B", "C", "D"}
	g := vdag.MustBuild(
		[2]interface{}{"A", nil}, [2]interface{}{"B", nil},
		[2]interface{}{"C", nil}, [2]interface{}{"D", nil},
		[2]interface{}{"V", []string{"A", "B", "C", "D"}},
	)
	refs := uniformRefs(g)
	for trial := 0; trial < 50; trial++ {
		stats := randStats(g, rng)
		mws, err := MinWorkSingle("V", children, stats)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cost.Work(cost.DefaultModel, stats, refs, mws)
		if err != nil {
			t.Fatal(err)
		}
		best, bestW, err := BestViewStrategy(g, "V", cost.DefaultModel, stats, refs)
		if err != nil {
			t.Fatal(err)
		}
		if got > bestW+1e-6 {
			t.Fatalf("trial %d: MinWorkSingle cost %v > optimal %v (%s vs %s)", trial, got, bestW, mws, best)
		}
	}
}

// TestTheorem41 verifies that the best 1-way strategy is optimal over all
// view strategies for random statistics.
func TestTheorem41(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := vdag.MustBuild(
		[2]interface{}{"A", nil}, [2]interface{}{"B", nil}, [2]interface{}{"C", nil},
		[2]interface{}{"V", []string{"A", "B", "C"}},
	)
	refs := uniformRefs(g)
	for trial := 0; trial < 50; trial++ {
		stats := randStats(g, rng)
		best1Way := -1.0
		for _, s := range strategy.EnumerateOneWayViewStrategies("V", []string{"A", "B", "C"}) {
			w, err := cost.Work(cost.DefaultModel, stats, refs, s)
			if err != nil {
				t.Fatal(err)
			}
			if best1Way < 0 || w < best1Way {
				best1Way = w
			}
		}
		_, bestAll, err := BestViewStrategy(g, "V", cost.DefaultModel, stats, refs)
		if err != nil {
			t.Fatal(err)
		}
		if best1Way > bestAll+1e-6 {
			t.Fatalf("trial %d: best 1-way %v worse than best overall %v", trial, best1Way, bestAll)
		}
	}
}

func TestConstructEGExample52(t *testing.T) {
	g := fig3()
	ordering := []string{"V4", "V2", "V1", "V3", "V5"}
	eg := ConstructEG(g, ordering)
	// Figure 7's edges (spot checks).
	comp42 := strategy.Comp{View: "V4", Over: []string{"V2"}}
	comp43 := strategy.Comp{View: "V4", Over: []string{"V3"}}
	comp54 := strategy.Comp{View: "V5", Over: []string{"V4"}}
	if !eg.HasDep(comp43, comp42) {
		t.Errorf("missing ordering edge Comp(V4,{V3}) after Comp(V4,{V2})")
	}
	if !eg.HasDep(comp54, comp42) || !eg.HasDep(comp54, comp43) {
		t.Errorf("missing C8 edges into Comp(V5,{V4})")
	}
	if !eg.HasDep(strategy.Inst{View: "V2"}, comp42) {
		t.Errorf("missing C3 edge")
	}
	if !eg.HasDep(strategy.Inst{View: "V4"}, comp42) {
		t.Errorf("missing C5 edge")
	}
	if !eg.HasDep(comp43, strategy.Inst{View: "V2"}) {
		t.Errorf("missing C4 edge")
	}
	if !eg.IsAcyclic() {
		t.Fatalf("tree VDAG EG must be acyclic")
	}
	s, err := eg.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if err := strategy.ValidateVDAGStrategy(g, s); err != nil {
		t.Fatalf("topo sort invalid: %v (%s)", err, s)
	}
	if !strategy.IsConsistent(g, s, ordering) {
		t.Errorf("topo sort not consistent with ordering: %s", s)
	}
	if dot := eg.DotString(); !strings.Contains(dot, "digraph EG") {
		t.Errorf("DotString malformed")
	}
	if eg.EdgeCount() == 0 || len(eg.Nodes()) != 9 {
		t.Errorf("graph shape wrong: %d nodes, %d edges", len(eg.Nodes()), eg.EdgeCount())
	}
}

// TestFig10Cycle reproduces the paper's cyclic example: the Figure 10 VDAG
// with ordering ⟨V4, V2, V1, V3, V5⟩ yields a cyclic expression graph.
func TestFig10Cycle(t *testing.T) {
	g := fig10()
	eg := ConstructEG(g, []string{"V4", "V2", "V1", "V3", "V5"})
	if eg.IsAcyclic() {
		t.Fatalf("Figure 10 EG should be cyclic for ordering ⟨V4,V2,V1,V3,V5⟩")
	}
	if _, err := eg.TopoSort(); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("TopoSort should report the cycle, got %v", err)
	}
	// ModifyOrdering must repair it (Theorem 5.5).
	mod := ModifyOrdering(g, []string{"V4", "V2", "V1", "V3", "V5"})
	if !reflect.DeepEqual(mod, []string{"V2", "V1", "V3", "V4", "V5"}) {
		t.Errorf("ModifyOrdering = %v", mod)
	}
	if !ConstructEG(g, mod).IsAcyclic() {
		t.Errorf("modified ordering still cyclic")
	}
}

// TestLemma51TreeAcyclic: every ordering of a tree VDAG yields an acyclic EG.
func TestLemma51TreeAcyclic(t *testing.T) {
	g := fig3()
	for _, ord := range strategy.Permutations([]string{"V1", "V2", "V3", "V4", "V5"}) {
		if !ConstructEG(g, ord).IsAcyclic() {
			t.Fatalf("tree VDAG cyclic for ordering %v", ord)
		}
	}
}

// TestLemma52UniformAcyclic: every ordering of a uniform VDAG yields an
// acyclic EG. (Sampled orderings: 9! is too many to sweep.)
func TestLemma52UniformAcyclic(t *testing.T) {
	g := tpcdGraph()
	rng := rand.New(rand.NewSource(3))
	views := g.Views()
	for trial := 0; trial < 200; trial++ {
		ord := append([]string(nil), views...)
		rng.Shuffle(len(ord), func(i, j int) { ord[i], ord[j] = ord[j], ord[i] })
		if !ConstructEG(g, ord).IsAcyclic() {
			t.Fatalf("uniform VDAG cyclic for ordering %v", ord)
		}
	}
}

// TestTheorem55ModifiedAlwaysAcyclic: for random DAGs and random orderings,
// the modified ordering always yields an acyclic EG.
func TestTheorem55ModifiedAlwaysAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		g := randomDAG(rng, 3+rng.Intn(5), 3)
		views := g.Views()
		ord := append([]string(nil), views...)
		rng.Shuffle(len(ord), func(i, j int) { ord[i], ord[j] = ord[j], ord[i] })
		mod := ModifyOrdering(g, ord)
		if !ConstructEG(g, mod).IsAcyclic() {
			t.Fatalf("trial %d: modified ordering cyclic for %s, ordering %v", trial, g, mod)
		}
	}
}

// randomDAG builds a random VDAG with nBase base views and up to nDerived
// derived views over random subsets.
func randomDAG(rng *rand.Rand, nBase, nDerived int) *vdag.Graph {
	b := vdag.NewBuilder()
	var names []string
	for i := 0; i < nBase; i++ {
		n := "B" + string(rune('0'+i))
		if err := b.Add(n, nil); err != nil {
			panic(err)
		}
		names = append(names, n)
	}
	for i := 0; i < nDerived; i++ {
		var over []string
		for _, c := range names {
			if rng.Intn(2) == 0 {
				over = append(over, c)
			}
		}
		if len(over) == 0 {
			over = []string{names[rng.Intn(len(names))]}
		}
		n := "D" + string(rune('0'+i))
		if err := b.Add(n, over); err != nil {
			panic(err)
		}
		names = append(names, n)
	}
	return b.Build()
}

// TestMinWorkOptimalOnTreeAndUniform certifies MinWork against the
// brute-force enumeration of all correct VDAG strategies (Theorem 5.4).
func TestMinWorkOptimalOnTreeAndUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	graphs := []*vdag.Graph{
		fig3(), // tree
		vdag.MustBuild( // small uniform, shared children
			[2]interface{}{"A", nil}, [2]interface{}{"B", nil}, [2]interface{}{"C", nil},
			[2]interface{}{"X", []string{"A", "B"}},
			[2]interface{}{"Y", []string{"B", "C"}},
		),
	}
	for gi, g := range graphs {
		refs := uniformRefs(g)
		all := strategy.EnumerateVDAGStrategies(g)
		if len(all) == 0 {
			t.Fatalf("graph %d: no strategies", gi)
		}
		for trial := 0; trial < 10; trial++ {
			stats := randStats(g, rng)
			res, err := MinWork(g, stats)
			if err != nil {
				t.Fatal(err)
			}
			if res.Modified {
				t.Fatalf("graph %d: MinWork should not need ModifyOrdering", gi)
			}
			if err := strategy.ValidateVDAGStrategy(g, res.Strategy); err != nil {
				t.Fatalf("graph %d: invalid strategy: %v", gi, err)
			}
			got, err := cost.Work(cost.DefaultModel, stats, refs, res.Strategy)
			if err != nil {
				t.Fatal(err)
			}
			best := -1.0
			var bestS strategy.Strategy
			for _, s := range all {
				w, err := cost.Work(cost.DefaultModel, stats, refs, s)
				if err != nil {
					t.Fatal(err)
				}
				if best < 0 || w < best {
					best, bestS = w, s
				}
			}
			if got > best+1e-6 {
				t.Fatalf("graph %d trial %d: MinWork %v > optimal %v\nminwork: %s\noptimal: %s",
					gi, trial, got, best, res.Strategy, bestS)
			}
		}
	}
}

// TestMinWorkAlwaysCorrect: on random DAGs (including non-tree, non-uniform)
// MinWork always yields a correct strategy.
func TestMinWorkAlwaysCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		g := randomDAG(rng, 2+rng.Intn(4), 1+rng.Intn(3))
		stats := randStats(g, rng)
		res, err := MinWork(g, stats)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, g, err)
		}
		if err := strategy.ValidateVDAGStrategy(g, res.Strategy); err != nil {
			t.Fatalf("trial %d (%s): %v\n%s", trial, g, err, res.Strategy)
		}
		if !res.Strategy.IsOneWay() {
			t.Fatalf("MinWork strategy not 1-way: %s", res.Strategy)
		}
	}
}

// TestPruneBestOneWay certifies Prune against brute force over all 1-way
// VDAG strategies on the Figure 10 problem VDAG.
func TestPruneBestOneWay(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := fig10()
	refs := uniformRefs(g)
	all := strategy.EnumerateVDAGStrategies(g)
	var oneWay []strategy.Strategy
	for _, s := range all {
		if s.IsOneWay() {
			oneWay = append(oneWay, s)
		}
	}
	if len(oneWay) == 0 {
		t.Fatal("no 1-way strategies")
	}
	for trial := 0; trial < 5; trial++ {
		stats := randStats(g, rng)
		res, err := Prune(g, cost.DefaultModel, stats, refs)
		if err != nil {
			t.Fatal(err)
		}
		if err := strategy.ValidateVDAGStrategy(g, res.Strategy); err != nil {
			t.Fatalf("Prune strategy invalid: %v", err)
		}
		best := -1.0
		for _, s := range oneWay {
			w, err := cost.Work(cost.DefaultModel, stats, refs, s)
			if err != nil {
				t.Fatal(err)
			}
			if best < 0 || w < best {
				best = w
			}
		}
		if res.Work > best+1e-6 {
			t.Fatalf("trial %d: Prune %v > best 1-way %v", trial, res.Work, best)
		}
		if res.Examined != 24 { // 4 views with parents → 4! orderings
			t.Errorf("examined %d orderings, want 24", res.Examined)
		}
		if res.Feasible == 0 || res.Feasible > res.Examined {
			t.Errorf("feasible = %d", res.Feasible)
		}
	}
}

// TestTheorem61 checks that all 1-way VDAG strategies strongly consistent
// with the same ordering incur the same work.
func TestTheorem61(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := fig3()
	refs := uniformRefs(g)
	var oneWay []strategy.Strategy
	for _, s := range strategy.EnumerateVDAGStrategies(g) {
		if s.IsOneWay() {
			oneWay = append(oneWay, s)
		}
	}
	for trial := 0; trial < 5; trial++ {
		stats := randStats(g, rng)
		// Partition by install order; all members of a partition must cost
		// the same.
		costs := make(map[string]float64)
		for _, s := range oneWay {
			key := strings.Join(s.InstOrder(), ",")
			w, err := cost.Work(cost.DefaultModel, stats, refs, s)
			if err != nil {
				t.Fatal(err)
			}
			if prev, ok := costs[key]; ok {
				if prev != w {
					t.Fatalf("trial %d: same install order %s, different work %v vs %v", trial, key, prev, w)
				}
			} else {
				costs[key] = w
			}
		}
	}
}

// TestPruneAtLeastAsGoodAsMinWork: Prune searches a superset of what
// MinWork considers, so it can never be worse under the metric.
func TestPruneAtLeastAsGoodAsMinWork(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(rng, 2+rng.Intn(3), 1+rng.Intn(2))
		refs := uniformRefs(g)
		stats := randStats(g, rng)
		mw, err := MinWork(g, stats)
		if err != nil {
			t.Fatal(err)
		}
		mwWork, err := cost.Work(cost.DefaultModel, stats, refs, mw.Strategy)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := Prune(g, cost.DefaultModel, stats, refs)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Work > mwWork+1e-6 {
			t.Fatalf("trial %d (%s): Prune %v worse than MinWork %v", trial, g, pr.Work, mwWork)
		}
	}
}
