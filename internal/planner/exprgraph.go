// Package planner implements the paper's three algorithms:
//
//   - MinWorkSingle (Algorithm 4.1): the optimal view strategy for a single
//     view under the linear work metric, in O(n log n).
//   - MinWork (Algorithm 5.1): expression-graph based VDAG strategies,
//     provably optimal whenever the expression graph for the desired view
//     ordering is acyclic — in particular for all tree VDAGs (Lemma 5.1)
//     and all uniform VDAGs (Lemma 5.2) — and falling back to
//     ModifyOrdering (Algorithm 5.2, always acyclic by Theorem 5.5).
//   - Prune (Algorithm 6.1): search over view orderings using strong
//     expression graphs, returning the cheapest 1-way VDAG strategy.
package planner

import (
	"fmt"
	"sort"

	"repro/internal/strategy"
	"repro/internal/vdag"
)

// EdgeLabel identifies which correctness condition (or the view ordering)
// demands a dependency edge in an expression graph.
type EdgeLabel string

// Edge labels, following the proof notation of Appendix A.
const (
	LabelOrder EdgeLabel = "V" // view-ordering dependency between Comps
	LabelC3    EdgeLabel = "C3"
	LabelC4    EdgeLabel = "C4"
	LabelC5    EdgeLabel = "C5"
	LabelC8    EdgeLabel = "C8"
	LabelSEG   EdgeLabel = "SEG" // Inst→Inst edges of strong expression graphs
)

// ExprGraph is the expression graph EG(G, V⃗) of Section 5.2: nodes are the
// 1-way expressions of the VDAG; an edge X→Y (stored as deps[X] containing
// Y) means X must come after Y in any strategy the graph admits.
type ExprGraph struct {
	nodes []strategy.Expr
	index map[string]int // expression key -> node id
	deps  [][]int        // deps[i]: nodes that must precede node i
	label map[[2]int]EdgeLabel
	prio  []int64 // deterministic topological-sort priority per node
}

// nodeID returns the id for an expression key.
func (eg *ExprGraph) nodeID(e strategy.Expr) int { return eg.index[e.Key()] }

// addDep records that a must come after b.
func (eg *ExprGraph) addDep(a, b strategy.Expr, l EdgeLabel) {
	ai, bi := eg.nodeID(a), eg.nodeID(b)
	key := [2]int{ai, bi}
	if _, dup := eg.label[key]; dup {
		return
	}
	eg.label[key] = l
	eg.deps[ai] = append(eg.deps[ai], bi)
}

// Nodes returns the 1-way expressions of the graph.
func (eg *ExprGraph) Nodes() []strategy.Expr { return append([]strategy.Expr(nil), eg.nodes...) }

// EdgeCount returns the number of dependency edges.
func (eg *ExprGraph) EdgeCount() int { return len(eg.label) }

// HasDep reports whether expression a must come after expression b.
func (eg *ExprGraph) HasDep(a, b strategy.Expr) bool {
	_, ok := eg.label[[2]int{eg.nodeID(a), eg.nodeID(b)}]
	return ok
}

// constructOpts selects between ConstructEG and ConstructSEG.
type constructOpts struct {
	// strong adds the Inst→Inst edges of ConstructSEG, which force the
	// produced strategy to be *strongly* consistent with the ordering.
	strong bool
}

// construct builds the expression graph of g with respect to ordering,
// following ConstructEG (Appendix B). ordering must contain every view that
// some Comp propagates (i.e., every view with a parent); views missing from
// the ordering are unconstrained by ordering edges.
func construct(g *vdag.Graph, ordering []string, opts constructOpts) *ExprGraph {
	eg := &ExprGraph{index: make(map[string]int), label: make(map[[2]int]EdgeLabel)}
	pos := make(map[string]int, len(ordering))
	for i, v := range ordering {
		pos[v] = i
	}
	orderPos := func(v string) int64 {
		if p, ok := pos[v]; ok {
			return int64(p)
		}
		return int64(len(ordering)) // unordered views last
	}
	add := func(e strategy.Expr, prio int64) {
		k := e.Key()
		if _, ok := eg.index[k]; ok {
			return
		}
		eg.index[k] = len(eg.nodes)
		eg.nodes = append(eg.nodes, e)
		eg.deps = append(eg.deps, nil)
		eg.prio = append(eg.prio, prio)
	}
	// Nodes: Inst(V) for every view; Comp(Vj,{Vi}) for every VDAG edge. The
	// priority drives the deterministic topological sort: expressions that
	// touch earlier-ordered views come first, a Comp just before the Inst
	// of the view it propagates.
	for _, v := range g.Views() {
		add(strategy.Inst{View: v}, orderPos(v)*2+1)
	}
	for _, v := range g.Views() {
		for _, c := range g.Children(v) {
			add(strategy.Comp{View: v, Over: []string{c}}, orderPos(c)*2)
		}
	}
	for _, v := range g.Views() {
		children := g.Children(v)
		// Ordering edges between this view's Comps (line 3–5 of
		// ConstructEG) and the induced C4 edges (lines 8–9).
		for _, ci := range children {
			for _, cj := range children {
				if ci == cj {
					continue
				}
				pi, iok := pos[ci]
				pj, jok := pos[cj]
				if !iok || !jok || pi >= pj {
					continue
				}
				later := strategy.Comp{View: v, Over: []string{cj}}
				eg.addDep(later, strategy.Comp{View: v, Over: []string{ci}}, LabelOrder)
				eg.addDep(later, strategy.Inst{View: ci}, LabelC4)
			}
		}
		for _, c := range children {
			comp := strategy.Comp{View: v, Over: []string{c}}
			// C3 (lines 6–7): Inst(child) after the Comp that reads δchild.
			eg.addDep(strategy.Inst{View: c}, comp, LabelC3)
			// C5 (lines 10–11): Inst(V) after every Comp of V.
			eg.addDep(strategy.Inst{View: v}, comp, LabelC5)
			// C8 (lines 12–13): Comp(V,{c}) after every Comp(c,{·}).
			for _, gc := range g.Children(c) {
				eg.addDep(comp, strategy.Comp{View: c, Over: []string{gc}}, LabelC8)
			}
		}
	}
	if opts.strong {
		// ConstructSEG: Inst(Vj) after Inst(Vi) whenever Vi precedes Vj in
		// the ordering, even without a shared parent.
		for i := 0; i < len(ordering); i++ {
			for j := i + 1; j < len(ordering); j++ {
				eg.addDep(strategy.Inst{View: ordering[j]}, strategy.Inst{View: ordering[i]}, LabelSEG)
			}
		}
	}
	return eg
}

// ConstructEG builds the expression graph EG(G, ordering) of Appendix B.
func ConstructEG(g *vdag.Graph, ordering []string) *ExprGraph {
	return construct(g, ordering, constructOpts{})
}

// ConstructSEG builds the strong expression graph used by Prune: the EG
// plus Inst→Inst edges enforcing the install order of the ordering.
func ConstructSEG(g *vdag.Graph, ordering []string) *ExprGraph {
	return construct(g, ordering, constructOpts{strong: true})
}

// IsAcyclic reports whether the graph admits a topological order.
func (eg *ExprGraph) IsAcyclic() bool {
	_, err := eg.TopoSort()
	return err == nil
}

// TopoSort returns a dependency-respecting order of the expressions, or an
// error naming a cycle participant if none exists. The sort is
// deterministic: among ready nodes, the one with the smallest (priority,
// node id) runs first, which yields the natural strategy shape
// ⟨…; Comp(·,{Vi}); Inst(Vi); …⟩ in ordering order.
func (eg *ExprGraph) TopoSort() (strategy.Strategy, error) {
	n := len(eg.nodes)
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, ds := range eg.deps {
		indeg[i] = len(ds)
		for _, d := range ds {
			dependents[d] = append(dependents[d], i)
		}
	}
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	less := func(a, b int) bool {
		if eg.prio[a] != eg.prio[b] {
			return eg.prio[a] < eg.prio[b]
		}
		return a < b
	}
	out := make(strategy.Strategy, 0, n)
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			if less(ready[i], ready[best]) {
				best = i
			}
		}
		node := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		out = append(out, eg.nodes[node])
		for _, dep := range dependents[node] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if len(out) != n {
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("planner: expression graph is cyclic (e.g. around %s)", eg.nodes[i])
			}
		}
	}
	return out, nil
}

// DotString renders the graph in Graphviz dot format for debugging; edges
// are drawn from each expression to the expressions that must precede it,
// labeled with the condition that demands them.
func (eg *ExprGraph) DotString() string {
	s := "digraph EG {\n"
	for i, e := range eg.nodes {
		s += fmt.Sprintf("  n%d [label=%q];\n", i, e.String())
	}
	keys := make([][2]int, 0, len(eg.label))
	for k := range eg.label {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		s += fmt.Sprintf("  n%d -> n%d [label=%q];\n", k[0], k[1], string(eg.label[k]))
	}
	return s + "}\n"
}
