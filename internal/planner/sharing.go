package planner

import (
	"repro/internal/cost"
	"repro/internal/strategy"
)

// This file is the planner side of window-wide shared computation: a static
// walk of the strategy that identifies the operands (a view's pending delta
// or materialized state, at a specific point of the install sequence) that
// more than one Comp expression reads. The executor's shared-result
// registry (internal/core) is seeded with this analysis: operands with
// several consumers are materialized once and reused; operands with one
// consumer are never retained.
//
// The walk mirrors the linear work metric's operand model (cost.CompWork):
// for Comp(V, over) with r delta-bound references, a reference in over
// contributes its delta (in every term) and — when r > 1 — its pre-state
// (in the terms where another reference carries the delta); a reference
// outside over contributes only its state. Which *version* of an operand a
// Comp reads is determined by the installs preceding it: Inst(X) both
// consumes δX and changes X's state, so the walk advances X's version
// counter at each Inst(X). The scheduler's conflict ordering preserves
// exactly these read-after-install relations in every execution mode, so
// the hints remain valid under staged, DAG and term-parallel execution.

// OperandKey identifies one shareable operand in a strategy: a view's delta
// or state, at the given install version (installs of the view executed
// before the read).
type OperandKey struct {
	View    string
	Delta   bool
	Version int
}

// SharingPlan is the result of AnalyzeSharing.
type SharingPlan struct {
	// Consumers maps each operand to the number of Comp expressions
	// reading it. Operands read once are included (the executor's gate
	// needs the complete refcount schedule).
	Consumers map[OperandKey]int
	// ByComp maps each Comp's canonical key to the operands its
	// maintenance terms read, in reference order.
	ByComp map[string][]OperandKey
	// SharedOperands counts operands with at least two consumers.
	SharedOperands int
	// EstimatedSavedTuples is the planning-statistics estimate of the
	// operand tuples sharing saves: each operand's size times its
	// consumer count beyond the first. Zero when no stats are supplied.
	EstimatedSavedTuples int64
}

// AnalyzeSharing walks a strategy and returns its cross-view sharing
// structure. refs supplies each derived view's FROM-clause reference list
// (one entry per reference; repeat for self-joins) — exec.RefsOf adapts a
// warehouse. stats, when non-nil, sizes the estimated savings; planning
// proceeds without it.
func AnalyzeSharing(s strategy.Strategy, refs func(view string) []string, stats cost.Stats) SharingPlan {
	plan := SharingPlan{
		Consumers: make(map[OperandKey]int),
		ByComp:    make(map[string][]OperandKey),
	}
	version := make(map[string]int)
	for _, e := range s {
		switch x := e.(type) {
		case strategy.Comp:
			deltas, states := x.Reads(refs(x.View))
			var ops []OperandKey
			for _, v := range deltas {
				ops = append(ops, OperandKey{View: v, Delta: true, Version: version[v]})
			}
			for _, v := range states {
				ops = append(ops, OperandKey{View: v, Version: version[v]})
			}
			// Self-joins repeat an operand inside one Comp; consumers and
			// releases are per Comp (intra-Compute reuse is the build
			// cache's job), so deduplicate before counting.
			key := x.Key()
			seen := make(map[OperandKey]bool, len(ops))
			for _, op := range ops {
				if !seen[op] {
					seen[op] = true
					plan.Consumers[op]++
					plan.ByComp[key] = append(plan.ByComp[key], op)
				}
			}
		case strategy.Inst:
			version[x.View]++
		}
	}
	for op, n := range plan.Consumers {
		if n < 2 {
			continue
		}
		plan.SharedOperands++
		if stats != nil {
			st, ok := stats[op.View]
			if !ok {
				continue
			}
			size := st.Size
			if op.Delta {
				size = st.DeltaSize()
			} else if op.Version > 0 {
				size = st.SizeAfter()
			}
			plan.EstimatedSavedTuples += int64(n-1) * size
		}
	}
	return plan
}
