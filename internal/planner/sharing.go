package planner

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/strategy"
)

// This file is the planner side of window-wide shared computation: a static
// walk of the strategy that identifies the operands (a view's pending delta
// or materialized state, at a specific point of the install sequence) that
// more than one Comp expression reads. The executor's shared-result
// registry (internal/core) is seeded with this analysis: operands with
// several consumers are materialized once and reused; operands with one
// consumer are never retained.
//
// The walk mirrors the linear work metric's operand model (cost.CompWork):
// for Comp(V, over) with r delta-bound references, a reference in over
// contributes its delta (in every term) and — when r > 1 — its pre-state
// (in the terms where another reference carries the delta); a reference
// outside over contributes only its state. Which *version* of an operand a
// Comp reads is determined by the installs preceding it: Inst(X) both
// consumes δX and changes X's state, so the walk advances X's version
// counter at each Inst(X). The scheduler's conflict ordering preserves
// exactly these read-after-install relations in every execution mode, so
// the hints remain valid under staged, DAG and term-parallel execution.
//
// Beyond PR 5's per-operand analysis, AnalyzeSharingOpts elects *join
// intermediates*: when several Comps join the same pair of quiescent views
// on the same keys, the pair's join is worth materializing once for the
// whole window. Election — for intermediates and operands alike — is a
// greedy savings-per-byte admission against the window's shared byte
// budget, optionally corrected by a cost.ShareTuner's observed hit-rate and
// size drift, so the reported savings are what the budget actually admits.

// OperandKey identifies one shareable operand in a strategy: a view's delta
// or state, at the given install version (installs of the view executed
// before the read).
type OperandKey struct {
	View    string
	Delta   bool
	Version int
}

// InterKey identifies one shareable join intermediate: the canonical
// (ViewA < ViewB, adjacent references) pair of quiescent views at their
// install versions, joined on the equi-key signature Sig. Field-compatible
// with core.InterSpec by construction.
type InterKey struct {
	ViewA string
	VerA  int
	ViewB string
	VerB  int
	Sig   string
}

// PairHint names one join-intermediate candidate of a derived view's
// definition: two distinct adjacent FROM-clause references joined by at
// least one equi-join predicate. exec adapts core.PairCandidates.
type PairHint struct {
	A, B string
	Sig  string
}

// ElectedShare is one sharing candidate the election considered, for
// inspection (EXPLAIN SHARING).
type ElectedShare struct {
	// Name renders the candidate: "δVIEW v0", "VIEW v1" or "A⋈B v0/v0".
	Name string
	// Kind is "operand" or "intermediate".
	Kind string
	// Consumers is the number of Comp expressions reading it.
	Consumers int
	// EstRows and EstBytes are the planning estimates of the materialized
	// result (bytes after any tuner size correction).
	EstRows  int64
	EstBytes int64
	// EstSavedTuples is the operand scans sharing it elides.
	EstSavedTuples int64
	// Admitted reports whether the byte budget (and the tuned gate)
	// admitted the candidate.
	Admitted bool
}

// SharingPlan is the result of AnalyzeSharing / AnalyzeSharingOpts.
type SharingPlan struct {
	// Consumers maps each operand to the number of Comp expressions
	// reading it. Operands read once are included (the executor's gate
	// needs the complete refcount schedule). Operand reads served by an
	// admitted join intermediate are excluded.
	Consumers map[OperandKey]int
	// ByComp maps each Comp's canonical key to the operands its
	// maintenance terms read, in reference order.
	ByComp map[string][]OperandKey
	// InterConsumers and InterByComp mirror Consumers/ByComp for the
	// admitted join intermediates (nil without pair hints).
	InterConsumers map[InterKey]int
	InterByComp    map[string][]InterKey
	// EstRows and InterEstRows carry the planning row estimates the
	// executor feeds back to the share tuner (nil without stats).
	EstRows      map[OperandKey]int64
	InterEstRows map[InterKey]int64
	// SharedOperands counts operands with at least two consumers.
	SharedOperands int
	// SharedIntermediates counts admitted join intermediates.
	SharedIntermediates int
	// EstimatedSavedTuples is the planning-statistics estimate of the
	// operand tuples sharing saves, clamped to what the byte budget
	// admits. Zero when no stats are supplied.
	EstimatedSavedTuples int64
	// Elected lists every candidate the election considered, admitted or
	// not, in admission-priority order (only with stats).
	Elected []ElectedShare
}

// SharingOptions parameterize AnalyzeSharingOpts.
type SharingOptions struct {
	// Stats sizes the savings estimates; without it the analysis returns
	// structure only (no election, no estimates).
	Stats cost.Stats
	// BudgetBytes is the window's shared byte budget the election clamps
	// against; 0 means unbounded (every multi-consumer candidate admits).
	BudgetBytes int64
	// Width returns a view's tuple width in columns (nil: a nominal 4),
	// used to price candidates in bytes.
	Width func(view string) int
	// Pairs returns a view definition's join-intermediate candidates
	// (nil: operand sharing only).
	Pairs func(view string) []PairHint
	// Tuner, when calibrated, gates election by observed hit-rate and
	// corrects byte estimates by observed size drift.
	Tuner *cost.ShareTuner
}

// AnalyzeSharing walks a strategy and returns its cross-view sharing
// structure. refs supplies each derived view's FROM-clause reference list
// (one entry per reference; repeat for self-joins) — exec.RefsOf adapts a
// warehouse. stats, when non-nil, sizes the estimated savings; planning
// proceeds without it. Estimates are unclamped (no byte budget) and no
// intermediates are elected; see AnalyzeSharingOpts.
func AnalyzeSharing(s strategy.Strategy, refs func(view string) []string, stats cost.Stats) SharingPlan {
	return AnalyzeSharingOpts(s, refs, SharingOptions{Stats: stats})
}

// nominalShareWidth is the per-view tuple width assumed when no Width
// function is supplied, matching the cost model's nominal build width.
const nominalShareWidth = 4

// shareCand is one election candidate.
type shareCand struct {
	op       OperandKey // operand candidate when inter == nil
	inter    InterKey
	isInter  bool
	comps    []string // comps consuming an intermediate
	n        int
	rows     int64
	bytes    int64
	saved    int64
	name     string
	admitted bool
}

// AnalyzeSharingOpts is AnalyzeSharing with joint election: it additionally
// elects join intermediates from opts.Pairs, clamps the savings estimate to
// what opts.BudgetBytes admits (greedy by savings-per-byte), and applies the
// tuned share gate when opts.Tuner is calibrated. A Comp whose pair reads
// are served by an admitted intermediate no longer counts as a consumer of
// the pair's individual state operands.
func AnalyzeSharingOpts(s strategy.Strategy, refs func(view string) []string, opts SharingOptions) SharingPlan {
	plan := SharingPlan{
		Consumers: make(map[OperandKey]int),
		ByComp:    make(map[string][]OperandKey),
	}
	stats := opts.Stats
	version := make(map[string]int)
	// interReads collects, per candidate intermediate, the comps reading it
	// and the per-comp state operands an admission would displace.
	type interRead struct {
		comp     string
		displace []OperandKey
	}
	interReads := make(map[InterKey][]interRead)

	for _, e := range s {
		switch x := e.(type) {
		case strategy.Comp:
			refList := refs(x.View)
			deltas, states := x.Reads(refList)
			var ops []OperandKey
			for _, v := range deltas {
				ops = append(ops, OperandKey{View: v, Delta: true, Version: version[v]})
			}
			for _, v := range states {
				ops = append(ops, OperandKey{View: v, Version: version[v]})
			}
			// Self-joins repeat an operand inside one Comp; consumers and
			// releases are per Comp (intra-Compute reuse is the build
			// cache's job), so deduplicate before counting.
			key := x.Key()
			seen := make(map[OperandKey]bool, len(ops))
			for _, op := range ops {
				if !seen[op] {
					seen[op] = true
					plan.Consumers[op]++
					plan.ByComp[key] = append(plan.ByComp[key], op)
				}
			}
			if opts.Pairs != nil {
				overSet := make(map[string]bool, len(x.Over))
				for _, o := range x.Over {
					overSet[o] = true
				}
				refCount := make(map[string]int, len(refList))
				for _, v := range refList {
					refCount[v]++
				}
				seenInter := make(map[InterKey]bool)
				pairUsed := make(map[string]bool)
				for _, p := range opts.Pairs(x.View) {
					// Only pairs of quiescent (non-over) views are always
					// state-bound and therefore usable in every term.
					if overSet[p.A] || overSet[p.B] {
						continue
					}
					// One composite per reference: overlapping pairs (A⋈B and
					// B⋈C) cannot both be served in a term, so each comp
					// nominates a disjoint set (first adjacency wins).
					if pairUsed[p.A] || pairUsed[p.B] {
						continue
					}
					pairUsed[p.A], pairUsed[p.B] = true, true
					ik := InterKey{ViewA: p.A, VerA: version[p.A], ViewB: p.B, VerB: version[p.B], Sig: p.Sig}
					if seenInter[ik] {
						continue
					}
					seenInter[ik] = true
					// Admission displaces this comp's reads of the pair's
					// state operands — unless another reference of the same
					// view still reads the state.
					var displace []OperandKey
					if refCount[p.A] == 1 {
						displace = append(displace, OperandKey{View: p.A, Version: version[p.A]})
					}
					if p.B != p.A && refCount[p.B] == 1 {
						displace = append(displace, OperandKey{View: p.B, Version: version[p.B]})
					}
					interReads[ik] = append(interReads[ik], interRead{comp: key, displace: displace})
				}
			}
		case strategy.Inst:
			version[x.View]++
		}
	}

	if stats == nil {
		for _, n := range plan.Consumers {
			if n >= 2 {
				plan.SharedOperands++
			}
		}
		return plan
	}

	width := opts.Width
	if width == nil {
		width = func(string) int { return nominalShareWidth }
	}
	sizeAt := func(view string, delta bool, ver int) (int64, bool) {
		st, ok := stats[view]
		if !ok {
			return 0, false
		}
		switch {
		case delta:
			return st.DeltaSize(), true
		case ver > 0:
			return st.SizeAfter(), true
		default:
			return st.Size, true
		}
	}
	correct := func(b int64) int64 { return opts.Tuner.CorrectBytes(b) }

	var used int64
	admit := func(c *shareCand) bool {
		bytes := c.bytes
		if opts.Tuner.Calibrated() {
			if !opts.Tuner.ShouldShare(c.n, bytes, opts.BudgetBytes, used) {
				return false
			}
		} else if opts.BudgetBytes > 0 && used+bytes > opts.BudgetBytes {
			return false
		}
		used += bytes
		return true
	}

	// Operand candidates first, at full (pre-displacement) consumer counts:
	// operand sharing is the baseline an intermediate must beat, because a
	// shared operand serves every consumer — across different join pairs —
	// while an intermediate fragments the reuse to its one pair.
	var opCands []*shareCand
	admittedOp := make(map[OperandKey]*shareCand)
	for op, n := range plan.Consumers {
		if n < 2 {
			continue
		}
		size, ok := sizeAt(op.View, op.Delta, op.Version)
		if !ok {
			continue
		}
		name := op.View
		if op.Delta {
			name = "δ" + name
		}
		opCands = append(opCands, &shareCand{
			op:    op,
			n:     n,
			rows:  size,
			bytes: correct(cost.EstimateMaterializedBytes(size, width(op.View))),
			saved: int64(n-1) * size,
			name:  fmt.Sprintf("%s v%d", name, op.Version),
		})
	}
	sortCands(opCands)
	for _, c := range opCands {
		if c.saved <= 0 || !admit(c) {
			continue
		}
		c.admitted = true
		plan.EstimatedSavedTuples += c.saved
		admittedOp[c.op] = c
	}

	// Intermediates are credited their NET gain: the (n−1)·(|A|+|B|) scans
	// the shared pair elides, minus the operand-sharing savings the election
	// displaces (each displaced consumer of an admitted operand was a scan
	// that sharing already elided). An intermediate whose operands fully
	// share elsewhere is at best neutral and stays unelected; it wins when
	// the operands could not be admitted (byte budget) or could not be
	// shared (single consumers outside the pair).
	var inters []*shareCand
	for ik, reads := range interReads {
		n := len(reads)
		if n < 2 {
			continue
		}
		sizeA, okA := sizeAt(ik.ViewA, false, ik.VerA)
		sizeB, okB := sizeAt(ik.ViewB, false, ik.VerB)
		if !okA || !okB {
			continue
		}
		rows := sizeA
		if sizeB > rows {
			rows = sizeB
		}
		comps := make([]string, 0, n)
		for _, r := range reads {
			comps = append(comps, r.comp)
		}
		inters = append(inters, &shareCand{
			inter:   ik,
			isInter: true,
			comps:   comps,
			n:       n,
			rows:    rows,
			bytes:   correct(cost.EstimateMaterializedBytes(rows, width(ik.ViewA)+width(ik.ViewB))),
			saved:   int64(n-1) * (sizeA + sizeB),
			name:    fmt.Sprintf("%s⋈%s v%d/v%d", ik.ViewA, ik.ViewB, ik.VerA, ik.VerB),
		})
	}
	sortCands(inters)

	for _, c := range inters {
		// Net gain against the admitted operand savings this election would
		// displace. An admitted operand's live contribution is kept in its
		// candidate's saved field; "after" is what remains once this pair's
		// consumers stop reading it. Operands whose sharing would vanish
		// entirely refund their bytes to the budget.
		gross := c.saved
		loss, freed := int64(0), int64(0)
		displaced := make(map[OperandKey]int)
		for _, r := range interReads[c.inter] {
			for _, op := range r.displace {
				if containsOp(plan.ByComp[r.comp], op) {
					displaced[op]++
				}
			}
		}
		for op, d := range displaced {
			oc, ok := admittedOp[op]
			if !ok {
				continue
			}
			n := int64(plan.Consumers[op]-d) - 1
			if n < 0 {
				n = 0
			}
			after := n * oc.rows
			loss += oc.saved - after
			if plan.Consumers[op]-d < 2 {
				freed += oc.bytes
			}
		}
		net := gross - loss
		if net < 0 || (net == 0 && freed < c.bytes) {
			c.saved = net
			continue
		}
		// Budget check with the refund applied up front.
		tentative := used - freed
		if opts.Tuner.Calibrated() {
			if !opts.Tuner.ShouldShare(c.n, c.bytes, opts.BudgetBytes, tentative) {
				c.saved = net
				continue
			}
		} else if opts.BudgetBytes > 0 && tentative+c.bytes > opts.BudgetBytes {
			c.saved = net
			continue
		}
		used = tentative + c.bytes
		c.admitted = true
		plan.SharedIntermediates++
		plan.EstimatedSavedTuples += gross - loss
		if plan.InterConsumers == nil {
			plan.InterConsumers = make(map[InterKey]int)
			plan.InterByComp = make(map[string][]InterKey)
			plan.InterEstRows = make(map[InterKey]int64)
		}
		plan.InterConsumers[c.inter] = c.n
		plan.InterEstRows[c.inter] = c.rows
		for _, comp := range c.comps {
			plan.InterByComp[comp] = append(plan.InterByComp[comp], c.inter)
		}
		// Displace the served operand reads and settle the operand entries.
		for _, r := range interReads[c.inter] {
			for _, op := range r.displace {
				if !containsOp(plan.ByComp[r.comp], op) {
					continue
				}
				plan.ByComp[r.comp] = removeOp(plan.ByComp[r.comp], op)
				if plan.Consumers[op]--; plan.Consumers[op] <= 0 {
					delete(plan.Consumers, op)
				}
			}
		}
		for op := range displaced {
			oc, ok := admittedOp[op]
			if !ok {
				continue
			}
			n := int64(plan.Consumers[op]) - 1
			if n < 0 {
				n = 0
			}
			oc.saved = n * oc.rows
			if plan.Consumers[op] < 2 {
				oc.admitted = false
				oc.saved = 0
				delete(admittedOp, op)
			}
		}
	}
	for _, n := range plan.Consumers {
		if n >= 2 {
			plan.SharedOperands++
		}
	}

	plan.EstRows = make(map[OperandKey]int64)
	for op := range plan.Consumers {
		if size, ok := sizeAt(op.View, op.Delta, op.Version); ok {
			plan.EstRows[op] = size
		}
	}
	for _, c := range append(inters, opCands...) {
		kind := "operand"
		if c.isInter {
			kind = "intermediate"
		}
		plan.Elected = append(plan.Elected, ElectedShare{
			Name: c.name, Kind: kind, Consumers: c.n,
			EstRows: c.rows, EstBytes: c.bytes, EstSavedTuples: c.saved,
			Admitted: c.admitted,
		})
	}
	return plan
}

// sortCands orders election candidates by savings-per-byte (descending),
// breaking ties by name for determinism.
func sortCands(cands []*shareCand) {
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		// saved/bytes comparison without division: a.saved*b.bytes vs
		// b.saved*a.bytes (bytes are ≥ 48, never zero, per
		// EstimateMaterializedBytes's width clamp — but guard anyway).
		ab, bb := a.bytes, b.bytes
		if ab <= 0 {
			ab = 1
		}
		if bb <= 0 {
			bb = 1
		}
		da, db := float64(a.saved)/float64(ab), float64(b.saved)/float64(bb)
		if da != db {
			return da > db
		}
		return a.name < b.name
	})
}

func containsOp(ops []OperandKey, op OperandKey) bool {
	for _, o := range ops {
		if o == op {
			return true
		}
	}
	return false
}

func removeOp(ops []OperandKey, op OperandKey) []OperandKey {
	out := ops[:0]
	for _, o := range ops {
		if o != op {
			out = append(out, o)
		}
	}
	return out
}
