package planner

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/strategy"
)

// TestSection6InfeasibleOrdering reproduces the paper's Section 6 example:
// for the Figure 10 VDAG there is no 1-way VDAG strategy strongly
// consistent with ⟨V4, V1, V2, V3, V5⟩ — Comp(V4,{V3}) must follow Inst(V2)
// (C4 + strong consistency) but precede Inst(V4) ≺ Inst(V2) (C8 + the
// ordering), a cycle. ConstructSEG must detect it.
func TestSection6InfeasibleOrdering(t *testing.T) {
	g := fig10()
	seg := ConstructSEG(g, []string{"V4", "V1", "V2", "V3", "V5"})
	if seg.IsAcyclic() {
		t.Fatalf("SEG should be cyclic for ⟨V4,V1,V2,V3,V5⟩")
	}
	// The plain EG for the same ordering is also cyclic here; an ordering
	// that is EG-feasible but SEG-infeasible: ⟨V1,V2,V3,V5,V4⟩ on fig3 —
	// Inst(V4) must precede Comp(V5,{V4})'s… actually take the simple one:
	// install order must put V4 last, but Comp(V5,{V4}) < Inst(V4) (C3) and
	// Inst(V1) < Inst(V4)? Verify feasibility counting instead below.
}

// TestSEGFeasibilityMatchesEnumeration: for the Figure 10 VDAG, the set of
// orderings with an acyclic SEG must be exactly the set of install orders
// realized by some enumerated correct 1-way VDAG strategy (Lemma 6.1: the
// strong-consistency partition).
func TestSEGFeasibilityMatchesEnumeration(t *testing.T) {
	g := fig10()
	views := g.ViewsWithParents() // V1..V4
	feasible := make(map[string]bool)
	for _, ord := range strategy.Permutations(views) {
		if ConstructSEG(g, ord).IsAcyclic() {
			feasible[strings.Join(ord, ",")] = true
		}
	}
	realized := make(map[string]bool)
	for _, s := range strategy.EnumerateVDAGStrategies(g) {
		if !s.IsOneWay() {
			continue
		}
		// Install order restricted to views with parents.
		var ord []string
		withParents := make(map[string]bool)
		for _, v := range views {
			withParents[v] = true
		}
		for _, v := range s.InstOrder() {
			if withParents[v] {
				ord = append(ord, v)
			}
		}
		realized[strings.Join(ord, ",")] = true
	}
	for ord := range realized {
		if !feasible[ord] {
			t.Errorf("install order %s realized by an enumerated strategy but SEG says infeasible", ord)
		}
	}
	for ord := range feasible {
		if !realized[ord] {
			t.Errorf("SEG says %s feasible but no enumerated 1-way strategy realizes it", ord)
		}
	}
	if len(feasible) == 0 || len(feasible) == 24 {
		t.Errorf("expected a strict subset of the 4! orderings to be feasible, got %d", len(feasible))
	}
	t.Logf("fig10: %d of 24 orderings feasible", len(feasible))
}

// TestPruneFeasibleCountMatchesSEG ties Prune's reported feasibility to the
// direct SEG computation.
func TestPruneFeasibleCountMatchesSEG(t *testing.T) {
	g := fig10()
	stats := cost.Stats{}
	for _, v := range g.Views() {
		stats[v] = cost.ViewStat{Size: 100, DeltaPlus: 5, DeltaMinus: 3}
	}
	res, err := Prune(g, cost.DefaultModel, stats, uniformRefs(g))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, ord := range strategy.Permutations(g.ViewsWithParents()) {
		if ConstructSEG(g, ord).IsAcyclic() {
			count++
		}
	}
	if res.Feasible != count {
		t.Errorf("Prune feasible = %d, SEG sweep = %d", res.Feasible, count)
	}
	if res.Examined != 24 {
		t.Errorf("examined = %d", res.Examined)
	}
}
