package planner

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/strategy"
	"repro/internal/vdag"
)

// DesiredOrdering returns the paper's desired view ordering: the given
// views arranged by increasing |V′|−|V| (net growth), with view name as a
// deterministic tie-break.
func DesiredOrdering(views []string, stats cost.Stats) ([]string, error) {
	for _, v := range views {
		if _, ok := stats[v]; !ok {
			return nil, fmt.Errorf("planner: no statistics for view %q", v)
		}
	}
	out := append([]string(nil), views...)
	sort.SliceStable(out, func(i, j int) bool {
		gi, gj := stats[out[i]].NetGrowth(), stats[out[j]].NetGrowth()
		if gi != gj {
			return gi < gj
		}
		return out[i] < out[j]
	})
	return out, nil
}

// MinWorkSingle (Algorithm 4.1) returns an optimal view strategy for view
// under the linear work metric: the 1-way strategy that propagates and
// installs the children in increasing |V′|−|V| order (Theorems 4.1, 4.2).
// Runs in O(n log n).
func MinWorkSingle(view string, children []string, stats cost.Stats) (strategy.Strategy, error) {
	ordered, err := DesiredOrdering(children, stats)
	if err != nil {
		return nil, err
	}
	return strategy.OneWayView(view, ordered), nil
}

// MinWorkResult reports how MinWork arrived at its strategy.
type MinWorkResult struct {
	Strategy strategy.Strategy
	// DesiredOrdering is the ordering by increasing net growth.
	DesiredOrdering []string
	// UsedOrdering is the ordering actually used (equals DesiredOrdering
	// unless the EG was cyclic and ModifyOrdering was applied).
	UsedOrdering []string
	// Modified reports that the desired ordering yielded a cyclic EG and
	// the level-respecting modified ordering was used instead, in which
	// case the strategy may be sub-optimal (but is always correct).
	Modified bool
}

// MinWork (Algorithm 5.1) produces a 1-way VDAG strategy for g. The result
// is optimal over all VDAG strategies whenever the expression graph for the
// desired view ordering is acyclic — always for tree VDAGs and uniform
// VDAGs (Theorem 5.4) — and otherwise falls back to ModifyOrdering, which
// is guaranteed acyclic (Theorem 5.5). Worst-case O(n³) for EG
// construction.
func MinWork(g *vdag.Graph, stats cost.Stats) (MinWorkResult, error) {
	var res MinWorkResult
	desired, err := DesiredOrdering(orderableViews(g), stats)
	if err != nil {
		return res, err
	}
	res.DesiredOrdering = desired
	res.UsedOrdering = desired
	eg := ConstructEG(g, desired)
	s, err := eg.TopoSort()
	if err == nil {
		res.Strategy = s
		return res, nil
	}
	modified := ModifyOrdering(g, desired)
	res.UsedOrdering = modified
	res.Modified = true
	eg = ConstructEG(g, modified)
	s, err = eg.TopoSort()
	if err != nil {
		// Theorem 5.5 guarantees this cannot happen; if it does the graph
		// construction is broken, so surface it loudly.
		return res, fmt.Errorf("planner: modified ordering still cyclic: %w", err)
	}
	res.Strategy = s
	return res, nil
}

// ModifyOrdering (Algorithm 5.2) reorders the given view ordering by
// increasing Level, preserving the relative order of views within a level.
// The resulting ordering always yields an acyclic expression graph
// (Theorem 5.5).
func ModifyOrdering(g *vdag.Graph, ordering []string) []string {
	return g.SortByLevel(ordering)
}

// orderableViews returns the views whose position in an ordering matters:
// those with at least one parent (Section 6's m! optimization). Views with
// no parents never appear in another view's Comp, so their installs are
// placed freely by the topological sort.
func orderableViews(g *vdag.Graph) []string { return g.ViewsWithParents() }

// PruneResult reports the outcome of a Prune search.
type PruneResult struct {
	Strategy strategy.Strategy
	Work     float64
	// Ordering is the view ordering (over views with parents) whose
	// partition the winning strategy belongs to.
	Ordering []string
	// Examined counts the orderings considered; Feasible counts those with
	// an acyclic strong expression graph.
	Examined, Feasible int
}

// Prune (Algorithm 6.1) searches over view orderings, evaluating one
// representative 1-way VDAG strategy per ordering (Theorem 6.1: all
// strategies strongly consistent with the same ordering incur equal work),
// and returns the cheapest. Orderings whose strong expression graph is
// cyclic admit no strongly consistent strategy and are skipped. Only the m
// views with parents are permuted (Section 6's optimization), so the search
// examines m! orderings.
func Prune(g *vdag.Graph, model cost.Model, stats cost.Stats, refs cost.RefCounts) (PruneResult, error) {
	res := PruneResult{Work: -1}
	views := orderableViews(g)
	perms := strategy.Permutations(views)
	for _, ord := range perms {
		res.Examined++
		seg := ConstructSEG(g, ord)
		s, err := seg.TopoSort()
		if err != nil {
			continue // cyclic SEG: no strongly consistent strategy exists
		}
		res.Feasible++
		w, err := cost.Work(model, stats, refs, s)
		if err != nil {
			return res, err
		}
		if res.Work < 0 || w < res.Work {
			res.Work = w
			res.Strategy = s
			res.Ordering = append([]string(nil), ord...)
		}
	}
	if res.Strategy == nil {
		return res, fmt.Errorf("planner: no feasible ordering found (impossible for a well-formed VDAG)")
	}
	return res, nil
}

// BestViewStrategy exhaustively evaluates every correct view strategy for a
// single view (one representative per ordered partition of the children)
// under the linear work metric and returns the cheapest. Exponential in the
// number of children; it is the oracle MinWorkSingle is tested against and
// the generator behind the paper's Figure 12.
func BestViewStrategy(g *vdag.Graph, view string, model cost.Model, stats cost.Stats, refs cost.RefCounts) (strategy.Strategy, float64, error) {
	children := g.Children(view)
	if len(children) == 0 {
		return nil, 0, fmt.Errorf("planner: %q is a base view", view)
	}
	var best strategy.Strategy
	bestW := -1.0
	for _, s := range strategy.EnumerateViewStrategies(view, children) {
		w, err := cost.Work(model, stats, refs, s)
		if err != nil {
			return nil, 0, err
		}
		if bestW < 0 || w < bestW {
			bestW, best = w, s
		}
	}
	return best, bestW, nil
}
