package planner

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/vdag"
)

// syntheticUniform builds a uniform VDAG with nBase base views and nDerived
// summaries, each over a random subset of the bases.
func syntheticUniform(rng *rand.Rand, nBase, nDerived int) *vdag.Graph {
	b := vdag.NewBuilder()
	var bases []string
	for i := 0; i < nBase; i++ {
		n := fmt.Sprintf("B%02d", i)
		if err := b.Add(n, nil); err != nil {
			panic(err)
		}
		bases = append(bases, n)
	}
	for i := 0; i < nDerived; i++ {
		var over []string
		for _, c := range bases {
			if rng.Intn(2) == 0 {
				over = append(over, c)
			}
		}
		if len(over) == 0 {
			over = bases[:1]
		}
		if err := b.Add(fmt.Sprintf("D%02d", i), over); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// BenchmarkMinWorkScaling measures MinWork's planning cost (EG construction
// dominates, O(n³)) as the VDAG grows.
func BenchmarkMinWorkScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []struct{ base, derived int }{
		{6, 3}, {12, 8}, {24, 16}, {48, 32},
	} {
		g := syntheticUniform(rng, size.base, size.derived)
		stats := randStats(g, rng)
		b.Run(fmt.Sprintf("views=%d", size.base+size.derived), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MinWork(g, stats); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPruneScaling measures Prune's m!·n³ growth with the number of
// views that have parents.
func BenchmarkPruneScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []int{3, 4, 5, 6} {
		// m base views all referenced by two summaries → m views with parents.
		builder := vdag.NewBuilder()
		var bases []string
		for i := 0; i < m; i++ {
			n := fmt.Sprintf("B%d", i)
			if err := builder.Add(n, nil); err != nil {
				b.Fatal(err)
			}
			bases = append(bases, n)
		}
		for _, d := range []string{"D0", "D1"} {
			if err := builder.Add(d, bases); err != nil {
				b.Fatal(err)
			}
		}
		g := builder.Build()
		stats := randStats(g, rng)
		refs := uniformRefs(g)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Prune(g, cost.DefaultModel, stats, refs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConstructEG isolates expression-graph construction and sorting.
func BenchmarkConstructEG(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := syntheticUniform(rng, 24, 16)
	stats := randStats(g, rng)
	ordering, err := DesiredOrdering(g.ViewsWithParents(), stats)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("construct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ConstructEG(g, ordering)
		}
	})
	eg := ConstructEG(g, ordering)
	b.Run("toposort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eg.TopoSort(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
