// Package source simulates the remote, autonomous information sources a
// warehouse derives its base views from (Section 2 of the paper): OLTP
// tables keyed by primary key, a transaction log, and a change extractor
// that turns logged transactions into the base-view delta batches an update
// window consumes.
//
// Following the paper's model, an update is represented as a deletion
// followed by an insertion, and base views are "cleansed" projections of
// source tables: an extraction rule filters malformed or irrelevant rows
// and reshapes the rest (the denormalization step producing dimension and
// fact tables).
package source

import (
	"context"
	"fmt"
	"time"

	"repro/internal/delta"
	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/retry"
)

// Op is a transaction operation.
type Op uint8

// Transaction operations.
const (
	OpInsert Op = iota
	OpDelete
	OpUpdate
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "INSERT"
	case OpDelete:
		return "DELETE"
	case OpUpdate:
		return "UPDATE"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Tx is one source transaction: an operation on a row of a table. For
// OpDelete only the primary key columns of Row are consulted; for OpUpdate
// the row must carry the (unchanged) primary key and the new values.
type Tx struct {
	Table string
	Op    Op
	Row   relation.Tuple
}

// Table is one OLTP source table with a primary key.
type Table struct {
	name   string
	schema relation.Schema
	key    []int // indexes of the primary-key columns
	rows   map[string]relation.Tuple
}

// Source is a simulated remote information source: tables plus a
// transaction log that accumulates until the warehouse extracts changes.
type Source struct {
	tables map[string]*Table
	order  []string
	log    []Tx
}

// New creates an empty source.
func New() *Source {
	return &Source{tables: make(map[string]*Table)}
}

// DefineTable registers a table with the named primary-key columns.
func (s *Source) DefineTable(name string, schema relation.Schema, keyColumns ...string) error {
	if name == "" {
		return fmt.Errorf("source: empty table name")
	}
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("source: table %q already defined", name)
	}
	if len(keyColumns) == 0 {
		return fmt.Errorf("source: table %q needs at least one key column", name)
	}
	var key []int
	for _, k := range keyColumns {
		idx := schema.ColumnIndex(k)
		if idx < 0 {
			return fmt.Errorf("source: table %q has no column %q", name, k)
		}
		key = append(key, idx)
	}
	s.tables[name] = &Table{name: name, schema: schema.Clone(), key: key, rows: make(map[string]relation.Tuple)}
	s.order = append(s.order, name)
	return nil
}

// Tables lists table names in definition order.
func (s *Source) Tables() []string { return append([]string(nil), s.order...) }

// Schema returns a table's schema.
func (s *Source) Schema(table string) (relation.Schema, error) {
	t, ok := s.tables[table]
	if !ok {
		return nil, fmt.Errorf("source: unknown table %q", table)
	}
	return t.schema, nil
}

// Rows returns the current rows of a table (unspecified order).
func (s *Source) Rows(table string) ([]relation.Tuple, error) {
	t, ok := s.tables[table]
	if !ok {
		return nil, fmt.Errorf("source: unknown table %q", table)
	}
	out := make([]relation.Tuple, 0, len(t.rows))
	for _, r := range t.rows {
		out = append(out, r)
	}
	return out, nil
}

func (t *Table) keyOf(row relation.Tuple) (string, error) {
	if len(row) != len(t.schema) {
		return "", fmt.Errorf("source: row arity %d does not match %q schema width %d", len(row), t.name, len(t.schema))
	}
	return row.Project(t.key).Encode(), nil
}

// Apply executes one transaction, updating the table and appending to the
// change log.
func (s *Source) Apply(tx Tx) error {
	t, ok := s.tables[tx.Table]
	if !ok {
		return fmt.Errorf("source: unknown table %q", tx.Table)
	}
	key, err := t.keyOf(tx.Row)
	if err != nil {
		return err
	}
	switch tx.Op {
	case OpInsert:
		if _, exists := t.rows[key]; exists {
			return fmt.Errorf("source: %s: duplicate key %v", t.name, tx.Row.Project(t.key))
		}
		t.rows[key] = tx.Row.Clone()
	case OpDelete:
		old, exists := t.rows[key]
		if !exists {
			return fmt.Errorf("source: %s: delete of missing key %v", t.name, tx.Row.Project(t.key))
		}
		delete(t.rows, key)
		// Log the stored before-image, not the caller's key-only row: the
		// extraction filter must see exactly what disappeared.
		s.log = append(s.log, Tx{Table: tx.Table, Op: OpDelete, Row: old})
		return nil
	case OpUpdate:
		old, exists := t.rows[key]
		if !exists {
			return fmt.Errorf("source: %s: update of missing key %v", t.name, tx.Row.Project(t.key))
		}
		// Log the old image so extraction can emit delete-then-insert.
		s.log = append(s.log, Tx{Table: tx.Table, Op: OpDelete, Row: old})
		t.rows[key] = tx.Row.Clone()
		s.log = append(s.log, Tx{Table: tx.Table, Op: OpInsert, Row: tx.Row.Clone()})
		return nil
	default:
		return fmt.Errorf("source: unknown op %v", tx.Op)
	}
	s.log = append(s.log, Tx{Table: tx.Table, Op: tx.Op, Row: tx.Row.Clone()})
	return nil
}

// MustApply is Apply panicking on error, for test fixtures.
func (s *Source) MustApply(tx Tx) {
	if err := s.Apply(tx); err != nil {
		panic(err)
	}
}

// LogLength returns the number of unextracted logged operations.
func (s *Source) LogLength() int { return len(s.log) }

// Extraction maps one source table to one warehouse base view: the
// cleansing filter drops rows that should not reach the warehouse, and the
// shaping projection reshapes the survivors into the base view's schema
// (denormalization hooks close over other tables if needed).
type Extraction struct {
	// Table is the source table consumed.
	Table string
	// Filter keeps a row when true; nil keeps everything.
	Filter func(relation.Tuple) bool
	// Shape maps a source row to a base-view row; nil is identity.
	Shape func(relation.Tuple) relation.Tuple
	// ViewSchema is the produced base view's schema.
	ViewSchema relation.Schema
}

// apply runs the extraction on a single source row.
func (e Extraction) apply(row relation.Tuple) (relation.Tuple, bool, error) {
	if e.Filter != nil && !e.Filter(row) {
		return nil, false, nil
	}
	out := row
	if e.Shape != nil {
		out = e.Shape(row)
	}
	if len(out) != len(e.ViewSchema) {
		return nil, false, fmt.Errorf("source: extraction for %q produced arity %d, schema width %d",
			e.Table, len(out), len(e.ViewSchema))
	}
	return out, true, nil
}

// Extractor turns the source's transaction log into base-view deltas.
type Extractor struct {
	src *Source
	// extractions maps base-view name → extraction rule.
	extractions map[string]Extraction
	// faults, when set, injects failures at extraction boundaries: point
	// "source.drain" once per Drain, "extract:<view>" once per view.
	faults *faults.Injector
}

// SetFaults installs a fault injector on the extractor. A nil injector
// disables injection; the hooks are no-ops when unset.
func (x *Extractor) SetFaults(inj *faults.Injector) { x.faults = inj }

// NewExtractor creates an extractor over the source with the given
// base-view extraction rules.
func NewExtractor(src *Source, extractions map[string]Extraction) (*Extractor, error) {
	for view, e := range extractions {
		if _, ok := src.tables[e.Table]; !ok {
			return nil, fmt.Errorf("source: extraction for view %q names unknown table %q", view, e.Table)
		}
		if len(e.ViewSchema) == 0 {
			return nil, fmt.Errorf("source: extraction for view %q has no schema", view)
		}
	}
	return &Extractor{src: src, extractions: extractions}, nil
}

// InitialLoad produces the full current contents of every base view, for
// the warehouse's first population. The change log is cleared: subsequent
// Drain calls describe changes after this point.
func (x *Extractor) InitialLoad() (map[string][]relation.Tuple, error) {
	out := make(map[string][]relation.Tuple)
	for view, e := range x.extractions {
		rows, err := x.src.Rows(e.Table)
		if err != nil {
			return nil, err
		}
		var loaded []relation.Tuple
		for _, r := range rows {
			shaped, keep, err := e.apply(r)
			if err != nil {
				return nil, err
			}
			if keep {
				loaded = append(loaded, shaped)
			}
		}
		out[view] = loaded
	}
	x.src.log = nil
	return out, nil
}

// Drain converts the accumulated transaction log into per-base-view deltas
// and clears the log — one warehouse update batch. Inserts cancel deletes
// of identical rows within the batch (delta cancellation), matching the
// paper's model where only net changes arrive at the warehouse.
//
// Drain is retry-safe: the log is cleared only on success, so a failed
// drain (an extraction error or an injected fault) leaves the full batch in
// place for the next attempt.
func (x *Extractor) Drain() (map[string]*delta.Delta, error) {
	if err := x.faults.Hit("source.drain"); err != nil {
		return nil, err
	}
	out := make(map[string]*delta.Delta)
	for view, e := range x.extractions {
		if err := x.faults.Hit("extract:" + view); err != nil {
			return nil, err
		}
		d := delta.New(e.ViewSchema)
		for _, tx := range x.src.log {
			if tx.Table != e.Table {
				continue
			}
			shaped, keep, err := e.apply(tx.Row)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
			switch tx.Op {
			case OpInsert:
				d.Add(shaped, 1)
			case OpDelete:
				d.Add(shaped, -1)
			}
		}
		if !d.IsEmpty() {
			out[view] = d
		}
	}
	x.src.log = nil
	return out, nil
}

// RetryPolicy bounds DrainWithRetry: up to Attempts tries with exponential
// backoff starting at Backoff and multiplying by Factor between attempts.
type RetryPolicy struct {
	// Attempts is the total number of tries; values below 1 mean one.
	Attempts int
	// Backoff is the sleep before the first retry; <= 0 means 1ms.
	Backoff time.Duration
	// Factor multiplies the backoff after each retry; < 1 means 2.
	Factor float64
	// Sleep replaces time.Sleep, for tests.
	Sleep func(time.Duration)
}

// DrainWithRetry is Drain with bounded retries for transient failures — the
// flaky-network model of talking to a remote source. Only transient faults
// are retried: extraction rule errors (malformed rows) and crash-class
// faults are deterministic or terminal, so they surface immediately. Since
// a failed Drain leaves the transaction log intact, every attempt extracts
// the same batch.
func (x *Extractor) DrainWithRetry(p RetryPolicy) (map[string]*delta.Delta, error) {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var out map[string]*delta.Delta
	var lastAttempt int
	err := retry.Do(context.Background(), retry.Policy{
		Attempts: attempts,
		Base:     p.Backoff,
		Factor:   p.Factor,
		Sleep:    p.Sleep,
	}, func(attempt int) error {
		lastAttempt = attempt
		var derr error
		out, derr = x.Drain()
		return derr
	}, faults.IsTransient)
	if err != nil {
		return nil, fmt.Errorf("source: drain attempt %d/%d: %w", lastAttempt, attempts, err)
	}
	return out, nil
}
