package source

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/relation"
)

var txnSchema = relation.Schema{
	{Name: "txn_id", Kind: relation.KindInt},
	{Name: "cust", Kind: relation.KindInt},
	{Name: "amount", Kind: relation.KindInt},
	{Name: "status", Kind: relation.KindString},
}

func txnRow(id, cust, amount int64, status string) relation.Tuple {
	return relation.Tuple{
		relation.NewInt(id), relation.NewInt(cust),
		relation.NewInt(amount), relation.NewString(status),
	}
}

func newSource(t *testing.T) *Source {
	t.Helper()
	s := New()
	if err := s.DefineTable("TXN", txnSchema, "txn_id"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefineTableErrors(t *testing.T) {
	s := newSource(t)
	if err := s.DefineTable("", txnSchema, "txn_id"); err == nil {
		t.Errorf("empty name accepted")
	}
	if err := s.DefineTable("TXN", txnSchema, "txn_id"); err == nil {
		t.Errorf("duplicate accepted")
	}
	if err := s.DefineTable("X", txnSchema); err == nil {
		t.Errorf("missing key accepted")
	}
	if err := s.DefineTable("X", txnSchema, "nope"); err == nil {
		t.Errorf("unknown key column accepted")
	}
	if got := s.Tables(); len(got) != 1 || got[0] != "TXN" {
		t.Errorf("Tables = %v", got)
	}
	if _, err := s.Schema("nope"); err == nil {
		t.Errorf("unknown schema accepted")
	}
	if _, err := s.Rows("nope"); err == nil {
		t.Errorf("unknown rows accepted")
	}
}

func TestApplySemantics(t *testing.T) {
	s := newSource(t)
	if err := s.Apply(Tx{Table: "TXN", Op: OpInsert, Row: txnRow(1, 10, 100, "ok")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Tx{Table: "TXN", Op: OpInsert, Row: txnRow(1, 99, 1, "dup")}); err == nil {
		t.Errorf("duplicate key accepted")
	}
	if err := s.Apply(Tx{Table: "TXN", Op: OpUpdate, Row: txnRow(1, 10, 150, "ok")}); err != nil {
		t.Fatal(err)
	}
	rows, err := s.Rows("TXN")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][2].Int() != 150 {
		t.Errorf("rows = %v", rows)
	}
	if err := s.Apply(Tx{Table: "TXN", Op: OpDelete, Row: txnRow(1, 0, 0, "")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Tx{Table: "TXN", Op: OpDelete, Row: txnRow(1, 0, 0, "")}); err == nil {
		t.Errorf("delete of missing key accepted")
	}
	if err := s.Apply(Tx{Table: "TXN", Op: OpUpdate, Row: txnRow(7, 0, 0, "")}); err == nil {
		t.Errorf("update of missing key accepted")
	}
	if err := s.Apply(Tx{Table: "nope", Op: OpInsert, Row: txnRow(1, 0, 0, "")}); err == nil {
		t.Errorf("unknown table accepted")
	}
	if err := s.Apply(Tx{Table: "TXN", Op: Op(9), Row: txnRow(2, 0, 0, "")}); err == nil {
		t.Errorf("unknown op accepted")
	}
	if err := s.Apply(Tx{Table: "TXN", Op: OpInsert, Row: relation.Tuple{relation.NewInt(1)}}); err == nil {
		t.Errorf("short row accepted")
	}
	// Update logged as delete+insert (paper's update representation).
	if s.LogLength() != 4 { // insert, delete+insert (update), delete
		t.Errorf("log length = %d", s.LogLength())
	}
	if OpInsert.String() != "INSERT" || OpDelete.String() != "DELETE" || OpUpdate.String() != "UPDATE" || Op(9).String() != "Op(9)" {
		t.Errorf("op strings wrong")
	}
}

// baseSchema is the cleansed base view: valid transactions only, reshaped.
var baseSchema = relation.Schema{
	{Name: "txn_id", Kind: relation.KindInt},
	{Name: "cust", Kind: relation.KindInt},
	{Name: "amount", Kind: relation.KindInt},
}

func extraction() Extraction {
	return Extraction{
		Table:      "TXN",
		Filter:     func(r relation.Tuple) bool { return r[3].Str() == "ok" && r[2].Int() > 0 },
		Shape:      func(r relation.Tuple) relation.Tuple { return r[:3].Clone() },
		ViewSchema: baseSchema,
	}
}

func TestExtractorInitialLoadAndDrain(t *testing.T) {
	s := newSource(t)
	s.MustApply(Tx{Table: "TXN", Op: OpInsert, Row: txnRow(1, 10, 100, "ok")})
	s.MustApply(Tx{Table: "TXN", Op: OpInsert, Row: txnRow(2, 11, -5, "ok")})   // malformed: filtered
	s.MustApply(Tx{Table: "TXN", Op: OpInsert, Row: txnRow(3, 12, 30, "void")}) // voided: filtered
	x, err := NewExtractor(s, map[string]Extraction{"SALES": extraction()})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := x.InitialLoad()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded["SALES"]) != 1 || loaded["SALES"][0].String() != "(1, 10, 100)" {
		t.Fatalf("initial load = %v", loaded["SALES"])
	}
	if s.LogLength() != 0 {
		t.Errorf("log not cleared after initial load")
	}
	// Post-load transactions.
	s.MustApply(Tx{Table: "TXN", Op: OpInsert, Row: txnRow(4, 10, 50, "ok")})
	s.MustApply(Tx{Table: "TXN", Op: OpUpdate, Row: txnRow(1, 10, 120, "ok")}) // amount change
	s.MustApply(Tx{Table: "TXN", Op: OpUpdate, Row: txnRow(3, 12, 30, "ok")})  // becomes visible
	s.MustApply(Tx{Table: "TXN", Op: OpDelete, Row: txnRow(2, 0, 0, "")})      // invisible either way
	deltas, err := x.Drain()
	if err != nil {
		t.Fatal(err)
	}
	d := deltas["SALES"]
	if d == nil {
		t.Fatal("no SALES delta")
	}
	// +{(4,10,50)}, −(1,10,100)+(1,10,120), +(3,12,30); row 2 never visible.
	if d.PlusCount() != 3 || d.MinusCount() != 1 {
		t.Fatalf("delta = %v", d.Sorted())
	}
	if s.LogLength() != 0 {
		t.Errorf("log not cleared after drain")
	}
	// Nothing new → empty map.
	deltas, err = x.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 {
		t.Errorf("expected no deltas, got %v", deltas)
	}
}

func TestExtractorErrors(t *testing.T) {
	s := newSource(t)
	if _, err := NewExtractor(s, map[string]Extraction{"V": {Table: "nope", ViewSchema: baseSchema}}); err == nil {
		t.Errorf("unknown table accepted")
	}
	if _, err := NewExtractor(s, map[string]Extraction{"V": {Table: "TXN"}}); err == nil {
		t.Errorf("missing schema accepted")
	}
	// Arity mismatch between shape and schema.
	bad := Extraction{
		Table:      "TXN",
		Shape:      func(r relation.Tuple) relation.Tuple { return r[:1] },
		ViewSchema: baseSchema,
	}
	x, err := NewExtractor(s, map[string]Extraction{"V": bad})
	if err != nil {
		t.Fatal(err)
	}
	s.MustApply(Tx{Table: "TXN", Op: OpInsert, Row: txnRow(1, 1, 1, "ok")})
	if _, err := x.InitialLoad(); err == nil {
		t.Errorf("arity mismatch accepted at load")
	}
	s.MustApply(Tx{Table: "TXN", Op: OpInsert, Row: txnRow(2, 1, 1, "ok")})
	if _, err := x.Drain(); err == nil {
		t.Errorf("arity mismatch accepted at drain")
	}
}

// TestSourceToWarehouseEndToEnd drives the full pipeline: OLTP transactions
// → extraction → staged deltas → update strategy → verified warehouse,
// repeated over several windows with randomized transactions.
func TestSourceToWarehouseEndToEnd(t *testing.T) {
	s := newSource(t)
	x, err := NewExtractor(s, map[string]Extraction{"SALES": extraction()})
	if err != nil {
		t.Fatal(err)
	}
	// Seed data.
	rng := rand.New(rand.NewSource(5))
	nextID := int64(1)
	live := make(map[int64]bool)
	randomTx := func() {
		switch rng.Intn(3) {
		case 0: // insert
			status := "ok"
			if rng.Intn(4) == 0 {
				status = "void"
			}
			s.MustApply(Tx{Table: "TXN", Op: OpInsert, Row: txnRow(nextID, rng.Int63n(5), rng.Int63n(50)-5, status)})
			live[nextID] = true
			nextID++
		case 1: // update a live row
			for id := range live {
				s.MustApply(Tx{Table: "TXN", Op: OpUpdate, Row: txnRow(id, rng.Int63n(5), rng.Int63n(50)-5, "ok")})
				break
			}
		case 2: // delete a live row
			for id := range live {
				s.MustApply(Tx{Table: "TXN", Op: OpDelete, Row: txnRow(id, 0, 0, "")})
				delete(live, id)
				break
			}
		}
	}
	for i := 0; i < 30; i++ {
		randomTx()
	}

	// Warehouse over the extracted base view with a summary on top.
	w := core.New(core.Options{})
	if err := w.DefineBase("SALES", baseSchema); err != nil {
		t.Fatal(err)
	}
	b := algebra.NewBuilder().From("s", "SALES", baseSchema)
	b.GroupByCol("s.cust")
	b.Agg("total", delta.AggSum, b.Col("s.amount"))
	def, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDerived("BY_CUST", def); err != nil {
		t.Fatal(err)
	}
	loaded, err := x.InitialLoad()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.LoadBase("SALES", loaded["SALES"]); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}

	for window := 0; window < 5; window++ {
		for i := 0; i < 20; i++ {
			randomTx()
		}
		deltas, err := x.Drain()
		if err != nil {
			t.Fatal(err)
		}
		for view, d := range deltas {
			if err := w.StageDelta(view, d); err != nil {
				t.Fatal(err)
			}
		}
		// 1-way window.
		if _, err := w.Compute("BY_CUST", []string{"SALES"}); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Install("SALES"); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Install("BY_CUST"); err != nil {
			t.Fatal(err)
		}
		if err := w.VerifyAll(); err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		// The warehouse base view must equal the extraction of the live
		// source state.
		fresh, err := x.InitialLoad()
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(fresh["SALES"])) != w.MustView("SALES").Cardinality() {
			t.Fatalf("window %d: warehouse has %d rows, source extraction %d",
				window, w.MustView("SALES").Cardinality(), len(fresh["SALES"]))
		}
	}
}
