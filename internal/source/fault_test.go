package source

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/relation"
)

// seededExtractor builds a TXN source with a SALES extraction and a few
// logged post-load transactions, so Drain has a real batch to extract.
func seededExtractor(t *testing.T) (*Source, *Extractor) {
	t.Helper()
	s := newSource(t)
	s.MustApply(Tx{Table: "TXN", Op: OpInsert, Row: txnRow(1, 10, 100, "ok")})
	x, err := NewExtractor(s, map[string]Extraction{"SALES": extraction()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.InitialLoad(); err != nil {
		t.Fatal(err)
	}
	s.MustApply(Tx{Table: "TXN", Op: OpInsert, Row: txnRow(2, 11, 40, "ok")})
	s.MustApply(Tx{Table: "TXN", Op: OpUpdate, Row: txnRow(1, 10, 150, "ok")})
	return s, x
}

// TestDrainFaultPreservesBatch: a failed Drain must leave the transaction
// log intact, so the next attempt extracts the identical batch.
func TestDrainFaultPreservesBatch(t *testing.T) {
	s, x := seededExtractor(t)
	logged := s.LogLength()

	inj := faults.New(1)
	inj.FailAt("source.drain", 1)
	x.SetFaults(inj)
	if _, err := x.Drain(); !faults.IsTransient(err) {
		t.Fatalf("injected drain fault not surfaced as transient: %v", err)
	}
	if s.LogLength() != logged {
		t.Fatalf("failed drain consumed the log: %d of %d entries left", s.LogLength(), logged)
	}
	deltas, err := x.Drain()
	if err != nil {
		t.Fatal(err)
	}
	d := deltas["SALES"]
	if d == nil || d.PlusCount() != 2 || d.MinusCount() != 1 {
		t.Fatalf("retried drain lost changes: %v", deltas)
	}
	if s.LogLength() != 0 {
		t.Errorf("successful drain left %d log entries", s.LogLength())
	}
}

// TestPerViewExtractionFault: the per-view injection point fires with the
// view's name, and the batch survives for retry.
func TestPerViewExtractionFault(t *testing.T) {
	s, x := seededExtractor(t)
	inj := faults.New(1)
	inj.FailAt("extract:SALES", 1)
	x.SetFaults(inj)
	_, err := x.Drain()
	var f *faults.Fault
	if !errors.As(err, &f) || f.Point != "extract:SALES" {
		t.Fatalf("per-view fault not surfaced: %v", err)
	}
	if s.LogLength() == 0 {
		t.Fatal("failed per-view extraction consumed the log")
	}
	if _, err := x.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainAfterRejectedApply: a rejected transaction must contribute
// nothing to the change log — the next drain sees only accepted work.
func TestDrainAfterRejectedApply(t *testing.T) {
	s := newSource(t)
	x, err := NewExtractor(s, map[string]Extraction{"SALES": extraction()})
	if err != nil {
		t.Fatal(err)
	}
	s.MustApply(Tx{Table: "TXN", Op: OpInsert, Row: txnRow(1, 10, 100, "ok")})
	rejections := []Tx{
		{Table: "TXN", Op: OpInsert, Row: txnRow(1, 99, 1, "ok")},             // duplicate key
		{Table: "TXN", Op: OpDelete, Row: txnRow(7, 0, 0, "")},                // missing key
		{Table: "TXN", Op: OpUpdate, Row: txnRow(8, 0, 0, "ok")},              // missing key
		{Table: "TXN", Op: OpInsert, Row: relation.Tuple{relation.NewInt(2)}}, // arity
		{Table: "nope", Op: OpInsert, Row: txnRow(2, 0, 0, "ok")},             // unknown table
		{Table: "TXN", Op: Op(9), Row: txnRow(2, 0, 0, "ok")},                 // unknown op
	}
	for i, tx := range rejections {
		if err := s.Apply(tx); err == nil {
			t.Fatalf("rejection %d accepted", i)
		}
	}
	if s.LogLength() != 1 {
		t.Fatalf("rejected transactions leaked into the log: %d entries", s.LogLength())
	}
	deltas, err := x.Drain()
	if err != nil {
		t.Fatal(err)
	}
	d := deltas["SALES"]
	if d == nil || d.PlusCount() != 1 || d.MinusCount() != 0 {
		t.Fatalf("drain after rejections = %v", deltas)
	}
}

// TestDrainWithRetryBackoff: transient faults are retried with exponential
// backoff until the batch comes through, and the batch is complete.
func TestDrainWithRetryBackoff(t *testing.T) {
	_, x := seededExtractor(t)
	inj := faults.New(1)
	inj.FailTimes("source.drain", 2)
	x.SetFaults(inj)

	var slept []time.Duration
	deltas, err := x.DrainWithRetry(RetryPolicy{
		Attempts: 4,
		Backoff:  5 * time.Millisecond,
		Factor:   2,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := deltas["SALES"]; d == nil || d.PlusCount() != 2 || d.MinusCount() != 1 {
		t.Fatalf("retried batch incomplete: %v", deltas)
	}
	if len(slept) != 2 || slept[0] != 5*time.Millisecond || slept[1] != 10*time.Millisecond {
		t.Fatalf("backoff schedule = %v", slept)
	}
	if inj.Hits("source.drain") != 3 {
		t.Fatalf("drain attempted %d times, want 3", inj.Hits("source.drain"))
	}
}

// TestDrainWithRetryExhausted: when every attempt fails the last fault
// surfaces, annotated with the attempt count.
func TestDrainWithRetryExhausted(t *testing.T) {
	s, x := seededExtractor(t)
	inj := faults.New(1)
	inj.FailTimes("source.drain", 10)
	x.SetFaults(inj)
	var slept int
	_, err := x.DrainWithRetry(RetryPolicy{Attempts: 3, Sleep: func(time.Duration) { slept++ }})
	if !faults.IsTransient(err) {
		t.Fatalf("exhausted retry lost the fault: %v", err)
	}
	if slept != 2 {
		t.Fatalf("%d sleeps for 3 attempts", slept)
	}
	if s.LogLength() == 0 {
		t.Fatal("exhausted retry consumed the log")
	}
}

// TestDrainWithRetryDoesNotRetryDeterministic: crash-class faults and
// malformed-row extraction errors are not transient — they must surface on
// the first attempt with no sleeping.
func TestDrainWithRetryDoesNotRetryDeterministic(t *testing.T) {
	_, x := seededExtractor(t)
	inj := faults.New(1)
	inj.CrashAt("source.drain", 1)
	x.SetFaults(inj)
	var slept int
	_, err := x.DrainWithRetry(RetryPolicy{Attempts: 5, Sleep: func(time.Duration) { slept++ }})
	if !faults.IsCrash(err) {
		t.Fatalf("crash fault not surfaced: %v", err)
	}
	if slept != 0 {
		t.Fatalf("crash-class fault was retried %d times", slept)
	}

	// Malformed rows: the extraction rule itself fails, deterministically.
	s2 := newSource(t)
	bad := Extraction{
		Table:      "TXN",
		Shape:      func(r relation.Tuple) relation.Tuple { return r[:1] },
		ViewSchema: baseSchema,
	}
	x2, err := NewExtractor(s2, map[string]Extraction{"V": bad})
	if err != nil {
		t.Fatal(err)
	}
	s2.MustApply(Tx{Table: "TXN", Op: OpInsert, Row: txnRow(1, 1, 1, "ok")})
	slept = 0
	_, err = x2.DrainWithRetry(RetryPolicy{Attempts: 5, Sleep: func(time.Duration) { slept++ }})
	if err == nil {
		t.Fatal("malformed-row extraction accepted")
	}
	if slept != 0 {
		t.Fatalf("deterministic extraction error was retried %d times", slept)
	}
}
