package tpcd

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/planner"
)

// TestMultiWindow drives several consecutive update windows over the same
// TPC-D warehouse with alternating change mixes, verifying state after each
// — the steady-state operation the paper's periodic-update model assumes.
func TestMultiWindow(t *testing.T) {
	tw, err := NewWarehouse(Config{SF: 0.001, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	specs := []ChangeSpec{
		UniformDecrease(0.05),
		Mixed(0.03, 0.08), // net growth
		COLDecrease(0.04),
		Mixed(0.06, 0.02), // net shrink
	}
	for i, spec := range specs {
		spec.Seed = int64(100 + i)
		if _, err := tw.StageChanges(spec); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		stats, err := exec.PlanningStats(tw.W)
		if err != nil {
			t.Fatal(err)
		}
		res, err := planner.MinWork(tw.Graph, stats)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := exec.Execute(tw.W, res.Strategy, exec.Options{Validate: true}); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		if err := tw.W.VerifyAll(); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		if pv := tw.W.PendingViews(); len(pv) != 0 {
			t.Fatalf("window %d left pending: %v", i, pv)
		}
	}
	// Sizes evolved across windows but stayed positive.
	for _, v := range BaseViews {
		if tw.W.MustView(v).Cardinality() <= 0 && v != Region {
			t.Errorf("%s emptied out", v)
		}
	}
}

// TestScaleSF01 runs a full update window at SF 0.01 (~75k LINEITEM rows
// after capping) — an order of magnitude above the unit tests — to check
// the engine, planner and verifier at scale. Skipped with -short.
func TestScaleSF01(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	tw, err := NewWarehouse(Config{SF: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	li := tw.W.MustView(LineItem).Cardinality()
	if li < 50_000 {
		t.Fatalf("|LINEITEM| = %d, expected ≥50k at SF 0.01", li)
	}
	if _, err := tw.StageChanges(Mixed(0.05, 0.05)); err != nil {
		t.Fatal(err)
	}
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		t.Fatal(err)
	}
	res, err := planner.MinWork(tw.Graph, stats)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := exec.Execute(tw.W, res.Strategy, exec.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalWork() == 0 {
		t.Fatal("no work measured")
	}
	if err := tw.W.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	t.Logf("SF 0.01 window: %s", rep)
}
