package tpcd

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/relation"
)

// Config controls data generation.
type Config struct {
	// SF is the TPC-D scale factor. SF = 1 is the full benchmark size
	// (150k customers, 1.5M orders, ~6M lineitems); the experiments run at
	// small fractions.
	SF float64
	// Seed makes generation deterministic.
	Seed int64
	// SkipEmptyDeltas is passed through to the warehouse options.
	SkipEmptyDeltas bool
	// UseIndexes is passed through to the warehouse options.
	UseIndexes bool
	// ParallelTerms and Workers are passed through to the warehouse
	// options: they enable the intra-Compute parallel engine and bound its
	// shared worker pool.
	ParallelTerms bool
	Workers       int
	// ShareComputation and SharedBudgetBytes are passed through to the
	// warehouse options: they enable window-wide cross-view sharing of
	// transiently materialized operands and bound its footprint.
	ShareComputation  bool
	SharedBudgetBytes int64
	// MemoryBudgetBytes is passed through to the warehouse options: it
	// bounds the window's transient build-state memory, spilling oversized
	// builds to disk. 0 disables budgeting.
	MemoryBudgetBytes int64
	// Queries selects which summary views to define; nil means all of
	// Q3, Q5 and Q10. Experiment 1, for instance, uses a Q3-only warehouse.
	Queries []string
	// DeepVDAG additionally defines the second-level summaries
	// Q3_BY_PRIORITY and NATION_REVENUE, making the VDAG deep and
	// non-uniform (requires the full query set).
	DeepVDAG bool
}

// RowCounts returns the base-view row counts for a scale factor.
func RowCounts(sf float64) map[string]int {
	atLeast1 := func(n float64) int {
		if n < 1 {
			return 1
		}
		return int(n)
	}
	return map[string]int{
		Region:   5,
		Nation:   25,
		Supplier: atLeast1(10_000 * sf),
		Customer: atLeast1(150_000 * sf),
		Order:    atLeast1(1_500_000 * sf),
		// LINEITEM rows are generated per order (1–7 lines, mean 4), so
		// this is an expectation rather than an exact count.
		LineItem: atLeast1(6_000_000 * sf),
	}
}

// dateRange for order dates, per the TPC-D spec (1992-01-01 .. 1998-08-02).
var (
	minOrderDate = relation.MustDate("1992-01-01").Days()
	maxOrderDate = relation.MustDate("1998-08-02").Days()
)

// generator produces base-view rows and fresh keys for insertions.
type generator struct {
	rng       *rand.Rand
	counts    map[string]int
	nextKey   map[string]int64 // next unused primary key per view
	orderKeys []int64          // existing order keys, for lineitem FKs
	custCount int64
	suppCount int64
}

func newGenerator(cfg Config) *generator {
	return &generator{
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		counts:  RowCounts(cfg.SF),
		nextKey: make(map[string]int64),
	}
}

func (g *generator) regionRow(key int64) relation.Tuple {
	return relation.Tuple{
		relation.NewInt(key),
		relation.NewString(regionNames[key%int64(len(regionNames))]),
	}
}

func (g *generator) nationRow(key int64) relation.Tuple {
	return relation.Tuple{
		relation.NewInt(key),
		relation.NewString(nationNames[key%int64(len(nationNames))]),
		relation.NewInt(key % 5),
	}
}

func (g *generator) supplierRow(key int64) relation.Tuple {
	return relation.Tuple{
		relation.NewInt(key),
		relation.NewString(fmt.Sprintf("Supplier#%09d", key)),
		relation.NewInt(g.rng.Int63n(25)),
		relation.NewFloat(float64(g.rng.Intn(1_000_000))/100 - 1000),
	}
}

func (g *generator) customerRow(key int64) relation.Tuple {
	return relation.Tuple{
		relation.NewInt(key),
		relation.NewString(fmt.Sprintf("Customer#%09d", key)),
		relation.NewInt(g.rng.Int63n(25)),
		relation.NewString(segments[g.rng.Intn(len(segments))]),
		relation.NewFloat(float64(g.rng.Intn(1_100_000))/100 - 1000),
	}
}

func (g *generator) orderRow(key int64) relation.Tuple {
	return relation.Tuple{
		relation.NewInt(key),
		relation.NewInt(g.rng.Int63n(g.custCount)), // O_CUSTKEY
		relation.NewDate(minOrderDate + g.rng.Int63n(maxOrderDate-minOrderDate+1)),
		relation.NewInt(g.rng.Int63n(2)), // O_SHIPPRIORITY: 0 urgent-ish, 1 normal
		relation.NewFloat(float64(g.rng.Intn(50_000_000)) / 100),
	}
}

func (g *generator) lineItemRow(orderKey, lineNumber int64) relation.Tuple {
	shipDelay := 1 + g.rng.Int63n(121) // ship 1–121 days after a base date
	return relation.Tuple{
		relation.NewInt(orderKey),
		relation.NewInt(lineNumber),
		relation.NewInt(g.rng.Int63n(g.suppCount)),
		relation.NewFloat(900 + float64(g.rng.Intn(10_410_000))/100),
		relation.NewFloat(float64(g.rng.Intn(11)) / 100), // 0.00–0.10
		relation.NewString(returnFlags[g.rng.Intn(len(returnFlags))]),
		relation.NewDate(minOrderDate + g.rng.Int63n(maxOrderDate-minOrderDate+1) + shipDelay - 60),
	}
}

// populate loads all base views of w.
func (g *generator) populate(w *core.Warehouse) error {
	g.custCount = int64(g.counts[Customer])
	g.suppCount = int64(g.counts[Supplier])

	load := func(view string, n int, row func(key int64) relation.Tuple) error {
		rows := make([]relation.Tuple, 0, n)
		for i := 0; i < n; i++ {
			rows = append(rows, row(int64(i)))
		}
		g.nextKey[view] = int64(n)
		return w.LoadBase(view, rows)
	}
	if err := load(Region, g.counts[Region], g.regionRow); err != nil {
		return err
	}
	if err := load(Nation, g.counts[Nation], g.nationRow); err != nil {
		return err
	}
	if err := load(Supplier, g.counts[Supplier], g.supplierRow); err != nil {
		return err
	}
	if err := load(Customer, g.counts[Customer], g.customerRow); err != nil {
		return err
	}
	if err := load(Order, g.counts[Order], g.orderRow); err != nil {
		return err
	}
	// LINEITEM: 1–7 lines per order until the expected count is reached.
	var liRows []relation.Tuple
	target := g.counts[LineItem]
	for o := 0; o < g.counts[Order] && len(liRows) < target; o++ {
		lines := 1 + g.rng.Intn(7)
		for ln := 0; ln < lines && len(liRows) < target; ln++ {
			liRows = append(liRows, g.lineItemRow(int64(o), int64(ln)))
		}
	}
	g.nextKey[LineItem] = int64(g.counts[Order]) // next order key for new lines
	return w.LoadBase(LineItem, liRows)
}

// freshRow generates a new row for insertion into a base view, with a fresh
// primary key so it never collides with existing rows.
func (g *generator) freshRow(view string) relation.Tuple {
	key := g.nextKey[view]
	g.nextKey[view] = key + 1
	switch view {
	case Region:
		return g.regionRow(key)
	case Nation:
		return g.nationRow(key)
	case Supplier:
		return g.supplierRow(key)
	case Customer:
		return g.customerRow(key)
	case Order:
		return g.orderRow(key)
	case LineItem:
		// New lineitems attach to fresh synthetic orders (line 0) so keys
		// stay unique without tracking per-order line counts.
		return g.lineItemRow(key+1_000_000_000, 0)
	default:
		panic(fmt.Sprintf("tpcd: unknown base view %q", view))
	}
}
