package tpcd

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/strategy"
)

func smallWarehouse(t *testing.T) *Warehouse {
	t.Helper()
	tw, err := NewWarehouse(Config{SF: 0.001, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return tw
}

func TestNewWarehouseShape(t *testing.T) {
	tw := smallWarehouse(t)
	w := tw.W
	counts := RowCounts(0.001)
	for _, v := range []string{Region, Nation} {
		if got := w.MustView(v).Cardinality(); got != int64(counts[v]) {
			t.Errorf("|%s| = %d, want %d", v, got, counts[v])
		}
	}
	if got := w.MustView(Supplier).Cardinality(); got != 10 {
		t.Errorf("|SUPPLIER| = %d, want 10", got)
	}
	if got := w.MustView(Customer).Cardinality(); got != 150 {
		t.Errorf("|CUSTOMER| = %d, want 150", got)
	}
	if got := w.MustView(Order).Cardinality(); got != 1500 {
		t.Errorf("|ORDER| = %d, want 1500", got)
	}
	li := w.MustView(LineItem).Cardinality()
	if li < 5000 || li > 6000 {
		t.Errorf("|LINEITEM| = %d, want ≈6000 (capped)", li)
	}
	// The summary views must be non-empty (filters hit data).
	for _, q := range DerivedViews {
		if w.MustView(q).Cardinality() == 0 {
			t.Errorf("%s is empty — filters select nothing", q)
		}
	}
	// Level structure of Figure 4: uniform VDAG, one level of summaries.
	if !tw.Graph.IsUniform() || tw.Graph.IsTree() {
		t.Errorf("TPC-D VDAG must be uniform and not a tree")
	}
	if tw.Graph.MaxLevel() != 1 {
		t.Errorf("MaxLevel = %d", tw.Graph.MaxLevel())
	}
	if got := len(tw.Graph.ViewsWithParents()); got != 6 {
		t.Errorf("views with parents = %d, want 6 (the m! optimization)", got)
	}
}

func TestDeterminism(t *testing.T) {
	a := smallWarehouse(t)
	b := smallWarehouse(t)
	for _, v := range append(append([]string{}, BaseViews...), DerivedViews...) {
		ra, rb := a.W.MustView(v).SortedRows(), b.W.MustView(v).SortedRows()
		if len(ra) != len(rb) {
			t.Fatalf("%s: %d vs %d rows across identical seeds", v, len(ra), len(rb))
		}
	}
	// Different seed differs somewhere.
	c, err := NewWarehouse(Config{SF: 0.001, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if c.W.MustView(Q5).Cardinality() == 0 {
		t.Errorf("Q5 empty under different seed")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewWarehouse(Config{SF: 0}); err == nil {
		t.Errorf("zero SF accepted")
	}
	if _, err := NewWarehouse(Config{SF: -1}); err == nil {
		t.Errorf("negative SF accepted")
	}
}

func TestStageChangesUniformDecrease(t *testing.T) {
	tw := smallWarehouse(t)
	sizes, err := tw.StageChanges(UniformDecrease(0.10))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sizes[Region]; ok {
		t.Errorf("REGION should be unchanged")
	}
	for _, v := range []string{Customer, Order, LineItem, Supplier, Nation} {
		card := tw.W.MustView(v).Cardinality()
		want := int64(float64(card) * 0.10)
		if sizes[v] != want {
			t.Errorf("δ%s = %d, want %d", v, sizes[v], want)
		}
		d, err := tw.W.DeltaOf(v)
		if err != nil {
			t.Fatal(err)
		}
		if d.PlusCount() != 0 || d.MinusCount() != want {
			t.Errorf("δ%s composition +%d −%d", v, d.PlusCount(), d.MinusCount())
		}
	}
}

func TestStageChangesMixed(t *testing.T) {
	tw := smallWarehouse(t)
	if _, err := tw.StageChanges(Mixed(0.05, 0.08)); err != nil {
		t.Fatal(err)
	}
	d, err := tw.W.DeltaOf(Customer)
	if err != nil {
		t.Fatal(err)
	}
	if d.MinusCount() == 0 || d.PlusCount() == 0 {
		t.Errorf("mixed changes missing a side: +%d −%d", d.PlusCount(), d.MinusCount())
	}
}

func TestStageChangesValidation(t *testing.T) {
	tw := smallWarehouse(t)
	if _, err := tw.StageChanges(ChangeSpec{DeleteFrac: map[string]float64{Customer: 1.5}}); err == nil {
		t.Errorf("fraction > 1 accepted")
	}
	if _, err := tw.StageChanges(ChangeSpec{InsertFrac: map[string]float64{Customer: -1}}); err == nil {
		t.Errorf("negative insert fraction accepted")
	}
}

// TestDeepVDAG exercises the second-level summaries: the VDAG becomes deep
// and non-uniform, MinWork still plans correctly (falling back to
// ModifyOrdering when the desired ordering yields a cyclic EG), and the
// whole stack verifies against recomputation.
func TestDeepVDAG(t *testing.T) {
	tw, err := NewWarehouse(Config{SF: 0.001, Seed: 42, DeepVDAG: true})
	if err != nil {
		t.Fatal(err)
	}
	g := tw.Graph
	if g.IsUniform() {
		t.Errorf("deep VDAG should not be uniform (NATION_REVENUE spans levels 0 and 1)")
	}
	if g.Level(Q3ByPriority) != 2 || g.Level(NationRevenue) != 2 {
		t.Errorf("levels: %d %d", g.Level(Q3ByPriority), g.Level(NationRevenue))
	}
	if tw.W.MustView(Q3ByPriority).Cardinality() == 0 {
		t.Errorf("Q3_BY_PRIORITY empty")
	}
	if tw.W.MustView(NationRevenue).Cardinality() == 0 {
		t.Errorf("NATION_REVENUE empty")
	}
	if _, err := tw.StageChanges(Mixed(0.07, 0.04)); err != nil {
		t.Fatal(err)
	}
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		t.Fatal(err)
	}
	res, err := planner.MinWork(tw.Graph, stats)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Execute(tw.W, res.Strategy, exec.Options{Validate: true}); err != nil {
		t.Fatal(err)
	}
	if err := tw.W.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	// DeepVDAG with a query subset is rejected.
	if _, err := NewWarehouse(Config{SF: 0.001, DeepVDAG: true, Queries: []string{Q3}}); err == nil {
		t.Errorf("DeepVDAG with subset accepted")
	}
}

// TestFullUpdateWindow runs MinWork end-to-end on the TPC-D warehouse and
// verifies the final state against recomputation — the paper's Experiment 4
// setting at miniature scale.
func TestFullUpdateWindow(t *testing.T) {
	tw := smallWarehouse(t)
	if _, err := tw.StageChanges(UniformDecrease(0.10)); err != nil {
		t.Fatal(err)
	}
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		t.Fatal(err)
	}
	res, err := planner.MinWork(tw.Graph, stats)
	if err != nil {
		t.Fatal(err)
	}
	if res.Modified {
		t.Errorf("uniform VDAG should not need ModifyOrdering")
	}
	// The desired ordering under a uniform fractional decrease follows
	// decreasing view size (the biggest view shrinks the most). At SF 0.001
	// SUPPLIER (10 rows) is smaller than NATION (25), so NATION precedes
	// SUPPLIER; at the paper's full scale the order is L, O, C, S, N, R.
	want := []string{LineItem, Order, Customer, Nation, Supplier, Region}
	for i, v := range want {
		if res.DesiredOrdering[i] != v {
			t.Fatalf("desired ordering = %v, want %v", res.DesiredOrdering, want)
		}
	}
	rep, err := exec.Execute(tw.W, res.Strategy, exec.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalWork() == 0 {
		t.Errorf("no work measured")
	}
	if err := tw.W.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestDualStageAndMinWorkAgree checks that two very different correct
// strategies produce identical final states on TPC-D data.
func TestDualStageAndMinWorkAgree(t *testing.T) {
	tw := smallWarehouse(t)
	if _, err := tw.StageChanges(Mixed(0.08, 0.05)); err != nil {
		t.Fatal(err)
	}
	stats, err := exec.PlanningStats(tw.W)
	if err != nil {
		t.Fatal(err)
	}
	res, err := planner.MinWork(tw.Graph, stats)
	if err != nil {
		t.Fatal(err)
	}
	mw := tw.W.Clone()
	if _, err := exec.Execute(mw, res.Strategy, exec.Options{Validate: true}); err != nil {
		t.Fatal(err)
	}
	ds := tw.W.Clone()
	if _, err := exec.Execute(ds, strategy.DualStageVDAG(tw.Graph), exec.Options{Validate: true}); err != nil {
		t.Fatal(err)
	}
	for _, q := range DerivedViews {
		a, b := mw.MustView(q).SortedRows(), ds.MustView(q).SortedRows()
		if len(a) != len(b) {
			t.Fatalf("%s: MinWork %d rows vs dual-stage %d rows", q, len(a), len(b))
		}
	}
	if err := mw.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if err := ds.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}
