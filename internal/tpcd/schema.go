// Package tpcd provides the TPC-D warehouse of the paper's experiments
// (Figure 4): the six base views REGION, NATION, SUPPLIER, CUSTOMER, ORDER
// and LINEITEM populated with deterministic synthetic data at a
// configurable scale factor, the derived summary views Q3 ("Shipping
// Priority"), Q5 ("Local Supplier Volume") and Q10 ("Returned Item
// Reporting"), and a change generator for the update batches the
// experiments stage (e.g. "each base view decreased in size by 10%").
//
// The paper populated SQL Server with dbgen data; this generator follows
// the TPC-D schema and relative table sizes (5 regions, 25 nations, and
// SF·{10k suppliers, 150k customers, 150k orders·10, ~4 lineitems/order})
// with simplified value distributions — the experiments depend on table
// size ratios and join selectivities, not on the exact dbgen text fields.
package tpcd

import (
	"repro/internal/relation"
)

// View names, matching Figure 4 of the paper.
const (
	Region   = "REGION"
	Nation   = "NATION"
	Supplier = "SUPPLIER"
	Customer = "CUSTOMER"
	Order    = "ORDER"
	LineItem = "LINEITEM"
	Q3       = "Q3"
	Q5       = "Q5"
	Q10      = "Q10"
)

// BaseViews lists the base views in definition order.
var BaseViews = []string{Region, Nation, Supplier, Customer, Order, LineItem}

// DerivedViews lists the summary views.
var DerivedViews = []string{Q3, Q5, Q10}

// Schemas returns the base-view schemas.
func Schemas() map[string]relation.Schema {
	return map[string]relation.Schema{
		Region: {
			{Name: "R_REGIONKEY", Kind: relation.KindInt},
			{Name: "R_NAME", Kind: relation.KindString},
		},
		Nation: {
			{Name: "N_NATIONKEY", Kind: relation.KindInt},
			{Name: "N_NAME", Kind: relation.KindString},
			{Name: "N_REGIONKEY", Kind: relation.KindInt},
		},
		Supplier: {
			{Name: "S_SUPPKEY", Kind: relation.KindInt},
			{Name: "S_NAME", Kind: relation.KindString},
			{Name: "S_NATIONKEY", Kind: relation.KindInt},
			{Name: "S_ACCTBAL", Kind: relation.KindFloat},
		},
		Customer: {
			{Name: "C_CUSTKEY", Kind: relation.KindInt},
			{Name: "C_NAME", Kind: relation.KindString},
			{Name: "C_NATIONKEY", Kind: relation.KindInt},
			{Name: "C_MKTSEGMENT", Kind: relation.KindString},
			{Name: "C_ACCTBAL", Kind: relation.KindFloat},
		},
		Order: {
			{Name: "O_ORDERKEY", Kind: relation.KindInt},
			{Name: "O_CUSTKEY", Kind: relation.KindInt},
			{Name: "O_ORDERDATE", Kind: relation.KindDate},
			{Name: "O_SHIPPRIORITY", Kind: relation.KindInt},
			{Name: "O_TOTALPRICE", Kind: relation.KindFloat},
		},
		LineItem: {
			{Name: "L_ORDERKEY", Kind: relation.KindInt},
			{Name: "L_LINENUMBER", Kind: relation.KindInt},
			{Name: "L_SUPPKEY", Kind: relation.KindInt},
			{Name: "L_EXTENDEDPRICE", Kind: relation.KindFloat},
			{Name: "L_DISCOUNT", Kind: relation.KindFloat},
			{Name: "L_RETURNFLAG", Kind: relation.KindString},
			{Name: "L_SHIPDATE", Kind: relation.KindDate},
		},
	}
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
	"ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
	"IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
	"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
	"SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var returnFlags = []string{"R", "A", "N"}
