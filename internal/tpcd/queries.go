package tpcd

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/relation"
	"repro/internal/vdag"
)

// revenue builds the TPC-D revenue expression
// l_extendedprice · (1 − l_discount) over alias l.
func revenue(b *algebra.Builder) algebra.Expr {
	return &algebra.Binary{
		Op: algebra.OpMul,
		L:  b.Col("l.L_EXTENDEDPRICE"),
		R: &algebra.Binary{
			Op: algebra.OpSub,
			L:  &algebra.Const{Value: relation.NewFloat(1)},
			R:  b.Col("l.L_DISCOUNT"),
		},
	}
}

func lt(l algebra.Expr, r algebra.Expr) algebra.Expr {
	return &algebra.Binary{Op: algebra.OpLt, L: l, R: r}
}
func ge(l algebra.Expr, r algebra.Expr) algebra.Expr {
	return &algebra.Binary{Op: algebra.OpGe, L: l, R: r}
}
func gt(l algebra.Expr, r algebra.Expr) algebra.Expr {
	return &algebra.Binary{Op: algebra.OpGt, L: l, R: r}
}
func dateConst(s string) algebra.Expr {
	return &algebra.Const{Value: relation.MustDate(s)}
}

// Q3Def defines the "Shipping Priority" summary view over CUSTOMER, ORDER
// and LINEITEM:
//
//	SELECT L_ORDERKEY, O_ORDERDATE, O_SHIPPRIORITY,
//	       SUM(L_EXTENDEDPRICE·(1−L_DISCOUNT)) AS REVENUE
//	FROM CUSTOMER c, ORDER o, LINEITEM l
//	WHERE c.C_MKTSEGMENT = 'BUILDING'
//	  AND c.C_CUSTKEY = o.O_CUSTKEY AND l.L_ORDERKEY = o.O_ORDERKEY
//	  AND o.O_ORDERDATE < '1995-03-15' AND l.L_SHIPDATE > '1995-03-15'
//	GROUP BY L_ORDERKEY, O_ORDERDATE, O_SHIPPRIORITY
func Q3Def() *algebra.CQ {
	s := Schemas()
	b := algebra.NewBuilder().
		From("c", Customer, s[Customer]).
		From("o", Order, s[Order]).
		From("l", LineItem, s[LineItem])
	b.WhereEq("c.C_MKTSEGMENT", relation.NewString("BUILDING")).
		Join("c.C_CUSTKEY", "o.O_CUSTKEY").
		Join("l.L_ORDERKEY", "o.O_ORDERKEY").
		Where(lt(b.Col("o.O_ORDERDATE"), dateConst("1995-03-15"))).
		Where(gt(b.Col("l.L_SHIPDATE"), dateConst("1995-03-15"))).
		GroupByCol("l.L_ORDERKEY").
		GroupByCol("o.O_ORDERDATE").
		GroupByCol("o.O_SHIPPRIORITY").
		Agg("REVENUE", delta.AggSum, revenue(b))
	return b.MustBuild()
}

// Q5Def defines the "Local Supplier Volume" summary view over all six base
// views:
//
//	SELECT N_NAME, SUM(L_EXTENDEDPRICE·(1−L_DISCOUNT)) AS REVENUE
//	FROM CUSTOMER c, ORDER o, LINEITEM l, SUPPLIER s, NATION n, REGION r
//	WHERE c.C_CUSTKEY = o.O_CUSTKEY AND l.L_ORDERKEY = o.O_ORDERKEY
//	  AND l.L_SUPPKEY = s.S_SUPPKEY AND c.C_NATIONKEY = s.S_NATIONKEY
//	  AND s.S_NATIONKEY = n.N_NATIONKEY AND n.N_REGIONKEY = r.R_REGIONKEY
//	  AND r.R_NAME = 'ASIA'
//	  AND o.O_ORDERDATE >= '1994-01-01' AND o.O_ORDERDATE < '1995-01-01'
//	GROUP BY N_NAME
func Q5Def() *algebra.CQ {
	s := Schemas()
	b := algebra.NewBuilder().
		From("c", Customer, s[Customer]).
		From("o", Order, s[Order]).
		From("l", LineItem, s[LineItem]).
		From("s", Supplier, s[Supplier]).
		From("n", Nation, s[Nation]).
		From("r", Region, s[Region])
	b.Join("c.C_CUSTKEY", "o.O_CUSTKEY").
		Join("l.L_ORDERKEY", "o.O_ORDERKEY").
		Join("l.L_SUPPKEY", "s.S_SUPPKEY").
		Join("c.C_NATIONKEY", "s.S_NATIONKEY").
		Join("s.S_NATIONKEY", "n.N_NATIONKEY").
		Join("n.N_REGIONKEY", "r.R_REGIONKEY").
		WhereEq("r.R_NAME", relation.NewString("ASIA")).
		Where(ge(b.Col("o.O_ORDERDATE"), dateConst("1994-01-01"))).
		Where(lt(b.Col("o.O_ORDERDATE"), dateConst("1995-01-01"))).
		GroupByCol("n.N_NAME").
		Agg("REVENUE", delta.AggSum, revenue(b))
	return b.MustBuild()
}

// Q10Def defines the "Returned Item Reporting" summary view over CUSTOMER,
// ORDER, LINEITEM and NATION:
//
//	SELECT C_CUSTKEY, C_NAME, C_ACCTBAL, N_NAME,
//	       SUM(L_EXTENDEDPRICE·(1−L_DISCOUNT)) AS REVENUE
//	FROM CUSTOMER c, ORDER o, LINEITEM l, NATION n
//	WHERE c.C_CUSTKEY = o.O_CUSTKEY AND l.L_ORDERKEY = o.O_ORDERKEY
//	  AND o.O_ORDERDATE >= '1993-10-01' AND o.O_ORDERDATE < '1994-01-01'
//	  AND l.L_RETURNFLAG = 'R' AND c.C_NATIONKEY = n.N_NATIONKEY
//	GROUP BY C_CUSTKEY, C_NAME, C_ACCTBAL, N_NAME
func Q10Def() *algebra.CQ {
	s := Schemas()
	b := algebra.NewBuilder().
		From("c", Customer, s[Customer]).
		From("o", Order, s[Order]).
		From("l", LineItem, s[LineItem]).
		From("n", Nation, s[Nation])
	b.Join("c.C_CUSTKEY", "o.O_CUSTKEY").
		Join("l.L_ORDERKEY", "o.O_ORDERKEY").
		Where(ge(b.Col("o.O_ORDERDATE"), dateConst("1993-10-01"))).
		Where(lt(b.Col("o.O_ORDERDATE"), dateConst("1994-01-01"))).
		WhereEq("l.L_RETURNFLAG", relation.NewString("R")).
		Join("c.C_NATIONKEY", "n.N_NATIONKEY").
		GroupByCol("c.C_CUSTKEY").
		GroupByCol("c.C_NAME").
		GroupByCol("c.C_ACCTBAL").
		GroupByCol("n.N_NAME").
		Agg("REVENUE", delta.AggSum, revenue(b))
	return b.MustBuild()
}

// Definitions returns the three summary-view definitions keyed by name.
func Definitions() map[string]*algebra.CQ {
	return map[string]*algebra.CQ{Q3: Q3Def(), Q5: Q5Def(), Q10: Q10Def()}
}

// Second-level summary views. The paper notes that "derived views that
// further summarize Q3, Q5 and Q10 can also be defined"; these two make the
// VDAG deep and non-uniform, which exercises the MinWork fallback path
// (cyclic expression graphs repaired by ModifyOrdering) on realistic data.
const (
	// Q3ByPriority rolls Q3 up by ship priority (Level 2, over Level 1).
	Q3ByPriority = "Q3_BY_PRIORITY"
	// NationRevenue joins the Level-1 Q5 with the Level-0 NATION — a
	// mixed-level definition, so the deep VDAG is not uniform.
	NationRevenue = "NATION_REVENUE"
)

// Q3ByPriorityDef summarizes Q3: total revenue per ship priority.
func Q3ByPriorityDef() *algebra.CQ {
	q3Schema := Q3Def().OutputSchema()
	b := algebra.NewBuilder().From("q", Q3, q3Schema)
	b.GroupByCol("q.O_SHIPPRIORITY").
		Agg("TOTAL", delta.AggSum, b.Col("q.REVENUE")).
		Agg("ORDERS", delta.AggCount, nil)
	return b.MustBuild()
}

// NationRevenueDef joins Q5's per-nation revenue back to NATION rows.
func NationRevenueDef() *algebra.CQ {
	s := Schemas()
	q5Schema := Q5Def().OutputSchema()
	b := algebra.NewBuilder().
		From("q", Q5, q5Schema).
		From("n", Nation, s[Nation])
	b.Join("q.N_NAME", "n.N_NAME").
		Where(gt(b.Col("q.REVENUE"), &algebra.Const{Value: relation.NewFloat(0)})).
		SelectCol("n.N_NATIONKEY").
		SelectCol("n.N_NAME").
		SelectCol("q.REVENUE")
	return b.MustBuild()
}

// Warehouse holds the assembled TPC-D warehouse plus its generator (for
// change batches) and VDAG.
type Warehouse struct {
	W     *core.Warehouse
	Graph *vdag.Graph
	gen   *generator
}

// NewWarehouse builds the Figure 4 warehouse: six base views populated at
// cfg.SF, and Q3, Q5 and Q10 materialized on top.
func NewWarehouse(cfg Config) (*Warehouse, error) {
	if cfg.SF <= 0 {
		return nil, fmt.Errorf("tpcd: scale factor must be positive, got %v", cfg.SF)
	}
	w := core.New(core.Options{
		SkipEmptyDeltas:   cfg.SkipEmptyDeltas,
		UseIndexes:        cfg.UseIndexes,
		ParallelTerms:     cfg.ParallelTerms,
		Workers:           cfg.Workers,
		ShareComputation:  cfg.ShareComputation,
		SharedBudgetBytes: cfg.SharedBudgetBytes,
		MemoryBudgetBytes: cfg.MemoryBudgetBytes,
	})
	schemas := Schemas()
	for _, name := range BaseViews {
		if err := w.DefineBase(name, schemas[name]); err != nil {
			return nil, err
		}
	}
	defs := Definitions()
	queries := cfg.Queries
	if queries == nil {
		queries = DerivedViews
	}
	for _, name := range queries {
		def, ok := defs[name]
		if !ok {
			return nil, fmt.Errorf("tpcd: unknown summary view %q", name)
		}
		if err := w.DefineDerived(name, def); err != nil {
			return nil, err
		}
	}
	if cfg.DeepVDAG {
		if cfg.Queries != nil {
			return nil, fmt.Errorf("tpcd: DeepVDAG requires the full query set (leave Queries nil)")
		}
		if err := w.DefineDerived(Q3ByPriority, Q3ByPriorityDef()); err != nil {
			return nil, err
		}
		if err := w.DefineDerived(NationRevenue, NationRevenueDef()); err != nil {
			return nil, err
		}
	}
	gen := newGenerator(cfg)
	if err := gen.populate(w); err != nil {
		return nil, err
	}
	if err := w.RefreshAll(); err != nil {
		return nil, err
	}
	gb := vdag.NewBuilder()
	for _, name := range w.ViewNames() {
		if err := gb.Add(name, w.Children(name)); err != nil {
			return nil, err
		}
	}
	return &Warehouse{W: w, Graph: gb.Build(), gen: gen}, nil
}
