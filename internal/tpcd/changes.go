package tpcd

import (
	"fmt"
	"math/rand"

	"repro/internal/delta"
)

// ChangeSpec describes the change batch to stage on the base views, as
// fractions of each view's current size.
type ChangeSpec struct {
	// DeleteFrac[view] is the fraction of existing rows to delete.
	DeleteFrac map[string]float64
	// InsertFrac[view] is the fraction (of current size) of fresh rows to
	// insert.
	InsertFrac map[string]float64
	// Seed drives row selection; change batches are deterministic.
	Seed int64
}

// UniformDecrease returns the paper's default workload: CUSTOMER, ORDER,
// LINEITEM, SUPPLIER and NATION each decreased in size by fraction p;
// REGION (the smallest view) left unchanged.
func UniformDecrease(p float64) ChangeSpec {
	return ChangeSpec{
		DeleteFrac: map[string]float64{
			Customer: p, Order: p, LineItem: p, Supplier: p, Nation: p,
		},
		Seed: 1,
	}
}

// COLDecrease returns Experiment 3's workload: only CUSTOMER, ORDER and
// LINEITEM decreased by fraction p.
func COLDecrease(p float64) ChangeSpec {
	return ChangeSpec{
		DeleteFrac: map[string]float64{Customer: p, Order: p, LineItem: p},
		Seed:       1,
	}
}

// Mixed returns a workload with both deletions and insertions on the fact
// and dimension tables.
func Mixed(deleteP, insertP float64) ChangeSpec {
	return ChangeSpec{
		DeleteFrac: map[string]float64{Customer: deleteP, Order: deleteP, LineItem: deleteP, Supplier: deleteP},
		InsertFrac: map[string]float64{Customer: insertP, Order: insertP, LineItem: insertP, Supplier: insertP},
		Seed:       1,
	}
}

// StageChanges generates and stages a change batch per spec. It returns the
// per-view staged delta sizes. The warehouse state itself is not modified
// (changes are only staged; an update strategy must propagate and install
// them).
func (t *Warehouse) StageChanges(spec ChangeSpec) (map[string]int64, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	sizes := make(map[string]int64)
	for _, view := range BaseViews {
		df := spec.DeleteFrac[view]
		inf := spec.InsertFrac[view]
		if df < 0 || df > 1 || inf < 0 {
			return nil, fmt.Errorf("tpcd: bad change fractions for %s: delete %v insert %v", view, df, inf)
		}
		if df == 0 && inf == 0 {
			continue
		}
		v := t.W.MustView(view)
		d := delta.New(v.Schema())
		if df > 0 {
			// Delete a deterministic sample of distinct existing rows.
			rows := v.SortedRows()
			target := int64(float64(v.Cardinality()) * df)
			perm := rng.Perm(len(rows))
			var deleted int64
			for _, idx := range perm {
				if deleted >= target {
					break
				}
				d.Add(rows[idx].Tuple, -rows[idx].Count)
				deleted += rows[idx].Count
			}
		}
		if inf > 0 {
			n := int(float64(v.Cardinality()) * inf)
			for i := 0; i < n; i++ {
				d.Add(t.gen.freshRow(view), 1)
			}
		}
		if err := t.W.StageDelta(view, d); err != nil {
			return nil, err
		}
		sizes[view] = d.Size()
	}
	return sizes, nil
}
