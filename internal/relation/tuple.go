package relation

import (
	"fmt"
	"strings"
)

// Tuple is a row of values laid out according to some Schema.
type Tuple []Value

// Encode returns an injective, self-delimiting binary encoding of the tuple,
// suitable for use as a map key. Two tuples encode equal iff every value
// compares Equal positionally.
func (t Tuple) Encode() string {
	return string(t.AppendEncoded(make([]byte, 0, 16*len(t))))
}

// AppendEncoded appends the tuple's Encode bytes to dst and returns the
// extended slice. It is the zero-allocation form of Encode for hot paths
// that reuse a scratch buffer across rows (hash-join probing, sink
// sharding).
func (t Tuple) AppendEncoded(dst []byte) []byte {
	for _, v := range t {
		dst = v.appendEncoded(dst)
	}
	return dst
}

// DecodeTuple reverses Tuple.Encode.
func DecodeTuple(enc string) (Tuple, error) {
	src := []byte(enc)
	var t Tuple
	for len(src) > 0 {
		v, rest, err := decodeValue(src)
		if err != nil {
			return nil, err
		}
		t = append(t, v)
		src = rest
	}
	return t, nil
}

// Clone returns a copy of the tuple that shares no backing array.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Concat returns the concatenation of t and u as a fresh tuple.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// Project returns the tuple restricted to the given column indexes.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// CompareTuples orders tuples lexicographically; shorter tuples sort first on
// ties of the shared prefix.
func CompareTuples(a, b Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of named, typed columns.
type Schema []Column

// ColumnIndex returns the index of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustColumnIndex is ColumnIndex that panics on a missing column; for use
// where the binder has already validated names.
func (s Schema) MustColumnIndex(name string) int {
	i := s.ColumnIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("relation: no column %q in schema %v", name, s.Names()))
	}
	return i
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Clone returns an independent copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Concat returns the schema of a concatenated tuple.
func (s Schema) Concat(o Schema) Schema {
	out := make(Schema, 0, len(s)+len(o))
	out = append(out, s...)
	out = append(out, o...)
	return out
}

// Equal reports whether two schemas have identical column names and kinds.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Qualify returns a copy of the schema with every column renamed to
// "alias.name". Binder output uses qualified names throughout so joins of
// same-named columns stay unambiguous.
func (s Schema) Qualify(alias string) Schema {
	out := make(Schema, len(s))
	for i, c := range s {
		out[i] = Column{Name: alias + "." + c.Name, Kind: c.Kind}
	}
	return out
}

// String renders the schema as "name KIND, ...".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Name + " " + c.Kind.String()
	}
	return strings.Join(parts, ", ")
}
