package relation

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestValueAccessors(t *testing.T) {
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("Int() = %d, want 42", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float() = %v, want 2.5", got)
	}
	if got := NewInt(7).Float(); got != 7 {
		t.Errorf("Float() on int = %v, want 7", got)
	}
	if got := NewString("abc").Str(); got != "abc" {
		t.Errorf("Str() = %q, want abc", got)
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Errorf("Bool accessors wrong")
	}
	if !Null.IsNull() || NewInt(0).IsNull() {
		t.Errorf("IsNull wrong")
	}
	d := MustDate("1995-03-15")
	if d.Kind() != KindDate {
		t.Fatalf("MustDate kind = %v", d.Kind())
	}
	if d.String() != "1995-03-15" {
		t.Errorf("date round trip = %q", d.String())
	}
}

func TestDateParseError(t *testing.T) {
	if _, err := DateFromString("not-a-date"); err == nil {
		t.Errorf("expected error for bad date")
	}
}

func TestValuePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { NewString("x").Int() })
	mustPanic("Str on int", func() { NewInt(1).Str() })
	mustPanic("Bool on int", func() { NewInt(1).Bool() })
	mustPanic("Days on int", func() { NewInt(1).Days() })
	mustPanic("Float on string", func() { NewString("x").Float() })
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(1.5), 1},
		{NewFloat(2), NewInt(2), 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewDate(10), NewDate(11), -1},
		{NewBool(false), NewBool(true), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareDifferentKindsIsAntisymmetric(t *testing.T) {
	vals := []Value{Null, NewInt(3), NewFloat(3.5), NewString("s"), NewDate(100), NewBool(true)}
	for _, a := range vals {
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Errorf("Compare(%v,%v) not antisymmetric", a, b)
			}
		}
	}
}

func TestTupleEncodeRoundTrip(t *testing.T) {
	orig := Tuple{NewInt(-5), NewFloat(math.Pi), NewString("héllo"), Null, NewDate(9000), NewBool(true)}
	dec, err := DecodeTuple(orig.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if CompareTuples(orig, dec) != 0 {
		t.Errorf("round trip mismatch: %v vs %v", orig, dec)
	}
}

func TestEncodeInjective(t *testing.T) {
	// Strings that could collide with ints under naive encodings.
	a := Tuple{NewString("ab"), NewString("c")}
	b := Tuple{NewString("a"), NewString("bc")}
	if a.Encode() == b.Encode() {
		t.Errorf("encoding not injective for split strings")
	}
	c := Tuple{NewInt(0)}
	d := Tuple{NewFloat(0)}
	if c.Encode() == d.Encode() {
		t.Errorf("encoding conflates int 0 and float 0")
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	bad := []string{"\x01", "\x03\x00\x00\x00\x00\x00\x00\x00\x05ab", "\xff", "\x03\x00"}
	for _, s := range bad {
		if _, err := DecodeTuple(s); err == nil {
			t.Errorf("DecodeTuple(%q): expected error", s)
		}
	}
}

func TestEncodeRoundTripQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, d int32, b bool) bool {
		if math.IsNaN(fl) {
			fl = 0
		}
		tup := Tuple{NewInt(i), NewFloat(fl), NewString(s), NewDate(int64(d)), NewBool(b)}
		dec, err := DecodeTuple(tup.Encode())
		if err != nil {
			return false
		}
		return CompareTuples(tup, dec) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeInjectiveQuick(t *testing.T) {
	f := func(a1, b1 int64, a2, b2 string) bool {
		ta := Tuple{NewInt(a1), NewString(a2)}
		tb := Tuple{NewInt(b1), NewString(b2)}
		same := a1 == b1 && a2 == b2
		return (ta.Encode() == tb.Encode()) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleOps(t *testing.T) {
	a := Tuple{NewInt(1), NewInt(2)}
	b := Tuple{NewInt(3)}
	c := a.Concat(b)
	if len(c) != 3 || c[2].Int() != 3 {
		t.Errorf("Concat wrong: %v", c)
	}
	cl := a.Clone()
	cl[0] = NewInt(99)
	if a[0].Int() != 1 {
		t.Errorf("Clone aliases backing array")
	}
	p := c.Project([]int{2, 0})
	if p[0].Int() != 3 || p[1].Int() != 1 {
		t.Errorf("Project wrong: %v", p)
	}
	if a.String() != "(1, 2)" {
		t.Errorf("String = %q", a.String())
	}
}

func TestCompareTuplesLexicographic(t *testing.T) {
	tuples := []Tuple{
		{NewInt(2), NewInt(1)},
		{NewInt(1)},
		{NewInt(1), NewInt(9)},
		{NewInt(1), NewInt(2)},
	}
	sort.Slice(tuples, func(i, j int) bool { return CompareTuples(tuples[i], tuples[j]) < 0 })
	want := []string{"(1)", "(1, 2)", "(1, 9)", "(2, 1)"}
	for i, w := range want {
		if tuples[i].String() != w {
			t.Errorf("sorted[%d] = %v, want %s", i, tuples[i], w)
		}
	}
}

func TestSchemaOps(t *testing.T) {
	s := Schema{{"a", KindInt}, {"b", KindString}}
	if s.ColumnIndex("b") != 1 || s.ColumnIndex("z") != -1 {
		t.Errorf("ColumnIndex wrong")
	}
	if s.MustColumnIndex("a") != 0 {
		t.Errorf("MustColumnIndex wrong")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustColumnIndex should panic on missing column")
		}
	}()
	q := s.Qualify("T")
	if q[0].Name != "T.a" || q[1].Name != "T.b" {
		t.Errorf("Qualify wrong: %v", q)
	}
	if !s.Equal(s.Clone()) {
		t.Errorf("Clone not Equal")
	}
	if s.Equal(q) {
		t.Errorf("Equal should distinguish qualified schema")
	}
	cat := s.Concat(q)
	if len(cat) != 4 || cat[2].Name != "T.a" {
		t.Errorf("Concat wrong: %v", cat)
	}
	if got := s.String(); got != "a INTEGER, b VARCHAR" {
		t.Errorf("String = %q", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" {
		t.Errorf("Names = %v", names)
	}
	s.MustColumnIndex("zzz") // panics
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "FLOAT",
		KindString: "VARCHAR", KindDate: "DATE", KindBool: "BOOLEAN", Kind(99): "Kind(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL": Null, "5": NewInt(5), "2.5": NewFloat(2.5),
		"x": NewString("x"), "true": NewBool(true), "false": NewBool(false),
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("String() = %q, want %q", v.String(), want)
		}
	}
}
