// Package relation provides the value, tuple and schema primitives shared by
// every layer of the warehouse engine: typed scalar values, fixed-schema
// tuples, deterministic tuple encoding (used as map keys by the counted bag
// tables and delta relations), and ordering.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the scalar types the engine supports.
type Kind uint8

const (
	// KindNull is the type of the SQL NULL value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is an immutable byte string.
	KindString
	// KindDate is a calendar date stored as days since 1970-01-01.
	KindDate
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a scalar runtime value. The zero Value is NULL.
//
// Value is a small struct rather than an interface so that tuples are flat
// slices with no per-value heap allocation; this matters because the engine's
// work model is "scan operands once" and value handling dominates scans.
type Value struct {
	kind Kind
	i    int64 // int, date (days since epoch), bool (0/1)
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	if v {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool}
}

// NewDate returns a date value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{kind: KindDate, i: days} }

// DateFromString parses a YYYY-MM-DD date.
func DateFromString(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("relation: bad date %q: %w", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// MustDate parses a YYYY-MM-DD date and panics on error. It is intended for
// literals in tests and generators.
func MustDate(s string) Value {
	v, err := DateFromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if the value is not an integer
// or a date.
func (v Value) Int() int64 {
	if v.kind != KindInt && v.kind != KindDate {
		panic(fmt.Sprintf("relation: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the float payload, widening integers.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindDate:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("relation: Float() on %s value", v.kind))
	}
}

// Str returns the string payload. It panics if the value is not a string.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("relation: Str() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics if the value is not a boolean.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("relation: Bool() on %s value", v.kind))
	}
	return v.i != 0
}

// Days returns the date payload as days since the epoch. It panics if the
// value is not a date.
func (v Value) Days() int64 {
	if v.kind != KindDate {
		panic(fmt.Sprintf("relation: Days() on %s value", v.kind))
	}
	return v.i
}

// numericKinds reports whether both kinds can be compared numerically.
func numericKinds(a, b Kind) bool {
	num := func(k Kind) bool { return k == KindInt || k == KindFloat }
	return num(a) && num(b)
}

// Compare orders two values. NULL sorts before everything; values of
// different non-numeric kinds compare by kind. Integers and floats compare
// numerically with each other.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.kind != b.kind {
		if numericKinds(a.kind, b.kind) {
			return cmpFloat(a.Float(), b.Float())
		}
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindInt, KindDate, KindBool:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	case KindFloat:
		return cmpFloat(a.f, b.f)
	case KindString:
		return strings.Compare(a.s, b.s)
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindDate:
		return time.Unix(v.i*86400, 0).UTC().Format("2006-01-02")
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// appendEncoded appends a self-delimiting binary encoding of v to dst. The
// encoding is injective across values of all kinds, which is what the counted
// bag tables require of their map keys.
func (v Value) appendEncoded(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindInt, KindDate, KindBool:
		dst = appendUint64(dst, uint64(v.i))
	case KindFloat:
		dst = appendUint64(dst, math.Float64bits(v.f))
	case KindString:
		dst = appendUint64(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	}
	return dst
}

func appendUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

func decodeUint64(src []byte) (uint64, []byte) {
	u := uint64(src[0])<<56 | uint64(src[1])<<48 | uint64(src[2])<<40 | uint64(src[3])<<32 |
		uint64(src[4])<<24 | uint64(src[5])<<16 | uint64(src[6])<<8 | uint64(src[7])
	return u, src[8:]
}

// decodeValue decodes one value from src, returning the remainder.
func decodeValue(src []byte) (Value, []byte, error) {
	if len(src) == 0 {
		return Null, nil, fmt.Errorf("relation: truncated value encoding")
	}
	k := Kind(src[0])
	src = src[1:]
	switch k {
	case KindNull:
		return Null, src, nil
	case KindInt, KindDate, KindBool:
		if len(src) < 8 {
			return Null, nil, fmt.Errorf("relation: truncated %s encoding", k)
		}
		u, rest := decodeUint64(src)
		return Value{kind: k, i: int64(u)}, rest, nil
	case KindFloat:
		if len(src) < 8 {
			return Null, nil, fmt.Errorf("relation: truncated FLOAT encoding")
		}
		u, rest := decodeUint64(src)
		return Value{kind: k, f: math.Float64frombits(u)}, rest, nil
	case KindString:
		if len(src) < 8 {
			return Null, nil, fmt.Errorf("relation: truncated VARCHAR length")
		}
		n, rest := decodeUint64(src)
		if uint64(len(rest)) < n {
			return Null, nil, fmt.Errorf("relation: truncated VARCHAR payload")
		}
		return Value{kind: k, s: string(rest[:n])}, rest[n:], nil
	default:
		return Null, nil, fmt.Errorf("relation: unknown kind byte %d", k)
	}
}
