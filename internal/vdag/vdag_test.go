package vdag

import (
	"reflect"
	"testing"
)

// fig3 is the tree VDAG of Figure 3/6: V4 over {V2,V3}, V5 over {V4,V1}.
func fig3(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	for _, v := range []string{"V1", "V2", "V3"} {
		if err := b.Add(v, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Add("V4", []string{"V2", "V3"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add("V5", []string{"V4", "V1"}); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

// tpcd is the uniform VDAG of Figure 4.
func tpcd(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	for _, v := range []string{"O", "L", "C", "S", "N", "R"} {
		if err := b.Add(v, nil); err != nil {
			t.Fatal(err)
		}
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.Add("Q3", []string{"C", "O", "L"}))
	must(b.Add("Q5", []string{"C", "O", "L", "S", "N", "R"}))
	must(b.Add("Q10", []string{"C", "O", "L", "N"}))
	return b.Build()
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if err := b.Add("", nil); err == nil {
		t.Errorf("empty name accepted")
	}
	if err := b.Add("A", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Add("A", nil); err == nil {
		t.Errorf("duplicate accepted")
	}
	if err := b.Add("B", []string{"Z"}); err == nil {
		t.Errorf("unknown child accepted")
	}
	if err := b.Add("B", []string{"A", "A"}); err == nil {
		t.Errorf("duplicate child accepted")
	}
}

func TestLevels(t *testing.T) {
	g := fig3(t)
	want := map[string]int{"V1": 0, "V2": 0, "V3": 0, "V4": 1, "V5": 2}
	for v, l := range want {
		if g.Level(v) != l {
			t.Errorf("Level(%s) = %d, want %d", v, g.Level(v), l)
		}
	}
	if g.MaxLevel() != 2 {
		t.Errorf("MaxLevel = %d", g.MaxLevel())
	}
	tg := tpcd(t)
	if tg.MaxLevel() != 1 || tg.Level("Q5") != 1 || tg.Level("L") != 0 {
		t.Errorf("tpcd levels wrong")
	}
}

func TestAdjacency(t *testing.T) {
	g := fig3(t)
	if !reflect.DeepEqual(g.Children("V4"), []string{"V2", "V3"}) {
		t.Errorf("Children(V4) = %v", g.Children("V4"))
	}
	if !reflect.DeepEqual(g.Parents("V4"), []string{"V5"}) {
		t.Errorf("Parents(V4) = %v", g.Parents("V4"))
	}
	if !g.IsBase("V1") || g.IsBase("V4") || !g.IsDerived("V5") || g.IsDerived("V2") {
		t.Errorf("base/derived classification wrong")
	}
	if !reflect.DeepEqual(g.BaseViews(), []string{"V1", "V2", "V3"}) {
		t.Errorf("BaseViews = %v", g.BaseViews())
	}
	if !reflect.DeepEqual(g.DerivedViews(), []string{"V4", "V5"}) {
		t.Errorf("DerivedViews = %v", g.DerivedViews())
	}
	if !g.Has("V1") || g.Has("nope") {
		t.Errorf("Has wrong")
	}
	if !reflect.DeepEqual(g.ViewsWithParents(), []string{"V1", "V2", "V3", "V4"}) {
		t.Errorf("ViewsWithParents = %v", g.ViewsWithParents())
	}
}

func TestTreeUniformClassification(t *testing.T) {
	g := fig3(t)
	if !g.IsTree() {
		t.Errorf("fig3 should be a tree VDAG")
	}
	if g.IsUniform() {
		t.Errorf("fig3 is not uniform (V5 spans levels 0 and 1)")
	}
	tg := tpcd(t)
	if tg.IsTree() {
		t.Errorf("tpcd is not a tree (C has three parents)")
	}
	if !tg.IsUniform() {
		t.Errorf("tpcd should be uniform")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := fig3(t)
	if got := g.Ancestors("V5"); !reflect.DeepEqual(got, []string{"V1", "V2", "V3", "V4"}) {
		t.Errorf("Ancestors(V5) = %v", got)
	}
	if got := g.Descendants("V2"); !reflect.DeepEqual(got, []string{"V4", "V5"}) {
		t.Errorf("Descendants(V2) = %v", got)
	}
	if got := g.Ancestors("V1"); len(got) != 0 {
		t.Errorf("Ancestors(V1) = %v", got)
	}
}

func TestSortByLevel(t *testing.T) {
	g := fig3(t)
	in := []string{"V5", "V2", "V4", "V1", "V3"}
	got := g.SortByLevel(in)
	want := []string{"V2", "V1", "V3", "V4", "V5"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortByLevel = %v, want %v", got, want)
	}
	// Input must be untouched.
	if !reflect.DeepEqual(in, []string{"V5", "V2", "V4", "V1", "V3"}) {
		t.Errorf("SortByLevel mutated input")
	}
}

func TestMustBuildAndString(t *testing.T) {
	g := MustBuild(
		[2]interface{}{"A", nil},
		[2]interface{}{"B", []string{"A"}},
	)
	if !g.IsTree() || !g.IsUniform() {
		t.Errorf("chain misclassified")
	}
	if s := g.String(); s != "A; B <- (A)" {
		t.Errorf("String = %q", s)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustBuild should panic on bad input")
		}
	}()
	MustBuild([2]interface{}{"X", []string{"missing"}})
}

func TestWithoutViews(t *testing.T) {
	g := fig3(t)
	sub, err := g.WithoutViews(map[string]bool{"V5": true})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Has("V5") || !sub.Has("V4") || len(sub.Views()) != 4 {
		t.Errorf("subgraph = %s", sub)
	}
	if !sub.IsTree() || sub.MaxLevel() != 1 {
		t.Errorf("subgraph shape wrong: %s", sub)
	}
	// Removing V4 while keeping V5 (defined over it) must fail.
	if _, err := g.WithoutViews(map[string]bool{"V4": true}); err == nil {
		t.Errorf("dangling reference accepted")
	}
	// Removing both works.
	sub, err = g.WithoutViews(map[string]bool{"V4": true, "V5": true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Views()) != 3 || len(sub.DerivedViews()) != 0 {
		t.Errorf("subgraph = %s", sub)
	}
	// Removing nothing returns an equivalent graph.
	sub, err = g.WithoutViews(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Views()) != 5 {
		t.Errorf("full copy = %s", sub)
	}
}

func TestViewsCopies(t *testing.T) {
	g := fig3(t)
	vs := g.Views()
	vs[0] = "mutated"
	if g.Views()[0] != "V1" {
		t.Errorf("Views returns aliased slice")
	}
	cs := g.Children("V4")
	cs[0] = "mutated"
	if g.Children("V4")[0] != "V2" {
		t.Errorf("Children returns aliased slice")
	}
}
