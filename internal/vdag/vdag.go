// Package vdag models the view directed acyclic graph (VDAG) of Section 2
// of the paper: nodes are materialized views; an edge Vj → Vi means Vj is
// defined over Vi. Views with no outgoing edges are base views; the rest are
// derived views. The package computes Level values, classifies tree VDAGs
// and uniform VDAGs (the classes for which MinWork is provably optimal,
// Lemmas 5.1 and 5.2), and provides the orderings the planners need.
package vdag

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is an immutable-after-build VDAG.
type Graph struct {
	names    []string            // insertion order
	children map[string][]string // view -> views it is defined over
	parents  map[string][]string // view -> views defined over it
	level    map[string]int
	maxLevel int
}

// Builder accumulates views and edges for a Graph.
type Builder struct {
	names    []string
	children map[string][]string
	seen     map[string]bool
}

// NewBuilder starts an empty VDAG.
func NewBuilder() *Builder {
	return &Builder{children: make(map[string][]string), seen: make(map[string]bool)}
}

// Add registers a view with the (distinct, ordered) views it is defined
// over; base views pass an empty list. Children must have been added before
// their parents, so insertion order is always a topological order.
func (b *Builder) Add(view string, over []string) error {
	if view == "" {
		return fmt.Errorf("vdag: empty view name")
	}
	if b.seen[view] {
		return fmt.Errorf("vdag: view %q added twice", view)
	}
	dup := make(map[string]bool)
	for _, c := range over {
		if !b.seen[c] {
			return fmt.Errorf("vdag: view %q defined over unknown view %q (children must be added first)", view, c)
		}
		if dup[c] {
			return fmt.Errorf("vdag: view %q lists child %q twice", view, c)
		}
		dup[c] = true
	}
	b.seen[view] = true
	b.names = append(b.names, view)
	b.children[view] = append([]string(nil), over...)
	return nil
}

// Build finalizes the graph.
func (b *Builder) Build() *Graph {
	g := &Graph{
		names:    append([]string(nil), b.names...),
		children: make(map[string][]string, len(b.names)),
		parents:  make(map[string][]string, len(b.names)),
		level:    make(map[string]int, len(b.names)),
	}
	for _, n := range b.names {
		g.children[n] = append([]string(nil), b.children[n]...)
	}
	for _, n := range g.names {
		for _, c := range g.children[n] {
			g.parents[c] = append(g.parents[c], n)
		}
	}
	// Level(V) = max distance to a base view; insertion order is
	// topological so one pass suffices.
	for _, n := range g.names {
		l := 0
		for _, c := range g.children[n] {
			if g.level[c]+1 > l {
				l = g.level[c] + 1
			}
		}
		g.level[n] = l
		if l > g.maxLevel {
			g.maxLevel = l
		}
	}
	return g
}

// MustBuild builds a Graph from (view, children) pairs, panicking on error;
// convenient for tests and static examples.
func MustBuild(pairs ...[2]interface{}) *Graph {
	b := NewBuilder()
	for _, p := range pairs {
		name := p[0].(string)
		var over []string
		if p[1] != nil {
			over = p[1].([]string)
		}
		if err := b.Add(name, over); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// Views returns all view names in topological (insertion) order.
func (g *Graph) Views() []string { return append([]string(nil), g.names...) }

// Has reports whether the view exists.
func (g *Graph) Has(view string) bool { _, ok := g.children[view]; return ok }

// Children returns the views the given view is defined over.
func (g *Graph) Children(view string) []string {
	return append([]string(nil), g.children[view]...)
}

// Parents returns the views defined directly over the given view.
func (g *Graph) Parents(view string) []string {
	return append([]string(nil), g.parents[view]...)
}

// IsBase reports whether the view has no children (defined over sources).
func (g *Graph) IsBase(view string) bool { return len(g.children[view]) == 0 }

// IsDerived reports whether the view is defined over warehouse views.
func (g *Graph) IsDerived(view string) bool { return len(g.children[view]) > 0 }

// BaseViews returns all base views in topological order.
func (g *Graph) BaseViews() []string {
	var out []string
	for _, n := range g.names {
		if g.IsBase(n) {
			out = append(out, n)
		}
	}
	return out
}

// DerivedViews returns all derived views in topological order.
func (g *Graph) DerivedViews() []string {
	var out []string
	for _, n := range g.names {
		if g.IsDerived(n) {
			out = append(out, n)
		}
	}
	return out
}

// Level returns Level(V): the maximum distance from V to a base view.
func (g *Graph) Level(view string) int { return g.level[view] }

// MaxLevel returns the maximum Level of any view.
func (g *Graph) MaxLevel() int { return g.maxLevel }

// ViewsWithParents returns, in topological order, the views that have at
// least one view defined over them. These are the m views whose install
// position matters; Prune's search is over orderings of exactly this set
// (the m! optimization of Section 6).
func (g *Graph) ViewsWithParents() []string {
	var out []string
	for _, n := range g.names {
		if len(g.parents[n]) > 0 {
			out = append(out, n)
		}
	}
	return out
}

// IsTree reports whether the VDAG is a tree VDAG (Definition 5.1): no view
// is used in the definition of more than one other view.
func (g *Graph) IsTree() bool {
	for _, n := range g.names {
		if len(g.parents[n]) > 1 {
			return false
		}
	}
	return true
}

// IsUniform reports whether the VDAG is a uniform VDAG (Definition 5.2):
// every derived view at Level i is defined only over views at Level i−1.
func (g *Graph) IsUniform() bool {
	for _, n := range g.names {
		for _, c := range g.children[n] {
			if g.level[c] != g.level[n]-1 {
				return false
			}
		}
	}
	return true
}

// Ancestors returns every view transitively reachable from view through
// child edges (i.e., the views it directly or indirectly depends on).
func (g *Graph) Ancestors(view string) []string {
	seen := make(map[string]bool)
	var walk func(string)
	walk = func(v string) {
		for _, c := range g.children[v] {
			if !seen[c] {
				seen[c] = true
				walk(c)
			}
		}
	}
	walk(view)
	out := make([]string, 0, len(seen))
	for _, n := range g.names {
		if seen[n] {
			out = append(out, n)
		}
	}
	return out
}

// Descendants returns every view that transitively depends on view.
func (g *Graph) Descendants(view string) []string {
	seen := make(map[string]bool)
	var walk func(string)
	walk = func(v string) {
		for _, p := range g.parents[v] {
			if !seen[p] {
				seen[p] = true
				walk(p)
			}
		}
	}
	walk(view)
	out := make([]string, 0, len(seen))
	for _, n := range g.names {
		if seen[n] {
			out = append(out, n)
		}
	}
	return out
}

// WithoutViews returns the subgraph with the given views removed. Every
// removed view's descendants must also be removed (otherwise a kept view
// would reference a missing child), or an error is returned.
func (g *Graph) WithoutViews(remove map[string]bool) (*Graph, error) {
	b := NewBuilder()
	for _, n := range g.names {
		if remove[n] {
			continue
		}
		for _, c := range g.children[n] {
			if remove[c] {
				return nil, fmt.Errorf("vdag: cannot remove %q while keeping %q, which is defined over it", c, n)
			}
		}
		if err := b.Add(n, g.children[n]); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// SortByLevel stably sorts a copy of the given views by increasing Level,
// preserving the input's relative order within a level. This is exactly
// ModifyOrdering (Algorithm 5.2) applied to an arbitrary view ordering.
func (g *Graph) SortByLevel(views []string) []string {
	out := append([]string(nil), views...)
	sort.SliceStable(out, func(i, j int) bool { return g.level[out[i]] < g.level[out[j]] })
	return out
}

// Dot renders the VDAG in Graphviz dot format, edges pointing from each
// view to the views it is defined over (the paper's arrow convention).
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph VDAG {\n  rankdir=BT;\n")
	for _, n := range g.names {
		shape := "box"
		if g.IsBase(n) {
			shape = "ellipse"
		}
		fmt.Fprintf(&b, "  %q [shape=%s, label=\"%s\\nlevel %d\"];\n", n, shape, n, g.level[n])
	}
	for _, n := range g.names {
		for _, c := range g.children[n] {
			fmt.Fprintf(&b, "  %q -> %q;\n", n, c)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the graph compactly for diagnostics.
func (g *Graph) String() string {
	s := ""
	for _, n := range g.names {
		if s != "" {
			s += "; "
		}
		s += n
		if cs := g.children[n]; len(cs) > 0 {
			s += " <- ("
			for i, c := range cs {
				if i > 0 {
					s += ", "
				}
				s += c
			}
			s += ")"
		}
	}
	return s
}
