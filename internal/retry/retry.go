// Package retry is the shared backoff helper behind every retry loop in the
// warehouse: the source extractor's flaky-network drain, the replication
// follower's reconnect loop, the recovery layer's transient-window retries,
// and the continuous ingester's fault handling. Each of those started as a
// hand-rolled sleep-and-double loop; this package gives them one tested
// implementation with jitter (so synchronized retriers de-correlate) and
// context cancellation (so a draining process never sits out a backoff).
package retry

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Policy shapes a retry schedule: exponential backoff from Base by Factor,
// capped at Max, with ±Jitter randomization. The zero value is a usable
// default (1ms base, factor 2, uncapped, no jitter).
type Policy struct {
	// Attempts is the total number of tries Do makes; values below 1 mean 1.
	Attempts int
	// Base is the delay before the first retry; <= 0 means 1ms.
	Base time.Duration
	// Factor multiplies the delay after each retry; values < 1 mean 2.
	Factor float64
	// Max caps the (pre-jitter) delay; 0 means uncapped.
	Max time.Duration
	// Jitter randomizes each delay by the fraction j: a delay d becomes a
	// uniform draw from [d(1-j), d(1+j)]. Values are clamped to [0, 1].
	// Jittered retriers that fail together do not retry together.
	Jitter float64
	// Sleep replaces the context-aware sleep between retries (tests); nil
	// sleeps for real, waking early if ctx is cancelled.
	Sleep func(time.Duration)
	// Rand supplies jitter draws in [0,1) (tests); nil uses a package-level
	// seeded source.
	Rand func() float64
}

func (p Policy) withDefaults() Policy {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.Base <= 0 {
		p.Base = time.Millisecond
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Rand == nil {
		p.Rand = defaultRand
	}
	return p
}

var (
	randMu  sync.Mutex
	randSrc = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func defaultRand() float64 {
	randMu.Lock()
	defer randMu.Unlock()
	return randSrc.Float64()
}

// Delay returns the jittered delay before retry number `retry` (0-based: the
// delay between the first failure and the second attempt is Delay(0)).
func (p Policy) Delay(retry int) time.Duration {
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 0; i < retry; i++ {
		d *= p.Factor
		if p.Max > 0 && d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if p.Max > 0 && d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		d *= 1 - p.Jitter + 2*p.Jitter*p.Rand()
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Backoff is the stateful form of a Policy's schedule, for loops that manage
// their own retry decision (the follower's poll loop): Next returns the
// successive jittered delays and Reset rewinds to the base after a success.
type Backoff struct {
	Policy Policy
	retry  int
}

// Next returns the next delay in the schedule and advances it.
func (b *Backoff) Next() time.Duration {
	d := b.Policy.Delay(b.retry)
	b.retry++
	return d
}

// Reset rewinds the schedule to its base delay.
func (b *Backoff) Reset() { b.retry = 0 }

// Do runs op up to p.Attempts times, sleeping the policy's jittered backoff
// between tries. A nil error returns immediately. A failed attempt retries
// only while retryable(err) is true (nil retryable retries everything) and
// attempts remain; the last error is returned otherwise. A cancelled ctx
// stops the schedule mid-sleep and returns ctx's error (nil ctx never
// cancels). op receives the 1-based attempt number.
func Do(ctx context.Context, p Policy, op func(attempt int) error, retryable func(error) bool) error {
	p = p.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = op(attempt); err == nil {
			return nil
		}
		if attempt >= p.Attempts || (retryable != nil && !retryable(err)) {
			return err
		}
		if serr := sleep(ctx, p, p.Delay(attempt-1)); serr != nil {
			return serr
		}
	}
}

// sleep waits d, honoring the policy's Sleep hook and ctx cancellation.
func sleep(ctx context.Context, p Policy, d time.Duration) error {
	if p.Sleep != nil {
		p.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
