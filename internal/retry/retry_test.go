package retry

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestDelayJitterBounds checks every jittered delay stays inside
// [d(1-j), d(1+j)] of the deterministic schedule, across the whole schedule
// and many draws.
func TestDelayJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := Policy{Base: 10 * time.Millisecond, Factor: 2, Max: 500 * time.Millisecond, Jitter: 0.3,
		Rand: rng.Float64}
	bare := Policy{Base: p.Base, Factor: p.Factor, Max: p.Max}
	for retry := 0; retry < 10; retry++ {
		want := bare.Delay(retry)
		lo := time.Duration(float64(want) * (1 - p.Jitter))
		hi := time.Duration(float64(want) * (1 + p.Jitter))
		for draw := 0; draw < 200; draw++ {
			got := p.Delay(retry)
			if got < lo || got > hi {
				t.Fatalf("retry %d: jittered delay %v outside [%v, %v]", retry, got, lo, hi)
			}
		}
	}
}

// TestDelaySchedule checks the deterministic schedule doubles and caps.
func TestDelaySchedule(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Factor: 2, Max: 45 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 45, 45}
	for i, w := range want {
		if got := p.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

// TestDoRetriesTransient checks Do retries up to Attempts and sleeps the
// schedule between tries.
func TestDoRetriesTransient(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 4, Base: time.Millisecond, Factor: 2,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := Do(context.Background(), p, func(attempt int) error {
		calls++
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}, nil)
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want success on 3rd", err, calls)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("slept %v, want [1ms 2ms]", slept)
	}
}

// TestDoStopsOnNonRetryable checks the retryable classifier short-circuits.
func TestDoStopsOnNonRetryable(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 5, Sleep: func(time.Duration) {}},
		func(int) error { calls++; return fatal },
		func(err error) bool { return !errors.Is(err, fatal) })
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want fatal after 1", err, calls)
	}
}

// TestDoExhaustsAttempts checks the last error surfaces when attempts run out.
func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := Do(context.Background(), Policy{Attempts: 3, Sleep: func(time.Duration) {}},
		func(int) error { calls++; return boom }, nil)
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want boom after 3", err, calls)
	}
}

// TestDoCtxAbort checks a cancelled context aborts the schedule: mid-sleep
// (real sleep path) and before the next attempt (hook path).
func TestDoCtxAbort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	err := Do(ctx, Policy{Attempts: 3, Base: 10 * time.Second},
		func(int) error { calls++; return errors.New("transient") }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("made %d attempts, want 1 (cancelled mid-backoff)", calls)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation did not interrupt the 10s backoff (took %v)", elapsed)
	}

	// Hook path: cancellation between attempts is seen before the next op.
	ctx2, cancel2 := context.WithCancel(context.Background())
	calls = 0
	err = Do(ctx2, Policy{Attempts: 3, Sleep: func(time.Duration) { cancel2() }},
		func(int) error { calls++; return errors.New("transient") }, nil)
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want Canceled after 1", err, calls)
	}
}

// TestBackoffResets checks the stateful schedule rewinds on Reset.
func TestBackoffResets(t *testing.T) {
	b := Backoff{Policy: Policy{Base: time.Millisecond, Factor: 2}}
	if b.Next() != time.Millisecond || b.Next() != 2*time.Millisecond || b.Next() != 4*time.Millisecond {
		t.Fatal("schedule did not double")
	}
	b.Reset()
	if got := b.Next(); got != time.Millisecond {
		t.Fatalf("after Reset, Next = %v, want 1ms", got)
	}
}

// TestNilCtx checks Do tolerates a nil context.
func TestNilCtx(t *testing.T) {
	err := Do(nil, Policy{Attempts: 2, Sleep: func(time.Duration) {}}, //lint:ignore SA1012 nil ctx is part of the contract
		func(attempt int) error {
			if attempt < 2 {
				return errors.New("once")
			}
			return nil
		}, nil)
	if err != nil {
		t.Fatalf("Do(nil ctx) = %v", err)
	}
}
