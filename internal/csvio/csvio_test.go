package csvio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/delta"
	"repro/internal/relation"
	"repro/internal/storage"
)

var schema = relation.Schema{
	{Name: "id", Kind: relation.KindInt},
	{Name: "name", Kind: relation.KindString},
	{Name: "price", Kind: relation.KindFloat},
	{Name: "day", Kind: relation.KindDate},
	{Name: "ok", Kind: relation.KindBool},
}

const sample = `id,name,price,day,ok
1,widget,9.99,2026-01-02,true
2,"gadget, large",100,2026-03-04,false
3,,5,2026-05-06,true
`

func TestReadRows(t *testing.T) {
	rows, err := ReadRows(strings.NewReader(sample), schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0].Int() != 1 || rows[0][1].Str() != "widget" || rows[0][2].Float() != 9.99 {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[1][1].Str() != "gadget, large" {
		t.Errorf("quoted field = %q", rows[1][1].Str())
	}
	if !rows[2][1].IsNull() {
		t.Errorf("empty field should be NULL")
	}
	if rows[0][3].String() != "2026-01-02" || !rows[0][4].Bool() {
		t.Errorf("date/bool = %v %v", rows[0][3], rows[0][4])
	}
}

func TestReadRowsColumnPermutation(t *testing.T) {
	csvData := "name,id,price,day,ok\nw,7,1,2026-01-01,false\n"
	rows, err := ReadRows(strings.NewReader(csvData), schema)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 7 || rows[0][1].Str() != "w" {
		t.Errorf("permuted row = %v", rows[0])
	}
}

func TestReadRowsErrors(t *testing.T) {
	bad := []string{
		"",                       // no header
		"id,name\n1,x\n",         // wrong column count
		"id,nope,price,day,ok\n", // unknown column
		"id,id,price,day,ok\n",   // duplicate column
		"id,name,price,day,ok\nX,a,1,2026-01-01,true\n",  // bad int
		"id,name,price,day,ok\n1,a,X,2026-01-01,true\n",  // bad float
		"id,name,price,day,ok\n1,a,1,notadate,true\n",    // bad date
		"id,name,price,day,ok\n1,a,1,2026-01-01,maybe\n", // bad bool
		"id,name,price,day,ok\n1,a\n",                    // short record
	}
	for _, s := range bad {
		if _, err := ReadRows(strings.NewReader(s), schema); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	d := delta.New(schema)
	d.Add(relation.Tuple{relation.NewInt(1), relation.NewString("a"), relation.NewFloat(2), relation.NewDate(10), relation.NewBool(true)}, 3)
	d.Add(relation.Tuple{relation.NewInt(2), relation.NewString("b"), relation.NewFloat(4), relation.NewDate(20), relation.NewBool(false)}, -2)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "__count") {
		t.Fatalf("missing count column:\n%s", buf.String())
	}
	back, err := ReadDelta(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.PlusCount() != 3 || back.MinusCount() != 2 {
		t.Errorf("round trip = +%d −%d", back.PlusCount(), back.MinusCount())
	}
}

func TestReadDeltaWithoutCountColumn(t *testing.T) {
	// A plain rows file is a pure-insert batch.
	d, err := ReadDelta(strings.NewReader(sample), schema)
	if err != nil {
		t.Fatal(err)
	}
	if d.PlusCount() != 3 || d.MinusCount() != 0 {
		t.Errorf("delta = +%d −%d", d.PlusCount(), d.MinusCount())
	}
}

func TestReadDeltaErrors(t *testing.T) {
	bad := []string{
		"id,name,price,day,ok,__count\n1,a,1,2026-01-01,true,X\n",
		"id,name,price,day,ok,__count\n1,a,1,2026-01-01,true\n",
		"",
	}
	for _, s := range bad {
		if _, err := ReadDelta(strings.NewReader(s), schema); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestWriteRowsExpandsDuplicates(t *testing.T) {
	tbl := storage.NewTable(relation.Schema{{Name: "x", Kind: relation.KindInt}})
	tbl.Insert(relation.Tuple{relation.NewInt(5)}, 2)
	var buf bytes.Buffer
	if err := WriteRows(&buf, tbl.Schema(), tbl); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "5\n"); got != 2 {
		t.Errorf("duplicates not expanded:\n%s", buf.String())
	}
	// Round trip through ReadRows.
	rows, err := ReadRows(&buf, tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
}
