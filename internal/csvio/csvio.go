// Package csvio loads and dumps warehouse data as CSV: base-view bulk
// loads, view exports, and change batches (with a signed __count column).
// Values are parsed according to the view's schema; dates use YYYY-MM-DD.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/delta"
	"repro/internal/relation"
)

// countColumn is the extra column of change-batch files: the signed
// multiplicity of each row (+insert, −delete).
const countColumn = "__count"

// parseValue converts one CSV field per the column kind. Empty fields are
// NULL.
func parseValue(field string, kind relation.Kind) (relation.Value, error) {
	if field == "" {
		return relation.Null, nil
	}
	switch kind {
	case relation.KindInt:
		v, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return relation.Null, fmt.Errorf("csvio: bad integer %q: %w", field, err)
		}
		return relation.NewInt(v), nil
	case relation.KindFloat:
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return relation.Null, fmt.Errorf("csvio: bad float %q: %w", field, err)
		}
		return relation.NewFloat(v), nil
	case relation.KindString:
		return relation.NewString(field), nil
	case relation.KindDate:
		return relation.DateFromString(field)
	case relation.KindBool:
		v, err := strconv.ParseBool(field)
		if err != nil {
			return relation.Null, fmt.Errorf("csvio: bad boolean %q: %w", field, err)
		}
		return relation.NewBool(v), nil
	default:
		return relation.Null, fmt.Errorf("csvio: unsupported kind %v", kind)
	}
}

// header validates the CSV header against the schema, returning the column
// permutation (CSV position → schema index) and whether a trailing
// __count column is present.
func header(record []string, schema relation.Schema, allowCount bool) ([]int, bool, error) {
	hasCount := false
	cols := record
	if allowCount && len(record) > 0 && record[len(record)-1] == countColumn {
		hasCount = true
		cols = record[:len(record)-1]
	}
	if len(cols) != len(schema) {
		return nil, false, fmt.Errorf("csvio: header has %d columns, schema has %d", len(cols), len(schema))
	}
	perm := make([]int, len(cols))
	seen := make(map[int]bool)
	for i, name := range cols {
		idx := schema.ColumnIndex(name)
		if idx < 0 {
			return nil, false, fmt.Errorf("csvio: unknown column %q (schema: %v)", name, schema.Names())
		}
		if seen[idx] {
			return nil, false, fmt.Errorf("csvio: duplicate column %q", name)
		}
		seen[idx] = true
		perm[i] = idx
	}
	return perm, hasCount, nil
}

// ReadRows parses CSV rows (header required) for the given schema.
func ReadRows(r io.Reader, schema relation.Schema) ([]relation.Tuple, error) {
	cr := csv.NewReader(r)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	perm, _, err := header(head, schema, false)
	if err != nil {
		return nil, err
	}
	var out []relation.Tuple
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: %w", line, err)
		}
		tup := make(relation.Tuple, len(schema))
		for i, field := range rec {
			v, err := parseValue(field, schema[perm[i]].Kind)
			if err != nil {
				return nil, fmt.Errorf("csvio: line %d column %q: %w", line, head[i], err)
			}
			tup[perm[i]] = v
		}
		out = append(out, tup)
	}
}

// ReadDelta parses a change batch: CSV with the schema's columns plus a
// trailing signed __count column (absent count means +1).
func ReadDelta(r io.Reader, schema relation.Schema) (*delta.Delta, error) {
	cr := csv.NewReader(r)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	perm, hasCount, err := header(head, schema, true)
	if err != nil {
		return nil, err
	}
	d := delta.New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: %w", line, err)
		}
		count := int64(1)
		fields := rec
		if hasCount {
			if len(rec) != len(schema)+1 {
				return nil, fmt.Errorf("csvio: line %d: %d fields, want %d", line, len(rec), len(schema)+1)
			}
			count, err = strconv.ParseInt(rec[len(rec)-1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("csvio: line %d: bad count %q", line, rec[len(rec)-1])
			}
			fields = rec[:len(rec)-1]
		}
		tup := make(relation.Tuple, len(schema))
		for i, field := range fields {
			v, err := parseValue(field, schema[perm[i]].Kind)
			if err != nil {
				return nil, fmt.Errorf("csvio: line %d column %q: %w", line, head[i], err)
			}
			tup[perm[i]] = v
		}
		d.Add(tup, count)
	}
}

// rowSource is anything that can be dumped: a view or a delta.
type rowSource interface {
	Scan(func(relation.Tuple, int64) bool)
}

// WriteRows dumps rows (duplicates expanded) with a header.
func WriteRows(w io.Writer, schema relation.Schema, src rowSource) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(schema.Names()); err != nil {
		return err
	}
	var werr error
	src.Scan(func(tup relation.Tuple, count int64) bool {
		rec := make([]string, len(tup))
		for i, v := range tup {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		for c := int64(0); c < count; c++ {
			if werr = cw.Write(rec); werr != nil {
				return false
			}
		}
		return true
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}

// WriteDelta dumps a change batch with the signed __count column.
func WriteDelta(w io.Writer, d *delta.Delta) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append(append([]string(nil), d.Schema().Names()...), countColumn)); err != nil {
		return err
	}
	for _, ch := range d.Sorted() {
		rec := make([]string, 0, len(ch.Tuple)+1)
		for _, v := range ch.Tuple {
			if v.IsNull() {
				rec = append(rec, "")
			} else {
				rec = append(rec, v.String())
			}
		}
		rec = append(rec, strconv.FormatInt(ch.Count, 10))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
