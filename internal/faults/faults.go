// Package faults is a seeded fault-injection layer for exercising the
// warehouse's crash-safety machinery. Code under test declares named
// injection points (step boundaries in the executors, extraction in the
// source layer, journal I/O) by calling Injector.Hit; tests arm the
// injector with trigger-point rules ("fail the 3rd hit of point X") or
// probability rules ("each hit of X fails with p=0.01") and the armed hits
// return — or panic with — a *Fault.
//
// Faults come in three flavours:
//
//   - plain failures (FailAt/FailTimes/SetProbability): an in-process error
//     the caller may retry, abort, or degrade around; these are marked
//     Transient, modelling recoverable conditions such as a source briefly
//     unreachable.
//   - crashes (CrashAt/PanicCrashAt): simulated process death. Callers that
//     recognise a crash-class fault (IsCrash) must stop immediately and
//     write nothing further — in particular no Abort record — so the
//     journal is left exactly as a killed process would leave it.
//   - panics (PanicAt/PanicCrashAt): the fault is raised as a panic instead
//     of returned, exercising the recover() guards in the DAG workers and
//     the morsel pool.
//
// A nil *Injector is inert: every method is safe to call and Hit returns
// nil, so production paths carry the hook at zero configuration cost.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Fault is one injected failure.
type Fault struct {
	// Point is the injection point that fired.
	Point string
	// Hit is the 1-based count of the firing Hit call at that point.
	Hit int
	// Crash marks a crash-class fault: the process is considered dead and
	// the caller must not write anything further (no Abort record).
	Crash bool
	// Transient marks a retryable condition (plain failures are transient;
	// crashes are not).
	Transient bool
	// Panicked records that the fault was delivered by panicking.
	Panicked bool
}

// Error implements error.
func (f *Fault) Error() string {
	kind := "injected fault"
	switch {
	case f.Crash:
		kind = "injected crash"
	case f.Transient:
		kind = "injected transient fault"
	}
	if f.Panicked {
		kind += " (panic)"
	}
	return fmt.Sprintf("faults: %s at %s hit %d", kind, f.Point, f.Hit)
}

// AsFault unwraps err to the injected *Fault, if any.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// IsCrash reports whether err carries a crash-class fault.
func IsCrash(err error) bool {
	f, ok := AsFault(err)
	return ok && f.Crash
}

// IsTransient reports whether err carries a transient (retryable) fault.
func IsTransient(err error) bool {
	f, ok := AsFault(err)
	return ok && f.Transient
}

type ruleKind uint8

const (
	ruleFail ruleKind = iota
	ruleCrash
	rulePanic
	rulePanicCrash
)

type rule struct {
	kind ruleKind
	// nth fires the rule on exactly the nth hit; upTo fires it on every hit
	// ≤ upTo; prob fires it per hit with the given probability. Exactly one
	// is set per rule.
	nth  int
	upTo int
	prob float64
}

// Injector delivers seeded faults at named injection points. Safe for
// concurrent use (executors hit step boundaries from many workers).
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rules   map[string][]rule
	hits    map[string]int
	crashed bool
}

// New creates an injector whose probability rules draw from the given seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string][]rule),
		hits:  make(map[string]int),
	}
}

func (i *Injector) add(point string, r rule) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules[point] = append(i.rules[point], r)
}

// FailAt arms a transient failure on exactly the nth Hit of point.
func (i *Injector) FailAt(point string, nth int) { i.add(point, rule{kind: ruleFail, nth: nth}) }

// FailTimes arms transient failures on the first k Hits of point.
func (i *Injector) FailTimes(point string, k int) { i.add(point, rule{kind: ruleFail, upTo: k}) }

// CrashAt arms a crash-class fault on exactly the nth Hit of point.
func (i *Injector) CrashAt(point string, nth int) { i.add(point, rule{kind: ruleCrash, nth: nth}) }

// PanicAt arms a transient fault delivered by panic on the nth Hit of point.
func (i *Injector) PanicAt(point string, nth int) { i.add(point, rule{kind: rulePanic, nth: nth}) }

// PanicCrashAt arms a crash-class fault delivered by panic on the nth Hit
// of point: the panicking-worker analogue of CrashAt.
func (i *Injector) PanicCrashAt(point string, nth int) {
	i.add(point, rule{kind: rulePanicCrash, nth: nth})
}

// SetProbability arms a transient failure on each Hit of point with
// probability p, drawn from the injector's seeded source.
func (i *Injector) SetProbability(point string, p float64) {
	i.add(point, rule{kind: ruleFail, prob: p})
}

// Hits returns how many times point has been hit.
func (i *Injector) Hits(point string) int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hits[point]
}

// Crashed reports whether any crash-class fault has fired. Executors run
// steps concurrently, so the error that surfaces first in strategy order is
// not necessarily the crash; robust runners consult Crashed to classify a
// failed window.
func (i *Injector) Crashed() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// Hit declares one pass through the injection point. It returns a *Fault
// (or panics with one, for panic-flavoured rules) when an armed rule fires,
// nil otherwise. Calling Hit on a nil injector returns nil.
func (i *Injector) Hit(point string) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	i.hits[point]++
	n := i.hits[point]
	var fired *rule
	for ri := range i.rules[point] {
		r := &i.rules[point][ri]
		switch {
		case r.nth > 0 && r.nth == n:
			fired = r
		case r.upTo > 0 && n <= r.upTo:
			fired = r
		case r.prob > 0 && i.rng.Float64() < r.prob:
			fired = r
		}
		if fired != nil {
			break
		}
	}
	if fired == nil {
		i.mu.Unlock()
		return nil
	}
	f := &Fault{Point: point, Hit: n}
	switch fired.kind {
	case ruleCrash, rulePanicCrash:
		f.Crash = true
		i.crashed = true
	default:
		f.Transient = true
	}
	i.mu.Unlock()
	if fired.kind == rulePanic || fired.kind == rulePanicCrash {
		f.Panicked = true
		panic(f)
	}
	return f
}

// Writer wraps an io.Writer-shaped sink with an injection point: every
// Write first hits the point and fails (without writing) when a fault
// fires, and once any crash-class fault has fired anywhere on the injector
// the sink refuses all further writes — a journal behind a crashed process
// accepts nothing more.
type Writer struct {
	W     interface{ Write([]byte) (int, error) }
	Inj   *Injector
	Point string
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.Inj.Crashed() {
		return 0, &Fault{Point: w.Point, Hit: w.Inj.Hits(w.Point), Crash: true}
	}
	if err := w.Inj.Hit(w.Point); err != nil {
		return 0, err
	}
	return w.W.Write(p)
}
