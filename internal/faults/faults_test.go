package faults

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if err := inj.Hit("anything"); err != nil {
		t.Fatalf("nil injector Hit returned %v", err)
	}
	if inj.Hits("anything") != 0 {
		t.Fatal("nil injector counted hits")
	}
	if inj.Crashed() {
		t.Fatal("nil injector crashed")
	}
}

func TestFailAtFiresExactlyOnce(t *testing.T) {
	inj := New(1)
	inj.FailAt("p", 3)
	var fired []int
	for n := 1; n <= 6; n++ {
		if err := inj.Hit("p"); err != nil {
			if !IsTransient(err) {
				t.Fatalf("hit %d: fault not transient: %v", n, err)
			}
			if IsCrash(err) {
				t.Fatalf("hit %d: plain failure classified as crash", n)
			}
			fired = append(fired, n)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("FailAt(3) fired at %v, want [3]", fired)
	}
	if inj.Hits("p") != 6 {
		t.Fatalf("Hits = %d, want 6", inj.Hits("p"))
	}
}

func TestFailTimes(t *testing.T) {
	inj := New(1)
	inj.FailTimes("p", 2)
	var fired []int
	for n := 1; n <= 5; n++ {
		if inj.Hit("p") != nil {
			fired = append(fired, n)
		}
	}
	if fmt.Sprint(fired) != "[1 2]" {
		t.Fatalf("FailTimes(2) fired at %v, want [1 2]", fired)
	}
}

func TestCrashClassification(t *testing.T) {
	inj := New(1)
	inj.CrashAt("p", 1)
	err := inj.Hit("p")
	if !IsCrash(err) {
		t.Fatalf("CrashAt fault not IsCrash: %v", err)
	}
	if IsTransient(err) {
		t.Fatal("crash fault classified transient")
	}
	if !inj.Crashed() {
		t.Fatal("Crashed() false after crash fault fired")
	}
	// Wrapping preserves classification.
	wrapped := fmt.Errorf("executor: step 3: %w", err)
	if !IsCrash(wrapped) {
		t.Fatal("IsCrash lost through wrapping")
	}
	f, ok := AsFault(wrapped)
	if !ok || f.Point != "p" || f.Hit != 1 {
		t.Fatalf("AsFault(wrapped) = %v, %v", f, ok)
	}
}

func TestPanicAtPanicsWithFault(t *testing.T) {
	inj := New(1)
	inj.PanicAt("p", 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("PanicAt did not panic")
		}
		f, ok := r.(*Fault)
		if !ok {
			t.Fatalf("panic value %T, want *Fault", r)
		}
		if !f.Panicked || !f.Transient || f.Crash {
			t.Fatalf("panic fault misclassified: %+v", f)
		}
	}()
	inj.Hit("p")
}

func TestPanicCrashAt(t *testing.T) {
	inj := New(1)
	inj.PanicCrashAt("p", 1)
	func() {
		defer func() {
			r := recover()
			f, ok := r.(*Fault)
			if !ok || !f.Crash || !f.Panicked {
				t.Fatalf("PanicCrashAt panic value: %#v", r)
			}
		}()
		inj.Hit("p")
	}()
	if !inj.Crashed() {
		t.Fatal("Crashed() false after PanicCrashAt fired")
	}
}

func TestProbabilityIsSeededAndBounded(t *testing.T) {
	count := func(seed int64) int {
		inj := New(seed)
		inj.SetProbability("p", 0.3)
		n := 0
		for i := 0; i < 1000; i++ {
			if inj.Hit("p") != nil {
				n++
			}
		}
		return n
	}
	a, b := count(42), count(42)
	if a != b {
		t.Fatalf("same seed produced %d vs %d faults", a, b)
	}
	if a < 200 || a > 400 {
		t.Fatalf("p=0.3 fired %d/1000 times", a)
	}
}

func TestWriterInjectsAndDiesAfterCrash(t *testing.T) {
	var buf bytes.Buffer
	inj := New(1)
	inj.FailAt("journal", 2)
	w := &Writer{W: &buf, Inj: inj, Point: "journal"}
	if _, err := w.Write([]byte("a")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := w.Write([]byte("b")); !IsTransient(err) {
		t.Fatalf("second write: %v, want transient fault", err)
	}
	if buf.String() != "a" {
		t.Fatalf("buffer = %q after failed write", buf.String())
	}
	// After a crash anywhere on the injector, the sink is dead.
	inj.CrashAt("other", 1)
	_ = inj.Hit("other")
	if _, err := w.Write([]byte("c")); !IsCrash(err) {
		t.Fatalf("post-crash write: %v, want crash fault", err)
	}
	if buf.String() != "a" {
		t.Fatalf("post-crash write reached the buffer: %q", buf.String())
	}
}

func TestErrorsAsThroughJoin(t *testing.T) {
	inj := New(1)
	inj.FailAt("p", 1)
	err := inj.Hit("p")
	var f *Fault
	if !errors.As(fmt.Errorf("a: %w", fmt.Errorf("b: %w", err)), &f) {
		t.Fatal("errors.As failed through double wrap")
	}
}
