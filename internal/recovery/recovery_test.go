package recovery

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/relation"
	"repro/internal/strategy"
)

var (
	schemaR = relation.Schema{{Name: "a", Kind: relation.KindInt}, {Name: "b", Kind: relation.KindInt}}
	schemaS = relation.Schema{{Name: "b", Kind: relation.KindInt}, {Name: "c", Kind: relation.KindInt}}
)

func intRow(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.NewInt(v)
	}
	return t
}

// newFixture builds R, S, J = R ⋈ S, A = Γ(J), loads data, and stages a
// change batch; returns the warehouse and a dual-stage strategy.
func newFixture(t *testing.T) (*core.Warehouse, strategy.Strategy) {
	t.Helper()
	w := core.New(core.Options{})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.DefineBase("R", schemaR))
	must(w.DefineBase("S", schemaS))
	jb := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
	jb.Join("r.b", "s.b").SelectCol("r.a").SelectCol("s.c")
	must(w.DefineDerived("J", jb.MustBuild()))
	js := w.MustView("J").Schema()
	ab := algebra.NewBuilder().From("j", "J", js)
	ab.GroupByCol("j.a").Agg("total", delta.AggSum, ab.Col("j.c"))
	must(w.DefineDerived("A", ab.MustBuild()))
	must(w.LoadBase("R", []relation.Tuple{intRow(1, 10), intRow(2, 10), intRow(3, 20)}))
	must(w.LoadBase("S", []relation.Tuple{intRow(10, 100), intRow(20, 200)}))
	must(w.RefreshAll())

	dr := delta.New(schemaR)
	dr.Add(intRow(4, 20), 1)
	dr.Add(intRow(1, 10), -1)
	must(w.StageDelta("R", dr))
	ds := delta.New(schemaS)
	ds.Add(intRow(10, 300), 1)
	must(w.StageDelta("S", ds))

	g, err := exec.Graph(w)
	if err != nil {
		t.Fatal(err)
	}
	return w, strategy.DualStageVDAG(g)
}

func bags(t *testing.T, w *core.Warehouse) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, name := range w.ViewNames() {
		var b bytes.Buffer
		for _, r := range w.MustView(name).SortedRows() {
			fmt.Fprintf(&b, "%v x%d;", r.Tuple, r.Count)
		}
		out[name] = b.String()
	}
	return out
}

func sameBags(t *testing.T, what string, ref, got map[string]string) {
	t.Helper()
	for v := range ref {
		if ref[v] != got[v] {
			t.Fatalf("%s: %s diverged:\n got %s\nwant %s", what, v, got[v], ref[v])
		}
	}
}

func readLog(t *testing.T, buf *bytes.Buffer) journal.Log {
	t.Helper()
	lg, err := journal.ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

// refRun executes the strategy uninterrupted on a clone and returns the
// resulting bags.
func refRun(t *testing.T, w *core.Warehouse, s strategy.Strategy) map[string]string {
	t.Helper()
	res, err := Run(w, s, Options{Mode: exec.ModeSequential, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	return bags(t, res.Core)
}

func TestRunCommitsAndAdopts(t *testing.T) {
	w, s := newFixture(t)
	before := bags(t, w)
	var buf bytes.Buffer
	res, err := Run(w, s, Options{
		Journal: journal.NewWriter(&buf), Seq: 7, Planner: "dual", Mode: exec.ModeDAG,
		Workers: 4, Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The original warehouse is untouched; the clone carries the window.
	sameBags(t, "original", before, bags(t, w))
	if res.Core == w {
		t.Fatal("Run returned the input warehouse, not a clone")
	}
	if err := res.Core.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	lg := readLog(t, &buf)
	if lg.CommittedCount() != 1 || NeedsRecovery(&lg) {
		t.Fatalf("journal shape: committed=%d inflight=%v", lg.CommittedCount(), lg.InFlight() != nil)
	}
	wl := lg.Windows[0]
	if wl.Begin.Seq != 7 || wl.Begin.Planner != "dual" || wl.Begin.Mode != "dag" {
		t.Fatalf("begin record: %+v", wl.Begin)
	}
	if len(wl.Steps) != len(s) {
		t.Fatalf("%d journaled steps, strategy has %d", len(wl.Steps), len(s))
	}
	if wl.Commit.TotalWork != res.Report.TotalWork {
		t.Fatalf("journaled work %d, report %d", wl.Commit.TotalWork, res.Report.TotalWork)
	}
}

func TestTransientRetryJournalShape(t *testing.T) {
	w, s := newFixture(t)
	want := refRun(t, w, s)
	inj := faults.New(1)
	inj.FailAt("step", 2) // second step of the first attempt fails transiently
	var buf bytes.Buffer
	var slept []time.Duration
	res, err := Run(w, s, Options{
		Journal: journal.NewWriter(&buf), Seq: 3, Mode: exec.ModeSequential, Validate: true,
		Faults: inj, Retries: 2, Backoff: 5 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
	if len(slept) != 1 || slept[0] != 5*time.Millisecond {
		t.Fatalf("backoff sleeps: %v", slept)
	}
	sameBags(t, "retried window", want, bags(t, res.Core))
	lg := readLog(t, &buf)
	if len(lg.Windows) != 2 {
		t.Fatalf("%d journal windows, want 2 (abort + commit)", len(lg.Windows))
	}
	if lg.Windows[0].Abort == nil || lg.Windows[0].Committed() {
		t.Fatalf("first attempt not aborted: %+v", lg.Windows[0])
	}
	if len(lg.Windows[0].Steps) != 1 {
		t.Fatalf("aborted attempt journaled %d steps, want 1", len(lg.Windows[0].Steps))
	}
	if !lg.Windows[1].Committed() {
		t.Fatal("second attempt not committed")
	}
	if lg.Windows[0].Begin.Seq != 3 || lg.Windows[1].Begin.Seq != 3 {
		t.Fatal("retry attempts must share the window sequence number")
	}
}

func TestSequentialFallback(t *testing.T) {
	w, s := newFixture(t)
	want := refRun(t, w, s)
	inj := faults.New(1)
	inj.FailAt("step", 1) // first attempt dies; error is transient but Retries=0
	res, err := Run(w, s, Options{
		Mode: exec.ModeDAG, Workers: 4, Validate: true,
		Faults: inj, FallbackSequential: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBackSequential || res.Mode != exec.ModeSequential {
		t.Fatalf("no sequential fallback: %+v", res)
	}
	sameBags(t, "fallback window", want, bags(t, res.Core))
}

func TestRecomputeFallback(t *testing.T) {
	w, s := newFixture(t)
	want := refRun(t, w, s)
	inj := faults.New(1)
	inj.SetProbability("step", 1) // every incremental step fails
	var buf bytes.Buffer
	res, err := Run(w, s, Options{
		Journal: journal.NewWriter(&buf), Seq: 9, Mode: exec.ModeDAG, Workers: 2, Validate: true,
		Faults: inj, FallbackSequential: true, FallbackRecompute: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recomputed || res.Mode != exec.ModeRecompute {
		t.Fatalf("no recompute fallback: %+v", res)
	}
	sameBags(t, "recompute window", want, bags(t, res.Core))
	if err := res.Core.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	lg := readLog(t, &buf)
	last := lg.Windows[len(lg.Windows)-1]
	if !last.Committed() || last.Begin.Mode != string(exec.ModeRecompute) || len(last.Steps) != 0 {
		t.Fatalf("recompute window shape: %+v", last)
	}
	for _, wl := range lg.Windows[:len(lg.Windows)-1] {
		if wl.Abort == nil {
			t.Fatalf("failed incremental attempt not aborted: %+v", wl.Begin)
		}
	}
}

func TestCrashLeavesJournalInFlight(t *testing.T) {
	w, s := newFixture(t)
	inj := faults.New(1)
	inj.CrashAt("step", 2)
	var buf bytes.Buffer
	_, err := Run(w, s, Options{
		Journal: journal.NewWriter(&buf), Seq: 1, Mode: exec.ModeSequential, Validate: true,
		Faults: inj, Retries: 5, FallbackSequential: true, FallbackRecompute: true,
	})
	if err == nil {
		t.Fatal("crash did not fail the run")
	}
	var f *faults.Fault
	if !errors.As(err, &f) || !f.Crash {
		t.Fatalf("crash fault not surfaced: %v", err)
	}
	lg := readLog(t, &buf)
	if !NeedsRecovery(&lg) {
		t.Fatal("crashed journal does not need recovery")
	}
	wl := lg.InFlight()
	if wl.Abort != nil || wl.Commit != nil || len(wl.Steps) != 1 {
		t.Fatalf("in-flight window shape: steps=%d closed=%v", len(wl.Steps), wl.Closed())
	}
}

func TestRecoverCompletesCrashedWindow(t *testing.T) {
	w, s := newFixture(t)
	want := refRun(t, w, s)

	inj := faults.New(1)
	inj.CrashAt("step", 3)
	var buf bytes.Buffer
	_, err := Run(w, s, Options{
		Journal: journal.NewWriter(&buf), Seq: 4, Mode: exec.ModeSequential, Validate: true, Faults: inj,
	})
	if err == nil {
		t.Fatal("crash did not fail the run")
	}

	// Restart: the pre-window state (no staged batch — the journal
	// re-stages it) as a snapshot would restore it.
	lg := readLog(t, &buf)
	res, err := Recover(buildPristine(t), &lg, Options{Journal: journal.NewWriter(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatal("result not marked recovered")
	}
	sameBags(t, "recovered window", want, bags(t, res.Core))
	if err := res.Core.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	final := readLog(t, &buf)
	if NeedsRecovery(&final) || final.CommittedCount() != 1 {
		t.Fatalf("journal not completed: inflight=%v committed=%d", final.InFlight() != nil, final.CommittedCount())
	}
	wl := final.Windows[len(final.Windows)-1]
	if len(wl.Steps) != len(s) {
		t.Fatalf("completed window has %d steps, strategy %d (crashed steps + replayed rest, no duplicates)", len(wl.Steps), len(s))
	}
	seen := make(map[int]bool)
	for _, sr := range wl.Steps {
		if seen[sr.Index] {
			t.Fatalf("step %d journaled twice", sr.Index)
		}
		seen[sr.Index] = true
	}
}

// buildPristine is the fixture catalog and data without the staged batch —
// the state a pre-window snapshot restores.
func buildPristine(t *testing.T) *core.Warehouse {
	t.Helper()
	w := core.New(core.Options{})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.DefineBase("R", schemaR))
	must(w.DefineBase("S", schemaS))
	jb := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
	jb.Join("r.b", "s.b").SelectCol("r.a").SelectCol("s.c")
	must(w.DefineDerived("J", jb.MustBuild()))
	js := w.MustView("J").Schema()
	ab := algebra.NewBuilder().From("j", "J", js)
	ab.GroupByCol("j.a").Agg("total", delta.AggSum, ab.Col("j.c"))
	must(w.DefineDerived("A", ab.MustBuild()))
	must(w.LoadBase("R", []relation.Tuple{intRow(1, 10), intRow(2, 10), intRow(3, 20)}))
	must(w.LoadBase("S", []relation.Tuple{intRow(10, 100), intRow(20, 200)}))
	must(w.RefreshAll())
	return w
}

func TestRecoverInFlightRecomputeWindow(t *testing.T) {
	w, s := newFixture(t)
	want := refRun(t, w, s)
	inj := faults.New(1)
	inj.SetProbability("step", 1)
	inj.CrashAt("recompute", 1)
	var buf bytes.Buffer
	_, err := Run(w, s, Options{
		Journal: journal.NewWriter(&buf), Seq: 2, Mode: exec.ModeSequential, Validate: true,
		Faults: inj, FallbackRecompute: true,
	})
	if err == nil {
		t.Fatal("crash during recompute did not fail the run")
	}
	lg := readLog(t, &buf)
	if !NeedsRecovery(&lg) || lg.InFlight().Begin.Mode != string(exec.ModeRecompute) {
		t.Fatalf("in-flight recompute window not found: %+v", lg.InFlight())
	}
	res, err := Recover(buildPristine(t), &lg, Options{Journal: journal.NewWriter(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recomputed || res.Mode != exec.ModeRecompute {
		t.Fatalf("recovery did not redo the recompute: %+v", res)
	}
	sameBags(t, "recovered recompute", want, bags(t, res.Core))
	final := readLog(t, &buf)
	if NeedsRecovery(&final) {
		t.Fatal("journal still in-flight after recovery")
	}
}

func TestRecoverRejectsWrongSnapshot(t *testing.T) {
	w, s := newFixture(t)
	inj := faults.New(1)
	inj.CrashAt("step", 2)
	var buf bytes.Buffer
	_, _ = Run(w, s, Options{
		Journal: journal.NewWriter(&buf), Mode: exec.ModeSequential, Validate: true, Faults: inj,
	})
	lg := readLog(t, &buf)
	wrong := buildPristine(t)
	d := delta.New(schemaR)
	d.Add(intRow(9, 9), 1)
	if err := wrong.StageDelta("R", d); err != nil {
		t.Fatal(err)
	}
	if _, err := wrong.Install("R"); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(wrong, &lg, Options{}); err == nil {
		t.Fatal("recovery accepted a warehouse whose state digest mismatches the journal")
	}
}

func TestRecoverNothingToDo(t *testing.T) {
	if _, err := Recover(buildPristine(t), &journal.Log{}, Options{}); err == nil {
		t.Fatal("recovery of an empty journal succeeded")
	}
}
