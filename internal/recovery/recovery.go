// Package recovery makes update windows crash-safe. Run executes a strategy
// as a journaled, atomic, retryable window: every attempt runs on a clone of
// the warehouse, so the caller's state is untouched until the attempt
// commits, and the journal records window begin (strategy, change batch,
// digests), every completed step, and commit/abort. Recover completes a
// window whose journal ends without commit or abort — the signature of a
// crash — by restoring the pre-window state, re-staging the journaled change
// batch, and re-executing the journaled strategy, verifying each replayed
// step against the journaled step records.
//
// Replay is by re-execution: the engine is deterministic given the same
// pre-window state, change batch and work-affecting options (which the
// begin record captures), so a recovered window is bag-identical to the
// window the crashed process would have produced. Completed steps of the
// crashed run are not re-journaled; their journaled work and delta digests
// are instead checked against the replay, turning silent divergence into a
// hard error.
//
// Run also hardens windows against non-crash failures: transient errors
// retry with exponential backoff (each attempt its own journal window, same
// sequence number), parallel-mode failures can degrade to sequential
// execution, and as a last resort the window can fall back to installing
// the base deltas and recomputing every derived view from scratch.
package recovery

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/parallel"
	"repro/internal/retry"
	"repro/internal/strategy"
)

// Options configure Run and Recover.
type Options struct {
	// Journal receives the window's records; nil runs unjournaled (the
	// window is still atomic and retryable, just not recoverable).
	Journal *journal.Writer
	// Seq is the window's sequence number, recorded in the begin record.
	Seq int
	// Planner names the strategy's planner, recorded in the begin record.
	Planner string
	// Mode schedules the strategy (sequential, staged, dag); empty means
	// sequential.
	Mode exec.Mode
	// Workers bounds DAG-mode parallelism; 0 means GOMAXPROCS.
	Workers int
	// Context cancels the window between steps; nil never cancels.
	Context context.Context
	// Validate checks the strategy against the correctness conditions
	// before each attempt.
	Validate bool
	// Faults, when non-nil, is consulted at step boundaries, at the
	// recompute fallback (points "step" and "recompute"), and at the spill
	// I/O points when a memory budget is attached.
	Faults *faults.Injector
	// SpillDir is where over-budget builds spill when the warehouse
	// configures a memory budget; empty means a per-run temp directory.
	// Journaled windows should derive it from the journal path and Seq so
	// a crashed window's spill files are sweepable on the next open.
	SpillDir string
	// AcceptUnixNano, when nonzero, stamps the commit record with the time
	// the window's change batch was accepted from the stream, so downstream
	// readers (replicas, the ingest SLO tracker) can measure freshness
	// against acceptance rather than commit.
	AcceptUnixNano int64
	// Retries is how many times a transiently failed attempt is re-run
	// (beyond the first attempt). Only errors marked transient
	// (faults.IsTransient) retry; deterministic failures don't.
	Retries int
	// Backoff is the first retry's delay, doubling per retry; 0 means 1ms.
	Backoff time.Duration
	// Sleep replaces time.Sleep between retries (tests); nil sleeps.
	Sleep func(time.Duration)
	// FallbackSequential degrades a failed staged/DAG window to one
	// sequential attempt before giving up on incremental maintenance.
	FallbackSequential bool
	// FallbackRecompute degrades an unrecoverable incremental window to
	// installing the base deltas and recomputing every derived view — the
	// maximum-work, minimum-assumptions path.
	FallbackRecompute bool
}

// Result is a completed window: Core is the successor warehouse state (the
// attempt's clone — the caller adopts it), Report the execution measurements.
type Result struct {
	Core   *core.Warehouse
	Report parallel.Report
	// Mode is how the committed attempt actually ran — it differs from
	// Options.Mode after degradation.
	Mode exec.Mode
	// Attempts counts executed attempts, including fallbacks.
	Attempts int
	// FellBackSequential and Recomputed record which degradations fired.
	FellBackSequential bool
	Recomputed         bool
	// Recovered marks results produced by Recover.
	Recovered bool
	// Replayed marks results produced by Replay (a shipped window applied on
	// a replica).
	Replayed bool
}

// commitRecord builds a window's commit record, stamping wall-clock commit
// time and the batch's stream-accept time (when the caller supplied one).
func commitRecord(opts Options, totalWork, elapsedNS int64) journal.CommitRecord {
	return journal.CommitRecord{
		TotalWork:      totalWork,
		ElapsedNS:      elapsedNS,
		UnixNano:       time.Now().UnixNano(),
		AcceptUnixNano: opts.AcceptUnixNano,
	}
}

// isCrash classifies an attempt failure as a simulated process crash: the
// error chain carries a crash-flavoured fault, or the injector fired one
// anywhere (under DAG concurrency the first-in-strategy-order error the
// scheduler surfaces may be a knock-on failure, not the crash itself).
func isCrash(err error, inj *faults.Injector) bool {
	return faults.IsCrash(err) || inj.Crashed()
}

// Run executes the strategy as a robust update window against w. w itself is
// never mutated: each attempt executes on a clone, and the committed clone
// is returned in Result.Core for the caller to adopt. On a crash-class
// failure Run returns immediately with the journal left in-flight — exactly
// the state a killed process leaves behind — for Recover to complete.
func Run(w *core.Warehouse, s strategy.Strategy, opts Options) (*Result, error) {
	mode := opts.Mode
	if mode == "" {
		mode = exec.ModeSequential
	}
	backoff := retry.Backoff{Policy: retry.Policy{Base: opts.Backoff}}
	sleep := func(d time.Duration) {
		if opts.Sleep != nil {
			opts.Sleep(d)
			return
		}
		time.Sleep(d)
	}
	if opts.Journal != nil && opts.Context != nil {
		// Gate journal begin/step appends on the window's context: a
		// cancelled window stops extending the journal (commit/abort still
		// land, closing the window's record).
		opts.Journal.SetContext(opts.Context)
		defer opts.Journal.SetContext(nil)
	}
	res := &Result{}
	retriesLeft := opts.Retries
	triedSequential := false
	for {
		res.Attempts++
		rep, clone, err := runAttempt(w, s, mode, opts)
		if err == nil {
			res.Core, res.Report, res.Mode = clone, rep, mode
			return res, nil
		}
		if isCrash(err, opts.Faults) {
			return nil, err
		}
		if opts.Context != nil && opts.Context.Err() != nil {
			// Deadline or cancellation: the attempt already journaled its
			// abort; retries and fallbacks would just re-run a dead window.
			return nil, err
		}
		if faults.IsTransient(err) && retriesLeft > 0 {
			retriesLeft--
			sleep(backoff.Next())
			continue
		}
		if opts.FallbackSequential && mode != exec.ModeSequential && !triedSequential {
			triedSequential = true
			mode = exec.ModeSequential
			res.FellBackSequential = true
			continue
		}
		if opts.FallbackRecompute {
			res.Attempts++
			rep, clone, rerr := runRecompute(w, s, opts)
			if rerr == nil {
				res.Recomputed = true
				res.Core, res.Report, res.Mode = clone, rep, exec.ModeRecompute
				return res, nil
			}
			if isCrash(rerr, opts.Faults) {
				return nil, rerr
			}
			return nil, fmt.Errorf("recovery: recompute fallback failed: %w (incremental window failed: %v)", rerr, err)
		}
		return nil, err
	}
}

// beginRecord captures everything recovery needs to re-execute the window:
// the strategy, the full change batch, digests of the pre-window state and
// batch, and the work-affecting engine options.
func beginRecord(w *core.Warehouse, s strategy.Strategy, mode exec.Mode, opts Options) (journal.BeginRecord, error) {
	batch, err := journal.BatchOf(w)
	if err != nil {
		return journal.BeginRecord{}, err
	}
	o := w.Options()
	return journal.BeginRecord{
		Seq:             opts.Seq,
		Planner:         opts.Planner,
		Mode:            string(mode),
		Workers:         opts.Workers,
		SkipEmptyDeltas: o.SkipEmptyDeltas,
		UseIndexes:      o.UseIndexes,
		StateDigest:     journal.StateDigest(w),
		BatchDigest:     journal.BatchDigest(batch),
		Strategy:        s.Clone(),
		Batch:           batch,
	}, nil
}

// stepRecord converts an executed step into its journal record.
func stepRecord(idx int, step exec.StepReport) journal.StepRecord {
	return journal.StepRecord{
		Index:   idx,
		Key:     step.Expr.Key(),
		Work:    step.Work,
		Terms:   step.Terms,
		Skipped: step.Skipped,
		Digest:  step.Digest,
	}
}

// runAttempt executes one journaled attempt on a fresh clone. Failures
// append an abort record — unless they are crash-class, in which case the
// journal is left exactly as a killed process would leave it.
func runAttempt(w *core.Warehouse, s strategy.Strategy, mode exec.Mode, opts Options) (parallel.Report, *core.Warehouse, error) {
	clone := w.Clone()
	jw := opts.Journal
	if jw != nil {
		b, err := beginRecord(w, s, mode, opts)
		if err != nil {
			return parallel.Report{}, nil, err
		}
		if err := jw.Begin(b); err != nil {
			return parallel.Report{}, nil, err
		}
	}
	popts := parallel.Options{
		Workers:  opts.Workers,
		Context:  opts.Context,
		Validate: opts.Validate,
		Faults:   opts.Faults,
		SpillDir: opts.SpillDir,
	}
	if jw != nil {
		popts.OnStep = func(idx int, step exec.StepReport) error {
			return jw.Step(stepRecord(idx, step))
		}
	}
	t0 := time.Now()
	rep, err := parallel.Run(clone, s, clone.Children, mode, popts)
	if err != nil {
		if jw != nil && !isCrash(err, opts.Faults) {
			_ = jw.Abort(journal.AbortRecord{Reason: err.Error()})
		}
		return rep, nil, err
	}
	if jw != nil {
		if cerr := jw.Commit(commitRecord(opts, rep.TotalWork, time.Since(t0).Nanoseconds())); cerr != nil {
			return rep, nil, cerr
		}
	}
	return rep, clone, nil
}

// runRecompute is the graceful-degradation attempt: install the staged base
// deltas and rebuild every derived view from scratch on a fresh clone. Its
// journal window has no step records — recovery of an in-flight recompute
// window simply redoes the whole recompute.
func runRecompute(w *core.Warehouse, s strategy.Strategy, opts Options) (parallel.Report, *core.Warehouse, error) {
	clone := w.Clone()
	jw := opts.Journal
	if jw != nil {
		b, err := beginRecord(w, s, exec.ModeRecompute, opts)
		if err != nil {
			return parallel.Report{}, nil, err
		}
		if err := jw.Begin(b); err != nil {
			return parallel.Report{}, nil, err
		}
	}
	t0 := time.Now()
	work, err := recomputeAll(clone, opts.Faults)
	if err != nil {
		if jw != nil && !isCrash(err, opts.Faults) {
			_ = jw.Abort(journal.AbortRecord{Reason: err.Error()})
		}
		return parallel.Report{}, nil, err
	}
	rep := parallel.Report{Mode: exec.ModeRecompute, Workers: 1, TotalWork: work, Elapsed: time.Since(t0)}
	if jw != nil {
		if cerr := jw.Commit(commitRecord(opts, work, rep.Elapsed.Nanoseconds())); cerr != nil {
			return rep, nil, cerr
		}
	}
	return rep, clone, nil
}

// recomputeAll installs every pending base delta and refreshes every derived
// view from the new base data. Work counts the installed rows (the refresh
// work is recomputation, outside the incremental work metric).
func recomputeAll(w *core.Warehouse, inj *faults.Injector) (int64, error) {
	if err := inj.Hit("recompute"); err != nil {
		return 0, err
	}
	var work int64
	for _, name := range w.ViewNames() {
		v := w.View(name)
		if v.IsBase() && v.HasPending() {
			n, err := w.Install(name)
			if err != nil {
				return work, err
			}
			work += n
		}
	}
	if err := w.RefreshAll(); err != nil {
		return work, err
	}
	return work, nil
}

// Replay re-executes one committed journaled window against w — the
// follower's half of journal shipping. Where Recover finishes a window whose
// log is torn, Replay applies a window whose log is complete: the leader
// already committed it, so every step record is present and the replica's
// re-execution is pure verification. The pre-window state digest proves the
// replica is at the same epoch the leader was, the batch digest proves the
// shipped change batch survived transit, and every replayed step must match
// its journaled key, work, skip flag, and installed-delta digest. Nothing is
// journaled here — the shipped bytes are the replica's journal. The completed
// clone comes back in Result.Core for the caller to adopt.
func Replay(w *core.Warehouse, wl *journal.WindowLog, opts Options) (*Result, error) {
	if wl == nil || !wl.Committed() {
		return nil, errors.New("recovery: replay requires a committed window")
	}
	b := wl.Begin
	if got := journal.StateDigest(w); b.StateDigest != 0 && got != b.StateDigest {
		return nil, fmt.Errorf("recovery: replica state digest %016x does not match window %d's pre-state %016x — replica diverged or skipped a window",
			got, b.Seq, b.StateDigest)
	}
	if got := journal.BatchDigest(b.Batch); got != b.BatchDigest {
		return nil, fmt.Errorf("recovery: window %d's shipped change batch digests to %016x, journaled %016x — corrupt in transit",
			b.Seq, got, b.BatchDigest)
	}
	clone := w.Clone()
	co := clone.Options()
	co.SkipEmptyDeltas = b.SkipEmptyDeltas
	co.UseIndexes = b.UseIndexes
	clone.SetOptions(co)
	if err := journal.RestoreBatch(clone, b.Batch); err != nil {
		return nil, fmt.Errorf("recovery: re-staging window %d's shipped batch: %w", b.Seq, err)
	}

	res := &Result{Replayed: true, Attempts: 1}
	t0 := time.Now()

	if exec.Mode(b.Mode) == exec.ModeRecompute {
		work, err := recomputeAll(clone, opts.Faults)
		if err != nil {
			return nil, fmt.Errorf("recovery: replaying recompute window %d: %w", b.Seq, err)
		}
		if work != wl.Commit.TotalWork {
			return nil, fmt.Errorf("recovery: recompute window %d replayed %d work, leader committed %d",
				b.Seq, work, wl.Commit.TotalWork)
		}
		res.Core = clone
		res.Mode = exec.ModeRecompute
		res.Recomputed = true
		res.Report = parallel.Report{Mode: exec.ModeRecompute, Workers: 1, TotalWork: work, Elapsed: time.Since(t0)}
		return res, nil
	}

	mode, err := exec.ParseMode(b.Mode)
	if err != nil {
		return nil, fmt.Errorf("recovery: window %d: %w", b.Seq, err)
	}
	workers := opts.Workers
	if workers == 0 {
		workers = b.Workers
	}
	done := make(map[int]journal.StepRecord, len(wl.Steps))
	for _, sr := range wl.Steps {
		done[sr.Index] = sr
	}
	if len(done) != len(b.Strategy) {
		return nil, fmt.Errorf("recovery: committed window %d ships %d distinct step records for a %d-step strategy",
			b.Seq, len(done), len(b.Strategy))
	}
	popts := parallel.Options{
		Workers:  workers,
		Context:  opts.Context,
		Faults:   opts.Faults,
		SpillDir: opts.SpillDir,
		OnStep: func(idx int, step exec.StepReport) error {
			sr, ok := done[idx]
			if !ok {
				return fmt.Errorf("recovery: window %d shipped no record for step %d (%s)", b.Seq, idx, step.Expr.Key())
			}
			if sr.Key != step.Expr.Key() {
				return fmt.Errorf("recovery: window %d step %d is %s on the leader, %s on the replica",
					b.Seq, idx, sr.Key, step.Expr.Key())
			}
			if sr.Skipped != step.Skipped || sr.Work != step.Work {
				return fmt.Errorf("recovery: replica diverged at window %d step %d (%s): leader work=%d skipped=%v, replica work=%d skipped=%v",
					b.Seq, idx, sr.Key, sr.Work, sr.Skipped, step.Work, step.Skipped)
			}
			if sr.Digest != 0 && step.Digest != 0 && sr.Digest != step.Digest {
				return fmt.Errorf("recovery: replica diverged at window %d step %d (%s): leader delta digest %016x, replica %016x",
					b.Seq, idx, sr.Key, sr.Digest, step.Digest)
			}
			return nil
		},
	}
	rep, err := parallel.Run(clone, b.Strategy, clone.Children, mode, popts)
	if err != nil {
		return nil, fmt.Errorf("recovery: replaying window %d: %w", b.Seq, err)
	}
	if rep.TotalWork != wl.Commit.TotalWork {
		return nil, fmt.Errorf("recovery: window %d replayed %d total work, leader committed %d",
			b.Seq, rep.TotalWork, wl.Commit.TotalWork)
	}
	res.Core = clone
	res.Report = rep
	res.Mode = mode
	return res, nil
}

// NeedsRecovery reports whether the journal ends in an in-flight window —
// a begin without commit or abort, the on-disk signature of a crash.
func NeedsRecovery(lg *journal.Log) bool {
	return lg != nil && lg.InFlight() != nil
}

// Recover completes the journal's in-flight window. w must be the warehouse
// restored from the pre-window snapshot (the begin record's state digest
// verifies this). The journaled change batch is re-staged on a clone, the
// journaled strategy re-executed under the journaled work-affecting options;
// steps the crashed run completed are verified (key, work, installed-delta
// digest) rather than re-journaled, missing steps and the commit are
// appended through opts.Journal. The completed clone comes back in
// Result.Core for the caller to adopt.
func Recover(w *core.Warehouse, lg *journal.Log, opts Options) (*Result, error) {
	if lg == nil || lg.InFlight() == nil {
		return nil, errors.New("recovery: journal has no in-flight window")
	}
	wl := lg.InFlight()
	b := wl.Begin
	if got := journal.StateDigest(w); b.StateDigest != 0 && got != b.StateDigest {
		return nil, fmt.Errorf("recovery: restored state digest %016x does not match window %d's journaled pre-state %016x — wrong snapshot",
			got, b.Seq, b.StateDigest)
	}
	if got := journal.BatchDigest(b.Batch); got != b.BatchDigest {
		return nil, fmt.Errorf("recovery: window %d's change batch digests to %016x, journaled %016x — corrupt begin record",
			b.Seq, got, b.BatchDigest)
	}
	clone := w.Clone()
	co := clone.Options()
	co.SkipEmptyDeltas = b.SkipEmptyDeltas
	co.UseIndexes = b.UseIndexes
	clone.SetOptions(co)
	if err := journal.RestoreBatch(clone, b.Batch); err != nil {
		return nil, fmt.Errorf("recovery: re-staging window %d's batch: %w", b.Seq, err)
	}

	jw := opts.Journal
	res := &Result{Recovered: true, Attempts: 1}
	t0 := time.Now()

	if exec.Mode(b.Mode) == exec.ModeRecompute {
		work, err := recomputeAll(clone, opts.Faults)
		if err != nil {
			return nil, fmt.Errorf("recovery: redoing recompute window %d: %w", b.Seq, err)
		}
		if jw != nil {
			if cerr := jw.Commit(commitRecord(opts, work, time.Since(t0).Nanoseconds())); cerr != nil {
				return nil, cerr
			}
		}
		res.Core = clone
		res.Mode = exec.ModeRecompute
		res.Recomputed = true
		res.Report = parallel.Report{Mode: exec.ModeRecompute, Workers: 1, TotalWork: work, Elapsed: time.Since(t0)}
		return res, nil
	}

	mode, err := exec.ParseMode(b.Mode)
	if err != nil {
		return nil, fmt.Errorf("recovery: window %d: %w", b.Seq, err)
	}
	workers := opts.Workers
	if workers == 0 {
		workers = b.Workers
	}
	done := make(map[int]journal.StepRecord, len(wl.Steps))
	for _, sr := range wl.Steps {
		done[sr.Index] = sr
	}
	popts := parallel.Options{
		Workers:  workers,
		Context:  opts.Context,
		Faults:   opts.Faults,
		SpillDir: opts.SpillDir,
		OnStep: func(idx int, step exec.StepReport) error {
			if sr, ok := done[idx]; ok {
				// The crashed run completed this step — verify the replay
				// reproduced it instead of re-journaling it.
				if sr.Key != step.Expr.Key() {
					return fmt.Errorf("recovery: journaled step %d is %s, strategy step %d is %s",
						idx, sr.Key, idx, step.Expr.Key())
				}
				if sr.Skipped != step.Skipped || sr.Work != step.Work {
					return fmt.Errorf("recovery: replay diverged at step %d (%s): journaled work=%d skipped=%v, replayed work=%d skipped=%v",
						idx, sr.Key, sr.Work, sr.Skipped, step.Work, step.Skipped)
				}
				if sr.Digest != 0 && step.Digest != 0 && sr.Digest != step.Digest {
					return fmt.Errorf("recovery: replay diverged at step %d (%s): journaled delta digest %016x, replayed %016x",
						idx, sr.Key, sr.Digest, step.Digest)
				}
				return nil
			}
			if jw == nil {
				return nil
			}
			return jw.Step(stepRecord(idx, step))
		},
	}
	rep, err := parallel.Run(clone, b.Strategy, clone.Children, mode, popts)
	if err != nil {
		if jw != nil && !isCrash(err, opts.Faults) {
			_ = jw.Abort(journal.AbortRecord{Reason: "recovery failed: " + err.Error()})
		}
		return nil, fmt.Errorf("recovery: replaying window %d: %w", b.Seq, err)
	}
	if jw != nil {
		if cerr := jw.Commit(commitRecord(opts, rep.TotalWork, time.Since(t0).Nanoseconds())); cerr != nil {
			return nil, cerr
		}
	}
	res.Core = clone
	res.Report = rep
	res.Mode = mode
	return res, nil
}
