package recovery

// Crash-recovery differential harness: for ~100 seeded random warehouses
// (the same generator as the executor differential harness — mixed
// join/aggregate views, 1–4 derivation levels, diamonds, integer columns so
// comparisons are exact) a window is journaled, crashed at a random step
// (every execution mode; one in three crashes is panic-flavoured), and
// recovered on a warehouse rebuilt from the pre-window snapshot. The
// recovered state must be bag-identical to an uninterrupted run of the same
// window, the completed journal must hold every step exactly once, and the
// installed-delta digests must match the uninterrupted run's journal.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/snapshot"
	"repro/internal/strategy"
)

// diffWarehouse builds a random leveled warehouse: 2–3 integer bases at
// level 0, then 1–4 derivation levels of 1–2 views each, diamonds common.
// It is deterministic in rng, which is what lets a restart rebuild the
// identical catalog from the trial seed.
func diffWarehouse(t *testing.T, rng *rand.Rand) *core.Warehouse {
	t.Helper()
	w := core.New(core.Options{})
	type viewInfo struct {
		name   string
		schema relation.Schema
	}
	var all []viewInfo
	prev := []viewInfo{}

	nBase := 2 + rng.Intn(2)
	for i := 0; i < nBase; i++ {
		name := fmt.Sprintf("B%d", i)
		cols := 2 + rng.Intn(2)
		schema := make(relation.Schema, cols)
		for c := 0; c < cols; c++ {
			schema[c] = relation.Column{Name: fmt.Sprintf("c%d", c), Kind: relation.KindInt}
		}
		if err := w.DefineBase(name, schema); err != nil {
			t.Fatal(err)
		}
		var rows []relation.Tuple
		for r := 0; r < 8+rng.Intn(20); r++ {
			tup := make(relation.Tuple, cols)
			for c := range tup {
				tup[c] = relation.NewInt(rng.Int63n(5))
			}
			rows = append(rows, tup)
		}
		if err := w.LoadBase(name, rows); err != nil {
			t.Fatal(err)
		}
		all = append(all, viewInfo{name, schema})
		prev = append(prev, viewInfo{name, schema})
	}

	levels := 1 + rng.Intn(4)
	id := 0
	for level := 1; level <= levels; level++ {
		var cur []viewInfo
		for k := 0; k < 1+rng.Intn(2); k++ {
			refs := []viewInfo{prev[rng.Intn(len(prev))]}
			if rng.Intn(2) == 0 {
				other := all[rng.Intn(len(all))]
				if other.name != refs[0].name {
					refs = append(refs, other)
				}
			}
			b := algebra.NewBuilder()
			var aliases []string
			for r, child := range refs {
				alias := fmt.Sprintf("t%d", r)
				b.From(alias, child.name, child.schema)
				aliases = append(aliases, alias)
			}
			randCol := func(r int) string {
				return aliases[r] + "." + refs[r].schema[rng.Intn(len(refs[r].schema))].Name
			}
			for r := 1; r < len(refs); r++ {
				b.Join(randCol(r-1), randCol(r))
			}
			if rng.Intn(3) == 0 {
				b.Where(&algebra.Binary{
					Op: algebra.OpLe,
					L:  b.Col(randCol(0)),
					R:  &algebra.Const{Value: relation.NewInt(rng.Int63n(5) + 1)},
				})
			}
			if rng.Intn(2) == 0 {
				b.GroupByCol(randCol(0), "g")
				b.Agg("s", delta.AggSum, b.Col(randCol(len(refs)-1)))
				b.Agg("n", delta.AggCount, nil)
			} else {
				b.SelectCol(randCol(0), "p0")
				b.SelectCol(randCol(len(refs)-1), "p1")
			}
			def, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("D%d", id)
			id++
			if err := w.DefineDerived(name, def); err != nil {
				t.Fatal(err)
			}
			cur = append(cur, viewInfo{name, def.OutputSchema()})
			all = append(all, viewInfo{name, def.OutputSchema()})
		}
		prev = cur
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	return w
}

// stageDiffChanges stages a change batch on every base view: inserts only,
// deletes only, or mixed.
func stageDiffChanges(t *testing.T, w *core.Warehouse, rng *rand.Rand) {
	t.Helper()
	kind := rng.Intn(3)
	for _, name := range w.ViewNames() {
		v := w.MustView(name)
		if !v.IsBase() {
			continue
		}
		d := delta.New(v.Schema())
		if kind != 0 {
			for _, r := range v.SortedRows() {
				if rng.Intn(4) == 0 {
					n := int64(1)
					if r.Count > 1 && rng.Intn(2) == 0 {
						n = r.Count
					}
					d.Add(r.Tuple, -n)
				}
			}
		}
		if kind != 1 {
			for i := 0; i < 1+rng.Intn(5); i++ {
				tup := make(relation.Tuple, len(v.Schema()))
				for c := range tup {
					tup[c] = relation.NewInt(rng.Int63n(5))
				}
				d.Add(tup, 1)
			}
		}
		if err := w.StageDelta(name, d); err != nil {
			t.Fatal(err)
		}
	}
}

// viewBags snapshots every view's sorted (tuple, count) bag.
func viewBags(w *core.Warehouse) map[string][]string {
	bags := make(map[string][]string)
	for _, v := range w.ViewNames() {
		for _, r := range w.MustView(v).SortedRows() {
			bags[v] = append(bags[v], fmt.Sprintf("%v x%d", r.Tuple, r.Count))
		}
	}
	return bags
}

func compareBags(t *testing.T, trial int, name string, ref, got map[string][]string) {
	t.Helper()
	for v := range ref {
		a, b := ref[v], got[v]
		if len(a) != len(b) {
			t.Fatalf("trial %d %s: %s has %d rows, reference %d", trial, name, v, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d %s: %s row %d: %s vs reference %s", trial, name, v, i, b[i], a[i])
			}
		}
	}
}

// instDigestsOf extracts the last journal window's Inst-step digests by
// strategy index.
func instDigestsOf(t *testing.T, buf *bytes.Buffer) map[int]uint64 {
	t.Helper()
	lg := readLog(t, buf)
	if len(lg.Windows) == 0 {
		t.Fatal("journal has no windows")
	}
	wl := lg.Windows[len(lg.Windows)-1]
	out := make(map[int]uint64)
	for _, sr := range wl.Steps {
		out[sr.Index] = sr.Digest
	}
	return out
}

// TestCrashRecoveryDifferential is the harness entry point.
func TestCrashRecoveryDifferential(t *testing.T) {
	trials := 100
	if testing.Short() {
		trials = 12
	}
	modes := []struct {
		name     string
		mode     exec.Mode
		parTerms bool
		share    bool
	}{
		{"sequential", exec.ModeSequential, false, false},
		{"staged", exec.ModeStaged, false, false},
		{"dag", exec.ModeDAG, false, false},
		{"term-parallel", exec.ModeSequential, true, false},
		// Window-wide shared computation: crashes must not leak the transient
		// registry, and a sharing-off recovery of a sharing-on window must
		// replay to identical digests (sharing elides scans, not results).
		{"shared", exec.ModeSequential, false, true},
		{"shared-dag", exec.ModeDAG, false, true},
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(20260806 + trial)
		rng := rand.New(rand.NewSource(seed))
		base := diffWarehouse(t, rng)
		var snap bytes.Buffer
		if err := snapshot.Write(base, &snap); err != nil {
			t.Fatal(err)
		}
		stageDiffChanges(t, base, rng)

		g, err := exec.Graph(base)
		if err != nil {
			t.Fatal(err)
		}
		var s strategy.Strategy
		if trial%2 == 0 {
			s = strategy.DualStageVDAG(g)
		} else {
			stats, err := exec.PlanningStats(base)
			if err != nil {
				t.Fatal(err)
			}
			mw, err := planner.MinWork(g, stats)
			if err != nil {
				t.Fatalf("trial %d (%s): %v", trial, g, err)
			}
			s = mw.Strategy
		}
		skipEmpty := rng.Intn(2) == 0
		useIndexes := rng.Intn(3) == 0

		for mi, m := range modes {
			co := core.Options{SkipEmptyDeltas: skipEmpty, UseIndexes: useIndexes, ShareComputation: m.share}
			if m.parTerms {
				co.ParallelTerms = true
				co.Workers = 1 + rng.Intn(4)
			}
			workers := 1 + rng.Intn(4)

			// Reference: the same window, journaled, uninterrupted.
			refW := base.Clone()
			refW.SetOptions(co)
			var refJ bytes.Buffer
			refRes, err := Run(refW, s, Options{
				Journal: journal.NewWriter(&refJ), Seq: trial, Mode: m.mode,
				Workers: workers, Validate: true,
			})
			if err != nil {
				t.Fatalf("trial %d %s reference: %v\nstrategy: %s", trial, m.name, err, s)
			}
			ref := viewBags(refRes.Core)
			refDigests := instDigestsOf(t, &refJ)

			// Crashed run: die at a random step; one in three deaths is a
			// panic that must not take the process down with it.
			crashW := base.Clone()
			crashW.SetOptions(co)
			inj := faults.New(seed + int64(mi))
			crashStep := 1 + rng.Intn(len(s))
			if trial%3 == 0 {
				inj.PanicCrashAt("step", crashStep)
			} else {
				inj.CrashAt("step", crashStep)
			}
			var jbuf bytes.Buffer
			_, err = Run(crashW, s, Options{
				Journal: journal.NewWriter(&jbuf), Seq: trial, Mode: m.mode,
				Workers: workers, Validate: true, Faults: inj,
			})
			if err == nil {
				t.Fatalf("trial %d %s: crash at step %d did not fire", trial, m.name, crashStep)
			}
			lg := readLog(t, &jbuf)
			if !NeedsRecovery(&lg) {
				t.Fatalf("trial %d %s: crashed journal not in-flight", trial, m.name)
			}

			// Restart: rebuild the catalog from the trial seed, restore the
			// pre-window snapshot, recover the in-flight window.
			w2 := diffWarehouse(t, rand.New(rand.NewSource(seed)))
			if err := snapshot.Read(w2, bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatalf("trial %d %s: restoring snapshot: %v", trial, m.name, err)
			}
			res, err := Recover(w2, &lg, Options{Journal: journal.NewWriter(&jbuf)})
			if err != nil {
				t.Fatalf("trial %d %s: recovery after crash at step %d: %v\nstrategy: %s",
					trial, m.name, crashStep, err, s)
			}
			compareBags(t, trial, "recovered "+m.name, ref, viewBags(res.Core))
			if err := res.Core.VerifyAll(); err != nil {
				t.Fatalf("trial %d %s: recovered warehouse inconsistent: %v", trial, m.name, err)
			}

			// The completed journal holds the window exactly once, with
			// every step present once and Inst digests identical to the
			// uninterrupted run's.
			final := readLog(t, &jbuf)
			if NeedsRecovery(&final) || final.CommittedCount() != 1 {
				t.Fatalf("trial %d %s: journal not completed: inflight=%v committed=%d",
					trial, m.name, final.InFlight() != nil, final.CommittedCount())
			}
			gotDigests := instDigestsOf(t, &jbuf)
			if len(gotDigests) != len(s) {
				t.Fatalf("trial %d %s: completed window has %d steps, strategy %d",
					trial, m.name, len(gotDigests), len(s))
			}
			for idx, want := range refDigests {
				if gotDigests[idx] != want {
					t.Fatalf("trial %d %s: step %d installed-delta digest %016x, uninterrupted run %016x",
						trial, m.name, idx, gotDigests[idx], want)
				}
			}
		}
	}
}
