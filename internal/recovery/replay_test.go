package recovery

// Replay is the follower's path: a fully committed shipped window re-executes
// on a replica and must reproduce the leader's digests exactly — and any
// discrepancy (wrong replica state, tampered batch, tampered step record,
// tampered commit) must be a hard error, not silent divergence.

import (
	"bytes"
	"testing"

	"repro/internal/exec"
	"repro/internal/journal"
)

// shipWindow runs one journaled window on the fixture and returns the
// committed WindowLog (as shipped) plus the leader's post-window bags.
func shipWindow(t *testing.T, mode exec.Mode) (*journal.WindowLog, map[string]string) {
	t.Helper()
	w, s := newFixture(t)
	var buf bytes.Buffer
	res, err := Run(w, s, Options{
		Journal: journal.NewWriter(&buf), Seq: 1, Mode: mode, Workers: 2, Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	lg := readLog(t, &buf)
	if len(lg.Windows) != 1 || !lg.Windows[0].Committed() {
		t.Fatalf("expected one committed window, got %+v", lg)
	}
	return &lg.Windows[0], bags(t, res.Core)
}

func TestReplayReproducesLeaderState(t *testing.T) {
	for _, mode := range []exec.Mode{exec.ModeSequential, exec.ModeStaged, exec.ModeDAG} {
		wl, leaderBags := shipWindow(t, mode)
		replica := buildPristine(t) // same sources, no staged batch
		res, err := Replay(replica, wl, Options{})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if !res.Replayed || res.Core == nil {
			t.Fatalf("mode %s: result not marked replayed: %+v", mode, res)
		}
		sameBags(t, "replayed "+string(mode), leaderBags, bags(t, res.Core))
		if res.Report.TotalWork != wl.Commit.TotalWork {
			t.Fatalf("mode %s: work %d vs committed %d", mode, res.Report.TotalWork, wl.Commit.TotalWork)
		}
	}
}

func TestReplayRejectsDivergedReplica(t *testing.T) {
	wl, _ := shipWindow(t, exec.ModeSequential)
	replica, _ := newFixture(t) // has the batch staged: different pre-state
	if _, err := Replay(replica, wl, Options{}); err == nil {
		t.Fatal("replay against a diverged replica state succeeded")
	}
}

func TestReplayRejectsTamperedWindow(t *testing.T) {
	t.Run("batch", func(t *testing.T) {
		wl, _ := shipWindow(t, exec.ModeSequential)
		wl.Begin.Batch[0].Rows[0].Count++ // corrupt one shipped change row
		if _, err := Replay(buildPristine(t), wl, Options{}); err == nil {
			t.Fatal("tampered change batch replayed")
		}
	})
	t.Run("step-digest", func(t *testing.T) {
		wl, _ := shipWindow(t, exec.ModeSequential)
		for i := range wl.Steps {
			if !wl.Steps[i].Skipped && wl.Steps[i].Digest != 0 {
				wl.Steps[i].Digest ^= 1
				break
			}
		}
		if _, err := Replay(buildPristine(t), wl, Options{}); err == nil {
			t.Fatal("tampered step digest replayed")
		}
	})
	t.Run("missing-step", func(t *testing.T) {
		wl, _ := shipWindow(t, exec.ModeSequential)
		wl.Steps = wl.Steps[:len(wl.Steps)-1]
		if _, err := Replay(buildPristine(t), wl, Options{}); err == nil {
			t.Fatal("committed window with a missing step record replayed")
		}
	})
	t.Run("commit-work", func(t *testing.T) {
		wl, _ := shipWindow(t, exec.ModeSequential)
		wl.Commit.TotalWork++
		if _, err := Replay(buildPristine(t), wl, Options{}); err == nil {
			t.Fatal("tampered commit total work replayed")
		}
	})
}

func TestReplayRequiresCommittedWindow(t *testing.T) {
	if _, err := Replay(buildPristine(t), nil, Options{}); err == nil {
		t.Fatal("nil window replayed")
	}
	wl, _ := shipWindow(t, exec.ModeSequential)
	wl.Commit = nil
	if _, err := Replay(buildPristine(t), wl, Options{}); err == nil {
		t.Fatal("uncommitted window replayed")
	}
}

func TestReplayRejectsAbortedWindow(t *testing.T) {
	wl, _ := shipWindow(t, exec.ModeSequential)
	wl.Commit = nil
	wl.Abort = &journal.AbortRecord{Reason: "deadline"}
	if _, err := Replay(buildPristine(t), wl, Options{}); err == nil {
		t.Fatal("aborted window replayed")
	}
}
