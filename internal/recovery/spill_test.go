package recovery

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/strategy"
)

// newBoundedFixture is the recovery fixture scaled up until its hash builds
// exceed a 4 KiB window budget, so every incremental attempt must spill.
func newBoundedFixture(t *testing.T) (*core.Warehouse, strategy.Strategy) {
	t.Helper()
	w := core.New(core.Options{MemoryBudgetBytes: 4096})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.DefineBase("R", schemaR))
	must(w.DefineBase("S", schemaS))
	jb := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
	jb.Join("r.b", "s.b").SelectCol("r.a").SelectCol("s.c")
	must(w.DefineDerived("J", jb.MustBuild()))
	js := w.MustView("J").Schema()
	ab := algebra.NewBuilder().From("j", "J", js)
	ab.GroupByCol("j.a").Agg("total", delta.AggSum, ab.Col("j.c"))
	must(w.DefineDerived("A", ab.MustBuild()))
	var rRows, sRows []relation.Tuple
	for i := int64(0); i < 120; i++ {
		rRows = append(rRows, intRow(i, i%10))
		sRows = append(sRows, intRow(i%10, i*3))
	}
	must(w.LoadBase("R", rRows))
	must(w.LoadBase("S", sRows))
	must(w.RefreshAll())

	dr := delta.New(schemaR)
	dr.Add(intRow(1000, 3), 1)
	dr.Add(intRow(1, 1), -1)
	must(w.StageDelta("R", dr))
	ds := delta.New(schemaS)
	ds.Add(intRow(3, 555), 1)
	must(w.StageDelta("S", ds))

	g, err := exec.Graph(w)
	if err != nil {
		t.Fatal(err)
	}
	return w, strategy.DualStageVDAG(g)
}

// TestSpillFaultTransientRetry: a single failed spill write is transient —
// the attempt aborts and the retry (whose spill succeeds) commits.
func TestSpillFaultTransientRetry(t *testing.T) {
	w, s := newBoundedFixture(t)
	want := refRun(t, w, s)
	inj := faults.New(1)
	inj.FailAt("spill-write", 1)
	res, err := Run(w, s, Options{
		Mode: exec.ModeSequential, Validate: true,
		Faults: inj, Retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 || res.FellBackSequential || res.Recomputed {
		t.Fatalf("spill fault should cost one retry, nothing more: %+v", res)
	}
	var spills int
	for _, stage := range res.Report.Steps {
		for _, step := range stage {
			spills += step.SpillCount
		}
	}
	if spills == 0 {
		t.Fatal("bounded fixture never spilled — the fault cannot have been on the spill path")
	}
	sameBags(t, "retried spilling window", want, bags(t, res.Core))
}

// TestSpillFaultDegradationLadder: when spilling fails persistently, the DAG
// attempt dies, the sequential fallback (which also needs to spill) dies, and
// the recompute rung — which rebuilds from scratch without bulk join state,
// so never touches the spill path — completes the window with the right
// answer. Spill → sequential → recompute, end to end.
func TestSpillFaultDegradationLadder(t *testing.T) {
	w, s := newBoundedFixture(t)
	want := refRun(t, w, s)
	inj := faults.New(1)
	inj.SetProbability("spill-write", 1) // every spill write fails, every attempt
	res, err := Run(w, s, Options{
		Mode: exec.ModeDAG, Workers: 4, Validate: true,
		Faults: inj, FallbackSequential: true, FallbackRecompute: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBackSequential {
		t.Fatalf("DAG attempt did not fall back to sequential: %+v", res)
	}
	if !res.Recomputed || res.Mode != exec.ModeRecompute {
		t.Fatalf("sequential attempt did not fall back to recompute: %+v", res)
	}
	sameBags(t, "recomputed window", want, bags(t, res.Core))
	if err := res.Core.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}
