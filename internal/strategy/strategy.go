// Package strategy models warehouse update strategies exactly as in the
// paper: a strategy is a sequence of Comp and Inst expressions. The package
// provides the correctness conditions for view strategies (C1–C6,
// Definition 3.1) and VDAG strategies (C7–C8, Definition 3.3), the
// extraction of the view strategy "used by" a VDAG strategy (Definition
// 3.2), consistency and strong consistency with view orderings, and
// exhaustive enumeration of the strategy spaces (whose sizes are the ordered
// Bell numbers of Table 1).
package strategy

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is one expression of a strategy: either a Comp or an Inst.
type Expr interface {
	isExpr()
	String() string
	// Key returns a canonical identity string; two expressions are "the
	// same" (condition C6) iff their keys are equal.
	Key() string
}

// Comp is Comp(View, Over): compute the changes of View considering the
// changes of the views in Over (a set; order is not significant).
type Comp struct {
	View string
	Over []string
}

func (Comp) isExpr() {}

// OverSorted returns the Over set in sorted order.
func (c Comp) OverSorted() []string {
	out := append([]string(nil), c.Over...)
	sort.Strings(out)
	return out
}

// Key implements Expr.
func (c Comp) Key() string { return "C:" + c.View + ":" + strings.Join(c.OverSorted(), ",") }

func (c Comp) String() string {
	return fmt.Sprintf("Comp(%s, {%s})", c.View, strings.Join(c.Over, ", "))
}

// Uses reports whether the Comp propagates the changes of view v.
func (c Comp) Uses(v string) bool {
	for _, o := range c.Over {
		if o == v {
			return true
		}
	}
	return false
}

// Reads classifies the operands the Comp's 2^r − 1 maintenance terms scan,
// given the view's FROM-clause references (one entry per reference; repeat
// for self-joins). A referenced view in Over contributes its delta in every
// term and — when there is more than one delta-bound reference in total —
// its pre-state in the terms where another reference carries the delta. A
// referenced view outside Over contributes only its state. The returned
// slices preserve reference order and may repeat views (self-joins).
func (c Comp) Reads(refs []string) (deltas, states []string) {
	r := 0
	for _, v := range refs {
		if c.Uses(v) {
			r++
		}
	}
	for _, v := range refs {
		if c.Uses(v) {
			deltas = append(deltas, v)
			if r > 1 {
				states = append(states, v)
			}
		} else {
			states = append(states, v)
		}
	}
	return deltas, states
}

// Inst is Inst(View): install the pending changes of View.
type Inst struct {
	View string
}

func (Inst) isExpr() {}

// Key implements Expr.
func (i Inst) Key() string { return "I:" + i.View }

func (i Inst) String() string { return fmt.Sprintf("Inst(%s)", i.View) }

// Strategy is a sequence of expressions.
type Strategy []Expr

// String renders the strategy as "⟨E1; E2; …⟩".
func (s Strategy) String() string {
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.String()
	}
	return "⟨" + strings.Join(parts, "; ") + "⟩"
}

// Clone returns a copy of the sequence (expressions are immutable values).
func (s Strategy) Clone() Strategy { return append(Strategy(nil), s...) }

// InstOrder returns the views in order of their Inst expressions.
func (s Strategy) InstOrder() []string {
	var out []string
	for _, e := range s {
		if inst, ok := e.(Inst); ok {
			out = append(out, inst.View)
		}
	}
	return out
}

// Comps returns all Comp expressions in order.
func (s Strategy) Comps() []Comp {
	var out []Comp
	for _, e := range s {
		if c, ok := e.(Comp); ok {
			out = append(out, c)
		}
	}
	return out
}

// IsOneWay reports whether every Comp propagates a single view's changes.
func (s Strategy) IsOneWay() bool {
	for _, e := range s {
		if c, ok := e.(Comp); ok && len(c.Over) != 1 {
			return false
		}
	}
	return true
}

// indexOfInst returns the position of Inst(view), or -1.
func (s Strategy) indexOfInst(view string) int {
	for i, e := range s {
		if inst, ok := e.(Inst); ok && inst.View == view {
			return i
		}
	}
	return -1
}

// OneWayView builds the 1-way view strategy for view that propagates its
// children's changes in the given order (expression (3) of the paper):
//
//	⟨Comp(V,{c1}); Inst(c1); …; Comp(V,{cn}); Inst(cn); Inst(V)⟩
func OneWayView(view string, orderedChildren []string) Strategy {
	var out Strategy
	for _, c := range orderedChildren {
		out = append(out, Comp{View: view, Over: []string{c}}, Inst{View: c})
	}
	return append(out, Inst{View: view})
}

// DualStageView builds the dual-stage view strategy for view (expression
// (2) of the paper): one Comp over all children, then all installs.
func DualStageView(view string, children []string) Strategy {
	out := Strategy{Comp{View: view, Over: append([]string(nil), children...)}}
	for _, c := range children {
		out = append(out, Inst{View: c})
	}
	return append(out, Inst{View: view})
}

// PartitionedView builds the view strategy corresponding to an ordered
// partition of the children: for each block B in order, Comp(V, B) followed
// by the installs of B's members, ending with Inst(V). 1-way and dual-stage
// strategies are the two extreme partitions.
func PartitionedView(view string, blocks [][]string) Strategy {
	var out Strategy
	for _, b := range blocks {
		out = append(out, Comp{View: view, Over: append([]string(nil), b...)})
		for _, c := range b {
			out = append(out, Inst{View: c})
		}
	}
	return append(out, Inst{View: view})
}
