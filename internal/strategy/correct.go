package strategy

import (
	"fmt"

	"repro/internal/vdag"
)

// ValidateViewStrategy checks conditions C1–C6 of Definition 3.1 for a
// strategy updating view, which is defined over children. For a base view
// (no children), the only correct strategy is ⟨Inst(view)⟩.
func ValidateViewStrategy(view string, children []string, s Strategy) error {
	return validateViewStrategyRelaxed(view, children, s, func(string) bool { return false })
}

// validateViewStrategyRelaxed applies the footnote-5 extension: quiescent
// children need not be propagated (C1) or installed (C2), and a quiescent
// view need not install itself. All ordering conditions still bind the
// expressions that are present.
func validateViewStrategyRelaxed(view string, children []string, s Strategy, quiescent func(string) bool) error {
	childSet := make(map[string]bool, len(children))
	for _, c := range children {
		childSet[c] = true
	}
	// Structural check: only expressions belonging to this view strategy.
	for _, e := range s {
		switch x := e.(type) {
		case Comp:
			if x.View != view {
				return fmt.Errorf("strategy: %s does not belong to the view strategy of %s", x, view)
			}
			if len(x.Over) == 0 {
				return fmt.Errorf("strategy: %s propagates an empty set", x)
			}
			seen := make(map[string]bool)
			for _, o := range x.Over {
				if !childSet[o] {
					return fmt.Errorf("strategy: %s propagates %s, which %s is not defined over", x, o, view)
				}
				if seen[o] {
					return fmt.Errorf("strategy: %s lists %s twice", x, o)
				}
				seen[o] = true
			}
		case Inst:
			if x.View != view && !childSet[x.View] {
				return fmt.Errorf("strategy: %s does not belong to the view strategy of %s", x, view)
			}
		default:
			return fmt.Errorf("strategy: unknown expression type %T", e)
		}
	}
	// C6: no duplicate expressions.
	keys := make(map[string]bool, len(s))
	for _, e := range s {
		k := e.Key()
		if keys[k] {
			return fmt.Errorf("strategy: duplicate expression %s (C6)", e)
		}
		keys[k] = true
	}
	// C1: every (non-quiescent) child's changes are propagated by some Comp.
	for _, c := range children {
		if quiescent(c) {
			continue
		}
		found := false
		for _, e := range s {
			if comp, ok := e.(Comp); ok && comp.Uses(c) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("strategy: changes of %s are never propagated to %s (C1)", c, view)
		}
	}
	// C2: every (non-quiescent) child and the view itself are installed.
	for _, c := range append(append([]string(nil), children...), view) {
		if quiescent(c) {
			continue
		}
		if s.indexOfInst(c) < 0 {
			return fmt.Errorf("strategy: %s is never installed (C2)", c)
		}
	}
	// C3: Inst(Vi) comes after every Comp using Vi.
	for i, e := range s {
		comp, ok := e.(Comp)
		if !ok {
			continue
		}
		for _, o := range comp.Over {
			if j := s.indexOfInst(o); j >= 0 && j < i {
				return fmt.Errorf("strategy: %s precedes %s which uses δ%s (C3)", Inst{o}, comp, o)
			}
		}
	}
	// C4: between two Comp expressions, the earlier one's views must be
	// installed before the later Comp runs.
	for i, e := range s {
		ci, ok := e.(Comp)
		if !ok {
			continue
		}
		for j := i + 1; j < len(s); j++ {
			cj, ok := s[j].(Comp)
			if !ok {
				continue
			}
			for _, o := range ci.Over {
				k := s.indexOfInst(o)
				if k < 0 || k > j {
					return fmt.Errorf("strategy: %s runs before %s is installed, violating C4 (it was used by %s)", cj, o, ci)
				}
			}
		}
	}
	// C5: Inst(view) after every Comp. (A quiescent view may omit its
	// install; C2 has already required it otherwise.)
	if iv := s.indexOfInst(view); iv >= 0 {
		for i, e := range s {
			if _, ok := e.(Comp); ok && i > iv {
				return fmt.Errorf("strategy: %s runs after %s (C5)", e, Inst{view})
			}
		}
	}
	return nil
}

// UsedViewStrategy extracts the view strategy used by a VDAG strategy for
// view (Definition 3.2): the subsequence of Comp(view, …), Inst(view), and
// Inst(child) expressions.
func UsedViewStrategy(s Strategy, view string, children []string) Strategy {
	childSet := make(map[string]bool, len(children))
	for _, c := range children {
		childSet[c] = true
	}
	var out Strategy
	for _, e := range s {
		switch x := e.(type) {
		case Comp:
			if x.View == view {
				out = append(out, e)
			}
		case Inst:
			if x.View == view || childSet[x.View] {
				out = append(out, e)
			}
		}
	}
	return out
}

// ValidateVDAGStrategy checks conditions C7–C8 of Definition 3.3 against
// the given VDAG.
func ValidateVDAGStrategy(g *vdag.Graph, s Strategy) error {
	return ValidateVDAGStrategyRelaxed(g, s, nil)
}

// ValidateVDAGStrategyRelaxed is ValidateVDAGStrategy with the paper's
// footnote-5 extension: a view for which quiescent returns true (its delta
// is empty and nothing above it changes) need not be propagated or
// installed. Ordering conditions still apply to whatever expressions the
// strategy does contain. A nil quiescent predicate requires everything.
func ValidateVDAGStrategyRelaxed(g *vdag.Graph, s Strategy, quiescent func(view string) bool) error {
	if quiescent == nil {
		quiescent = func(string) bool { return false }
	}
	// Every expression must reference known views.
	for _, e := range s {
		switch x := e.(type) {
		case Comp:
			if !g.Has(x.View) {
				return fmt.Errorf("strategy: %s references unknown view", x)
			}
		case Inst:
			if !g.Has(x.View) {
				return fmt.Errorf("strategy: %s references unknown view", x)
			}
		default:
			return fmt.Errorf("strategy: unknown expression type %T", e)
		}
	}
	// C7: the used view strategy of every view must be correct.
	for _, v := range g.Views() {
		used := UsedViewStrategy(s, v, g.Children(v))
		if quiescent(v) && !touchesView(used, v) {
			// Footnote 5 / deferred maintenance: a skippable view whose own
			// expressions are absent needs no validation — the child
			// installs in its used subsequence belong to other views'
			// strategies. If any of its own expressions are present, the
			// strategy chose to update it and full correctness applies.
			continue
		}
		if err := validateViewStrategyRelaxed(v, g.Children(v), used, quiescent); err != nil {
			return fmt.Errorf("strategy: view %s (C7): %w", v, err)
		}
	}
	// C8: changes of Vj must be fully computed before they are propagated
	// upward: every Comp(Vj, …) precedes every Comp(Vk, {… Vj …}).
	for i, e := range s {
		ck, ok := e.(Comp)
		if !ok {
			continue
		}
		for _, vj := range ck.Over {
			if g.IsBase(vj) {
				continue
			}
			for j := i + 1; j < len(s); j++ {
				cj, ok := s[j].(Comp)
				if !ok || cj.View != vj {
					continue
				}
				return fmt.Errorf("strategy: %s runs after %s already propagated δ%s (C8)", cj, ck, vj)
			}
		}
	}
	return nil
}

// touchesView reports whether the sequence contains any of the view's own
// expressions: a Comp computing it or its install.
func touchesView(s Strategy, view string) bool {
	for _, e := range s {
		switch x := e.(type) {
		case Comp:
			if x.View == view {
				return true
			}
		case Inst:
			if x.View == view {
				return true
			}
		}
	}
	return false
}

// IsConsistent reports whether the VDAG strategy is consistent with the
// view ordering (Section 4/5): for every view, the used view strategy
// installs that view's children in an order compatible with the ordering.
func IsConsistent(g *vdag.Graph, s Strategy, ordering []string) bool {
	pos := orderingPos(ordering)
	for _, v := range g.DerivedViews() {
		children := g.Children(v)
		used := UsedViewStrategy(s, v, children)
		childSet := make(map[string]bool, len(children))
		for _, c := range children {
			childSet[c] = true
		}
		prev := -1
		for _, e := range used.InstOrder() {
			if e == v || !childSet[e] {
				continue
			}
			p, ok := pos[e]
			if !ok {
				continue
			}
			if p < prev {
				return false
			}
			prev = p
		}
	}
	return true
}

// IsStronglyConsistent reports whether the strategy installs all views in
// an order compatible with the ordering (Section 6): Inst(Vi) < Inst(Vj)
// implies Vi before Vj in the ordering. Views missing from the ordering are
// unconstrained.
func IsStronglyConsistent(s Strategy, ordering []string) bool {
	pos := orderingPos(ordering)
	prev := -1
	for _, v := range s.InstOrder() {
		p, ok := pos[v]
		if !ok {
			continue
		}
		if p < prev {
			return false
		}
		prev = p
	}
	return true
}

func orderingPos(ordering []string) map[string]int {
	pos := make(map[string]int, len(ordering))
	for i, v := range ordering {
		pos[v] = i
	}
	return pos
}

// DualStageVDAG builds the dual-stage VDAG strategy of the paper's
// Experiment 4: every derived view propagates all of its children's changes
// in a single Comp (in topological order), then all changes are installed.
func DualStageVDAG(g *vdag.Graph) Strategy {
	var out Strategy
	for _, v := range g.Views() { // topological order
		if g.IsDerived(v) {
			out = append(out, Comp{View: v, Over: g.Children(v)})
		}
	}
	for _, v := range g.Views() {
		out = append(out, Inst{View: v})
	}
	return out
}
