package strategy

import (
	"testing"

	"repro/internal/vdag"
)

// TestCountViewStrategiesTable1 reproduces Table 1 of the paper.
func TestCountViewStrategiesTable1(t *testing.T) {
	want := map[int]int64{1: 1, 2: 3, 3: 13, 4: 75, 5: 541, 6: 4683}
	for n, w := range want {
		got, err := CountViewStrategies(n)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("CountViewStrategies(%d) = %d, want %d", n, got, w)
		}
	}
	if got, _ := CountViewStrategies(0); got != 1 {
		t.Errorf("CountViewStrategies(0) = %d", got)
	}
	if _, err := CountViewStrategies(-1); err == nil {
		t.Errorf("negative n accepted")
	}
	if _, err := CountViewStrategies(16); err == nil {
		t.Errorf("overflowing n accepted")
	}
}

func TestOrderedPartitionsMatchesCount(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	for n := 0; n <= len(items); n++ {
		parts := OrderedPartitions(items[:n])
		want, _ := CountViewStrategies(n)
		if n == 0 {
			want = 1
		}
		if int64(len(parts)) != want {
			t.Errorf("n=%d: %d ordered partitions, want %d", n, len(parts), want)
		}
		// Each partition must cover the items exactly once.
		for _, p := range parts {
			seen := make(map[string]int)
			for _, block := range p {
				if len(block) == 0 {
					t.Fatalf("empty block in %v", p)
				}
				for _, it := range block {
					seen[it]++
				}
			}
			if len(seen) != n {
				t.Fatalf("partition %v misses items", p)
			}
			for it, c := range seen {
				if c != 1 {
					t.Fatalf("item %s appears %d times in %v", it, c, p)
				}
			}
		}
		// All partitions distinct.
		uniq := make(map[string]bool)
		for _, p := range parts {
			key := ""
			for _, b := range p {
				key += "|"
				for _, it := range b {
					key += it + ","
				}
			}
			if uniq[key] {
				t.Fatalf("duplicate partition %v", p)
			}
			uniq[key] = true
		}
	}
}

func TestPermutations(t *testing.T) {
	ps := Permutations([]string{"x", "y", "z"})
	if len(ps) != 6 {
		t.Fatalf("%d permutations", len(ps))
	}
	uniq := make(map[string]bool)
	for _, p := range ps {
		uniq[p[0]+p[1]+p[2]] = true
	}
	if len(uniq) != 6 {
		t.Errorf("permutations not distinct: %v", ps)
	}
	if got := Permutations(nil); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("Permutations(nil) = %v", got)
	}
}

func TestEnumerateViewStrategiesAllCorrectAndDistinct(t *testing.T) {
	children := []string{"A", "B", "C"}
	ss := EnumerateViewStrategies("V", children)
	if len(ss) != 13 {
		t.Fatalf("%d strategies for n=3, want 13", len(ss))
	}
	uniq := make(map[string]bool)
	for _, s := range ss {
		if err := ValidateViewStrategy("V", children, s); err != nil {
			t.Errorf("invalid: %s: %v", s, err)
		}
		if uniq[s.String()] {
			t.Errorf("duplicate: %s", s)
		}
		uniq[s.String()] = true
	}
}

func TestEnumerateOneWayViewStrategies(t *testing.T) {
	ss := EnumerateOneWayViewStrategies("V", []string{"A", "B", "C"})
	if len(ss) != 6 {
		t.Fatalf("%d 1-way strategies, want 6", len(ss))
	}
	for _, s := range ss {
		if !s.IsOneWay() {
			t.Errorf("not 1-way: %s", s)
		}
		if err := ValidateViewStrategy("V", []string{"A", "B", "C"}, s); err != nil {
			t.Errorf("invalid: %s: %v", s, err)
		}
	}
}

func TestEnumerateVDAGStrategiesSingleView(t *testing.T) {
	// One derived view over two bases: the VDAG strategy space is exactly
	// the view strategy space (3 partitions), each with its interleavings.
	g := vdag.MustBuild(
		[2]interface{}{"A", nil},
		[2]interface{}{"B", nil},
		[2]interface{}{"V", []string{"A", "B"}},
	)
	ss := EnumerateVDAGStrategies(g)
	if len(ss) == 0 {
		t.Fatal("no strategies")
	}
	for _, s := range ss {
		if err := ValidateVDAGStrategy(g, s); err != nil {
			t.Errorf("invalid: %s: %v", s, err)
		}
	}
	// The three canonical view strategies must appear among them.
	want := []Strategy{
		OneWayView("V", []string{"A", "B"}),
		OneWayView("V", []string{"B", "A"}),
		DualStageView("V", []string{"A", "B"}),
	}
	for _, w := range want {
		found := false
		for _, s := range ss {
			if s.String() == w.String() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing canonical strategy %s", w)
		}
	}
}

func TestEnumerateVDAGStrategiesFig3AllCorrect(t *testing.T) {
	g := vdag.MustBuild(
		[2]interface{}{"V1", nil},
		[2]interface{}{"V2", nil},
		[2]interface{}{"V3", nil},
		[2]interface{}{"V4", []string{"V2", "V3"}},
		[2]interface{}{"V5", []string{"V4", "V1"}},
	)
	ss := EnumerateVDAGStrategies(g)
	if len(ss) == 0 {
		t.Fatal("no strategies enumerated")
	}
	for _, s := range ss {
		if err := ValidateVDAGStrategy(g, s); err != nil {
			t.Fatalf("invalid: %s: %v", s, err)
		}
	}
	t.Logf("fig3 VDAG has %d enumerated correct strategies", len(ss))
}
