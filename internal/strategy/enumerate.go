package strategy

import (
	"fmt"
	"sort"

	"repro/internal/vdag"
)

// CountViewStrategies returns the number of correct view strategies for a
// view defined over n views: the ordered Bell (Fubini) number a(n), via the
// recurrence a(n) = Σ_{k=1..n} C(n,k)·a(n−k). This reproduces Table 1 of
// the paper (1, 3, 13, 75, 541, 4683 for n = 1..6).
func CountViewStrategies(n int) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("strategy: negative n")
	}
	if n > 15 {
		return 0, fmt.Errorf("strategy: count overflows int64 beyond n=15")
	}
	a := make([]int64, n+1)
	a[0] = 1
	for m := 1; m <= n; m++ {
		var sum int64
		c := int64(1) // C(m, k)
		for k := 1; k <= m; k++ {
			c = c * int64(m-k+1) / int64(k)
			sum += c * a[m-k]
		}
		a[m] = sum
	}
	return a[n], nil
}

// OrderedPartitions enumerates every ordered set partition of items: every
// way of splitting items into non-empty blocks where both the assignment and
// the order of blocks matter. The number of results is the ordered Bell
// number of len(items).
func OrderedPartitions(items []string) [][][]string {
	if len(items) == 0 {
		return [][][]string{{}}
	}
	var out [][][]string
	// Choose the block containing items[0]: every subset of the rest joins
	// it; recursively partition the remainder, then insert the block at
	// every position.
	head, rest := items[0], items[1:]
	n := len(rest)
	for mask := 0; mask < 1<<uint(n); mask++ {
		block := []string{head}
		var remain []string
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				block = append(block, rest[i])
			} else {
				remain = append(remain, rest[i])
			}
		}
		for _, sub := range OrderedPartitions(remain) {
			for pos := 0; pos <= len(sub); pos++ {
				part := make([][]string, 0, len(sub)+1)
				part = append(part, sub[:pos]...)
				part = append(part, block)
				part = append(part, sub[pos:]...)
				out = append(out, part)
			}
		}
	}
	return out
}

// Permutations enumerates all permutations of items.
func Permutations(items []string) [][]string {
	var out [][]string
	cur := append([]string(nil), items...)
	var rec func(k int)
	rec = func(k int) {
		if k == len(cur) {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for i := k; i < len(cur); i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	return out
}

// EnumerateViewStrategies enumerates one representative of every correct
// view strategy for view over children — one per ordered partition of the
// children. (Within a partition, reordering the Inst expressions of a block
// does not change the work incurred — footnotes 3 and 4 of the paper — so
// one representative per partition covers the whole space up to
// work-equivalence.)
func EnumerateViewStrategies(view string, children []string) []Strategy {
	parts := OrderedPartitions(children)
	out := make([]Strategy, 0, len(parts))
	for _, p := range parts {
		out = append(out, PartitionedView(view, p))
	}
	return out
}

// EnumerateOneWayViewStrategies enumerates the n! 1-way view strategies.
func EnumerateOneWayViewStrategies(view string, children []string) []Strategy {
	perms := Permutations(children)
	out := make([]Strategy, 0, len(perms))
	for _, p := range perms {
		out = append(out, OneWayView(view, p))
	}
	return out
}

// EnumerateVDAGStrategies enumerates every correct VDAG strategy of g, up
// to work-equivalence: for each derived view it considers every ordered
// partition of that view's children (the full view-strategy space), and for
// each combination it enumerates every interleaving compatible with the
// correctness conditions. The output is exponential in the size of the
// VDAG; this is the brute-force oracle the tests use to certify MinWork and
// Prune on small graphs.
func EnumerateVDAGStrategies(g *vdag.Graph) []Strategy {
	derived := g.DerivedViews()
	var out []Strategy
	seen := make(map[string]bool)

	// choices[i] is the ordered partition chosen for derived[i].
	choices := make([][][]string, len(derived))
	var assign func(i int)
	assign = func(i int) {
		if i == len(derived) {
			for _, s := range interleave(g, derived, choices) {
				k := s.String()
				if !seen[k] {
					seen[k] = true
					out = append(out, s)
				}
			}
			return
		}
		for _, p := range OrderedPartitions(g.Children(derived[i])) {
			choices[i] = p
			assign(i + 1)
		}
	}
	assign(0)
	return out
}

// interleave enumerates all correct VDAG strategies whose used view
// strategies equal the chosen partitions. It builds the expression set and
// the precedence constraints the choices induce, then enumerates all
// topological orders.
func interleave(g *vdag.Graph, derived []string, choices [][][]string) []Strategy {
	// Collect expressions: per-view Comp sequences (from partitions) and
	// one Inst per view.
	exprs := make(map[string]Expr)
	addExpr := func(e Expr) string {
		k := e.Key()
		exprs[k] = e
		return k
	}
	for _, v := range g.Views() {
		addExpr(Inst{View: v})
	}
	// prereq[k] lists keys that must precede expression k.
	prereq := make(map[string][]string)
	addEdge := func(after, before string) {
		prereq[after] = append(prereq[after], before)
	}
	for i, v := range derived {
		part := choices[i]
		// Minimal precedence constraints of a correct view strategy with
		// these blocks: comps are chained (the chosen propagation order);
		// each block's installs fall after that block's comp (C3) and
		// before the next comp (C4); Inst(v) falls after the last comp
		// (C5). Installs within a block, and Inst(v) relative to the last
		// block's installs, are otherwise free (footnotes 3–4 of the
		// paper), so all such interleavings are enumerated.
		var compKeys []string
		for _, block := range part {
			compKeys = append(compKeys, addExpr(Comp{View: v, Over: append([]string(nil), block...)}))
		}
		for bi := 1; bi < len(compKeys); bi++ {
			addEdge(compKeys[bi], compKeys[bi-1])
		}
		for bi, block := range part {
			for _, b := range block {
				instKey := Inst{View: b}.Key()
				addEdge(instKey, compKeys[bi])
				if bi+1 < len(compKeys) {
					addEdge(compKeys[bi+1], instKey)
				}
			}
		}
		addEdge(Inst{View: v}.Key(), compKeys[len(compKeys)-1])
	}
	// C8: Comp(Vk, {…Vj…}) after every Comp(Vj, …).
	for k, e := range exprs {
		ck, ok := e.(Comp)
		if !ok {
			continue
		}
		for _, vj := range ck.Over {
			if g.IsBase(vj) {
				continue
			}
			for k2, e2 := range exprs {
				if cj, ok := e2.(Comp); ok && cj.View == vj {
					addEdge(k, k2)
				}
			}
		}
	}
	// Enumerate topological orders by DFS over ready expressions.
	keys := make([]string, 0, len(exprs))
	for k := range exprs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	done := make(map[string]bool, len(keys))
	var cur Strategy
	var out []Strategy
	var rec func()
	rec = func() {
		if len(cur) == len(keys) {
			out = append(out, cur.Clone())
			return
		}
		for _, k := range keys {
			if done[k] {
				continue
			}
			ready := true
			for _, p := range prereq[k] {
				if !done[p] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			done[k] = true
			cur = append(cur, exprs[k])
			rec()
			cur = cur[:len(cur)-1]
			done[k] = false
		}
	}
	rec()
	return out
}
