package strategy

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/vdag"
)

func fig3() *vdag.Graph {
	return vdag.MustBuild(
		[2]interface{}{"V1", nil},
		[2]interface{}{"V2", nil},
		[2]interface{}{"V3", nil},
		[2]interface{}{"V4", []string{"V2", "V3"}},
		[2]interface{}{"V5", []string{"V4", "V1"}},
	)
}

func TestExprBasics(t *testing.T) {
	c := Comp{View: "V", Over: []string{"B", "A"}}
	if c.String() != "Comp(V, {B, A})" {
		t.Errorf("String = %q", c.String())
	}
	if c.Key() != "C:V:A,B" {
		t.Errorf("Key = %q (must be order-insensitive)", c.Key())
	}
	if !c.Uses("A") || c.Uses("Z") {
		t.Errorf("Uses wrong")
	}
	i := Inst{View: "V"}
	if i.String() != "Inst(V)" || i.Key() != "I:V" {
		t.Errorf("Inst rendering wrong")
	}
	c2 := Comp{View: "V", Over: []string{"A", "B"}}
	if c.Key() != c2.Key() {
		t.Errorf("set equality broken")
	}
}

func TestStrategyHelpers(t *testing.T) {
	s := OneWayView("V", []string{"A", "B"})
	want := "⟨Comp(V, {A}); Inst(A); Comp(V, {B}); Inst(B); Inst(V)⟩"
	if s.String() != want {
		t.Errorf("OneWayView = %s", s)
	}
	if !s.IsOneWay() {
		t.Errorf("1-way not recognized")
	}
	if got := s.InstOrder(); !reflect.DeepEqual(got, []string{"A", "B", "V"}) {
		t.Errorf("InstOrder = %v", got)
	}
	if got := len(s.Comps()); got != 2 {
		t.Errorf("Comps = %d", got)
	}
	d := DualStageView("V", []string{"A", "B"})
	if d.IsOneWay() {
		t.Errorf("dual-stage misclassified as 1-way")
	}
	if d.String() != "⟨Comp(V, {A, B}); Inst(A); Inst(B); Inst(V)⟩" {
		t.Errorf("DualStageView = %s", d)
	}
	p := PartitionedView("V", [][]string{{"A"}, {"B", "C"}})
	if p.String() != "⟨Comp(V, {A}); Inst(A); Comp(V, {B, C}); Inst(B); Inst(C); Inst(V)⟩" {
		t.Errorf("PartitionedView = %s", p)
	}
	cl := s.Clone()
	cl[0] = Inst{View: "X"}
	if _, ok := s[0].(Comp); !ok {
		t.Errorf("Clone aliases")
	}
}

func TestValidateViewStrategyAcceptsCanonicalForms(t *testing.T) {
	children := []string{"A", "B", "C"}
	for _, s := range EnumerateViewStrategies("V", children) {
		if err := ValidateViewStrategy("V", children, s); err != nil {
			t.Errorf("enumerated strategy rejected: %s: %v", s, err)
		}
	}
	// Base view: only ⟨Inst(V)⟩.
	if err := ValidateViewStrategy("B", nil, Strategy{Inst{View: "B"}}); err != nil {
		t.Errorf("base view strategy rejected: %v", err)
	}
}

func TestValidateViewStrategyRejections(t *testing.T) {
	children := []string{"A", "B"}
	cases := []struct {
		name string
		s    Strategy
		want string
	}{
		{"missing propagation (C1)", Strategy{
			Comp{"V", []string{"A"}}, Inst{"A"}, Inst{"B"}, Inst{"V"},
		}, "C1"},
		{"missing install (C2)", Strategy{
			Comp{"V", []string{"A"}}, Inst{"A"}, Comp{"V", []string{"B"}}, Inst{"B"},
		}, "C2"},
		{"install before comp (C3)", Strategy{
			Inst{"A"}, Comp{"V", []string{"A"}}, Comp{"V", []string{"B"}}, Inst{"B"}, Inst{"V"},
		}, "C3"},
		{"missing install between comps (C4)", Strategy{
			Comp{"V", []string{"A"}}, Comp{"V", []string{"B"}}, Inst{"A"}, Inst{"B"}, Inst{"V"},
		}, "C4"},
		{"comp after own install (C5)", Strategy{
			Comp{"V", []string{"A"}}, Inst{"A"}, Inst{"V"}, Comp{"V", []string{"B"}}, Inst{"B"},
		}, "C5"},
		{"duplicate expression (C6)", Strategy{
			Comp{"V", []string{"A"}}, Comp{"V", []string{"A"}}, Inst{"A"}, Comp{"V", []string{"B"}}, Inst{"B"}, Inst{"V"},
		}, "C6"},
		{"two comps propagating same view", Strategy{
			Comp{"V", []string{"A", "B"}}, Comp{"V", []string{"A"}}, Inst{"A"}, Inst{"B"}, Inst{"V"},
		}, "C4"},
		{"foreign comp", Strategy{
			Comp{"W", []string{"A"}}, Comp{"V", []string{"A", "B"}}, Inst{"A"}, Inst{"B"}, Inst{"V"},
		}, "belong"},
		{"foreign install", Strategy{
			Comp{"V", []string{"A", "B"}}, Inst{"A"}, Inst{"B"}, Inst{"Z"}, Inst{"V"},
		}, "belong"},
		{"empty comp", Strategy{
			Comp{"V", nil}, Comp{"V", []string{"A", "B"}}, Inst{"A"}, Inst{"B"}, Inst{"V"},
		}, "empty"},
		{"comp over non-child", Strategy{
			Comp{"V", []string{"Z"}}, Comp{"V", []string{"A", "B"}}, Inst{"A"}, Inst{"B"}, Inst{"V"},
		}, "not defined over"},
		{"comp lists child twice", Strategy{
			Comp{"V", []string{"A", "A", "B"}}, Inst{"A"}, Inst{"B"}, Inst{"V"},
		}, "twice"},
	}
	for _, c := range cases {
		err := ValidateViewStrategy("V", children, c.s)
		if err == nil {
			t.Errorf("%s: accepted %s", c.name, c.s)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestUsedViewStrategy(t *testing.T) {
	// VDAG strategy (6) from Example 3.1.
	s := Strategy{
		Comp{"V4", []string{"V2"}}, Inst{"V2"}, Comp{"V4", []string{"V3"}}, Inst{"V3"},
		Comp{"V5", []string{"V4"}}, Inst{"V4"}, Comp{"V5", []string{"V1"}}, Inst{"V1"}, Inst{"V5"},
	}
	u4 := UsedViewStrategy(s, "V4", []string{"V2", "V3"})
	if u4.String() != "⟨Comp(V4, {V2}); Inst(V2); Comp(V4, {V3}); Inst(V3); Inst(V4)⟩" {
		t.Errorf("used(V4) = %s", u4)
	}
	u5 := UsedViewStrategy(s, "V5", []string{"V4", "V1"})
	if u5.String() != "⟨Comp(V5, {V4}); Inst(V4); Comp(V5, {V1}); Inst(V1); Inst(V5)⟩" {
		t.Errorf("used(V5) = %s", u5)
	}
	u1 := UsedViewStrategy(s, "V1", nil)
	if u1.String() != "⟨Inst(V1)⟩" {
		t.Errorf("used(V1) = %s", u1)
	}
}

func TestValidateVDAGStrategyExample31(t *testing.T) {
	g := fig3()
	s := Strategy{
		Comp{"V4", []string{"V2"}}, Inst{"V2"}, Comp{"V4", []string{"V3"}}, Inst{"V3"},
		Comp{"V5", []string{"V4"}}, Inst{"V4"}, Comp{"V5", []string{"V1"}}, Inst{"V1"}, Inst{"V5"},
	}
	if err := ValidateVDAGStrategy(g, s); err != nil {
		t.Fatalf("Example 3.1 strategy rejected: %v", err)
	}
}

func TestValidateVDAGStrategyC8(t *testing.T) {
	g := fig3()
	// Propagate δV4 to V5 before δV3 has been propagated to V4: C8 violated.
	s := Strategy{
		Comp{"V4", []string{"V2"}}, Inst{"V2"},
		Comp{"V5", []string{"V4"}},
		Comp{"V4", []string{"V3"}}, Inst{"V3"},
		Inst{"V4"}, Comp{"V5", []string{"V1"}}, Inst{"V1"}, Inst{"V5"},
	}
	err := ValidateVDAGStrategy(g, s)
	if err == nil || !strings.Contains(err.Error(), "C8") {
		t.Errorf("C8 violation not caught: %v", err)
	}
	// Unknown views rejected.
	if err := ValidateVDAGStrategy(g, Strategy{Comp{"X", []string{"V1"}}}); err == nil {
		t.Errorf("unknown comp view accepted")
	}
	if err := ValidateVDAGStrategy(g, Strategy{Inst{"X"}}); err == nil {
		t.Errorf("unknown inst view accepted")
	}
}

func TestExample12Incompatibility(t *testing.T) {
	// Figure 2: V and V' both over {C, O, L}. Strategy 2 for V (order C, O,
	// L) cannot be combined with Strategy 3 for V' (L first, then {C,O}) —
	// the paper's Example 1.2.
	g := vdag.MustBuild(
		[2]interface{}{"C", nil},
		[2]interface{}{"O", nil},
		[2]interface{}{"L", nil},
		[2]interface{}{"V", []string{"C", "O", "L"}},
		[2]interface{}{"Vp", []string{"C", "O", "L"}},
	)
	// Try to interleave: Strategy 2 needs Inst(C) < Inst(O) < Inst(L);
	// Strategy 3 needs Inst(L) < Inst(C). Any sequence containing both as
	// subsequences violates C6 (duplicate Inst) or C3/C4.
	combined := Strategy{
		Comp{"V", []string{"C"}}, Comp{"Vp", []string{"L"}}, Inst{"L"},
		Inst{"C"},
		Comp{"V", []string{"O"}}, Inst{"O"},
		Comp{"V", []string{"L"}},
		Comp{"Vp", []string{"C", "O"}},
		Inst{"V"}, Inst{"Vp"},
	}
	if err := ValidateVDAGStrategy(g, combined); err == nil {
		t.Errorf("incompatible combination accepted")
	}
	// Strategy 1 for V (dual-stage) combined with Strategy 3 for V' is
	// consistent (the paper notes this combination works).
	ok := Strategy{
		Comp{"Vp", []string{"L"}},
		Comp{"V", []string{"C", "O", "L"}},
		Inst{"L"},
		Comp{"Vp", []string{"C", "O"}},
		Inst{"C"}, Inst{"O"},
		Inst{"V"}, Inst{"Vp"},
	}
	if err := ValidateVDAGStrategy(g, ok); err != nil {
		t.Errorf("Strategy 1 + Strategy 3 combination rejected: %v", err)
	}
}

func TestConsistency(t *testing.T) {
	g := fig3()
	s := Strategy{
		Comp{"V4", []string{"V2"}}, Inst{"V2"}, Comp{"V4", []string{"V3"}}, Inst{"V3"},
		Comp{"V5", []string{"V4"}}, Inst{"V4"}, Comp{"V5", []string{"V1"}}, Inst{"V1"}, Inst{"V5"},
	}
	// Example 5.1 ordering.
	if !IsConsistent(g, s, []string{"V4", "V2", "V1", "V3", "V5"}) {
		t.Errorf("strategy should be consistent with the Example 5.1 ordering")
	}
	if IsConsistent(g, s, []string{"V3", "V2", "V4", "V1", "V5"}) {
		t.Errorf("strategy should be inconsistent with V3-before-V2 ordering")
	}
	// Strong consistency pins every install pair.
	if !IsStronglyConsistent(s, []string{"V2", "V3", "V4", "V1", "V5"}) {
		t.Errorf("should be strongly consistent with its own install order")
	}
	if IsStronglyConsistent(s, []string{"V4", "V2", "V1", "V3", "V5"}) {
		t.Errorf("Inst(V2) < Inst(V4) contradicts V4-first ordering")
	}
}

// Lemma 6.1: every 1-way VDAG strategy is strongly consistent with exactly
// one ordering of the installed views — its own install order.
func TestLemma61(t *testing.T) {
	g := fig3()
	strategies := EnumerateVDAGStrategies(g)
	if len(strategies) == 0 {
		t.Fatal("no strategies enumerated")
	}
	for _, s := range strategies {
		if !s.IsOneWay() {
			continue
		}
		own := s.InstOrder()
		if !IsStronglyConsistent(s, own) {
			t.Fatalf("%s not strongly consistent with its own install order", s)
		}
		for _, perm := range Permutations(own) {
			same := reflect.DeepEqual(perm, own)
			if IsStronglyConsistent(s, perm) != same {
				t.Fatalf("%s strongly consistent with %v (own order %v)", s, perm, own)
			}
		}
	}
}

func TestDualStageVDAG(t *testing.T) {
	g := fig3()
	s := DualStageVDAG(g)
	if err := ValidateVDAGStrategy(g, s); err != nil {
		t.Fatalf("dual-stage VDAG strategy invalid: %v", err)
	}
	if s.IsOneWay() {
		t.Errorf("dual-stage should not be 1-way")
	}
	// Exactly one comp per derived view, all comps before all insts.
	comps := s.Comps()
	if len(comps) != 2 {
		t.Errorf("comps = %v", comps)
	}
	sawInst := false
	for _, e := range s {
		switch e.(type) {
		case Inst:
			sawInst = true
		case Comp:
			if sawInst {
				t.Errorf("comp after inst in dual-stage strategy")
			}
		}
	}
}
