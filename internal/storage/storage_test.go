package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/delta"
	"repro/internal/relation"
)

var schema = relation.Schema{{Name: "k", Kind: relation.KindInt}, {Name: "v", Kind: relation.KindString}}

func row(k int64, v string) relation.Tuple {
	return relation.Tuple{relation.NewInt(k), relation.NewString(v)}
}

func TestTableInsertDeleteCount(t *testing.T) {
	tbl := NewTable(schema)
	tbl.Insert(row(1, "a"), 2)
	tbl.Insert(row(2, "b"), 1)
	if tbl.Cardinality() != 3 || tbl.DistinctCount() != 2 {
		t.Fatalf("card=%d distinct=%d", tbl.Cardinality(), tbl.DistinctCount())
	}
	if tbl.Count(row(1, "a")) != 2 || tbl.Count(row(9, "z")) != 0 {
		t.Errorf("Count wrong")
	}
	if err := tbl.Delete(row(1, "a"), 1); err != nil {
		t.Fatal(err)
	}
	if tbl.Count(row(1, "a")) != 1 || tbl.Cardinality() != 2 {
		t.Errorf("after delete: count=%d card=%d", tbl.Count(row(1, "a")), tbl.Cardinality())
	}
	if err := tbl.Delete(row(1, "a"), 5); err == nil {
		t.Errorf("over-delete should fail")
	}
	if err := tbl.Delete(row(1, "a"), 0); err == nil {
		t.Errorf("zero-delete should fail")
	}
}

func TestTableInsertNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	NewTable(schema).Insert(row(1, "a"), 0)
}

func TestTableScanEarlyStop(t *testing.T) {
	tbl := NewTable(schema)
	tbl.Insert(row(1, "a"), 1)
	tbl.Insert(row(2, "b"), 1)
	n := 0
	tbl.Scan(func(relation.Tuple, int64) bool { n++; return false })
	if n != 1 {
		t.Errorf("scan visited %d rows after early stop", n)
	}
}

func TestTableCloneEqualClear(t *testing.T) {
	tbl := NewTable(schema)
	tbl.Insert(row(1, "a"), 2)
	cl := tbl.Clone()
	if !tbl.Equal(cl) {
		t.Fatalf("clone not equal")
	}
	cl.Insert(row(2, "b"), 1)
	if tbl.Equal(cl) {
		t.Errorf("Equal should detect extra row")
	}
	cl2 := tbl.Clone()
	_ = cl2.Delete(row(1, "a"), 1)
	cl2.Insert(row(1, "a"), 1)
	if !tbl.Equal(cl2) {
		t.Errorf("same bag should be equal")
	}
	tbl.Clear()
	if tbl.Cardinality() != 0 || tbl.DistinctCount() != 0 {
		t.Errorf("clear failed")
	}
}

func TestTableSortedRows(t *testing.T) {
	tbl := NewTable(schema)
	tbl.Insert(row(2, "b"), 1)
	tbl.Insert(row(1, "a"), 3)
	rows := tbl.SortedRows()
	if len(rows) != 2 || rows[0].Tuple[0].Int() != 1 || rows[0].Count != 3 {
		t.Errorf("SortedRows = %v", rows)
	}
}

func TestApplyDelta(t *testing.T) {
	tbl := NewTable(schema)
	tbl.Insert(row(1, "a"), 2)
	d := delta.New(schema)
	d.Add(row(1, "a"), -1)
	d.Add(row(2, "b"), 3)
	if err := tbl.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if tbl.Count(row(1, "a")) != 1 || tbl.Count(row(2, "b")) != 3 {
		t.Errorf("ApplyDelta wrong state")
	}
}

func TestApplyDeltaValidatesBeforeMutating(t *testing.T) {
	tbl := NewTable(schema)
	tbl.Insert(row(1, "a"), 1)
	d := delta.New(schema)
	d.Add(row(2, "b"), 5)  // valid insert
	d.Add(row(1, "a"), -3) // invalid over-delete
	before := tbl.Clone()
	if err := tbl.ApplyDelta(d); err == nil {
		t.Fatal("expected error")
	}
	if !tbl.Equal(before) {
		t.Errorf("failed ApplyDelta mutated the table")
	}
}

func TestApplyDeltaSchemaMismatch(t *testing.T) {
	tbl := NewTable(schema)
	d := delta.New(relation.Schema{{Name: "x", Kind: relation.KindInt}})
	if err := tbl.ApplyDelta(d); err == nil {
		t.Errorf("expected schema mismatch error")
	}
}

// Property: applying a delta then its negation restores the original table.
func TestApplyDeltaRoundTripQuick(t *testing.T) {
	f := func(base []uint8, plus []uint8, minusIdx []uint8) bool {
		tbl := NewTable(schema)
		for _, b := range base {
			tbl.Insert(row(int64(b%8), "x"), 1)
		}
		orig := tbl.Clone()
		d := delta.New(schema)
		for _, p := range plus {
			d.Add(row(int64(p%8), "x"), 1)
		}
		// Delete only rows that exist and aren't already fully deleted in d.
		for _, mi := range minusIdx {
			r := row(int64(mi%8), "x")
			if tbl.Count(r) > 0 {
				d.Add(r, -1)
			}
		}
		// The delta may over-delete if minusIdx repeats; skip those cases.
		valid := true
		d.Scan(func(tup relation.Tuple, c int64) bool {
			if c < 0 && tbl.Count(tup) < -c {
				valid = false
				return false
			}
			return true
		})
		if !valid {
			return true
		}
		if err := tbl.ApplyDelta(d); err != nil {
			return false
		}
		if err := tbl.ApplyDelta(d.Negate()); err != nil {
			return false
		}
		return tbl.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

var groupSchema = relation.Schema{{Name: "g", Kind: relation.KindString}}
var sumSpecs = []delta.AggSpec{
	{Kind: delta.AggSum, ValueKind: relation.KindFloat},
	{Kind: delta.AggCount, ValueKind: relation.KindInt},
}

func newAgg() *AggTable { return NewAggTable(groupSchema, sumSpecs, []string{"total", "n"}) }

func accumulate(p *delta.GroupPartials, g string, v float64, count int64) {
	p.Accumulate(relation.Tuple{relation.NewString(g)},
		[]relation.Value{relation.NewFloat(v), relation.Null}, count)
}

func TestAggTableApplyAndScan(t *testing.T) {
	at := newAgg()
	if got := at.Schema().String(); got != "g VARCHAR, total FLOAT, n INTEGER" {
		t.Fatalf("schema = %q", got)
	}
	p := delta.NewGroupPartials(groupSchema, sumSpecs)
	accumulate(p, "a", 10, 1)
	accumulate(p, "a", 5, 1)
	accumulate(p, "b", 2, 1)
	if err := at.Apply(p); err != nil {
		t.Fatal(err)
	}
	if at.Cardinality() != 2 {
		t.Fatalf("cardinality = %d", at.Cardinality())
	}
	rows := at.SortedRows()
	if rows[0].Tuple.String() != "(a, 15, 2)" || rows[1].Tuple.String() != "(b, 2, 1)" {
		t.Errorf("rows = %v", rows)
	}
}

func TestAggTableFinalizeDelta(t *testing.T) {
	at := newAgg()
	p1 := delta.NewGroupPartials(groupSchema, sumSpecs)
	accumulate(p1, "a", 10, 2)
	if err := at.Apply(p1); err != nil {
		t.Fatal(err)
	}
	// Change: remove one contributing row from a (value 10), add group c.
	p2 := delta.NewGroupPartials(groupSchema, sumSpecs)
	accumulate(p2, "a", 10, -1)
	accumulate(p2, "c", 7, 1)
	d, err := at.FinalizeDelta(p2)
	if err != nil {
		t.Fatal(err)
	}
	ch := d.Sorted()
	// Expected: -(a,20,2), +(a,10,1), +(c,7,1)
	if len(ch) != 3 {
		t.Fatalf("changes = %v", ch)
	}
	if ch[0].Tuple.String() != "(a, 10, 1)" || ch[0].Count != 1 {
		t.Errorf("ch[0] = %v", ch[0])
	}
	if ch[1].Tuple.String() != "(a, 20, 2)" || ch[1].Count != -1 {
		t.Errorf("ch[1] = %v", ch[1])
	}
	if ch[2].Tuple.String() != "(c, 7, 1)" || ch[2].Count != 1 {
		t.Errorf("ch[2] = %v", ch[2])
	}
	// FinalizeDelta must not mutate.
	if at.Cardinality() != 1 {
		t.Errorf("FinalizeDelta mutated the table")
	}
	// Applying must match the finalized delta exactly.
	before := at.AsTable()
	if err := at.Apply(p2); err != nil {
		t.Fatal(err)
	}
	if err := before.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if !before.Equal(at.AsTable()) {
		t.Errorf("Apply and FinalizeDelta disagree")
	}
}

func TestAggTableGroupDisappears(t *testing.T) {
	at := newAgg()
	p1 := delta.NewGroupPartials(groupSchema, sumSpecs)
	accumulate(p1, "a", 3, 1)
	if err := at.Apply(p1); err != nil {
		t.Fatal(err)
	}
	p2 := delta.NewGroupPartials(groupSchema, sumSpecs)
	accumulate(p2, "a", 3, -1)
	d, err := at.FinalizeDelta(p2)
	if err != nil {
		t.Fatal(err)
	}
	if d.PlusCount() != 0 || d.MinusCount() != 1 {
		t.Errorf("delta = %v", d.Sorted())
	}
	if err := at.Apply(p2); err != nil {
		t.Fatal(err)
	}
	if at.Cardinality() != 0 {
		t.Errorf("group should be gone")
	}
}

func TestAggTableOffsettingChangeProducesNoDelta(t *testing.T) {
	at := newAgg()
	p1 := delta.NewGroupPartials(groupSchema, sumSpecs)
	accumulate(p1, "a", 5, 1)
	accumulate(p1, "a", 3, 1)
	if err := at.Apply(p1); err != nil {
		t.Fatal(err)
	}
	// Delete a 5-row and insert another 5-row: same group row after.
	p2 := delta.NewGroupPartials(groupSchema, sumSpecs)
	accumulate(p2, "a", 5, -1)
	accumulate(p2, "a", 5, 1)
	d, err := at.FinalizeDelta(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsEmpty() {
		t.Errorf("offsetting change produced delta %v", d.Sorted())
	}
}

func TestAggTableNegativeSupportRejected(t *testing.T) {
	at := newAgg()
	p := delta.NewGroupPartials(groupSchema, sumSpecs)
	accumulate(p, "a", 5, -1)
	if _, err := at.FinalizeDelta(p); err == nil {
		t.Errorf("FinalizeDelta should reject negative support")
	}
	if err := at.Apply(p); err == nil {
		t.Errorf("Apply should reject negative support")
	}
	if at.Cardinality() != 0 {
		t.Errorf("failed Apply mutated table")
	}
}

func TestAggTableClone(t *testing.T) {
	at := newAgg()
	p := delta.NewGroupPartials(groupSchema, sumSpecs)
	accumulate(p, "a", 5, 1)
	if err := at.Apply(p); err != nil {
		t.Fatal(err)
	}
	cl := at.Clone()
	p2 := delta.NewGroupPartials(groupSchema, sumSpecs)
	accumulate(p2, "b", 1, 1)
	if err := cl.Apply(p2); err != nil {
		t.Fatal(err)
	}
	if at.Cardinality() != 1 || cl.Cardinality() != 2 {
		t.Errorf("clone aliases state: %d %d", at.Cardinality(), cl.Cardinality())
	}
	if !cl.GroupSchema().Equal(groupSchema) || len(cl.Specs()) != 2 {
		t.Errorf("clone metadata wrong")
	}
	cl.Clear()
	if cl.Cardinality() != 0 {
		t.Errorf("clear failed")
	}
}

func TestAggTableMinMaxIncremental(t *testing.T) {
	specs := []delta.AggSpec{{Kind: delta.AggMin, ValueKind: relation.KindInt}, {Kind: delta.AggMax, ValueKind: relation.KindInt}}
	at := NewAggTable(groupSchema, specs, []string{"lo", "hi"})
	add := func(p *delta.GroupPartials, v int64, c int64) {
		p.Accumulate(relation.Tuple{relation.NewString("g")},
			[]relation.Value{relation.NewInt(v), relation.NewInt(v)}, c)
	}
	p := delta.NewGroupPartials(groupSchema, specs)
	add(p, 4, 1)
	add(p, 7, 1)
	add(p, 1, 1)
	if err := at.Apply(p); err != nil {
		t.Fatal(err)
	}
	rows := at.SortedRows()
	if rows[0].Tuple.String() != "(g, 1, 7)" {
		t.Fatalf("rows = %v", rows)
	}
	// Delete the min and the max; new extremes must be recoverable.
	p2 := delta.NewGroupPartials(groupSchema, specs)
	add(p2, 1, -1)
	add(p2, 7, -1)
	d, err := at.FinalizeDelta(p2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2 {
		t.Fatalf("delta = %v", d.Sorted())
	}
	if err := at.Apply(p2); err != nil {
		t.Fatal(err)
	}
	if at.SortedRows()[0].Tuple.String() != "(g, 4, 4)" {
		t.Errorf("after deletes: %v", at.SortedRows())
	}
}

func TestAggTableDeleteAbsentMinMaxValueRejected(t *testing.T) {
	specs := []delta.AggSpec{{Kind: delta.AggMin, ValueKind: relation.KindInt}}
	at := NewAggTable(groupSchema, specs, []string{"lo"})
	p := delta.NewGroupPartials(groupSchema, specs)
	p.Accumulate(relation.Tuple{relation.NewString("g")}, []relation.Value{relation.NewInt(5)}, 2)
	if err := at.Apply(p); err != nil {
		t.Fatal(err)
	}
	bad := delta.NewGroupPartials(groupSchema, specs)
	bad.Accumulate(relation.Tuple{relation.NewString("g")}, []relation.Value{relation.NewInt(99)}, -1)
	// Support stays positive (2-1=1) but value 99 was never present.
	if _, err := at.FinalizeDelta(bad); err == nil {
		t.Errorf("expected invalid-accumulator error")
	}
}
