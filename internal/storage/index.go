package storage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Hash indexes on counted tables. The engine's default execution model
// scans every term operand once per term (the paper's linear work metric).
// A maintained hash index trades that scan for probes: it is kept current
// by Insert/Delete (install pays the maintenance), and equi-join terms can
// look up matching rows directly. This is the storage-representation lever
// the paper's related work points at ([JNSS97], [KR98]): it does not change
// which strategy is best so much as it changes what each expression costs —
// the engine exposes it behind an option precisely so the deviation from
// the linear metric can be measured (see BenchmarkIndexedExecution).

// hashIndex maps an encoded key (projection of the row on the index
// columns) to the encodings of rows carrying that key.
type hashIndex struct {
	cols []int
	// buckets maps key encoding → row encoding → struct{} (set semantics:
	// multiplicity lives in Table.rows).
	buckets map[string]map[string]struct{}
}

// indexName canonicalizes a column list.
func indexName(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

// keyOf projects an encoded row onto the index columns.
func (ix *hashIndex) keyOf(tup relation.Tuple) string {
	return tup.Project(ix.cols).Encode()
}

func (ix *hashIndex) add(rowEnc string, tup relation.Tuple) {
	key := ix.keyOf(tup)
	b := ix.buckets[key]
	if b == nil {
		b = make(map[string]struct{})
		ix.buckets[key] = b
	}
	b[rowEnc] = struct{}{}
}

func (ix *hashIndex) remove(rowEnc string, tup relation.Tuple) {
	key := ix.keyOf(tup)
	if b := ix.buckets[key]; b != nil {
		delete(b, rowEnc)
		if len(b) == 0 {
			delete(ix.buckets, key)
		}
	}
}

// EnsureIndex builds (or returns) a maintained hash index on the given
// column positions. Columns must be valid and non-empty; the column list is
// canonicalized by sorting. Safe to call from concurrent readers: the lazy
// build is serialized under the table's index lock.
func (t *Table) EnsureIndex(cols []int) error {
	if len(cols) == 0 {
		return fmt.Errorf("storage: empty index column list")
	}
	sorted := append([]int(nil), cols...)
	sort.Ints(sorted)
	for i, c := range sorted {
		if c < 0 || c >= len(t.schema) {
			return fmt.Errorf("storage: index column %d out of range (width %d)", c, len(t.schema))
		}
		if i > 0 && sorted[i-1] == c {
			return fmt.Errorf("storage: duplicate index column %d", c)
		}
	}
	name := indexName(sorted)
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if t.indexes == nil {
		t.indexes = make(map[string]*hashIndex)
	}
	if _, ok := t.indexes[name]; ok {
		return nil
	}
	ix := &hashIndex{cols: sorted, buckets: make(map[string]map[string]struct{})}
	t.Scan(func(tup relation.Tuple, _ int64) bool {
		ix.add(tup.Encode(), tup)
		return true
	})
	t.indexes[name] = ix
	return nil
}

// HasIndex reports whether a maintained index exists on the columns.
func (t *Table) HasIndex(cols []int) bool {
	sorted := append([]int(nil), cols...)
	sort.Ints(sorted)
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	_, ok := t.indexes[indexName(sorted)]
	return ok
}

// IndexCount returns the number of maintained indexes.
func (t *Table) IndexCount() int {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	return len(t.indexes)
}

// Lookup streams the rows whose projection on cols equals key, with their
// multiplicities. The columns must carry a maintained index (HasIndex);
// otherwise an error is returned. key must follow the *sorted* column
// order (the canonical order EnsureIndex uses).
func (t *Table) Lookup(cols []int, key relation.Tuple, fn func(relation.Tuple, int64) bool) error {
	sorted := append([]int(nil), cols...)
	sort.Ints(sorted)
	t.idxMu.RLock()
	ix, ok := t.indexes[indexName(sorted)]
	t.idxMu.RUnlock()
	if !ok {
		return fmt.Errorf("storage: no index on columns %v", cols)
	}
	for rowEnc := range ix.buckets[key.Encode()] {
		tup, err := relation.DecodeTuple(rowEnc)
		if err != nil {
			return fmt.Errorf("storage: corrupt indexed row: %w", err)
		}
		if !fn(tup, t.rows[rowEnc]) {
			return nil
		}
	}
	return nil
}

// indexInsert/indexDelete keep all indexes current; called by Insert/Delete.
func (t *Table) indexInsert(tup relation.Tuple, existedBefore bool) {
	if len(t.indexes) == 0 || existedBefore {
		return // multiplicity bump: row already indexed
	}
	enc := tup.Encode()
	for _, ix := range t.indexes {
		ix.add(enc, tup)
	}
}

func (t *Table) indexDelete(tup relation.Tuple, stillPresent bool) {
	if len(t.indexes) == 0 || stillPresent {
		return
	}
	enc := tup.Encode()
	for _, ix := range t.indexes {
		ix.remove(enc, tup)
	}
}
