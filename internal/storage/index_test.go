package storage

import (
	"testing"

	"repro/internal/relation"
)

func TestEnsureIndexAndLookup(t *testing.T) {
	tbl := NewTable(schema) // (k INTEGER, v VARCHAR)
	tbl.Insert(row(1, "a"), 2)
	tbl.Insert(row(1, "b"), 1)
	tbl.Insert(row(2, "a"), 1)
	if err := tbl.EnsureIndex([]int{0}); err != nil {
		t.Fatal(err)
	}
	if !tbl.HasIndex([]int{0}) || tbl.HasIndex([]int{1}) || tbl.IndexCount() != 1 {
		t.Errorf("index bookkeeping wrong")
	}
	// Idempotent.
	if err := tbl.EnsureIndex([]int{0}); err != nil {
		t.Fatal(err)
	}
	if tbl.IndexCount() != 1 {
		t.Errorf("duplicate index created")
	}
	var got int64
	err := tbl.Lookup([]int{0}, relation.Tuple{relation.NewInt(1)}, func(tup relation.Tuple, c int64) bool {
		got += c
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 { // (1,a)x2 + (1,b)x1
		t.Errorf("lookup multiplicity = %d, want 3", got)
	}
	// Missing key → no rows, no error.
	got = 0
	if err := tbl.Lookup([]int{0}, relation.Tuple{relation.NewInt(9)}, func(relation.Tuple, int64) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("missing key returned rows")
	}
}

func TestIndexMaintenance(t *testing.T) {
	tbl := NewTable(schema)
	if err := tbl.EnsureIndex([]int{1}); err != nil { // index on v
		t.Fatal(err)
	}
	tbl.Insert(row(1, "x"), 1)
	tbl.Insert(row(2, "x"), 2)
	count := func(v string) int64 {
		var n int64
		if err := tbl.Lookup([]int{1}, relation.Tuple{relation.NewString(v)}, func(_ relation.Tuple, c int64) bool {
			n += c
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if count("x") != 3 {
		t.Fatalf("after inserts: %d", count("x"))
	}
	// Partial delete keeps the row indexed.
	if err := tbl.Delete(row(2, "x"), 1); err != nil {
		t.Fatal(err)
	}
	if count("x") != 2 {
		t.Errorf("after partial delete: %d", count("x"))
	}
	// Full delete removes it.
	if err := tbl.Delete(row(2, "x"), 1); err != nil {
		t.Fatal(err)
	}
	if count("x") != 1 {
		t.Errorf("after full delete: %d", count("x"))
	}
	// Clear empties the index but keeps it maintained.
	tbl.Clear()
	if count("x") != 0 {
		t.Errorf("after clear: %d", count("x"))
	}
	tbl.Insert(row(5, "x"), 1)
	if count("x") != 1 {
		t.Errorf("after reinsert: %d", count("x"))
	}
}

func TestIndexErrors(t *testing.T) {
	tbl := NewTable(schema)
	if err := tbl.EnsureIndex(nil); err == nil {
		t.Errorf("empty column list accepted")
	}
	if err := tbl.EnsureIndex([]int{5}); err == nil {
		t.Errorf("out-of-range column accepted")
	}
	if err := tbl.EnsureIndex([]int{0, 0}); err == nil {
		t.Errorf("duplicate column accepted")
	}
	if err := tbl.Lookup([]int{0}, relation.Tuple{relation.NewInt(1)}, nil); err == nil {
		t.Errorf("lookup without index accepted")
	}
}

func TestCompositeIndexCanonicalOrder(t *testing.T) {
	tbl := NewTable(schema)
	tbl.Insert(row(1, "a"), 1)
	// Declare the index with columns out of order; lookup keys follow the
	// sorted order (k then v).
	if err := tbl.EnsureIndex([]int{1, 0}); err != nil {
		t.Fatal(err)
	}
	if !tbl.HasIndex([]int{0, 1}) {
		t.Errorf("canonical order not recognized")
	}
	var hits int
	key := relation.Tuple{relation.NewInt(1), relation.NewString("a")}
	if err := tbl.Lookup([]int{1, 0}, key, func(relation.Tuple, int64) bool {
		hits++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Errorf("composite lookup hits = %d", hits)
	}
}

func TestCloneDropsIndexes(t *testing.T) {
	tbl := NewTable(schema)
	tbl.Insert(row(1, "a"), 1)
	if err := tbl.EnsureIndex([]int{0}); err != nil {
		t.Fatal(err)
	}
	cl := tbl.Clone()
	if cl.IndexCount() != 0 {
		t.Errorf("clone inherited indexes")
	}
	// The clone can rebuild them on demand.
	if err := cl.EnsureIndex([]int{0}); err != nil {
		t.Fatal(err)
	}
	var hits int
	if err := cl.Lookup([]int{0}, relation.Tuple{relation.NewInt(1)}, func(relation.Tuple, int64) bool {
		hits++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Errorf("rebuilt index lookup hits = %d", hits)
	}
}
