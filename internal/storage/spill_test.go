package storage

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/faults"
	"repro/internal/relation"
)

// spillRow builds a deterministic counted tuple for spill-format tests.
func spillRow(i int64) (relation.Tuple, int64) {
	return relation.Tuple{
		relation.NewInt(i),
		relation.NewString(fmt.Sprintf("row-%06d", i)),
		relation.NewFloat(float64(i) / 4),
	}, 1 + i%3
}

// writeSpillFile writes n deterministic rows and returns the path.
func writeSpillFile(t *testing.T, n int64, inj *faults.Injector) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "part.spill")
	w, err := CreateSpill(path, inj)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		tup, c := spillRow(i)
		if err := w.Append(nil, tup, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Rows() != n {
		t.Fatalf("Rows() = %d, want %d", w.Rows(), n)
	}
	return path
}

// TestSpillRoundTrip: enough rows to span several frames must read back
// bit-identically, in order, with counts intact.
func TestSpillRoundTrip(t *testing.T) {
	const n = 5000 // ~150 KiB encoded: multiple 32 KiB frames
	path := writeSpillFile(t, n, nil)
	var i int64
	read, err := ReadSpill(nil, path, nil, func(tup relation.Tuple, c int64) error {
		want, wc := spillRow(i)
		if len(tup) != len(want) || c != wc {
			return fmt.Errorf("row %d: got %v x%d, want %v x%d", i, tup, c, want, wc)
		}
		for k := range want {
			if relation.Compare(tup[k], want[k]) != 0 {
				return fmt.Errorf("row %d col %d: got %v, want %v", i, k, tup[k], want[k])
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("read %d rows, want %d", i, n)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if read != fi.Size() {
		t.Fatalf("ReadSpill reported %d bytes, file is %d", read, fi.Size())
	}
}

// TestSpillCorruptionDetected: any single flipped byte in any frame must
// surface as ErrCorruptSpill, never as silently wrong rows.
func TestSpillCorruptionDetected(t *testing.T) {
	path := writeSpillFile(t, 5000, nil)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 1, len(orig) / 2, len(orig) - 1} {
		buf := append([]byte(nil), orig...)
		buf[off] ^= 0x40
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		_, rerr := ReadSpill(nil, path, nil, func(relation.Tuple, int64) error { return nil })
		if !errors.Is(rerr, ErrCorruptSpill) {
			t.Errorf("bit flip at offset %d: got %v, want ErrCorruptSpill", off, rerr)
		}
	}
}

// TestSpillTruncationDetected: a torn final frame (crash mid-write) must be
// detected, and rows of intact earlier frames are still delivered.
func TestSpillTruncationDetected(t *testing.T) {
	path := writeSpillFile(t, 5000, nil)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, orig[:len(orig)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	var delivered int64
	_, rerr := ReadSpill(nil, path, nil, func(relation.Tuple, int64) error {
		delivered++
		return nil
	})
	if !errors.Is(rerr, ErrCorruptSpill) {
		t.Fatalf("truncated file: got %v, want ErrCorruptSpill", rerr)
	}
	if delivered == 0 || delivered >= 5000 {
		t.Fatalf("delivered %d rows from a file torn mid-final-frame", delivered)
	}
}

// TestSpillWriteFaults: the spill-write point fails a frame flush, and the
// spill-enospc point reports a full disk through errors.Is(…, ENOSPC) while
// keeping the injected fault's identity for transient classification.
func TestSpillWriteFaults(t *testing.T) {
	inj := faults.New(1)
	inj.FailAt(SpillWritePoint, 1)
	path := filepath.Join(t.TempDir(), "w.spill")
	w, err := CreateSpill(path, inj)
	if err != nil {
		t.Fatal(err)
	}
	tup, c := spillRow(0)
	if err := w.Append(nil, tup, c); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("spill-write fault did not fire at flush")
	} else if _, ok := faults.AsFault(err); !ok {
		t.Fatalf("spill-write error lost the fault identity: %v", err)
	}

	inj2 := faults.New(2)
	inj2.FailAt(SpillENOSPCPoint, 1)
	w2, err := CreateSpill(filepath.Join(t.TempDir(), "e.spill"), inj2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(nil, tup, c); err != nil {
		t.Fatal(err)
	}
	err = w2.Close()
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("spill-enospc error is not ENOSPC: %v", err)
	}
	if _, ok := faults.AsFault(err); !ok {
		t.Fatalf("spill-enospc error lost the fault identity: %v", err)
	}
}

// TestSpillReadFault: the spill-read point fails the partition read before
// any row is delivered.
func TestSpillReadFault(t *testing.T) {
	path := writeSpillFile(t, 10, nil)
	inj := faults.New(3)
	inj.FailAt(SpillReadPoint, 1)
	_, err := ReadSpill(nil, path, inj, func(relation.Tuple, int64) error {
		t.Fatal("row delivered despite spill-read fault")
		return nil
	})
	if err == nil {
		t.Fatal("spill-read fault did not fire")
	}
	// The second read (fault exhausted) succeeds.
	if _, err := ReadSpill(nil, path, inj, func(relation.Tuple, int64) error { return nil }); err != nil {
		t.Fatalf("second read after exhausted fault: %v", err)
	}
}

// TestSpillContextCancel: a cancelled context stops both writing and reading.
func TestSpillContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w, err := CreateSpill(filepath.Join(t.TempDir(), "c.spill"), nil)
	if err != nil {
		t.Fatal(err)
	}
	tup, c := spillRow(0)
	if err := w.Append(ctx, tup, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled append: %v", err)
	}
	w.f.Close()

	path := writeSpillFile(t, 10, nil)
	if _, err := ReadSpill(ctx, path, nil, func(relation.Tuple, int64) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled read: %v", err)
	}
}
