// Package storage implements the materialized storage layer of the
// warehouse: counted bag tables for select-project-join views and base
// views, and group-state tables for aggregate (summary) views.
//
// All storage is multiset (bag) semantics with explicit counts, which is the
// representation the counting algorithm of Griffin & Libkin [GL95] requires
// for correct incremental maintenance in the presence of duplicates.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/delta"
	"repro/internal/relation"
)

// Table is a bag of tuples with a fixed schema, stored as a map from the
// tuple encoding to its multiplicity. Multiplicities are always positive;
// installing a change batch that would drive a count negative is an error
// (it indicates an incorrect maintenance strategy upstream).
type Table struct {
	schema relation.Schema
	rows   map[string]int64
	card   int64 // total multiplicity (sum of counts)
	// cow marks rows as shared with other Table handles (Clone is
	// copy-on-write at relation granularity): the map must not be mutated
	// through this handle until detach gives it a private copy. Handles are
	// single-writer; the flag needs no lock because sharing handles only
	// ever read the shared map.
	cow bool
	// indexes holds maintained hash indexes keyed by canonical column list
	// (see index.go). Clones start without indexes; they are rebuilt on
	// demand by EnsureIndex. idxMu serializes that lazy build against
	// concurrent probes: parallel executors may evaluate several compute
	// expressions reading the same state table at once, and the first to
	// need an index must not race the others.
	idxMu   sync.RWMutex
	indexes map[string]*hashIndex
}

// NewTable creates an empty table with the given schema.
func NewTable(schema relation.Schema) *Table {
	return &Table{schema: schema.Clone(), rows: make(map[string]int64)}
}

// Schema returns the table's schema.
func (t *Table) Schema() relation.Schema { return t.schema }

// Cardinality returns the total number of rows, counting duplicates.
func (t *Table) Cardinality() int64 { return t.card }

// DistinctCount returns the number of distinct rows.
func (t *Table) DistinctCount() int64 { return int64(len(t.rows)) }

// detach gives the table a private copy of a shared row map before the
// first mutation through this handle. Sibling handles (and the readers
// scanning them) keep the original map untouched — this is what makes a
// cloned epoch immutable while its successor is updated in place.
func (t *Table) detach() {
	if !t.cow {
		return
	}
	rows := make(map[string]int64, len(t.rows))
	for k, v := range t.rows {
		rows[k] = v
	}
	t.rows = rows
	t.cow = false
}

// Insert adds count copies of the tuple. Count must be positive.
func (t *Table) Insert(tup relation.Tuple, count int64) {
	if count <= 0 {
		panic(fmt.Sprintf("storage: Insert with non-positive count %d", count))
	}
	t.detach()
	key := tup.Encode()
	existed := t.rows[key] > 0
	t.rows[key] += count
	t.card += count
	t.indexInsert(tup, existed)
}

// Delete removes count copies of the tuple. It returns an error if fewer
// than count copies exist.
func (t *Table) Delete(tup relation.Tuple, count int64) error {
	if count <= 0 {
		return fmt.Errorf("storage: Delete with non-positive count %d", count)
	}
	key := tup.Encode()
	have := t.rows[key]
	if have < count {
		return fmt.Errorf("storage: delete of %d copies of %v but only %d present", count, tup, have)
	}
	t.detach()
	if have == count {
		delete(t.rows, key)
	} else {
		t.rows[key] = have - count
	}
	t.card -= count
	t.indexDelete(tup, have > count)
	return nil
}

// Count returns the multiplicity of the tuple (0 if absent).
func (t *Table) Count(tup relation.Tuple) int64 { return t.rows[tup.Encode()] }

// Scan calls fn for each distinct row with its multiplicity. Iteration stops
// early if fn returns false. Iteration order is unspecified.
func (t *Table) Scan(fn func(tup relation.Tuple, count int64) bool) {
	for key, count := range t.rows {
		tup, err := relation.DecodeTuple(key)
		if err != nil {
			panic(fmt.Sprintf("storage: corrupt row encoding: %v", err))
		}
		if !fn(tup, count) {
			return
		}
	}
}

// SortedRows returns all distinct rows with counts, sorted lexicographically.
// Intended for tests and deterministic output.
func (t *Table) SortedRows() []CountedTuple {
	out := make([]CountedTuple, 0, len(t.rows))
	t.Scan(func(tup relation.Tuple, count int64) bool {
		out = append(out, CountedTuple{Tuple: tup, Count: count})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		return relation.CompareTuples(out[i].Tuple, out[j].Tuple) < 0
	})
	return out
}

// CountedTuple pairs a tuple with a multiplicity.
type CountedTuple struct {
	Tuple relation.Tuple
	Count int64
}

// Clone returns an independent copy of the table in O(1): the row map is
// shared copy-on-write, and whichever handle mutates first detaches onto a
// private copy. An epoch that clones a hundred-relation warehouse therefore
// pays only for the relations its update window actually touches.
// Maintained indexes are not shared; the clone starts without any.
func (t *Table) Clone() *Table {
	t.cow = true
	return &Table{schema: t.schema.Clone(), rows: t.rows, card: t.card, cow: true}
}

// Equal reports whether two tables hold the same bag of rows.
func (t *Table) Equal(o *Table) bool {
	if len(t.rows) != len(o.rows) || t.card != o.card {
		return false
	}
	for k, v := range t.rows {
		if o.rows[k] != v {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether two tables hold the same bag of rows, with
// float values compared under relative tolerance tol. Aggregates maintained
// incrementally accumulate floating-point sums in a different order than a
// from-scratch recomputation, so verification of views with float aggregates
// needs tolerant comparison; all other kinds compare exactly.
func (t *Table) ApproxEqual(o *Table, tol float64) bool {
	if t.card != o.card || len(t.rows) != len(o.rows) {
		return false
	}
	a, b := t.SortedRows(), o.SortedRows()
	for i := range a {
		if a[i].Count != b[i].Count || !approxTupleEqual(a[i].Tuple, b[i].Tuple, tol) {
			return false
		}
	}
	return true
}

func approxTupleEqual(a, b relation.Tuple, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind() == relation.KindFloat && b[i].Kind() == relation.KindFloat {
			x, y := a[i].Float(), b[i].Float()
			diff := x - y
			if diff < 0 {
				diff = -diff
			}
			limit := tol
			for _, m := range []float64{x, -x, y, -y} {
				if m*tol > limit {
					limit = m * tol
				}
			}
			if diff > limit {
				return false
			}
			continue
		}
		if !relation.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// ApplyDelta installs a change set: plus tuples are inserted, minus tuples
// deleted. The whole batch is validated before any mutation so an incorrect
// batch leaves the table untouched.
func (t *Table) ApplyDelta(d *delta.Delta) error {
	if !t.schema.Equal(d.Schema()) {
		return fmt.Errorf("storage: delta schema [%s] does not match table schema [%s]", d.Schema(), t.schema)
	}
	var err error
	d.Scan(func(tup relation.Tuple, count int64) bool {
		if count < 0 && t.Count(tup) < -count {
			err = fmt.Errorf("storage: delta deletes %d copies of %v but only %d present", -count, tup, t.Count(tup))
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	d.Scan(func(tup relation.Tuple, count int64) bool {
		if count > 0 {
			t.Insert(tup, count)
		} else {
			if derr := t.Delete(tup, -count); derr != nil {
				err = derr
				return false
			}
		}
		return true
	})
	return err
}

// Clear removes every row. Maintained indexes are emptied but kept. A
// shared (cloned) row map is simply abandoned to its other handles.
func (t *Table) Clear() {
	t.rows = make(map[string]int64)
	t.cow = false
	t.card = 0
	for _, ix := range t.indexes {
		ix.buckets = make(map[string]map[string]struct{})
	}
}
