package storage

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"syscall"

	"repro/internal/faults"
	"repro/internal/relation"
)

// This file is the on-disk spill format for bounded-memory execution: when a
// build-side hash table exceeds the window's memory budget, its rows are
// partitioned to spill files (Grace-style) and re-read partition-wise at
// probe time (internal/core/spill.go). Spill files are transient — they live
// only for one window under a per-window temp dir — but they are still
// CRC-framed: a torn write or bit flip must surface as a detected error the
// degradation ladder can act on, never as silently wrong results.
//
// File layout: a sequence of frames, each
//
//	uvarint payloadLen | payload | 8-byte big-endian CRC64 (ECMA) of payload
//
// where payload is a sequence of rows, each
//
//	uvarint len(encodedTuple) | encodedTuple | varint count
//
// using the relation package's injective tuple encoding.

// Fault-injection points hit by spill I/O (see internal/faults). spill-write
// fires before each frame write, spill-read before each partition read, and
// spill-enospc wraps its fault in syscall.ENOSPC to model a full disk.
const (
	SpillWritePoint  = "spill-write"
	SpillReadPoint   = "spill-read"
	SpillENOSPCPoint = "spill-enospc"
)

// ErrCorruptSpill reports a spill file that is definitely damaged (CRC
// mismatch, truncated frame, or an undecodable row).
var ErrCorruptSpill = errors.New("storage: corrupt spill file")

var spillCRC = crc64.MakeTable(crc64.ECMA)

// spillFrameTarget is the payload size at which a frame is flushed. Small
// enough that ctx cancellation and fault points are hit at a useful
// granularity, large enough that framing overhead is negligible.
const spillFrameTarget = 32 << 10

// SpillWriter streams counted tuples into one spill partition file.
type SpillWriter struct {
	f       *os.File
	inj     *faults.Injector
	payload []byte
	scratch []byte
	head    [binary.MaxVarintLen64]byte
	written int64
	rows    int64
}

// CreateSpill creates (truncating) a spill partition file. The injector may
// be nil.
func CreateSpill(path string, inj *faults.Injector) (*SpillWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: creating spill file: %w", err)
	}
	return &SpillWriter{f: f, inj: inj, payload: make([]byte, 0, spillFrameTarget+1024)}, nil
}

// Append adds one counted tuple, flushing a frame when the payload target is
// reached. Writes are ctx-aware: a done ctx fails the append before any
// further I/O (nil ctx never cancels).
func (w *SpillWriter) Append(ctx context.Context, t relation.Tuple, count int64) error {
	if ctx != nil && ctx.Err() != nil {
		return fmt.Errorf("storage: spill write: %w", ctx.Err())
	}
	w.scratch = t.AppendEncoded(w.scratch[:0])
	n := binary.PutUvarint(w.head[:], uint64(len(w.scratch)))
	w.payload = append(w.payload, w.head[:n]...)
	w.payload = append(w.payload, w.scratch...)
	n = binary.PutVarint(w.head[:], count)
	w.payload = append(w.payload, w.head[:n]...)
	w.rows++
	if len(w.payload) >= spillFrameTarget {
		return w.flush()
	}
	return nil
}

// flush writes the buffered payload as one CRC-sealed frame.
func (w *SpillWriter) flush() error {
	if len(w.payload) == 0 {
		return nil
	}
	if err := w.inj.Hit(SpillWritePoint); err != nil {
		return fmt.Errorf("storage: spill write: %w", err)
	}
	if err := w.inj.Hit(SpillENOSPCPoint); err != nil {
		// Model a full disk: the injected fault keeps its identity (for
		// transient classification) and the error reports ENOSPC.
		return fmt.Errorf("storage: spill write: %w", errors.Join(syscall.ENOSPC, err))
	}
	n := binary.PutUvarint(w.head[:], uint64(len(w.payload)))
	frame := make([]byte, 0, n+len(w.payload)+8)
	frame = append(frame, w.head[:n]...)
	frame = append(frame, w.payload...)
	frame = binary.BigEndian.AppendUint64(frame, crc64.Checksum(w.payload, spillCRC))
	wn, err := w.f.Write(frame)
	w.written += int64(wn)
	if err != nil {
		return fmt.Errorf("storage: spill write: %w", err)
	}
	w.payload = w.payload[:0]
	return nil
}

// Close flushes the final frame and closes the file. The writer is unusable
// afterwards.
func (w *SpillWriter) Close() error {
	ferr := w.flush()
	cerr := w.f.Close()
	if ferr != nil {
		return ferr
	}
	if cerr != nil {
		return fmt.Errorf("storage: closing spill file: %w", cerr)
	}
	return nil
}

// Bytes returns the bytes written to disk so far.
func (w *SpillWriter) Bytes() int64 { return w.written }

// Rows returns the rows appended so far.
func (w *SpillWriter) Rows() int64 { return w.rows }

// ReadSpill replays one spill partition file through fn, verifying every
// frame's CRC, and returns the bytes read. Reading is ctx-aware (checked per
// frame; nil ctx never cancels) and hits the spill-read fault point once per
// call. Any damage — truncation, CRC mismatch, undecodable row — returns an
// error wrapping ErrCorruptSpill with no partial rows delivered beyond the
// last intact frame.
func ReadSpill(ctx context.Context, path string, inj *faults.Injector, fn func(relation.Tuple, int64) error) (int64, error) {
	if err := inj.Hit(SpillReadPoint); err != nil {
		return 0, fmt.Errorf("storage: spill read: %w", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("storage: spill read: %w", err)
	}
	off := 0
	for off < len(buf) {
		if ctx != nil && ctx.Err() != nil {
			return int64(off), fmt.Errorf("storage: spill read: %w", ctx.Err())
		}
		plen, n := binary.Uvarint(buf[off:])
		if n <= 0 || plen > uint64(len(buf)-off-n) {
			return int64(off), fmt.Errorf("%w: truncated frame header at offset %d", ErrCorruptSpill, off)
		}
		payload := buf[off+n : off+n+int(plen)]
		crcOff := off + n + int(plen)
		if len(buf)-crcOff < 8 {
			return int64(off), fmt.Errorf("%w: truncated frame CRC at offset %d", ErrCorruptSpill, off)
		}
		if binary.BigEndian.Uint64(buf[crcOff:]) != crc64.Checksum(payload, spillCRC) {
			return int64(off), fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorruptSpill, off)
		}
		if err := decodeSpillFrame(payload, fn); err != nil {
			return int64(off), err
		}
		off = crcOff + 8
	}
	return int64(off), nil
}

// decodeSpillFrame delivers one verified frame's rows to fn.
func decodeSpillFrame(payload []byte, fn func(relation.Tuple, int64) error) error {
	for len(payload) > 0 {
		elen, n := binary.Uvarint(payload)
		if n <= 0 || elen > uint64(len(payload)-n) {
			return fmt.Errorf("%w: truncated row encoding", ErrCorruptSpill)
		}
		enc := payload[n : n+int(elen)]
		payload = payload[n+int(elen):]
		count, n := binary.Varint(payload)
		if n <= 0 {
			return fmt.Errorf("%w: truncated row count", ErrCorruptSpill)
		}
		payload = payload[n:]
		tup, err := relation.DecodeTuple(string(enc))
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorruptSpill, err)
		}
		if err := fn(tup, count); err != nil {
			return err
		}
	}
	return nil
}
