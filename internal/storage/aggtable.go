package storage

import (
	"fmt"
	"sort"

	"repro/internal/delta"
	"repro/internal/relation"
)

// AggTable materializes an aggregate (summary) view: one output row per
// group, backed by incremental accumulators so that batches of insertions
// and deletions can be installed without recomputing the view.
//
// The output schema is the grouping columns followed by one column per
// aggregate spec.
type AggTable struct {
	groupSchema relation.Schema
	specs       []delta.AggSpec
	outSchema   relation.Schema
	groups      map[string]*groupEntry
	// cow marks groups (map and entries) as shared with other handles
	// (Clone is copy-on-write): mutation through this handle must detach
	// onto private entries first. See Table.cow for the sharing contract.
	cow bool
}

type groupEntry struct {
	support int64
	accums  []*delta.Accum
}

// NewAggTable creates an empty aggregate table. aggNames names the aggregate
// output columns (len must equal len(specs)).
func NewAggTable(groupSchema relation.Schema, specs []delta.AggSpec, aggNames []string) *AggTable {
	if len(aggNames) != len(specs) {
		panic(fmt.Sprintf("storage: %d aggregate names for %d specs", len(aggNames), len(specs)))
	}
	out := groupSchema.Clone()
	for i, s := range specs {
		out = append(out, relation.Column{Name: aggNames[i], Kind: s.OutputKind()})
	}
	return &AggTable{
		groupSchema: groupSchema.Clone(),
		specs:       append([]delta.AggSpec(nil), specs...),
		outSchema:   out,
		groups:      make(map[string]*groupEntry),
	}
}

// Schema returns the output schema (group columns then aggregate columns).
func (t *AggTable) Schema() relation.Schema { return t.outSchema }

// GroupSchema returns the schema of the grouping columns.
func (t *AggTable) GroupSchema() relation.Schema { return t.groupSchema }

// Specs returns the aggregate specs.
func (t *AggTable) Specs() []delta.AggSpec { return t.specs }

// Cardinality returns the number of groups (= output rows).
func (t *AggTable) Cardinality() int64 { return int64(len(t.groups)) }

// row materializes the output row for a group.
func (t *AggTable) row(groupKey string, e *groupEntry) relation.Tuple {
	group, err := relation.DecodeTuple(groupKey)
	if err != nil {
		panic(fmt.Sprintf("storage: corrupt group key: %v", err))
	}
	out := make(relation.Tuple, 0, len(group)+len(e.accums))
	out = append(out, group...)
	for _, a := range e.accums {
		out = append(out, a.Output(e.support))
	}
	return out
}

// Scan calls fn for each output row; every row has multiplicity 1.
func (t *AggTable) Scan(fn func(tup relation.Tuple, count int64) bool) {
	for key, e := range t.groups {
		if !fn(t.row(key, e), 1) {
			return
		}
	}
}

// SortedRows returns the output rows sorted lexicographically.
func (t *AggTable) SortedRows() []CountedTuple {
	out := make([]CountedTuple, 0, len(t.groups))
	t.Scan(func(tup relation.Tuple, count int64) bool {
		out = append(out, CountedTuple{Tuple: tup, Count: count})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		return relation.CompareTuples(out[i].Tuple, out[j].Tuple) < 0
	})
	return out
}

// FinalizeDelta computes, without mutating the table, the plus/minus tuple
// delta over the output schema that installing the partials would produce:
// for each affected group, a minus tuple for the old row (if the group
// existed) and a plus tuple for the new row (if the group survives). Groups
// whose output row is unchanged contribute nothing.
func (t *AggTable) FinalizeDelta(p *delta.GroupPartials) (*delta.Delta, error) {
	d := delta.New(t.outSchema)
	var err error
	p.Scan(func(groupKey string, gp *delta.GroupPartial) bool {
		old := t.groups[groupKey]
		var oldRow relation.Tuple
		newSupport := gp.Support
		var newEntry *groupEntry
		if old != nil {
			oldRow = t.row(groupKey, old)
			newSupport += old.support
		}
		if newSupport < 0 {
			err = fmt.Errorf("storage: group %s support would go negative (%d)", groupKey, newSupport)
			return false
		}
		if newSupport > 0 {
			newEntry = &groupEntry{support: newSupport, accums: make([]*delta.Accum, len(gp.Accums))}
			for i, a := range gp.Accums {
				na := a.Clone()
				if old != nil {
					na.Fold(old.accums[i])
				}
				if !na.Valid() {
					err = fmt.Errorf("storage: group %s aggregate %d would delete absent value", groupKey, i)
					return false
				}
				newEntry.accums[i] = na
			}
		}
		var newRow relation.Tuple
		if newEntry != nil {
			newRow = t.row(groupKey, newEntry)
		}
		switch {
		case oldRow == nil && newRow == nil:
			// Group neither existed nor survives; nothing changes.
		case oldRow != nil && newRow != nil && relation.CompareTuples(oldRow, newRow) == 0:
			// Offsetting changes left the row identical.
		default:
			if oldRow != nil {
				d.Add(oldRow, -1)
			}
			if newRow != nil {
				d.Add(newRow, 1)
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// detach gives the table private group entries before the first mutation
// through this handle. Entries are deep-copied (Apply folds accumulators in
// place), leaving sibling handles' state untouched.
func (t *AggTable) detach() {
	if !t.cow {
		return
	}
	groups := make(map[string]*groupEntry, len(t.groups))
	for k, e := range t.groups {
		ne := &groupEntry{support: e.support, accums: make([]*delta.Accum, len(e.accums))}
		for i, a := range e.accums {
			ne.accums[i] = a.Clone()
		}
		groups[k] = ne
	}
	t.groups = groups
	t.cow = false
}

// Apply installs the partials, mutating the group state. It returns an error
// (leaving the table partially modified only on programmer error upstream)
// if any group's support would go negative.
func (t *AggTable) Apply(p *delta.GroupPartials) error {
	// Validate first so a bad batch does not leave the table half-applied.
	var err error
	p.Scan(func(groupKey string, gp *delta.GroupPartial) bool {
		var have int64
		if old := t.groups[groupKey]; old != nil {
			have = old.support
		}
		if have+gp.Support < 0 {
			err = fmt.Errorf("storage: group %s support would go negative (%d)", groupKey, have+gp.Support)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	t.detach()
	p.Scan(func(groupKey string, gp *delta.GroupPartial) bool {
		old := t.groups[groupKey]
		if old == nil {
			if gp.Support == 0 {
				return true
			}
			e := &groupEntry{support: gp.Support, accums: make([]*delta.Accum, len(gp.Accums))}
			for i, a := range gp.Accums {
				e.accums[i] = a.Clone()
			}
			t.groups[groupKey] = e
			return true
		}
		old.support += gp.Support
		if old.support == 0 {
			delete(t.groups, groupKey)
			return true
		}
		for i, a := range gp.Accums {
			old.accums[i].Fold(a)
		}
		return true
	})
	return nil
}

// ScanGroups iterates the raw group state (encoded group key, support
// count, accumulators) — the representation warehouse snapshots persist.
// The accumulators must not be mutated.
func (t *AggTable) ScanGroups(fn func(groupKey string, support int64, accums []*delta.Accum) bool) {
	for key, e := range t.groups {
		if !fn(key, e.support, e.accums) {
			return
		}
	}
}

// RestoreGroup installs raw group state, replacing any existing group with
// the same key. It is the inverse of ScanGroups, used when loading a
// snapshot; support must be positive and the accumulator count must match
// the table's specs.
func (t *AggTable) RestoreGroup(groupKey string, support int64, accums []*delta.Accum) error {
	if support <= 0 {
		return fmt.Errorf("storage: restoring group with non-positive support %d", support)
	}
	if len(accums) != len(t.specs) {
		return fmt.Errorf("storage: restoring group with %d accumulators, want %d", len(accums), len(t.specs))
	}
	if _, err := relation.DecodeTuple(groupKey); err != nil {
		return fmt.Errorf("storage: restoring group with corrupt key: %w", err)
	}
	for i, a := range accums {
		if a.Spec() != t.specs[i] {
			return fmt.Errorf("storage: restored accumulator %d has spec %+v, want %+v", i, a.Spec(), t.specs[i])
		}
		if !a.Valid() {
			return fmt.Errorf("storage: restored accumulator %d has negative value counts", i)
		}
	}
	t.detach()
	e := &groupEntry{support: support, accums: make([]*delta.Accum, len(accums))}
	for i, a := range accums {
		e.accums[i] = a.Clone()
	}
	t.groups[groupKey] = e
	return nil
}

// Clone returns an independent copy of the table in O(1): the group map and
// its entries are shared copy-on-write, and whichever handle mutates first
// detaches onto deep-copied entries. See Table.Clone.
func (t *AggTable) Clone() *AggTable {
	t.cow = true
	return &AggTable{
		groupSchema: t.groupSchema.Clone(),
		specs:       append([]delta.AggSpec(nil), t.specs...),
		outSchema:   t.outSchema.Clone(),
		groups:      t.groups,
		cow:         true,
	}
}

// AsTable converts the current output rows into a plain counted Table, for
// comparisons against recomputation in tests.
func (t *AggTable) AsTable() *Table {
	out := NewTable(t.outSchema)
	t.Scan(func(tup relation.Tuple, count int64) bool {
		out.Insert(tup, count)
		return true
	})
	return out
}

// Clear removes all groups. A shared (cloned) group map is simply
// abandoned to its other handles.
func (t *AggTable) Clear() {
	t.groups = make(map[string]*groupEntry)
	t.cow = false
}
