package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/delta"
	"repro/internal/relation"
)

func testSchema() relation.Schema {
	return relation.Schema{
		{Name: "id", Kind: relation.KindInt},
		{Name: "v", Kind: relation.KindString},
	}
}

func cowRow(id int64, v string) relation.Tuple {
	return relation.Tuple{relation.NewInt(id), relation.NewString(v)}
}

// TestTableCloneIsolation: mutations through either handle of a COW clone
// pair are invisible to the other.
func TestTableCloneIsolation(t *testing.T) {
	a := NewTable(testSchema())
	a.Insert(cowRow(1, "x"), 2)
	a.Insert(cowRow(2, "y"), 1)

	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone differs from original before any mutation")
	}

	// Mutate the clone: the original must not move.
	b.Insert(cowRow(3, "z"), 1)
	if err := b.Delete(cowRow(1, "x"), 1); err != nil {
		t.Fatal(err)
	}
	if a.Cardinality() != 3 || a.Count(cowRow(3, "z")) != 0 || a.Count(cowRow(1, "x")) != 2 {
		t.Fatalf("original changed under clone mutation: card=%d", a.Cardinality())
	}
	if b.Cardinality() != 3 || b.Count(cowRow(1, "x")) != 1 || b.Count(cowRow(3, "z")) != 1 {
		t.Fatalf("clone state wrong: card=%d", b.Cardinality())
	}

	// Mutate the original afterwards: the clone must not move either.
	a.Insert(cowRow(4, "w"), 5)
	if b.Count(cowRow(4, "w")) != 0 {
		t.Fatal("clone saw the original's post-clone insert")
	}
}

// TestTableCloneChain: clones of clones stay independent.
func TestTableCloneChain(t *testing.T) {
	a := NewTable(testSchema())
	a.Insert(cowRow(1, "x"), 1)
	b := a.Clone()
	c := b.Clone()
	c.Insert(cowRow(2, "y"), 1)
	b.Insert(cowRow(3, "z"), 1)
	if a.Cardinality() != 1 || b.Cardinality() != 2 || c.Cardinality() != 2 {
		t.Fatalf("cards: a=%d b=%d c=%d", a.Cardinality(), b.Cardinality(), c.Cardinality())
	}
	if b.Count(cowRow(2, "y")) != 0 || c.Count(cowRow(3, "z")) != 0 {
		t.Fatal("sibling clones leaked mutations into each other")
	}
}

// TestTableClearDetaches: Clear on one handle abandons the shared map
// instead of emptying it under the other handle.
func TestTableClearDetaches(t *testing.T) {
	a := NewTable(testSchema())
	a.Insert(cowRow(1, "x"), 1)
	b := a.Clone()
	b.Clear()
	if a.Cardinality() != 1 {
		t.Fatal("Clear on clone emptied the original")
	}
	b.Insert(cowRow(9, "q"), 1)
	if a.Count(cowRow(9, "q")) != 0 {
		t.Fatal("post-Clear insert leaked into the original")
	}
}

// TestTableApplyDeltaDetaches: installing a change batch through one handle
// leaves the other handle's bag untouched (the epoch-isolation property the
// online window layer builds on).
func TestTableApplyDeltaDetaches(t *testing.T) {
	a := NewTable(testSchema())
	a.Insert(cowRow(1, "x"), 2)
	b := a.Clone()

	d := delta.New(testSchema())
	d.Add(cowRow(1, "x"), -1)
	d.Add(cowRow(2, "y"), 3)
	if err := b.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if a.Count(cowRow(1, "x")) != 2 || a.Count(cowRow(2, "y")) != 0 {
		t.Fatal("ApplyDelta on clone mutated the original")
	}
}

// TestTableConcurrentReadersDuringCloneMutation: readers scanning the
// original handle race a clone that detaches and mutates — the exact shape
// of serving an epoch while an update window runs on its successor. Run
// under -race.
func TestTableConcurrentReadersDuringCloneMutation(t *testing.T) {
	a := NewTable(testSchema())
	for i := int64(0); i < 64; i++ {
		a.Insert(cowRow(i, "x"), 1)
	}
	b := a.Clone()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var n int64
				a.Scan(func(_ relation.Tuple, count int64) bool {
					n += count
					return true
				})
				if n != 64 {
					panic(fmt.Sprintf("reader saw cardinality %d", n))
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(100); i < 200; i++ {
			b.Insert(cowRow(i, "y"), 1)
		}
	}()
	wg.Wait()
	if a.Cardinality() != 64 || b.Cardinality() != 164 {
		t.Fatalf("cards after race: a=%d b=%d", a.Cardinality(), b.Cardinality())
	}
}

// TestAggTableCloneIsolation: Apply through either handle of a cloned
// aggregate table leaves the other untouched, including in-place
// accumulator folds.
func TestAggTableCloneIsolation(t *testing.T) {
	gs := relation.Schema{{Name: "g", Kind: relation.KindString}}
	specs := []delta.AggSpec{{Kind: delta.AggSum, ValueKind: relation.KindInt}}
	a := NewAggTable(gs, specs, []string{"total"})

	apply := func(tbl *AggTable, g string, v, support int64) {
		t.Helper()
		p := delta.NewGroupPartials(gs, specs)
		p.Accumulate(relation.Tuple{relation.NewString(g)}, []relation.Value{relation.NewInt(v)}, support)
		if err := tbl.Apply(p); err != nil {
			t.Fatal(err)
		}
	}
	apply(a, "west", 10, 2)
	b := a.Clone()

	apply(b, "west", 5, 1) // folds into the shared accumulator unless detached
	apply(b, "east", 7, 1)

	aRows, bRows := a.SortedRows(), b.SortedRows()
	if len(aRows) != 1 || aRows[0].Tuple.String() != "(west, 20)" {
		t.Fatalf("original moved under clone Apply: %v", aRows)
	}
	if len(bRows) != 2 || bRows[1].Tuple.String() != "(west, 25)" {
		t.Fatalf("clone state wrong: %v", bRows)
	}

	// And the reverse direction.
	apply(a, "west", 100, 1)
	if b.SortedRows()[1].Tuple.String() != "(west, 25)" {
		t.Fatal("original's post-clone Apply leaked into the clone")
	}
}

// TestAggTableRestoreGroupDetaches: snapshot restore through one handle
// must not overwrite groups the other handle still serves.
func TestAggTableRestoreGroupDetaches(t *testing.T) {
	gs := relation.Schema{{Name: "g", Kind: relation.KindString}}
	specs := []delta.AggSpec{{Kind: delta.AggCount}}
	a := NewAggTable(gs, specs, []string{"n"})
	p := delta.NewGroupPartials(gs, specs)
	p.Accumulate(relation.Tuple{relation.NewString("g1")}, []relation.Value{relation.Null}, 3)
	if err := a.Apply(p); err != nil {
		t.Fatal(err)
	}
	b := a.Clone()

	var key string
	var accums []*delta.Accum
	a.ScanGroups(func(gk string, _ int64, as []*delta.Accum) bool {
		key, accums = gk, as
		return false
	})
	if err := b.RestoreGroup(key, 99, accums); err != nil {
		t.Fatal(err)
	}
	if a.SortedRows()[0].Count != 1 || b.SortedRows()[0].Count != 1 {
		t.Fatal("unexpected group counts")
	}
	var support int64
	a.ScanGroups(func(_ string, s int64, _ []*delta.Accum) bool {
		support = s
		return false
	})
	if support != 3 {
		t.Fatalf("RestoreGroup on clone changed the original's support to %d", support)
	}
}
