package exec

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/relation"
	"repro/internal/strategy"
)

var (
	schemaR = relation.Schema{{Name: "a", Kind: relation.KindInt}, {Name: "b", Kind: relation.KindInt}}
	schemaS = relation.Schema{{Name: "b", Kind: relation.KindInt}, {Name: "c", Kind: relation.KindInt}}
)

func intRow(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.NewInt(v)
	}
	return t
}

// newWarehouse builds R, S, J = R⋈S, A = γ(J) and loads deterministic data.
func newWarehouse(t *testing.T, rng *rand.Rand) *core.Warehouse {
	t.Helper()
	w := core.New(core.Options{})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.DefineBase("R", schemaR))
	must(w.DefineBase("S", schemaS))
	jb := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
	jb.Join("r.b", "s.b").SelectCol("r.a").SelectCol("s.c")
	j := jb.MustBuild()
	must(w.DefineDerived("J", j))
	ab := algebra.NewBuilder().From("j", "J", j.OutputSchema())
	ab.GroupByCol("j.a").Agg("total", delta.AggSum, ab.Col("j.c"))
	must(w.DefineDerived("A", ab.MustBuild()))

	var rRows, sRows []relation.Tuple
	for i := 0; i < 40; i++ {
		rRows = append(rRows, intRow(rng.Int63n(8), rng.Int63n(5)*10))
		sRows = append(sRows, intRow(rng.Int63n(5)*10, rng.Int63n(6)*100))
	}
	must(w.LoadBase("R", rRows))
	must(w.LoadBase("S", sRows))
	must(w.RefreshAll())
	return w
}

func stageRandomChanges(t *testing.T, w *core.Warehouse, rng *rand.Rand) {
	t.Helper()
	for _, base := range []string{"R", "S"} {
		d := delta.New(w.MustView(base).Schema())
		for _, r := range w.MustView(base).SortedRows() {
			if rng.Intn(4) == 0 {
				d.Add(r.Tuple, -1)
			}
		}
		for i := 0; i < rng.Intn(4); i++ {
			d.Add(intRow(rng.Int63n(8), rng.Int63n(5)*10), 1)
		}
		if err := w.StageDelta(base, d); err != nil {
			t.Fatal(err)
		}
	}
}

func oneWayStrategy() strategy.Strategy {
	return strategy.Strategy{
		strategy.Comp{View: "J", Over: []string{"R"}}, strategy.Inst{View: "R"},
		strategy.Comp{View: "J", Over: []string{"S"}}, strategy.Inst{View: "S"},
		strategy.Comp{View: "A", Over: []string{"J"}}, strategy.Inst{View: "J"},
		strategy.Inst{View: "A"},
	}
}

func dualStageStrategy() strategy.Strategy {
	return strategy.Strategy{
		strategy.Comp{View: "J", Over: []string{"R", "S"}},
		strategy.Comp{View: "A", Over: []string{"J"}},
		strategy.Inst{View: "R"}, strategy.Inst{View: "S"},
		strategy.Inst{View: "J"}, strategy.Inst{View: "A"},
	}
}

func TestExecuteOneWay(t *testing.T) {
	w := newWarehouse(t, rand.New(rand.NewSource(1)))
	stageRandomChanges(t, w, rand.New(rand.NewSource(2)))
	rep, err := Execute(w, oneWayStrategy(), Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 7 {
		t.Errorf("steps = %d", len(rep.Steps))
	}
	if rep.CompWork <= 0 || rep.InstWork <= 0 {
		t.Errorf("work not measured: %s", rep)
	}
	if rep.TotalWork() != rep.CompWork+rep.InstWork {
		t.Errorf("TotalWork inconsistent")
	}
	if !strings.Contains(rep.String(), "work=") {
		t.Errorf("String = %q", rep.String())
	}
}

func TestExecuteValidateRefusesIncorrect(t *testing.T) {
	w := newWarehouse(t, rand.New(rand.NewSource(3)))
	stageRandomChanges(t, w, rand.New(rand.NewSource(4)))
	// Install R before its changes are propagated to J: violates C3.
	bad := strategy.Strategy{
		strategy.Inst{View: "R"},
		strategy.Comp{View: "J", Over: []string{"R", "S"}},
		strategy.Comp{View: "A", Over: []string{"J"}},
		strategy.Inst{View: "S"}, strategy.Inst{View: "J"}, strategy.Inst{View: "A"},
	}
	if _, err := Execute(w, bad, Options{Validate: true}); err == nil {
		t.Fatal("incorrect strategy accepted")
	}
	// Unvalidated execution surfaces runtime errors instead.
	if _, err := Execute(w, strategy.Strategy{strategy.Comp{View: "nope", Over: []string{"R"}}}, Options{}); err == nil {
		t.Errorf("unknown view accepted")
	}
}

func TestPreparedMatchesExecute(t *testing.T) {
	rngData, rngChanges := rand.New(rand.NewSource(5)), rand.New(rand.NewSource(6))
	w1 := newWarehouse(t, rngData)
	stageRandomChanges(t, w1, rngChanges)
	w2 := w1.Clone()

	rep1, err := Execute(w1, oneWayStrategy(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(w2)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := p.Run(oneWayStrategy())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.CompWork != rep2.CompWork || rep1.InstWork != rep2.InstWork {
		t.Errorf("prepared run work differs: %s vs %s", rep1, rep2)
	}
	if err := w2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	// Prepared procedures only exist for 1-way expressions.
	if _, err := p.Call(strategy.Comp{View: "J", Over: []string{"R", "S"}}); err == nil {
		t.Errorf("2-way comp should have no prepared procedure")
	}
	if _, err := p.Run(dualStageStrategy()); err == nil {
		t.Errorf("dual-stage run through prepared procedures should fail")
	}
}

// TestMeasuredWorkMatchesLinearMetric is the metric-fidelity check: with
// exact statistics, the cost simulator's prediction equals the executor's
// measured work, for both strategy shapes.
func TestMeasuredWorkMatchesLinearMetric(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		seed := int64(100 + trial)
		pre := newWarehouse(t, rand.New(rand.NewSource(seed)))
		stageRandomChanges(t, pre, rand.New(rand.NewSource(seed+1000)))
		for name, s := range map[string]strategy.Strategy{
			"one-way":    oneWayStrategy(),
			"dual-stage": dualStageStrategy(),
		} {
			run := pre.Clone()
			rep, err := Execute(run, s, Options{Validate: true})
			if err != nil {
				t.Fatal(err)
			}
			stats, err := ExactStats(pre, run)
			if err != nil {
				t.Fatal(err)
			}
			b, err := cost.Simulate(cost.DefaultModel, stats, RefCounts(pre), s)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(b.Comp-float64(rep.CompWork)) > 1e-9 {
				t.Errorf("trial %d %s: simulated comp work %v != measured %d", trial, name, b.Comp, rep.CompWork)
			}
			if math.Abs(b.Inst-float64(rep.InstWork)) > 1e-9 {
				t.Errorf("trial %d %s: simulated inst work %v != measured %d", trial, name, b.Inst, rep.InstWork)
			}
		}
	}
}

func TestPlanningStats(t *testing.T) {
	w := newWarehouse(t, rand.New(rand.NewSource(8)))
	stageRandomChanges(t, w, rand.New(rand.NewSource(9)))
	stats, err := PlanningStats(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"R", "S", "J", "A"} {
		if _, ok := stats[v]; !ok {
			t.Fatalf("missing stats for %s", v)
		}
	}
	// Base deltas must be exact.
	dR, _ := w.DeltaOf("R")
	if stats["R"].DeltaPlus != dR.PlusCount() || stats["R"].DeltaMinus != dR.MinusCount() {
		t.Errorf("base delta stats inexact")
	}
	if stats["J"].Size != w.MustView("J").Cardinality() {
		t.Errorf("J size wrong")
	}
	// Derived deltas estimated, plausibly bounded.
	if stats["J"].DeltaMinus < 0 || stats["J"].DeltaMinus > stats["J"].Size {
		t.Errorf("J delta estimate out of range: %+v", stats["J"])
	}
}

func TestRefCountsAndGraph(t *testing.T) {
	w := newWarehouse(t, rand.New(rand.NewSource(10)))
	rc := RefCounts(w)
	if rc["J"]["R"] != 1 || rc["J"]["S"] != 1 || rc["A"]["J"] != 1 {
		t.Errorf("RefCounts = %v", rc)
	}
	if _, ok := rc["R"]; ok {
		t.Errorf("base view should have no ref counts")
	}
	g, err := Graph(w)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTree() || g.Level("A") != 2 {
		t.Errorf("graph misderived: %s", g)
	}
}

func TestExactStatsErrors(t *testing.T) {
	w := newWarehouse(t, rand.New(rand.NewSource(11)))
	other := core.New(core.Options{})
	if _, err := ExactStats(w, other); err == nil {
		t.Errorf("missing view accepted")
	}
}
