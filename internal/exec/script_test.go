package exec

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/strategy"
)

func TestProcName(t *testing.T) {
	cases := map[string]strategy.Expr{
		"comp_Q3_from_LINEITEM":  strategy.Comp{View: "Q3", Over: []string{"LINEITEM"}},
		"comp_V_from_A_B":        strategy.Comp{View: "V", Over: []string{"B", "A"}}, // sorted
		"inst_LINEITEM":          strategy.Inst{View: "LINEITEM"},
		"comp_ODD_NAME_from_X_Y": strategy.Comp{View: "ODD NAME", Over: []string{"X-Y"}},
	}
	for want, e := range cases {
		if got := ProcName(e); got != want {
			t.Errorf("ProcName(%s) = %q, want %q", e, got, want)
		}
	}
}

func TestScript(t *testing.T) {
	s := strategy.Strategy{
		strategy.Comp{View: "J", Over: []string{"R"}},
		strategy.Inst{View: "R"},
		strategy.Inst{View: "J"},
	}
	script := Script(s)
	for _, want := range []string{"EXEC comp_J_from_R;", "EXEC inst_R;", "EXEC inst_J;", "step  1"} {
		if !strings.Contains(script, want) {
			t.Errorf("script missing %q:\n%s", want, script)
		}
	}
	// Order preserved.
	if strings.Index(script, "comp_J_from_R") > strings.Index(script, "inst_R") {
		t.Errorf("script order wrong:\n%s", script)
	}
}

func TestProcedureCatalog(t *testing.T) {
	w := newWarehouse(t, rand.New(rand.NewSource(99)))
	cat := ProcedureCatalog(w)
	for _, want := range []string{
		"CREATE PROCEDURE comp_J_from_R",
		"CREATE PROCEDURE comp_J_from_S",
		"CREATE PROCEDURE comp_A_from_J",
		"CREATE PROCEDURE inst_R",
		"CREATE PROCEDURE inst_A",
		"SELECT", // the definition is included as a comment
	} {
		if !strings.Contains(cat, want) {
			t.Errorf("catalog missing %q", want)
		}
	}
}
