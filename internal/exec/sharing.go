package exec

import (
	"repro/internal/core"
	"repro/internal/planner"
	"repro/internal/strategy"
)

// This file bridges the planner's static sharing analysis to the executor's
// window-wide shared-result registry: every executor entry point (sequential
// Execute here, the staged/DAG scheduler in internal/parallel) attaches a
// registry seeded from planner.AnalyzeSharing before its first step and
// detaches it — harvesting the transient-footprint stats — when the window
// ends.

// RefsOf adapts a warehouse catalog to the reference function
// planner.AnalyzeSharing expects: the FROM-clause view list of each derived
// view's definition (one entry per reference, so self-joins repeat), nil for
// base views and unknown names.
func RefsOf(w *core.Warehouse) func(view string) []string {
	return func(view string) []string {
		v := w.View(view)
		if v == nil || v.IsBase() {
			return nil
		}
		refs := v.Def().Refs
		out := make([]string, len(refs))
		for i, ref := range refs {
			out[i] = ref.View
		}
		return out
	}
}

// PairsOf adapts a warehouse catalog to the pair-hint function the planner's
// joint election expects: each derived view's adjacent equi-joined reference
// pairs (core.PairCandidates), nil for base views and unknown names.
func PairsOf(w *core.Warehouse) func(view string) []planner.PairHint {
	return func(view string) []planner.PairHint {
		v := w.View(view)
		if v == nil || v.IsBase() {
			return nil
		}
		cands := core.PairCandidates(v.Def())
		out := make([]planner.PairHint, len(cands))
		for i, pc := range cands {
			out[i] = planner.PairHint{A: pc.ViewA, B: pc.ViewB, Sig: pc.Sig}
		}
		return out
	}
}

// WidthOf adapts a warehouse catalog to the tuple-width function the
// planner's byte pricing expects (0 for unknown names, letting the planner
// fall back to its nominal width).
func WidthOf(w *core.Warehouse) func(view string) int {
	return func(view string) int {
		v := w.View(view)
		if v == nil {
			return 0
		}
		return len(v.Schema())
	}
}

// HintsFromPlan converts a planner sharing plan to the executor's hint form,
// including the jointly-elected join intermediates and the row estimates the
// registry feeds back to the share tuner.
func HintsFromPlan(plan planner.SharingPlan) *core.SharingHints {
	h := &core.SharingHints{
		Consumers: make(map[core.SharedOperand]int, len(plan.Consumers)),
		ByComp:    make(map[string][]core.SharedOperand, len(plan.ByComp)),
	}
	for op, n := range plan.Consumers {
		h.Consumers[core.SharedOperand(op)] = n
	}
	for comp, ops := range plan.ByComp {
		conv := make([]core.SharedOperand, len(ops))
		for i, op := range ops {
			conv[i] = core.SharedOperand(op)
		}
		h.ByComp[comp] = conv
	}
	if len(plan.InterConsumers) > 0 {
		h.InterConsumers = make(map[core.InterSpec]int, len(plan.InterConsumers))
		h.InterByComp = make(map[string][]core.InterSpec, len(plan.InterByComp))
		for ik, n := range plan.InterConsumers {
			h.InterConsumers[core.InterSpec(ik)] = n
		}
		for comp, iks := range plan.InterByComp {
			conv := make([]core.InterSpec, len(iks))
			for i, ik := range iks {
				conv[i] = core.InterSpec(ik)
			}
			h.InterByComp[comp] = conv
		}
	}
	if len(plan.EstRows) > 0 {
		h.EstRows = make(map[core.SharedOperand]int64, len(plan.EstRows))
		for op, rows := range plan.EstRows {
			h.EstRows[core.SharedOperand(op)] = rows
		}
	}
	if len(plan.InterEstRows) > 0 {
		h.InterEstRows = make(map[core.InterSpec]int64, len(plan.InterEstRows))
		for ik, rows := range plan.InterEstRows {
			h.InterEstRows[core.InterSpec(ik)] = rows
		}
	}
	return h
}

// SharingHints runs the planner's sharing analysis for a strategy and
// converts it to the executor's hint form. The registry only materializes
// operands the hints mark as multi-consumer, so feeding hints for a strategy
// other than the one about to run is safe but useless.
func SharingHints(w *core.Warehouse, s strategy.Strategy) *core.SharingHints {
	return HintsFromPlan(planner.AnalyzeSharing(s, RefsOf(w), nil))
}

// AttachSharing attaches a shared-computation registry for the strategy when
// the warehouse's options enable it, and returns the detach function the
// caller must invoke once the window completes. Jointly-optimized hints
// recorded by the sharing-aware planner (core.SetPlannedSharing) take
// precedence over the after-the-fact analysis of the strategy — they carry
// the elected join intermediates and budget-clamped row estimates. When
// sharing is off (or a registry is already attached) the returned function
// is a harmless no-op, so callers can attach/detach unconditionally.
func AttachSharing(w *core.Warehouse, s strategy.Strategy) func() core.SharedStats {
	if !w.Options().ShareComputation {
		return func() core.SharedStats { return core.SharedStats{} }
	}
	h := w.PlannedSharing()
	if h == nil {
		h = SharingHints(w, s)
	}
	if !w.AttachSharing(h) {
		return func() core.SharedStats { return core.SharedStats{} }
	}
	return w.DetachSharing
}
