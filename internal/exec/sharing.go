package exec

import (
	"repro/internal/core"
	"repro/internal/planner"
	"repro/internal/strategy"
)

// This file bridges the planner's static sharing analysis to the executor's
// window-wide shared-result registry: every executor entry point (sequential
// Execute here, the staged/DAG scheduler in internal/parallel) attaches a
// registry seeded from planner.AnalyzeSharing before its first step and
// detaches it — harvesting the transient-footprint stats — when the window
// ends.

// RefsOf adapts a warehouse catalog to the reference function
// planner.AnalyzeSharing expects: the FROM-clause view list of each derived
// view's definition (one entry per reference, so self-joins repeat), nil for
// base views and unknown names.
func RefsOf(w *core.Warehouse) func(view string) []string {
	return func(view string) []string {
		v := w.View(view)
		if v == nil || v.IsBase() {
			return nil
		}
		refs := v.Def().Refs
		out := make([]string, len(refs))
		for i, ref := range refs {
			out[i] = ref.View
		}
		return out
	}
}

// SharingHints runs the planner's sharing analysis for a strategy and
// converts it to the executor's hint form. The registry only materializes
// operands the hints mark as multi-consumer, so feeding hints for a strategy
// other than the one about to run is safe but useless.
func SharingHints(w *core.Warehouse, s strategy.Strategy) *core.SharingHints {
	plan := planner.AnalyzeSharing(s, RefsOf(w), nil)
	h := &core.SharingHints{
		Consumers: make(map[core.SharedOperand]int, len(plan.Consumers)),
		ByComp:    make(map[string][]core.SharedOperand, len(plan.ByComp)),
	}
	for op, n := range plan.Consumers {
		h.Consumers[core.SharedOperand(op)] = n
	}
	for comp, ops := range plan.ByComp {
		conv := make([]core.SharedOperand, len(ops))
		for i, op := range ops {
			conv[i] = core.SharedOperand(op)
		}
		h.ByComp[comp] = conv
	}
	return h
}

// AttachSharing attaches a shared-computation registry for the strategy when
// the warehouse's options enable it, and returns the detach function the
// caller must invoke once the window completes. When sharing is off (or a
// registry is already attached) the returned function is a harmless no-op,
// so callers can attach/detach unconditionally.
func AttachSharing(w *core.Warehouse, s strategy.Strategy) func() core.SharedStats {
	if !w.Options().ShareComputation {
		return func() core.SharedStats { return core.SharedStats{} }
	}
	if !w.AttachSharing(SharingHints(w, s)) {
		return func() core.SharedStats { return core.SharedStats{} }
	}
	return w.DetachSharing
}
