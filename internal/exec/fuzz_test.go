package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	costpkg "repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/strategy"
)

// randomWarehouse builds a random warehouse: 2–4 integer base views and
// 1–4 derived views over random children with random equi-joins, filters,
// projections and (integer-only, so exactly comparable) aggregations.
func randomWarehouse(t *testing.T, rng *rand.Rand) *core.Warehouse {
	t.Helper()
	w := core.New(core.Options{})
	type viewInfo struct {
		name   string
		schema relation.Schema
	}
	var views []viewInfo

	nBase := 2 + rng.Intn(3)
	for i := 0; i < nBase; i++ {
		name := fmt.Sprintf("B%d", i)
		cols := 2 + rng.Intn(2)
		schema := make(relation.Schema, cols)
		for c := 0; c < cols; c++ {
			schema[c] = relation.Column{Name: fmt.Sprintf("c%d", c), Kind: relation.KindInt}
		}
		if err := w.DefineBase(name, schema); err != nil {
			t.Fatal(err)
		}
		views = append(views, viewInfo{name, schema})
		// Load random rows over a small domain so joins hit.
		var rows []relation.Tuple
		for r := 0; r < 10+rng.Intn(30); r++ {
			tup := make(relation.Tuple, cols)
			for c := 0; c < cols; c++ {
				tup[c] = relation.NewInt(rng.Int63n(6))
			}
			rows = append(rows, tup)
		}
		if err := w.LoadBase(name, rows); err != nil {
			t.Fatal(err)
		}
	}

	nDerived := 1 + rng.Intn(4)
	for i := 0; i < nDerived; i++ {
		name := fmt.Sprintf("D%d", i)
		// Pick 1–2 distinct children from existing views.
		nRefs := 1 + rng.Intn(2)
		perm := rng.Perm(len(views))
		b := algebra.NewBuilder()
		var aliases []string
		var schemas []relation.Schema
		for r := 0; r < nRefs; r++ {
			child := views[perm[r]]
			alias := fmt.Sprintf("t%d", r)
			b.From(alias, child.name, child.schema)
			aliases = append(aliases, alias)
			schemas = append(schemas, child.schema)
		}
		// randCol picks a random qualified column of ref r.
		randCol := func(r int) string {
			return aliases[r] + "." + schemas[r][rng.Intn(len(schemas[r]))].Name
		}
		// Join consecutive refs on random columns.
		for r := 1; r < nRefs; r++ {
			b.Join(randCol(r-1), randCol(r))
		}
		// Maybe a constant filter.
		if rng.Intn(2) == 0 {
			b.Where(&algebra.Binary{
				Op: algebra.OpLe,
				L:  b.Col(randCol(0)),
				R:  &algebra.Const{Value: relation.NewInt(rng.Int63n(6))},
			})
		}
		if rng.Intn(2) == 0 {
			// Aggregate view: group by one column, SUM another, COUNT(*).
			b.GroupByCol(randCol(0), "g")
			b.Agg("s", delta.AggSum, b.Col(randCol(nRefs-1)))
			b.Agg("n", delta.AggCount, nil)
		} else {
			// SPJ view: project two columns plus a computed expression.
			b.SelectCol(randCol(0), "p0")
			b.SelectExpr("p1", &algebra.Binary{
				Op: algebra.OpAdd,
				L:  b.Col(randCol(nRefs - 1)),
				R:  &algebra.Const{Value: relation.NewInt(100)},
			})
		}
		def, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.DefineDerived(name, def); err != nil {
			t.Fatal(err)
		}
		views = append(views, viewInfo{name, def.OutputSchema()})
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	return w
}

// stageRandom stages random delete/insert batches on every base view.
func stageRandom(t *testing.T, w *core.Warehouse, rng *rand.Rand) {
	t.Helper()
	for _, name := range w.ViewNames() {
		v := w.MustView(name)
		if !v.IsBase() {
			continue
		}
		d := delta.New(v.Schema())
		for _, r := range v.SortedRows() {
			if rng.Intn(4) == 0 {
				n := int64(1)
				if r.Count > 1 && rng.Intn(2) == 0 {
					n = r.Count
				}
				d.Add(r.Tuple, -n)
			}
		}
		for i := 0; i < rng.Intn(6); i++ {
			tup := make(relation.Tuple, len(v.Schema()))
			for c := range tup {
				tup[c] = relation.NewInt(rng.Int63n(6))
			}
			d.Add(tup, 1)
		}
		if err := w.StageDelta(name, d); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFuzzRandomWarehouses is the end-to-end randomized check: for random
// warehouses and random change batches, the MinWork plan, the Prune plan
// and the dual-stage plan all validate, execute, agree with each other, and
// match recomputation.
func TestFuzzRandomWarehouses(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	rng := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < trials; trial++ {
		base := randomWarehouse(t, rng)
		stageRandom(t, base, rng)
		g, err := Graph(base)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := PlanningStats(base)
		if err != nil {
			t.Fatal(err)
		}
		mw, err := planner.MinWork(g, stats)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, g, err)
		}
		plans := map[string]strategy.Strategy{
			"minwork":   mw.Strategy,
			"dualstage": strategy.DualStageVDAG(g),
		}
		// Prune is factorial; only run it on small graphs.
		if len(g.ViewsWithParents()) <= 5 {
			pr, err := planner.Prune(g, costpkg.DefaultModel, stats, RefCounts(base))
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			plans["prune"] = pr.Strategy
		}
		var refRows map[string][]string
		for name, s := range plans {
			run := base.Clone()
			if _, err := Execute(run, s, Options{Validate: true}); err != nil {
				t.Fatalf("trial %d %s (%s): %v\nstrategy: %s", trial, name, g, err, s)
			}
			if err := run.VerifyAll(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			rows := make(map[string][]string)
			for _, v := range run.ViewNames() {
				for _, r := range run.MustView(v).SortedRows() {
					rows[v] = append(rows[v], fmt.Sprintf("%v x%d", r.Tuple, r.Count))
				}
			}
			if refRows == nil {
				refRows = rows
				continue
			}
			for v := range refRows {
				a, b := refRows[v], rows[v]
				if len(a) != len(b) {
					t.Fatalf("trial %d %s: %s row count differs", trial, name, v)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("trial %d %s: %s row %d: %s vs %s", trial, name, v, i, a[i], b[i])
					}
				}
			}
		}
	}
}
