package exec

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/relation"
)

// PlanningStats builds the statistics the planners need from a warehouse
// with staged (but not yet propagated) base-view deltas: sizes are read
// from the catalog, base-view delta compositions are exact, and derived
// delta compositions are estimated bottom-up (cost.EstimateDeltas), which is
// the Section 5.5 recipe.
func PlanningStats(w *core.Warehouse) (cost.Stats, error) {
	stats := make(cost.Stats)
	var infos []cost.ViewInfo
	for _, name := range w.ViewNames() {
		v := w.MustView(name)
		st := cost.ViewStat{Size: v.Cardinality()}
		if v.IsBase() {
			d, err := w.DeltaOf(name)
			if err != nil {
				return nil, err
			}
			st.DeltaPlus = d.PlusCount()
			st.DeltaMinus = d.MinusCount()
		} else {
			var children []string
			for _, ref := range v.Def().Refs {
				children = append(children, ref.View)
			}
			infos = append(infos, cost.ViewInfo{Name: name, Children: children, IsAggregate: v.IsAggregate()})
		}
		stats[name] = st
	}
	if err := cost.EstimateDeltas(infos, stats); err != nil {
		return nil, err
	}
	return stats, nil
}

// RefCounts derives the per-definition reference counts the cost simulator
// needs from the warehouse catalog.
func RefCounts(w *core.Warehouse) cost.RefCounts {
	rc := make(cost.RefCounts)
	for _, name := range w.ViewNames() {
		v := w.MustView(name)
		if v.IsBase() {
			continue
		}
		m := make(map[string]int)
		for _, ref := range v.Def().Refs {
			m[ref.View]++
		}
		rc[name] = m
	}
	return rc
}

// ExactStats computes, after an update has run, the exact statistics of the
// update: pre-update sizes from pre, and the exact delta composition of
// every view as the bag difference post − pre. Feeding these into the cost
// simulator makes its prediction match the executor's measured work exactly
// (the engine scans each term operand once, which is the linear metric's
// execution model) — the consistency check behind the paper's claim that
// the metric "effectively tracks real-world execution".
func ExactStats(pre, post *core.Warehouse) (cost.Stats, error) {
	stats := make(cost.Stats)
	for _, name := range pre.ViewNames() {
		pv, qv := pre.MustView(name), post.View(name)
		if qv == nil {
			return nil, fmt.Errorf("exec: view %q missing from post warehouse", name)
		}
		counts := make(map[string]int64)
		pv.Scan(func(t relation.Tuple, c int64) bool {
			counts[t.Encode()] -= c
			return true
		})
		qv.Scan(func(t relation.Tuple, c int64) bool {
			counts[t.Encode()] += c
			return true
		})
		var plus, minus int64
		for _, c := range counts {
			if c > 0 {
				plus += c
			} else {
				minus -= c
			}
		}
		stats[name] = cost.ViewStat{Size: pv.Cardinality(), DeltaPlus: plus, DeltaMinus: minus}
	}
	return stats, nil
}
