package exec

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/strategy"
)

// TestTheorem61Measured executes, on identical warehouse states, every
// enumerated 1-way VDAG strategy, grouped by the view ordering each is
// strongly consistent with (its install order restricted to views that
// other views read). Theorem 6.1 says all members of a group incur the same
// work — and because this engine's execution model *is* the linear metric,
// the theorem must hold for measured work exactly, not just for simulated
// estimates.
func TestTheorem61Measured(t *testing.T) {
	base := newWarehouse(t, rand.New(rand.NewSource(61)))
	stageRandomChanges(t, base, rand.New(rand.NewSource(62)))
	g, err := Graph(base)
	if err != nil {
		t.Fatal(err)
	}
	withParents := make(map[string]bool)
	for _, v := range g.ViewsWithParents() {
		withParents[v] = true
	}
	groups := make(map[string][]int64) // ordering key -> measured comp work
	count := 0
	for _, s := range strategy.EnumerateVDAGStrategies(g) {
		if !s.IsOneWay() {
			continue
		}
		var ord []string
		for _, v := range s.InstOrder() {
			if withParents[v] {
				ord = append(ord, v)
			}
		}
		key := strings.Join(ord, ",")
		run := base.Clone()
		rep, err := Execute(run, s, Options{Validate: true})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := run.VerifyAll(); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		groups[key] = append(groups[key], rep.CompWork)
		count++
	}
	if count < 4 || len(groups) < 2 {
		t.Fatalf("enumeration too small: %d strategies in %d groups", count, len(groups))
	}
	for key, works := range groups {
		for _, w := range works[1:] {
			if w != works[0] {
				t.Errorf("ordering %s: measured comp work differs within the partition: %v", key, works)
				break
			}
		}
	}
	t.Logf("executed %d 1-way strategies across %d strong-consistency partitions", count, len(groups))
}
