package exec

import (
	"repro/internal/core"
	"repro/internal/faults"
)

// AttachMemory attaches a window memory budget to the warehouse when its
// options configure one, spilling oversized builds under dir (a per-run temp
// directory when empty). It returns the detach function the caller must
// invoke once the window completes; when no budget is configured (or a
// manager is already attached) the returned function is a harmless no-op, so
// callers can attach/detach unconditionally — mirroring AttachSharing. The
// error is non-nil only when the spill directory cannot be created.
func AttachMemory(w *core.Warehouse, dir string, inj *faults.Injector) (func() core.MemStats, error) {
	ok, err := w.AttachMemory(dir, inj)
	if err != nil {
		return nil, err
	}
	if !ok {
		return func() core.MemStats { return core.MemStats{} }, nil
	}
	return w.DetachMemory, nil
}
