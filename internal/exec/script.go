package exec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/strategy"
)

// Section 5.5 of the paper describes the practical deployment on a
// commercial RDBMS: one stored procedure per compute/install expression,
// defined once from the VDAG, with each update window executing an "update
// script" — the sequence of procedure calls the planner chose for the
// current change batch. This file renders both halves as text, so a
// warehouse administrator can inspect exactly what a strategy will run.

// ProcName returns the stored-procedure name for an expression, e.g.
// "comp_Q3_from_LINEITEM" or "inst_LINEITEM". Multi-view Comp expressions
// (dual-stage strategies) name every propagated view.
func ProcName(e strategy.Expr) string {
	switch x := e.(type) {
	case strategy.Comp:
		return "comp_" + sanitize(x.View) + "_from_" + strings.Join(sanitizeAll(x.OverSorted()), "_")
	case strategy.Inst:
		return "inst_" + sanitize(x.View)
	default:
		return fmt.Sprintf("unknown_%T", e)
	}
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

func sanitizeAll(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = sanitize(n)
	}
	return out
}

// Script renders a strategy as its update script: one EXEC line per
// expression, in order.
func Script(s strategy.Strategy) string {
	var b strings.Builder
	b.WriteString("-- update script (generated; see Section 5.5 of the paper)\n")
	for i, e := range s {
		fmt.Fprintf(&b, "EXEC %-40s -- step %2d: %s\n", ProcName(e)+";", i+1, e)
	}
	return b.String()
}

// ProcedureCatalog renders the set of procedures a warehouse needs: one per
// 1-way expression of its VDAG (the set MinWork and Prune strategies draw
// from), with the maintenance expression each one executes, in deterministic
// order.
func ProcedureCatalog(w *core.Warehouse) string {
	var lines []string
	for _, name := range w.ViewNames() {
		lines = append(lines, fmt.Sprintf("CREATE PROCEDURE %s AS\n  -- install δ%s into %s",
			ProcName(strategy.Inst{View: name}), name, name))
		v := w.MustView(name)
		if v.IsBase() {
			continue
		}
		for _, child := range w.Children(name) {
			comp := strategy.Comp{View: name, Over: []string{child}}
			lines = append(lines, fmt.Sprintf("CREATE PROCEDURE %s AS\n  -- δ%s ← maintenance terms of %s w.r.t. δ%s\n  -- definition: %s",
				ProcName(comp), name, name, child, v.Def()))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
