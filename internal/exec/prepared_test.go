package exec

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/strategy"
)

// TestPreparedSkipEmptyDeltas: prepared procedures honor the footnote-5
// option — comps over quiet views are skipped with zero work.
func TestPreparedSkipEmptyDeltas(t *testing.T) {
	w := newWarehouse(t, rand.New(rand.NewSource(31)))
	w.SetOptions(core.Options{SkipEmptyDeltas: true})
	// Stage changes on R only; S stays quiet.
	stageROnly(t, w)

	p, err := Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	stepR, err := p.Call(strategy.Comp{View: "J", Over: []string{"R"}})
	if err != nil {
		t.Fatal(err)
	}
	if stepR.Skipped || stepR.Work == 0 {
		t.Errorf("comp over changed R should run: %+v", stepR)
	}
	if _, err := p.Call(strategy.Inst{View: "R"}); err != nil {
		t.Fatal(err)
	}
	stepS, err := p.Call(strategy.Comp{View: "J", Over: []string{"S"}})
	if err != nil {
		t.Fatal(err)
	}
	if !stepS.Skipped || stepS.Work != 0 {
		t.Errorf("comp over quiet S should be skipped: %+v", stepS)
	}
	// Finish the window and verify.
	for _, e := range []strategy.Expr{
		strategy.Inst{View: "S"},
		strategy.Comp{View: "A", Over: []string{"J"}},
		strategy.Inst{View: "J"},
		strategy.Inst{View: "A"},
	} {
		if _, err := p.Call(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func stageROnly(t *testing.T, w *core.Warehouse) {
	t.Helper()
	d := delta.New(w.MustView("R").Schema())
	d.Add(intRow(7, 10), 1)
	if err := w.StageDelta("R", d); err != nil {
		t.Fatal(err)
	}
}
