// Package exec runs update strategies against a warehouse, measuring the
// update window: wall-clock time plus the actual work performed (operand
// tuples scanned by compute expressions, rows installed by installs). The
// measured work is exactly the quantity the linear work metric models, so
// executor reports can be compared directly against cost-simulator
// predictions — the comparison the paper's experiments perform against a
// commercial RDBMS.
package exec

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/strategy"
	"repro/internal/vdag"
)

// Mode selects how a strategy's expressions are scheduled.
type Mode string

// Execution modes.
const (
	// ModeSequential runs expressions one at a time in strategy order.
	ModeSequential Mode = "sequential"
	// ModeStaged runs the Section 9 barrier plan: conflict analysis groups
	// expressions into stages, each stage's expressions run concurrently,
	// and a barrier separates consecutive stages.
	ModeStaged Mode = "staged"
	// ModeDAG runs the precedence DAG directly with a bounded worker pool:
	// an expression becomes runnable the moment its last conflicting
	// predecessor completes — no inter-stage barriers.
	ModeDAG Mode = "dag"
	// ModeRecompute labels the graceful-degradation path: pending base
	// deltas installed directly, every derived view rebuilt from scratch.
	// It is a journal/report label, not a schedulable mode (ParseMode
	// rejects it).
	ModeRecompute Mode = "recompute"
)

// ParseMode maps a user-facing mode name ("sequential"/"seq", "staged",
// "dag") to a Mode.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "", "sequential", "seq":
		return ModeSequential, nil
	case "staged", "parallel":
		return ModeStaged, nil
	case "dag":
		return ModeDAG, nil
	}
	return "", fmt.Errorf("exec: unknown execution mode %q (want sequential, staged or dag)", name)
}

// StepReport records the execution of one expression.
type StepReport struct {
	Expr strategy.Expr
	// Work is the expression's measured work: operand tuples scanned for a
	// Comp, rows installed for an Inst.
	Work int64
	// Terms is the number of maintenance terms evaluated (Comp only).
	Terms int
	// Elapsed is the expression's wall-clock duration.
	Elapsed time.Duration
	// Worker identifies the worker that ran the expression (DAG and staged
	// execution; 0 for sequential runs).
	Worker int
	// Skipped marks a Comp elided by the empty-delta optimization.
	Skipped bool
	// CacheHits and CacheMisses count build-side hash tables served from /
	// built into the per-Compute build cache (term-parallel engine; zero
	// otherwise).
	CacheHits, CacheMisses int
	// CacheTuplesSaved totals operand tuples whose physical re-scan the
	// shared builds elided. Work still counts them: the linear metric
	// models every term's operand scan whether or not the build was shared.
	CacheTuplesSaved int64
	// SharedHits and SharedMisses count build tables served from / built
	// into the window-wide shared-computation registry (zero when sharing
	// is off). A hit means another view's Comp already hashed the operand.
	SharedHits, SharedMisses int
	// SharedTuplesSaved totals operand tuples whose physical scan the
	// cross-view shared tables elided. Like CacheTuplesSaved, Work still
	// counts them.
	SharedTuplesSaved int64
	// SpillCount counts build sides this step partitioned to disk because
	// they did not fit the window memory budget (0 with no budget attached).
	SpillCount int
	// SpilledBytes and SpillReReadBytes total the bytes the step wrote to
	// spill files and re-read from them during partition-wise probing. Work
	// is untouched: spilling changes bytes moved, never the linear metric.
	SpilledBytes, SpillReReadBytes int64
	// Digest fingerprints the delta an Inst step installed (see
	// delta.Digest); 0 for Comp steps and for views whose float-valued
	// columns make bit-exact digests unsound across evaluation orders. The
	// window journal records it so recovery can verify a replayed install
	// against the crashed run.
	Digest uint64
}

// Report summarizes a strategy execution — the update window.
type Report struct {
	Strategy strategy.Strategy
	Steps    []StepReport
	// CompWork and InstWork split the measured work by expression type.
	CompWork, InstWork int64
	// SharedBytesPeak is the high-water transient footprint of the
	// window's shared-computation registry (0 when sharing is off).
	SharedBytesPeak int64
	// SharedDetail lists every shared entry's planned-vs-observed life
	// (operands and join intermediates), sorted by name; nil when sharing
	// is off.
	SharedDetail []core.SharedEntryStats
	// PeakReservedBytes is the high-water mark of the window memory
	// budget's reserved bytes (0 when no budget is attached).
	PeakReservedBytes int64
	// Elapsed is the total update window.
	Elapsed time.Duration
}

// TotalWork returns compute plus install work.
func (r Report) TotalWork() int64 { return r.CompWork + r.InstWork }

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("work=%d (comp=%d inst=%d) elapsed=%s steps=%d",
		r.TotalWork(), r.CompWork, r.InstWork, r.Elapsed, len(r.Steps))
}

// Options configure execution.
type Options struct {
	// Validate runs the strategy through the correctness conditions
	// (C1–C8) against the warehouse's VDAG before executing. Execution of
	// an incorrect strategy would corrupt the warehouse.
	Validate bool
	// Context cancels execution between steps and propagates into term
	// evaluation and the morsel pool; nil means no cancellation.
	Context context.Context
	// SpillDir is where over-budget builds spill when the warehouse
	// configures a memory budget; empty means a per-run temp directory.
	SpillDir string
	// Faults optionally injects spill I/O faults (see internal/storage's
	// spill fault points); nil injects nothing.
	Faults *faults.Injector
}

// Graph derives the VDAG of a warehouse.
func Graph(w *core.Warehouse) (*vdag.Graph, error) {
	b := vdag.NewBuilder()
	for _, name := range w.ViewNames() {
		if err := b.Add(name, w.Children(name)); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// PanicError converts a recovered panic value into an error, preserving
// error identity (errors.Is / errors.As see through the wrapping) when the
// panic value is itself an error. Every executor that turns worker panics
// into step failures routes them through here so a panicking operator in a
// DAG worker or a morsel goroutine surfaces as a diagnosable error instead
// of taking down the process.
func PanicError(p any) error {
	if err, ok := p.(error); ok {
		return fmt.Errorf("panic: %w", err)
	}
	return fmt.Errorf("panic: %v", p)
}

// RunStep executes one strategy expression against the warehouse and
// measures it. A panic inside the expression is recovered and returned as
// an error (see PanicError); ctx cancels term evaluation and the morsel
// pool mid-Comp. Inst steps fingerprint the delta they are about to install
// (StepReport.Digest) so journaled windows can be verified on recovery.
func RunStep(ctx context.Context, w *core.Warehouse, e strategy.Expr) (step StepReport, err error) {
	step.Expr = e
	defer func() {
		if p := recover(); p != nil {
			err = PanicError(p)
		}
	}()
	t0 := time.Now()
	switch x := e.(type) {
	case strategy.Comp:
		cr, cerr := w.ComputeCtx(ctx, x.View, x.Over)
		if cerr != nil {
			return step, cerr
		}
		step.Work = cr.OperandTuples
		step.Terms = cr.Terms
		step.Skipped = cr.Skipped
		step.CacheHits, step.CacheMisses = cr.BuildCacheHits, cr.BuildCacheMisses
		step.CacheTuplesSaved = cr.BuildTuplesSaved
		step.SharedHits, step.SharedMisses = cr.SharedHits, cr.SharedMisses
		step.SharedTuplesSaved = cr.SharedTuplesSaved
		step.SpillCount = cr.SpillCount
		step.SpilledBytes, step.SpillReReadBytes = cr.SpilledBytes, cr.SpillReReadBytes
	case strategy.Inst:
		step.Digest = instDigest(w, x.View)
		n, ierr := w.Install(x.View)
		if ierr != nil {
			return step, ierr
		}
		step.Work = n
	default:
		return step, fmt.Errorf("unknown expression type %T", e)
	}
	step.Elapsed = time.Since(t0)
	return step, nil
}

// instDigest fingerprints the delta an install is about to fold in. Views
// with float-valued columns digest to 0: float accumulation order varies
// across evaluation modes, so bit-exact digests would be unsound there.
// Finalizing the delta here is safe — Install is about to do it anyway.
func instDigest(w *core.Warehouse, view string) uint64 {
	v := w.View(view)
	if v == nil || !v.HasPending() {
		return 0
	}
	for _, col := range v.Schema() {
		if col.Kind == relation.KindFloat {
			return 0
		}
	}
	d, err := w.DeltaOf(view)
	if err != nil {
		return 0
	}
	return d.Digest()
}

// Execute runs the strategy against the warehouse, mutating it, and returns
// the measured report. If opts.Validate is set, the strategy is checked
// against the warehouse's VDAG first and execution is refused on violation.
func Execute(w *core.Warehouse, s strategy.Strategy, opts Options) (rep Report, err error) {
	rep = Report{Strategy: s}
	changed := ChangedViews(w)
	if opts.Validate {
		if err := Validate(w, s); err != nil {
			return rep, err
		}
	}
	ctx := opts.Context
	detach := AttachSharing(w, s)
	defer func() {
		st := detach()
		rep.SharedBytesPeak = st.BytesPeak
		rep.SharedDetail = st.Detail
	}()
	detachMem, err := AttachMemory(w, opts.SpillDir, opts.Faults)
	if err != nil {
		return rep, err
	}
	defer func() {
		ms := detachMem()
		rep.PeakReservedBytes = ms.PeakReservedBytes
	}()
	start := time.Now()
	for _, e := range s {
		if ctx != nil && ctx.Err() != nil {
			return rep, fmt.Errorf("exec: %s: %w", e, ctx.Err())
		}
		step, err := RunStep(ctx, w, e)
		if err != nil {
			return rep, fmt.Errorf("exec: %s: %w", e, err)
		}
		if _, ok := e.(strategy.Comp); ok {
			rep.CompWork += step.Work
		} else {
			rep.InstWork += step.Work
		}
		rep.Steps = append(rep.Steps, step)
	}
	rep.Elapsed = time.Since(start)
	if err := MarkSkippedStale(w, s, changed); err != nil {
		return rep, err
	}
	return rep, nil
}

// Validate checks a strategy against the correctness conditions (C1–C8)
// relative to the warehouse's VDAG and current pending changes: a view may
// be skipped if nothing it depends on changed, or if it is under deferred
// maintenance (it will be marked stale instead).
func Validate(w *core.Warehouse, s strategy.Strategy) error {
	g, err := Graph(w)
	if err != nil {
		return err
	}
	changed := ChangedViews(w)
	deferred := w.EffectivelyDeferred()
	quiescent := func(v string) bool { return !changed[v] || deferred[v] }
	if err := strategy.ValidateVDAGStrategyRelaxed(g, s, quiescent); err != nil {
		return fmt.Errorf("exec: refusing incorrect strategy: %w", err)
	}
	return nil
}

// MarkSkippedStale performs the deferred-maintenance bookkeeping after a
// strategy has executed: a view whose underlying data changed but which the
// strategy did not install is now stale. Every executor (sequential, staged,
// DAG) must call this once its strategy completes, passing the ChangedViews
// set captured *before* execution (installs clear the pending state the set
// is derived from).
func MarkSkippedStale(w *core.Warehouse, s strategy.Strategy, changed map[string]bool) error {
	deferred := w.EffectivelyDeferred()
	installed := make(map[string]bool)
	for _, e := range s {
		if inst, ok := e.(strategy.Inst); ok {
			installed[inst.View] = true
		}
	}
	for v := range deferred {
		if changed[v] && !installed[v] {
			if err := w.MarkStale(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// ChangedViews computes which views the staged update batch touches: a base
// view with pending changes, a view with computed-but-uninstalled changes,
// or a derived view with a changed child (transitively). The complement is
// the quiescent set of the footnote-5 relaxation: views a strategy may skip.
func ChangedViews(w *core.Warehouse) map[string]bool {
	changed := make(map[string]bool)
	for _, name := range w.ViewNames() { // topological order
		if w.MustView(name).HasPending() {
			changed[name] = true
			continue
		}
		for _, c := range w.Children(name) {
			if changed[c] {
				changed[name] = true
				break
			}
		}
	}
	return changed
}

// Prepared is the stored-procedure analogue of Section 5.5: the compute and
// install closures of a VDAG compiled once, so each update window only
// decides sequencing. Procedures are keyed by expression key.
type Prepared struct {
	w     *core.Warehouse
	procs map[string]func() (StepReport, error)
}

// Prepare compiles one procedure per 1-way expression of the warehouse's
// VDAG: Comp(V, {c}) for every edge and Inst(V) for every view.
func Prepare(w *core.Warehouse) (*Prepared, error) {
	p := &Prepared{w: w, procs: make(map[string]func() (StepReport, error))}
	for _, name := range w.ViewNames() {
		name := name
		inst := strategy.Inst{View: name}
		p.procs[inst.Key()] = func() (StepReport, error) {
			n, err := w.Install(name)
			return StepReport{Expr: inst, Work: n}, err
		}
		for _, child := range w.Children(name) {
			child := child
			comp := strategy.Comp{View: name, Over: []string{child}}
			p.procs[comp.Key()] = func() (StepReport, error) {
				cr, err := w.Compute(name, []string{child})
				return StepReport{
					Expr: comp, Work: cr.OperandTuples, Terms: cr.Terms, Skipped: cr.Skipped,
					CacheHits: cr.BuildCacheHits, CacheMisses: cr.BuildCacheMisses,
					CacheTuplesSaved: cr.BuildTuplesSaved,
					SharedHits:       cr.SharedHits, SharedMisses: cr.SharedMisses,
					SharedTuplesSaved: cr.SharedTuplesSaved,
					SpillCount:        cr.SpillCount,
					SpilledBytes:      cr.SpilledBytes, SpillReReadBytes: cr.SpillReReadBytes,
				}, err
			}
		}
	}
	return p, nil
}

// Call executes one prepared procedure by expression.
func (p *Prepared) Call(e strategy.Expr) (StepReport, error) {
	proc, ok := p.procs[e.Key()]
	if !ok {
		return StepReport{}, fmt.Errorf("exec: no prepared procedure for %s", e)
	}
	t0 := time.Now()
	rep, err := proc()
	rep.Elapsed = time.Since(t0)
	return rep, err
}

// Run executes a 1-way strategy through the prepared procedures.
func (p *Prepared) Run(s strategy.Strategy) (Report, error) {
	rep := Report{Strategy: s}
	start := time.Now()
	for _, e := range s {
		step, err := p.Call(e)
		if err != nil {
			return rep, fmt.Errorf("exec: %s: %w", e, err)
		}
		rep.Steps = append(rep.Steps, step)
		if _, ok := e.(strategy.Comp); ok {
			rep.CompWork += step.Work
		} else {
			rep.InstWork += step.Work
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
