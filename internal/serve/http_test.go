package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	warehouse "repro"
)

// TestHTTPQueryWindowLifecycle drives the full HTTP surface: health and
// readiness, a query, a window commit (epoch flip), the post-window query,
// stats, and the readiness flip on drain.
func TestHTTPQueryWindowLifecycle(t *testing.T) {
	w := newRetail(t)
	s := New(w, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, sb.String()
	}
	urlQuery := url.QueryEscape

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("readyz = %d", code)
	}

	code, body := get("/query?q=" + urlQuery(totalsQuery))
	if code != 200 {
		t.Fatalf("query = %d %s", code, body)
	}
	var qr queryResponse
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Epoch != 1 || len(qr.Rows) != 2 || qr.Rows[0][1].(float64) != 5 {
		t.Fatalf("query response = %+v", qr)
	}

	stageSale(t, w, 103)
	resp, err := http.Post(srv.URL+"/window", "application/json",
		strings.NewReader(`{"mode":"dag"}`))
	if err != nil {
		t.Fatal(err)
	}
	var wr windowResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || wr.Epoch != 2 || wr.Seq != 1 {
		t.Fatalf("window = %d %+v", resp.StatusCode, wr)
	}

	if code, body := get("/query?q=" + urlQuery(totalsQuery)); code != 200 {
		t.Fatalf("post-window query = %d", code)
	} else {
		var qr2 queryResponse
		if err := json.Unmarshal([]byte(body), &qr2); err != nil {
			t.Fatal(err)
		}
		if qr2.Epoch != 2 || qr2.Rows[0][1].(float64) != 55 {
			t.Fatalf("post-window response = %+v", qr2)
		}
	}

	if code, body := get("/stats"); code != 200 || !strings.Contains(body, `"WindowsCommitted":1`) {
		t.Fatalf("stats = %d %s", code, body)
	}
	if code, body := get("/query"); code != http.StatusBadRequest {
		t.Fatalf("missing query = %d %s", code, body)
	}

	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d", code)
	}
	if code, _ := get("/query?q=" + urlQuery(totalsQuery)); code != http.StatusServiceUnavailable {
		t.Fatalf("query while draining = %d", code)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatal("healthz should stay green through drain")
	}
}

// TestHTTPWindowBudgetAbort: an over-budget window maps to 504 and the
// epoch endpoint still reports the pre-window epoch.
func TestHTTPWindowBudgetAbort(t *testing.T) {
	w := newRetail(t)
	s := New(w, Config{})
	defer s.Close(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	stageSale(t, w, 103)
	resp, err := http.Post(srv.URL+"/window", "application/json",
		strings.NewReader(`{"mode":"dag","budget_ms":0.000001}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("over-budget window = %d", resp.StatusCode)
	}
	var er struct {
		Epoch uint64 `json:"epoch"`
	}
	resp, err = http.Get(srv.URL + "/epoch")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if er.Epoch != 1 {
		t.Fatalf("epoch after aborted window = %d", er.Epoch)
	}
	_ = warehouse.ErrWindowAborted // documented mapping under test above
}
