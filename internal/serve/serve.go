// Package serve turns a warehouse into a long-running query service that
// stays online through update windows. Queries pass through a bounded
// admission queue into a fixed worker pool; when the queue is full the
// server sheds load immediately with ErrOverloaded instead of letting
// latency grow without bound. Each admitted query runs against a pinned
// epoch, so it sees exactly one published warehouse version — never a
// partially installed window — and epochs are monotonic: once any client
// has observed epoch e, no later query is served from an epoch before e.
//
// Update windows run through the same server (RunWindow), serialized by the
// warehouse facade, with an optional wall-clock budget: a window that
// overruns its budget aborts cleanly and leaves the serving epoch unchanged.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	warehouse "repro"
	"repro/internal/ingest"
)

// ErrOverloaded is returned when the admission queue is full: the query was
// shed without queuing. Callers should back off and retry; HTTP frontends
// map it to 503.
var ErrOverloaded = errors.New("serve: admission queue full; query shed")

// ErrClosed is returned for queries submitted after Close began draining
// the server.
var ErrClosed = errors.New("serve: server is draining")

// Config sizes the server. The zero value gets sensible defaults.
type Config struct {
	// QueueDepth bounds the admission queue; a query arriving when
	// QueueDepth queries are already waiting is shed with ErrOverloaded.
	// Default 64.
	QueueDepth int
	// Workers is the query worker pool size. Default GOMAXPROCS.
	Workers int
	// QueryTimeout is the per-query deadline applied when the caller's
	// context carries none; it covers queue wait plus execution. Default 5s;
	// negative disables.
	QueryTimeout time.Duration
	// WindowBudget is the default wall-clock budget for update windows run
	// through RunWindow (overridable per call). 0 means no budget.
	WindowBudget time.Duration
	// WindowJournal, when set, journals every window run through the server
	// that does not bring its own journal — the hook replication uses so
	// that windows from any path (the driver loop, POST /window) are
	// shipped to followers.
	WindowJournal *warehouse.Journal
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 5 * time.Second
	}
	return c
}

// Result is one answered query.
type Result struct {
	// Rows is the query's output, duplicates expanded.
	Rows []warehouse.Tuple
	// Epoch the result was served from.
	Epoch uint64
	// Wait is the time spent in the admission queue, Exec the evaluation
	// time against the pinned epoch.
	Wait, Exec time.Duration
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// Admitted counts queries that entered the queue; Shed those refused
	// with ErrOverloaded; Expired those whose deadline fired while queued;
	// Completed and Failed the executed ones by outcome.
	Admitted, Shed, Expired, Completed, Failed uint64
	// WindowsCommitted and WindowsAborted count update windows run through
	// the server, by outcome.
	WindowsCommitted, WindowsAborted uint64
	// CacheHits and CacheTuplesSaved accumulate the per-Compute build
	// cache counters over every committed window; SharedHits and
	// SharedTuplesSaved accumulate the cross-view shared-computation
	// counters. SharedBytesPeak is the largest transient footprint any
	// window's shared registry reached.
	CacheHits, SharedHits               uint64
	CacheTuplesSaved, SharedTuplesSaved uint64
	SharedBytesPeak                     int64
	// Spills, SpilledBytes and SpillReReadBytes accumulate the memory-budget
	// spill counters over every committed window; MemPeakBytes is the
	// largest reserved-build-state peak any window reached (all zero with no
	// memory budget configured).
	Spills                         uint64
	SpilledBytes, SpillReReadBytes uint64
	MemPeakBytes                   int64
	// PlanCache* mirror the warehouse's prepared-plan cache counters: a
	// hit served a query's plan straight from SQL bytes with zero parser
	// work. All zero when caching is disabled (PlanCacheCap == 0).
	PlanCacheHits, PlanCacheMisses           uint64
	PlanCacheEvictions, PlanCacheInvalidated uint64
	PlanCacheEntries, PlanCacheCap           int
	// Epoch is the current serving epoch, LiveEpochs how many retired
	// epochs readers still pin (plus the current one).
	Epoch      uint64
	LiveEpochs int
	// QueueLen and QueueCap describe the admission queue right now.
	QueueLen, QueueCap int
	// Draining reports the server is closing and refusing new work.
	Draining bool
	// Ingest is the attached continuous ingester's snapshot (nil when the
	// server runs without one); the /ingest endpoint serves it alone.
	Ingest *ingest.Stats `json:",omitempty"`
}

type response struct {
	res Result
	err error
}

type request struct {
	ctx  context.Context
	sql  string
	enq  time.Time
	done chan response
}

// Server is a concurrent query server over one warehouse. Create with New,
// stop with Close. All methods are safe for concurrent use.
type Server struct {
	w   *warehouse.Warehouse
	cfg Config

	queue chan *request
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	ing      *ingest.Ingester

	admitted, shed, expired, completed, failed atomic.Uint64
	windowsCommitted, windowsAborted           atomic.Uint64
	cacheHits, sharedHits                      atomic.Uint64
	cacheTuplesSaved, sharedTuplesSaved        atomic.Uint64
	sharedBytesPeak                            atomic.Int64
	spills, spilledBytes, spillReReadBytes     atomic.Uint64
	memPeakBytes                               atomic.Int64

	// gate, when set (tests), runs in the worker before each query executes
	// — a hook to hold workers busy and fill the queue deterministically.
	gate func()
}

// New starts a server over w with cfg's pool and queue. The caller keeps
// ownership of w: staging deltas and running windows directly remains
// legal (the facade serializes mutators), but RunWindow on the server is
// the instrumented path.
func New(w *warehouse.Warehouse, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{w: w, cfg: cfg, queue: make(chan *request, cfg.QueueDepth)}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Warehouse returns the served warehouse.
func (s *Server) Warehouse() *warehouse.Warehouse { return s.w }

// AttachIngest associates a continuous ingester with the server for
// observability: its snapshot rides /stats and the /ingest endpoint. The
// server does not own the ingester's lifecycle — the operator quiesces it
// before closing the server (ingester first, so its final windows still
// publish epochs the drained queries can read).
func (s *Server) AttachIngest(in *ingest.Ingester) {
	s.mu.Lock()
	s.ing = in
	s.mu.Unlock()
}

// Ingester returns the attached continuous ingester, nil when none.
func (s *Server) Ingester() *ingest.Ingester {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ing
}

// Query submits one ad-hoc query. It returns ErrOverloaded without blocking
// if the admission queue is full, ErrClosed if the server is draining, the
// context's error if the deadline fires first (in queue or while waiting),
// and otherwise the rows plus the epoch they were served from.
func (s *Server) Query(ctx context.Context, sql string) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, has := ctx.Deadline(); !has && s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	req := &request{ctx: ctx, sql: sql, enq: time.Now(), done: make(chan response, 1)}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Result{}, ErrClosed
	}
	select {
	case s.queue <- req:
		s.mu.Unlock()
		s.admitted.Add(1)
	default:
		s.mu.Unlock()
		s.shed.Add(1)
		return Result{}, ErrOverloaded
	}

	select {
	case resp := <-req.done:
		return resp.res, resp.err
	case <-ctx.Done():
		// The worker will observe the dead context and count the expiry;
		// the buffered done channel keeps it from blocking.
		return Result{}, ctx.Err()
	}
}

// worker drains the admission queue until Close closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for req := range s.queue {
		s.serveOne(req)
	}
}

// serveOne answers one admitted query against a pinned epoch.
func (s *Server) serveOne(req *request) {
	wait := time.Since(req.enq)
	if err := req.ctx.Err(); err != nil {
		s.expired.Add(1)
		req.done <- response{err: fmt.Errorf("serve: query expired after %s in queue: %w", wait.Round(time.Microsecond), err)}
		return
	}
	if s.gate != nil {
		s.gate()
	}
	t0 := time.Now()
	rows, epoch, err := s.w.QueryEpoch(req.sql)
	if err != nil {
		s.failed.Add(1)
		req.done <- response{err: err}
		return
	}
	s.completed.Add(1)
	req.done <- response{res: Result{Rows: rows, Epoch: epoch, Wait: wait, Exec: time.Since(t0)}}
}

// RunWindow executes one update window through the server: the staged
// changes are planned and installed as usual, but the window carries the
// server's budget (opts.Timeout, or Config.WindowBudget when unset) and the
// given context, and the outcome lands in the server's counters. Queries
// keep flowing during the window — a window commit is an atomic epoch flip,
// so every concurrent query sees exactly the pre- or post-window state. A
// window that exceeds its budget aborts cleanly (warehouse.ErrWindowAborted)
// and leaves the serving epoch unchanged.
func (s *Server) RunWindow(ctx context.Context, opts warehouse.WindowOptions) (warehouse.WindowReport, error) {
	if opts.Timeout == 0 {
		opts.Timeout = s.cfg.WindowBudget
	}
	if opts.Journal == nil {
		opts.Journal = s.cfg.WindowJournal
	}
	if ctx != nil {
		if opts.Context == nil {
			opts.Context = ctx
		} else {
			var cancel context.CancelFunc
			opts.Context, cancel = mergeCtx(opts.Context, ctx)
			defer cancel()
		}
	}
	rep, err := s.w.RunWindowOpts(opts)
	if err != nil {
		s.windowsAborted.Add(1)
		return rep, err
	}
	s.windowsCommitted.Add(1)
	c := rep.Counters()
	s.cacheHits.Add(uint64(c.CacheHits))
	s.cacheTuplesSaved.Add(uint64(c.CacheTuplesSaved))
	s.sharedHits.Add(uint64(c.SharedHits))
	s.sharedTuplesSaved.Add(uint64(c.SharedTuplesSaved))
	for {
		peak := s.sharedBytesPeak.Load()
		if c.SharedBytesPeak <= peak || s.sharedBytesPeak.CompareAndSwap(peak, c.SharedBytesPeak) {
			break
		}
	}
	s.spills.Add(uint64(c.SpillCount))
	s.spilledBytes.Add(uint64(c.SpilledBytes))
	s.spillReReadBytes.Add(uint64(c.SpillReReadBytes))
	for {
		peak := s.memPeakBytes.Load()
		if c.PeakReservedBytes <= peak || s.memPeakBytes.CompareAndSwap(peak, c.PeakReservedBytes) {
			break
		}
	}
	return rep, nil
}

// mergeCtx derives a context cancelled when either parent is.
func mergeCtx(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

// Epoch returns the current serving epoch.
func (s *Server) Epoch() uint64 { return s.w.Epoch() }

// Draining reports whether Close has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	qlen := len(s.queue)
	ing := s.ing
	s.mu.Unlock()
	var ingStats *ingest.Stats
	if ing != nil {
		st := ing.Stats()
		ingStats = &st
	}
	pc := s.w.PlanCacheStats()
	return Stats{
		Ingest:               ingStats,
		PlanCacheHits:        pc.Hits,
		PlanCacheMisses:      pc.Misses,
		PlanCacheEvictions:   pc.Evictions,
		PlanCacheInvalidated: pc.Invalidations,
		PlanCacheEntries:     pc.Entries,
		PlanCacheCap:         pc.Cap,
		Admitted:             s.admitted.Load(),
		Shed:                 s.shed.Load(),
		Expired:              s.expired.Load(),
		Completed:            s.completed.Load(),
		Failed:               s.failed.Load(),
		WindowsCommitted:     s.windowsCommitted.Load(),
		WindowsAborted:       s.windowsAborted.Load(),
		CacheHits:            s.cacheHits.Load(),
		CacheTuplesSaved:     s.cacheTuplesSaved.Load(),
		SharedHits:           s.sharedHits.Load(),
		SharedTuplesSaved:    s.sharedTuplesSaved.Load(),
		SharedBytesPeak:      s.sharedBytesPeak.Load(),
		Spills:               s.spills.Load(),
		SpilledBytes:         s.spilledBytes.Load(),
		SpillReReadBytes:     s.spillReReadBytes.Load(),
		MemPeakBytes:         s.memPeakBytes.Load(),
		Epoch:                s.w.Epoch(),
		LiveEpochs:           s.w.LiveEpochs(),
		QueueLen:             qlen,
		QueueCap:             s.cfg.QueueDepth,
		Draining:             draining,
	}
}

// Close drains the server: new queries are refused with ErrClosed, queries
// already admitted run to completion, and Close returns when the pool has
// quiesced — or with ctx's error if the drain outlives the context (workers
// keep draining in the background). Close is idempotent.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}
