package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	warehouse "repro"
)

// newRetail builds the small two-level warehouse the facade tests use:
// SALES/STORES bases, a join view, and an aggregate summary on top.
func newRetail(t *testing.T) *warehouse.Warehouse {
	t.Helper()
	w := warehouse.New()
	w.MustDefineBase("STORES", warehouse.Schema{
		{Name: "store_id", Kind: warehouse.KindInt},
		{Name: "region", Kind: warehouse.KindString},
	})
	w.MustDefineBase("SALES", warehouse.Schema{
		{Name: "sale_id", Kind: warehouse.KindInt},
		{Name: "store_id", Kind: warehouse.KindInt},
		{Name: "amount", Kind: warehouse.KindFloat},
	})
	w.MustDefineViewSQL("SALES_BY_STORE", `
		SELECT s.sale_id, s.amount, st.region
		FROM SALES s, STORES st
		WHERE s.store_id = st.store_id`)
	w.MustDefineViewSQL("REGION_TOTALS", `
		SELECT region, SUM(amount) AS total, COUNT(*) AS n
		FROM SALES_BY_STORE GROUP BY region`)
	if err := w.Load("STORES", []warehouse.Tuple{
		{warehouse.Int(1), warehouse.String("west")},
		{warehouse.Int(2), warehouse.String("east")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Load("SALES", []warehouse.Tuple{
		{warehouse.Int(100), warehouse.Int(1), warehouse.Float(10)},
		{warehouse.Int(101), warehouse.Int(1), warehouse.Float(20)},
		{warehouse.Int(102), warehouse.Int(2), warehouse.Float(5)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	return w
}

func stageSale(t *testing.T, w *warehouse.Warehouse, id int64) {
	t.Helper()
	d, err := w.NewDelta("SALES")
	if err != nil {
		t.Fatal(err)
	}
	d.Add(warehouse.Tuple{warehouse.Int(id), warehouse.Int(2), warehouse.Float(50)}, 1)
	if err := w.StageDelta("SALES", d); err != nil {
		t.Fatal(err)
	}
}

const totalsQuery = "SELECT region, SUM(amount) AS total FROM SALES_BY_STORE GROUP BY region ORDER BY region"

// TestServeQuery: a plain query comes back with rows and the serving epoch.
func TestServeQuery(t *testing.T) {
	s := New(newRetail(t), Config{})
	defer s.Close(context.Background())
	res, err := s.Query(context.Background(), totalsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || len(res.Rows) != 2 {
		t.Fatalf("epoch=%d rows=%v", res.Epoch, res.Rows)
	}
	if got := res.Rows[0].String(); got != "(east, 5)" {
		t.Errorf("row 0 = %s", got)
	}
	st := s.Stats()
	if st.Admitted != 1 || st.Completed != 1 || st.Shed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestServeShedsWhenQueueFull: with one gated worker and a depth-1 queue,
// the third concurrent query is refused immediately with ErrOverloaded —
// backpressure by shedding, not by blocking.
func TestServeShedsWhenQueueFull(t *testing.T) {
	s := New(newRetail(t), Config{Workers: 1, QueueDepth: 1})
	defer s.Close(context.Background())
	release := make(chan struct{})
	running := make(chan struct{}, 8)
	s.gate = func() {
		running <- struct{}{}
		<-release
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupies the worker
		defer wg.Done()
		if _, err := s.Query(context.Background(), totalsQuery); err != nil {
			t.Error(err)
		}
	}()
	<-running // worker is now gated; queue is empty

	wg.Add(1)
	go func() { // fills the queue
		defer wg.Done()
		if _, err := s.Query(context.Background(), totalsQuery); err != nil {
			t.Error(err)
		}
	}()
	// Wait until the queued request is actually in the channel.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Query(context.Background(), totalsQuery); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	close(release)
	wg.Wait()
	st := s.Stats()
	if st.Shed != 1 || st.Completed != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestServeQueryDeadline: a query whose deadline fires while queued returns
// the context error to the caller and is counted as expired by the worker.
func TestServeQueryDeadline(t *testing.T) {
	s := New(newRetail(t), Config{Workers: 1, QueueDepth: 4})
	defer s.Close(context.Background())
	release := make(chan struct{})
	running := make(chan struct{}, 8)
	s.gate = func() {
		running <- struct{}{}
		<-release
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Query(context.Background(), totalsQuery)
	}()
	<-running

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := s.Query(ctx, totalsQuery)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	close(release)
	wg.Wait()
	s.Close(context.Background()) // drain so the worker counts the expiry
	if st := s.Stats(); st.Expired != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestServeWindowCommitFlipsEpoch: a window run through the server bumps
// the epoch, queries before and after see the respective states, and the
// counters record the commit.
func TestServeWindowCommitFlipsEpoch(t *testing.T) {
	w := newRetail(t)
	s := New(w, Config{})
	defer s.Close(context.Background())

	before, err := s.Query(context.Background(), totalsQuery)
	if err != nil {
		t.Fatal(err)
	}
	stageSale(t, w, 103)
	rep, err := s.RunWindow(context.Background(), warehouse.WindowOptions{Mode: warehouse.ModeDAG})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seq != 1 {
		t.Errorf("window seq = %d", rep.Seq)
	}
	after, err := s.Query(context.Background(), totalsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if before.Epoch != 1 || after.Epoch != 2 {
		t.Fatalf("epochs %d -> %d", before.Epoch, after.Epoch)
	}
	if before.Rows[0].String() != "(east, 5)" || after.Rows[0].String() != "(east, 55)" {
		t.Errorf("east totals: %s -> %s", before.Rows[0], after.Rows[0])
	}
	if st := s.Stats(); st.WindowsCommitted != 1 || st.WindowsAborted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestServeWindowBudgetAbort: a window that blows its budget aborts with
// ErrWindowAborted, the serving epoch is unchanged, the staged batch
// remains pending, and a re-run without the budget commits it.
func TestServeWindowBudgetAbort(t *testing.T) {
	w := newRetail(t)
	s := New(w, Config{WindowBudget: time.Nanosecond})
	defer s.Close(context.Background())
	stageSale(t, w, 103)

	_, err := s.RunWindow(context.Background(), warehouse.WindowOptions{Mode: warehouse.ModeDAG})
	if !errors.Is(err, warehouse.ErrWindowAborted) {
		t.Fatalf("want ErrWindowAborted, got %v", err)
	}
	if e := s.Epoch(); e != 1 {
		t.Fatalf("aborted window moved the epoch to %d", e)
	}
	if p := w.Pending(); len(p) != 1 {
		t.Fatalf("aborted window consumed the batch: pending=%v", p)
	}
	res, err := s.Query(context.Background(), totalsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].String() != "(east, 5)" {
		t.Errorf("aborted window leaked state: %s", res.Rows[0])
	}
	if _, err := s.RunWindow(context.Background(), warehouse.WindowOptions{Mode: warehouse.ModeDAG, Timeout: -1}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WindowsAborted != 1 || st.WindowsCommitted != 1 || st.Epoch != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestServeConcurrentQueriesDuringWindows: queries race windows; every
// result is one of the published states (pre- or post-window totals for
// the east region), never a blend, and observed epochs never go backwards
// per client.
func TestServeConcurrentQueriesDuringWindows(t *testing.T) {
	w := newRetail(t)
	s := New(w, Config{Workers: 4, QueueDepth: 64})
	defer s.Close(context.Background())

	valid := map[string]bool{"(east, 5)": true}
	// Each window adds one east sale of 50.
	for i := 0; i < 6; i++ {
		valid[warehouse.Tuple{warehouse.String("east"), warehouse.Float(5 + float64(i+1)*50)}.String()] = true
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Query(context.Background(), totalsQuery)
				if errors.Is(err, ErrOverloaded) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				if res.Epoch < last {
					t.Errorf("epoch went backwards: %d after %d", res.Epoch, last)
					return
				}
				last = res.Epoch
				if !valid[res.Rows[0].String()] {
					t.Errorf("blended result %s at epoch %d", res.Rows[0], res.Epoch)
					return
				}
			}
		}()
	}
	for i := 0; i < 6; i++ {
		stageSale(t, w, int64(200+i))
		if _, err := s.RunWindow(context.Background(), warehouse.WindowOptions{Mode: warehouse.ModeDAG}); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if e := s.Epoch(); e != 7 {
		t.Errorf("epoch after 6 windows = %d", e)
	}
}

// TestServeDrain: Close refuses new work, completes admitted work, and is
// idempotent.
func TestServeDrain(t *testing.T) {
	s := New(newRetail(t), Config{Workers: 2})
	if _, err := s.Query(context.Background(), totalsQuery); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !s.Draining() {
		t.Fatal("server not draining after Close")
	}
	if _, err := s.Query(context.Background(), totalsQuery); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
