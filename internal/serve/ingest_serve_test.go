package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	warehouse "repro"
	"repro/internal/ingest"
)

// TestHTTPIngestEndpoint checks the /ingest surface: 404 while no ingester
// is attached, a JSON snapshot (mirrored into /stats) once one is, and that
// queries keep flowing while the ingester drives windows.
func TestHTTPIngestEndpoint(t *testing.T) {
	w := newRetail(t)
	s := New(w, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer s.Close(context.Background())

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, sb.String()
	}

	if code, _ := get("/ingest"); code != http.StatusNotFound {
		t.Fatalf("/ingest without an ingester = %d, want 404", code)
	}
	if _, body := get("/stats"); strings.Contains(body, "\"Ingest\"") {
		t.Fatalf("/stats carries an Ingest block with no ingester: %s", body)
	}

	ing, err := ingest.New(ingest.Config{Warehouse: w, Tick: time.Millisecond, SLO: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachIngest(ing)
	done := make(chan error, 1)
	go func() { done <- ing.Run(context.Background()) }()

	d, err := w.NewDelta("SALES")
	if err != nil {
		t.Fatal(err)
	}
	d.Add(warehouse.Tuple{warehouse.Int(990), warehouse.Int(2), warehouse.Float(25)}, 1)
	if err := ing.Submit("SALES", d); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ing.Stats().Windows == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ingested change never reached a window")
		}
		time.Sleep(time.Millisecond)
	}

	// The served epoch advanced via the ingester's window, and queries flow.
	if _, err := s.Query(context.Background(), totalsQuery); err != nil {
		t.Fatalf("query during ingestion: %v", err)
	}
	code, body := get("/ingest")
	if code != http.StatusOK {
		t.Fatalf("/ingest = %d %s", code, body)
	}
	var st ingest.Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad /ingest JSON: %v\n%s", err, body)
	}
	if st.Windows == 0 || st.Accepted == 0 {
		t.Fatalf("/ingest snapshot empty: %+v", st)
	}
	if _, body := get("/stats"); !strings.Contains(body, "\"Ingest\"") {
		t.Fatalf("/stats does not mirror the ingest snapshot: %s", body)
	}

	if err := ing.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
