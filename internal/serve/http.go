package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	warehouse "repro"
	"repro/internal/relation"
)

// Handler returns the server's HTTP surface:
//
//	GET/POST /query    — ?q=<sql> or JSON {"sql": ...}; answers with the
//	                     rows and the epoch they were served from. 503 +
//	                     Retry-After when shed, 504 on deadline.
//	POST     /window   — JSON {"planner","mode","workers","budget_ms"};
//	                     runs one update window over the staged changes.
//	GET      /epoch    — current serving epoch.
//	GET      /stats    — counters snapshot.
//	GET      /ingest   — continuous-ingestion snapshot (staleness
//	                     percentiles, queue depth, shed count, batch
//	                     trajectory); 404 when no ingester is attached.
//	GET      /healthz  — 200 while the process lives (liveness).
//	GET      /readyz   — 200 while accepting queries, 503 once draining
//	                     (readiness; flips before connections stop).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/window", s.handleWindow)
	mux.HandleFunc("/epoch", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]uint64{"epoch": s.Epoch()})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		in := s.Ingester()
		if in == nil {
			http.Error(w, "no ingester attached", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, in.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	return mux
}

type queryRequest struct {
	SQL string `json:"sql"`
}

type queryResponse struct {
	Epoch  uint64  `json:"epoch"`
	Rows   [][]any `json:"rows"`
	WaitUS int64   `json:"wait_us"`
	ExecUS int64   `json:"exec_us"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sql := r.URL.Query().Get("q")
	if sql == "" && r.Method == http.MethodPost {
		var qr queryRequest
		if err := json.NewDecoder(r.Body).Decode(&qr); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		sql = qr.SQL
	}
	if sql == "" {
		http.Error(w, "missing query (?q= or JSON {\"sql\": ...})", http.StatusBadRequest)
		return
	}
	res, err := s.Query(r.Context(), sql)
	if err != nil {
		writeQueryErr(w, err)
		return
	}
	out := queryResponse{
		Epoch:  res.Epoch,
		Rows:   make([][]any, 0, len(res.Rows)),
		WaitUS: res.Wait.Microseconds(),
		ExecUS: res.Exec.Microseconds(),
	}
	for _, t := range res.Rows {
		out.Rows = append(out.Rows, tupleJSON(t))
	}
	writeJSON(w, http.StatusOK, out)
}

type windowRequest struct {
	Planner string `json:"planner"`
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	// BudgetMS is the window's wall-clock budget in (possibly fractional)
	// milliseconds; 0 falls back to the server's configured budget.
	BudgetMS float64 `json:"budget_ms"`
}

type windowResponse struct {
	Epoch     uint64   `json:"epoch"`
	Seq       int      `json:"seq"`
	Planner   string   `json:"planner"`
	Mode      string   `json:"mode"`
	TotalWork int64    `json:"total_work"`
	ElapsedUS int64    `json:"elapsed_us"`
	Stale     []string `json:"stale,omitempty"`
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var wr windowRequest
	if r.Body != nil {
		// An empty body is fine: every field has a default.
		if err := json.NewDecoder(r.Body).Decode(&wr); err != nil && !errors.Is(err, io.EOF) {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	opts := warehouse.WindowOptions{
		Planner: warehouse.PlannerName(wr.Planner),
		Mode:    warehouse.Mode(wr.Mode),
		Workers: wr.Workers,
		Timeout: time.Duration(wr.BudgetMS * float64(time.Millisecond)),
	}
	rep, err := s.RunWindow(r.Context(), opts)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, warehouse.ErrWindowAborted):
			code = http.StatusGatewayTimeout
		case errors.Is(err, warehouse.ErrRecoveryNeeded):
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, http.StatusOK, windowResponse{
		Epoch:     s.Epoch(),
		Seq:       rep.Seq,
		Planner:   string(rep.Planner),
		Mode:      string(rep.Mode),
		TotalWork: rep.Report.TotalWork(),
		ElapsedUS: rep.Report.Elapsed.Microseconds(),
		Stale:     rep.StaleAfter,
	})
}

// writeQueryErr maps a Query error onto an HTTP status: shed load is 503
// with a Retry-After hint, a fired deadline 504, anything else 400 (the
// query itself was bad).
func writeQueryErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case isDeadline(err):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// tupleJSON converts one result tuple into JSON-friendly values.
func tupleJSON(t warehouse.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		switch v.Kind() {
		case relation.KindInt:
			out[i] = v.Int()
		case relation.KindFloat:
			out[i] = v.Float()
		case relation.KindString:
			out[i] = v.Str()
		case relation.KindBool:
			out[i] = v.Bool()
		case relation.KindDate:
			out[i] = v.String()
		default:
			out[i] = nil
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "")
	_ = enc.Encode(v)
}
