package serve

import (
	"context"
	"testing"

	warehouse "repro"
	"repro/internal/sqlparse"
)

// TestServeZeroParseOnHit: once a query shape is warm, serving it again
// does not invoke the SQL front end at all — the plan comes straight from
// the cache. sqlparse.ParseCalls is the witness: it must not move across
// the repeated queries.
func TestServeZeroParseOnHit(t *testing.T) {
	s := New(newRetail(t), Config{})
	defer s.Close(context.Background())

	if _, err := s.Query(context.Background(), totalsQuery); err != nil {
		t.Fatal(err)
	}
	warm := sqlparse.ParseCalls()
	for i := 0; i < 5; i++ {
		res, err := s.Query(context.Background(), totalsQuery)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("rows = %v", res.Rows)
		}
	}
	if got := sqlparse.ParseCalls(); got != warm {
		t.Errorf("warm queries parsed: ParseCalls %d -> %d", warm, got)
	}
	st := s.Stats()
	if st.PlanCacheHits < 5 {
		t.Errorf("stats did not surface the hits: %+v", st)
	}
	if st.PlanCacheEntries == 0 || st.PlanCacheCap == 0 {
		t.Errorf("cache population not surfaced: %+v", st)
	}
}

// TestServeWindowKeepsPlansWarm: a window committed through the server
// does not cold-start the plan cache — the same shape stays a hit on the
// new epoch.
func TestServeWindowKeepsPlansWarm(t *testing.T) {
	s := New(newRetail(t), Config{})
	defer s.Close(context.Background())
	if _, err := s.Query(context.Background(), totalsQuery); err != nil {
		t.Fatal(err)
	}
	stageSale(t, s.Warehouse(), 103)
	if _, err := s.RunWindow(context.Background(), warehouse.WindowOptions{Mode: warehouse.ModeDAG}); err != nil {
		t.Fatal(err)
	}
	warm := sqlparse.ParseCalls()
	res, err := s.Query(context.Background(), totalsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 2 {
		t.Fatalf("epoch = %d", res.Epoch)
	}
	if got := sqlparse.ParseCalls(); got != warm {
		t.Errorf("post-window query re-parsed: ParseCalls %d -> %d", warm, got)
	}
}
