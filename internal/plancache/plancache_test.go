package plancache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHitMissLifecycle(t *testing.T) {
	c := New[int](4)
	if _, ok := c.Get("SELECT a FROM R", 1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("SELECT a FROM R", 1, 42)
	v, ok := c.Get("SELECT a FROM R", 1)
	if !ok || v != 42 {
		t.Fatalf("Get = %d, %v; want 42, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Cap != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNormalization(t *testing.T) {
	c := New[int](4)
	c.Put("SELECT  a\n\tFROM   R", 1, 7)
	if v, ok := c.Get("SELECT a FROM R", 1); !ok || v != 7 {
		t.Fatalf("reformatted query missed the cache: %d, %v", v, ok)
	}
	if v, ok := c.Get("  SELECT a FROM R  ", 1); !ok || v != 7 {
		t.Fatalf("padded query missed the cache: %d, %v", v, ok)
	}
	// Whitespace inside string literals is significant: these are
	// different queries and must not share an entry.
	c.Put("SELECT a FROM R WHERE s = 'x y'", 1, 1)
	c.Put("SELECT a FROM R WHERE s = 'x  y'", 1, 2)
	if v, _ := c.Get("SELECT a FROM R WHERE s = 'x y'", 1); v != 1 {
		t.Fatalf("single-space literal = %d, want 1", v)
	}
	if v, _ := c.Get("SELECT a FROM R WHERE s = 'x  y'", 1); v != 2 {
		t.Fatalf("double-space literal = %d, want 2", v)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](2)
	c.Put("q1", 1, 1)
	c.Put("q2", 1, 2)
	c.Get("q1", 1) // q1 now most recent; q2 is LRU
	c.Put("q3", 1, 3)
	if _, ok := c.Get("q2", 1); ok {
		t.Fatal("q2 should have been evicted as LRU")
	}
	if _, ok := c.Get("q1", 1); !ok {
		t.Fatal("q1 should have survived (recently used)")
	}
	if _, ok := c.Get("q3", 1); !ok {
		t.Fatal("q3 should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

func TestVersionInvalidation(t *testing.T) {
	c := New[int](4)
	c.Put("q", 1, 10)
	if _, ok := c.Get("q", 2); ok {
		t.Fatal("stale-version entry served as a hit")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.Entries != 0 {
		t.Fatalf("stale entry not discarded: entries = %d", st.Entries)
	}
	// Rebinding at the new version repopulates.
	c.Put("q", 2, 20)
	if v, ok := c.Get("q", 2); !ok || v != 20 {
		t.Fatalf("rebound entry: %d, %v", v, ok)
	}
}

func TestPutUpdatesExisting(t *testing.T) {
	c := New[int](2)
	c.Put("q", 1, 1)
	c.Put("q", 2, 2)
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("duplicate Put grew the cache: %d entries", st.Entries)
	}
	if v, ok := c.Get("q", 2); !ok || v != 2 {
		t.Fatalf("updated entry: %d, %v", v, ok)
	}
}

func TestConcurrent(t *testing.T) {
	c := New[int](8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sql := fmt.Sprintf("SELECT %d FROM R", i%16)
				if _, ok := c.Get(sql, 1); !ok {
					c.Put(sql, 1, i)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > 8 {
		t.Fatalf("cache over capacity: %d entries", st.Entries)
	}
	if st.Hits+st.Misses != 8*500 {
		t.Fatalf("probe accounting off: hits=%d misses=%d", st.Hits, st.Misses)
	}
}
