// Package plancache is an LRU cache of prepared query plans keyed by
// normalized SQL text plus the catalog version the plan was bound against.
// It sits on the serving hot path: a hit hands back a fully bound,
// immutable plan without touching the lexer or parser, so the steady-state
// cost of a repeated query shape is one mutex-guarded map probe.
//
// Keys are whitespace-normalized SQL bytes — runs of blanks outside string
// literals collapse to one space — so reformatting a query does not split
// its cache entry. The catalog version acts as the epoch-independent
// binding fingerprint: window commits that define no views keep the same
// version and keep their plans; defining a view (or loading a snapshot)
// bumps it, and stale entries are discarded lazily on their next probe.
package plancache

import (
	"sync"
)

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	// Hits and Misses count Get probes by outcome; Evictions counts
	// entries dropped by LRU capacity pressure, Invalidations entries
	// dropped because the catalog version moved past them.
	Hits, Misses, Evictions, Invalidations uint64
	// Entries is the current population, Cap the configured capacity.
	Entries, Cap int
}

type entry[V any] struct {
	key        string
	version    uint64
	val        V
	prev, next *entry[V]
}

// Cache is a fixed-capacity LRU plan cache. All methods are safe for
// concurrent use. The zero value is not usable; call New.
type Cache[V any] struct {
	mu         sync.Mutex
	cap        int
	m          map[string]*entry[V]
	head, tail *entry[V] // doubly-linked LRU list; head is most recent

	hits, misses, evictions, invalidations uint64

	norm []byte // normalization scratch; guarded by mu
}

// New creates a cache holding at most capacity plans. Capacity must be
// positive (callers model "cache off" as no cache, not a zero-cap one).
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		capacity = 1
	}
	return &Cache[V]{cap: capacity, m: make(map[string]*entry[V], capacity)}
}

// normalize collapses runs of SQL whitespace outside string literals into
// single spaces and trims the ends, writing into the scratch buffer. The
// returned slice aliases c.norm and is only valid under c.mu.
func (c *Cache[V]) normalize(sql string) []byte {
	b := c.norm[:0]
	inStr := false
	pendingSpace := false
	for i := 0; i < len(sql); i++ {
		ch := sql[i]
		if !inStr && (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') {
			pendingSpace = len(b) > 0
			continue
		}
		if pendingSpace {
			b = append(b, ' ')
			pendingSpace = false
		}
		if ch == '\'' {
			inStr = !inStr
		}
		b = append(b, ch)
	}
	c.norm = b
	return b
}

func (c *Cache[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache[V]) pushFront(e *entry[V]) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Get returns the plan cached for sql at the given catalog version. A
// stored plan bound against a different version counts as a miss and is
// discarded (the caller is about to re-bind and Put the fresh plan).
func (c *Cache[V]) Get(sql string, version uint64) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := c.normalize(sql)
	e, ok := c.m[string(key)] // no-copy map probe
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	if e.version != version {
		c.invalidations++
		c.misses++
		delete(c.m, e.key)
		c.unlink(e)
		var zero V
		return zero, false
	}
	c.hits++
	if c.head != e {
		c.unlink(e)
		c.pushFront(e)
	}
	return e.val, true
}

// Put stores the plan bound for sql at the given catalog version,
// evicting the least-recently-used entry if the cache is full.
func (c *Cache[V]) Put(sql string, version uint64, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := c.normalize(sql)
	if e, ok := c.m[string(key)]; ok {
		e.version = version
		e.val = val
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		return
	}
	if len(c.m) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		c.evictions++
	}
	e := &entry[V]{key: string(key), version: version, val: val}
	c.m[e.key] = e
	c.pushFront(e)
}

// Cap returns the configured capacity.
func (c *Cache[V]) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       len(c.m),
		Cap:           c.cap,
	}
}
