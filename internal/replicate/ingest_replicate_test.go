package replicate

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	warehouse "repro"
	"repro/internal/ingest"
)

// TestIngestingLeaderReplicates drives a leader's windows from the
// continuous-ingestion path — micro-batches committed through the shipping
// journal — and checks a follower replays them to the identical state. The
// caught-up follower's lag must be zero in epochs, bytes, and wall-clock,
// while AcceptWallMS stays positive: the tip's accept-to-commit span is the
// end-to-end freshness of the replicated state.
func TestIngestingLeaderReplicates(t *testing.T) {
	const seed = 314
	lw := buildRep(t, seed)
	leader := NewLeader(lw)
	srv := httptest.NewServer(leader.Handler())
	defer srv.Close()

	ing, err := ingest.New(ingest.Config{
		Warehouse: lw,
		Journal:   leader.Journal(),
		SLO:       50 * time.Millisecond,
		Tick:      time.Millisecond,
		MinBatch:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ing.Run(context.Background()) }()

	var bases []string
	for _, name := range lw.Views() {
		if name[0] == 'B' {
			bases = append(bases, name)
		}
	}
	rng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < 24; i++ {
		name := bases[rng.Intn(len(bases))]
		d, err := lw.NewDelta(name)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 1+rng.Intn(4); j++ {
			d.Add(warehouse.Tuple{warehouse.Int(rng.Int63n(5)), warehouse.Int(rng.Int63n(5))}, 1)
		}
		if err := ing.Submit(name, d); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := ing.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := ing.Stats(); st.Windows == 0 {
		t.Fatalf("ingester committed no windows: %+v", st)
	}

	fw := buildRep(t, seed)
	f := NewFollower(fw, FollowerConfig{Leader: srv.URL})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := fw.StateDigest(), lw.StateDigest(); got != want {
		t.Fatalf("follower digest %x, leader %x", got, want)
	}
	if !bagsEqual(captureBags(t, lw), captureBags(t, fw)) {
		t.Fatal("follower bags diverge from the ingesting leader")
	}

	lag := f.Lag()
	if lag.Epochs != 0 || lag.Bytes != 0 || lag.WallMS != 0 {
		t.Fatalf("caught-up follower reports lag: %+v", lag)
	}
	if lag.AcceptWallMS <= 0 {
		t.Fatalf("ingested tip carries no end-to-end freshness: %+v", lag)
	}
	fs := f.Stats()
	if fs.LeaderCommitNS == 0 || fs.LeaderAcceptNS == 0 {
		t.Fatalf("stable-tip timestamps missing from follower stats: %+v", fs)
	}
	ls := leader.Stats()
	if ls.LastCommitNS != fs.LeaderCommitNS || ls.LastAcceptNS != fs.LeaderAcceptNS {
		t.Fatalf("leader advertises tip (%d, %d), follower heard (%d, %d)",
			ls.LastCommitNS, ls.LastAcceptNS, fs.LeaderCommitNS, fs.LeaderAcceptNS)
	}
}

// TestLagWallClock pins the wall-clock staleness arithmetic: a follower that
// has applied window 1 while the leader's stable tip is window 2 must report
// a WallMS of at least the gap between the two commits, and a full catch-up
// must zero it again. Tiny fetch chunks keep the follower partially applied
// long enough to observe the gap deterministically.
func TestLagWallClock(t *testing.T) {
	const seed = 271
	lw := buildRep(t, seed)
	leader := NewLeader(lw)
	rng := rand.New(rand.NewSource(seed + 1))

	stageRep(t, lw, rng)
	if _, err := leader.RunWindow(warehouse.WindowOptions{}); err != nil {
		t.Fatal(err)
	}
	const gap = 10 * time.Millisecond
	time.Sleep(gap)
	stageRep(t, lw, rng)
	if _, err := leader.RunWindow(warehouse.WindowOptions{}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(leader.Handler())
	defer srv.Close()
	fw := buildRep(t, seed)
	f := NewFollower(fw, FollowerConfig{Leader: srv.URL, ChunkBytes: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Poll in 64-byte chunks until exactly window 1 is applied: the header
	// already advertises window 2's commit time, so the wall-clock lag must
	// cover the inter-window gap.
	for f.Stats().ReplayedWindows == 0 {
		if _, err := f.Poll(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if lag := f.Lag(); lag.WallMS < float64(gap.Milliseconds()) {
		t.Fatalf("partially applied follower reports %.2fms wall lag, want >= %dms", lag.WallMS, gap.Milliseconds())
	}

	if err := f.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	if lag := f.Lag(); lag.Bytes != 0 || lag.WallMS != 0 {
		t.Fatalf("caught-up follower reports lag: %+v", lag)
	}
}
