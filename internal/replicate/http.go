package replicate

import (
	"encoding/json"
	"net/http"
)

// Handler serves the follower's replication observability:
//
//	GET /lag             — Lag as JSON (epoch, leader epoch, epoch/byte lag)
//	GET /replicate/stats — FollowerStats as JSON
//
// Queries are served by the embedding server (internal/serve) against
// Warehouse(); this handler only adds the replication endpoints.
func (f *Follower) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lag", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(f.Lag())
	})
	mux.HandleFunc("/replicate/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(f.Stats())
	})
	return mux
}
