package replicate

// Torn-stream tests for the shipping protocol: a proxy between follower and
// leader corrupts exactly one response — truncating the chunk body,
// replaying a duplicated (stale-offset) chunk, or flipping a bit inside a
// record — and the follower must reject the chunk with its state intact,
// count a reconnect, and converge once the stream heals. Mirrors the
// snapshot reader's stage-then-validate tests: nothing corrupt is ever
// applied, because nothing is applied before it verifies.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	warehouse "repro"
	"repro/internal/journal"
)

// tamper rewrites one /replicate/log response. It gets the recorded clean
// response and mutates it in place.
type tamper func(h http.Header, body []byte) []byte

// tamperProxy forwards to the leader's handler, applying t to the first
// log response after arm() is called.
type tamperProxy struct {
	inner http.Handler
	t     tamper
	armed atomic.Bool
	fired atomic.Bool
}

func (p *tamperProxy) arm() { p.armed.Store(true); p.fired.Store(false) }

func (p *tamperProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := httptest.NewRecorder()
	p.inner.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	if r.URL.Path == "/replicate/log" && rec.Code == http.StatusOK &&
		p.armed.Load() && p.fired.CompareAndSwap(false, true) {
		p.armed.Store(false)
		body = p.t(rec.Header(), body)
	}
	for k, vs := range rec.Header() {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.Code)
	_, _ = w.Write(body)
}

// runTornTrial ships two windows cleanly, arms the tamper, runs a third
// window, and requires: the armed fetch fails without touching follower
// state, a reconnect is counted, and the follower then converges.
func runTornTrial(t *testing.T, name string, tm tamper) {
	t.Run(name, func(t *testing.T) {
		const seed = 7500
		leader := NewLeader(buildRep(t, seed))
		proxy := &tamperProxy{inner: leader.Handler(), t: tm}
		srv := httptest.NewServer(proxy)
		defer srv.Close()
		f := NewFollower(buildRep(t, seed), FollowerConfig{
			Leader: srv.URL,
			Client: srv.Client(),
			Sleep:  func(time.Duration) {},
		})
		rng := rand.New(rand.NewSource(seed * 3))
		ctx := context.Background()

		for i := 0; i < 2; i++ {
			stageRep(t, leader.Warehouse(), rng)
			if _, err := leader.RunWindow(warehouse.WindowOptions{Mode: warehouse.ModeDAG}); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.CatchUp(ctx); err != nil {
			t.Fatal(err)
		}
		preBags := captureBags(t, f.Warehouse())
		preEpoch := f.Warehouse().Epoch()
		preHWM := f.HWM()

		stageRep(t, leader.Warehouse(), rng)
		if _, err := leader.RunWindow(warehouse.WindowOptions{Mode: warehouse.ModeDAG}); err != nil {
			t.Fatal(err)
		}
		proxy.arm()

		// The tampered fetch must fail and must not move the follower.
		if _, err := f.Poll(ctx); err == nil {
			t.Fatal("tampered chunk was accepted")
		}
		if !proxy.fired.Load() {
			t.Fatal("tamper never fired")
		}
		if got := f.Warehouse().Epoch(); got != preEpoch {
			t.Fatalf("tampered chunk flipped the epoch: %d -> %d", preEpoch, got)
		}
		if f.HWM() != preHWM {
			t.Fatalf("tampered chunk advanced the HWM: %d -> %d", preHWM, f.HWM())
		}
		if !bagsEqual(captureBags(t, f.Warehouse()), preBags) {
			t.Fatal("tampered chunk mutated follower state")
		}
		if st := f.Stats(); st.ReconnectCount == 0 {
			t.Fatal("rejected chunk not counted as a reconnect")
		}

		// The stream is clean again: the follower re-fetches and converges.
		if err := f.CatchUp(ctx); err != nil {
			t.Fatal(err)
		}
		if !bagsEqual(captureBags(t, f.Warehouse()), captureBags(t, leader.Warehouse())) {
			t.Fatal("follower did not converge after re-fetch")
		}
		if st := f.Stats(); st.ReplayedWindows != 3 || st.Dead != "" {
			t.Fatalf("stats after recovery: %+v", st)
		}
	})
}

func TestTornStream(t *testing.T) {
	runTornTrial(t, "truncated-chunk", func(h http.Header, body []byte) []byte {
		// Cut the body without fixing the headers: X-Log-Next no longer
		// matches the byte count the follower receives.
		if len(body) < 2 {
			return body
		}
		return body[:len(body)/2]
	})
	runTornTrial(t, "truncated-chunk-consistent-headers", func(h http.Header, body []byte) []byte {
		// A smarter failure: the transfer is cut AND the length headers are
		// recomputed to match, so only the CRC can catch it.
		if len(body) < 2 {
			return body
		}
		body = body[:len(body)/2]
		from, _ := strconv.ParseInt(h.Get(HeaderFrom), 10, 64)
		h.Set(HeaderNext, strconv.FormatInt(from+int64(len(body)), 10))
		return body
	})
	runTornTrial(t, "duplicated-chunk", func(h http.Header, body []byte) []byte {
		// Replay from offset 0: a stale duplicated chunk. Headers are made
		// self-consistent, so only the offset echo can catch it.
		h.Set(HeaderFrom, "0")
		h.Set(HeaderNext, strconv.FormatInt(int64(len(body)), 10))
		return body
	})
	runTornTrial(t, "bit-flipped-record", func(h http.Header, body []byte) []byte {
		// Flip one bit mid-body and recompute the chunk CRC over the flipped
		// bytes: the transfer-level check passes, and only the per-record
		// frame CRC catches it during parsing.
		if len(body) == 0 {
			return body
		}
		body[len(body)/2] ^= 0x10
		h.Set(HeaderCRC, fmt.Sprintf("%016x", journal.ChunkCRC(body)))
		return body
	})
}
