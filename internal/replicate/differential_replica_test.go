package replicate

// Leader/follower differential harness. ~100 seeded trials (each a fresh
// random leveled warehouse) run windows across sequential, DAG, and
// term-parallel execution, shipping to 1–3 followers through real HTTP,
// with injected disconnects, a slow follower that fetches only every other
// window, deadline-aborted windows mid-stream, and follower crashes
// mid-replay (rebuilt from the sources and caught up from offset zero).
// The invariants, checked at every committed epoch on every replica:
//
//   - bag-equality: each follower's full view bags at epoch e are identical
//     to the leader's bags when it committed e;
//   - digest-equality: the replayed window's per-step installed-delta
//     digests match the leader's step digests exactly;
//   - a crashed replay leaves the follower at its pre-crash epoch with its
//     pre-crash state;
//   - every replica converges to the leader's final state and digest.
//
// Trials run in parallel, so the race tier exercises concurrent replica
// sets; within a trial, polling is synchronous and deterministic.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	warehouse "repro"
	"repro/internal/faults"
)

func TestDifferentialReplication(t *testing.T) {
	trials := 34
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			t.Parallel()
			runReplicaTrial(t, int64(9000+trial*17))
		})
	}
}

// replicaState tracks what the leader looked like at each committed epoch.
type replicaState struct {
	mu      sync.Mutex
	bags    map[uint64]map[string][]string
	digests map[uint64]map[string]uint64
}

func (rs *replicaState) record(epoch uint64, bags map[string][]string, dig map[string]uint64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.bags[epoch] = bags
	rs.digests[epoch] = dig
}

func (rs *replicaState) at(epoch uint64) (map[string][]string, map[string]uint64, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	b, ok := rs.bags[epoch]
	return b, rs.digests[epoch], ok
}

func runReplicaTrial(t *testing.T, seed int64) {
	const windows = 6
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()

	leader := NewLeader(buildRep(t, seed))
	srv := httptest.NewServer(leader.Handler())
	defer srv.Close()

	ref := &replicaState{bags: map[uint64]map[string][]string{}, digests: map[uint64]map[string]uint64{}}
	ref.record(leader.Warehouse().Epoch(), captureBags(t, leader.Warehouse()), nil)

	// verifyApply is each follower's OnApply hook: at the instant a window
	// replays, the follower's epoch and full bags must equal what the leader
	// had when it committed that epoch, and the step digests must match.
	newVerified := func(label string, inj *faults.Injector) *Follower {
		f := NewFollower(buildRep(t, seed), FollowerConfig{
			Leader: srv.URL,
			Client: srv.Client(),
			Faults: inj,
			Sleep:  func(time.Duration) {},
		})
		f.cfg.OnApply = func(rep warehouse.WindowReport) {
			epoch := f.Warehouse().Epoch()
			wantBags, wantDig, ok := ref.at(epoch)
			if !ok {
				t.Errorf("%s: replayed into epoch %d the leader never committed", label, epoch)
				return
			}
			if !bagsEqual(captureBags(t, f.Warehouse()), wantBags) {
				t.Errorf("%s: bags at epoch %d differ from leader's", label, epoch)
			}
			if !digestsEqual(stepDigests(rep), wantDig) {
				t.Errorf("%s: step digests at epoch %d differ from leader's", label, epoch)
			}
		}
		return f
	}

	// 1–3 followers. Follower 0 suffers injected disconnects (transient
	// fetch faults, healed by CatchUp's retry loop). The last follower, when
	// there is more than one, is "slow": it fetches only every other window.
	nf := 1 + rng.Intn(3)
	followers := make([]*Follower, nf)
	for i := range followers {
		var inj *faults.Injector
		if i == 0 {
			inj = faults.New(seed + int64(i))
			inj.FailTimes("fetch", 1+rng.Intn(3))
		}
		followers[i] = newVerified(fmt.Sprintf("follower%d", i), inj)
	}
	slow := -1
	if nf > 1 {
		slow = nf - 1
	}
	// Follower 0 replays every window under a starved memory budget: its
	// replays spill while the leader's windows may not have, and the OnApply
	// digest checks prove bounded replay reproduces the leader's installed
	// deltas bit for bit.
	followers[0].Warehouse().SetMemoryBudget(1)

	// One crash trial in three: a follower dies mid-replay and is rebuilt.
	crashWin := -1
	crashIdx := 0
	if rng.Intn(3) == 0 {
		crashWin = 2 + rng.Intn(windows-2)
		crashIdx = rng.Intn(nf)
	}

	// The leader's own budget cycles unbounded / 1 MiB / starved across the
	// stream: shipped journals must replay identically whatever memory regime
	// produced them.
	leaderBudgets := []int64{0, 1 << 20, 1}

	for win := 0; win < windows; win++ {
		stageRep(t, leader.Warehouse(), rng)
		leader.Warehouse().SetMemoryBudget(leaderBudgets[win%len(leaderBudgets)])

		// Execution shape: sequential, DAG, or term-parallel (the morsel
		// engine under sequential or DAG scheduling). Occasionally a window
		// aborts on a nanosecond deadline before the real one commits —
		// follower replication must ship the abort record harmlessly.
		if rng.Intn(6) == 0 {
			_, err := leader.RunWindow(warehouse.WindowOptions{Mode: warehouse.ModeDAG, Timeout: time.Nanosecond})
			if !errors.Is(err, warehouse.ErrWindowAborted) {
				t.Fatalf("win %d: deadline abort returned %v", win, err)
			}
		}
		opts := warehouse.WindowOptions{Workers: 1 + rng.Intn(4)}
		switch win % 3 {
		case 0:
			opts.Mode = warehouse.ModeSequential
		case 1:
			opts.Mode = warehouse.ModeDAG
		default: // term-parallel
			opts.Mode = warehouse.ModeDAG
			leader.Warehouse().SetParallelism(opts.Workers, true)
		}
		rep, err := leader.RunWindow(opts)
		leader.Warehouse().SetParallelism(0, false)
		if err != nil {
			t.Fatalf("win %d: %v", win, err)
		}
		epoch := leader.Warehouse().Epoch()
		ref.record(epoch, captureBags(t, leader.Warehouse()), stepDigests(rep))

		for i, f := range followers {
			if i == slow && win%2 == 0 && win != windows-1 {
				continue // the slow follower skips this round entirely
			}
			if win == crashWin && i == crashIdx {
				// Arm a crash-class fault at the next replay: the follower
				// must die with its pre-crash state intact, then be rebuilt
				// from the sources and catch up from offset zero.
				preEpoch := f.Warehouse().Epoch()
				preBags := captureBags(t, f.Warehouse())
				inj := faults.New(seed + 99)
				inj.CrashAt("apply", 1)
				f.cfg.Faults = inj
				if err := f.CatchUp(ctx); !errors.Is(err, ErrFollowerDead) {
					t.Fatalf("win %d: crash-armed catch-up returned %v", win, err)
				}
				if got := f.Warehouse().Epoch(); got != preEpoch {
					t.Fatalf("win %d: crashed replay flipped epoch %d -> %d", win, preEpoch, got)
				}
				if !bagsEqual(captureBags(t, f.Warehouse()), preBags) {
					t.Fatalf("win %d: crashed replay mutated follower state", win)
				}
				if _, err := f.Poll(ctx); !errors.Is(err, ErrFollowerDead) {
					t.Fatalf("win %d: dead follower accepted a poll: %v", win, err)
				}
				if f.Stats().Dead == "" {
					t.Fatalf("win %d: dead follower's stats hide the cause", win)
				}
				followers[i] = newVerified(fmt.Sprintf("follower%d-rebuilt", i), nil)
				if i == 0 {
					followers[i].Warehouse().SetMemoryBudget(1)
				}
				f = followers[i]
			}
			if err := f.CatchUp(ctx); err != nil {
				t.Fatalf("win %d follower %d: %v", win, i, err)
			}
			if got := f.Warehouse().Epoch(); got != epoch {
				t.Fatalf("win %d follower %d: epoch %d, leader %d", win, i, got, epoch)
			}
			// At the same epoch, a random ORDER BY/LIMIT/OFFSET query must
			// come back row-identical from leader and follower.
			sql := randPresentationQuery(t, leader.Warehouse(), rng)
			lrows := queryRows(t, leader.Warehouse(), sql)
			frows := queryRows(t, f.Warehouse(), sql)
			if len(lrows) != len(frows) {
				t.Fatalf("win %d follower %d: %s: %d rows vs leader's %d", win, i, sql, len(frows), len(lrows))
			}
			for r := range lrows {
				if lrows[r] != frows[r] {
					t.Fatalf("win %d follower %d: %s: row %d = %s, leader %s", win, i, sql, r, frows[r], lrows[r])
				}
			}
		}
	}

	// Convergence: every follower ends bag- and digest-identical to the
	// leader, having replayed every committed window it fetched.
	finalBags := captureBags(t, leader.Warehouse())
	finalDigest := leader.Warehouse().StateDigest()
	for i, f := range followers {
		if err := f.CatchUp(ctx); err != nil {
			t.Fatalf("final catch-up follower %d: %v", i, err)
		}
		if !bagsEqual(captureBags(t, f.Warehouse()), finalBags) {
			t.Errorf("follower %d: final bags diverge from leader", i)
		}
		if got := f.Warehouse().StateDigest(); got != finalDigest {
			t.Errorf("follower %d: final state digest %016x, leader %016x", i, got, finalDigest)
		}
		if lag := f.Lag(); lag.Epochs != 0 || lag.Bytes != 0 {
			t.Errorf("follower %d: residual lag %+v", i, lag)
		}
		if err := f.Warehouse().Verify(); err != nil {
			t.Errorf("follower %d: %v", i, err)
		}
	}
	if inj0 := followers[0]; inj0.Stats().ReconnectCount == 0 && crashWin == -1 && inj0.cfg.Faults != nil {
		t.Error("follower 0's injected disconnects never registered")
	}
}
