package replicate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	warehouse "repro"
	"repro/internal/journal"
)

// newPair builds a leader and one follower over identical seed warehouses,
// with the leader served by httptest.
func newPair(t *testing.T, seed int64) (*Leader, *Follower, *httptest.Server) {
	t.Helper()
	leader := NewLeader(buildRep(t, seed))
	srv := httptest.NewServer(leader.Handler())
	t.Cleanup(srv.Close)
	f := NewFollower(buildRep(t, seed), FollowerConfig{
		Leader: srv.URL,
		Client: srv.Client(),
		Sleep:  func(time.Duration) {},
	})
	return leader, f, srv
}

// TestShipAndReplay: windows run on the leader arrive on the follower in
// order, every view is bag-identical at every committed epoch, and the
// installed-delta digests match step for step.
func TestShipAndReplay(t *testing.T) {
	const seed = 7100
	leader, f, _ := newPair(t, seed)
	rng := rand.New(rand.NewSource(seed * 3))
	ctx := context.Background()

	var followerReps []warehouse.WindowReport
	f.cfg.OnApply = func(rep warehouse.WindowReport) { followerReps = append(followerReps, rep) }

	modes := []warehouse.Mode{warehouse.ModeSequential, warehouse.ModeStaged, warehouse.ModeDAG}
	var leaderReps []warehouse.WindowReport
	for i := 0; i < 6; i++ {
		stageRep(t, leader.Warehouse(), rng)
		rep, err := leader.RunWindow(warehouse.WindowOptions{Mode: modes[i%len(modes)]})
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		leaderReps = append(leaderReps, rep)

		if err := f.CatchUp(ctx); err != nil {
			t.Fatalf("window %d catch-up: %v", i, err)
		}
		if got, want := f.Warehouse().Epoch(), leader.Warehouse().Epoch(); got != want {
			t.Fatalf("window %d: follower epoch %d, leader %d", i, got, want)
		}
		if !bagsEqual(captureBags(t, f.Warehouse()), captureBags(t, leader.Warehouse())) {
			t.Fatalf("window %d: follower state diverged from leader", i)
		}
		if got, want := f.Warehouse().StateDigest(), leader.Warehouse().StateDigest(); got != want {
			t.Fatalf("window %d: state digests %016x vs %016x", i, got, want)
		}
	}

	if len(followerReps) != len(leaderReps) {
		t.Fatalf("follower replayed %d windows, leader ran %d", len(followerReps), len(leaderReps))
	}
	for i := range leaderReps {
		if !followerReps[i].Replicated {
			t.Errorf("window %d: follower report not marked Replicated", i)
		}
		if !digestsEqual(stepDigests(leaderReps[i]), stepDigests(followerReps[i])) {
			t.Errorf("window %d: step digest sets differ leader vs follower", i)
		}
	}

	st := f.Stats()
	if st.ReplayedWindows != 6 || st.LagEpochs != 0 || st.LagBytes != 0 {
		t.Errorf("follower stats: %+v", st)
	}
	if st.HWM != leader.Log().StableLen() {
		t.Errorf("HWM %d != leader stable %d", st.HWM, leader.Log().StableLen())
	}
	ls := leader.Stats()
	if ls.CommittedWindows != 6 || ls.ShippedBytes < st.HWM {
		t.Errorf("leader stats: %+v", ls)
	}
	if f.Log().CommittedWindows() != 6 {
		t.Errorf("follower log holds %d committed windows", f.Log().CommittedWindows())
	}
}

// TestAbortedWindowShipsHarmlessly: a deadline-aborted window on the leader
// ships an abort record; the follower consumes it without flipping its epoch.
func TestAbortedWindowShipsHarmlessly(t *testing.T) {
	const seed = 7200
	leader, f, _ := newPair(t, seed)
	rng := rand.New(rand.NewSource(seed * 3))
	ctx := context.Background()

	stageRep(t, leader.Warehouse(), rng)
	if _, err := leader.RunWindow(warehouse.WindowOptions{Mode: warehouse.ModeDAG, Timeout: time.Nanosecond}); !errors.Is(err, warehouse.ErrWindowAborted) {
		t.Fatalf("want abort, got %v", err)
	}
	if _, err := leader.RunWindow(warehouse.WindowOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := f.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := f.Warehouse().Epoch(), leader.Warehouse().Epoch(); got != want {
		t.Fatalf("follower epoch %d, leader %d", got, want)
	}
	if st := f.Stats(); st.ReplayedWindows != 1 {
		t.Fatalf("replayed %d windows across one abort + one commit", st.ReplayedWindows)
	}
	if !bagsEqual(captureBags(t, f.Warehouse()), captureBags(t, leader.Warehouse())) {
		t.Fatal("follower diverged")
	}
}

// TestChunkedFetch: a tiny chunk size forces many fetches per window,
// splitting frames across chunks; the follower reassembles them correctly.
func TestChunkedFetch(t *testing.T) {
	const seed = 7300
	leader, f, _ := newPair(t, seed)
	f.cfg.ChunkBytes = 7 // absurdly small: every frame spans several chunks
	rng := rand.New(rand.NewSource(seed * 3))

	for i := 0; i < 3; i++ {
		stageRep(t, leader.Warehouse(), rng)
		if _, err := leader.RunWindow(warehouse.WindowOptions{Mode: warehouse.ModeDAG}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !bagsEqual(captureBags(t, f.Warehouse()), captureBags(t, leader.Warehouse())) {
		t.Fatal("follower diverged under tiny chunks")
	}
	if st := f.Stats(); st.ReplayedWindows != 3 {
		t.Fatalf("replayed %d windows", st.ReplayedWindows)
	}
}

// TestUnstableTailNeverShips: mid-window journal bytes stay above the stable
// watermark; only closed windows are fetchable.
func TestUnstableTailNeverShips(t *testing.T) {
	l := NewLog()
	jw := journal.NewWriter(l)
	if err := jw.Begin(journal.BeginRecord{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := jw.Step(journal.StepRecord{Index: 0, Key: "x"}); err != nil {
		t.Fatal(err)
	}
	if l.StableLen() != 0 {
		t.Fatalf("open window became stable: %d bytes", l.StableLen())
	}
	if l.Len() == 0 {
		t.Fatal("journal bytes not appended")
	}
	data, stable, err := l.Chunk(0, 1<<20)
	if err != nil || len(data) != 0 || stable != 0 {
		t.Fatalf("chunk of unstable log: %d bytes, stable %d, err %v", len(data), stable, err)
	}
	if err := jw.Commit(journal.CommitRecord{}); err != nil {
		t.Fatal(err)
	}
	if l.StableLen() != l.Len() {
		t.Fatalf("commit did not stabilize: stable %d, len %d", l.StableLen(), l.Len())
	}
	if l.CommittedWindows() != 1 || l.ClosedWindows() != 1 {
		t.Fatalf("windows: committed %d closed %d", l.CommittedWindows(), l.ClosedWindows())
	}
}

// TestHTTPEndpoints: /lag and both /replicate/stats endpoints serve JSON
// that reflects replication progress.
func TestHTTPEndpoints(t *testing.T) {
	const seed = 7400
	leader, f, srv := newPair(t, seed)
	rng := rand.New(rand.NewSource(seed * 3))
	stageRep(t, leader.Warehouse(), rng)
	if _, err := leader.RunWindow(warehouse.WindowOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}

	fsrv := httptest.NewServer(f.Handler())
	defer fsrv.Close()

	var lag Lag
	getJSON(t, fsrv.Client(), fsrv.URL+"/lag", &lag)
	if lag.Epochs != 0 || lag.Bytes != 0 || lag.Epoch != 2 || lag.Leader != 2 {
		t.Errorf("lag = %+v", lag)
	}
	var fs FollowerStats
	getJSON(t, fsrv.Client(), fsrv.URL+"/replicate/stats", &fs)
	if fs.ReplayedWindows != 1 || fs.ShippedRecords == 0 {
		t.Errorf("follower stats = %+v", fs)
	}
	var ls LeaderStats
	getJSON(t, srv.Client(), srv.URL+"/replicate/stats", &ls)
	if ls.CommittedWindows != 1 || ls.ChunksServed == 0 {
		t.Errorf("leader stats = %+v", ls)
	}
}

func getJSON(t *testing.T, c *http.Client, url string, into any) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, buf.String())
	}
	if err := json.Unmarshal(buf.Bytes(), into); err != nil {
		t.Fatalf("GET %s: %v in %q", url, err, buf.String())
	}
}
