package replicate

// Failover: the leader dies mid-stream with its followers at different
// high-water marks. The highest-HWM follower wins the election and is
// promoted; no window any follower applied is lost; the stale follower
// redirects to the new leader, catches up to bag-equality, and the promoted
// leader keeps running (and shipping) new windows with continuous sequence
// numbering.

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	warehouse "repro"
)

func TestFailover(t *testing.T) {
	const seed = 7600
	leader := NewLeader(buildRep(t, seed))
	srv := httptest.NewServer(leader.Handler())
	rng := rand.New(rand.NewSource(seed * 3))
	ctx := context.Background()

	newF := func() *Follower {
		return NewFollower(buildRep(t, seed), FollowerConfig{
			Leader: srv.URL,
			Client: srv.Client(),
			Sleep:  func(time.Duration) {},
		})
	}
	ahead, stale := newF(), newF()

	// Five windows; `ahead` replicates all of them, `stale` only the first
	// two — a mid-stream death leaves followers at different HWMs.
	for i := 0; i < 5; i++ {
		stageRep(t, leader.Warehouse(), rng)
		if _, err := leader.RunWindow(warehouse.WindowOptions{Mode: warehouse.ModeDAG}); err != nil {
			t.Fatal(err)
		}
		if err := ahead.CatchUp(ctx); err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			if err := stale.CatchUp(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	leaderBags := captureBags(t, leader.Warehouse())
	leaderEpoch := leader.Warehouse().Epoch()

	// The leader dies mid-stream.
	srv.Close()
	if _, err := stale.Poll(ctx); err == nil {
		t.Fatal("poll against a dead leader succeeded")
	}

	// Election: the follower with the highest HWM wins.
	winner, err := Elect(stale, ahead)
	if err != nil {
		t.Fatal(err)
	}
	if winner != ahead {
		t.Fatalf("elected the stale follower (HWMs: stale %d, ahead %d)", stale.HWM(), ahead.HWM())
	}

	// Promotion: no committed window the dead leader shipped is lost.
	promoted := winner.Promote()
	if got := promoted.Warehouse().Epoch(); got != leaderEpoch {
		t.Fatalf("promoted leader at epoch %d, dead leader committed through %d", got, leaderEpoch)
	}
	if !bagsEqual(captureBags(t, promoted.Warehouse()), leaderBags) {
		t.Fatal("promoted leader lost committed state")
	}
	if promoted.Log().CommittedWindows() != 5 {
		t.Fatalf("promoted log holds %d committed windows", promoted.Log().CommittedWindows())
	}

	// The stale follower redirects and catches up to bag-equality.
	srv2 := httptest.NewServer(promoted.Handler())
	defer srv2.Close()
	stale.Redirect(srv2.URL)
	stale.cfg.Client = srv2.Client()
	if err := stale.CatchUp(ctx); err != nil {
		t.Fatalf("stale follower catching up to promoted leader: %v", err)
	}
	if !bagsEqual(captureBags(t, stale.Warehouse()), leaderBags) {
		t.Fatal("stale follower did not converge on the promoted leader")
	}
	if got, want := stale.Warehouse().StateDigest(), promoted.Warehouse().StateDigest(); got != want {
		t.Fatalf("state digests after catch-up: %016x vs %016x", got, want)
	}

	// The promoted leader keeps the replica set moving: new windows ship,
	// sequence numbering continues, the stale follower stays converged.
	for i := 0; i < 2; i++ {
		stageRep(t, promoted.Warehouse(), rng)
		if _, err := promoted.RunWindow(warehouse.WindowOptions{Mode: warehouse.ModeDAG}); err != nil {
			t.Fatalf("post-failover window %d: %v", i, err)
		}
		if err := stale.CatchUp(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if promoted.Journal().Committed() != 7 {
		t.Fatalf("promoted journal committed %d windows, want 7 (5 inherited + 2 new)", promoted.Journal().Committed())
	}
	if !bagsEqual(captureBags(t, stale.Warehouse()), captureBags(t, promoted.Warehouse())) {
		t.Fatal("replica set diverged after failover")
	}
	if got, want := stale.Warehouse().Epoch(), promoted.Warehouse().Epoch(); got != want {
		t.Fatalf("epochs after failover: follower %d, leader %d", got, want)
	}
}
