package replicate

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	warehouse "repro"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/retry"
)

// ErrFollowerDead is wrapped by errors a dead follower returns: a replayed
// window diverged from the leader's digests, or a crash-class injected fault
// killed the replica. A dead follower refuses further polls; the operator
// (or test) rebuilds it from the sources and lets it catch up from zero.
var ErrFollowerDead = errors.New("replicate: follower is dead")

// FollowerConfig configures a follower.
type FollowerConfig struct {
	// Leader is the leader's base URL (e.g. "http://10.0.0.1:8080").
	Leader string
	// Client issues the fetches; http.DefaultClient when nil.
	Client *http.Client
	// ChunkBytes bounds each log fetch; DefaultChunkBytes when 0.
	ChunkBytes int64
	// Interval is Run's idle poll period once caught up; 50ms when 0.
	Interval time.Duration
	// Backoff is the first reconnect delay, doubling up to MaxBackoff
	// (defaults 10ms and 1s).
	Backoff, MaxBackoff time.Duration
	// Faults injects failures for testing: point "fetch" before each log
	// fetch (transient = disconnect, crash = process death), point "apply"
	// before each window replay.
	Faults *faults.Injector
	// OnApply, when set, is called after each successfully replayed window —
	// the differential harness's observation hook.
	OnApply func(warehouse.WindowReport)
	// Sleep replaces time.Sleep in CatchUp and Run (tests); nil sleeps.
	Sleep func(time.Duration)
}

// Follower replicates a leader's journal onto its own warehouse. It fetches
// stable journal bytes from its high-water mark, verifies each chunk
// end-to-end (offset echo, length, CRC64) and each frame individually, and
// replays every committed window through warehouse.ApplyWindow — so its
// epoch flips only after the window re-executes with the leader's exact
// per-step digests. The applied bytes are retained verbatim in the
// follower's own Log, which makes high-water marks byte-comparable across
// followers and promotion a pointer swap.
//
// Poll, CatchUp, and Run must not be called concurrently with each other;
// Stats, Lag, Handler, and queries on Warehouse() are safe at any time.
type Follower struct {
	w   *warehouse.Warehouse
	cfg FollowerConfig
	log *Log

	// Owned by the polling goroutine: the fetched-but-unapplied tail. pend
	// always starts on a window boundary; parse marks how much of it has
	// been fed to asm.
	pend  []byte
	parse int
	asm   journal.Assembler

	mu             sync.Mutex // guards the fields below (Stats readers)
	leaderEpoch    uint64
	leaderStable   int64
	leaderCommitNS int64 // leader's stable-tip commit time (last contact)
	leaderAcceptNS int64 // and its batch-accept time
	lastContact    time.Time
	replayed       int64
	shipped        int64
	reconnects     int64
	fatal          error
}

// NewFollower starts replicating onto w, which must be built from the same
// sources as the leader's initial state (same seed warehouse). The follower
// does no I/O until Poll/CatchUp/Run.
func NewFollower(w *warehouse.Warehouse, cfg FollowerConfig) *Follower {
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = DefaultChunkBytes
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	return &Follower{w: w, cfg: cfg, log: NewLog()}
}

// Warehouse returns the follower's warehouse — serve reads from it at its
// own, possibly stale, epoch.
func (f *Follower) Warehouse() *warehouse.Warehouse { return f.w }

// Log returns the follower's verbatim copy of the applied journal prefix.
func (f *Follower) Log() *Log { return f.log }

// HWM is the follower's high-water mark: the byte offset of replicated,
// fully applied journal. It is directly comparable across followers of the
// same leader (the log bytes are identical), which is what failover election
// compares.
func (f *Follower) HWM() int64 { return f.log.Len() }

// Redirect re-points the follower at a new leader after failover, keeping
// its applied state and high-water mark. Any unapplied fetched tail is
// dropped and re-fetched from the new leader.
func (f *Follower) Redirect(leaderURL string) {
	f.rewind()
	f.mu.Lock()
	f.cfg.Leader = leaderURL
	f.mu.Unlock()
}

// Promote turns the follower into a leader over its applied log. Only fully
// applied windows are in the log (unapplied tail bytes are discarded), so
// the new leader's journal, state, and epoch agree by construction. The
// follower must not be polled afterwards.
func (f *Follower) Promote() *Leader {
	f.rewind()
	return NewLeaderFrom(f.w, f.log)
}

// rewind drops the unapplied tail; the next poll re-fetches from the HWM.
func (f *Follower) rewind() {
	f.pend = nil
	f.parse = 0
	f.asm.Reset()
}

// leaderURL resolves the configured leader under f.mu (Redirect may race a
// Stats reader, never the poller itself).
func (f *Follower) leaderURL() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return strings.TrimSuffix(f.cfg.Leader, "/")
}

// LeaderAddr reports the leader currently being followed.
func (f *Follower) LeaderAddr() string { return f.leaderURL() }

// Poll runs one fetch-verify-apply round and returns how many windows it
// applied. Transport failures, torn or corrupt chunks, and transient
// injected faults return an error with the follower's state intact — the
// unapplied tail is rewound so the next Poll re-fetches from the high-water
// mark. Divergence and crash-class faults kill the follower (ErrFollowerDead).
func (f *Follower) Poll(ctx context.Context) (applied int, err error) {
	if err := f.dead(); err != nil {
		return 0, err
	}
	if err := f.cfg.Faults.Hit("fetch"); err != nil {
		if faults.IsCrash(err) {
			return 0, f.kill(err)
		}
		return 0, f.disconnect(fmt.Errorf("replicate: fetch: %w", err))
	}
	from := f.HWM() + int64(len(f.pend))
	url := fmt.Sprintf("%s/replicate/log?from=%d&max=%d", f.leaderURL(), from, f.cfg.ChunkBytes)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, f.disconnect(err)
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return 0, f.disconnect(err)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxChunkBytes+1))
	resp.Body.Close()
	if err != nil {
		return 0, f.disconnect(err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, f.disconnect(fmt.Errorf("replicate: leader returned %s: %s", resp.Status, strings.TrimSpace(string(body))))
	}
	if err := f.verifyChunk(resp.Header, from, body); err != nil {
		return 0, f.disconnect(err)
	}

	stable, _ := strconv.ParseInt(resp.Header.Get(HeaderStable), 10, 64)
	epoch, _ := strconv.ParseUint(resp.Header.Get(HeaderEpoch), 10, 64)
	commitNS, _ := strconv.ParseInt(resp.Header.Get(HeaderCommitNS), 10, 64)
	acceptNS, _ := strconv.ParseInt(resp.Header.Get(HeaderAcceptNS), 10, 64)
	f.mu.Lock()
	f.leaderStable = stable
	f.leaderEpoch = epoch
	f.leaderCommitNS = commitNS
	f.leaderAcceptNS = acceptNS
	f.lastContact = time.Now()
	f.mu.Unlock()

	f.pend = append(f.pend, body...)
	return f.drain()
}

// verifyChunk checks a fetched chunk end-to-end before a byte of it is
// parsed: the leader must echo the requested offset (a duplicated or
// misrouted chunk fails here), the advertised next offset must match the
// body length (a truncated body fails here), and the body must carry the
// advertised CRC64 (a bit-flip fails here).
func (f *Follower) verifyChunk(h http.Header, from int64, body []byte) error {
	gotFrom, err := strconv.ParseInt(h.Get(HeaderFrom), 10, 64)
	if err != nil || gotFrom != from {
		return fmt.Errorf("replicate: requested offset %d, leader served %q — misaligned chunk", from, h.Get(HeaderFrom))
	}
	next, err := strconv.ParseInt(h.Get(HeaderNext), 10, 64)
	if err != nil || next != from+int64(len(body)) {
		return fmt.Errorf("replicate: chunk advertises [%d,%s) but carries %d bytes — torn transfer", from, h.Get(HeaderNext), len(body))
	}
	want, err := strconv.ParseUint(h.Get(HeaderCRC), 16, 64)
	if err != nil {
		return fmt.Errorf("replicate: unparseable chunk CRC %q", h.Get(HeaderCRC))
	}
	if got := journal.ChunkCRC(body); got != want {
		return fmt.Errorf("replicate: chunk CRC mismatch: got %016x, header %016x — corrupt transfer", got, want)
	}
	return nil
}

// drain parses the pending tail frame-by-frame and applies every window it
// closes. A corrupt frame or grammar violation rewinds the tail (state
// intact, re-fetch next poll); a replay divergence kills the follower.
func (f *Follower) drain() (applied int, err error) {
	for {
		typ, payload, n, derr := journal.DecodeRecord(f.pend[f.parse:])
		if derr != nil {
			f.rewind()
			return applied, f.disconnect(fmt.Errorf("replicate: shipped chunk: %w", derr))
		}
		if n == 0 {
			return applied, nil
		}
		wl, aerr := f.asm.Feed(typ, payload)
		if aerr != nil {
			f.rewind()
			return applied, f.disconnect(aerr)
		}
		f.parse += n
		f.mu.Lock()
		f.shipped++
		f.mu.Unlock()
		if wl == nil {
			continue
		}
		// A window closed at offset f.parse within pend.
		if wl.Committed() {
			if ferr := f.cfg.Faults.Hit("apply"); ferr != nil {
				f.rewind()
				if faults.IsCrash(ferr) {
					return applied, f.kill(ferr)
				}
				return applied, f.disconnect(fmt.Errorf("replicate: apply: %w", ferr))
			}
			rep, aerr := f.w.ApplyWindow(wl)
			if aerr != nil {
				f.rewind()
				return applied, f.kill(aerr)
			}
			applied++
			f.mu.Lock()
			f.replayed++
			cb := f.cfg.OnApply
			f.mu.Unlock()
			if cb != nil {
				cb(rep)
			}
		}
		// Closed either way: the window's bytes are durable replica state.
		if _, werr := f.log.Write(f.pend[:f.parse]); werr != nil {
			return applied, f.kill(werr)
		}
		f.pend = f.pend[f.parse:]
		f.parse = 0
	}
}

// CatchUp polls until the follower has applied everything the leader has
// committed, retrying transient failures with backoff. It returns once the
// high-water mark reaches the leader's stable watermark (as of the last
// successful poll) — or with the follower's fatal error, or ctx's.
func (f *Follower) CatchUp(ctx context.Context) error {
	backoff := f.backoff()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, err := f.Poll(ctx)
		if err != nil {
			if errors.Is(err, ErrFollowerDead) {
				return err
			}
			f.sleep(backoff.Next())
			continue
		}
		backoff.Reset()
		if f.Lag().Bytes == 0 {
			return nil
		}
	}
}

// Run polls until ctx is done: continuously while behind, every Interval
// once caught up, backing off across reconnects. It returns ctx.Err() on
// shutdown or the fatal error if the follower dies.
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.backoff()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		applied, err := f.Poll(ctx)
		switch {
		case errors.Is(err, ErrFollowerDead):
			return err
		case err != nil:
			f.sleep(backoff.Next())
		case applied == 0 && f.Lag().Bytes == 0:
			backoff.Reset()
			f.sleep(f.cfg.Interval)
		default:
			backoff.Reset()
		}
	}
}

// backoff builds the reconnect schedule from the follower's config: the
// shared retry helper's exponential curve from cfg.Backoff capped at
// cfg.MaxBackoff, reset to the base after every successful poll.
func (f *Follower) backoff() retry.Backoff {
	return retry.Backoff{Policy: retry.Policy{Base: f.cfg.Backoff, Max: f.cfg.MaxBackoff}}
}

func (f *Follower) sleep(d time.Duration) {
	if f.cfg.Sleep != nil {
		f.cfg.Sleep(d)
		return
	}
	time.Sleep(d)
}

// disconnect counts a reconnect-worthy failure and passes the error through.
func (f *Follower) disconnect(err error) error {
	f.mu.Lock()
	f.reconnects++
	f.mu.Unlock()
	return err
}

// kill marks the follower dead and returns the wrapped fatal error.
func (f *Follower) kill(err error) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fatal == nil {
		f.fatal = fmt.Errorf("%w: %w", ErrFollowerDead, err)
	}
	return f.fatal
}

func (f *Follower) dead() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fatal
}

// Lag is the follower's staleness relative to its last contact with the
// leader: how many epochs and stable log bytes it has yet to apply, and the
// wall-clock gap between the leader's stable tip and the follower's applied
// tip. Epoch lag saturates at zero — the leader's stable watermark can
// momentarily lead its epoch flip, so a caught-up follower never reports
// negative lag — and so do the wall-clock gaps.
type Lag struct {
	Epochs uint64 `json:"lag_epochs"`
	Bytes  int64  `json:"lag_bytes"`
	Epoch  uint64 `json:"epoch"`
	Leader uint64 `json:"leader_epoch"`
	// WallMS is how far, in wall-clock milliseconds, the follower's applied
	// tip trails the leader's stable tip (commit time minus commit time); 0
	// when caught up or when either side has no committed window yet.
	WallMS float64 `json:"lag_wall_ms"`
	// AcceptWallMS is the end-to-end freshness of the follower's served
	// state: from when its applied tip's change batch was accepted from the
	// stream to the leader's stable-tip commit (the freshest wall-clock the
	// follower has heard). A caught-up follower reports the tip's own
	// accept-to-commit span; a lagging one adds the replication gap. 0 when
	// the applied tip did not come from the ingest path (no accept time).
	AcceptWallMS float64 `json:"accept_wall_ms"`
}

// Lag snapshots the follower's staleness.
func (f *Follower) Lag() Lag {
	f.mu.Lock()
	leaderEpoch, leaderStable := f.leaderEpoch, f.leaderStable
	leaderCommitNS := f.leaderCommitNS
	f.mu.Unlock()
	lag := Lag{Epoch: f.w.Epoch(), Leader: leaderEpoch}
	if leaderEpoch > lag.Epoch {
		lag.Epochs = leaderEpoch - lag.Epoch
	}
	if hwm := f.HWM(); leaderStable > hwm {
		lag.Bytes = leaderStable - hwm
	}
	appliedCommitNS, appliedAcceptNS := f.log.StableTip()
	if leaderCommitNS > 0 && appliedCommitNS > 0 && leaderCommitNS > appliedCommitNS {
		lag.WallMS = float64(leaderCommitNS-appliedCommitNS) / 1e6
	}
	if leaderCommitNS > 0 && appliedAcceptNS > 0 && leaderCommitNS > appliedAcceptNS {
		lag.AcceptWallMS = float64(leaderCommitNS-appliedAcceptNS) / 1e6
	}
	return lag
}

// FollowerStats is the follower's replication counter snapshot.
type FollowerStats struct {
	Epoch           uint64    `json:"epoch"`
	LeaderEpoch     uint64    `json:"leader_epoch"`
	LagEpochs       uint64    `json:"lag_epochs"`
	LagBytes        int64     `json:"lag_bytes"`
	HWM             int64     `json:"hwm"`
	LeaderStable    int64     `json:"leader_stable"`
	ReplayedWindows int64     `json:"replayed_windows"`
	ShippedRecords  int64     `json:"shipped_records"`
	ReconnectCount  int64     `json:"reconnect_count"`
	LastContact     time.Time `json:"last_contact"`
	// LagWallMS / AcceptWallMS mirror Lag's wall-clock staleness; the
	// Leader*NS fields are the raw stable-tip timestamps they derive from.
	LagWallMS      float64 `json:"lag_wall_ms"`
	AcceptWallMS   float64 `json:"accept_wall_ms"`
	LeaderCommitNS int64   `json:"leader_commit_unix_ns"`
	LeaderAcceptNS int64   `json:"leader_accept_unix_ns"`
	Dead           string  `json:"dead,omitempty"`
}

// Stats snapshots the follower's counters.
func (f *Follower) Stats() FollowerStats {
	lag := f.Lag()
	f.mu.Lock()
	defer f.mu.Unlock()
	s := FollowerStats{
		Epoch:           lag.Epoch,
		LeaderEpoch:     lag.Leader,
		LagEpochs:       lag.Epochs,
		LagBytes:        lag.Bytes,
		HWM:             f.log.Len(),
		LeaderStable:    f.leaderStable,
		ReplayedWindows: f.replayed,
		ShippedRecords:  f.shipped,
		ReconnectCount:  f.reconnects,
		LastContact:     f.lastContact,
		LagWallMS:       lag.WallMS,
		AcceptWallMS:    lag.AcceptWallMS,
		LeaderCommitNS:  f.leaderCommitNS,
		LeaderAcceptNS:  f.leaderAcceptNS,
	}
	if f.fatal != nil {
		s.Dead = f.fatal.Error()
	}
	return s
}
