package replicate

// Shared test harness: a deterministic random-warehouse generator (the same
// shape as the facade's online differential harness — integer columns keep
// bag comparisons exact), random change batches, and full-bag capture
// helpers for cross-replica comparison.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	warehouse "repro"
)

// buildRep constructs a random leveled warehouse through the public SQL API:
// 2–3 integer base views, then 1–3 derivation levels mixing filter, join,
// and aggregate views. Deterministic in seed, so leader and followers — and
// a "restarted" follower — build identical catalogs.
func buildRep(t *testing.T, seed int64) *warehouse.Warehouse {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := warehouse.New()
	type vi struct {
		name string
		cols []string
	}
	var all, prev []vi

	nBase := 2 + rng.Intn(2)
	for i := 0; i < nBase; i++ {
		name := fmt.Sprintf("B%d", i)
		w.MustDefineBase(name, warehouse.Schema{
			{Name: "c0", Kind: warehouse.KindInt},
			{Name: "c1", Kind: warehouse.KindInt},
		})
		var rows []warehouse.Tuple
		for r := 0; r < 8+rng.Intn(16); r++ {
			rows = append(rows, warehouse.Tuple{warehouse.Int(rng.Int63n(5)), warehouse.Int(rng.Int63n(5))})
		}
		if err := w.Load(name, rows); err != nil {
			t.Fatal(err)
		}
		v := vi{name, []string{"c0", "c1"}}
		all = append(all, v)
		prev = append(prev, v)
	}

	levels := 1 + rng.Intn(3)
	id := 0
	for level := 1; level <= levels; level++ {
		var cur []vi
		for k := 0; k < 1+rng.Intn(2); k++ {
			name := fmt.Sprintf("D%d", id)
			id++
			var sql string
			var cols []string
			switch rng.Intn(3) {
			case 0: // filter + projection
				src := prev[rng.Intn(len(prev))]
				a := src.cols[rng.Intn(len(src.cols))]
				b := src.cols[rng.Intn(len(src.cols))]
				sql = fmt.Sprintf("SELECT %s AS p0, %s AS p1 FROM %s WHERE %s <= %d",
					a, b, src.name, a, 1+rng.Int63n(6))
				cols = []string{"p0", "p1"}
			case 1: // join a previous-level view with any earlier view
				s1 := prev[rng.Intn(len(prev))]
				s2 := all[rng.Intn(len(all))]
				a := s1.cols[rng.Intn(len(s1.cols))]
				b := s2.cols[rng.Intn(len(s2.cols))]
				sql = fmt.Sprintf("SELECT x.%s AS j0, y.%s AS j1 FROM %s x, %s y WHERE x.%s = y.%s",
					a, b, s1.name, s2.name, a, b)
				cols = []string{"j0", "j1"}
			default: // aggregate
				src := prev[rng.Intn(len(prev))]
				g := src.cols[0]
				m := src.cols[len(src.cols)-1]
				sql = fmt.Sprintf("SELECT %s, SUM(%s) AS s, COUNT(*) AS n FROM %s GROUP BY %s",
					g, m, src.name, g)
				cols = []string{g, "s", "n"}
			}
			if err := w.DefineViewSQL(name, sql); err != nil {
				t.Fatalf("seed %d view %s (%s): %v", seed, name, sql, err)
			}
			v := vi{name, cols}
			cur = append(cur, v)
			all = append(all, v)
		}
		prev = cur
	}
	if err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	return w
}

// stageRep stages a random change batch on every base view of the leader:
// inserts only, deletes only, or mixed.
func stageRep(t *testing.T, w *warehouse.Warehouse, rng *rand.Rand) {
	t.Helper()
	kind := rng.Intn(3)
	for _, name := range w.Views() {
		if name[0] != 'B' {
			continue
		}
		d, err := w.NewDelta(name)
		if err != nil {
			t.Fatal(err)
		}
		if kind != 0 {
			rows, err := w.Rows(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if rng.Intn(4) == 0 {
					d.Add(r.Tuple, -1)
				}
			}
		}
		if kind != 1 {
			for i := 0; i < 1+rng.Intn(5); i++ {
				d.Add(warehouse.Tuple{warehouse.Int(rng.Int63n(5)), warehouse.Int(rng.Int63n(5))}, 1)
			}
		}
		if err := w.StageDelta(name, d); err != nil {
			t.Fatal(err)
		}
	}
}

// captureBags reads every view's full sorted bag under one epoch pin.
func captureBags(t *testing.T, w *warehouse.Warehouse) map[string][]string {
	t.Helper()
	p := w.PinEpoch()
	defer p.Close()
	bags := make(map[string][]string)
	for _, v := range p.Views() {
		rows, err := p.Rows(v)
		if err != nil {
			t.Fatal(err)
		}
		lines := make([]string, 0, len(rows))
		for _, r := range rows {
			lines = append(lines, fmt.Sprintf("%v x%d", r.Tuple, r.Count))
		}
		bags[v] = lines
	}
	return bags
}

func bagsEqual(a, b map[string][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for v, ar := range a {
		br, ok := b[v]
		if !ok || len(ar) != len(br) {
			return false
		}
		for i := range ar {
			if ar[i] != br[i] {
				return false
			}
		}
	}
	return true
}

// randPresentationQuery builds a random ad-hoc query over one of w's views
// with the presentation clauses: ORDER BY (column name or 1-based ordinal,
// ASC/DESC, one or more keys) and LIMIT n OFFSET m. Replicas at the same
// epoch must answer it identically — the sort is stable over a
// deterministic input order, so bag-identical states give row-identical
// results, including ties.
func randPresentationQuery(t *testing.T, w *warehouse.Warehouse, rng *rand.Rand) string {
	t.Helper()
	views := w.Views()
	name := views[rng.Intn(len(views))]
	schema, err := w.ViewSchema(name)
	if err != nil {
		t.Fatal(err)
	}
	var sel []string
	for _, c := range schema {
		sel = append(sel, c.Name)
	}
	var obys []string
	for _, k := range rng.Perm(len(schema))[:1+rng.Intn(len(schema))] {
		ref := schema[k].Name
		if rng.Intn(2) == 0 {
			ref = fmt.Sprintf("%d", k+1)
		}
		if rng.Intn(2) == 0 {
			ref += " DESC"
		}
		obys = append(obys, ref)
	}
	return fmt.Sprintf("SELECT %s FROM %s ORDER BY %s LIMIT %d OFFSET %d",
		strings.Join(sel, ", "), name, strings.Join(obys, ", "),
		rng.Intn(20), rng.Intn(4))
}

// queryRows renders a query's result for cross-replica comparison.
func queryRows(t *testing.T, w *warehouse.Warehouse, sql string) []string {
	t.Helper()
	rows, err := w.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

// stepDigests extracts the installed-delta digest of every non-skipped step
// of a window report, keyed by step expression — the per-window artifact the
// differential harness compares leader vs follower.
func stepDigests(rep warehouse.WindowReport) map[string]uint64 {
	out := make(map[string]uint64)
	if rep.Parallel == nil {
		return out
	}
	for _, stage := range rep.Parallel.Steps {
		for _, s := range stage {
			if !s.Skipped {
				out[s.Expr.Key()] = s.Digest
			}
		}
	}
	return out
}

func digestsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
