// Package replicate ships a warehouse's update-window journal from a leader
// to followers over HTTP, in the ordered-update-log style of Bayou: every
// replica applies the same log in the same order and therefore converges to
// the same state. The journal is already a deterministic, digest-verified
// replay log (internal/journal, internal/recovery), so replication reduces
// to moving its bytes: the leader appends each window's CRC64-framed records
// to an in-memory Log, followers fetch chunks from a high-water mark,
// re-verify every frame, and replay each committed window through
// warehouse.ApplyWindow — which re-executes it step-by-step and flips the
// follower's epoch only after the leader's per-step digests all match.
// Followers serve reads at their own (possibly stale) epoch with reported
// lag; on leader death the follower with the highest high-water mark is
// promoted and resumes the same log.
package replicate

import (
	"fmt"
	"sync"

	"repro/internal/journal"
)

// Log is an append-only, in-memory journal byte log with a stability
// watermark. It implements io.Writer so a journal.Writer can append straight
// into it; every write is scanned for complete frames, and the watermark
// advances each time a commit or abort record closes a window. Followers are
// only ever served bytes below the watermark, so a window that is still
// being written — or that dies in-flight with a crashed leader — never
// ships. Safe for concurrent use.
type Log struct {
	mu        sync.Mutex
	buf       []byte
	scan      int // bytes scanned into complete frames
	stable    int // bytes through the last closed (committed or aborted) window
	closed    int // windows closed
	committed int // windows committed
	commitNS  int64 // wall-clock commit time of the last committed window (UnixNano)
	acceptNS  int64 // its batch-accept time (0 unless it came from the ingest path)
	err       error
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Write appends journal bytes. The journal.Writer upstream emits exactly one
// complete frame per call, but Write does not rely on that: frames are
// reassembled across writes. A corrupt complete frame is a local writer bug,
// not line noise — it poisons the log (sticky error) rather than shipping
// garbage.
func (l *Log) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	l.buf = append(l.buf, p...)
	for {
		typ, payload, n, err := journal.DecodeRecord(l.buf[l.scan:])
		if err != nil {
			l.err = fmt.Errorf("replicate: scanning appended journal bytes: %w", err)
			return 0, l.err
		}
		if n == 0 {
			break
		}
		l.scan += n
		if typ == journal.TypeCommit || typ == journal.TypeAbort {
			l.stable = l.scan
			l.closed++
			if typ == journal.TypeCommit {
				l.committed++
				if c, err := journal.DecodeCommitRecord(payload); err == nil {
					l.commitNS, l.acceptNS = c.UnixNano, c.AcceptUnixNano
				}
			}
		}
	}
	return len(p), nil
}

// StableTip reports the wall-clock commit time of the last committed window
// in the log and that window's batch-accept time (both UnixNano; 0 when
// unrecorded). This is what the leader advertises so followers can report
// staleness in wall-clock terms, not just epochs.
func (l *Log) StableTip() (commitNS, acceptNS int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commitNS, l.acceptNS
}

// Len is the total byte length appended, including any unstable tail.
func (l *Log) Len() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(len(l.buf))
}

// StableLen is the byte length through the last closed window — the furthest
// offset a follower may fetch.
func (l *Log) StableLen() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(l.stable)
}

// CommittedWindows counts committed windows fully contained in the log.
func (l *Log) CommittedWindows() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.committed
}

// ClosedWindows counts closed windows (committed plus aborted).
func (l *Log) ClosedWindows() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// Err returns the sticky scan error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Chunk copies out up to max stable bytes starting at offset from. It
// returns the chunk and the stable length at the time of the read; the
// caller's next offset is from+len(data). An offset beyond the stable
// watermark is an error — a follower asking for bytes this log does not have
// (e.g. after a failover onto a shorter log) must find out loudly.
func (l *Log) Chunk(from, max int64) (data []byte, stable int64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < 0 || from > int64(l.stable) {
		return nil, int64(l.stable), fmt.Errorf("replicate: chunk offset %d outside stable log [0,%d]", from, l.stable)
	}
	end := from + max
	if max <= 0 || end > int64(l.stable) {
		end = int64(l.stable)
	}
	return append([]byte(nil), l.buf[from:end]...), int64(l.stable), nil
}
