package replicate

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	warehouse "repro"
	"repro/internal/journal"
)

// Protocol headers for GET /replicate/log. The body is raw journal frames;
// the headers carry the offsets and an end-to-end checksum so a follower can
// detect truncated, duplicated, or misdirected chunks before parsing a byte.
const (
	HeaderFrom   = "X-Log-From"   // offset the chunk starts at (echoed)
	HeaderNext   = "X-Log-Next"   // offset after the chunk: From + len(body)
	HeaderStable = "X-Log-Stable" // leader's stable watermark at serve time
	HeaderCRC    = "X-Chunk-CRC"  // CRC64-ECMA of the body, hex
	HeaderEpoch  = "X-Leader-Epoch"
	// HeaderCommitNS / HeaderAcceptNS advertise the leader's stable tip in
	// wall-clock terms: the UnixNano commit time of its latest committed
	// window and that window's batch-accept time (0 when the window did not
	// come from the ingest path). Followers subtract their applied tip to
	// report wall-clock staleness, not just epoch lag.
	HeaderCommitNS = "X-Leader-Commit-NS"
	HeaderAcceptNS = "X-Leader-Accept-NS"
)

// DefaultChunkBytes bounds a log fetch when the client does not say.
const DefaultChunkBytes = 1 << 20

// maxChunkBytes caps client-requested chunk sizes.
const maxChunkBytes = 4 << 20

// Leader publishes a warehouse's journal for followers. Every update window
// run through the leader is journaled into its Log; Handler serves the
// stable prefix in chunks plus shipping stats. A leader is either fresh
// (NewLeader, empty log) or promoted (NewLeaderFrom, continuing a follower's
// replicated log).
type Leader struct {
	w   *warehouse.Warehouse
	log *Log
	j   *warehouse.Journal

	chunksServed   atomic.Int64
	shippedRecords atomic.Int64
	shippedBytes   atomic.Int64
}

// NewLeader makes w a replication leader with an empty journal log. Windows
// must be run through RunWindow (or with Journal() passed explicitly) to be
// shipped.
func NewLeader(w *warehouse.Warehouse) *Leader {
	log := NewLog()
	return &Leader{w: w, log: log, j: warehouse.NewJournal(log)}
}

// NewLeaderFrom makes w a leader over an already-populated log — promotion
// of a follower that replicated `log` and replayed all of it. New windows
// continue the log's window numbering (aborted windows share their retry's
// sequence number, exactly as on the original leader).
func NewLeaderFrom(w *warehouse.Warehouse, log *Log) *Leader {
	return &Leader{w: w, log: log, j: warehouse.ResumeJournal(log, log.CommittedWindows())}
}

// Warehouse returns the underlying warehouse (for staging changes and
// serving queries).
func (l *Leader) Warehouse() *warehouse.Warehouse { return l.w }

// Journal returns the shipping journal. Pass it as WindowOptions.Journal to
// ship windows run outside RunWindow.
func (l *Leader) Journal() *warehouse.Journal { return l.j }

// Log returns the leader's journal byte log.
func (l *Leader) Log() *Log { return l.log }

// RunWindow runs one update window through the shipping journal: the
// window's records land in the log and its commit advances the stable
// watermark, making it fetchable by followers.
func (l *Leader) RunWindow(opts warehouse.WindowOptions) (warehouse.WindowReport, error) {
	opts.Journal = l.j
	return l.w.RunWindowOpts(opts)
}

// LeaderStats is the leader's replication counter snapshot.
type LeaderStats struct {
	Epoch            uint64 `json:"epoch"`
	StateDigest      uint64 `json:"state_digest"`
	LogBytes         int64  `json:"log_bytes"`
	StableBytes      int64  `json:"stable_bytes"`
	CommittedWindows int    `json:"committed_windows"`
	ChunksServed     int64  `json:"chunks_served"`
	ShippedRecords   int64  `json:"shipped_records"`
	ShippedBytes     int64  `json:"shipped_bytes"`
	// LastCommitNS / LastAcceptNS are the stable tip's wall-clock commit and
	// batch-accept times (UnixNano, 0 when unrecorded) — what the shipping
	// headers advertise to followers.
	LastCommitNS int64 `json:"last_commit_unix_ns"`
	LastAcceptNS int64 `json:"last_accept_unix_ns"`
}

// Stats snapshots the leader's counters.
func (l *Leader) Stats() LeaderStats {
	commitNS, acceptNS := l.log.StableTip()
	return LeaderStats{
		Epoch:            l.w.Epoch(),
		StateDigest:      l.w.StateDigest(),
		LogBytes:         l.log.Len(),
		StableBytes:      l.log.StableLen(),
		CommittedWindows: l.log.CommittedWindows(),
		ChunksServed:     l.chunksServed.Load(),
		ShippedRecords:   l.shippedRecords.Load(),
		ShippedBytes:     l.shippedBytes.Load(),
		LastCommitNS:     commitNS,
		LastAcceptNS:     acceptNS,
	}
}

// Handler serves the replication protocol:
//
//	GET /replicate/log?from=N[&max=M] — raw journal frames from offset N
//	GET /replicate/stats              — LeaderStats as JSON
func (l *Leader) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/replicate/log", l.handleLog)
	mux.HandleFunc("/replicate/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(l.Stats())
	})
	return mux
}

func (l *Leader) handleLog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	from, err := strconv.ParseInt(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "bad from offset", http.StatusBadRequest)
		return
	}
	max := int64(DefaultChunkBytes)
	if s := r.URL.Query().Get("max"); s != "" {
		m, err := strconv.ParseInt(s, 10, 64)
		if err != nil || m <= 0 {
			http.Error(w, "bad max", http.StatusBadRequest)
			return
		}
		if m < max {
			max = m
		}
		if m > maxChunkBytes {
			max = maxChunkBytes
		}
	}
	data, stable, err := l.log.Chunk(from, max)
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(HeaderFrom, strconv.FormatInt(from, 10))
	h.Set(HeaderNext, strconv.FormatInt(from+int64(len(data)), 10))
	h.Set(HeaderStable, strconv.FormatInt(stable, 10))
	h.Set(HeaderCRC, fmt.Sprintf("%016x", journal.ChunkCRC(data)))
	h.Set(HeaderEpoch, strconv.FormatUint(l.w.Epoch(), 10))
	commitNS, acceptNS := l.log.StableTip()
	h.Set(HeaderCommitNS, strconv.FormatInt(commitNS, 10))
	h.Set(HeaderAcceptNS, strconv.FormatInt(acceptNS, 10))
	_, _ = w.Write(data)

	l.chunksServed.Add(1)
	l.shippedBytes.Add(int64(len(data)))
	l.shippedRecords.Add(countRecords(data))
}

// countRecords counts the complete frames in a verified stable byte range.
func countRecords(data []byte) int64 {
	var n int64
	for off := 0; off < len(data); {
		_, _, sz, err := journal.DecodeRecord(data[off:])
		if err != nil || sz == 0 {
			break // stable ranges end on frame boundaries; defensive only
		}
		off += sz
		n++
	}
	return n
}
