package replicate

import "errors"

// Elect picks the failover winner from the surviving followers of a dead
// leader: the one with the highest high-water mark. Followers of the same
// leader hold byte-identical log prefixes, so the longest prefix strictly
// contains every other — promoting it loses no window any follower has
// applied, and every other follower can Redirect to it and catch up. Dead
// followers are not electable.
func Elect(fs ...*Follower) (*Follower, error) {
	var best *Follower
	for _, f := range fs {
		if f == nil || f.dead() != nil {
			continue
		}
		if best == nil || f.HWM() > best.HWM() {
			best = f
		}
	}
	if best == nil {
		return nil, errors.New("replicate: no live follower to elect")
	}
	return best, nil
}
