package cost

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestCalibratorUncalibrated checks the pre-observation fallbacks: no
// prediction, no batch target.
func TestCalibratorUncalibrated(t *testing.T) {
	var c Calibrator
	if c.Calibrated() {
		t.Fatal("fresh calibrator reports calibrated")
	}
	if got := c.PredictWindow(1000); got != 0 {
		t.Fatalf("uncalibrated PredictWindow = %v, want 0", got)
	}
	if got := c.BatchFor(time.Second); got != 0 {
		t.Fatalf("uncalibrated BatchFor = %d, want 0", got)
	}
}

// TestCalibratorConverges feeds a steady workload — actual work is 2×
// predicted, 100ns per work unit, 10 work per change — and checks the EWMAs
// converge so predictions match the ground truth.
func TestCalibratorConverges(t *testing.T) {
	var c Calibrator
	for i := 0; i < 50; i++ {
		// 100 changes, predicted 1000 work, actual 2000 work, 200µs wall.
		c.Observe(1000, 2000, 200*time.Microsecond, 100)
	}
	st := c.Stats()
	if math.Abs(st.WorkRatio-2.0) > 1e-9 {
		t.Fatalf("WorkRatio = %v, want 2.0", st.WorkRatio)
	}
	if math.Abs(st.NSPerWork-100) > 1e-9 {
		t.Fatalf("NSPerWork = %v, want 100", st.NSPerWork)
	}
	if math.Abs(st.WorkPerChange-10) > 1e-9 {
		t.Fatalf("WorkPerChange = %v, want 10", st.WorkPerChange)
	}
	// Predicted 1000 work → 2000 actual → 200µs.
	if got := c.PredictWindow(1000); got != 200*time.Microsecond {
		t.Fatalf("PredictWindow(1000) = %v, want 200µs", got)
	}
	// Budget 200µs at 2µs per change → 100 changes.
	if got := c.BatchFor(200 * time.Microsecond); got != 100 {
		t.Fatalf("BatchFor(200µs) = %d, want 100", got)
	}
}

// TestCalibratorTracksDrift checks the EWMA follows a workload change: after
// the machine slows 10×, the batch target shrinks toward a tenth.
func TestCalibratorTracksDrift(t *testing.T) {
	var c Calibrator
	for i := 0; i < 30; i++ {
		c.Observe(1000, 1000, 100*time.Microsecond, 100) // 1ns/work
	}
	fast := c.BatchFor(time.Millisecond)
	for i := 0; i < 30; i++ {
		c.Observe(1000, 1000, time.Millisecond, 100) // 10ns/work
	}
	slow := c.BatchFor(time.Millisecond)
	if slow >= fast {
		t.Fatalf("batch target did not shrink after slowdown: fast=%d slow=%d", fast, slow)
	}
	if ratio := float64(fast) / float64(slow); ratio < 5 || ratio > 15 {
		t.Fatalf("batch shrink ratio = %v, want ~10", ratio)
	}
}

// TestCalibratorIgnoresDegenerate checks non-positive observations are
// dropped rather than corrupting the EWMAs.
func TestCalibratorIgnoresDegenerate(t *testing.T) {
	var c Calibrator
	c.Observe(0, 100, time.Millisecond, 10)
	c.Observe(100, 0, time.Millisecond, 10)
	c.Observe(100, 100, 0, 10)
	c.Observe(100, 100, time.Millisecond, 0)
	if c.Calibrated() {
		t.Fatal("degenerate observations were folded in")
	}
	if got := c.BatchFor(time.Second); got != 0 {
		t.Fatalf("BatchFor after degenerate observations = %d, want 0", got)
	}
}

// TestCalibratorBatchFloor checks a tiny budget still yields a batch of one:
// the ingester must make progress even when the SLO is unachievable.
func TestCalibratorBatchFloor(t *testing.T) {
	var c Calibrator
	c.Observe(1000, 1000, time.Second, 10) // very slow: 100ms per change
	if got := c.BatchFor(time.Nanosecond); got != 1 {
		t.Fatalf("BatchFor(1ns) = %d, want floor of 1", got)
	}
}

// TestCalibratorConcurrent exercises Observe/PredictWindow/Stats under the
// race detector.
func TestCalibratorConcurrent(t *testing.T) {
	var c Calibrator
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Observe(1000, 1500, 150*time.Microsecond, 50)
				_ = c.PredictWindow(500)
				_ = c.BatchFor(time.Millisecond)
				_ = c.Stats()
			}
		}()
	}
	wg.Wait()
	if !c.Calibrated() {
		t.Fatal("no observations landed")
	}
}
