package cost

import (
	"math"
	"testing"

	"repro/internal/strategy"
)

// fig3 stats/refs: V4 over {V2,V3}, V5 over {V4,V1}.
func fig3Refs() RefCounts {
	return RefCounts{
		"V4": {"V2": 1, "V3": 1},
		"V5": {"V4": 1, "V1": 1},
	}
}

func TestViewStat(t *testing.T) {
	s := ViewStat{Size: 100, DeltaPlus: 5, DeltaMinus: 12}
	if s.DeltaSize() != 17 || s.NetGrowth() != -7 || s.SizeAfter() != 93 {
		t.Errorf("ViewStat arithmetic wrong: %+v", s)
	}
}

// TestExample32 checks the worked costs of Example 3.2: V4 = Π(V2 ⋈ V3).
func TestExample32(t *testing.T) {
	stats := Stats{
		"V2": {Size: 50, DeltaPlus: 3, DeltaMinus: 1},
		"V3": {Size: 80, DeltaPlus: 0, DeltaMinus: 4},
		"V4": {Size: 200, DeltaPlus: 10, DeltaMinus: 10},
	}
	refs := RefCounts{"V4": {"V2": 1, "V3": 1}}
	sim := NewSimulator(DefaultModel, stats, refs)
	// Comp(V4,{V2}) = one term: |δV2| + |V3| = 4 + 80.
	w, err := sim.CompWork(strategy.Comp{View: "V4", Over: []string{"V2"}})
	if err != nil {
		t.Fatal(err)
	}
	if w != 84 {
		t.Errorf("Comp(V4,{V2}) = %v, want 84", w)
	}
	// Comp(V4,{V2,V3}) = (|δV2|+|V3|) + (|δV3|+|V2|) + (|δV2|+|δV3|)
	//                  = (4+80) + (4+50) + (4+4) = 146.
	w, err = sim.CompWork(strategy.Comp{View: "V4", Over: []string{"V2", "V3"}})
	if err != nil {
		t.Fatal(err)
	}
	if w != 146 {
		t.Errorf("Comp(V4,{V2,V3}) = %v, want 146", w)
	}
	// Inst(V4) = |δV4| = 20.
	w, err = sim.InstWork(strategy.Inst{View: "V4"})
	if err != nil {
		t.Fatal(err)
	}
	if w != 20 {
		t.Errorf("Inst(V4) = %v, want 20", w)
	}
}

// TestInstallChangesState verifies that installing a view changes the cost
// of later compute expressions (the Example 4.1 effect).
func TestInstallChangesState(t *testing.T) {
	stats := Stats{
		"V2": {Size: 50, DeltaPlus: 30, DeltaMinus: 0}, // grows to 80
		"V3": {Size: 80, DeltaPlus: 0, DeltaMinus: 40}, // shrinks to 40
		"V4": {Size: 200, DeltaPlus: 5, DeltaMinus: 5},
	}
	refs := RefCounts{"V4": {"V2": 1, "V3": 1}}
	// Order 1: propagate V2 first (V2 installed before Comp(V4,{V3})).
	s1 := strategy.OneWayView("V4", []string{"V2", "V3"})
	// Order 2: propagate V3 first.
	s2 := strategy.OneWayView("V4", []string{"V3", "V2"})
	w1, err := Work(DefaultModel, stats, refs, s1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Work(DefaultModel, stats, refs, s2)
	if err != nil {
		t.Fatal(err)
	}
	// s1: (|δV2|+|V3|) + (|δV3|+|V2'|) = (30+80) + (40+80) = 230 comp work.
	// s2: (|δV3|+|V2|) + (|δV2|+|V3'|) = (40+50) + (30+40) = 160 comp work.
	// Installs are equal in both. V3 shrinks, V2 grows, so V3 first wins —
	// consistent with increasing |V'|-|V| ordering (V3: -40 < V2: +30).
	if w2 >= w1 {
		t.Errorf("shrink-first should be cheaper: w1=%v w2=%v", w1, w2)
	}
	if got := w1 - w2; got != 70 {
		t.Errorf("difference = %v, want 70", got)
	}
}

func TestSimulateBreakdown(t *testing.T) {
	stats := Stats{
		"V1": {Size: 10, DeltaPlus: 1}, "V2": {Size: 20, DeltaPlus: 2}, "V3": {Size: 30, DeltaMinus: 3},
		"V4": {Size: 40, DeltaPlus: 4}, "V5": {Size: 50, DeltaMinus: 5},
	}
	s := strategy.Strategy{
		strategy.Comp{View: "V4", Over: []string{"V2"}}, strategy.Inst{View: "V2"},
		strategy.Comp{View: "V4", Over: []string{"V3"}}, strategy.Inst{View: "V3"},
		strategy.Comp{View: "V5", Over: []string{"V4"}}, strategy.Inst{View: "V4"},
		strategy.Comp{View: "V5", Over: []string{"V1"}}, strategy.Inst{View: "V1"},
		strategy.Inst{View: "V5"},
	}
	b, err := Simulate(DefaultModel, stats, fig3Refs(), s)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != b.Comp+b.Inst {
		t.Errorf("total %v != comp %v + inst %v", b.Total, b.Comp, b.Inst)
	}
	if len(b.PerExpr) != len(s) {
		t.Errorf("per-expr length %d", len(b.PerExpr))
	}
	wantInst := float64(1 + 2 + 3 + 4 + 5)
	if b.Inst != wantInst {
		t.Errorf("inst work = %v, want %v", b.Inst, wantInst)
	}
	var sum float64
	for _, w := range b.PerExpr {
		sum += w
	}
	if math.Abs(sum-b.Total) > 1e-9 {
		t.Errorf("per-expr sum %v != total %v", sum, b.Total)
	}
}

func TestModelCoefficients(t *testing.T) {
	stats := Stats{"A": {Size: 10, DeltaPlus: 2}, "V": {Size: 5, DeltaPlus: 1}}
	refs := RefCounts{"V": {"A": 1}}
	s := strategy.Strategy{strategy.Comp{View: "V", Over: []string{"A"}}, strategy.Inst{View: "A"}, strategy.Inst{View: "V"}}
	w, err := Work(Model{CompCoeff: 2, InstCoeff: 10}, stats, refs, s)
	if err != nil {
		t.Fatal(err)
	}
	// comp: 2*(|δA| + 0 state... wait: term = δA only ref) = 2*2; inst: 10*(2+1).
	if w != 2*2+10*3 {
		t.Errorf("work = %v", w)
	}
}

func TestSelfJoinRefCounts(t *testing.T) {
	// V over A twice: Comp(V,{A}) must have 2²−1 = 3 terms.
	stats := Stats{"A": {Size: 10, DeltaPlus: 2}, "V": {Size: 5}}
	refs := RefCounts{"V": {"A": 2}}
	sim := NewSimulator(DefaultModel, stats, refs)
	w, err := sim.CompWork(strategy.Comp{View: "V", Over: []string{"A"}})
	if err != nil {
		t.Fatal(err)
	}
	// Per-ref: delta in 2 terms, state in 1 term → 2 refs × (2·2 + 1·10) = 28.
	if w != 28 {
		t.Errorf("self-join comp work = %v, want 28", w)
	}
}

func TestSimulatorErrors(t *testing.T) {
	stats := Stats{"A": {Size: 10}}
	refs := RefCounts{"V": {"A": 1}}
	sim := NewSimulator(DefaultModel, stats, refs)
	if _, err := sim.CompWork(strategy.Comp{View: "X", Over: []string{"A"}}); err == nil {
		t.Errorf("unknown view accepted")
	}
	if _, err := sim.CompWork(strategy.Comp{View: "V", Over: []string{"B"}}); err == nil {
		t.Errorf("non-referenced child accepted")
	}
	if _, err := sim.CompWork(strategy.Comp{View: "V", Over: []string{"A", "A"}}); err == nil {
		t.Errorf("duplicate child accepted")
	}
	if _, err := sim.CompWork(strategy.Comp{View: "V", Over: nil}); err == nil {
		t.Errorf("empty set accepted")
	}
	if _, err := sim.InstWork(strategy.Inst{View: "Z"}); err == nil {
		t.Errorf("unknown inst accepted")
	}
	// Double install.
	if _, err := sim.Step(strategy.Inst{View: "A"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Step(strategy.Inst{View: "A"}); err == nil {
		t.Errorf("double install accepted")
	}
	// Missing stats for comp child state.
	sim2 := NewSimulator(DefaultModel, Stats{"V": {Size: 1}}, RefCounts{"V": {"A": 1}})
	if _, err := sim2.CompWork(strategy.Comp{View: "V", Over: []string{"A"}}); err == nil {
		t.Errorf("missing child stats accepted")
	}
}

func TestUniformRefs(t *testing.T) {
	children := map[string][]string{"V": {"A", "B"}, "A": nil, "B": nil}
	rc := UniformRefs([]string{"A", "B", "V"}, func(v string) []string { return children[v] })
	if len(rc) != 1 || rc["V"]["A"] != 1 || rc["V"]["B"] != 1 {
		t.Errorf("UniformRefs = %v", rc)
	}
}

func TestEstimateDeltas(t *testing.T) {
	stats := Stats{
		"A": {Size: 100, DeltaPlus: 0, DeltaMinus: 10}, // 10% deleted
		"B": {Size: 200, DeltaPlus: 20, DeltaMinus: 0}, // 10% inserted
		"J": {Size: 1000},
		"G": {Size: 50},
	}
	infos := []ViewInfo{
		{Name: "J", Children: []string{"A", "B"}},
		{Name: "G", Children: []string{"J"}, IsAggregate: true},
	}
	if err := EstimateDeltas(infos, stats); err != nil {
		t.Fatal(err)
	}
	j := stats["J"]
	// Deleted fraction: 1 − 0.9 = 0.1 → 100 minus rows.
	if j.DeltaMinus != 100 {
		t.Errorf("J minus = %d, want 100", j.DeltaMinus)
	}
	// |J'| = 1000 · 0.9 · 1.1 = 990 → plus = 990 − 1000 + 100 = 90.
	if j.DeltaPlus != 90 {
		t.Errorf("J plus = %d, want 90", j.DeltaPlus)
	}
	g := stats["G"]
	// Changed fraction of J: (100+90)/1000 = 0.19 → 50·0.19 ≈ 9.5 groups.
	if g.DeltaMinus < 9 || g.DeltaMinus > 10 || g.DeltaPlus != g.DeltaMinus {
		t.Errorf("G delta = +%d −%d, want ≈±9..10", g.DeltaPlus, g.DeltaMinus)
	}
}

func TestEstimateDeltasErrors(t *testing.T) {
	if err := EstimateDeltas([]ViewInfo{{Name: "X"}}, Stats{}); err == nil {
		t.Errorf("no children accepted")
	}
	if err := EstimateDeltas([]ViewInfo{{Name: "X", Children: []string{"A"}}}, Stats{"A": {Size: 1}}); err == nil {
		t.Errorf("missing self stats accepted")
	}
	if err := EstimateDeltas([]ViewInfo{{Name: "X", Children: []string{"A"}}}, Stats{"X": {Size: 1}}); err == nil {
		t.Errorf("missing child stats accepted")
	}
}

func TestEstimateDeltasEmptyChild(t *testing.T) {
	stats := Stats{"A": {Size: 0}, "J": {Size: 0}}
	if err := EstimateDeltas([]ViewInfo{{Name: "J", Children: []string{"A"}}}, stats); err != nil {
		t.Fatal(err)
	}
	if stats["J"].DeltaSize() != 0 {
		t.Errorf("empty child should leave delta empty")
	}
}

func TestWorkUnknownExpr(t *testing.T) {
	sim := NewSimulator(DefaultModel, Stats{}, RefCounts{})
	if _, err := sim.Step(nil); err == nil {
		t.Errorf("nil expression accepted")
	}
}
