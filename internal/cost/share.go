package cost

import "sync"

// This file is the observation-tuned side of the share-vs-recompute gate.
// ShouldShare (estimate.go) decides from static estimates alone; a
// ShareTuner folds the shared registry's per-window observations — how much
// of the hinted reuse actually materialized, and how far the built sizes
// drifted from the planner's estimates — into that decision with the same
// EWMA machinery the Calibrator uses for the work model. Repeated windows
// therefore converge on the right sharing set even when the static
// estimates are off: operands whose hinted consumers never show up stop
// being retained, and systematically undersized estimates stop slipping
// past the byte budget.

// DefaultShareAlpha is the EWMA smoothing factor for sharing observations.
// It matches DefaultCalibrationAlpha: heavier history than sample.
const DefaultShareAlpha = 0.2

// DefaultMinExpectedReuse is the calibrated gate's retention threshold:
// an entry is worth keeping when the expected number of reuses —
// (consumers − 1) scaled by the observed hit ratio — is at least this.
// Below it, materializing for the first consumer and recomputing for the
// (unlikely) rest is cheaper than holding the bytes.
const DefaultMinExpectedReuse = 0.5

// ShareTuner tunes the share-vs-recompute gate from observed registry
// statistics. The zero value (and a nil pointer) is valid and uncalibrated:
// every decision falls back to the static ShouldShare gate. Safe for
// concurrent use.
type ShareTuner struct {
	// Alpha is the EWMA smoothing factor (0 = DefaultShareAlpha).
	Alpha float64
	// MinExpectedReuse overrides the retention threshold
	// (0 = DefaultMinExpectedReuse).
	MinExpectedReuse float64

	mu sync.Mutex
	// hitRatio is the EWMA of realized reuse: hits / (hinted consumers − 1),
	// clamped to [0, 1] per sample.
	hitRatio float64
	// sizeRatio is the EWMA of built rows / estimated rows — how far the
	// planner's size estimates drift from what the registry materializes.
	sizeRatio float64
	hitN      int
	sizeN     int
}

// Observe records one shared entry's end-of-window outcome: how many
// consumers the planner hinted, how many reuse hits the entry served, and
// the estimated vs built row counts. Entries hinted for fewer than two
// consumers carry no reuse signal and only feed the size ratio; non-positive
// sizes are ignored.
func (t *ShareTuner) Observe(hintedConsumers int, hits, estRows, builtRows int64) {
	if t == nil {
		return
	}
	alpha := t.Alpha
	if alpha <= 0 {
		alpha = DefaultShareAlpha
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if hintedConsumers >= 2 {
		sample := float64(hits) / float64(hintedConsumers-1)
		if sample > 1 {
			sample = 1
		}
		if sample < 0 {
			sample = 0
		}
		t.hitRatio = ewma(t.hitRatio, sample, alpha, t.hitN == 0)
		t.hitN++
	}
	if estRows > 0 && builtRows > 0 {
		t.sizeRatio = ewma(t.sizeRatio, float64(builtRows)/float64(estRows), alpha, t.sizeN == 0)
		t.sizeN++
	}
}

// Calibrated reports whether any reuse observation has been folded in.
func (t *ShareTuner) Calibrated() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hitN > 0
}

// minReuse returns the configured retention threshold.
func (t *ShareTuner) minReuse() float64 {
	if t.MinExpectedReuse > 0 {
		return t.MinExpectedReuse
	}
	return DefaultMinExpectedReuse
}

// ShouldShare is the tuned share-vs-recompute gate: like the static
// ShouldShare it requires at least two consumers and a budget fit, but once
// calibrated it additionally requires the *expected* reuse — hinted
// consumers beyond the first, scaled by the observed hit ratio — to clear
// the retention threshold. A nil or uncalibrated tuner defers entirely to
// the static gate, so attaching a fresh tuner changes nothing until
// observations arrive.
func (t *ShareTuner) ShouldShare(consumers int, bytes, budget, used int64) bool {
	if t == nil {
		return ShouldShare(consumers, bytes, budget, used)
	}
	t.mu.Lock()
	calibrated := t.hitN > 0
	hitRatio := t.hitRatio
	t.mu.Unlock()
	if !calibrated {
		return ShouldShare(consumers, bytes, budget, used)
	}
	if consumers < 2 {
		return false
	}
	if float64(consumers-1)*hitRatio < t.minReuse() {
		return false
	}
	if budget <= 0 {
		return true
	}
	return used+bytes <= budget
}

// CorrectBytes scales a planner byte estimate by the observed size ratio,
// so the budget clamp admits entries by what they will actually cost to
// retain. Uncorrected (or with no size observations) the estimate passes
// through unchanged.
func (t *ShareTuner) CorrectBytes(est int64) int64 {
	if t == nil || est <= 0 {
		return est
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sizeN == 0 {
		return est
	}
	out := int64(float64(est) * t.sizeRatio)
	if out < 1 {
		out = 1
	}
	return out
}

// ShareTuningStats is a snapshot of a tuner for reporting.
type ShareTuningStats struct {
	// HitRatio is the EWMA of realized reuse per hinted consumer beyond
	// the first (0 when no reuse observation has arrived).
	HitRatio float64 `json:"hit_ratio"`
	// SizeRatio is the EWMA of built rows over estimated rows (0 when no
	// size observation has arrived).
	SizeRatio float64 `json:"size_ratio"`
	// HitObservations and SizeObservations count the samples folded in.
	HitObservations  int `json:"hit_observations"`
	SizeObservations int `json:"size_observations"`
}

// Stats snapshots the tuner.
func (t *ShareTuner) Stats() ShareTuningStats {
	if t == nil {
		return ShareTuningStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return ShareTuningStats{
		HitRatio:         t.hitRatio,
		SizeRatio:        t.sizeRatio,
		HitObservations:  t.hitN,
		SizeObservations: t.sizeN,
	}
}
