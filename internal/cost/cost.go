// Package cost implements the paper's linear work metric (Definition 3.5)
// and a database-state cost simulator for update strategies.
//
// The estimate for an Inst expression is proportional to |δV|. The estimate
// for a Comp expression is the sum over its maintenance terms of the sizes
// of the term's operands. Because installs change view extensions, the cost
// of a Comp depends on which installs precede it — the simulator walks the
// strategy tracking |V| vs |V′| for every view, exactly the model under
// which MinWorkSingle and MinWork are proved optimal.
package cost

import (
	"fmt"

	"repro/internal/strategy"
)

// ViewStat holds the per-view quantities the metric needs: the pre-update
// size |V| and the composition of the pending delta (so both |δV| and the
// net growth |V′|−|V| are available).
type ViewStat struct {
	Size       int64 // |V| before the update window
	DeltaPlus  int64 // inserted tuples in δV
	DeltaMinus int64 // deleted tuples in δV
}

// DeltaSize returns |δV|.
func (s ViewStat) DeltaSize() int64 { return s.DeltaPlus + s.DeltaMinus }

// NetGrowth returns |V′| − |V|.
func (s ViewStat) NetGrowth() int64 { return s.DeltaPlus - s.DeltaMinus }

// SizeAfter returns |V′|.
func (s ViewStat) SizeAfter() int64 { return s.Size + s.NetGrowth() }

// Stats maps view names to their statistics.
type Stats map[string]ViewStat

// Model carries the proportionality constants of the metric. The paper's
// conclusions depend only on ratios; the defaults weight compute-scanned
// tuples and installed tuples equally.
type Model struct {
	// CompCoeff is the per-operand-tuple constant c of compute terms.
	CompCoeff float64
	// InstCoeff is the per-tuple constant i of installs.
	InstCoeff float64
	// SpillCoeff is the per-tuple constant of spill I/O: what writing one
	// build-side tuple to disk and reading it back costs relative to
	// scanning it. Charged only when MemoryBudgetBytes forces a build to
	// spill; 0 means DefaultSpillCoeff.
	SpillCoeff float64
	// MemoryBudgetBytes is the window memory budget the estimates assume
	// (see the engine's Options.MemoryBudgetBytes). When positive, a Comp
	// whose build-side operand would not fit is charged the spill penalty,
	// so Prune and EstimateWork prefer strategies that keep builds small
	// under pressure. 0 assumes unbounded memory: no penalty. MinWork is
	// statistics-only and ignores the model either way.
	MemoryBudgetBytes int64
}

// DefaultModel weights compute and install tuples equally.
var DefaultModel = Model{CompCoeff: 1, InstCoeff: 1}

// DefaultSpillCoeff is the per-tuple spill I/O constant assumed when the
// model does not set one: writing a tuple out plus re-reading it is taken to
// cost as much as scanning it once.
const DefaultSpillCoeff = 1

// SpillPenalty estimates the extra work a bounded window pays to hash-build
// an operand of the given size (tuples): zero when no budget is configured
// or the estimated footprint fits, otherwise SpillCoeff times the tuples
// written out and re-read (one pass each way). Footprint uses a nominal
// tuple width — planning statistics carry cardinalities, not schemas — and
// only needs to rank strategies consistently, not predict bytes exactly.
func (m Model) SpillPenalty(size int64) float64 {
	if m.MemoryBudgetBytes <= 0 || size <= 0 {
		return 0
	}
	if EstimateMaterializedBytes(size, nominalBuildWidth) <= m.MemoryBudgetBytes {
		return 0
	}
	coeff := m.SpillCoeff
	if coeff == 0 {
		coeff = DefaultSpillCoeff
	}
	return coeff * float64(2*size)
}

// nominalBuildWidth is the tuple width SpillPenalty assumes when estimating
// a build's footprint from a cardinality alone.
const nominalBuildWidth = 4

// RefCounts describes, for each derived view, how many FROM-clause
// references its definition has of each child view (almost always 1; >1 for
// self-joins). The simulator needs reference counts because a term's
// operand list has one entry per reference.
type RefCounts map[string]map[string]int

// UniformRefs builds RefCounts with one reference per (parent, child) edge,
// the common case, from an adjacency function.
func UniformRefs(views []string, children func(string) []string) RefCounts {
	rc := make(RefCounts, len(views))
	for _, v := range views {
		cs := children(v)
		if len(cs) == 0 {
			continue
		}
		m := make(map[string]int, len(cs))
		for _, c := range cs {
			m[c] = 1
		}
		rc[v] = m
	}
	return rc
}

// Simulator evaluates the linear work metric over a strategy, mutating its
// view of the database state as Inst expressions execute.
type Simulator struct {
	model     Model
	stats     Stats
	refs      RefCounts
	installed map[string]bool
}

// NewSimulator creates a simulator from the pre-update statistics.
func NewSimulator(model Model, stats Stats, refs RefCounts) *Simulator {
	return &Simulator{model: model, stats: stats, refs: refs, installed: make(map[string]bool)}
}

// currentSize returns the size of a view at the current simulated state.
func (s *Simulator) currentSize(view string) (int64, error) {
	st, ok := s.stats[view]
	if !ok {
		return 0, fmt.Errorf("cost: no statistics for view %q", view)
	}
	if s.installed[view] {
		return st.SizeAfter(), nil
	}
	return st.Size, nil
}

// CompWork returns the work of Comp(view, over) at the current state.
//
// With r references bound to deltas in total, the expression has 2^r − 1
// terms. Each delta-bound reference appears as a delta operand in 2^(r−1)
// terms and as a state operand in 2^(r−1) − 1 terms; every reference to a
// view outside over appears as a state operand in all 2^r − 1 terms.
func (s *Simulator) CompWork(comp strategy.Comp) (float64, error) {
	refs := s.refs[comp.View]
	if refs == nil {
		return 0, fmt.Errorf("cost: no reference counts for derived view %q", comp.View)
	}
	r := 0
	overSet := make(map[string]bool, len(comp.Over))
	for _, o := range comp.Over {
		if overSet[o] {
			return 0, fmt.Errorf("cost: duplicate view %q in Comp set", o)
		}
		overSet[o] = true
		n, ok := refs[o]
		if !ok {
			return 0, fmt.Errorf("cost: %q is not referenced by %q", o, comp.View)
		}
		r += n
	}
	if r == 0 {
		return 0, fmt.Errorf("cost: empty Comp set")
	}
	if r > 62 {
		return 0, fmt.Errorf("cost: too many delta references (%d)", r)
	}
	terms := float64(int64(1)<<uint(r)) - 1
	deltaTerms := float64(int64(1) << uint(r-1))
	stateTerms := deltaTerms - 1

	var work, spill float64
	for child, n := range refs {
		size, err := s.currentSize(child)
		if err != nil {
			return 0, err
		}
		if overSet[child] {
			d := s.stats[child].DeltaSize()
			work += float64(n) * (deltaTerms*float64(d) + stateTerms*float64(size))
		} else {
			work += float64(n) * terms * float64(size)
		}
		// Bounded-memory penalty: a state operand too large for the window
		// budget is built as a spilled hash table — written out once and
		// re-read during partition-wise probing. Builds are cached across a
		// Comp's terms, so the penalty is charged once per reference.
		spill += float64(n) * s.model.SpillPenalty(size)
	}
	return s.model.CompCoeff*work + spill, nil
}

// InstWork returns the work of Inst(view): i·|δV|.
func (s *Simulator) InstWork(inst strategy.Inst) (float64, error) {
	st, ok := s.stats[inst.View]
	if !ok {
		return 0, fmt.Errorf("cost: no statistics for view %q", inst.View)
	}
	return s.model.InstCoeff * float64(st.DeltaSize()), nil
}

// Step executes one expression: returns its work and updates the state.
func (s *Simulator) Step(e strategy.Expr) (float64, error) {
	switch x := e.(type) {
	case strategy.Comp:
		return s.CompWork(x)
	case strategy.Inst:
		w, err := s.InstWork(x)
		if err != nil {
			return 0, err
		}
		if s.installed[x.View] {
			return 0, fmt.Errorf("cost: %s installed twice", x)
		}
		s.installed[x.View] = true
		return w, nil
	default:
		return 0, fmt.Errorf("cost: unknown expression type %T", e)
	}
}

// Breakdown itemizes the simulated work of a strategy.
type Breakdown struct {
	Total    float64
	Comp     float64
	Inst     float64
	PerExpr  []float64
	Strategy strategy.Strategy
}

// Simulate returns the total linear-metric work of executing the strategy
// from the pre-update state described by stats.
func Simulate(model Model, stats Stats, refs RefCounts, s strategy.Strategy) (Breakdown, error) {
	sim := NewSimulator(model, stats, refs)
	b := Breakdown{Strategy: s, PerExpr: make([]float64, len(s))}
	for i, e := range s {
		w, err := sim.Step(e)
		if err != nil {
			return b, fmt.Errorf("cost: at expression %d (%s): %w", i, e, err)
		}
		b.PerExpr[i] = w
		b.Total += w
		if _, ok := e.(strategy.Comp); ok {
			b.Comp += w
		} else {
			b.Inst += w
		}
	}
	return b, nil
}

// Work is Simulate returning only the total.
func Work(model Model, stats Stats, refs RefCounts, s strategy.Strategy) (float64, error) {
	b, err := Simulate(model, stats, refs, s)
	return b.Total, err
}

// VariantCompWork computes the Comp estimate under the *variant* metric the
// paper's Discussion section considers and rejects: summing each operand's
// size once, ignoring how many maintenance terms read it. Under this
// variant, Comp(V,{V2,V3}) costs c·(|δV2|+|V2|+|δV3|+|V3|), so dual-stage
// strategies look best — contrary to the measured Experiment 4 results.
// The simulator state handling (installed views read |V′|) is shared with
// the real metric.
func (s *Simulator) VariantCompWork(comp strategy.Comp) (float64, error) {
	refs := s.refs[comp.View]
	if refs == nil {
		return 0, fmt.Errorf("cost: no reference counts for derived view %q", comp.View)
	}
	overSet := make(map[string]bool, len(comp.Over))
	for _, o := range comp.Over {
		overSet[o] = true
	}
	var work float64
	for child, n := range refs {
		size, err := s.currentSize(child)
		if err != nil {
			return 0, err
		}
		work += float64(n) * float64(size)
		if overSet[child] {
			work += float64(n) * float64(s.stats[child].DeltaSize())
		}
	}
	return s.model.CompCoeff * work, nil
}

// VariantWork evaluates a whole strategy under the variant metric.
func VariantWork(model Model, stats Stats, refs RefCounts, strat strategy.Strategy) (float64, error) {
	sim := NewSimulator(model, stats, refs)
	var total float64
	for i, e := range strat {
		var w float64
		var err error
		switch x := e.(type) {
		case strategy.Comp:
			w, err = sim.VariantCompWork(x)
		case strategy.Inst:
			w, err = sim.Step(x)
		default:
			err = fmt.Errorf("cost: unknown expression type %T", e)
		}
		if err != nil {
			return 0, fmt.Errorf("cost: at expression %d (%s): %w", i, e, err)
		}
		total += w
	}
	return total, nil
}
