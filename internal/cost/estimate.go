package cost

import (
	"fmt"
	"math"
)

// ViewInfo describes one derived view for delta estimation.
type ViewInfo struct {
	Name string
	// Children lists the referenced views, one entry per FROM-clause
	// reference (repeat for self-joins).
	Children []string
	// IsAggregate marks summary views, whose deltas are group-level.
	IsAggregate bool
}

// bytesPerColumn is the rough in-memory footprint of one column value in a
// materialized hash table: a boxed value plus slice/map overhead amortized
// per cell. The constant only needs to be consistent between the budget and
// the estimates it gates.
const bytesPerColumn = 48

// EstimateMaterializedBytes estimates the transient memory footprint of
// materializing rows tuples of the given width (columns) into a hash table.
// Used by the shared-computation registry to charge entries against its
// byte budget.
func EstimateMaterializedBytes(rows int64, width int) int64 {
	if rows <= 0 {
		return 0
	}
	if width < 1 {
		width = 1
	}
	return rows * int64(width) * bytesPerColumn
}

// ShouldShare is the reuse-vs-recompute gate for one shared subexpression
// result: materializing is worthwhile only when at least two consumers will
// read it (the first computation is paid either way) and the estimated
// footprint fits in what remains of the transient byte budget. A
// non-positive budget means "no budget configured": sharing is then gated
// on consumer count alone.
func ShouldShare(consumers int, bytes, budget, used int64) bool {
	if consumers < 2 {
		return false
	}
	if budget <= 0 {
		return true
	}
	return used+bytes <= budget
}

// EstimateDeltas fills the DeltaPlus/DeltaMinus statistics of derived views
// bottom-up from the (exact) base-view deltas, using standard independence
// assumptions (Section 5.5 of the paper defers to "standard query result
// size estimation methods" [Ull89]; this is the usual multiplicative
// model):
//
//   - A joined row survives iff every contributing child row survives, so
//     the deleted fraction of an SPJ view is 1 − Π(1 − f_c), with f_c the
//     deleted fraction of child c (per reference).
//   - Join cardinality scales multiplicatively with input sizes, so
//     |V′| = |V| · Π(|c′|/|c|), and the inserted count follows from
//     |V′| − |V| plus the deletions.
//   - An aggregate view's delta has one minus and one plus row per affected
//     group; the affected fraction of groups is estimated like the deleted
//     fraction above but using the changed fraction of each child.
//
// infos must be in topological order (children estimated before parents);
// every view's Size must already be present in stats, and base views must
// carry their exact delta counts.
func EstimateDeltas(infos []ViewInfo, stats Stats) error {
	for _, info := range infos {
		if len(info.Children) == 0 {
			return fmt.Errorf("cost: view %q has no children; only derived views are estimated", info.Name)
		}
		self, ok := stats[info.Name]
		if !ok {
			return fmt.Errorf("cost: no size recorded for view %q", info.Name)
		}
		survive := 1.0 // Π(1 − deleted fraction)
		ratio := 1.0   // Π(|c′| / |c|)
		unchanged := 1.0
		for _, c := range info.Children {
			cs, ok := stats[c]
			if !ok {
				return fmt.Errorf("cost: view %q child %q has no statistics", info.Name, c)
			}
			if cs.Size <= 0 {
				// An empty child keeps the parent empty; nothing changes.
				survive, ratio, unchanged = 0, 0, 1
				continue
			}
			size := float64(cs.Size)
			survive *= math.Max(0, 1-float64(cs.DeltaMinus)/size)
			ratio *= math.Max(0, float64(cs.SizeAfter())/size)
			unchanged *= math.Max(0, 1-float64(cs.DeltaSize())/size)
		}
		size := float64(self.Size)
		if info.IsAggregate {
			affected := int64(math.Round(size * (1 - unchanged)))
			if affected > self.Size {
				affected = self.Size
			}
			self.DeltaMinus = affected
			self.DeltaPlus = affected
		} else {
			minus := int64(math.Round(size * (1 - survive)))
			if minus > self.Size {
				minus = self.Size
			}
			after := int64(math.Round(size * ratio))
			plus := after - self.Size + minus
			if plus < 0 {
				plus = 0
			}
			self.DeltaMinus = minus
			self.DeltaPlus = plus
		}
		stats[info.Name] = self
	}
	return nil
}
