package cost

import "testing"

// TestShareTunerFallback: a nil or uncalibrated tuner defers to the static
// gate in every case.
func TestShareTunerFallback(t *testing.T) {
	var nilTuner *ShareTuner
	cases := []struct {
		consumers           int
		bytes, budget, used int64
		want                bool
	}{
		{1, 10, 100, 0, false},
		{2, 10, 100, 0, true},
		{3, 10, 0, 0, true},     // no budget: always fits
		{2, 60, 100, 50, false}, // over budget
	}
	for _, c := range cases {
		if got := nilTuner.ShouldShare(c.consumers, c.bytes, c.budget, c.used); got != c.want {
			t.Errorf("nil tuner ShouldShare(%d,%d,%d,%d) = %v, want %v", c.consumers, c.bytes, c.budget, c.used, got, c.want)
		}
		fresh := &ShareTuner{}
		if got := fresh.ShouldShare(c.consumers, c.bytes, c.budget, c.used); got != c.want {
			t.Errorf("fresh tuner ShouldShare(%d,%d,%d,%d) = %v, want %v", c.consumers, c.bytes, c.budget, c.used, got, c.want)
		}
	}
	if nilTuner.Calibrated() {
		t.Error("nil tuner reports calibrated")
	}
	nilTuner.Observe(3, 2, 10, 10) // must not panic
}

// TestShareTunerFlipsToRecompute: when observed windows realize none of the
// hinted reuse, the EWMA hit ratio decays and the gate flips share →
// recompute for entries the static gate would retain.
func TestShareTunerFlipsToRecompute(t *testing.T) {
	tn := &ShareTuner{}
	if !tn.ShouldShare(3, 10, 1000, 0) {
		t.Fatal("uncalibrated gate must admit a 3-consumer entry under budget")
	}
	// Windows where hinted consumers never came back: 0 hits of 2 expected.
	for i := 0; i < 6; i++ {
		tn.Observe(3, 0, 100, 100)
	}
	if !tn.Calibrated() {
		t.Fatal("tuner not calibrated after observations")
	}
	if tn.ShouldShare(3, 10, 1000, 0) {
		t.Error("gate still shares after hit ratio collapsed to 0")
	}
	// A huge fan-out cannot rescue a zero hit ratio.
	if tn.ShouldShare(100, 10, 1000, 0) {
		t.Error("gate shares at hitRatio=0 regardless of consumer count")
	}
}

// TestShareTunerFlipsBack: after the workload shifts and reuse reappears,
// the same tuner flips recompute → share again.
func TestShareTunerFlipsBack(t *testing.T) {
	tn := &ShareTuner{}
	for i := 0; i < 6; i++ {
		tn.Observe(3, 0, 100, 100)
	}
	if tn.ShouldShare(3, 10, 1000, 0) {
		t.Fatal("precondition: gate flipped to recompute")
	}
	// Reuse reappears: every hinted consumer hits.
	for i := 0; i < 20; i++ {
		tn.Observe(3, 2, 100, 100)
	}
	if !tn.ShouldShare(3, 10, 1000, 0) {
		t.Error("gate did not flip back to share after reuse recovered")
	}
	// Single-consumer entries stay refused even at a perfect hit ratio.
	if tn.ShouldShare(1, 10, 1000, 0) {
		t.Error("calibrated gate admits a single-consumer entry")
	}
}

// TestShareTunerPartialReuse: with a fractional hit ratio the expected-reuse
// threshold separates wide fan-out (worth sharing) from narrow fan-out (not).
func TestShareTunerPartialReuse(t *testing.T) {
	tn := &ShareTuner{}
	// One hit of three expected, repeatedly: hit ratio converges to 1/3.
	for i := 0; i < 30; i++ {
		tn.Observe(4, 1, 100, 100)
	}
	// consumers=2: expected reuse = 1·(1/3) ≈ 0.33 < 0.5 → recompute.
	if tn.ShouldShare(2, 10, 1000, 0) {
		t.Error("narrow fan-out shared despite expected reuse below threshold")
	}
	// consumers=4: expected reuse = 3·(1/3) ≈ 1.0 ≥ 0.5 → share.
	if !tn.ShouldShare(4, 10, 1000, 0) {
		t.Error("wide fan-out refused despite expected reuse above threshold")
	}
}

// TestShareTunerBudgetInteraction: the calibrated gate still honors the byte
// budget — the PR 8 memory-budget admission path asks this exact question
// before reserving registry bytes, so a good hit ratio must never override
// a budget overflow, and drifted sizes must tighten the planner's clamp.
func TestShareTunerBudgetInteraction(t *testing.T) {
	tn := &ShareTuner{}
	for i := 0; i < 10; i++ {
		tn.Observe(3, 2, 100, 400) // perfect reuse, 4× under-estimated sizes
	}
	if !tn.ShouldShare(3, 100, 1000, 0) {
		t.Fatal("calibrated gate refused a fitting entry")
	}
	if tn.ShouldShare(3, 100, 1000, 950) {
		t.Error("calibrated gate admitted an entry past the budget")
	}
	if !tn.ShouldShare(3, 100, 0, 1<<40) {
		t.Error("budget 0 means unbounded, gate must admit")
	}
	// Size drift: estimates are corrected upward before the planner's
	// budget clamp, so a 100-byte estimate now costs ~400.
	got := tn.CorrectBytes(100)
	if got < 300 || got > 500 {
		t.Errorf("CorrectBytes(100) = %d, want ≈400 after 4× drift", got)
	}
	if (&ShareTuner{}).CorrectBytes(100) != 100 {
		t.Error("unobserved tuner must pass estimates through")
	}
}

// TestShareTunerStats: the snapshot reflects the EWMA state.
func TestShareTunerStats(t *testing.T) {
	tn := &ShareTuner{}
	tn.Observe(3, 2, 100, 200)
	st := tn.Stats()
	if st.HitObservations != 1 || st.SizeObservations != 1 {
		t.Fatalf("observations = %d/%d, want 1/1", st.HitObservations, st.SizeObservations)
	}
	if st.HitRatio != 1 {
		t.Errorf("HitRatio = %v, want 1 (first sample seeds the EWMA)", st.HitRatio)
	}
	if st.SizeRatio != 2 {
		t.Errorf("SizeRatio = %v, want 2", st.SizeRatio)
	}
}
