package cost

// Online calibration of the work model against measured windows. The static
// metric predicts *relative* work well — that is what the planner proofs
// need — but the continuous ingester must answer an absolute question: how
// many row-changes fit in a micro-batch whose window finishes inside the
// staleness budget? The Calibrator closes that loop: each committed window
// contributes its (predicted work, measured work, wall-clock) triple, and
// exponentially weighted averages of predicted-vs-actual work and
// nanoseconds-per-work-unit turn the planner's estimate into a wall-clock
// prediction that tracks the machine and the workload as they drift.

import (
	"math"
	"sync"
	"time"
)

// DefaultCalibrationAlpha is the EWMA smoothing factor: each observation
// contributes this fraction, so roughly the last 1/alpha windows dominate.
const DefaultCalibrationAlpha = 0.2

// Calibrator maintains EWMAs of predicted-vs-actual window behaviour.
// Methods are safe for concurrent use (the ingester observes from the window
// loop while stats readers poll).
type Calibrator struct {
	// Alpha is the EWMA smoothing factor; out-of-range values (<=0 or >1)
	// mean DefaultCalibrationAlpha.
	Alpha float64

	mu sync.Mutex
	// workRatio is EWMA(actual work / predicted work): how far off the
	// static metric runs on this workload.
	workRatio float64
	// nsPerWork is EWMA(elapsed ns / actual work): the machine's pace.
	nsPerWork float64
	// workPerChange is EWMA(predicted work / batch row-changes): how much
	// predicted work one queued change tends to cost, which inverts a time
	// budget into a batch-size target.
	workPerChange float64
	// n counts observations folded in.
	n int
}

func (c *Calibrator) alpha() float64 {
	if c.Alpha <= 0 || c.Alpha > 1 {
		return DefaultCalibrationAlpha
	}
	return c.Alpha
}

func ewma(cur, obs, alpha float64, first bool) float64 {
	if first {
		return obs
	}
	return cur + alpha*(obs-cur)
}

// Observe folds one committed window into the calibration: the planner's
// predicted work for the batch, the measured work and wall-clock from the
// window report, and the batch's row-change count. Non-positive predicted or
// measured values contribute nothing (a recompute fallback's work is not the
// incremental model's to explain).
func (c *Calibrator) Observe(predictedWork, actualWork int64, elapsed time.Duration, changes int) {
	if predictedWork <= 0 || actualWork <= 0 || elapsed <= 0 || changes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.alpha()
	first := c.n == 0
	c.workRatio = ewma(c.workRatio, float64(actualWork)/float64(predictedWork), a, first)
	c.nsPerWork = ewma(c.nsPerWork, float64(elapsed)/float64(actualWork), a, first)
	c.workPerChange = ewma(c.workPerChange, float64(predictedWork)/float64(changes), a, first)
	c.n++
}

// Calibrated reports whether any window has been observed. Before that,
// PredictWindow returns 0 and BatchFor falls back to the caller's default.
func (c *Calibrator) Calibrated() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n > 0
}

// PredictWindow converts a planner work estimate into a wall-clock
// prediction: predicted work, corrected by the observed actual/predicted
// ratio, times the observed pace. 0 when uncalibrated or the estimate is
// non-positive.
func (c *Calibrator) PredictWindow(predictedWork int64) time.Duration {
	if predictedWork <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n == 0 {
		return 0
	}
	ns := float64(predictedWork) * c.workRatio * c.nsPerWork
	if ns < 0 || math.IsNaN(ns) || ns > math.MaxInt64 {
		return 0
	}
	return time.Duration(ns)
}

// BatchFor inverts a wall-clock budget into a row-change batch target: the
// largest batch whose predicted window, at the calibrated per-change cost and
// pace, fits the budget. Returns 0 when uncalibrated — the caller keeps its
// configured default until windows have been observed.
func (c *Calibrator) BatchFor(budget time.Duration) int {
	if budget <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n == 0 {
		return 0
	}
	nsPerChange := c.workPerChange * c.workRatio * c.nsPerWork
	if nsPerChange <= 0 || math.IsNaN(nsPerChange) {
		return 0
	}
	n := float64(budget) / nsPerChange
	if n < 1 {
		return 1
	}
	if n > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(n)
}

// CalibrationStats is a snapshot of the calibrator's EWMAs, for observability.
type CalibrationStats struct {
	// Windows is the number of observations folded in.
	Windows int `json:"windows"`
	// WorkRatio is EWMA(actual/predicted work); 1.0 means the static metric
	// is absolutely accurate on this workload.
	WorkRatio float64 `json:"work_ratio"`
	// NSPerWork is EWMA(elapsed ns per actual work unit).
	NSPerWork float64 `json:"ns_per_work"`
	// WorkPerChange is EWMA(predicted work per batch row-change).
	WorkPerChange float64 `json:"work_per_change"`
}

// Stats snapshots the calibration state.
func (c *Calibrator) Stats() CalibrationStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CalibrationStats{
		Windows:       c.n,
		WorkRatio:     c.workRatio,
		NSPerWork:     c.nsPerWork,
		WorkPerChange: c.workPerChange,
	}
}
