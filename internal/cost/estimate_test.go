package cost

import "testing"

// TestEstimateDeltasSPJ checks the multiplicative model on a join view:
// deleted fraction 1 − Π(1 − f_c), size ratio Π(|c′|/|c|).
func TestEstimateDeltasSPJ(t *testing.T) {
	stats := Stats{
		"A": {Size: 100, DeltaMinus: 10}, // 10% deleted
		"B": {Size: 200, DeltaMinus: 40}, // 20% deleted
		"V": {Size: 1000},                // derived
	}
	infos := []ViewInfo{{Name: "V", Children: []string{"A", "B"}}}
	if err := EstimateDeltas(infos, stats); err != nil {
		t.Fatal(err)
	}
	v := stats["V"]
	// survive = 0.9 * 0.8 = 0.72 → minus = 1000 * 0.28 = 280.
	if v.DeltaMinus != 280 {
		t.Errorf("DeltaMinus = %d, want 280", v.DeltaMinus)
	}
	// ratio = (90/100)*(160/200) = 0.72 → after = 720, plus = 720-1000+280 = 0.
	if v.DeltaPlus != 0 {
		t.Errorf("DeltaPlus = %d, want 0", v.DeltaPlus)
	}
}

// TestEstimateDeltasInserts checks that net growth shows up as DeltaPlus.
func TestEstimateDeltasInserts(t *testing.T) {
	stats := Stats{
		"A": {Size: 100, DeltaPlus: 100}, // doubles
		"V": {Size: 50},
	}
	infos := []ViewInfo{{Name: "V", Children: []string{"A"}}}
	if err := EstimateDeltas(infos, stats); err != nil {
		t.Fatal(err)
	}
	v := stats["V"]
	if v.DeltaMinus != 0 {
		t.Errorf("DeltaMinus = %d, want 0", v.DeltaMinus)
	}
	// ratio = 200/100 = 2 → after = 100, plus = 100-50 = 50.
	if v.DeltaPlus != 50 {
		t.Errorf("DeltaPlus = %d, want 50", v.DeltaPlus)
	}
}

// TestEstimateDeltasAggregate checks the group-level model: one minus and
// one plus row per affected group.
func TestEstimateDeltasAggregate(t *testing.T) {
	stats := Stats{
		"A": {Size: 100, DeltaMinus: 25, DeltaPlus: 25}, // changed fraction 50%
		"G": {Size: 10},
	}
	infos := []ViewInfo{{Name: "G", Children: []string{"A"}, IsAggregate: true}}
	if err := EstimateDeltas(infos, stats); err != nil {
		t.Fatal(err)
	}
	g := stats["G"]
	if g.DeltaMinus != 5 || g.DeltaPlus != 5 {
		t.Errorf("aggregate delta = (−%d, +%d), want (−5, +5)", g.DeltaMinus, g.DeltaPlus)
	}
}

// TestEstimateDeltasEmptyChildJoin: an empty child of a join keeps the
// parent unchanged even when its sibling shrinks.
func TestEstimateDeltasEmptyChildJoin(t *testing.T) {
	stats := Stats{
		"A": {Size: 0},
		"B": {Size: 100, DeltaMinus: 50},
		"V": {Size: 0},
	}
	infos := []ViewInfo{{Name: "V", Children: []string{"A", "B"}}}
	if err := EstimateDeltas(infos, stats); err != nil {
		t.Fatal(err)
	}
	v := stats["V"]
	if v.DeltaMinus != 0 || v.DeltaPlus != 0 {
		t.Errorf("delta = (−%d, +%d), want (0, 0)", v.DeltaMinus, v.DeltaPlus)
	}
}

// TestEstimateDeltasTopoOrder: derived children must be estimated before
// their parents (the documented contract), and estimates chain through.
func TestEstimateDeltasTopoOrder(t *testing.T) {
	stats := Stats{
		"A": {Size: 100, DeltaMinus: 10},
		"M": {Size: 100}, // over A
		"T": {Size: 100}, // over M
	}
	infos := []ViewInfo{
		{Name: "M", Children: []string{"A"}},
		{Name: "T", Children: []string{"M"}},
	}
	if err := EstimateDeltas(infos, stats); err != nil {
		t.Fatal(err)
	}
	if stats["M"].DeltaMinus != 10 {
		t.Errorf("M DeltaMinus = %d, want 10", stats["M"].DeltaMinus)
	}
	if stats["T"].DeltaMinus != 10 {
		t.Errorf("T DeltaMinus = %d, want 10", stats["T"].DeltaMinus)
	}
}

func TestEstimateMaterializedBytes(t *testing.T) {
	if got := EstimateMaterializedBytes(0, 4); got != 0 {
		t.Errorf("0 rows → %d bytes, want 0", got)
	}
	if got := EstimateMaterializedBytes(-5, 4); got != 0 {
		t.Errorf("negative rows → %d bytes, want 0", got)
	}
	if got := EstimateMaterializedBytes(10, 0); got != EstimateMaterializedBytes(10, 1) {
		t.Errorf("width 0 should clamp to 1: %d", got)
	}
	// Monotone in both rows and width.
	if EstimateMaterializedBytes(10, 4) >= EstimateMaterializedBytes(20, 4) {
		t.Error("not monotone in rows")
	}
	if EstimateMaterializedBytes(10, 2) >= EstimateMaterializedBytes(10, 4) {
		t.Error("not monotone in width")
	}
}

func TestShouldShare(t *testing.T) {
	cases := []struct {
		name                string
		consumers           int
		bytes, budget, used int64
		want                bool
	}{
		{"single consumer never shares", 1, 10, 1000, 0, false},
		{"zero consumers never shares", 0, 10, 1000, 0, false},
		{"two consumers within budget", 2, 10, 1000, 0, true},
		{"fills budget exactly", 2, 1000, 1000, 0, true},
		{"over budget", 2, 1001, 1000, 0, false},
		{"budget already consumed", 2, 10, 1000, 995, false},
		{"no budget configured", 2, 1 << 40, 0, 0, true},
	}
	for _, c := range cases {
		if got := ShouldShare(c.consumers, c.bytes, c.budget, c.used); got != c.want {
			t.Errorf("%s: ShouldShare(%d, %d, %d, %d) = %v, want %v",
				c.name, c.consumers, c.bytes, c.budget, c.used, got, c.want)
		}
	}
}
