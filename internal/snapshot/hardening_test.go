package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
)

// viewState captures every view's sorted (tuple, count) bag as strings.
func viewState(w *core.Warehouse) map[string][]string {
	state := make(map[string][]string)
	for _, name := range w.ViewNames() {
		for _, r := range w.MustView(name).SortedRows() {
			state[name] = append(state[name], fmt.Sprintf("%s x%d", r.Tuple, r.Count))
		}
	}
	return state
}

func sameState(a, b map[string][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv := b[k]
		if len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// TestReadTruncatedLeavesStateIntact feeds every possible truncation of a
// valid snapshot to Read: each must fail with a clear error and leave the
// target warehouse byte-for-byte as it was.
func TestReadTruncatedLeavesStateIntact(t *testing.T) {
	w := build(t)
	data := snapshotOf(t, w)

	target := build(t)
	before := viewState(target)
	for cut := 0; cut < len(data); cut++ {
		err := Read(target, bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(data))
		}
		if !strings.HasPrefix(err.Error(), "snapshot:") {
			t.Fatalf("truncation at %d: error lacks package context: %v", cut, err)
		}
		if !sameState(before, viewState(target)) {
			t.Fatalf("truncation at %d/%d mutated the warehouse: %v", cut, len(data), err)
		}
	}
	// A mid-stream cut must read as truncation, not a clean end of input.
	err := Read(target, bytes.NewReader(data[:len(data)/2]))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-stream truncation not reported as unexpected EOF: %v", err)
	}
	// And the intact snapshot must still restore fine afterwards.
	if err := Read(target, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
}

// TestReadTrailingGarbage: bytes after the checksum mean the input is not a
// snapshot (concatenated, padded, or corrupt) — reject, without mutating.
func TestReadTrailingGarbage(t *testing.T) {
	w := build(t)
	data := snapshotOf(t, w)

	for _, extra := range [][]byte{{0x00}, []byte("junk"), append([]byte(nil), data...)} {
		target := build(t)
		before := viewState(target)
		err := Read(target, bytes.NewReader(append(append([]byte(nil), data...), extra...)))
		if err == nil || !strings.Contains(err.Error(), "trailing garbage") {
			t.Fatalf("%d trailing bytes: %v", len(extra), err)
		}
		if !sameState(before, viewState(target)) {
			t.Fatalf("%d trailing bytes mutated the warehouse", len(extra))
		}
	}
}

// TestReadCorruptionLeavesStateIntact: every single-byte corruption of the
// snapshot either fails cleanly (warehouse untouched) or — never — succeeds
// with wrong data. The CRC trailer makes the "accepted" arm impossible.
func TestReadCorruptionLeavesStateIntact(t *testing.T) {
	w := build(t)
	data := snapshotOf(t, w)

	target := build(t)
	before := viewState(target)
	for pos := 0; pos < len(data); pos++ {
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0xFF
		if err := Read(target, bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("bit flip at %d/%d accepted", pos, len(data))
		}
		if !sameState(before, viewState(target)) {
			t.Fatalf("bit flip at %d/%d mutated the warehouse", pos, len(data))
		}
	}
}

// TestReadHugeLengthPrefix: a corrupt length prefix claiming billions of
// rows must fail on decode, not attempt a giant allocation.
func TestReadHugeLengthPrefix(t *testing.T) {
	w := build(t)
	data := snapshotOf(t, w)

	// Splice an implausible string length right after the magic: the view
	// name of the first view becomes 2^40 bytes long.
	corrupt := append([]byte(nil), data[:len(magic)+1]...)
	corrupt = append(corrupt, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) // uvarint 2^42
	corrupt = append(corrupt, data[len(magic)+1:]...)

	target := build(t)
	before := viewState(target)
	if err := Read(target, bytes.NewReader(corrupt)); err == nil {
		t.Fatal("implausible length prefix accepted")
	}
	if !sameState(before, viewState(target)) {
		t.Fatal("implausible length prefix mutated the warehouse")
	}
}
