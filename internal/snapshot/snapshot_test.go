package snapshot

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/relation"
)

var (
	schemaR = relation.Schema{{Name: "a", Kind: relation.KindInt}, {Name: "b", Kind: relation.KindInt}}
)

func intRow(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.NewInt(v)
	}
	return t
}

// build creates a warehouse with one base view, one SPJ view, and one
// aggregate view (SUM + MIN, so accumulator value-multisets round-trip).
func build(t testing.TB) *core.Warehouse {
	t.Helper()
	w := core.New(core.Options{})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.DefineBase("R", schemaR))
	jb := algebra.NewBuilder().From("r", "R", schemaR)
	jb.Where(&algebra.Binary{Op: algebra.OpGt, L: jb.Col("r.b"), R: &algebra.Const{Value: relation.NewInt(0)}}).
		SelectCol("r.a").SelectCol("r.b")
	jDef := jb.MustBuild()
	must(w.DefineDerived("J", jDef))
	ab := algebra.NewBuilder().From("j", "J", jDef.OutputSchema())
	ab.GroupByCol("j.a").
		Agg("total", delta.AggSum, ab.Col("j.b")).
		Agg("lo", delta.AggMin, ab.Col("j.b"))
	must(w.DefineDerived("A", ab.MustBuild()))
	must(w.LoadBase("R", []relation.Tuple{
		intRow(1, 10), intRow(1, 10), intRow(1, 3), intRow(2, 7), intRow(3, -5),
	}))
	must(w.RefreshAll())
	return w
}

func snapshotOf(t testing.TB, w *core.Warehouse) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(w, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	w := build(t)
	data := snapshotOf(t, w)

	// Restore into a freshly declared (empty) warehouse.
	fresh := build(t)
	for _, name := range fresh.ViewNames() {
		v := fresh.MustView(name)
		if v.Table() != nil {
			v.Table().Clear()
		}
		if v.AggStore() != nil {
			v.AggStore().Clear()
		}
	}
	if err := Read(fresh, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	for _, name := range w.ViewNames() {
		a, b := w.MustView(name).SortedRows(), fresh.MustView(name).SortedRows()
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d rows", name, len(a), len(b))
		}
		for i := range a {
			if relation.CompareTuples(a[i].Tuple, b[i].Tuple) != 0 || a[i].Count != b[i].Count {
				t.Fatalf("%s row %d: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
	// The restored warehouse must be fully operational: stage an update
	// that deletes the aggregate's current minimum and verify.
	d := delta.New(schemaR)
	d.Add(intRow(1, 3), -1)
	d.Add(intRow(2, 100), 1)
	if err := fresh.StageDelta("R", d); err != nil {
		t.Fatal(err)
	}
	for _, step := range []struct {
		comp string
		over []string
		inst string
	}{
		{comp: "J", over: []string{"R"}}, {inst: "R"},
		{comp: "A", over: []string{"J"}}, {inst: "J"}, {inst: "A"},
	} {
		var err error
		if step.comp != "" {
			_, err = fresh.Compute(step.comp, step.over)
		} else {
			_, err = fresh.Install(step.inst)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := fresh.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	rows := fresh.MustView("A").SortedRows()
	// Group 1 lost its min (3): lo becomes 10, total 20.
	if rows[0].Tuple.String() != "(1, 20, 10)" {
		t.Errorf("A after update = %v", rows)
	}
}

func TestWriteRefusesPending(t *testing.T) {
	w := build(t)
	d := delta.New(schemaR)
	d.Add(intRow(9, 9), 1)
	if err := w.StageDelta("R", d); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(w, &buf); err == nil || !strings.Contains(err.Error(), "pending") {
		t.Errorf("Write over pending changes: %v", err)
	}
	if err := Read(w, bytes.NewReader(nil)); err == nil || !strings.Contains(err.Error(), "pending") {
		t.Errorf("Read over pending changes: %v", err)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	w := build(t)
	data := snapshotOf(t, w)

	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": append([]byte("NOTMAGIC"), data[8:]...),
		"truncated": data[:len(data)/2],
	}
	// Flip a payload byte: checksum must catch it.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0xFF
	cases["bitflip"] = flipped

	for name, corrupt := range cases {
		fresh := build(t)
		if err := Read(fresh, bytes.NewReader(corrupt)); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestReadRejectsCatalogMismatch(t *testing.T) {
	w := build(t)
	data := snapshotOf(t, w)

	// A catalog with fewer views.
	small := core.New(core.Options{})
	if err := small.DefineBase("R", schemaR); err != nil {
		t.Fatal(err)
	}
	if err := Read(small, bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "views") {
		t.Errorf("view-count mismatch accepted: %v", err)
	}

	// Same view count, different names.
	renamed := core.New(core.Options{})
	for _, n := range []string{"X", "Y", "Z"} {
		if err := renamed.DefineBase(n, schemaR); err != nil {
			t.Fatal(err)
		}
	}
	if err := Read(renamed, bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "expects") {
		t.Errorf("name mismatch accepted: %v", err)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	// Two snapshots of equal state may differ byte-wise (map iteration
	// order), but restoring each must give identical warehouses.
	w := build(t)
	d1, d2 := snapshotOf(t, w), snapshotOf(t, w)
	for _, data := range [][]byte{d1, d2} {
		fresh := build(t)
		if err := Read(fresh, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
		for _, name := range w.ViewNames() {
			a, b := w.MustView(name).SortedRows(), fresh.MustView(name).SortedRows()
			if len(a) != len(b) {
				t.Fatalf("%s row counts differ", name)
			}
		}
	}
}

// TestRandomizedRoundTrips snapshots randomized warehouse states (random
// data, after random incremental updates) and restores each into a fresh
// catalog, requiring exact state equality.
func TestRandomizedRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		w := build(t)
		// Replace the fixture data with random rows.
		w.MustView("R").Table().Clear()
		var rows []relation.Tuple
		for i := 0; i < 5+rng.Intn(40); i++ {
			rows = append(rows, intRow(rng.Int63n(6), rng.Int63n(20)-5))
		}
		if err := w.LoadBase("R", rows); err != nil {
			t.Fatal(err)
		}
		if err := w.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		// Random incremental window so aggregate accumulators hold history.
		d := delta.New(schemaR)
		for _, r := range w.MustView("R").SortedRows() {
			if rng.Intn(3) == 0 {
				d.Add(r.Tuple, -1)
			}
		}
		d.Add(intRow(rng.Int63n(6), rng.Int63n(20)-5), 1)
		if err := w.StageDelta("R", d); err != nil {
			t.Fatal(err)
		}
		for _, step := range []struct {
			comp string
			over []string
			inst string
		}{
			{comp: "J", over: []string{"R"}}, {inst: "R"},
			{comp: "A", over: []string{"J"}}, {inst: "J"}, {inst: "A"},
		} {
			var err error
			if step.comp != "" {
				_, err = w.Compute(step.comp, step.over)
			} else {
				_, err = w.Install(step.inst)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		data := snapshotOf(t, w)
		fresh := build(t)
		if err := Read(fresh, bytes.NewReader(data)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, name := range w.ViewNames() {
			a, b := w.MustView(name).SortedRows(), fresh.MustView(name).SortedRows()
			if len(a) != len(b) {
				t.Fatalf("trial %d: %s: %d vs %d rows", trial, name, len(a), len(b))
			}
			for i := range a {
				if relation.CompareTuples(a[i].Tuple, b[i].Tuple) != 0 || a[i].Count != b[i].Count {
					t.Fatalf("trial %d: %s row %d differs", trial, name, i)
				}
			}
		}
		if err := fresh.VerifyAll(); err != nil {
			t.Fatalf("trial %d: restored warehouse inconsistent: %v", trial, err)
		}
	}
}

func TestAccumEncodeRoundTrip(t *testing.T) {
	specs := []delta.AggSpec{
		{Kind: delta.AggSum, ValueKind: relation.KindFloat},
		{Kind: delta.AggMin, ValueKind: relation.KindInt},
		{Kind: delta.AggCount, ValueKind: relation.KindInt},
	}
	for _, spec := range specs {
		a := delta.NewAccum(spec)
		a.Add(relation.NewFloat(2.5), 3)
		if spec.Kind == delta.AggMin {
			a = delta.NewAccum(spec)
			a.Add(relation.NewInt(7), 2)
			a.Add(relation.NewInt(9), 1)
		}
		raw := a.AppendBinary(nil)
		dec, err := delta.DecodeAccum(bytes.NewReader(raw), spec)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if relation.Compare(a.Output(3), dec.Output(3)) != 0 {
			t.Errorf("%v: %v vs %v", spec, a.Output(3), dec.Output(3))
		}
	}
	// Corrupt accumulator data errors out.
	if _, err := delta.DecodeAccum(bytes.NewReader(nil), specs[0]); err == nil {
		t.Errorf("empty accumulator accepted")
	}
}
