package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotRead throws arbitrary bytes at the snapshot decoder. The
// invariants: Read never panics; a failed Read leaves the warehouse exactly
// as it was; a successful Read yields a state that round-trips through
// Write/Read to the same bags.
func FuzzSnapshotRead(f *testing.F) {
	w := build(f)
	valid := snapshotOf(f, w)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("WHSNAP01"))
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), 0x00))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		target := build(t)
		before := viewState(target)
		if err := Read(target, bytes.NewReader(data)); err != nil {
			if !sameState(before, viewState(target)) {
				t.Fatalf("failed Read mutated the warehouse: %v", err)
			}
			return
		}
		// Accepted input: the restored state must round-trip.
		got := viewState(target)
		var buf bytes.Buffer
		if err := Write(target, &buf); err != nil {
			t.Fatalf("re-snapshotting accepted state: %v", err)
		}
		again := build(t)
		if err := Read(again, bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-reading re-snapshot: %v", err)
		}
		if !sameState(got, viewState(again)) {
			t.Fatal("accepted snapshot does not round-trip")
		}
	})
}
