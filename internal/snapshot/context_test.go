package snapshot

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// TestWriteContextCancelled: a cancelled context stops the write with the
// context's error, and the truncated stream it leaves behind is rejected by
// Read — so a half-written snapshot can never restore, let alone restore
// silently wrong state.
func TestWriteContextCancelled(t *testing.T) {
	w := build(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var buf bytes.Buffer
	err := WriteContext(ctx, w, &buf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled write returned %v", err)
	}

	// Whatever bytes escaped before the cancellation must not restore.
	if buf.Len() > 0 {
		if rerr := Read(build(t), bytes.NewReader(buf.Bytes())); rerr == nil {
			t.Fatal("truncated snapshot restored cleanly")
		}
	}

	// The same warehouse snapshots fine once the pressure is off.
	buf.Reset()
	if err := WriteContext(context.Background(), w, &buf); err != nil {
		t.Fatal(err)
	}
	if err := Read(build(t), bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}
