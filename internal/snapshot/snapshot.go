// Package snapshot persists and restores the materialized state of a
// warehouse in a compact, versioned binary format.
//
// A snapshot stores data only — view names, row bags and aggregate group
// states — not view definitions: the catalog is code, so restoring requires
// a warehouse whose catalog (names, schemas, aggregate specs) matches the
// one the snapshot was taken from. This is the classic "fast warm restart"
// split: re-declare the views, load the snapshot, and the warehouse is
// ready for the next update window without replaying history or
// recomputing summary tables.
//
// Snapshots are only taken of quiescent warehouses (no staged or
// uninstalled changes); Write refuses otherwise, because pending delta
// state is transient to one update window by design.
package snapshot

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc64"
	"io"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/relation"
)

// magic identifies the format; the trailing digits version it.
const magic = "WHSNAP01"

const (
	kindTable byte = 0
	kindAgg   byte = 1
)

// Write serializes the warehouse's materialized state to out.
func Write(w *core.Warehouse, out io.Writer) error {
	return WriteContext(context.Background(), w, out)
}

// cancelCheckRows is how many rows WriteContext streams between context
// checks — frequent enough that cancellation stops a large snapshot within
// microseconds, rare enough to stay off the encode hot path.
const cancelCheckRows = 1 << 12

// WriteContext is Write observing ctx: the write stops — between views and
// every few thousand rows within one — as soon as ctx is cancelled, and
// returns ctx's error. A cancelled write leaves out holding a truncated
// stream with no CRC trailer, which Read rejects outright; callers writing
// checkpoint files must still write to a temp file and rename only on
// success, so a cancelled checkpoint can never be adopted.
func WriteContext(ctx context.Context, w *core.Warehouse, out io.Writer) error {
	if pending := w.PendingViews(); len(pending) > 0 {
		return fmt.Errorf("snapshot: warehouse has pending changes on %v; finish the update window first", pending)
	}
	bw := bufio.NewWriter(out)
	crc := crc64.New(crcTable)
	dst := io.MultiWriter(bw, crc)

	if _, err := io.WriteString(dst, magic); err != nil {
		return err
	}
	names := w.ViewNames()
	if err := writeUvarint(dst, uint64(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("snapshot: write cancelled before %s: %w", name, err)
		}
		v := w.MustView(name)
		if err := writeString(dst, name); err != nil {
			return err
		}
		if agg := v.AggStore(); agg != nil {
			if err := writeByte(dst, kindAgg); err != nil {
				return err
			}
			if err := writeUvarint(dst, uint64(agg.Cardinality())); err != nil {
				return err
			}
			var werr error
			var row int
			agg.ScanGroups(func(groupKey string, support int64, accums []*delta.Accum) bool {
				if row++; row%cancelCheckRows == 0 {
					if werr = ctx.Err(); werr != nil {
						werr = fmt.Errorf("snapshot: write cancelled in %s: %w", name, werr)
						return false
					}
				}
				if werr = writeString(dst, groupKey); werr != nil {
					return false
				}
				if werr = writeVarint(dst, support); werr != nil {
					return false
				}
				for _, a := range accums {
					if werr = writeBytes(dst, a.AppendBinary(nil)); werr != nil {
						return false
					}
				}
				return true
			})
			if werr != nil {
				return werr
			}
			continue
		}
		tbl := v.Table()
		if err := writeByte(dst, kindTable); err != nil {
			return err
		}
		if err := writeUvarint(dst, uint64(tbl.DistinctCount())); err != nil {
			return err
		}
		var werr error
		var row int
		tbl.Scan(func(tup relation.Tuple, count int64) bool {
			if row++; row%cancelCheckRows == 0 {
				if werr = ctx.Err(); werr != nil {
					werr = fmt.Errorf("snapshot: write cancelled in %s: %w", name, werr)
					return false
				}
			}
			if werr = writeString(dst, tup.Encode()); werr != nil {
				return false
			}
			werr = writeVarint(dst, count)
			return werr == nil
		})
		if werr != nil {
			return werr
		}
	}
	// Trailer: CRC of everything before it.
	sum := crc.Sum64()
	var tail [8]byte
	binary.BigEndian.PutUint64(tail[:], sum)
	if _, err := bw.Write(tail[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// stagedPrealloc caps slice preallocation from length prefixes: a corrupt
// or hostile prefix can claim billions of rows, so capacity beyond this is
// earned by actually decoding rows, not claimed up front.
const stagedPrealloc = 1 << 16

type stagedRow struct {
	tup   relation.Tuple
	count int64
}

type stagedGroup struct {
	key     string
	support int64
	accums  []*delta.Accum
}

type stagedView struct {
	name   string
	isAgg  bool
	rows   []stagedRow
	groups []stagedGroup
}

// Read restores a snapshot into w, whose catalog must match the snapshot's
// (same view names in the same order, schema-compatible rows). The entire
// stream is decoded and verified — length prefixes, row encodings,
// accumulator states, the CRC trailer, and that nothing trails it — into
// staging buffers first; the warehouse is mutated only after every check
// has passed, so on error w is left exactly as it was.
func Read(w *core.Warehouse, in io.Reader) error {
	if pending := w.PendingViews(); len(pending) > 0 {
		return fmt.Errorf("snapshot: refusing to restore over pending changes on %v", pending)
	}
	// Hash exactly the bytes consumed (a tee around bufio would hash its
	// read-ahead), so the trailer check is positionally correct.
	br := &crcReader{r: bufio.NewReader(in), h: crc64.New(crcTable)}

	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("snapshot: reading header: %w", truncErr(err))
	}
	if string(head) != magic {
		return fmt.Errorf("snapshot: bad magic %q (want %q)", head, magic)
	}
	nViews, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("snapshot: reading view count: %w", truncErr(err))
	}
	names := w.ViewNames()
	if uint64(len(names)) != nViews {
		return fmt.Errorf("snapshot: holds %d views but catalog defines %d", nViews, len(names))
	}
	staged := make([]stagedView, 0, len(names))
	for _, want := range names {
		name, err := readString(br)
		if err != nil {
			return fmt.Errorf("snapshot: reading view name: %w", truncErr(err))
		}
		if name != want {
			return fmt.Errorf("snapshot: view %q where catalog expects %q (definition order must match)", name, want)
		}
		kind, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("snapshot: reading view kind: %w", truncErr(err))
		}
		v := w.MustView(name)
		sv := stagedView{name: name}
		switch kind {
		case kindTable:
			tbl := v.Table()
			if tbl == nil {
				return fmt.Errorf("snapshot: view %q is aggregate in the catalog but plain in the snapshot", name)
			}
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("snapshot: %s: reading row count: %w", name, truncErr(err))
			}
			width := len(tbl.Schema())
			sv.rows = make([]stagedRow, 0, min(n, stagedPrealloc))
			for i := uint64(0); i < n; i++ {
				enc, err := readString(br)
				if err != nil {
					return fmt.Errorf("snapshot: %s: reading row: %w", name, truncErr(err))
				}
				tup, err := relation.DecodeTuple(enc)
				if err != nil {
					return fmt.Errorf("snapshot: %s: corrupt row: %w", name, err)
				}
				if len(tup) != width {
					return fmt.Errorf("snapshot: %s: row arity %d does not match schema width %d", name, len(tup), width)
				}
				count, err := binary.ReadVarint(br)
				if err != nil {
					return fmt.Errorf("snapshot: %s: reading count: %w", name, truncErr(err))
				}
				if count <= 0 {
					return fmt.Errorf("snapshot: %s: non-positive row count %d", name, count)
				}
				sv.rows = append(sv.rows, stagedRow{tup, count})
			}
		case kindAgg:
			agg := v.AggStore()
			if agg == nil {
				return fmt.Errorf("snapshot: view %q is plain in the catalog but aggregate in the snapshot", name)
			}
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("snapshot: %s: reading group count: %w", name, truncErr(err))
			}
			specs := agg.Specs()
			sv.isAgg = true
			sv.groups = make([]stagedGroup, 0, min(n, stagedPrealloc))
			for i := uint64(0); i < n; i++ {
				groupKey, err := readString(br)
				if err != nil {
					return fmt.Errorf("snapshot: %s: reading group key: %w", name, truncErr(err))
				}
				if _, err := relation.DecodeTuple(groupKey); err != nil {
					return fmt.Errorf("snapshot: %s: corrupt group key: %w", name, err)
				}
				support, err := binary.ReadVarint(br)
				if err != nil {
					return fmt.Errorf("snapshot: %s: reading support: %w", name, truncErr(err))
				}
				if support <= 0 {
					return fmt.Errorf("snapshot: %s: non-positive group support %d", name, support)
				}
				accums := make([]*delta.Accum, len(specs))
				for j, spec := range specs {
					raw, err := readString(br)
					if err != nil {
						return fmt.Errorf("snapshot: %s: reading accumulator: %w", name, truncErr(err))
					}
					a, err := delta.DecodeAccum(&stringByteReader{s: raw}, spec)
					if err != nil {
						return fmt.Errorf("snapshot: %s: %w", name, err)
					}
					if !a.Valid() {
						return fmt.Errorf("snapshot: %s: accumulator %d of group %q is invalid", name, j, groupKey)
					}
					accums[j] = a
				}
				sv.groups = append(sv.groups, stagedGroup{groupKey, support, accums})
			}
		default:
			return fmt.Errorf("snapshot: unknown view kind %d", kind)
		}
		staged = append(staged, sv)
	}
	// Verify the CRC trailer over everything consumed so far.
	want := br.h.Sum64()
	var tail [8]byte
	if _, err := io.ReadFull(br.r, tail[:]); err != nil {
		return fmt.Errorf("snapshot: reading checksum: %w", truncErr(err))
	}
	if got := binary.BigEndian.Uint64(tail[:]); got != want {
		return fmt.Errorf("snapshot: checksum mismatch (file %x, computed %x)", got, want)
	}
	// The checksum is the last thing in a snapshot; trailing bytes mean the
	// file is not what it claims to be (concatenated, padded, or corrupt).
	switch _, err := br.r.ReadByte(); err {
	case io.EOF:
	case nil:
		return fmt.Errorf("snapshot: trailing garbage after checksum")
	default:
		return fmt.Errorf("snapshot: reading past checksum: %w", err)
	}

	// Everything verified — swap the staged state in.
	for _, sv := range staged {
		v := w.MustView(sv.name)
		if sv.isAgg {
			agg := v.AggStore()
			agg.Clear()
			for _, g := range sv.groups {
				if err := agg.RestoreGroup(g.key, g.support, g.accums); err != nil {
					// Unreachable: every RestoreGroup precondition was
					// checked during staging.
					return fmt.Errorf("snapshot: %s: %w", sv.name, err)
				}
			}
		} else {
			tbl := v.Table()
			tbl.Clear()
			for _, r := range sv.rows {
				tbl.Insert(r.tup, r.count)
			}
		}
	}
	return nil
}

// truncErr normalizes a bare io.EOF from a mid-stream read into
// io.ErrUnexpectedEOF so truncation errors read as truncation, not as a
// clean end of input.
func truncErr(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// crcReader hashes exactly the bytes handed to the caller.
type crcReader struct {
	r *bufio.Reader
	h hash.Hash64
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.h.Write([]byte{b})
	}
	return b, err
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.h.Write(p[:n])
	}
	return n, err
}

// stringByteReader is an io.ByteReader over a string.
type stringByteReader struct {
	s string
	i int
}

func (r *stringByteReader) ReadByte() (byte, error) {
	if r.i >= len(r.s) {
		return 0, io.EOF
	}
	b := r.s[r.i]
	r.i++
	return b, nil
}

func writeByte(w io.Writer, b byte) error {
	_, err := w.Write([]byte{b})
	return err
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeVarint(w io.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func writeBytes(w io.Writer, b []byte) error {
	if err := writeUvarint(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// byteAndBlockReader is what the decoder needs: varints plus bulk reads.
type byteAndBlockReader interface {
	io.ByteReader
	io.Reader
}

func readString(r byteAndBlockReader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<31 {
		return "", fmt.Errorf("snapshot: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
