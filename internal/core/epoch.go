package core

import (
	"fmt"
	"sync"
)

// Epoch-based versioned snapshots. Every published warehouse state is an
// epoch: an immutable *Warehouse plus a monotonically increasing number.
// Readers pin the current epoch, evaluate any number of queries against its
// (frozen) state, and unpin; an update window executes on a copy-on-write
// clone and, on commit, flips the registry to the successor in one atomic
// step. Because tables are COW at relation granularity (storage.Table.Clone),
// an epoch flip shares every untouched relation with its predecessor —
// keeping N epochs alive costs only the relations that changed between them.
//
// Garbage collection is by reference count: a retired epoch (no longer
// current) is dropped from the registry when its last reader unpins, at
// which point Go's collector reclaims any relations no surviving epoch
// shares.

// Epoch is one immutable published version of the warehouse state.
type Epoch struct {
	n    uint64
	w    *Warehouse
	refs int // pinned readers; guarded by the owning registry's mutex
}

// Number returns the epoch's sequence number (the first published epoch of
// a registry is 1).
func (e *Epoch) Number() uint64 { return e.n }

// Epochs is the registry of published warehouse versions: one current
// epoch, plus retired epochs kept alive by pinned readers.
type Epochs struct {
	mu      sync.Mutex
	current *Epoch
	live    map[uint64]*Epoch // current + every retired epoch with refs > 0
}

// NewEpochs publishes w as epoch 1 of a fresh registry. The caller must
// treat w's materialized state as immutable from this point on; updates go
// through clone-and-Flip.
func NewEpochs(w *Warehouse) *Epochs {
	e := &Epoch{n: 1, w: w}
	return &Epochs{current: e, live: map[uint64]*Epoch{1: e}}
}

// Current returns the current epoch's number.
func (r *Epochs) Current() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.current.n
}

// Live returns how many epochs the registry keeps alive (the current one
// plus retired epochs still pinned by readers).
func (r *Epochs) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// Pin takes a read reference on the current epoch. The returned pin's
// warehouse is immutable — it never observes a concurrent window's installs
// — and stays valid until Unpin, regardless of how many flips happen in
// between. Pins are cheap; take one per consistent read set.
func (r *Epochs) Pin() *Pin {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.current.refs++
	return &Pin{r: r, e: r.current}
}

// Flip atomically publishes next as the new current epoch and returns its
// number. The retired predecessor stays alive while readers hold pins on it
// and is garbage-collected when the last one unpins. next must not be
// mutated after the flip.
func (r *Epochs) Flip(next *Warehouse) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.current
	e := &Epoch{n: old.n + 1, w: next}
	r.current = e
	r.live[e.n] = e
	if old.refs == 0 {
		delete(r.live, old.n)
	}
	return e.n
}

// Pin is a read reference on one epoch. It is not safe for concurrent use
// by multiple goroutines; each reader takes its own.
type Pin struct {
	r    *Epochs
	e    *Epoch
	done bool
}

// Epoch returns the pinned epoch's number.
func (p *Pin) Epoch() uint64 { return p.e.n }

// Warehouse returns the pinned state. Callers must only read it.
func (p *Pin) Warehouse() *Warehouse { return p.e.w }

// Unpin releases the reference. A retired epoch whose last pin is released
// is dropped from the registry so its unshared relations can be collected.
// Unpin is idempotent.
func (p *Pin) Unpin() {
	if p.done {
		return
	}
	p.done = true
	r := p.r
	r.mu.Lock()
	defer r.mu.Unlock()
	p.e.refs--
	if p.e.refs < 0 {
		panic(fmt.Sprintf("core: epoch %d unpinned more times than pinned", p.e.n))
	}
	if p.e.refs == 0 && p.e != r.current {
		delete(r.live, p.e.n)
	}
}
