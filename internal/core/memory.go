package core

import (
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/memory"
)

// This file attaches the window-wide memory budget (internal/memory) to the
// warehouse. Like the shared registry, a memManager lives for one update
// window: AttachMemory installs it before the first step, every build-side
// materialization draws on its budget (see buildLocal and the registry's
// admission in shared.go), and DetachMemory reports the window's spill
// accounting and removes the spill directory.
//
// The budget governs hash-table state — term-local builds, per-Compute
// cached builds, and the shared registry's retained entries. Driver-row
// materializations are not charged: they are consumed streaming, morsel by
// morsel, and never held beyond the term that scans them.
//
// The memory layer is disabled under Options.UseIndexes: the indexed path
// counts probes as Work, and pass-wise probing would multiply those probes,
// perturbing the linear work metric that recovery and replication verify.

// residentFraction is the share of the budget available to resident builds;
// the remainder is headroom for the forced reservations of spill-partition
// loads, keeping the window's true peak under the configured budget.
const residentFraction = 0.75

// memManager is the per-window memory state: the budget, the spill
// directory, the fault injector for spill I/O, and window-wide totals.
type memManager struct {
	budget   *memory.Budget
	resLimit int64 // admission cap for resident builds (headroom below limit)
	dir      string
	inj      *faults.Injector
	nextID   atomic.Int64 // spill file naming

	spills       atomic.Int64
	spilledBytes atomic.Int64
	reReadBytes  atomic.Int64
}

// MemStats summarizes a detached memory manager for reporting.
type MemStats struct {
	// SpillCount is the number of build tables spilled to disk.
	SpillCount int
	// SpilledBytes is the total bytes written to spill files.
	SpilledBytes int64
	// SpillReReadBytes is the total bytes re-read from spill files during
	// partition-wise probing.
	SpillReReadBytes int64
	// PeakReservedBytes is the high-water mark of reserved build-state
	// bytes, including resident spill partitions during probing passes.
	PeakReservedBytes int64
}

// AttachMemory installs a memory budget on the warehouse for the coming
// window, spilling oversized builds under dir (created if needed; a per-run
// temp dir when dir is empty). It reports false — attaching nothing — when
// no budget is configured, indexes are enabled (see the file comment), or a
// manager is already attached. Not safe to call while expressions execute.
func (w *Warehouse) AttachMemory(dir string, inj *faults.Injector) (bool, error) {
	if w.opts.MemoryBudgetBytes <= 0 || w.opts.UseIndexes || w.mem != nil {
		return false, nil
	}
	if dir == "" {
		d, err := os.MkdirTemp("", "whspill-")
		if err != nil {
			return false, fmt.Errorf("core: creating spill dir: %w", err)
		}
		dir = d
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, fmt.Errorf("core: creating spill dir: %w", err)
	}
	limit := w.opts.MemoryBudgetBytes
	resLimit := int64(float64(limit) * residentFraction)
	if resLimit < 1 {
		resLimit = 1
	}
	w.mem = &memManager{
		budget:   memory.NewBudget(limit),
		resLimit: resLimit,
		dir:      dir,
		inj:      inj,
	}
	return true, nil
}

// DetachMemory removes the manager, deletes the spill directory, and returns
// the window's memory stats. After a crash-class fault the directory is left
// in place — a killed process removes nothing — so the stale-dir sweep on
// warehouse open (see OpenJournal) is exercised by the same machinery a real
// crash would leave behind. Safe to call when nothing is attached.
func (w *Warehouse) DetachMemory() MemStats {
	mm := w.mem
	w.mem = nil
	if mm == nil {
		return MemStats{}
	}
	if !mm.inj.Crashed() {
		os.RemoveAll(mm.dir)
	}
	return MemStats{
		SpillCount:        int(mm.spills.Load()),
		SpilledBytes:      mm.spilledBytes.Load(),
		SpillReReadBytes:  mm.reReadBytes.Load(),
		PeakReservedBytes: mm.budget.Peak(),
	}
}

// partTarget is the on-disk partition size spilling aims for: small enough
// that the one-resident-partition-per-spilled-step working set of a probing
// pass fits comfortably in the budget's headroom, large enough to bound the
// file count.
func (mm *memManager) partTarget() int64 {
	t := mm.budget.Limit() / 8
	if t < 64<<10 {
		t = 64 << 10
	}
	return t
}

// memUse is one Compute's handle on the window memory manager: per-Compute
// spill counters feeding CompReport, mirroring sharedUse. A nil memUse (no
// budget attached) is inert.
type memUse struct {
	mm           *memManager
	spills       atomic.Int64
	spilledBytes atomic.Int64
	reRead       atomic.Int64
}

func newMemUse(mm *memManager) *memUse {
	if mm == nil {
		return nil
	}
	return &memUse{mm: mm}
}

// fill copies the counters into a CompReport; a nil receiver leaves the
// report untouched.
func (mu *memUse) fill(rep *CompReport) {
	if mu == nil {
		return
	}
	rep.SpillCount = int(mu.spills.Load())
	rep.SpilledBytes = mu.spilledBytes.Load()
	rep.SpillReReadBytes = mu.reRead.Load()
}

// estimateRowsBytes estimates the resident hash-table footprint of a
// materialized row set, using the same constant the shared registry charges
// with so one budget sees consistent units.
func estimateRowsBytes(rows []prow) int64 {
	width := 1
	if len(rows) > 0 {
		width = len(rows[0].row)
	}
	return cost.EstimateMaterializedBytes(int64(len(rows)), width)
}
