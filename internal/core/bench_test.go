package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/relation"
)

// benchWarehouse builds R ⋈ S with n rows per base and a staged delta of
// n/10 changes.
func benchWarehouse(b *testing.B, n int) *Warehouse {
	b.Helper()
	w := New(Options{})
	if err := w.DefineBase("R", schemaR); err != nil {
		b.Fatal(err)
	}
	if err := w.DefineBase("S", schemaS); err != nil {
		b.Fatal(err)
	}
	jb := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
	jb.Join("r.b", "s.b").SelectCol("r.a").SelectCol("s.c")
	if err := w.DefineDerived("J", jb.MustBuild()); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var rRows, sRows []relation.Tuple
	for i := 0; i < n; i++ {
		rRows = append(rRows, intRow(int64(i), rng.Int63n(int64(n/4+1))))
		sRows = append(sRows, intRow(rng.Int63n(int64(n/4+1)), int64(i)))
	}
	if err := w.LoadBase("R", rRows); err != nil {
		b.Fatal(err)
	}
	if err := w.LoadBase("S", sRows); err != nil {
		b.Fatal(err)
	}
	if err := w.RefreshAll(); err != nil {
		b.Fatal(err)
	}
	d := delta.New(schemaR)
	for i := 0; i < n/10; i++ {
		d.Add(intRow(int64(n+i), rng.Int63n(int64(n/4+1))), 1)
	}
	if err := w.StageDelta("R", d); err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkComputeScaling measures 1-way Comp cost as base size grows.
func BenchmarkComputeScaling(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		w := benchWarehouse(b, n)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run := w.Clone()
				if _, err := run.Compute("J", []string{"R"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInstallScaling measures install throughput.
func BenchmarkInstallScaling(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		w := benchWarehouse(b, n)
		b.Run(fmt.Sprintf("delta=%d", n/10), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run := w.Clone()
				if _, err := run.Install("R"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecomputeVsIncremental contrasts a full view rebuild against the
// incremental window for the same change batch — the reason incremental
// maintenance exists.
func BenchmarkRecomputeVsIncremental(b *testing.B) {
	w := benchWarehouse(b, 5000)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run := w.Clone()
			if _, err := run.Compute("J", []string{"R"}); err != nil {
				b.Fatal(err)
			}
			if _, err := run.Install("R"); err != nil {
				b.Fatal(err)
			}
			if _, err := run.Install("J"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run := w.Clone()
			if _, err := run.Install("R"); err != nil {
				b.Fatal(err)
			}
			if err := run.RefreshAll(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
