package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/relation"
)

// benchWarehouse builds R ⋈ S with n rows per base and a staged delta of
// n/10 changes.
func benchWarehouse(b *testing.B, n int) *Warehouse {
	b.Helper()
	w := New(Options{})
	if err := w.DefineBase("R", schemaR); err != nil {
		b.Fatal(err)
	}
	if err := w.DefineBase("S", schemaS); err != nil {
		b.Fatal(err)
	}
	jb := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
	jb.Join("r.b", "s.b").SelectCol("r.a").SelectCol("s.c")
	if err := w.DefineDerived("J", jb.MustBuild()); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var rRows, sRows []relation.Tuple
	for i := 0; i < n; i++ {
		rRows = append(rRows, intRow(int64(i), rng.Int63n(int64(n/4+1))))
		sRows = append(sRows, intRow(rng.Int63n(int64(n/4+1)), int64(i)))
	}
	if err := w.LoadBase("R", rRows); err != nil {
		b.Fatal(err)
	}
	if err := w.LoadBase("S", sRows); err != nil {
		b.Fatal(err)
	}
	if err := w.RefreshAll(); err != nil {
		b.Fatal(err)
	}
	d := delta.New(schemaR)
	for i := 0; i < n/10; i++ {
		d.Add(intRow(int64(n+i), rng.Int63n(int64(n/4+1))), 1)
	}
	if err := w.StageDelta("R", d); err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkComputeScaling measures 1-way Comp cost as base size grows.
func BenchmarkComputeScaling(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		w := benchWarehouse(b, n)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run := w.Clone()
				if _, err := run.Compute("J", []string{"R"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInstallScaling measures install throughput.
func BenchmarkInstallScaling(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		w := benchWarehouse(b, n)
		b.Run(fmt.Sprintf("delta=%d", n/10), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run := w.Clone()
				if _, err := run.Install("R"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecomputeVsIncremental contrasts a full view rebuild against the
// incremental window for the same change batch — the reason incremental
// maintenance exists.
func BenchmarkRecomputeVsIncremental(b *testing.B) {
	w := benchWarehouse(b, 5000)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run := w.Clone()
			if _, err := run.Compute("J", []string{"R"}); err != nil {
				b.Fatal(err)
			}
			if _, err := run.Install("R"); err != nil {
				b.Fatal(err)
			}
			if _, err := run.Install("J"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run := w.Clone()
			if _, err := run.Install("R"); err != nil {
				b.Fatal(err)
			}
			if err := run.RefreshAll(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSpillBuild measures the raw spill machinery: partition a build's
// rows to CRC-framed spill files, then load every partition back as a hash
// table — one full Grace-style write + probe-load round trip.
func BenchmarkSpillBuild(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		rows := make([]prow, n)
		for i := range rows {
			rows[i] = prow{row: intRow(int64(i), int64(i)), count: 1}
		}
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			w := New(Options{MemoryBudgetBytes: 64 << 10})
			if ok, err := w.AttachMemory(b.TempDir(), nil); !ok || err != nil {
				b.Fatalf("AttachMemory = (%v, %v)", ok, err)
			}
			defer w.DetachMemory()
			mu := newMemUse(w.mem)
			est := estimateRowsBytes(rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sb, err := w.mem.spill(context.Background(), mu, rows, []int{1}, est)
				if err != nil {
					b.Fatal(err)
				}
				for k := range sb.parts {
					bt, g, err := sb.loadPart(context.Background(), mu, k)
					if err != nil {
						b.Fatal(err)
					}
					_ = bt
					g.Release()
				}
			}
		})
	}
}

// BenchmarkBoundedWindow contrasts the same update window run fully
// resident and under a budget that forces its builds through the spill
// path — the wall-clock price of bounded memory.
func BenchmarkBoundedWindow(b *testing.B) {
	const n = 10000
	for _, budget := range []int64{0, 1 << 20} {
		label := "unbounded"
		if budget > 0 {
			label = fmt.Sprintf("budget=%dKiB", budget>>10)
		}
		b.Run(label, func(b *testing.B) {
			w := benchWarehouse(b, n)
			w.opts.MemoryBudgetBytes = budget
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run := w.Clone()
				if budget > 0 {
					if ok, err := run.AttachMemory("", nil); !ok || err != nil {
						b.Fatalf("AttachMemory = (%v, %v)", ok, err)
					}
				}
				if _, err := run.Compute("J", []string{"R"}); err != nil {
					b.Fatal(err)
				}
				for _, v := range []string{"R", "J"} {
					if _, err := run.Install(v); err != nil {
						b.Fatal(err)
					}
				}
				if budget > 0 {
					if ms := run.DetachMemory(); ms.SpillCount == 0 {
						b.Fatal("bounded window never spilled")
					}
				}
			}
		})
	}
}
