package core

import (
	"context"
	"fmt"
	"path/filepath"

	"repro/internal/cost"
	"repro/internal/memory"
	"repro/internal/relation"
	"repro/internal/storage"
)

// This file implements Grace-style spilled builds: a build-side hash table
// that would exceed the window's memory budget is partitioned to CRC-framed
// temp files (internal/storage spill format) and probed partition-wise. Per
// pass, one partition per spilled step is loaded resident and ALL driver
// rows run through the normal pipeline; the pass odometer walks the cross
// product of each spilled step's partitions.
//
// Correctness: a final output row requires a match at every join step, and a
// spilled step's matching build row lives in exactly one partition (the
// partitioning is disjoint), so every output row is emitted in exactly one
// pass — the pass whose odometer selects the partitions holding all of its
// matches. Any disjoint partitioning works; rows are routed by key hash when
// the step has equi-keys (the classic Grace scheme) and round-robin
// otherwise (a cross product hashes every row to one bucket, which would
// defeat the partitioning).
//
// The linear work metric is untouched by construction: on the default
// (build) path a term's Work is fixed at plan time from cardinalities and
// pipeline.run contributes only index probes (zero without UseIndexes, under
// which the memory layer never attaches) — so spilling changes bytes moved,
// never Work, digests, or replication/recovery verification.

// spilledBuild is one build side partitioned to disk.
type spilledBuild struct {
	cols  []int
	parts []spillPart
}

// spillPart is one on-disk partition.
type spillPart struct {
	path     string
	rows     int64
	bytes    int64 // on-disk size
	estBytes int64 // resident hash-table estimate when loaded
}

// spill partitions rows to temp files under the manager's window directory.
// est is the rows' estimated resident footprint (sizes the partition count).
func (mm *memManager) spill(ctx context.Context, mu *memUse, rows []prow, cols []int, est int64) (*spilledBuild, error) {
	target := mm.partTarget()
	np := int(est/target) + 1
	if np < 2 {
		np = 2
	}
	if np > 256 {
		np = 256
	}
	id := mm.nextID.Add(1)
	writers := make([]*storage.SpillWriter, np)
	sb := &spilledBuild{cols: cols, parts: make([]spillPart, np)}
	for k := range writers {
		path := filepath.Join(mm.dir, fmt.Sprintf("b%d-p%d.spill", id, k))
		sw, err := storage.CreateSpill(path, mm.inj)
		if err != nil {
			for _, w := range writers {
				if w != nil {
					w.Close()
				}
			}
			return nil, err
		}
		writers[k] = sw
		sb.parts[k].path = path
	}
	key := make(relation.Tuple, len(cols))
	enc := make([]byte, 0, 64)
	var werr error
	for i := range rows {
		r := &rows[i]
		k := i % np
		if len(cols) > 0 {
			for ki, c := range cols {
				key[ki] = r.row[c]
			}
			enc = key.AppendEncoded(enc[:0])
			k = int(hashBytes(enc) % uint64(np))
		}
		if werr = writers[k].Append(ctx, r.row, r.count); werr != nil {
			break
		}
	}
	var total int64
	width := 1
	if len(rows) > 0 {
		width = len(rows[0].row)
	}
	for k, sw := range writers {
		if cerr := sw.Close(); werr == nil && cerr != nil {
			werr = cerr
		}
		total += sw.Bytes()
		sb.parts[k].rows = sw.Rows()
		sb.parts[k].bytes = sw.Bytes()
		sb.parts[k].estBytes = cost.EstimateMaterializedBytes(sw.Rows(), width)
	}
	if werr != nil {
		// Leftover files are reclaimed when the window's spill dir is
		// removed at detach (or swept on the next open after a crash).
		return nil, werr
	}
	mu.spills.Add(1)
	mu.spilledBytes.Add(total)
	mm.spills.Add(1)
	mm.spilledBytes.Add(total)
	return sb, nil
}

// loadPart re-reads partition k into a resident build table. The
// reservation is forced — a probing pass must hold one partition per spilled
// step to make progress — and still tracked, so PeakReservedBytes reports
// genuine residency; the partition-size target leaves headroom for it.
func (sb *spilledBuild) loadPart(ctx context.Context, mu *memUse, k int) (*buildTable, *memory.Grant, error) {
	part := &sb.parts[k]
	rows := make([]prow, 0, part.rows)
	n, err := storage.ReadSpill(ctx, part.path, mu.mm.inj, func(t relation.Tuple, c int64) error {
		rows = append(rows, prow{row: t, count: c})
		return nil
	})
	mu.reRead.Add(n)
	mu.mm.reReadBytes.Add(n)
	if err != nil {
		return nil, nil, err
	}
	g := mu.mm.budget.Reserve(part.estBytes)
	return newBuildTable(rows, sb.cols), g, nil
}

// runSpilled executes a pipeline with spilled build sides pass-wise:
// spilled lists the step indexes whose build is on disk, and the odometer
// walks the cross product of their partitions, loading one partition per
// spilled step resident per pass and running every driver row through the
// normal (possibly morsel-parallel) pipeline.
func (p *pipeline) runSpilled(rows []prow, sinks sinkFactory, env *evalEnv, spilled []int) (int64, error) {
	mu := env.memUse()
	counters := make([]int, len(spilled))
	var probed int64
	for {
		if err := env.ctxErr(); err != nil {
			return 0, err
		}
		grants := make([]*memory.Grant, 0, len(spilled))
		var passErr error
		for j, si := range spilled {
			bt, g, err := p.steps[si].spilled.loadPart(env.evalCtx(), mu, counters[j])
			if err != nil {
				passErr = err
				break
			}
			p.steps[si].build = bt
			grants = append(grants, g)
		}
		var n int64
		if passErr == nil {
			n, passErr = p.runResident(rows, sinks, env)
		}
		for _, si := range spilled {
			p.steps[si].build = nil
		}
		for _, g := range grants {
			g.Release()
		}
		if passErr != nil {
			return 0, passErr
		}
		probed += n
		// Advance the odometer; done when it wraps.
		j := len(spilled) - 1
		for ; j >= 0; j-- {
			counters[j]++
			if counters[j] < len(p.steps[spilled[j]].spilled.parts) {
				break
			}
			counters[j] = 0
		}
		if j < 0 {
			return probed, nil
		}
	}
}
