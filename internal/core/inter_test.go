package core

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/relation"
)

var (
	schemaD = relation.Schema{{Name: "k", Kind: relation.KindInt}, {Name: "x", Kind: relation.KindInt}}
	schemaA = relation.Schema{{Name: "k", Kind: relation.KindInt}, {Name: "y", Kind: relation.KindInt}}
	schemaB = relation.Schema{{Name: "y", Kind: relation.KindInt}, {Name: "z", Kind: relation.KindInt}}
)

// newInterWarehouse builds base D(k,x), A(k,y), B(y,z) and two sibling views
// Vi = D ⋈ A ⋈ B (d.k = a.k, a.y = b.y) with distinct selections — the join-
// intermediate sharing case: under Comp(Vi, {D}) the adjacent pair A ⋈ B is
// quiescent in every term, so both views can probe one shared intermediate.
func newInterWarehouse(t *testing.T, opts Options) *Warehouse {
	t.Helper()
	w := New(opts)
	for name, sch := range map[string]relation.Schema{"D": schemaD, "A": schemaA, "B": schemaB} {
		if err := w.DefineBase(name, sch); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 2; i++ {
		b := algebra.NewBuilder().From("d", "D", schemaD).From("a", "A", schemaA).From("b", "B", schemaB)
		b.Join("d.k", "a.k").Join("a.y", "b.y").
			Where(&algebra.Binary{Op: algebra.OpGt, L: b.Col("b.z"), R: &algebra.Const{Value: relation.NewInt(int64(i))}}).
			SelectCol("d.x").SelectCol("b.z")
		cq, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.DefineDerived(fmt.Sprintf("V%d", i), cq); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func loadInterData(t *testing.T, w *Warehouse) {
	t.Helper()
	var dRows, aRows, bRows []relation.Tuple
	for i := int64(0); i < 50; i++ {
		dRows = append(dRows, intRow(i, i*3))
		aRows = append(aRows, intRow(i, i%7))
	}
	for j := int64(0); j < 7; j++ {
		bRows = append(bRows, intRow(j, j*2))
	}
	for name, rows := range map[string][]relation.Tuple{"D": dRows, "A": aRows, "B": bRows} {
		if err := w.LoadBase(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	d := delta.New(schemaD)
	d.Add(intRow(3, 500), 1)
	d.Add(intRow(7, -1), 1)
	if err := w.StageDelta("D", d); err != nil {
		t.Fatal(err)
	}
}

// interHints hand-builds the joint-plan hints: both Comps read δD, and their
// A/B state reads are displaced by the elected A⋈B intermediate (matching
// what planner.AnalyzeSharingOpts emits for this strategy).
func interHints(t *testing.T, w *Warehouse) (*SharingHints, InterSpec) {
	t.Helper()
	var spec InterSpec
	found := false
	for _, pc := range PairCandidates(w.views["V1"].def) {
		if pc.ViewA == "A" && pc.ViewB == "B" {
			spec = InterSpec{ViewA: "A", ViewB: "B", Sig: pc.Sig}
			found = true
		}
	}
	if !found {
		t.Fatal("no A⋈B pair candidate in V1's definition")
	}
	dOp := SharedOperand{View: "D", Delta: true}
	h := &SharingHints{
		Consumers:      map[SharedOperand]int{dOp: 2},
		ByComp:         make(map[string][]SharedOperand),
		InterConsumers: map[InterSpec]int{spec: 2},
		InterByComp:    make(map[string][]InterSpec),
		EstRows:        map[SharedOperand]int64{dOp: 2},
		InterEstRows:   map[InterSpec]int64{spec: 50},
	}
	for i := 1; i <= 2; i++ {
		key := CompKey(fmt.Sprintf("V%d", i), []string{"D"})
		h.ByComp[key] = []SharedOperand{dOp}
		h.InterByComp[key] = []InterSpec{spec}
	}
	return h, spec
}

// TestSharedIntermediate: two sibling views probe one shared A⋈B
// intermediate. The second Compute hits the registry and reports the |A|+|B|
// operand scans it elided; the work metric and the final states are
// identical to an unshared run.
func TestSharedIntermediate(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("parallel=%v", parallel), func(t *testing.T) {
			opts := Options{ParallelTerms: parallel}
			plain := newInterWarehouse(t, opts)
			loadInterData(t, plain)
			opts.ShareComputation = true
			shared := newInterWarehouse(t, opts)
			loadInterData(t, shared)

			h, _ := interHints(t, shared)
			if !shared.AttachSharing(h) {
				t.Fatal("AttachSharing refused")
			}
			var plainReps, sharedReps []CompReport
			for i := 1; i <= 2; i++ {
				name := fmt.Sprintf("V%d", i)
				pr, err := plain.Compute(name, []string{"D"})
				if err != nil {
					t.Fatal(err)
				}
				sr, err := shared.Compute(name, []string{"D"})
				if err != nil {
					t.Fatal(err)
				}
				plainReps = append(plainReps, pr)
				sharedReps = append(sharedReps, sr)
			}
			stats := shared.DetachSharing()
			for i := range plainReps {
				if sharedReps[i].OperandTuples != plainReps[i].OperandTuples {
					t.Errorf("V%d: work %d with sharing, %d without — the metric must not move",
						i+1, sharedReps[i].OperandTuples, plainReps[i].OperandTuples)
				}
			}
			// The second Compute reuses the intermediate: |A|+|B| = 57 scans
			// elided (plus the shared δD build).
			if sharedReps[1].SharedHits == 0 || sharedReps[1].SharedTuplesSaved < 57 {
				t.Errorf("V2 did not reuse the intermediate: %+v", sharedReps[1])
			}
			if stats.Inters != 1 {
				t.Errorf("Inters = %d, want 1 (%+v)", stats.Inters, stats.Detail)
			}
			var interDetail *SharedEntryStats
			for i := range stats.Detail {
				if stats.Detail[i].Kind == "intermediate" {
					interDetail = &stats.Detail[i]
				}
			}
			if interDetail == nil {
				t.Fatalf("no intermediate in detail: %+v", stats.Detail)
			}
			if interDetail.Requests != 2 || interDetail.Hits != 1 || interDetail.Rows == 0 {
				t.Errorf("intermediate detail %+v, want 2 requests / 1 hit", *interDetail)
			}
			if interDetail.Name != "A⋈B v0/v0" {
				t.Errorf("intermediate name %q", interDetail.Name)
			}

			for _, name := range []string{"D", "V1", "V2"} {
				if _, err := plain.Install(name); err != nil {
					t.Fatal(err)
				}
				if _, err := shared.Install(name); err != nil {
					t.Fatal(err)
				}
			}
			if err := shared.VerifyAll(); err != nil {
				t.Fatalf("shared run corrupted state: %v", err)
			}
		})
	}
}

// TestSharedIntermediateStarvedBudget: a 1-byte shared budget forces
// serve-and-drop — no hits, every build evicted — with correctness intact.
func TestSharedIntermediateStarvedBudget(t *testing.T) {
	w := newInterWarehouse(t, Options{ShareComputation: true, SharedBudgetBytes: 1})
	loadInterData(t, w)
	h, _ := interHints(t, w)
	if !w.AttachSharing(h) {
		t.Fatal("AttachSharing refused")
	}
	var hits int
	for i := 1; i <= 2; i++ {
		rep, err := w.Compute(fmt.Sprintf("V%d", i), []string{"D"})
		if err != nil {
			t.Fatal(err)
		}
		hits += rep.SharedHits
	}
	stats := w.DetachSharing()
	if hits != 0 {
		t.Errorf("1-byte budget still served %d hits", hits)
	}
	if stats.Evicted == 0 {
		t.Errorf("no evictions under a 1-byte budget: %+v", stats)
	}
	for _, name := range []string{"D", "V1", "V2"} {
		if _, err := w.Install(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}
