package core

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Recompute evaluates a derived view's definition from scratch over the
// current states of its referenced views and returns the result as a plain
// counted table (aggregate views are rendered to their output rows). The
// view's materialized state is not touched.
//
// Recompute is the correctness oracle for incremental strategies: after a
// correct strategy executes, every view's state must equal its recomputation
// over the updated base data (Theorem of [GMS93] restated as conditions
// C1–C8 in the paper).
func (w *Warehouse) Recompute(name string) (*storage.Table, error) {
	v := w.views[name]
	if v == nil {
		return nil, fmt.Errorf("core: unknown view %q", name)
	}
	if v.IsBase() {
		return v.table.Clone(), nil
	}
	fullTerm := maintain.Term{} // no delta refs: every operand reads state
	if v.agg != nil {
		partials := delta.NewGroupPartials(v.def.GroupSchema(), v.def.AggSpecs())
		groupExprs := v.def.GroupBy
		aggs := v.def.Aggs
		sink := func(row relation.Tuple, count int64) {
			group := make(relation.Tuple, len(groupExprs))
			for i, g := range groupExprs {
				group[i] = g.E.Eval(row)
			}
			inputs := make([]relation.Value, len(aggs))
			for i, a := range aggs {
				if a.Input != nil {
					inputs[i] = a.Input.Eval(row)
				} else {
					inputs[i] = relation.Null
				}
			}
			partials.Accumulate(group, inputs, count)
		}
		if _, err := w.evalTerm(v.def, fullTerm, nil, seqSinks(sink), nil); err != nil {
			return nil, err
		}
		fresh := storage.NewAggTable(v.def.GroupSchema(), v.def.AggSpecs(), v.def.AggNames())
		if err := fresh.Apply(partials); err != nil {
			return nil, fmt.Errorf("core: recomputing %q: %w", name, err)
		}
		return fresh.AsTable(), nil
	}
	out := storage.NewTable(v.def.OutputSchema())
	selects := v.def.Select
	var err error
	sink := func(row relation.Tuple, count int64) {
		tup := make(relation.Tuple, len(selects))
		for i, s := range selects {
			tup[i] = s.E.Eval(row)
		}
		if count <= 0 {
			err = fmt.Errorf("core: recompute of %q produced non-positive count %d", name, count)
			return
		}
		out.Insert(tup, count)
	}
	if _, eerr := w.evalTerm(v.def, fullTerm, nil, seqSinks(sink), nil); eerr != nil {
		return nil, eerr
	}
	return out, err
}

// Evaluate runs an ad-hoc query (a validated CQ whose references name
// catalog views) against the current materialized state and returns the
// result as a counted table. This is the OLAP read path: queries evaluate
// against whatever state the views are in, so they keep working during an
// update window (seeing pre- or post-install states per view, exactly the
// isolation the paper's discussion section describes).
func (w *Warehouse) Evaluate(cq *algebra.CQ) (*storage.Table, error) {
	// Cached plans are validated once at bind time and then shared across
	// queries; re-validating would rewrite the CQ's internal offsets and
	// race with concurrent evaluations of the same plan.
	if !cq.Validated() {
		if err := cq.Validate(); err != nil {
			return nil, err
		}
	}
	for _, r := range cq.Refs {
		v := w.views[r.View]
		if v == nil {
			return nil, fmt.Errorf("core: query references unknown view %q", r.View)
		}
		if !v.Schema().Equal(r.Schema) {
			return nil, fmt.Errorf("core: query ref %q schema does not match view %q", r.Alias, r.View)
		}
	}
	fullTerm := maintain.Term{}
	if cq.IsAggregate() {
		partials := delta.NewGroupPartials(cq.GroupSchema(), cq.AggSpecs())
		sink := func(row relation.Tuple, count int64) {
			group := make(relation.Tuple, len(cq.GroupBy))
			for i, g := range cq.GroupBy {
				group[i] = g.E.Eval(row)
			}
			inputs := make([]relation.Value, len(cq.Aggs))
			for i, a := range cq.Aggs {
				if a.Input != nil {
					inputs[i] = a.Input.Eval(row)
				} else {
					inputs[i] = relation.Null
				}
			}
			partials.Accumulate(group, inputs, count)
		}
		if _, err := w.evalTerm(cq, fullTerm, nil, seqSinks(sink), nil); err != nil {
			return nil, err
		}
		fresh := storage.NewAggTable(cq.GroupSchema(), cq.AggSpecs(), cq.AggNames())
		if err := fresh.Apply(partials); err != nil {
			return nil, err
		}
		return fresh.AsTable(), nil
	}
	out := storage.NewTable(cq.OutputSchema())
	sink := func(row relation.Tuple, count int64) {
		tup := make(relation.Tuple, len(cq.Select))
		for i, s := range cq.Select {
			tup[i] = s.E.Eval(row)
		}
		out.Insert(tup, count)
	}
	if _, err := w.evalTerm(cq, fullTerm, nil, seqSinks(sink), nil); err != nil {
		return nil, err
	}
	return out, nil
}

// VerifyView checks that the named view's materialized state equals its
// recomputation over the current states of its children.
func (w *Warehouse) VerifyView(name string) error {
	v := w.views[name]
	if v == nil {
		return fmt.Errorf("core: unknown view %q", name)
	}
	if v.IsBase() {
		return nil
	}
	want, err := w.Recompute(name)
	if err != nil {
		return err
	}
	var got *storage.Table
	if v.agg != nil {
		got = v.agg.AsTable()
	} else {
		got = v.table.Clone()
	}
	// Incremental float aggregation sums in a different order than
	// recomputation, so float columns compare under relative tolerance.
	if !got.ApproxEqual(want, verifyTolerance) {
		return fmt.Errorf("core: view %q diverged from recomputation: have %d rows, recompute gives %d rows",
			name, got.Cardinality(), want.Cardinality())
	}
	return nil
}

// verifyTolerance is the relative float tolerance VerifyView allows between
// incrementally maintained aggregates and their recomputation.
const verifyTolerance = 1e-9

// VerifyAll verifies every derived view bottom-up (definition order is
// topological, so each view is checked against already-verified children).
// Views known to be stale under deferred maintenance are skipped — their
// divergence is expected until RefreshStale runs.
func (w *Warehouse) VerifyAll() error {
	for _, name := range w.order {
		if w.views[name].stale {
			continue
		}
		if err := w.VerifyView(name); err != nil {
			return err
		}
	}
	return nil
}

// RefreshAll recomputes every derived view from the current base data and
// overwrites its materialized state, in definition (topological) order. It
// is how a warehouse is initially populated after LoadBase. Staleness
// markers are cleared.
func (w *Warehouse) RefreshAll() error {
	for _, name := range w.order {
		v := w.views[name]
		if v.IsBase() {
			continue
		}
		if err := w.refreshOne(v); err != nil {
			return err
		}
		v.stale = false
	}
	return nil
}

// refreshOne recomputes one derived view from its children's current state
// and replaces its materialized contents.
func (w *Warehouse) refreshOne(v *View) error {
	if v.agg != nil {
		partials := delta.NewGroupPartials(v.def.GroupSchema(), v.def.AggSpecs())
		groupExprs := v.def.GroupBy
		aggs := v.def.Aggs
		sink := func(row relation.Tuple, count int64) {
			group := make(relation.Tuple, len(groupExprs))
			for i, g := range groupExprs {
				group[i] = g.E.Eval(row)
			}
			inputs := make([]relation.Value, len(aggs))
			for i, a := range aggs {
				if a.Input != nil {
					inputs[i] = a.Input.Eval(row)
				} else {
					inputs[i] = relation.Null
				}
			}
			partials.Accumulate(group, inputs, count)
		}
		if _, err := w.evalTerm(v.def, maintain.Term{}, nil, seqSinks(sink), nil); err != nil {
			return err
		}
		v.agg.Clear()
		if err := v.agg.Apply(partials); err != nil {
			return fmt.Errorf("core: refreshing %q: %w", v.name, err)
		}
		return nil
	}
	fresh, err := w.Recompute(v.name)
	if err != nil {
		return err
	}
	v.table.Clear()
	fresh.Scan(func(t relation.Tuple, c int64) bool {
		v.table.Insert(t, c)
		return true
	})
	return nil
}

// PendingViews returns the names of views with uninstalled changes.
func (w *Warehouse) PendingViews() []string {
	var out []string
	for _, name := range w.order {
		if w.views[name].HasPending() {
			out = append(out, name)
		}
	}
	return out
}
