package core

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/relation"
)

// TestSelfJoinMaintenance exercises the per-reference term expansion: a view
// defined over the same base twice (pairs of rows sharing b) must maintain
// correctly through both 1-way and dual-stage strategies.
func TestSelfJoinMaintenance(t *testing.T) {
	build := func() *Warehouse {
		w := New(Options{})
		if err := w.DefineBase("R", schemaR); err != nil {
			t.Fatal(err)
		}
		b := algebra.NewBuilder().From("x", "R", schemaR).From("y", "R", schemaR)
		b.Join("x.b", "y.b").
			Where(&algebra.Binary{Op: algebra.OpLt, L: b.Col("x.a"), R: b.Col("y.a")}).
			SelectCol("x.a", "left").SelectCol("y.a", "right")
		if err := w.DefineDerived("PAIRS", b.MustBuild()); err != nil {
			t.Fatal(err)
		}
		if err := w.LoadBase("R", []relation.Tuple{
			intRow(1, 10), intRow(2, 10), intRow(3, 10), intRow(4, 20), intRow(5, 20),
		}); err != nil {
			t.Fatal(err)
		}
		if err := w.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		return w
	}
	w := build()
	// pairs sharing b: (1,2),(1,3),(2,3),(4,5)
	if got := w.MustView("PAIRS").Cardinality(); got != 4 {
		t.Fatalf("|PAIRS| = %d, want 4", got)
	}
	stage(t, w, "R", []delta.Change{
		{Tuple: intRow(2, 10), Count: -1}, // removes (1,2),(2,3)
		{Tuple: intRow(6, 20), Count: 1},  // adds (4,6),(5,6)
	})
	// Comp(PAIRS,{R}) must expand to 2²−1 = 3 terms.
	rep, err := w.Compute("PAIRS", []string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Terms != 3 {
		t.Errorf("self-join terms = %d, want 3", rep.Terms)
	}
	if _, err := w.Install("R"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Install("PAIRS"); err != nil {
		t.Fatal(err)
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	rows := w.MustView("PAIRS").SortedRows()
	want := []string{"(1, 3)", "(4, 5)", "(4, 6)", "(5, 6)"}
	if len(rows) != len(want) {
		t.Fatalf("PAIRS = %v", rows)
	}
	for i, wnt := range want {
		if rows[i].Tuple.String() != wnt {
			t.Errorf("PAIRS[%d] = %v, want %s", i, rows[i].Tuple, wnt)
		}
	}
}

// newDeepWarehouse builds a 4-level chain exercising every view kind:
// base R → SPJ J → aggregate A (per key) → aggregate ROLL (global rollup),
// plus an SPJ view OVER_A defined over the aggregate A.
func newDeepWarehouse(t *testing.T) *Warehouse {
	t.Helper()
	w := New(Options{})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.DefineBase("R", schemaR))
	jb := algebra.NewBuilder().From("r", "R", schemaR)
	jb.Where(&algebra.Binary{Op: algebra.OpGt, L: jb.Col("r.b"), R: &algebra.Const{Value: relation.NewInt(0)}}).
		SelectCol("r.a").SelectCol("r.b")
	jDef := jb.MustBuild()
	must(w.DefineDerived("J", jDef))

	ab := algebra.NewBuilder().From("j", "J", jDef.OutputSchema())
	ab.GroupByCol("j.a").
		Agg("total", delta.AggSum, ab.Col("j.b")).
		Agg("n", delta.AggCount, nil)
	aDef := ab.MustBuild()
	must(w.DefineDerived("A", aDef))

	// Aggregate over aggregate: roll A's totals up into buckets of n.
	rb := algebra.NewBuilder().From("a", "A", aDef.OutputSchema())
	rb.GroupByCol("a.n").
		Agg("grand", delta.AggSum, rb.Col("a.total")).
		Agg("groups", delta.AggCount, nil)
	must(w.DefineDerived("ROLL", rb.MustBuild()))

	// SPJ over aggregate: the keys with large totals.
	ob := algebra.NewBuilder().From("a", "A", aDef.OutputSchema())
	ob.Where(&algebra.Binary{Op: algebra.OpGe, L: ob.Col("a.total"), R: &algebra.Const{Value: relation.NewInt(50)}}).
		SelectCol("a.a").SelectCol("a.total")
	must(w.DefineDerived("OVER_A", ob.MustBuild()))
	return w
}

// deepStrategy is a correct 1-way strategy for the 4-level warehouse.
func deepStrategy(t *testing.T, w *Warehouse) {
	t.Helper()
	steps := []string{"cJ.R", "iR", "cA.J", "iJ", "cROLL.A", "cOVER_A.A", "iA", "iROLL", "iOVER_A"}
	for _, s := range steps {
		applyStep(t, w, s)
	}
}

func TestDeepWarehouseMultiLevelPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		w := newDeepWarehouse(t)
		var rows []relation.Tuple
		for i := 0; i < 30; i++ {
			rows = append(rows, intRow(rng.Int63n(5), rng.Int63n(40)))
		}
		if err := w.LoadBase("R", rows); err != nil {
			t.Fatal(err)
		}
		if err := w.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		// Random change batch.
		d := delta.New(schemaR)
		for _, r := range w.MustView("R").SortedRows() {
			if rng.Intn(3) == 0 {
				d.Add(r.Tuple, -1)
			}
		}
		for i := 0; i < rng.Intn(6); i++ {
			d.Add(intRow(rng.Int63n(5), rng.Int63n(40)), 1)
		}
		if err := w.StageDelta("R", d); err != nil {
			t.Fatal(err)
		}
		deepStrategy(t, w)
		if err := w.VerifyAll(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestAggOverAggDeltaShape checks the tuple-level delta produced by an
// aggregate view feeding another aggregate: the parent must see minus(old
// group row) / plus(new group row) pairs.
func TestAggOverAggDeltaShape(t *testing.T) {
	w := newDeepWarehouse(t)
	if err := w.LoadBase("R", []relation.Tuple{intRow(1, 10), intRow(1, 20), intRow(2, 30)}); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	// A = {(1,30,2),(2,30,1)}; ROLL = {(2,30,1),(1,30,1)} keyed by n.
	stage(t, w, "R", []delta.Change{{Tuple: intRow(1, 20), Count: -1}})
	for _, s := range []string{"cJ.R", "iR", "cA.J", "iJ"} {
		applyStep(t, w, s)
	}
	dA, err := w.DeltaOf("A")
	if err != nil {
		t.Fatal(err)
	}
	// Group 1 changes from (1,30,2) to (1,10,1): one minus + one plus.
	ch := dA.Sorted()
	if len(ch) != 2 || dA.PlusCount() != 1 || dA.MinusCount() != 1 {
		t.Fatalf("δA = %v", ch)
	}
	if ch[0].Tuple.String() != "(1, 10, 1)" || ch[0].Count != 1 {
		t.Errorf("plus row = %v", ch[0])
	}
	if ch[1].Tuple.String() != "(1, 30, 2)" || ch[1].Count != -1 {
		t.Errorf("minus row = %v", ch[1])
	}
	for _, s := range []string{"cROLL.A", "cOVER_A.A", "iA", "iROLL", "iOVER_A"} {
		applyStep(t, w, s)
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestDistinctViewMaintenance: a DISTINCT projection must keep a row until
// its last duplicate disappears.
func TestDistinctViewMaintenance(t *testing.T) {
	w := New(Options{})
	if err := w.DefineBase("R", schemaR); err != nil {
		t.Fatal(err)
	}
	b := algebra.NewBuilder().From("r", "R", schemaR)
	b.SelectCol("r.b").Distinct()
	if err := w.DefineDerived("D", b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadBase("R", []relation.Tuple{intRow(1, 10), intRow(2, 10), intRow(3, 20)}); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	if got := w.MustView("D").Cardinality(); got != 2 {
		t.Fatalf("|D| = %d, want 2", got)
	}
	// Remove one of the two b=10 rows: D unchanged.
	stage(t, w, "R", []delta.Change{{Tuple: intRow(1, 10), Count: -1}})
	if _, err := w.Compute("D", []string{"R"}); err != nil {
		t.Fatal(err)
	}
	dD, err := w.DeltaOf("D")
	if err != nil {
		t.Fatal(err)
	}
	if !dD.IsEmpty() {
		t.Errorf("removing a duplicate should not change DISTINCT view: %v", dD.Sorted())
	}
	for _, s := range []string{"iR", "iD"} {
		applyStep(t, w, s)
	}
	// Remove the last b=10 row: now the distinct row disappears.
	stage(t, w, "R", []delta.Change{{Tuple: intRow(2, 10), Count: -1}})
	for _, s := range []string{"cD.R", "iR", "iD"} {
		applyStep(t, w, s)
	}
	rows := w.MustView("D").SortedRows()
	if len(rows) != 1 || rows[0].Tuple.String() != "(20)" {
		t.Errorf("D = %v", rows)
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestMinMaxViewThroughStrategies: MIN/MAX aggregates survive deletions of
// the current extreme through an incremental strategy.
func TestMinMaxViewThroughStrategies(t *testing.T) {
	w := New(Options{})
	if err := w.DefineBase("R", schemaR); err != nil {
		t.Fatal(err)
	}
	b := algebra.NewBuilder().From("r", "R", schemaR)
	b.GroupByCol("r.a").
		Agg("lo", delta.AggMin, b.Col("r.b")).
		Agg("hi", delta.AggMax, b.Col("r.b"))
	if err := w.DefineDerived("EXTREMES", b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadBase("R", []relation.Tuple{
		intRow(1, 5), intRow(1, 9), intRow(1, 2), intRow(2, 7),
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	// Delete group 1's min (2) and max (9) in one batch.
	stage(t, w, "R", []delta.Change{
		{Tuple: intRow(1, 2), Count: -1},
		{Tuple: intRow(1, 9), Count: -1},
	})
	for _, s := range []string{"cEXTREMES.R", "iR", "iEXTREMES"} {
		applyStep(t, w, s)
	}
	rows := w.MustView("EXTREMES").SortedRows()
	if len(rows) != 2 || rows[0].Tuple.String() != "(1, 5, 5)" || rows[1].Tuple.String() != "(2, 7, 7)" {
		t.Fatalf("EXTREMES = %v", rows)
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossProductView: a definition with no equi-join predicate exercises
// the evaluator's cross-product fallback.
func TestCrossProductView(t *testing.T) {
	w := New(Options{})
	if err := w.DefineBase("R", schemaR); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineBase("S", schemaS); err != nil {
		t.Fatal(err)
	}
	b := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
	// Non-equi join: r.b < s.c (residual only).
	b.Where(&algebra.Binary{Op: algebra.OpLt, L: b.Col("r.b"), R: b.Col("s.c")}).
		SelectCol("r.a").SelectCol("s.c")
	if err := w.DefineDerived("X", b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadBase("R", []relation.Tuple{intRow(1, 10), intRow(2, 300)}); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadBase("S", []relation.Tuple{intRow(0, 100), intRow(0, 400)}); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	// (1,100),(1,400),(2,400)
	if got := w.MustView("X").Cardinality(); got != 3 {
		t.Fatalf("|X| = %d, want 3", got)
	}
	stage(t, w, "S", []delta.Change{{Tuple: intRow(0, 100), Count: -1}, {Tuple: intRow(9, 350), Count: 1}})
	for _, s := range []string{"cX.S", "iS", "iX"} {
		applyStep(t, w, s)
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	rows := w.MustView("X").SortedRows()
	want := []string{"(1, 350)", "(1, 400)", "(2, 350)", "(2, 400)"}
	if len(rows) != len(want) {
		t.Fatalf("X = %v", rows)
	}
	for i, wnt := range want {
		if rows[i].Tuple.String() != wnt {
			t.Errorf("X[%d] = %v, want %s", i, rows[i].Tuple, wnt)
		}
	}
}
