package core

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/memory"
	"repro/internal/relation"
)

// This file is the intra-Compute parallel engine (Options.ParallelTerms):
//
//   - computeParallel evaluates the 2^r − 1 maintenance terms of one Comp
//     concurrently on a bounded, warehouse-wide worker pool, with each join
//     step's probe rows further split into fixed-size morsels.
//   - buildCache shares immutable build-side hash tables across the terms of
//     one Compute: every term joining the same operand on the same equi-key
//     columns probes one physical table instead of re-scanning and
//     re-hashing the operand. The linear work metric still charges each
//     term its operand scan — the cache changes the machine's work, not the
//     metric's — and CompReport reports the hits and tuples saved.
//   - Sharded, mutex-protected sinks accumulate term output concurrently
//     and merge into the view's pending state at flush. Bag accumulation is
//     commutative (integer counts; integer sums), so the final pending bag
//     is independent of scheduling; float sums commute up to rounding,
//     exactly as they already do under the map-iteration order of the
//     sequential engine.

// DefaultMorselSize is the number of probe rows dispatched per parallel
// morsel. Large enough that per-task overhead (closure, pool handoff) is
// amortized over thousands of probes, small enough that a skewed join step
// still splits across workers.
const DefaultMorselSize = 1024

// seqSinks adapts a single-threaded sink to the engine's factory interface.
func seqSinks(sink sinkFn) sinkFactory {
	return func() sinkFn { return sink }
}

// effectiveWorkers resolves the Workers option (0 = GOMAXPROCS).
func effectiveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// workerPool is the warehouse-wide budget for intra-Compute parallelism: a
// semaphore admitting workers−1 background goroutines, the submitting
// goroutine being the workers-th. do never blocks waiting for a slot — when
// the pool is saturated the task runs inline on the submitter — which both
// bounds total goroutines under composed DAG- and term-level parallelism
// and makes nested waits (a term waiting on its morsels) deadlock-free.
type workerPool struct {
	sem chan struct{}
}

func newWorkerPool(workers int) *workerPool {
	return &workerPool{sem: make(chan struct{}, effectiveWorkers(workers)-1)}
}

// do runs fn on a pooled goroutine tracked by wg if a slot is free, and
// inline otherwise.
func (p *workerPool) do(wg *sync.WaitGroup, fn func()) {
	if p != nil {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.sem }()
				fn()
			}()
			return
		default:
		}
	}
	fn()
}

// recoveredErr converts a recovered panic value into an error naming where
// it happened. Error identity is preserved (%w) so injected faults stay
// recognizable to errors.As after crossing a goroutine boundary as a panic.
func recoveredErr(what string, p any) error {
	if err, ok := p.(error); ok {
		return fmt.Errorf("core: panic in %s: %w", what, err)
	}
	return fmt.Errorf("core: panic in %s: %v", what, p)
}

// hashBytes is FNV-1a over an encoded key, the hash of the engine's
// hash-then-verify probe scheme.
func hashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// buildEntry is one build-side tuple under its encoded join key.
type buildEntry struct {
	keyEnc string
	tup    relation.Tuple
	count  int64
}

// buildTable is an immutable build-side hash table: buckets keyed by the
// 64-bit hash of the encoded key projection, entries verified by byte
// equality at probe time. Probing therefore allocates nothing — the
// sequential engine's per-probe key.Encode() string is gone. With no key
// columns (cross product) every entry lands in the hash of the empty
// encoding and every probe matches, preserving the old semantics.
type buildTable struct {
	buckets map[uint64][]buildEntry
}

// newBuildTable hashes an operand's materialized rows on the key columns
// (operand-local indexes, canonical newCol order).
func newBuildTable(rows []prow, cols []int) *buildTable {
	bt := &buildTable{buckets: make(map[uint64][]buildEntry)}
	key := make(relation.Tuple, len(cols))
	enc := make([]byte, 0, 64)
	for i := range rows {
		r := &rows[i]
		for ki, col := range cols {
			key[ki] = r.row[col]
		}
		enc = key.AppendEncoded(enc[:0])
		h := hashBytes(enc)
		bt.buckets[h] = append(bt.buckets[h], buildEntry{keyEnc: string(enc), tup: r.row, count: r.count})
	}
	return bt
}

// buildRes is a resolved build side: a resident table or a spilled one,
// plus the budget grant the receiver must release (nil when the build is
// unbudgeted or owned by a cache/registry with its own release schedule).
type buildRes struct {
	bt    *buildTable
	sp    *spilledBuild
	owned *memory.Grant
}

// buildFor returns a build side for one request, through the per-Compute
// cache when the parallel engine supplies one. Cached results stay owned by
// the cache (released at Compute end); only term-local results carry an
// owned grant back to the caller.
func buildFor(env *evalEnv, br buildReq) (buildRes, error) {
	cache := env.buildCache()
	if cache == nil {
		return resolveBuild(env, br)
	}
	res, err := cache.get(env, br)
	res.owned = nil // the cache releases its slots' grants
	return res, err
}

// resolveBuild materializes one build request, serving it from the
// window-wide shared registry when one is attached and the operand is worth
// sharing. With the per-Compute cache in front (parallel engine), the
// registry sees each distinct (operand, columns) pair once per Compute.
func resolveBuild(env *evalEnv, br buildReq) (buildRes, error) {
	if br.inter != nil {
		return resolveInterBuild(env, br)
	}
	if env != nil && env.shared != nil {
		res, ok, err := env.shared.reg.acquire(env, env.shared, br)
		if err != nil {
			return buildRes{}, err
		}
		if ok {
			return res, nil // registry-owned; no grant to release here
		}
	}
	return buildLocal(env, br)
}

// resolveInterBuild materializes one composite build: the registry serves
// (or computes) the pair's shared raw equi-join, and the hash table over
// the probe columns is built per consumer — deduplicated within a Compute
// by the build cache in front, whose key is the interEntry's stable
// identity. planTerm only emits inter requests when it matched a registry
// hint, so env.shared is always present here.
func resolveInterBuild(env *evalEnv, br buildReq) (buildRes, error) {
	su := env.sharedUse()
	rows, err := su.reg.acquireInter(env, su, br.inter)
	if err != nil {
		return buildRes{}, err
	}
	return buildFromRows(env, rows, br.cols)
}

// buildLocal materializes one build side from an operand scan; see
// buildFromRows for the budget handling.
func buildLocal(env *evalEnv, br buildReq) (buildRes, error) {
	return buildFromRows(env, scanSource(env, br.src), br.cols)
}

// buildFromRows hashes already-materialized rows under the window memory
// budget: resident when the reservation fits (the grant travels with the
// result), spilled to disk otherwise. Without an attached budget it is the
// classic unbudgeted build.
func buildFromRows(env *evalEnv, rows []prow, cols []int) (buildRes, error) {
	mu := env.memUse()
	if mu == nil {
		return buildRes{bt: newBuildTable(rows, cols)}, nil
	}
	est := estimateRowsBytes(rows)
	if g, ok := mu.mm.budget.TryReserveUnder(est, mu.mm.resLimit); ok {
		return buildRes{bt: newBuildTable(rows, cols), owned: g}, nil
	}
	sp, err := mu.mm.spill(env.evalCtx(), mu, rows, cols, est)
	if err != nil {
		return buildRes{}, err
	}
	return buildRes{sp: sp}, nil
}

// scanCache memoizes materialized operand scans for one Compute: the 2^r−1
// terms repeatedly read the same deltas and state tables, and decoding a
// source's rows costs an allocation per tuple. The memoized rows are shared
// read-only — the pipeline copies into a scratch row before evaluating
// anything.
type scanCache struct {
	mu    sync.Mutex
	slots map[source]*scanSlot
}

type scanSlot struct {
	once sync.Once
	rows []prow
}

func newScanCache() *scanCache { return &scanCache{slots: make(map[source]*scanSlot)} }

func (c *scanCache) get(src source) []prow {
	c.mu.Lock()
	slot := c.slots[src]
	if slot == nil {
		slot = &scanSlot{}
		c.slots[src] = slot
	}
	c.mu.Unlock()
	slot.once.Do(func() { slot.rows = materializeScan(src) })
	return slot.rows
}

// materializeScan snapshots a source as (tuple, count) rows. Every source
// hands out freshly allocated tuples, so the rows are safe to share.
func materializeScan(src source) []prow {
	rows := make([]prow, 0, src.Cardinality())
	src.Scan(func(t relation.Tuple, c int64) bool {
		rows = append(rows, prow{row: t, count: c})
		return true
	})
	return rows
}

// scanSource reads an operand's rows, memoized per Compute when the
// parallel engine supplies a scan cache.
func scanSource(env *evalEnv, src source) []prow {
	if env == nil || env.scans == nil {
		return materializeScan(src)
	}
	return env.scans.get(src)
}

// buildKey identifies a shareable build table: the physical operand (state
// table, aggregate store or resolved delta — all stable pointers for the
// duration of one Compute) plus the canonical key-column list.
type buildKey struct {
	src  source
	cols string
}

func colsKey(cols []int) string {
	b := make([]byte, 0, 3*len(cols))
	for i, c := range cols {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(c), 10)
	}
	return string(b)
}

// buildCache shares build tables across the concurrently evaluating terms
// of one Compute. The first requester of a (operand, key columns) pair
// builds; every later requester blocks on that build and reuses it. hits
// and saved feed CompReport's cache accounting.
type buildCache struct {
	mu     sync.Mutex
	tables map[buildKey]*buildSlot
	hits   atomic.Int64
	misses atomic.Int64
	saved  atomic.Int64
}

type buildSlot struct {
	once    sync.Once
	res     buildRes
	err     error
	counted atomic.Bool // set by the first term-level requester, which pays the miss
}

func newBuildCache() *buildCache {
	return &buildCache{tables: make(map[buildKey]*buildSlot)}
}

// warm constructs the build table without touching the per-Compute hit/miss
// accounting. Pre-warming is an engine scheduling detail: the first term
// that asks for the build still records the construction as its miss, so
// the reported hits/misses/saved are identical with and without
// pre-warming. Resolution goes through resolveBuild, so the warm phase is
// also where a shared registry serves (or admits) the table — exactly one
// registry interaction per distinct build of the Compute. A warm-phase
// resolution error is remembered by the slot and surfaces, deterministically
// in term order, from the first get.
func (c *buildCache) warm(env *evalEnv, br buildReq) {
	slot := c.slot(buildKey{src: br.src, cols: colsKey(br.cols)})
	slot.once.Do(func() { slot.res, slot.err = resolveBuild(env, br) })
}

func (c *buildCache) get(env *evalEnv, br buildReq) (buildRes, error) {
	slot := c.slot(buildKey{src: br.src, cols: colsKey(br.cols)})
	if slot.counted.CompareAndSwap(false, true) {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
		c.saved.Add(br.src.Cardinality())
	}
	slot.once.Do(func() { slot.res, slot.err = resolveBuild(env, br) })
	return slot.res, slot.err
}

func (c *buildCache) slot(key buildKey) *buildSlot {
	c.mu.Lock()
	slot, ok := c.tables[key]
	if !ok {
		slot = &buildSlot{}
		c.tables[key] = slot
	}
	c.mu.Unlock()
	return slot
}

// releaseAll returns every cache-owned budget grant. Called once when the
// owning Compute finishes (any exit path); slots still mid-build cannot
// exist then — computeParallel joins all workers first.
func (c *buildCache) releaseAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, slot := range c.tables {
		slot.res.owned.Release()
	}
}

// computeParallel is Compute's ParallelTerms path. It runs in four phases:
// plan every term (cheap, data-independent), pre-warm the distinct operand
// scans concurrently, pre-warm the distinct build tables concurrently, then
// fan the terms out on the shared pool, each probing through morsels and
// emitting into sharded sinks; flush merges the shards into the view's
// pending state once every term is done. The pre-warm phases matter because
// the terms of one Comp all want the same few scans and builds first: left
// to the terms, those constructions serialize behind sync.Once while every
// other worker parks. Errors surface deterministically in term order.
func (w *Warehouse) computeParallel(ctx context.Context, rep CompReport, v *View, terms []maintain.Term, deltas map[string]*delta.Delta, su *sharedUse) (CompReport, error) {
	cache := newBuildCache()
	defer cache.releaseAll()
	env := &evalEnv{cache: cache, scans: newScanCache(), pool: w.pool, morsel: w.opts.MorselSize, ctx: ctx, shared: su, mem: newMemUse(w.mem)}

	plans := make([]*termPlan, len(terms))
	for ti, term := range terms {
		plan, err := w.planTerm(v.def, term, deltas, su)
		if err != nil {
			return rep, err
		}
		plans[ti] = plan
	}

	// Pre-warm distinct scans, then distinct builds (builds read the
	// memoized scans). Each phase's items are independent, so they use the
	// whole pool; warm() bypasses the hit/miss accounting, so the first
	// term to request each build still records its one miss.
	srcSet := make(map[source]bool)
	buildSet := make(map[buildKey]buildReq)
	for _, plan := range plans {
		srcSet[plan.driverSrc] = true
		for _, br := range plan.builds {
			// Composite builds are warmed as builds only: pre-scanning their
			// operands would waste two scans whenever the registry serves
			// the intermediate from another Comp's build.
			if br.inter == nil {
				srcSet[br.src] = true
			}
			buildSet[buildKey{src: br.src, cols: colsKey(br.cols)}] = br
		}
	}
	// Pre-warm closures run operand Scan callbacks, which can panic (a
	// misbehaving operator, an injected fault). A panic in a pooled
	// goroutine would kill the process, so every closure is guarded; the
	// first panic (any order — warm work has no term identity) wins.
	var warmMu sync.Mutex
	var warmErr error
	guard := func(what string, fn func()) func() {
		return func() {
			defer func() {
				if r := recover(); r != nil {
					warmMu.Lock()
					if warmErr == nil {
						warmErr = recoveredErr(what, r)
					}
					warmMu.Unlock()
				}
			}()
			fn()
		}
	}
	var wg sync.WaitGroup
	for src := range srcSet {
		src := src
		w.pool.do(&wg, guard("operand scan of "+v.name, func() { env.scans.get(src) }))
	}
	wg.Wait()
	if warmErr != nil {
		return rep, warmErr
	}
	for _, wb := range buildSet {
		wb := wb
		w.pool.do(&wg, guard("build warm of "+v.name, func() { cache.warm(env, wb) }))
	}
	wg.Wait()
	if warmErr != nil {
		return rep, warmErr
	}

	sinks, flush := w.makeShardedSink(v)
	scanned := make([]int64, len(terms))
	errs := make([]error, len(terms))
	for ti := range terms {
		ti := ti
		w.pool.do(&wg, func() {
			defer func() {
				if r := recover(); r != nil {
					errs[ti] = recoveredErr(fmt.Sprintf("term %d of %s", ti, v.name), r)
				}
			}()
			if err := env.ctxErr(); err != nil {
				errs[ti] = err
				return
			}
			scanned[ti], errs[ti] = runTerm(plans[ti], sinks, env)
		})
	}
	wg.Wait()
	for ti := range terms {
		if errs[ti] != nil {
			return rep, errs[ti]
		}
		rep.Terms++
		rep.OperandTuples += scanned[ti]
	}
	rep.OutputTuples = flush()
	rep.BuildCacheHits = int(cache.hits.Load())
	rep.BuildCacheMisses = int(cache.misses.Load())
	rep.BuildTuplesSaved = cache.saved.Load()
	su.fill(&rep)
	env.memUse().fill(&rep)
	return rep, nil
}

// shardCount sizes the sink shard array: a few shards per worker (rounded
// to a power of two for mask selection) keeps lock contention low without
// bloating the final merge.
func shardCount(workers int) int {
	n := 2 * effectiveWorkers(workers)
	p := 1
	for p < n && p < 64 {
		p <<= 1
	}
	return p
}

// makeShardedSink returns the concurrency-safe counterpart of makeSink:
// a factory of goroutine-local sink closures writing to mutex-protected
// shards, plus a flush merging the shards into the view's pending state and
// returning the produced-row count (change rows for SPJ views, newly
// affected groups for aggregate views — the same quantities makeSink
// reports).
func (w *Warehouse) makeShardedSink(v *View) (sinkFactory, func() int64) {
	if v.agg != nil {
		s := newAggShards(v, shardCount(w.opts.Workers))
		return s.local, s.flush
	}
	s := newDeltaShards(v, shardCount(w.opts.Workers))
	return s.local, s.flush
}

// deltaShards accumulates SPJ change rows. Each shard owns a private Delta;
// rows route by the hash of their encoded output tuple, so one output tuple
// always lands in one shard and the merged bag is exact regardless of
// scheduling.
type deltaShards struct {
	view   *View
	mask   uint64
	shards []deltaShard
}

type deltaShard struct {
	mu       sync.Mutex
	d        *delta.Delta
	produced int64
	_        [4]uint64 // soften false sharing between neighboring shards
}

func newDeltaShards(v *View, n int) *deltaShards {
	s := &deltaShards{view: v, mask: uint64(n - 1), shards: make([]deltaShard, n)}
	for i := range s.shards {
		s.shards[i].d = delta.New(v.Schema())
	}
	return s
}

// local returns a sink closure with private projection and encoding
// scratch; only the shard append is locked.
func (s *deltaShards) local() sinkFn {
	selects := s.view.def.Select
	out := make(relation.Tuple, len(selects))
	enc := make([]byte, 0, 64)
	return func(row relation.Tuple, count int64) {
		for i, sel := range selects {
			out[i] = sel.E.Eval(row)
		}
		enc = out.AppendEncoded(enc[:0])
		sh := &s.shards[hashBytes(enc)&s.mask]
		sh.mu.Lock()
		sh.d.AddEncoded(string(enc), count)
		sh.produced++
		sh.mu.Unlock()
	}
}

func (s *deltaShards) flush() int64 {
	v := s.view
	v.mu.Lock()
	if v.pendingDelta == nil {
		v.pendingDelta = delta.New(v.Schema())
	}
	pd := v.pendingDelta
	v.mu.Unlock()
	var produced int64
	for i := range s.shards {
		sh := &s.shards[i]
		pd.Merge(sh.d)
		produced += sh.produced
	}
	return produced
}

// aggShards accumulates aggregate group partials, sharded by group key so
// each group's accumulator lives in exactly one shard.
type aggShards struct {
	view   *View
	mask   uint64
	shards []aggShard
}

type aggShard struct {
	mu sync.Mutex
	p  *delta.GroupPartials
	_  [4]uint64
}

func newAggShards(v *View, n int) *aggShards {
	s := &aggShards{view: v, mask: uint64(n - 1), shards: make([]aggShard, n)}
	for i := range s.shards {
		s.shards[i].p = delta.NewGroupPartials(v.def.GroupSchema(), v.def.AggSpecs())
	}
	return s
}

func (s *aggShards) local() sinkFn {
	groupExprs := s.view.def.GroupBy
	aggs := s.view.def.Aggs
	group := make(relation.Tuple, len(groupExprs))
	inputs := make([]relation.Value, len(aggs))
	enc := make([]byte, 0, 64)
	return func(row relation.Tuple, count int64) {
		for i, g := range groupExprs {
			group[i] = g.E.Eval(row)
		}
		for i, a := range aggs {
			if a.Input != nil {
				inputs[i] = a.Input.Eval(row)
			} else {
				inputs[i] = relation.Null
			}
		}
		enc = group.AppendEncoded(enc[:0])
		sh := &s.shards[hashBytes(enc)&s.mask]
		sh.mu.Lock()
		sh.p.AccumulateEncoded(string(enc), inputs, count)
		sh.mu.Unlock()
	}
}

func (s *aggShards) flush() int64 {
	v := s.view
	v.mu.Lock()
	if v.pendingPartials == nil {
		v.pendingPartials = delta.NewGroupPartials(v.def.GroupSchema(), v.def.AggSpecs())
	}
	pp := v.pendingPartials
	v.mu.Unlock()
	before := pp.GroupCount()
	for i := range s.shards {
		pp.Merge(s.shards[i].p)
	}
	return int64(pp.GroupCount() - before)
}
