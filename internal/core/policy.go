package core

import (
	"fmt"
)

// Maintenance policies. The paper's related work ([CKL+97]) frames
// warehouse views as maintained under different policies — immediately
// during the update window, or deferred to an on-demand refresh. Deferral
// composes with the strategy framework: a deferred view (and, necessarily,
// every view defined above it, since their maintenance needs its delta) is
// left out of the window's strategy, marked stale when its underlying data
// changes, and brought current later with RefreshView, which recomputes it
// from its (by then current) children.

// SetDeferred marks a derived view as deferred (or back to immediate).
func (w *Warehouse) SetDeferred(name string, deferred bool) error {
	v := w.views[name]
	if v == nil {
		return fmt.Errorf("core: unknown view %q", name)
	}
	if v.IsBase() {
		return fmt.Errorf("core: base view %q cannot be deferred; its changes arrive from sources", name)
	}
	v.deferred = deferred
	return nil
}

// Deferred reports the view's maintenance policy.
func (v *View) Deferred() bool { return v.deferred }

// Stale reports whether the view's state is known to lag its children
// (deferred maintenance skipped it during an update window).
func (v *View) Stale() bool { return v.stale }

// EffectivelyDeferred returns the set of views excluded from update
// strategies: every deferred view, every stale view (a view that already
// missed a window cannot be incrementally maintained — the deltas it missed
// are gone, so only RefreshView can bring it current), plus every view
// defined (transitively) above either.
func (w *Warehouse) EffectivelyDeferred() map[string]bool {
	out := make(map[string]bool)
	for _, name := range w.order { // topological order
		v := w.views[name]
		if v.deferred || v.stale {
			out[name] = true
			continue
		}
		for _, c := range w.Children(name) {
			if out[c] {
				out[name] = true
				break
			}
		}
	}
	return out
}

// MarkStale records that the named view missed an update window.
func (w *Warehouse) MarkStale(name string) error {
	v := w.views[name]
	if v == nil {
		return fmt.Errorf("core: unknown view %q", name)
	}
	if v.IsBase() {
		return fmt.Errorf("core: base view %q cannot be stale", name)
	}
	v.stale = true
	return nil
}

// StaleViews returns the views currently known to be stale, in topological
// order.
func (w *Warehouse) StaleViews() []string {
	var out []string
	for _, name := range w.order {
		if w.views[name].stale {
			out = append(out, name)
		}
	}
	return out
}

// RefreshView recomputes a derived view from the current state of its
// children, replacing its materialized contents and clearing staleness.
// Children must be refreshed first (RefreshStale handles the ordering).
func (w *Warehouse) RefreshView(name string) error {
	v := w.views[name]
	if v == nil {
		return fmt.Errorf("core: unknown view %q", name)
	}
	if v.IsBase() {
		return fmt.Errorf("core: RefreshView on base view %q", name)
	}
	if v.HasPending() {
		return fmt.Errorf("core: view %q has uninstalled changes; refusing to overwrite them", name)
	}
	for _, c := range w.Children(name) {
		if w.views[c].stale {
			return fmt.Errorf("core: refreshing %q while its child %q is still stale", name, c)
		}
	}
	if err := w.refreshOne(v); err != nil {
		return err
	}
	v.stale = false
	return nil
}

// RefreshStale refreshes every stale view bottom-up.
func (w *Warehouse) RefreshStale() error {
	for _, name := range w.order {
		if w.views[name].stale {
			if err := w.RefreshView(name); err != nil {
				return err
			}
		}
	}
	return nil
}
