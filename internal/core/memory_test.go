package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/faults"
	"repro/internal/relation"
)

// newOneToOneWarehouse builds base R(a,b), S(b,c) with n rows each, joined
// 1:1 on b (row i of R matches exactly row i of S), and V = R ⋈ S. The 1:1
// shape keeps join fanout linear so large n stays fast — what the peak test
// needs to push a build table past a realistic budget.
func newOneToOneWarehouse(t *testing.T, n int, opts Options) *Warehouse {
	t.Helper()
	w := New(opts)
	if err := w.DefineBase("R", schemaR); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineBase("S", schemaS); err != nil {
		t.Fatal(err)
	}
	b := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
	b.Join("r.b", "s.b").SelectCol("r.a").SelectCol("s.c")
	cq, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDerived("V", cq); err != nil {
		t.Fatal(err)
	}
	var rRows, sRows []relation.Tuple
	for i := int64(0); i < int64(n); i++ {
		rRows = append(rRows, intRow(i, i))
		sRows = append(sRows, intRow(i, i))
	}
	if err := w.LoadBase("R", rRows); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadBase("S", sRows); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	for _, base := range []string{"R", "S"} {
		d := delta.New(w.MustView(base).Schema())
		d.Add(intRow(1_000_000, 3), 1)
		d.Add(intRow(3, 55), 1)
		if err := w.StageDelta(base, d); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// runJoinWindow computes and installs V over {R, S}, returning the CompReport
// — one full update window for the single-view warehouses in this file.
func runJoinWindow(t *testing.T, w *Warehouse) CompReport {
	t.Helper()
	rep, err := w.Compute("V", []string{"R", "S"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"R", "S", "V"} {
		if _, err := w.Install(name); err != nil {
			t.Fatal(err)
		}
	}
	return rep
}

// bagOf renders a view's sorted bag for exact comparison.
func bagOf(t *testing.T, w *Warehouse, view string) []string {
	t.Helper()
	var out []string
	for _, r := range w.MustView(view).SortedRows() {
		out = append(out, fmt.Sprintf("%v x%d", r.Tuple, r.Count))
	}
	return out
}

func requireSameBag(t *testing.T, name string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s row %d: %s, want %s", name, i, got[i], want[i])
		}
	}
}

// TestSpilledBuildMatchesUnbounded: a tiny budget forces every state build to
// spill; the window's results, work metric, and verification must be
// indistinguishable from the unbounded run — only the spill counters move.
// Runs the sequential and term-parallel engines.
func TestSpilledBuildMatchesUnbounded(t *testing.T) {
	for _, par := range []bool{false, true} {
		name := "sequential"
		if par {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			opts := Options{ParallelTerms: par, Workers: 2}
			plain := newOneToOneWarehouse(t, 120, opts)
			plainRep := runJoinWindow(t, plain)

			opts.MemoryBudgetBytes = 4096
			bounded := newOneToOneWarehouse(t, 120, opts)
			ok, err := bounded.AttachMemory("", nil)
			if err != nil || !ok {
				t.Fatalf("AttachMemory = (%v, %v)", ok, err)
			}
			rep := runJoinWindow(t, bounded)
			ms := bounded.DetachMemory()

			if rep.SpillCount == 0 || rep.SpilledBytes == 0 || rep.SpillReReadBytes == 0 {
				t.Fatalf("4 KiB budget never spilled: %+v", rep)
			}
			if plainRep.SpillCount != 0 || plainRep.SpilledBytes != 0 {
				t.Fatalf("unbounded run reports spills: %+v", plainRep)
			}
			if rep.OperandTuples != plainRep.OperandTuples {
				t.Errorf("work moved under spilling: %d vs %d", rep.OperandTuples, plainRep.OperandTuples)
			}
			if ms.SpillCount == 0 || ms.PeakReservedBytes == 0 {
				t.Errorf("window MemStats empty: %+v", ms)
			}
			requireSameBag(t, "V", bagOf(t, bounded, "V"), bagOf(t, plain, "V"))
			if err := bounded.VerifyAll(); err != nil {
				t.Fatalf("spilled run corrupted state: %v", err)
			}
		})
	}
}

// TestSpilledCrossProduct: a term with no equi-join keys routes spill rows
// round-robin (hashing a keyless row would put every row in one partition);
// results still match the unbounded run exactly.
func TestSpilledCrossProduct(t *testing.T) {
	build := func(opts Options) *Warehouse {
		w := New(opts)
		if err := w.DefineBase("R", schemaR); err != nil {
			t.Fatal(err)
		}
		if err := w.DefineBase("S", schemaS); err != nil {
			t.Fatal(err)
		}
		b := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
		b.Where(&algebra.Binary{Op: algebra.OpGt, L: b.Col("r.a"), R: b.Col("s.c")}).
			SelectCol("r.a").SelectCol("s.c")
		cq, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.DefineDerived("V", cq); err != nil {
			t.Fatal(err)
		}
		var rRows, sRows []relation.Tuple
		for i := int64(0); i < 120; i++ {
			rRows = append(rRows, intRow(i, i%10))
			sRows = append(sRows, intRow(i%10, i))
		}
		if err := w.LoadBase("R", rRows); err != nil {
			t.Fatal(err)
		}
		if err := w.LoadBase("S", sRows); err != nil {
			t.Fatal(err)
		}
		if err := w.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		for _, base := range []string{"R", "S"} {
			d := delta.New(w.MustView(base).Schema())
			d.Add(intRow(60, 2), 1)
			if err := w.StageDelta(base, d); err != nil {
				t.Fatal(err)
			}
		}
		return w
	}
	plain := build(Options{})
	runJoinWindow(t, plain)

	bounded := build(Options{MemoryBudgetBytes: 4096})
	if ok, err := bounded.AttachMemory("", nil); err != nil || !ok {
		t.Fatalf("AttachMemory = (%v, %v)", ok, err)
	}
	rep := runJoinWindow(t, bounded)
	bounded.DetachMemory()
	if rep.SpillCount == 0 {
		t.Fatal("cross-product build never spilled")
	}
	requireSameBag(t, "V", bagOf(t, bounded, "V"), bagOf(t, plain, "V"))
}

// TestSpilledMultiStepOdometer: a three-way join where several build sides
// spill at once exercises the pass odometer over the cross product of each
// spilled step's partitions.
func TestSpilledMultiStepOdometer(t *testing.T) {
	schemaT := relation.Schema{{Name: "c", Kind: relation.KindInt}, {Name: "d", Kind: relation.KindInt}}
	build := func(opts Options) *Warehouse {
		w := New(opts)
		for _, def := range []struct {
			name   string
			schema relation.Schema
		}{{"R", schemaR}, {"S", schemaS}, {"T", schemaT}} {
			if err := w.DefineBase(def.name, def.schema); err != nil {
				t.Fatal(err)
			}
		}
		b := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS).From("t", "T", schemaT)
		b.Join("r.b", "s.b").Join("s.c", "t.c").SelectCol("r.a").SelectCol("t.d")
		cq, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.DefineDerived("V", cq); err != nil {
			t.Fatal(err)
		}
		var rRows, sRows, tRows []relation.Tuple
		for i := int64(0); i < 150; i++ {
			rRows = append(rRows, intRow(i, i))
			sRows = append(sRows, intRow(i, i))
			tRows = append(tRows, intRow(i, i*2))
		}
		for view, rows := range map[string][]relation.Tuple{"R": rRows, "S": sRows, "T": tRows} {
			if err := w.LoadBase(view, rows); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		for _, base := range []string{"R", "S", "T"} {
			d := delta.New(w.MustView(base).Schema())
			d.Add(intRow(7, 7), 1)
			d.Add(intRow(1_000_000+3, 3), 1)
			if err := w.StageDelta(base, d); err != nil {
				t.Fatal(err)
			}
		}
		return w
	}
	window := func(w *Warehouse) CompReport {
		rep, err := w.Compute("V", []string{"R", "S", "T"})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"R", "S", "T", "V"} {
			if _, err := w.Install(name); err != nil {
				t.Fatal(err)
			}
		}
		return rep
	}

	plain := build(Options{})
	plainRep := window(plain)

	bounded := build(Options{MemoryBudgetBytes: 4096})
	if ok, err := bounded.AttachMemory("", nil); err != nil || !ok {
		t.Fatalf("AttachMemory = (%v, %v)", ok, err)
	}
	rep := window(bounded)
	bounded.DetachMemory()
	// The δR ⋈ S ⋈ T term alone must spill both state builds, so the window
	// spills more tables than it has terms with a single state operand.
	if rep.SpillCount < 2 {
		t.Fatalf("expected at least two spilled builds, got %d", rep.SpillCount)
	}
	if rep.OperandTuples != plainRep.OperandTuples {
		t.Errorf("work moved under spilling: %d vs %d", rep.OperandTuples, plainRep.OperandTuples)
	}
	requireSameBag(t, "V", bagOf(t, bounded, "V"), bagOf(t, plain, "V"))
	if err := bounded.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedPeakStaysUnderBudget: at a realistic budget the resident
// head-room scheme keeps the window's true peak (including loaded spill
// partitions) under the configured budget, while the same window unbounded
// provably needs more.
func TestBoundedPeakStaysUnderBudget(t *testing.T) {
	const n = 20000
	const budget = 1 << 20

	// Accounting-only leg: a huge budget admits everything resident, so its
	// peak is the window's unbounded footprint.
	unbounded := newOneToOneWarehouse(t, n, Options{MemoryBudgetBytes: 1 << 40})
	if ok, err := unbounded.AttachMemory("", nil); err != nil || !ok {
		t.Fatalf("AttachMemory = (%v, %v)", ok, err)
	}
	uRep := runJoinWindow(t, unbounded)
	uStats := unbounded.DetachMemory()
	if uRep.SpillCount != 0 {
		t.Fatalf("unbounded leg spilled %d builds", uRep.SpillCount)
	}
	if uStats.PeakReservedBytes <= budget {
		t.Fatalf("workload too small to prove anything: unbounded peak %d <= budget %d",
			uStats.PeakReservedBytes, budget)
	}

	bounded := newOneToOneWarehouse(t, n, Options{MemoryBudgetBytes: budget})
	if ok, err := bounded.AttachMemory("", nil); err != nil || !ok {
		t.Fatalf("AttachMemory = (%v, %v)", ok, err)
	}
	bRep := runJoinWindow(t, bounded)
	bStats := bounded.DetachMemory()
	if bRep.SpillCount == 0 {
		t.Fatal("bounded leg never spilled")
	}
	if bStats.PeakReservedBytes > budget {
		t.Fatalf("bounded peak %d exceeds budget %d", bStats.PeakReservedBytes, budget)
	}
	requireSameBag(t, "V", bagOf(t, bounded, "V"), bagOf(t, unbounded, "V"))
}

// TestSharedEntrySpillsBeforeRecompute: with the unified budget attached, an
// over-budget shared entry degrades to shared spill files that later
// consumers still probe (EvictedToSpill, hits intact) — it is NOT dropped to
// per-consumer recompute. Only when spilling itself fails does the entry
// degrade the rest of the way (Evicted), and the window still completes with
// correct results. This pins the spill-before-recompute ordering that fixes
// the -share-budget-mb cliff.
func TestSharedEntrySpillsBeforeRecompute(t *testing.T) {
	const nViews = 3

	// Healthy spill path: entries degrade to spill, consumers still hit.
	w := newSiblingWarehouse(t, nViews, Options{ShareComputation: true, MemoryBudgetBytes: 4096})
	loadSiblingData(t, w)
	if ok, err := w.AttachMemory("", nil); err != nil || !ok {
		t.Fatalf("AttachMemory = (%v, %v)", ok, err)
	}
	if !w.AttachSharing(siblingHints(nViews)) {
		t.Fatal("AttachSharing refused")
	}
	reps := runSiblingWindow(t, w, nViews)
	stats := w.DetachSharing()
	w.DetachMemory()
	if stats.EvictedToSpill == 0 {
		t.Fatalf("over-budget entries never spilled: %+v", stats)
	}
	if stats.Evicted != 0 {
		t.Fatalf("healthy spill path still evicted to recompute: %+v", stats)
	}
	var hits int
	for _, rep := range reps {
		hits += rep.SharedHits
	}
	if hits == 0 {
		t.Fatal("no consumer hit a spilled shared entry")
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}

	// Spill failure: the first registry build's spill dies; that entry (and
	// only that path) degrades to recompute, later builds spill fine, and the
	// final state still verifies.
	inj := faults.New(42)
	inj.FailAt("spill-write", 1)
	w2 := newSiblingWarehouse(t, nViews, Options{ShareComputation: true, MemoryBudgetBytes: 4096})
	loadSiblingData(t, w2)
	if ok, err := w2.AttachMemory("", inj); err != nil || !ok {
		t.Fatalf("AttachMemory = (%v, %v)", ok, err)
	}
	if !w2.AttachSharing(siblingHints(nViews)) {
		t.Fatal("AttachSharing refused")
	}
	runSiblingWindow(t, w2, nViews)
	stats2 := w2.DetachSharing()
	w2.DetachMemory()
	if stats2.Evicted == 0 {
		t.Fatalf("failed spill did not degrade to recompute: %+v", stats2)
	}
	if err := w2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	requireSameBag(t, "V1", bagOf(t, w2, "V1"), bagOf(t, w, "V1"))
}

// TestSpillENOSPCSurfacesWithStateIntact: a full disk during spilling fails
// the Compute with an error satisfying errors.Is(err, ENOSPC), and the
// installed state is untouched — the degradation ladder above can rerun.
func TestSpillENOSPCSurfacesWithStateIntact(t *testing.T) {
	w := newOneToOneWarehouse(t, 120, Options{MemoryBudgetBytes: 4096})
	inj := faults.New(7)
	inj.FailAt("spill-enospc", 1)
	if ok, err := w.AttachMemory("", inj); err != nil || !ok {
		t.Fatalf("AttachMemory = (%v, %v)", ok, err)
	}
	defer w.DetachMemory()
	before := bagOf(t, w, "V")
	_, err := w.Compute("V", []string{"R", "S"})
	if err == nil {
		t.Fatal("ENOSPC fault did not fail the compute")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("error does not report ENOSPC: %v", err)
	}
	requireSameBag(t, "V (installed)", bagOf(t, w, "V"), before)
	if err := w.VerifyAll(); err != nil {
		t.Fatalf("failed spill corrupted installed state: %v", err)
	}
}

// TestCrashMidSpillLeavesDirectory: a crash-class fault during spill I/O must
// leave the spill directory behind (a killed process removes nothing) so the
// stale-dir sweep on the next open is exercised by authentic debris; a clean
// detach removes it.
func TestCrashMidSpillLeavesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "w1")
	w := newOneToOneWarehouse(t, 120, Options{MemoryBudgetBytes: 4096})
	inj := faults.New(9)
	inj.CrashAt("spill-write", 1)
	if ok, err := w.AttachMemory(dir, inj); err != nil || !ok {
		t.Fatalf("AttachMemory = (%v, %v)", ok, err)
	}
	if _, err := w.Compute("V", []string{"R", "S"}); err == nil {
		t.Fatal("crash fault did not fire")
	}
	w.DetachMemory()
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("crashed window left no spill debris (err=%v, %d entries)", err, len(ents))
	}

	dir2 := filepath.Join(t.TempDir(), "w2")
	w2 := newOneToOneWarehouse(t, 120, Options{MemoryBudgetBytes: 4096})
	if ok, err := w2.AttachMemory(dir2, nil); err != nil || !ok {
		t.Fatalf("AttachMemory = (%v, %v)", ok, err)
	}
	runJoinWindow(t, w2)
	w2.DetachMemory()
	if _, err := os.Stat(dir2); !os.IsNotExist(err) {
		t.Fatalf("clean detach left the spill dir: %v", err)
	}
}

// TestAttachMemoryRefusals: no budget, indexes enabled, or double attach all
// refuse; DetachMemory with nothing attached is a safe no-op.
func TestAttachMemoryRefusals(t *testing.T) {
	w := newOneToOneWarehouse(t, 10, Options{})
	if ok, err := w.AttachMemory("", nil); ok || err != nil {
		t.Fatalf("attach with no budget = (%v, %v)", ok, err)
	}
	if ms := w.DetachMemory(); ms != (MemStats{}) {
		t.Fatalf("detach with nothing attached: %+v", ms)
	}

	wi := newOneToOneWarehouse(t, 10, Options{MemoryBudgetBytes: 1 << 20, UseIndexes: true})
	if ok, err := wi.AttachMemory("", nil); ok || err != nil {
		t.Fatalf("attach under UseIndexes = (%v, %v)", ok, err)
	}

	wb := newOneToOneWarehouse(t, 10, Options{MemoryBudgetBytes: 1 << 20})
	if ok, err := wb.AttachMemory("", nil); !ok || err != nil {
		t.Fatalf("first attach = (%v, %v)", ok, err)
	}
	if ok, err := wb.AttachMemory("", nil); ok || err != nil {
		t.Fatalf("second attach = (%v, %v)", ok, err)
	}
	wb.DetachMemory()
}
