package core

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/relation"
)

var (
	schemaR = relation.Schema{{Name: "a", Kind: relation.KindInt}, {Name: "b", Kind: relation.KindInt}}
	schemaS = relation.Schema{{Name: "b", Kind: relation.KindInt}, {Name: "c", Kind: relation.KindInt}}
)

func intRow(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.NewInt(v)
	}
	return t
}

// newJoinWarehouse builds: base R(a,b), base S(b,c), derived J = R ⋈ S on b
// projecting (a, c), and derived A = SELECT a, SUM(c) FROM J GROUP BY a.
func newJoinWarehouse(t *testing.T) *Warehouse {
	t.Helper()
	w := New(Options{})
	if err := w.DefineBase("R", schemaR); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineBase("S", schemaS); err != nil {
		t.Fatal(err)
	}
	jb := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
	jb.Join("r.b", "s.b").SelectCol("r.a").SelectCol("s.c")
	j, err := jb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDerived("J", j); err != nil {
		t.Fatal(err)
	}
	jSchema := j.OutputSchema()
	ab := algebra.NewBuilder().From("j", "J", jSchema)
	ab.GroupByCol("j.a").Agg("total", delta.AggSum, ab.Col("j.c"))
	a, err := ab.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDerived("A", a); err != nil {
		t.Fatal(err)
	}
	return w
}

func loadJoinData(t *testing.T, w *Warehouse) {
	t.Helper()
	if err := w.LoadBase("R", []relation.Tuple{intRow(1, 10), intRow(2, 10), intRow(3, 20)}); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadBase("S", []relation.Tuple{intRow(10, 100), intRow(10, 200), intRow(20, 300)}); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
}

func TestDefineErrors(t *testing.T) {
	w := New(Options{})
	if err := w.DefineBase("", schemaR); err == nil {
		t.Errorf("empty name accepted")
	}
	if err := w.DefineBase("R", nil); err == nil {
		t.Errorf("empty schema accepted")
	}
	if err := w.DefineBase("R", schemaR); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineBase("R", schemaR); err == nil {
		t.Errorf("duplicate name accepted")
	}
	if err := w.DefineDerived("D", nil); err == nil {
		t.Errorf("nil def accepted")
	}
	// Ref to unknown view.
	cq := algebra.NewBuilder().From("x", "X", schemaR)
	cq.SelectCol("x.a")
	def, err := cq.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDerived("D", def); err == nil {
		t.Errorf("undefined ref accepted")
	}
	// Ref schema mismatch.
	cq2 := algebra.NewBuilder().From("r", "R", schemaS)
	cq2.SelectCol("r.b")
	def2, err := cq2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDerived("D", def2); err == nil {
		t.Errorf("schema mismatch accepted")
	}
}

func TestRefreshAndRecompute(t *testing.T) {
	w := newJoinWarehouse(t)
	loadJoinData(t, w)
	// J = {(1,100),(1,200),(2,100),(2,200),(3,300)}
	if got := w.MustView("J").Cardinality(); got != 5 {
		t.Fatalf("|J| = %d, want 5", got)
	}
	// A = {(1,300),(2,300),(3,300)}
	rows := w.MustView("A").SortedRows()
	if len(rows) != 3 || rows[0].Tuple.String() != "(1, 300)" || rows[2].Tuple.String() != "(3, 300)" {
		t.Fatalf("A = %v", rows)
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphAccessors(t *testing.T) {
	w := newJoinWarehouse(t)
	if got := w.Children("J"); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Errorf("Children(J) = %v", got)
	}
	if got := w.Children("R"); got != nil {
		t.Errorf("Children(R) = %v", got)
	}
	if got := w.Parents("J"); len(got) != 1 || got[0] != "A" {
		t.Errorf("Parents(J) = %v", got)
	}
	if got := w.Parents("R"); len(got) != 1 || got[0] != "J" {
		t.Errorf("Parents(R) = %v", got)
	}
	names := w.ViewNames()
	if len(names) != 4 || names[0] != "R" || names[3] != "A" {
		t.Errorf("ViewNames = %v", names)
	}
	if w.View("nope") != nil {
		t.Errorf("View(nope) should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustView should panic")
		}
	}()
	w.MustView("nope")
}

// stage builds a delta for a base view.
func stage(t *testing.T, w *Warehouse, view string, changes []delta.Change) {
	t.Helper()
	d := delta.New(w.MustView(view).Schema())
	for _, c := range changes {
		d.Add(c.Tuple, c.Count)
	}
	if err := w.StageDelta(view, d); err != nil {
		t.Fatal(err)
	}
}

func TestOneWayStrategyMatchesRecompute(t *testing.T) {
	w := newJoinWarehouse(t)
	loadJoinData(t, w)
	// Changes: delete (2,10) from R, insert (4,20); insert (10,500) into S.
	stage(t, w, "R", []delta.Change{{Tuple: intRow(2, 10), Count: -1}, {Tuple: intRow(4, 20), Count: 1}})
	stage(t, w, "S", []delta.Change{{Tuple: intRow(10, 500), Count: 1}})

	// 1-way strategy for the whole VDAG, R first:
	// Comp(J,{R}); Inst(R); Comp(J,{S}); Inst(S); Comp(A,{J}); Inst(J); Inst(A)
	steps := []struct {
		comp string
		over []string
		inst string
	}{
		{comp: "J", over: []string{"R"}}, {inst: "R"},
		{comp: "J", over: []string{"S"}}, {inst: "S"},
		{comp: "A", over: []string{"J"}}, {inst: "J"}, {inst: "A"},
	}
	for _, s := range steps {
		if s.comp != "" {
			if _, err := w.Compute(s.comp, s.over); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := w.Install(s.inst); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if pv := w.PendingViews(); len(pv) != 0 {
		t.Errorf("pending after strategy: %v", pv)
	}
}

func TestDualStageStrategyMatchesRecompute(t *testing.T) {
	w := newJoinWarehouse(t)
	loadJoinData(t, w)
	stage(t, w, "R", []delta.Change{{Tuple: intRow(1, 10), Count: -1}})
	stage(t, w, "S", []delta.Change{{Tuple: intRow(20, 300), Count: -1}, {Tuple: intRow(20, 77), Count: 1}})

	// Dual-stage: Comp(J,{R,S}); Comp(A,{J}); then install everything.
	rep, err := w.Compute("J", []string{"R", "S"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Terms != 3 {
		t.Errorf("Comp(J,{R,S}) evaluated %d terms, want 3", rep.Terms)
	}
	if _, err := w.Compute("A", []string{"J"}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"R", "S", "J", "A"} {
		if _, err := w.Install(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestBothOrdersAgree(t *testing.T) {
	build := func() *Warehouse {
		w := newJoinWarehouse(t)
		loadJoinData(t, w)
		stage(t, w, "R", []delta.Change{{Tuple: intRow(3, 20), Count: -1}, {Tuple: intRow(5, 10), Count: 1}})
		stage(t, w, "S", []delta.Change{{Tuple: intRow(10, 100), Count: -1}})
		return w
	}
	runRS := build()
	for _, step := range []string{"cJ.R", "iR", "cJ.S", "iS", "cA.J", "iJ", "iA"} {
		applyStep(t, runRS, step)
	}
	runSR := build()
	for _, step := range []string{"cJ.S", "iS", "cJ.R", "iR", "cA.J", "iJ", "iA"} {
		applyStep(t, runSR, step)
	}
	for _, v := range []string{"J", "A"} {
		a := runRS.MustView(v).SortedRows()
		b := runSR.MustView(v).SortedRows()
		if len(a) != len(b) {
			t.Fatalf("%s: %v vs %v", v, a, b)
		}
		for i := range a {
			if relation.CompareTuples(a[i].Tuple, b[i].Tuple) != 0 || a[i].Count != b[i].Count {
				t.Fatalf("%s row %d: %v vs %v", v, i, a[i], b[i])
			}
		}
	}
	if err := runRS.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if err := runSR.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// applyStep interprets "cV.X" as Comp(V,{X}) and "iV" as Inst(V).
func applyStep(t *testing.T, w *Warehouse, step string) {
	t.Helper()
	switch step[0] {
	case 'c':
		var view, over string
		for i := 1; i < len(step); i++ {
			if step[i] == '.' {
				view, over = step[1:i], step[i+1:]
			}
		}
		if _, err := w.Compute(view, []string{over}); err != nil {
			t.Fatalf("step %s: %v", step, err)
		}
	case 'i':
		if _, err := w.Install(step[1:]); err != nil {
			t.Fatalf("step %s: %v", step, err)
		}
	}
}

func TestComputeErrors(t *testing.T) {
	w := newJoinWarehouse(t)
	loadJoinData(t, w)
	if _, err := w.Compute("R", []string{"S"}); err == nil {
		t.Errorf("Compute on base view accepted")
	}
	if _, err := w.Compute("nope", nil); err == nil {
		t.Errorf("Compute on unknown view accepted")
	}
	if _, err := w.Compute("J", []string{"A"}); err == nil {
		t.Errorf("Compute over non-referenced view accepted")
	}
	if _, err := w.Compute("J", nil); err == nil {
		t.Errorf("Compute over empty set accepted")
	}
	// Compute after finalize on aggregate view must fail.
	if _, err := w.Compute("A", []string{"J"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.DeltaOf("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Compute("A", []string{"J"}); err == nil {
		t.Errorf("Compute after finalization accepted")
	}
}

func TestStageDeltaErrors(t *testing.T) {
	w := newJoinWarehouse(t)
	d := delta.New(schemaR)
	if err := w.StageDelta("J", d); err == nil {
		t.Errorf("StageDelta on derived view accepted")
	}
	if err := w.StageDelta("nope", d); err == nil {
		t.Errorf("StageDelta on unknown view accepted")
	}
	if err := w.StageDelta("S", d); err == nil {
		t.Errorf("StageDelta with wrong schema accepted")
	}
	if err := w.LoadBase("J", nil); err == nil {
		t.Errorf("LoadBase on derived accepted")
	}
	if err := w.LoadBase("nope", nil); err == nil {
		t.Errorf("LoadBase on unknown accepted")
	}
	if err := w.LoadBase("R", []relation.Tuple{intRow(1)}); err == nil {
		t.Errorf("LoadBase with wrong arity accepted")
	}
}

func TestWorkAccounting(t *testing.T) {
	w := newJoinWarehouse(t)
	loadJoinData(t, w)
	stage(t, w, "R", []delta.Change{{Tuple: intRow(9, 10), Count: 1}})
	// Comp(J,{R}) has one term: δR ⋈ S. Operands scanned: |δR| + |S| = 1 + 3.
	rep, err := w.Compute("J", []string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OperandTuples != 4 {
		t.Errorf("Comp(J,{R}) scanned %d tuples, want 4", rep.OperandTuples)
	}
	if rep.Terms != 1 {
		t.Errorf("terms = %d, want 1", rep.Terms)
	}
	// Install R: |δR| = 1 row.
	n, err := w.Install("R")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("Install(R) = %d rows, want 1", n)
	}
	// Comp(J,{S}): δS empty; one term: R' ⋈ δS → |R'| + |δS| = 4 + 0.
	rep, err = w.Compute("J", []string{"S"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OperandTuples != 4 {
		t.Errorf("Comp(J,{S}) scanned %d, want 4", rep.OperandTuples)
	}
}

func TestSkipEmptyDeltas(t *testing.T) {
	w := newJoinWarehouse(t)
	loadJoinData(t, w)
	w.SetOptions(Options{SkipEmptyDeltas: true})
	rep, err := w.Compute("J", []string{"S"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Skipped || rep.OperandTuples != 0 {
		t.Errorf("empty-delta Comp not skipped: %+v", rep)
	}
	if !w.Options().SkipEmptyDeltas {
		t.Errorf("Options not set")
	}
}

func TestCloneIndependence(t *testing.T) {
	w := newJoinWarehouse(t)
	loadJoinData(t, w)
	stage(t, w, "R", []delta.Change{{Tuple: intRow(1, 10), Count: -1}})
	cl := w.Clone()
	// Run the update on the clone only.
	for _, step := range []string{"cJ.R", "iR", "cJ.S", "iS", "cA.J", "iJ", "iA"} {
		applyStep(t, cl, step)
	}
	if w.MustView("R").Cardinality() != 3 {
		t.Errorf("original R mutated")
	}
	if cl.MustView("R").Cardinality() != 2 {
		t.Errorf("clone R not updated")
	}
	if len(w.PendingViews()) != 1 || w.PendingViews()[0] != "R" {
		t.Errorf("original pending = %v", w.PendingViews())
	}
	if err := cl.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaOfAndSizes(t *testing.T) {
	w := newJoinWarehouse(t)
	loadJoinData(t, w)
	stage(t, w, "R", []delta.Change{{Tuple: intRow(1, 10), Count: -1}, {Tuple: intRow(7, 20), Count: 1}})
	n, err := w.DeltaSize("R")
	if err != nil || n != 2 {
		t.Errorf("DeltaSize(R) = %d, %v", n, err)
	}
	if _, err := w.DeltaOf("nope"); err == nil {
		t.Errorf("DeltaOf unknown accepted")
	}
	if _, err := w.DeltaSize("nope"); err == nil {
		t.Errorf("DeltaSize unknown accepted")
	}
	// Aggregate delta: deleting R(1,10) removes group 1 (its only rows);
	// inserting R(7,20) adds group 7 with S(20,300).
	if _, err := w.Compute("J", []string{"R"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Install("R"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Compute("J", []string{"S"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Install("S"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Compute("A", []string{"J"}); err != nil {
		t.Fatal(err)
	}
	dA, err := w.DeltaOf("A")
	if err != nil {
		t.Fatal(err)
	}
	// Group 1 disappears (minus), group 7 appears (plus).
	if dA.PlusCount() != 1 || dA.MinusCount() != 1 {
		t.Errorf("δA = %v", dA.Sorted())
	}
	for _, v := range []string{"J", "A"} {
		if _, err := w.Install(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestInstallErrors(t *testing.T) {
	w := newJoinWarehouse(t)
	loadJoinData(t, w)
	if _, err := w.Install("nope"); err == nil {
		t.Errorf("Install unknown accepted")
	}
	// Deleting a row that does not exist must fail at install.
	stage(t, w, "R", []delta.Change{{Tuple: intRow(99, 99), Count: -1}})
	if _, err := w.Install("R"); err == nil {
		t.Errorf("install of impossible delete accepted")
	}
}

// TestRandomizedStrategiesMatchRecompute drives random change batches
// through both a 1-way and a dual-stage strategy and checks the final state
// against recomputation — the paper's core correctness claim (GMS93).
func TestRandomizedStrategiesMatchRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		w := newJoinWarehouse(t)
		// Random base data.
		var rRows, sRows []relation.Tuple
		for i := 0; i < 20; i++ {
			rRows = append(rRows, intRow(rng.Int63n(6), rng.Int63n(4)*10))
			sRows = append(sRows, intRow(rng.Int63n(4)*10, rng.Int63n(5)*100))
		}
		if err := w.LoadBase("R", rRows); err != nil {
			t.Fatal(err)
		}
		if err := w.LoadBase("S", sRows); err != nil {
			t.Fatal(err)
		}
		if err := w.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		// Random change batch: delete some existing rows, insert new ones.
		for _, base := range []string{"R", "S"} {
			d := delta.New(w.MustView(base).Schema())
			rows := w.MustView(base).SortedRows()
			for _, r := range rows {
				if rng.Intn(3) == 0 {
					d.Add(r.Tuple, -1)
				}
			}
			for i := 0; i < rng.Intn(5); i++ {
				d.Add(intRow(rng.Int63n(6), rng.Int63n(4)*10), 1)
			}
			if err := w.StageDelta(base, d); err != nil {
				t.Fatal(err)
			}
		}
		oneWay := w.Clone()
		for _, step := range []string{"cJ.R", "iR", "cJ.S", "iS", "cA.J", "iJ", "iA"} {
			applyStep(t, oneWay, step)
		}
		if err := oneWay.VerifyAll(); err != nil {
			t.Fatalf("trial %d 1-way: %v", trial, err)
		}
		dual := w.Clone()
		if _, err := dual.Compute("J", []string{"R", "S"}); err != nil {
			t.Fatal(err)
		}
		if _, err := dual.Compute("A", []string{"J"}); err != nil {
			t.Fatal(err)
		}
		for _, v := range []string{"R", "S", "J", "A"} {
			if _, err := dual.Install(v); err != nil {
				t.Fatal(err)
			}
		}
		if err := dual.VerifyAll(); err != nil {
			t.Fatalf("trial %d dual: %v", trial, err)
		}
		// Both strategies must agree with each other too.
		for _, v := range []string{"J", "A"} {
			a, b := oneWay.MustView(v).SortedRows(), dual.MustView(v).SortedRows()
			if len(a) != len(b) {
				t.Fatalf("trial %d: %s disagrees: %d vs %d rows", trial, v, len(a), len(b))
			}
			for i := range a {
				if relation.CompareTuples(a[i].Tuple, b[i].Tuple) != 0 || a[i].Count != b[i].Count {
					t.Fatalf("trial %d: %s row %d: %v vs %v", trial, v, i, a[i], b[i])
				}
			}
		}
	}
}
