package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/relation"
	"repro/internal/storage"
)

var schemaT = relation.Schema{{Name: "c", Kind: relation.KindInt}, {Name: "d", Kind: relation.KindInt}}

// newThreeWayWarehouse builds base R(a,b), S(b,c), T(c,d), the SPJ view
// V3 = R ⋈ S ⋈ T (on b and c, selecting a, d) and the summary view
// A3 = SELECT a, COUNT(*), SUM(d) over the same join — both three-ref
// views, so Comp over all three children evaluates 2^3−1 = 7 terms and the
// build cache has real sharing to find.
func newThreeWayWarehouse(t *testing.T, opts Options) *Warehouse {
	t.Helper()
	w := New(opts)
	for _, base := range []struct {
		name   string
		schema relation.Schema
	}{{"R", schemaR}, {"S", schemaS}, {"T", schemaT}} {
		if err := w.DefineBase(base.name, base.schema); err != nil {
			t.Fatal(err)
		}
	}
	vb := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS).From("tt", "T", schemaT)
	vb.Join("r.b", "s.b").Join("s.c", "tt.c").SelectCol("r.a").SelectCol("tt.d")
	v3, err := vb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDerived("V3", v3); err != nil {
		t.Fatal(err)
	}
	ab := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS).From("tt", "T", schemaT)
	ab.Join("r.b", "s.b").Join("s.c", "tt.c").GroupByCol("r.a")
	ab.Agg("n", delta.AggCount, nil).Agg("total", delta.AggSum, ab.Col("tt.d"))
	a3, err := ab.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDerived("A3", a3); err != nil {
		t.Fatal(err)
	}
	return w
}

// stageRandomChanges loads random base data, refreshes, and stages a mixed
// change batch per base view: deletes of loaded rows plus fresh inserts,
// with multiplicities > 1 so bag semantics are exercised.
func stageRandomChanges(t *testing.T, w *Warehouse, rng *rand.Rand) {
	t.Helper()
	loaded := map[string][]relation.Tuple{}
	gen := func(name string, n int, mk func() relation.Tuple) {
		rows := make([]relation.Tuple, 0, n)
		for i := 0; i < n; i++ {
			rows = append(rows, mk())
		}
		if err := w.LoadBase(name, rows); err != nil {
			t.Fatal(err)
		}
		loaded[name] = rows
	}
	gen("R", 40+rng.Intn(40), func() relation.Tuple { return intRow(rng.Int63n(10), rng.Int63n(5)) })
	gen("S", 30+rng.Intn(30), func() relation.Tuple { return intRow(rng.Int63n(5), rng.Int63n(5)) })
	gen("T", 30+rng.Intn(30), func() relation.Tuple { return intRow(rng.Int63n(5), rng.Int63n(100)) })
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	schemas := map[string]relation.Schema{"R": schemaR, "S": schemaS, "T": schemaT}
	for name, rows := range loaded {
		d := delta.New(schemas[name])
		for _, tup := range rows {
			if rng.Intn(4) == 0 {
				d.Add(tup, -1)
			}
		}
		for i := 0; i < 5+rng.Intn(10); i++ {
			d.Add(intRow(rng.Int63n(10), rng.Int63n(5)), 1+rng.Int63n(3))
		}
		if err := w.StageDelta(name, d); err != nil {
			t.Fatal(err)
		}
	}
}

func sameDelta(t *testing.T, label string, a, b *delta.Delta) {
	t.Helper()
	sa, sb := a.Sorted(), b.Sorted()
	if len(sa) != len(sb) {
		t.Fatalf("%s: %d vs %d distinct changes", label, len(sa), len(sb))
	}
	for i := range sa {
		if relation.CompareTuples(sa[i].Tuple, sb[i].Tuple) != 0 || sa[i].Count != sb[i].Count {
			t.Fatalf("%s: change %d differs: %v×%d vs %v×%d",
				label, i, sa[i].Tuple, sa[i].Count, sb[i].Tuple, sb[i].Count)
		}
	}
}

// TestParallelTermsMatchesSequential drives the parallel engine across
// worker counts and morsel sizes (including degenerate one-row morsels)
// against the sequential engine on the same staged changes: the produced
// delta bags, the work accounting (OperandTuples — identical with and
// without the build cache), and the post-install states must all agree,
// and installs must survive the recomputation oracle.
func TestParallelTermsMatchesSequential(t *testing.T) {
	for _, cfg := range []struct {
		workers, morsel int
	}{
		{1, 1024}, {2, 1}, {4, 4}, {4, 1024}, {8, 16},
	} {
		for _, useIndexes := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/morsel=%d/indexes=%v", cfg.workers, cfg.morsel, useIndexes)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(cfg.workers*1000 + cfg.morsel)))
				base := newThreeWayWarehouse(t, Options{UseIndexes: useIndexes})
				stageRandomChanges(t, base, rng)

				seq := base.Clone()
				par := base.Clone()
				par.SetOptions(Options{
					UseIndexes:    useIndexes,
					ParallelTerms: true,
					Workers:       cfg.workers,
					MorselSize:    cfg.morsel,
				})

				over := []string{"R", "S", "T"}
				for _, view := range []string{"V3", "A3"} {
					seqRep, err := seq.Compute(view, over)
					if err != nil {
						t.Fatal(err)
					}
					parRep, err := par.Compute(view, over)
					if err != nil {
						t.Fatal(err)
					}
					if parRep.Terms != seqRep.Terms {
						t.Fatalf("%s: terms %d vs %d", view, parRep.Terms, seqRep.Terms)
					}
					if parRep.OperandTuples != seqRep.OperandTuples {
						t.Fatalf("%s: OperandTuples %d (parallel) vs %d (sequential) — the build cache must not change the linear work metric",
							view, parRep.OperandTuples, seqRep.OperandTuples)
					}
					if parRep.OutputTuples != seqRep.OutputTuples {
						t.Fatalf("%s: OutputTuples %d vs %d", view, parRep.OutputTuples, seqRep.OutputTuples)
					}
					if !useIndexes {
						// 7 terms over 3 shared states: the cache must fire.
						if parRep.BuildCacheHits == 0 || parRep.BuildCacheMisses == 0 {
							t.Fatalf("%s: expected build-cache traffic, got hits=%d misses=%d",
								view, parRep.BuildCacheHits, parRep.BuildCacheMisses)
						}
						if parRep.BuildTuplesSaved <= 0 {
							t.Fatalf("%s: expected saved build tuples, got %d", view, parRep.BuildTuplesSaved)
						}
					}
					if seqRep.BuildCacheHits != 0 || seqRep.BuildTuplesSaved != 0 {
						t.Fatalf("%s: sequential engine reported cache traffic", view)
					}
					ds, err := seq.DeltaOf(view)
					if err != nil {
						t.Fatal(err)
					}
					dp, err := par.DeltaOf(view)
					if err != nil {
						t.Fatal(err)
					}
					sameDelta(t, view, dp, ds)
				}

				for _, w := range []*Warehouse{seq, par} {
					for _, view := range []string{"V3", "A3", "R", "S", "T"} {
						if _, err := w.Install(view); err != nil {
							t.Fatalf("install %s: %v", view, err)
						}
					}
				}
				if err := par.VerifyAll(); err != nil {
					t.Fatalf("parallel warehouse diverged from recomputation: %v", err)
				}
				for _, view := range []string{"V3", "A3"} {
					if !parTable(seq, view).Equal(parTable(par, view)) {
						t.Fatalf("%s: installed states differ", view)
					}
				}
			})
		}
	}
}

// parTable renders a view's current state as a plain table for comparison.
func parTable(w *Warehouse, name string) *storage.Table {
	v := w.MustView(name)
	if v.agg != nil {
		return v.agg.AsTable()
	}
	return v.table
}

// TestParallelTermsSingleRef checks the degenerate cases: a one-ref view
// (single term, no cache sharing) and an empty change batch.
func TestParallelTermsSingleRef(t *testing.T) {
	w := newJoinWarehouse(t)
	loadJoinData(t, w)
	w.SetOptions(Options{ParallelTerms: true, Workers: 4, MorselSize: 1})

	d := delta.New(schemaR)
	d.Add(intRow(7, 10), 2)
	d.Add(intRow(1, 10), -1)
	if err := w.StageDelta("R", d); err != nil {
		t.Fatal(err)
	}
	rep, err := w.Compute("J", []string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Terms != 1 || rep.BuildCacheHits != 0 {
		t.Fatalf("single-ref compute: terms=%d hits=%d", rep.Terms, rep.BuildCacheHits)
	}
	if _, err := w.Compute("A", []string{"J"}); err != nil {
		t.Fatal(err)
	}
	for _, view := range []string{"R", "J", "A"} {
		if _, err := w.Install(view); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}

	// Nothing staged: Compute must produce an empty delta without deadlock.
	if _, err := w.Compute("J", []string{"R"}); err != nil {
		t.Fatal(err)
	}
	dj, err := w.DeltaOf("J")
	if err != nil {
		t.Fatal(err)
	}
	if !dj.IsEmpty() {
		t.Fatalf("expected empty delta, got %d changes", dj.Size())
	}
}

// TestWorkerPoolInlineFallback pins the budget semantics: a pool of one
// worker admits zero background goroutines, so every task runs inline on
// the submitter, strictly serially.
func TestWorkerPoolInlineFallback(t *testing.T) {
	p := newWorkerPool(1)
	if cap(p.sem) != 0 {
		t.Fatalf("one-worker pool admits %d background goroutines, want 0", cap(p.sem))
	}
	var wg sync.WaitGroup
	ran := 0
	for i := 0; i < 10; i++ {
		p.do(&wg, func() { ran++ }) // inline: no synchronization needed
	}
	wg.Wait()
	if ran != 10 {
		t.Fatalf("ran %d of 10 tasks", ran)
	}
}
