package core

import (
	"sync"
	"testing"

	"repro/internal/relation"
)

func epochWarehouse(t *testing.T) *Warehouse {
	t.Helper()
	w := New(Options{})
	if err := w.DefineBase("B", relation.Schema{{Name: "x", Kind: relation.KindInt}}); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadBase("B", []relation.Tuple{{relation.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestEpochPinSeesFrozenState: a pin taken before a flip keeps reading the
// old state; a pin taken after reads the new one.
func TestEpochPinSeesFrozenState(t *testing.T) {
	w := epochWarehouse(t)
	r := NewEpochs(w)
	if r.Current() != 1 {
		t.Fatalf("initial epoch = %d", r.Current())
	}

	old := r.Pin()
	next := w.Clone()
	next.MustView("B").Table().Insert(relation.Tuple{relation.NewInt(2)}, 1)
	if n := r.Flip(next); n != 2 {
		t.Fatalf("flip returned epoch %d", n)
	}

	if old.Epoch() != 1 || old.Warehouse().MustView("B").Cardinality() != 1 {
		t.Fatalf("old pin sees epoch %d card %d", old.Epoch(), old.Warehouse().MustView("B").Cardinality())
	}
	fresh := r.Pin()
	if fresh.Epoch() != 2 || fresh.Warehouse().MustView("B").Cardinality() != 2 {
		t.Fatalf("fresh pin sees epoch %d card %d", fresh.Epoch(), fresh.Warehouse().MustView("B").Cardinality())
	}
	fresh.Unpin()

	// The retired epoch lives while pinned, dies on the last unpin.
	if r.Live() != 2 {
		t.Fatalf("live epochs = %d while old pin held", r.Live())
	}
	old.Unpin()
	old.Unpin() // idempotent
	if r.Live() != 1 {
		t.Fatalf("live epochs = %d after unpin", r.Live())
	}
}

// TestEpochFlipWithoutReadersCollects: flipping with no pins retires the
// predecessor immediately.
func TestEpochFlipWithoutReadersCollects(t *testing.T) {
	w := epochWarehouse(t)
	r := NewEpochs(w)
	for i := 0; i < 5; i++ {
		r.Flip(w.Clone())
	}
	if r.Live() != 1 || r.Current() != 6 {
		t.Fatalf("live=%d current=%d", r.Live(), r.Current())
	}
}

// TestEpochConcurrentPinFlip: pins and flips race; every pin observes a
// consistent epoch and the registry never leaks unpinned retired epochs.
func TestEpochConcurrentPinFlip(t *testing.T) {
	w := epochWarehouse(t)
	r := NewEpochs(w)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := r.Pin()
				if p.Warehouse().MustView("B").Cardinality() < 1 {
					panic("pinned epoch lost its rows")
				}
				p.Unpin()
			}
		}()
	}
	cur := w
	for i := 0; i < 200; i++ {
		cur = cur.Clone()
		cur.MustView("B").Table().Insert(relation.Tuple{relation.NewInt(int64(i + 10))}, 1)
		r.Flip(cur)
	}
	close(stop)
	wg.Wait()
	if r.Live() != 1 {
		t.Fatalf("live epochs after quiescence = %d", r.Live())
	}
}
