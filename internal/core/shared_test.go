package core

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/relation"
)

// newSiblingWarehouse builds base R(a,b), S(b,c) and n sibling join views
// V1..Vn = R ⋈ S on b with distinct selection thresholds — the cross-view
// sharing case: every view's Comp over {R, S} reads the same four operands
// (δR, δS, and the states of R and S).
func newSiblingWarehouse(t *testing.T, n int, opts Options) *Warehouse {
	t.Helper()
	w := New(opts)
	if err := w.DefineBase("R", schemaR); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineBase("S", schemaS); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		b := algebra.NewBuilder().From("r", "R", schemaR).From("s", "S", schemaS)
		b.Join("r.b", "s.b").
			Where(&algebra.Binary{Op: algebra.OpGt, L: b.Col("s.c"), R: &algebra.Const{Value: relation.NewInt(int64(i * 10))}}).
			SelectCol("r.a").SelectCol("s.c")
		cq, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.DefineDerived(fmt.Sprintf("V%d", i), cq); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func loadSiblingData(t *testing.T, w *Warehouse) {
	t.Helper()
	var rRows, sRows []relation.Tuple
	for i := int64(0); i < 120; i++ {
		rRows = append(rRows, intRow(i, i%10))
		sRows = append(sRows, intRow(i%10, i))
	}
	if err := w.LoadBase("R", rRows); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadBase("S", sRows); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	for _, base := range []string{"R", "S"} {
		d := delta.New(w.MustView(base).Schema())
		d.Add(intRow(1000, 3), 1)
		d.Add(intRow(3, 55), 1)
		if err := w.StageDelta(base, d); err != nil {
			t.Fatal(err)
		}
	}
}

// siblingHints hand-builds the dual-stage hints for n sibling views: every
// Comp(Vi, {R, S}) reads δR, δS and the version-0 states of R and S.
func siblingHints(n int) *SharingHints {
	ops := []SharedOperand{
		{View: "R", Delta: true}, {View: "S", Delta: true},
		{View: "R"}, {View: "S"},
	}
	h := &SharingHints{
		Consumers: make(map[SharedOperand]int),
		ByComp:    make(map[string][]SharedOperand),
	}
	for _, op := range ops {
		h.Consumers[op] = n
	}
	for i := 1; i <= n; i++ {
		h.ByComp[CompKey(fmt.Sprintf("V%d", i), []string{"R", "S"})] = ops
	}
	return h
}

// runSiblingWindow computes and installs every view dual-stage, returning
// the per-view CompReports.
func runSiblingWindow(t *testing.T, w *Warehouse, n int) []CompReport {
	t.Helper()
	reps := make([]CompReport, n)
	for i := 1; i <= n; i++ {
		rep, err := w.Compute(fmt.Sprintf("V%d", i), []string{"R", "S"})
		if err != nil {
			t.Fatal(err)
		}
		reps[i-1] = rep
	}
	for _, name := range []string{"R", "S", "V1", "V2", "V3"}[:n+2] {
		if _, err := w.Install(name); err != nil {
			t.Fatal(err)
		}
	}
	return reps
}

// TestSharedRegistryHitMissSaved: with three sibling views, the first
// Compute builds the shared tables (misses), later ones reuse them (hits)
// and report the operand tuples whose physical scan was elided — while the
// reported work stays identical to an unshared run and the final state
// verifies against recomputation.
func TestSharedRegistryHitMissSaved(t *testing.T) {
	const n = 3
	shared := newSiblingWarehouse(t, n, Options{ShareComputation: true})
	loadSiblingData(t, shared)
	plain := newSiblingWarehouse(t, n, Options{})
	loadSiblingData(t, plain)

	if !shared.AttachSharing(siblingHints(n)) {
		t.Fatal("AttachSharing refused")
	}
	sharedReps := runSiblingWindow(t, shared, n)
	stats := shared.DetachSharing()
	plainReps := runSiblingWindow(t, plain, n)

	var hits, misses int
	var saved int64
	for i := range sharedReps {
		if sharedReps[i].OperandTuples != plainReps[i].OperandTuples {
			t.Errorf("V%d: work %d with sharing, %d without — the metric must not move",
				i+1, sharedReps[i].OperandTuples, plainReps[i].OperandTuples)
		}
		hits += sharedReps[i].SharedHits
		misses += sharedReps[i].SharedMisses
		saved += sharedReps[i].SharedTuplesSaved
		if p := plainReps[i]; p.SharedHits != 0 || p.SharedMisses != 0 || p.SharedTuplesSaved != 0 {
			t.Errorf("V%d: sharing-off run reports shared counters %+v", i+1, p)
		}
	}
	if misses == 0 || hits == 0 || saved == 0 {
		t.Fatalf("sharing never engaged: hits=%d misses=%d saved=%d", hits, misses, saved)
	}
	// Later views reuse the first view's builds: every view after the first
	// must hit at least once.
	for i := 1; i < n; i++ {
		if sharedReps[i].SharedHits == 0 {
			t.Errorf("V%d: no shared hits", i+1)
		}
	}
	if stats.Entries == 0 || stats.BytesPeak == 0 {
		t.Errorf("registry stats empty: %+v", stats)
	}
	if err := shared.VerifyAll(); err != nil {
		t.Fatalf("shared run corrupted state: %v", err)
	}
}

// TestSharedRegistryBudgetEviction: a 1-byte budget makes retention
// impossible — every build is evicted, later consumers rebuild privately
// (no hits), and correctness is unaffected.
func TestSharedRegistryBudgetEviction(t *testing.T) {
	const n = 2
	w := newSiblingWarehouse(t, n, Options{ShareComputation: true, SharedBudgetBytes: 1})
	loadSiblingData(t, w)
	if !w.AttachSharing(siblingHints(n)) {
		t.Fatal("AttachSharing refused")
	}
	reps := runSiblingWindow(t, w, n)
	stats := w.DetachSharing()
	var hits int
	for _, rep := range reps {
		hits += rep.SharedHits
	}
	if hits != 0 {
		t.Errorf("1-byte budget still served %d hits", hits)
	}
	if stats.Evicted == 0 {
		t.Errorf("no evictions under a 1-byte budget: %+v", stats)
	}
	if err := w.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedRegistryLifecycle: entries drop when their last hinted consumer
// releases, and an Install of a view drops the entries built on its
// superseded delta and state.
func TestSharedRegistryLifecycle(t *testing.T) {
	const n = 2
	w := newSiblingWarehouse(t, n, Options{ShareComputation: true})
	loadSiblingData(t, w)
	if !w.AttachSharing(siblingHints(n)) {
		t.Fatal("AttachSharing refused")
	}
	if _, err := w.Compute("V1", []string{"R", "S"}); err != nil {
		t.Fatal(err)
	}
	reg := w.shared
	reg.mu.Lock()
	live := len(reg.entries)
	reg.mu.Unlock()
	if live == 0 {
		t.Fatal("no entries retained after the first of two consumers")
	}
	if _, err := w.Compute("V2", []string{"R", "S"}); err != nil {
		t.Fatal(err)
	}
	reg.mu.Lock()
	live, used := len(reg.entries), reg.used
	reg.mu.Unlock()
	if live != 0 || used != 0 {
		t.Errorf("last consumer released but %d entries / %d bytes remain", live, used)
	}

	// Re-attach and verify Install-driven invalidation: after Compute(V1),
	// Install(R) must drop every entry built on R's version-0 operands.
	w2 := newSiblingWarehouse(t, n, Options{ShareComputation: true})
	loadSiblingData(t, w2)
	if !w2.AttachSharing(siblingHints(n)) {
		t.Fatal("AttachSharing refused")
	}
	if _, err := w2.Compute("V1", []string{"R", "S"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Install("R"); err != nil {
		t.Fatal(err)
	}
	reg2 := w2.shared
	reg2.mu.Lock()
	for key := range reg2.entries {
		if key.op.View == "R" {
			t.Errorf("entry %+v survived Install(R)", key)
		}
	}
	reg2.mu.Unlock()
	w2.DetachSharing()
}

// TestSharedRegistryDisabled: without ShareComputation the attach refuses
// and Computes report no shared counters.
func TestSharedRegistryDisabled(t *testing.T) {
	w := newSiblingWarehouse(t, 2, Options{})
	loadSiblingData(t, w)
	if w.AttachSharing(siblingHints(2)) {
		t.Fatal("AttachSharing accepted hints with sharing disabled")
	}
	if w.AttachSharing(nil) {
		t.Fatal("AttachSharing accepted nil hints")
	}
	if stats := w.DetachSharing(); stats.Entries != 0 || stats.BytesPeak != 0 || len(stats.Detail) != 0 {
		t.Errorf("detach with nothing attached: %+v", stats)
	}
}
