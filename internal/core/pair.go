package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/relation"
)

// This file enumerates a view definition's join-intermediate candidates and
// computes the intermediate's rows. A candidate is a pair of *adjacent*
// FROM-clause references joined by at least one equi-join predicate: the
// composite tuple [A columns][B columns] is then a contiguous slice of the
// joined scratch row, so the probe pipeline's single-copy emit handles a
// composite build table exactly like a single-operand one. The intermediate
// is the raw equi-join only — every other filter involving the pair stays
// in the pipeline's pending-filter machinery and is applied when the
// composite step binds both references — and its rows carry the product of
// the input multiplicities, so probing it is bag-equivalent to probing the
// two operands in sequence.

// PairCand is one join-intermediate candidate of a view definition, in the
// terms the planner's pair hints use.
type PairCand struct {
	// RefA and RefB are the adjacent reference indexes (RefB == RefA+1).
	RefA, RefB int
	// ViewA and ViewB name the referenced views, in reference order.
	ViewA, ViewB string
	// Sig is the canonical equi-join signature: sorted "a=b" pairs of
	// operand-local column indexes.
	Sig string
}

// PairCandidates enumerates the adjacent equi-joined reference pairs of a
// view definition. exec adapts this into the planner's pair hints; planTerm
// recomputes the same signatures to match hints to runtime join steps.
func PairCandidates(def *algebra.CQ) []PairCand {
	var out []PairCand
	for a := 0; a+1 < len(def.Refs); a++ {
		b := a + 1
		pks := pairEquiKeys(def, a, b)
		if len(pks) == 0 {
			continue
		}
		out = append(out, PairCand{
			RefA: a, RefB: b,
			ViewA: def.Refs[a].View, ViewB: def.Refs[b].View,
			Sig: pairSig(def, a, b, pks),
		})
	}
	return out
}

// pairKey is one equi-join predicate between references a and b, with the
// column of each side in joined-row coordinates.
type pairKey struct {
	filterIdx  int
	colA, colB int
}

// pairEquiKeys finds the col=col equality filters linking exactly refs a
// and b.
func pairEquiKeys(cq *algebra.CQ, a, b int) []pairKey {
	var out []pairKey
	for fi, f := range cq.Filters {
		bin, ok := f.(*algebra.Binary)
		if !ok || bin.Op != algebra.OpEq {
			continue
		}
		lc, lok := bin.L.(*algebra.Col)
		rc, rok := bin.R.(*algebra.Col)
		if !lok || !rok {
			continue
		}
		lr, rr := cq.RefOfColumn(lc.Index), cq.RefOfColumn(rc.Index)
		switch {
		case lr == a && rr == b:
			out = append(out, pairKey{filterIdx: fi, colA: lc.Index, colB: rc.Index})
		case lr == b && rr == a:
			out = append(out, pairKey{filterIdx: fi, colA: rc.Index, colB: lc.Index})
		}
	}
	return out
}

// pairSig renders the canonical signature of a pair's equi-join keys in
// operand-local column indexes.
func pairSig(cq *algebra.CQ, a, b int, pks []pairKey) string {
	offA, offB := cq.RefOffset(a), cq.RefOffset(b)
	parts := make([]string, len(pks))
	for i, pk := range pks {
		parts[i] = fmt.Sprintf("%d=%d", pk.colA-offA, pk.colB-offB)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// joinRows computes the raw equi-join of two materialized operand scans:
// concatenated tuples with multiplied counts, hash-then-verify on the key
// columns (operand-local indexes).
func joinRows(rowsA, rowsB []prow, colsA, colsB []int, widthA, widthB int) []prow {
	buckets := make(map[uint64][]int, len(rowsB))
	encB := make([]string, len(rowsB))
	key := make(relation.Tuple, len(colsB))
	enc := make([]byte, 0, 64)
	for i := range rowsB {
		for ki, c := range colsB {
			key[ki] = rowsB[i].row[c]
		}
		enc = key.AppendEncoded(enc[:0])
		encB[i] = string(enc)
		h := hashBytes(enc)
		buckets[h] = append(buckets[h], i)
	}
	var out []prow
	keyA := make(relation.Tuple, len(colsA))
	for i := range rowsA {
		ra := &rowsA[i]
		for ki, c := range colsA {
			keyA[ki] = ra.row[c]
		}
		enc = keyA.AppendEncoded(enc[:0])
		for _, j := range buckets[hashBytes(enc)] {
			if string(enc) != encB[j] {
				continue
			}
			row := make(relation.Tuple, widthA+widthB)
			copy(row, ra.row)
			copy(row[widthA:], rowsB[j].row)
			out = append(out, prow{row: row, count: ra.count * rowsB[j].count})
		}
	}
	return out
}
