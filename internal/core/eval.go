package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/memory"
	"repro/internal/relation"
	"repro/internal/storage"
)

// CompReport summarizes one Compute call for work accounting.
type CompReport struct {
	View string
	Over []string
	// Terms is the number of maintenance terms evaluated (2^r − 1).
	Terms int
	// OperandTuples is the total number of tuples scanned across all term
	// operands — the quantity the linear work metric models as the work of
	// a compute expression. It is independent of the build cache: the
	// metric models every term's operand scan, whether or not the physical
	// build-side hash table was shared (see BuildTuplesSaved).
	OperandTuples int64
	// OutputTuples is the number of (signed) change rows produced.
	OutputTuples int64
	// Skipped reports that the whole expression was elided because every
	// delta operand was empty (only with Options.SkipEmptyDeltas).
	Skipped bool
	// BuildCacheHits counts join-step build tables served from the
	// per-Compute build cache instead of re-scanning and re-hashing the
	// operand (ParallelTerms engine only; 0 otherwise).
	BuildCacheHits int
	// BuildCacheMisses counts build tables physically constructed
	// (ParallelTerms engine only; 0 otherwise).
	BuildCacheMisses int
	// BuildTuplesSaved totals the operand tuples whose physical re-scan the
	// shared builds elided. OperandTuples still includes them: shared
	// builds change the machine's work, not the metric's.
	BuildTuplesSaved int64
	// SharedHits counts build tables this Compute probed from the
	// window-wide shared registry instead of materializing its own copy
	// (only with an attached SharedRegistry; 0 otherwise). In the parallel
	// engine the per-Compute cache fronts the registry, so each distinct
	// operand counts once per Compute; the sequential engine consults the
	// registry per term.
	SharedHits int
	// SharedMisses counts shared tables this Compute was first to
	// materialize into the registry.
	SharedMisses int
	// SharedTuplesSaved totals the operand tuples whose scan-and-hash the
	// shared registry elided for this Compute. Like BuildTuplesSaved, it
	// never changes OperandTuples.
	SharedTuplesSaved int64
	// SpillCount is the number of build tables this Compute spilled to disk
	// because they did not fit the window memory budget (0 without an
	// attached budget). Like the caches, spilling changes physical work
	// only — OperandTuples never sees it.
	SpillCount int
	// SpilledBytes is the bytes this Compute wrote to spill files.
	SpilledBytes int64
	// SpillReReadBytes is the bytes this Compute re-read from spill files
	// during partition-wise probing.
	SpillReReadBytes int64
}

// source abstracts the two operand kinds a term reads: a view's current
// state or a view's pending delta.
type source interface {
	Cardinality() int64
	Scan(func(relation.Tuple, int64) bool)
}

type deltaSource struct{ d *delta.Delta }

func (s deltaSource) Cardinality() int64 { return s.d.Size() }
func (s deltaSource) Scan(fn func(relation.Tuple, int64) bool) {
	s.d.Scan(fn)
}

// sinkFn consumes one joined-and-filtered row with its signed multiplicity.
// Implementations must not retain the tuple: hot paths reuse the backing
// array across calls.
type sinkFn = func(row relation.Tuple, count int64)

// sinkFactory hands out sink closures. Each concurrent task (term, morsel)
// requests its own so per-call scratch buffers stay goroutine-local; the
// sequential engine's factory returns one shared closure.
type sinkFactory = func() sinkFn

// Compute evaluates Comp(name, over): it propagates the pending deltas of
// the views in over into the pending delta of the named view, reading the
// current materialized states of all other referenced views. The result is
// accumulated (merged) into any previously computed pending changes of the
// view, matching the paper's model where the Comp expressions of a strategy
// gather changes in δV until Inst(V) installs them.
func (w *Warehouse) Compute(name string, over []string) (CompReport, error) {
	return w.ComputeCtx(nil, name, over)
}

// ComputeCtx is Compute with cooperative cancellation: a nil ctx never
// cancels; otherwise evaluation stops between terms (sequential engine) and
// between morsels / term launches (parallel engine) once ctx is done,
// returning an error that wraps ctx.Err().
func (w *Warehouse) ComputeCtx(ctx context.Context, name string, over []string) (CompReport, error) {
	rep := CompReport{View: name, Over: append([]string(nil), over...)}
	v := w.views[name]
	if v == nil {
		return rep, fmt.Errorf("core: unknown view %q", name)
	}
	if v.IsBase() {
		return rep, fmt.Errorf("core: Compute on base view %q", name)
	}
	if v.agg != nil && v.finalized != nil {
		return rep, fmt.Errorf("core: Compute(%s, …) after δ%s was already finalized — incorrect strategy order", name, name)
	}
	terms, err := maintain.Terms(v.def, over)
	if err != nil {
		return rep, err
	}
	// With a shared registry attached, this Compute participates in
	// window-wide sharing: su carries its counters, and the deferred
	// release retires its interest in its hinted operands on every exit
	// path — success, skip-empty, or error.
	var su *sharedUse
	if w.shared != nil {
		su = &sharedUse{reg: w.shared, comp: CompKey(name, over)}
		defer w.shared.releaseComp(su.comp)
	}
	// Resolve each over-view's delta once.
	deltas := make(map[string]*delta.Delta, len(over))
	for _, child := range over {
		d, derr := w.DeltaOf(child)
		if derr != nil {
			return rep, derr
		}
		deltas[child] = d
	}
	if w.opts.SkipEmptyDeltas {
		allEmpty := true
		for _, d := range deltas {
			if !d.IsEmpty() {
				allEmpty = false
				break
			}
		}
		if allEmpty {
			rep.Skipped = true
			return rep, nil
		}
	}

	if w.opts.ParallelTerms {
		return w.computeParallel(ctx, rep, v, terms, deltas, su)
	}

	// The sequential engine consults the registry (and the memory budget)
	// per term through a minimal env (no pool, no caches): execution order
	// and semantics are untouched, only build tables of shared operands
	// come from (and go to) the registry, and oversized builds spill.
	var env *evalEnv
	if su != nil || w.mem != nil {
		env = &evalEnv{shared: su, mem: newMemUse(w.mem), ctx: ctx}
	}
	sink, flush := w.makeSink(v)
	sinks := seqSinks(sink)
	for _, term := range terms {
		if ctx != nil && ctx.Err() != nil {
			return rep, fmt.Errorf("core: compute %s: %w", name, ctx.Err())
		}
		scanned, terr := w.evalTerm(v.def, term, deltas, sinks, env)
		if terr != nil {
			return rep, terr
		}
		rep.Terms++
		rep.OperandTuples += scanned
	}
	rep.OutputTuples = flush()
	su.fill(&rep)
	env.memUse().fill(&rep)
	return rep, nil
}

// makeSink returns the row sink that folds term output rows into the view's
// pending change state, plus a flush function returning how many change rows
// were produced by this Compute call. Single-threaded; the parallel engine
// uses makeShardedSink instead.
func (w *Warehouse) makeSink(v *View) (sinkFn, func() int64) {
	if v.agg != nil {
		if v.pendingPartials == nil {
			v.pendingPartials = delta.NewGroupPartials(v.def.GroupSchema(), v.def.AggSpecs())
		}
		before := int64(v.pendingPartials.GroupCount())
		groupExprs := v.def.GroupBy
		aggs := v.def.Aggs
		sink := func(row relation.Tuple, count int64) {
			group := make(relation.Tuple, len(groupExprs))
			for i, g := range groupExprs {
				group[i] = g.E.Eval(row)
			}
			inputs := make([]relation.Value, len(aggs))
			for i, a := range aggs {
				if a.Input != nil {
					inputs[i] = a.Input.Eval(row)
				} else {
					inputs[i] = relation.Null
				}
			}
			v.pendingPartials.Accumulate(group, inputs, count)
		}
		return sink, func() int64 { return int64(v.pendingPartials.GroupCount()) - before }
	}
	if v.pendingDelta == nil {
		v.pendingDelta = delta.New(v.Schema())
	}
	var produced int64
	selects := v.def.Select
	sink := func(row relation.Tuple, count int64) {
		out := make(relation.Tuple, len(selects))
		for i, s := range selects {
			out[i] = s.E.Eval(row)
		}
		v.pendingDelta.Add(out, count)
		produced++
	}
	return sink, func() int64 { return produced }
}

// operand describes one term input during planning.
type operand struct {
	refIdx  int
	isDelta bool
	src     source
}

// evalEnv carries the intra-term parallel machinery: the per-Compute build
// cache, the warehouse worker pool and the morsel size. A nil env runs the
// classic single-threaded pipeline with per-term builds.
type evalEnv struct {
	cache  *buildCache
	scans  *scanCache
	pool   *workerPool
	morsel int
	ctx    context.Context
	// shared is this Compute's handle on the window-wide registry (nil
	// when no registry is attached).
	shared *sharedUse
	// mem is this Compute's handle on the window memory budget (nil when
	// no budget is attached).
	mem *memUse
}

// ctxErr reports the env's cancellation state; nil env or ctx never cancels.
func (e *evalEnv) ctxErr() error {
	if e == nil || e.ctx == nil {
		return nil
	}
	if err := e.ctx.Err(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

func (e *evalEnv) morselSize() int {
	if e == nil || e.morsel <= 0 {
		return DefaultMorselSize
	}
	return e.morsel
}

func (e *evalEnv) workerPool() *workerPool {
	if e == nil {
		return nil
	}
	return e.pool
}

func (e *evalEnv) buildCache() *buildCache {
	if e == nil {
		return nil
	}
	return e.cache
}

func (e *evalEnv) memUse() *memUse {
	if e == nil {
		return nil
	}
	return e.mem
}

// sharedUse returns the env's registry handle (nil without a registry).
func (e *evalEnv) sharedUse() *sharedUse {
	if e == nil {
		return nil
	}
	return e.shared
}

// evalCtx returns the env's context for spill I/O (nil cancels nothing).
func (e *evalEnv) evalCtx() context.Context {
	if e == nil {
		return nil
	}
	return e.ctx
}

// evalTerm evaluates one maintenance term of cq: references listed in
// term.DeltaRefs read their view's pending delta, all others read current
// state. Joined rows that satisfy every filter are passed to a sink with
// their signed multiplicity. It returns the number of operand tuples
// scanned — the term's linear-metric work, which deliberately counts every
// build-side operand even when env's cache served the physical table.
//
// The plan is a hash-join pipeline: the smallest delta operand drives;
// remaining operands are joined one at a time, preferring operands connected
// to the bound prefix by equi-join predicates (composite keys supported),
// falling back to a cross product when the join graph is disconnected. Every
// operand is (modeled as) scanned exactly once per term to build its hash
// table, which is precisely the execution model behind the paper's linear
// work metric. With a non-nil env, the driver rows run as parallel morsels
// and matches stream straight into per-morsel sinks.
func (w *Warehouse) evalTerm(cq *algebra.CQ, term maintain.Term, deltas map[string]*delta.Delta, sinks sinkFactory, env *evalEnv) (int64, error) {
	plan, err := w.planTerm(cq, term, deltas, env.sharedUse())
	if err != nil {
		return 0, err
	}
	return runTerm(plan, sinks, env)
}

// termPlan is one maintenance term's fully planned execution: the driver
// source, the probe pipeline, the deferred build-side requests, and the
// term's modeled scan work. Planning depends only on cardinalities and
// predicates — never on the data — so the modeled work (driver cardinality
// plus every build-side operand's cardinality) is fixed here, independent
// of what any cache later serves.
type termPlan struct {
	driverSrc source
	scanned   int64
	pl        pipeline
	builds    []buildReq
}

// buildReq defers one default-path build side: pl.steps[step] needs the
// hash table of src over the key columns cols. view/isDelta carry the
// operand's logical identity for the window-wide shared registry. A non-nil
// inter marks a composite build: src is the registry's interEntry (a stable
// identity for the per-Compute build cache) and the hash table is built over
// the intermediate's composite rows instead of an operand scan.
type buildReq struct {
	step    int
	src     source
	cols    []int
	view    string
	isDelta bool
	inter   *interReq
}

// interReq describes one composite build served by the shared registry's
// join-intermediate store (see pair.go): the pair's operand sources, the
// pair-internal equi-key columns (operand-local coordinates), and the
// operand widths.
type interReq struct {
	spec   InterSpec
	srcA   source
	srcB   source
	colsA  []int
	colsB  []int
	widthA int
	widthB int
	entry  *interEntry
}

// runTerm executes a planned term: materialize the driver, resolve the
// build sides (through env's caches when present), and run the pipeline.
// Term-local builds (no per-Compute cache) release their budget grants when
// the term finishes; cached and registry-served builds are released by their
// owner at Compute (resp. window) end.
func runTerm(plan *termPlan, sinks sinkFactory, env *evalEnv) (int64, error) {
	rows := scanSource(env, plan.driverSrc)
	var owned []*memory.Grant
	defer func() {
		for _, g := range owned {
			g.Release()
		}
	}()
	for _, br := range plan.builds {
		res, err := buildFor(env, br)
		if err != nil {
			return 0, err
		}
		if res.owned != nil {
			owned = append(owned, res.owned)
		}
		plan.pl.steps[br.step].build = res.bt
		plan.pl.steps[br.step].spilled = res.sp
	}
	probed, err := plan.pl.run(rows, sinks, env)
	if err != nil {
		return 0, err
	}
	return plan.scanned + probed, nil
}

// pairPlan is one runtime-applicable join-intermediate pair of a term: the
// member ref's partner, the composite build request, and the pair-internal
// equi keys (applied inside the intermediate, not at the probe).
type pairPlan struct {
	partner int
	req     *interReq
	pks     []pairKey
}

// planPairs matches the registry's hinted join intermediates against one
// term: an elected adjacent pair whose references both read quiescent state
// can be served as a single composite build (see pair.go). The returned map
// indexes each member reference.
func (w *Warehouse) planPairs(cq *algebra.CQ, isDelta []bool, ops []operand, su *sharedUse) map[int]*pairPlan {
	var out map[int]*pairPlan
	for _, pc := range PairCandidates(cq) {
		if isDelta[pc.RefA] || isDelta[pc.RefB] {
			continue
		}
		srcA, srcB := ops[pc.RefA].src, ops[pc.RefB].src
		e, ok := su.reg.interFor(su.comp, pc.ViewA, pc.ViewB, pc.Sig, srcA, srcB)
		if !ok {
			continue
		}
		pks := pairEquiKeys(cq, pc.RefA, pc.RefB)
		offA, offB := cq.RefOffset(pc.RefA), cq.RefOffset(pc.RefB)
		req := &interReq{
			spec: e.spec, srcA: srcA, srcB: srcB,
			widthA: len(cq.Refs[pc.RefA].Schema), widthB: len(cq.Refs[pc.RefB].Schema),
			entry: e,
		}
		for _, pk := range pks {
			req.colsA = append(req.colsA, pk.colA-offA)
			req.colsB = append(req.colsB, pk.colB-offB)
		}
		if out == nil {
			out = make(map[int]*pairPlan)
		}
		out[pc.RefA] = &pairPlan{partner: pc.RefB, req: req, pks: pks}
		out[pc.RefB] = &pairPlan{partner: pc.RefA, req: req, pks: pks}
	}
	return out
}

// planTerm resolves a term's operands and plans its join pipeline. su (may
// be nil) supplies the window registry's join-intermediate hints.
func (w *Warehouse) planTerm(cq *algebra.CQ, term maintain.Term, deltas map[string]*delta.Delta, su *sharedUse) (*termPlan, error) {
	n := len(cq.Refs)
	ops := make([]operand, n)
	isDelta := make([]bool, n)
	for _, r := range term.DeltaRefs {
		isDelta[r] = true
	}
	for i, ref := range cq.Refs {
		child := w.views[ref.View]
		if child == nil {
			return nil, fmt.Errorf("core: unknown referenced view %q", ref.View)
		}
		var src source
		if isDelta[i] {
			d := deltas[ref.View]
			if d == nil {
				return nil, fmt.Errorf("core: no delta resolved for %q", ref.View)
			}
			src = deltaSource{d}
		} else {
			if child.agg != nil {
				src = child.agg
			} else {
				src = child.table
			}
		}
		ops[i] = operand{refIdx: i, isDelta: isDelta[i], src: src}
	}

	var pairAt map[int]*pairPlan
	if su != nil {
		pairAt = w.planPairs(cq, isDelta, ops, su)
	}

	// Pick the driver: the smallest delta operand (deterministic tie-break
	// by ref index); if the term has no delta operands (full recompute),
	// the smallest operand drives.
	driver := -1
	for i, op := range ops {
		if len(term.DeltaRefs) > 0 && !op.isDelta {
			continue
		}
		if driver < 0 || op.src.Cardinality() < ops[driver].src.Cardinality() {
			driver = i
		}
	}

	plan := &termPlan{driverSrc: ops[driver].src}
	plan.scanned += ops[driver].src.Cardinality()

	bound := uint64(1) << uint(driver)
	applied := make([]bool, len(cq.Filters))
	plan.pl = pipeline{
		off:   cq.RefOffset(driver),
		width: len(cq.JoinedSchema()),
		// Filters local to the driver run before the first probe.
		driverPreds: pendingFilters(cq, bound, applied),
	}

	remaining := make([]int, 0, n-1)
	for i := range ops {
		if i != driver {
			remaining = append(remaining, i)
		}
	}
	// Deterministic initial order.
	sort.Ints(remaining)

	for len(remaining) > 0 {
		// Choose the next operand: connected (has an unapplied equi-join
		// predicate linking it to bound refs) and smallest; else smallest.
		next, nextPos := -1, -1
		nextConnected := false
		for pos, i := range remaining {
			conn := len(equiKeys(cq, bound, i, applied)) > 0
			better := false
			switch {
			case next < 0:
				better = true
			case conn != nextConnected:
				better = conn
			case ops[i].src.Cardinality() != ops[next].src.Cardinality():
				better = ops[i].src.Cardinality() < ops[next].src.Cardinality()
			}
			if better {
				next, nextPos, nextConnected = i, pos, conn
			}
		}
		i := next
		remaining = append(remaining[:nextPos], remaining[nextPos+1:]...)

		// Composite path: when the chosen operand belongs to an elected pair
		// whose partner is also still unbound, serve both with one build over
		// the shared intermediate's composite rows. The pair-internal equi
		// keys are already applied inside the intermediate; probe keys link
		// the bound prefix to either member's columns. The modeled scan work
		// is the pair's operand cardinalities — exactly what two separate
		// steps would have counted, keeping OperandTuples invariant.
		if pp := pairAt[i]; pp != nil {
			if pos := indexOf(remaining, pp.partner); pos >= 0 {
				remaining = append(remaining[:pos], remaining[pos+1:]...)
				a, b := i, pp.partner
				if b < a {
					a, b = b, a
				}
				for _, pk := range pp.pks {
					applied[pk.filterIdx] = true
				}
				keys := append(equiKeys(cq, bound, a, applied), equiKeys(cq, bound, b, applied)...)
				for _, k := range keys {
					applied[k.filterIdx] = true
				}
				sortKeysByNewCol(keys)
				roff := cq.RefOffset(a)
				bound |= 1<<uint(a) | 1<<uint(b)
				step := joinStep{
					keys:  keys,
					roff:  roff,
					preds: pendingFilters(cq, bound, applied),
				}
				cols := make([]int, len(keys))
				for ki, k := range keys {
					cols[ki] = k.newCol - roff
				}
				plan.builds = append(plan.builds, buildReq{
					step: len(plan.pl.steps), src: pp.req.entry, cols: cols, inter: pp.req,
				})
				plan.scanned += ops[a].src.Cardinality() + ops[b].src.Cardinality()
				plan.pl.steps = append(plan.pl.steps, step)
				continue
			}
		}

		keys := equiKeys(cq, bound, i, applied)
		for _, k := range keys {
			applied[k.filterIdx] = true
		}
		// Canonical key order: both the build and probe sides project in
		// newCol order, so cached build tables are reusable across terms
		// that discover the same keys in a different sequence.
		sortKeysByNewCol(keys)
		roff := cq.RefOffset(i)
		bound |= 1 << uint(i)

		step := joinStep{
			keys:  keys,
			roff:  roff,
			preds: pendingFilters(cq, bound, applied),
		}
		if tbl := indexableTable(w, ops[i]); tbl != nil && len(keys) > 0 {
			// Indexed path: probe a maintained hash index per partial row
			// instead of scanning the operand. Work counts the probes.
			idxCols := make([]int, len(keys))
			for ki, k := range keys {
				idxCols[ki] = k.newCol - roff
			}
			if err := tbl.EnsureIndex(idxCols); err != nil {
				return nil, err
			}
			step.index = tbl
			step.idxCols = idxCols
		} else {
			// Default path: a build-side hash table over one operand scan,
			// matching the linear work metric's execution model. The build
			// itself is deferred to runTerm so the parallel engine can
			// pre-warm distinct builds concurrently; the metric counts the
			// scan per term regardless of how the table is served.
			cols := make([]int, len(keys))
			for ki, k := range keys {
				cols[ki] = k.newCol - roff
			}
			plan.builds = append(plan.builds, buildReq{
				step: len(plan.pl.steps), src: ops[i].src, cols: cols,
				view: cq.Refs[i].View, isDelta: ops[i].isDelta,
			})
			plan.scanned += ops[i].src.Cardinality()
		}
		plan.pl.steps = append(plan.pl.steps, step)
	}
	return plan, nil
}

// joinStep is one planned hash-join step: probe the partial row against an
// operand via a build table or a maintained index, then apply the filters
// that just became evaluable.
type joinStep struct {
	keys    []equiKey
	roff    int
	preds   []algebra.Expr
	build   *buildTable    // default path (nil when indexed or spilled)
	spilled *spilledBuild  // spilled default path: probed partition-wise
	index   *storage.Table // indexed path
	idxCols []int
}

// pipeline is one term's fully planned execution: the driver-local filters
// plus the ordered join steps. Probing is depth-first and tuple-at-a-time —
// a partial row is pushed through every remaining step before the next
// match of the current step is tried — so intermediate join results are
// never materialized. Each morsel works in a single scratch row of the
// term's joined width: step i only overwrites its own operand's columns,
// and the predicates evaluated at depth i only read columns bound at depths
// ≤ i, so sibling matches can safely reuse the buffer.
type pipeline struct {
	off         int // driver's column offset in the joined row
	width       int // joined-row width
	driverPreds []algebra.Expr
	steps       []joinStep
}

// run pushes the driver rows through the pipeline, splitting them into
// parallel morsels when env carries a worker pool. It returns the number of
// index probes performed (0 on the default path — build-side scans are
// accounted at planning time). Steps whose build spilled to disk execute
// pass-wise (see runSpilled); the resident path is runResident.
func (p *pipeline) run(rows []prow, sinks sinkFactory, env *evalEnv) (int64, error) {
	var spilled []int
	for i := range p.steps {
		if p.steps[i].spilled != nil {
			spilled = append(spilled, i)
		}
	}
	if len(spilled) > 0 {
		return p.runSpilled(rows, sinks, env, spilled)
	}
	return p.runResident(rows, sinks, env)
}

// runResident runs the pipeline with every build side resident in memory.
func (p *pipeline) runResident(rows []prow, sinks sinkFactory, env *evalEnv) (int64, error) {
	pool := env.workerPool()
	ms := env.morselSize()
	if pool == nil || len(rows) <= ms {
		return p.runMorsel(rows, sinks())
	}
	nm := (len(rows) + ms - 1) / ms
	probes := make([]int64, nm)
	errs := make([]error, nm)
	var wg sync.WaitGroup
	for m := 0; m < nm; m++ {
		m := m
		lo := m * ms
		hi := lo + ms
		if hi > len(rows) {
			hi = len(rows)
		}
		pool.do(&wg, func() {
			defer func() {
				if r := recover(); r != nil {
					errs[m] = recoveredErr("morsel", r)
				}
			}()
			if err := env.ctxErr(); err != nil {
				errs[m] = err
				return
			}
			probes[m], errs[m] = p.runMorsel(rows[lo:hi], sinks())
		})
	}
	wg.Wait()
	var probed int64
	for m := 0; m < nm; m++ {
		if errs[m] != nil {
			return 0, errs[m]
		}
		probed += probes[m]
	}
	return probed, nil
}

// morselState is the per-morsel scratch: the joined row under construction
// plus per-depth key-projection and key-encoding buffers. All state is
// local to one morsel, so morsels run concurrently; sink is the morsel's
// goroutine-local sink closure.
type morselState struct {
	scratch relation.Tuple
	keys    []relation.Tuple
	encs    [][]byte
	sink    sinkFn
}

// runMorsel pushes one slice of driver rows through the whole pipeline.
func (p *pipeline) runMorsel(rows []prow, sink sinkFn) (int64, error) {
	st := &morselState{
		scratch: make(relation.Tuple, p.width),
		keys:    make([]relation.Tuple, len(p.steps)),
		encs:    make([][]byte, len(p.steps)),
		sink:    sink,
	}
	for i := range p.steps {
		st.keys[i] = make(relation.Tuple, len(p.steps[i].keys))
		st.encs[i] = make([]byte, 0, 64)
	}
	var probed int64
	for ri := range rows {
		pr := &rows[ri]
		copy(st.scratch[p.off:], pr.row)
		ok := true
		for _, f := range p.driverPreds {
			if !algebra.EvalBool(f, st.scratch) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		n, err := p.probe(0, pr.count, st)
		probed += n
		if err != nil {
			return 0, err
		}
	}
	return probed, nil
}

// probe advances one partial row past step depth. Rows that clear the last
// step stream into the sink; sinks must not retain the tuple (the scratch
// row is reused immediately).
func (p *pipeline) probe(depth int, count int64, st *morselState) (int64, error) {
	if depth == len(p.steps) {
		st.sink(st.scratch, count)
		return 0, nil
	}
	s := &p.steps[depth]
	keyT := st.keys[depth]
	for ki, k := range s.keys {
		keyT[ki] = st.scratch[k.boundCol]
	}
	if s.index != nil {
		// Indexed path: probe the maintained hash index once per arriving
		// partial row. Work counts the probe.
		probed := int64(1)
		var cbErr error
		err := s.index.Lookup(s.idxCols, keyT, func(t relation.Tuple, c int64) bool {
			n, eerr := p.emit(depth, t, count*c, st)
			probed += n
			if eerr != nil {
				cbErr = eerr
				return false
			}
			return true
		})
		if err == nil {
			err = cbErr
		}
		return probed, err
	}
	enc := keyT.AppendEncoded(st.encs[depth][:0])
	st.encs[depth] = enc
	var probed int64
	bucket := s.build.buckets[hashBytes(enc)]
	for ei := range bucket {
		e := &bucket[ei]
		// Hash-then-verify: the bucket may mix keys that collide on the
		// 64-bit hash; confirm byte equality before emitting. The
		// comparison below is allocation-free (no string conversion
		// escapes).
		if string(enc) != e.keyEnc {
			continue
		}
		n, err := p.emit(depth, e.tup, count*e.count, st)
		probed += n
		if err != nil {
			return probed, err
		}
	}
	return probed, nil
}

// emit joins one match into the scratch row, applies the step's filters,
// and recurses into the next step.
func (p *pipeline) emit(depth int, t relation.Tuple, count int64, st *morselState) (int64, error) {
	s := &p.steps[depth]
	copy(st.scratch[s.roff:], t)
	for _, pred := range s.preds {
		if !algebra.EvalBool(pred, st.scratch) {
			return 0, nil
		}
	}
	return p.probe(depth+1, count, st)
}

// indexableTable returns the operand's backing counted table when the
// indexed join path applies: indexes enabled, the operand reads a view's
// state (not a delta), and that state is a plain table (aggregate views'
// group stores are not indexed).
func indexableTable(w *Warehouse, op operand) *storage.Table {
	if !w.opts.UseIndexes || op.isDelta {
		return nil
	}
	tbl, ok := op.src.(*storage.Table)
	if !ok {
		return nil
	}
	return tbl
}

// sortKeysByNewCol orders equi-key pairs by their candidate-side column, the
// canonical order storage indexes and the build cache use.
func sortKeysByNewCol(keys []equiKey) {
	sort.Slice(keys, func(a, b int) bool { return keys[a].newCol < keys[b].newCol })
}

// indexOf returns the position of v in s, or -1.
func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// prow is a partially-joined row with its accumulated multiplicity.
type prow struct {
	row   relation.Tuple
	count int64
}

// pendingFilters collects — and marks applied — every not-yet-applied filter
// whose referenced refs are all bound.
func pendingFilters(cq *algebra.CQ, bound uint64, applied []bool) []algebra.Expr {
	var preds []algebra.Expr
	for fi, f := range cq.Filters {
		if applied[fi] {
			continue
		}
		if cq.FilterRefs(fi)&^bound == 0 {
			preds = append(preds, f)
			applied[fi] = true
		}
	}
	return preds
}

// equiKey describes one usable equi-join key pair for a candidate operand.
type equiKey struct {
	filterIdx int
	boundCol  int // column index (joined row) on the already-bound side
	newCol    int // column index (joined row) on the candidate side
}

// equiKeys finds unapplied equality filters of the form col=col with one
// side entirely in bound refs and the other on candidate ref i.
func equiKeys(cq *algebra.CQ, bound uint64, i int, applied []bool) []equiKey {
	var out []equiKey
	for fi, f := range cq.Filters {
		if applied[fi] {
			continue
		}
		b, ok := f.(*algebra.Binary)
		if !ok || b.Op != algebra.OpEq {
			continue
		}
		lc, lok := b.L.(*algebra.Col)
		rc, rok := b.R.(*algebra.Col)
		if !lok || !rok {
			continue
		}
		lRef, rRef := cq.RefOfColumn(lc.Index), cq.RefOfColumn(rc.Index)
		lBound := bound&(1<<uint(lRef)) != 0
		rBound := bound&(1<<uint(rRef)) != 0
		switch {
		case lBound && rRef == i:
			out = append(out, equiKey{filterIdx: fi, boundCol: lc.Index, newCol: rc.Index})
		case rBound && lRef == i:
			out = append(out, equiKey{filterIdx: fi, boundCol: rc.Index, newCol: lc.Index})
		}
	}
	return out
}
