package core

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/relation"
	"repro/internal/storage"
)

// CompReport summarizes one Compute call for work accounting.
type CompReport struct {
	View string
	Over []string
	// Terms is the number of maintenance terms evaluated (2^r − 1).
	Terms int
	// OperandTuples is the total number of tuples scanned across all term
	// operands — the quantity the linear work metric models as the work of
	// a compute expression.
	OperandTuples int64
	// OutputTuples is the number of (signed) change rows produced.
	OutputTuples int64
	// Skipped reports that the whole expression was elided because every
	// delta operand was empty (only with Options.SkipEmptyDeltas).
	Skipped bool
}

// source abstracts the two operand kinds a term reads: a view's current
// state or a view's pending delta.
type source interface {
	Cardinality() int64
	Scan(func(relation.Tuple, int64) bool)
}

type deltaSource struct{ d *delta.Delta }

func (s deltaSource) Cardinality() int64 { return s.d.Size() }
func (s deltaSource) Scan(fn func(relation.Tuple, int64) bool) {
	s.d.Scan(fn)
}

// Compute evaluates Comp(name, over): it propagates the pending deltas of
// the views in over into the pending delta of the named view, reading the
// current materialized states of all other referenced views. The result is
// accumulated (merged) into any previously computed pending changes of the
// view, matching the paper's model where the Comp expressions of a strategy
// gather changes in δV until Inst(V) installs them.
func (w *Warehouse) Compute(name string, over []string) (CompReport, error) {
	rep := CompReport{View: name, Over: append([]string(nil), over...)}
	v := w.views[name]
	if v == nil {
		return rep, fmt.Errorf("core: unknown view %q", name)
	}
	if v.IsBase() {
		return rep, fmt.Errorf("core: Compute on base view %q", name)
	}
	if v.agg != nil && v.finalized != nil {
		return rep, fmt.Errorf("core: Compute(%s, …) after δ%s was already finalized — incorrect strategy order", name, name)
	}
	terms, err := maintain.Terms(v.def, over)
	if err != nil {
		return rep, err
	}
	// Resolve each over-view's delta once.
	deltas := make(map[string]*delta.Delta, len(over))
	for _, child := range over {
		d, derr := w.DeltaOf(child)
		if derr != nil {
			return rep, derr
		}
		deltas[child] = d
	}
	if w.opts.SkipEmptyDeltas {
		allEmpty := true
		for _, d := range deltas {
			if !d.IsEmpty() {
				allEmpty = false
				break
			}
		}
		if allEmpty {
			rep.Skipped = true
			return rep, nil
		}
	}

	sink, flush := w.makeSink(v)
	for _, term := range terms {
		scanned, terr := w.evalTerm(v.def, term, deltas, sink)
		if terr != nil {
			return rep, terr
		}
		rep.Terms++
		rep.OperandTuples += scanned
	}
	rep.OutputTuples = flush()
	return rep, nil
}

// makeSink returns the row sink that folds term output rows into the view's
// pending change state, plus a flush function returning how many change rows
// were produced by this Compute call.
func (w *Warehouse) makeSink(v *View) (func(row relation.Tuple, count int64), func() int64) {
	if v.agg != nil {
		if v.pendingPartials == nil {
			v.pendingPartials = delta.NewGroupPartials(v.def.GroupSchema(), v.def.AggSpecs())
		}
		before := int64(v.pendingPartials.GroupCount())
		groupExprs := v.def.GroupBy
		aggs := v.def.Aggs
		sink := func(row relation.Tuple, count int64) {
			group := make(relation.Tuple, len(groupExprs))
			for i, g := range groupExprs {
				group[i] = g.E.Eval(row)
			}
			inputs := make([]relation.Value, len(aggs))
			for i, a := range aggs {
				if a.Input != nil {
					inputs[i] = a.Input.Eval(row)
				} else {
					inputs[i] = relation.Null
				}
			}
			v.pendingPartials.Accumulate(group, inputs, count)
		}
		return sink, func() int64 { return int64(v.pendingPartials.GroupCount()) - before }
	}
	if v.pendingDelta == nil {
		v.pendingDelta = delta.New(v.Schema())
	}
	var produced int64
	selects := v.def.Select
	sink := func(row relation.Tuple, count int64) {
		out := make(relation.Tuple, len(selects))
		for i, s := range selects {
			out[i] = s.E.Eval(row)
		}
		v.pendingDelta.Add(out, count)
		produced++
	}
	return sink, func() int64 { return produced }
}

// operand describes one term input during planning.
type operand struct {
	refIdx  int
	isDelta bool
	src     source
}

// evalTerm evaluates one maintenance term of cq: references listed in
// term.DeltaRefs read their view's pending delta, all others read current
// state. Joined rows that satisfy every filter are passed to sink with their
// signed multiplicity. It returns the number of operand tuples scanned.
//
// The plan is a hash-join pipeline: the smallest delta operand drives;
// remaining operands are joined one at a time, preferring operands connected
// to the bound prefix by equi-join predicates (composite keys supported),
// falling back to a cross product when the join graph is disconnected. Every
// operand is scanned exactly once (to build its hash table), which is
// precisely the execution model behind the paper's linear work metric.
func (w *Warehouse) evalTerm(cq *algebra.CQ, term maintain.Term, deltas map[string]*delta.Delta, sink func(relation.Tuple, int64)) (int64, error) {
	n := len(cq.Refs)
	ops := make([]operand, n)
	isDelta := make([]bool, n)
	for _, r := range term.DeltaRefs {
		isDelta[r] = true
	}
	for i, ref := range cq.Refs {
		child := w.views[ref.View]
		if child == nil {
			return 0, fmt.Errorf("core: unknown referenced view %q", ref.View)
		}
		var src source
		if isDelta[i] {
			d := deltas[ref.View]
			if d == nil {
				return 0, fmt.Errorf("core: no delta resolved for %q", ref.View)
			}
			src = deltaSource{d}
		} else {
			if child.agg != nil {
				src = child.agg
			} else {
				src = child.table
			}
		}
		ops[i] = operand{refIdx: i, isDelta: isDelta[i], src: src}
	}

	// Pick the driver: the smallest delta operand (deterministic tie-break
	// by ref index); if the term has no delta operands (full recompute),
	// the smallest operand drives.
	driver := -1
	for i, op := range ops {
		if len(term.DeltaRefs) > 0 && !op.isDelta {
			continue
		}
		if driver < 0 || op.src.Cardinality() < ops[driver].src.Cardinality() {
			driver = i
		}
	}

	width := len(cq.JoinedSchema())
	var scanned int64

	// Materialize the driver.
	var rows []prow
	off := cq.RefOffset(driver)
	ops[driver].src.Scan(func(t relation.Tuple, c int64) bool {
		full := make(relation.Tuple, width)
		copy(full[off:], t)
		rows = append(rows, prow{row: full, count: c})
		return true
	})
	scanned += ops[driver].src.Cardinality()

	bound := uint64(1) << uint(driver)
	applied := make([]bool, len(cq.Filters))
	// Apply filters local to the driver.
	rows = applyFilters(cq, rows, bound, applied)

	remaining := make([]int, 0, n-1)
	for i := range ops {
		if i != driver {
			remaining = append(remaining, i)
		}
	}
	// Deterministic initial order.
	sort.Ints(remaining)

	for len(remaining) > 0 {
		// Choose the next operand: connected (has an unapplied equi-join
		// predicate linking it to bound refs) and smallest; else smallest.
		next, nextPos := -1, -1
		nextConnected := false
		for pos, i := range remaining {
			conn := len(equiKeys(cq, bound, i, applied)) > 0
			better := false
			switch {
			case next < 0:
				better = true
			case conn != nextConnected:
				better = conn
			case ops[i].src.Cardinality() != ops[next].src.Cardinality():
				better = ops[i].src.Cardinality() < ops[next].src.Cardinality()
			}
			if better {
				next, nextPos, nextConnected = i, pos, conn
			}
		}
		i := next
		remaining = append(remaining[:nextPos], remaining[nextPos+1:]...)

		keys := equiKeys(cq, bound, i, applied)
		for _, k := range keys {
			applied[k.filterIdx] = true
		}
		roff := cq.RefOffset(i)

		var out []prow
		if tbl := indexableTable(w, ops[i]); tbl != nil && len(keys) > 0 {
			// Indexed path: probe a maintained hash index per partial row
			// instead of scanning the operand. Work counts the probes.
			sortKeysByNewCol(keys)
			idxCols := make([]int, len(keys))
			for ki, k := range keys {
				idxCols[ki] = k.newCol - roff
			}
			if err := tbl.EnsureIndex(idxCols); err != nil {
				return 0, err
			}
			for _, pr := range rows {
				key := make(relation.Tuple, len(keys))
				for ki, k := range keys {
					key[ki] = pr.row[k.boundCol]
				}
				scanned++
				err := tbl.Lookup(idxCols, key, func(t relation.Tuple, c int64) bool {
					full := pr.row.Clone()
					copy(full[roff:], t)
					out = append(out, prow{row: full, count: pr.count * c})
					return true
				})
				if err != nil {
					return 0, err
				}
			}
		} else {
			// Default path: build a per-term hash table (scan the operand
			// once), matching the linear work metric's execution model.
			type entry struct {
				tup   relation.Tuple
				count int64
			}
			build := make(map[string][]entry)
			ops[i].src.Scan(func(t relation.Tuple, c int64) bool {
				key := make(relation.Tuple, len(keys))
				for ki, k := range keys {
					key[ki] = t[k.newCol-roff]
				}
				ek := key.Encode()
				build[ek] = append(build[ek], entry{tup: t, count: c})
				return true
			})
			scanned += ops[i].src.Cardinality()

			for _, pr := range rows {
				key := make(relation.Tuple, len(keys))
				for ki, k := range keys {
					key[ki] = pr.row[k.boundCol]
				}
				for _, e := range build[key.Encode()] {
					full := pr.row.Clone()
					copy(full[roff:], e.tup)
					out = append(out, prow{row: full, count: pr.count * e.count})
				}
			}
		}
		bound |= 1 << uint(i)
		rows = applyFilters(cq, out, bound, applied)
	}

	for _, pr := range rows {
		sink(pr.row, pr.count)
	}
	return scanned, nil
}

// indexableTable returns the operand's backing counted table when the
// indexed join path applies: indexes enabled, the operand reads a view's
// state (not a delta), and that state is a plain table (aggregate views'
// group stores are not indexed).
func indexableTable(w *Warehouse, op operand) *storage.Table {
	if !w.opts.UseIndexes || op.isDelta {
		return nil
	}
	tbl, ok := op.src.(*storage.Table)
	if !ok {
		return nil
	}
	return tbl
}

// sortKeysByNewCol orders equi-key pairs by their candidate-side column, the
// canonical order storage indexes use.
func sortKeysByNewCol(keys []equiKey) {
	sort.Slice(keys, func(a, b int) bool { return keys[a].newCol < keys[b].newCol })
}

// prow is a partially-joined row with its accumulated multiplicity.
type prow struct {
	row   relation.Tuple
	count int64
}

// applyFilters applies every not-yet-applied filter whose referenced refs
// are all bound.
func applyFilters(cq *algebra.CQ, rows []prow, bound uint64, applied []bool) []prow {
	var preds []algebra.Expr
	for fi, f := range cq.Filters {
		if applied[fi] {
			continue
		}
		if cq.RefsOfExpr(f)&^bound == 0 {
			preds = append(preds, f)
			applied[fi] = true
		}
	}
	if len(preds) == 0 {
		return rows
	}
	out := rows[:0]
	for _, pr := range rows {
		ok := true
		for _, p := range preds {
			if !algebra.EvalBool(p, pr.row) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, pr)
		}
	}
	return out
}

// equiKey describes one usable equi-join key pair for a candidate operand.
type equiKey struct {
	filterIdx int
	boundCol  int // column index (joined row) on the already-bound side
	newCol    int // column index (joined row) on the candidate side
}

// equiKeys finds unapplied equality filters of the form col=col with one
// side entirely in bound refs and the other on candidate ref i.
func equiKeys(cq *algebra.CQ, bound uint64, i int, applied []bool) []equiKey {
	var out []equiKey
	for fi, f := range cq.Filters {
		if applied[fi] {
			continue
		}
		b, ok := f.(*algebra.Binary)
		if !ok || b.Op != algebra.OpEq {
			continue
		}
		lc, lok := b.L.(*algebra.Col)
		rc, rok := b.R.(*algebra.Col)
		if !lok || !rok {
			continue
		}
		lRef, rRef := cq.RefOfColumn(lc.Index), cq.RefOfColumn(rc.Index)
		lBound := bound&(1<<uint(lRef)) != 0
		rBound := bound&(1<<uint(rRef)) != 0
		switch {
		case lBound && rRef == i:
			out = append(out, equiKey{filterIdx: fi, boundCol: lc.Index, newCol: rc.Index})
		case rBound && lRef == i:
			out = append(out, equiKey{filterIdx: fi, boundCol: rc.Index, newCol: lc.Index})
		}
	}
	return out
}
