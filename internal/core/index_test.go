package core

import (
	"math/rand"
	"testing"

	"repro/internal/delta"
	"repro/internal/relation"
)

// TestUseIndexesMatchesDefault runs identical random update windows with
// and without the indexed join path and checks the final states agree (and
// both match recomputation).
func TestUseIndexesMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		build := func(useIdx bool) *Warehouse {
			w := newJoinWarehouse(t)
			w.SetOptions(Options{UseIndexes: useIdx})
			return w
		}
		seedData := func(w *Warehouse, seed int64) {
			r := rand.New(rand.NewSource(seed))
			var rRows, sRows []relation.Tuple
			for i := 0; i < 25; i++ {
				rRows = append(rRows, intRow(r.Int63n(6), r.Int63n(4)*10))
				sRows = append(sRows, intRow(r.Int63n(4)*10, r.Int63n(5)*100))
			}
			if err := w.LoadBase("R", rRows); err != nil {
				t.Fatal(err)
			}
			if err := w.LoadBase("S", sRows); err != nil {
				t.Fatal(err)
			}
			if err := w.RefreshAll(); err != nil {
				t.Fatal(err)
			}
		}
		seed := rng.Int63()
		plain, indexed := build(false), build(true)
		seedData(plain, seed)
		seedData(indexed, seed)

		changeSeed := rng.Int63()
		for _, w := range []*Warehouse{plain, indexed} {
			r := rand.New(rand.NewSource(changeSeed))
			for _, base := range []string{"R", "S"} {
				d := delta.New(w.MustView(base).Schema())
				for _, row := range w.MustView(base).SortedRows() {
					if r.Intn(3) == 0 {
						d.Add(row.Tuple, -1)
					}
				}
				for i := 0; i < r.Intn(5); i++ {
					d.Add(intRow(r.Int63n(6), r.Int63n(4)*10), 1)
				}
				if err := w.StageDelta(base, d); err != nil {
					t.Fatal(err)
				}
			}
			for _, step := range []string{"cJ.R", "iR", "cJ.S", "iS", "cA.J", "iJ", "iA"} {
				applyStep(t, w, step)
			}
			if err := w.VerifyAll(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		for _, v := range []string{"J", "A"} {
			a, b := plain.MustView(v).SortedRows(), indexed.MustView(v).SortedRows()
			if len(a) != len(b) {
				t.Fatalf("trial %d: %s: %d vs %d rows", trial, v, len(a), len(b))
			}
			for i := range a {
				if relation.CompareTuples(a[i].Tuple, b[i].Tuple) != 0 || a[i].Count != b[i].Count {
					t.Fatalf("trial %d: %s row %d differs", trial, v, i)
				}
			}
		}
	}
}

// TestUseIndexesWorkAccounting checks that the indexed path counts probes
// rather than full operand scans, so a small delta against a large state
// operand reports far less work.
func TestUseIndexesWorkAccounting(t *testing.T) {
	build := func(useIdx bool) *Warehouse {
		w := newJoinWarehouse(t)
		w.SetOptions(Options{UseIndexes: useIdx})
		var sRows []relation.Tuple
		for i := int64(0); i < 500; i++ {
			sRows = append(sRows, intRow(i%7*10, i))
		}
		if err := w.LoadBase("R", []relation.Tuple{intRow(1, 10)}); err != nil {
			t.Fatal(err)
		}
		if err := w.LoadBase("S", sRows); err != nil {
			t.Fatal(err)
		}
		if err := w.RefreshAll(); err != nil {
			t.Fatal(err)
		}
		d := delta.New(schemaR)
		d.Add(intRow(2, 20), 1)
		if err := w.StageDelta("R", d); err != nil {
			t.Fatal(err)
		}
		return w
	}
	plain := build(false)
	repPlain, err := plain.Compute("J", []string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	indexed := build(true)
	repIdx, err := indexed.Compute("J", []string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	// Plain: |δR| + |S| = 1 + 500. Indexed: |δR| + 1 probe.
	if repPlain.OperandTuples != 501 {
		t.Errorf("plain work = %d, want 501", repPlain.OperandTuples)
	}
	if repIdx.OperandTuples != 2 {
		t.Errorf("indexed work = %d, want 2", repIdx.OperandTuples)
	}
}
